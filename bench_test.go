// Benchmarks regenerating the paper's evaluation (§8), one per table and
// figure. Each benchmark runs the corresponding experiment at the Quick
// scale and reports the simulated results as custom metrics:
//
//	sim-cycles       simulated execution time of the measured section
//	sim-speedup      speedup over the serial build (figures)
//	host-ms/sweep    host wall time of one whole sweep (all points)
//	host-ms/point    host wall time per sweep point (mean)
//
// The sim-* metrics are properties of the simulated machine and must never
// move under host-side optimization; the host-* metrics are the harness
// performance and are what BENCH_sweeps.json snapshots, so the host-perf
// trajectory accumulates in git history (run `go test -bench=. -benchtime=1x`
// and commit the rewritten file).
//
// cmd/dsmbench runs the same experiments at full (paper/16) scale;
// EXPERIMENTS.md records those results against the paper's.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"dsmdist/internal/exec"
	"dsmdist/internal/experiments"
)

// benchRows runs an experiment once per b.N, reports the last rows, and
// records them in the BENCH_sweeps.json snapshot.
func benchRows(b *testing.B, exp string, fn func(experiments.Sizes) ([]experiments.Row, error), s experiments.Sizes) []experiments.Row {
	b.Helper()
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = fn(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	var wall float64
	for _, r := range rows {
		wall += r.WallMS
	}
	b.ReportMetric(wall, "host-ms/sweep")
	if len(rows) > 0 {
		b.ReportMetric(wall/float64(len(rows)), "host-ms/point")
	}
	recordSweep(exp, rows)
	return rows
}

// BenchmarkTable2 reproduces Table 2: the reshape-optimization ablation on
// the LU kernel, one processor.
func BenchmarkTable2(b *testing.B) {
	s := experiments.Quick()
	rows := benchRows(b, "table2", experiments.Table2, s)
	for _, r := range rows {
		b.ReportMetric(float64(r.Cycles), "sim-cycles-"+shortLabel(r.Variant))
	}
}

func shortLabel(v string) string {
	switch v {
	case "reshape, no optimizations":
		return "noopt"
	case "reshape, tile and peel":
		return "tilepeel"
	case "reshape, tile and peel, hoist":
		return "hoist"
	case "reshape, all optimizations":
		return "full"
	case "original without reshaping":
		return "original"
	}
	return v
}

// figBench runs a figure experiment and reports per-variant speedups at the
// largest processor count.
func figBench(b *testing.B, exp string, fn func(experiments.Sizes) ([]experiments.Row, error)) {
	s := experiments.Quick()
	rows := benchRows(b, exp, fn, s)
	maxP := 0
	for _, r := range rows {
		if r.P > maxP {
			maxP = r.P
		}
	}
	for _, r := range rows {
		if r.P == maxP {
			b.ReportMetric(r.Speedup, fmt.Sprintf("sim-speedup-%s-p%d", r.Variant, r.P))
		}
	}
}

// BenchmarkFig4 reproduces Figure 4: NAS-LU speedups under the four
// placement strategies.
func BenchmarkFig4(b *testing.B) { figBench(b, "fig4", experiments.Fig4) }

// BenchmarkFig5 reproduces Figure 5: matrix-transpose speedups.
func BenchmarkFig5(b *testing.B) { figBench(b, "fig5", experiments.Fig5) }

// BenchmarkFig6 reproduces Figure 6: 2-D convolution, small input, one- and
// two-level parallelism.
func BenchmarkFig6(b *testing.B) { figBench(b, "fig6", experiments.Fig6) }

// BenchmarkFig7 reproduces Figure 7: 2-D convolution, large input.
func BenchmarkFig7(b *testing.B) { figBench(b, "fig7", experiments.Fig7) }

// ---- BENCH_sweeps.json: the host-performance snapshot ----

// sweepPoint is one row of a sweep, reduced to the fields the perf
// trajectory needs: the simulated cycles (must never move) and the host
// wall time (the metric under optimization).
type sweepPoint struct {
	Variant string  `json:"variant"`
	P       int     `json:"p"`
	Cycles  int64   `json:"cycles"`
	WallMS  float64 `json:"wall_ms"`
}

type sweepRecord struct {
	Exp         string       `json:"exp"`
	TotalWallMS float64      `json:"total_wall_ms"`
	Points      []sweepPoint `json:"points"`
}

type benchSnapshot struct {
	RecordedAt string        `json:"recorded_at"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Scale      string        `json:"scale"`
	Tier       string        `json:"tier"`
	Memrun     string        `json:"memrun"`
	Sweeps     []sweepRecord `json:"sweeps"`
}

var snapMu sync.Mutex
var snapRecs = map[string]sweepRecord{}

func recordSweep(exp string, rows []experiments.Row) {
	rec := sweepRecord{Exp: exp}
	for _, r := range rows {
		rec.TotalWallMS += r.WallMS
		rec.Points = append(rec.Points, sweepPoint{
			Variant: r.Variant, P: r.P, Cycles: r.Cycles, WallMS: r.WallMS,
		})
	}
	snapMu.Lock()
	snapRecs[exp] = rec
	snapMu.Unlock()
}

// TestMain writes BENCH_sweeps.json after a benchmark run; a plain
// `go test` records no sweeps and leaves the snapshot untouched.
func TestMain(m *testing.M) {
	code := m.Run()
	if err := writeSnapshot("BENCH_sweeps.json"); err != nil {
		fmt.Fprintf(os.Stderr, "bench snapshot: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// memrunEnv mirrors memsim's DSM_MEMRUN resolution: the memory-run
// batch is on unless explicitly disabled. Like the tier, it may only
// move wall_ms, never cycles.
func memrunEnv() string {
	switch os.Getenv("DSM_MEMRUN") {
	case "off", "0", "false":
		return "off"
	}
	return "on"
}

func writeSnapshot(path string) error {
	snapMu.Lock()
	defer snapMu.Unlock()
	if len(snapRecs) == 0 {
		return nil
	}
	snap := benchSnapshot{
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      "quick",
		// The sweeps run at the Sizes default (auto), so the resolved
		// tier is what actually executed; cycles are tier-independent.
		Tier:   exec.TierAuto.Resolve().String(),
		Memrun: memrunEnv(),
	}
	names := make([]string, 0, len(snapRecs))
	for n := range snapRecs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		snap.Sweeps = append(snap.Sweeps, snapRecs[n])
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// TestFigureShapes asserts the paper's qualitative results hold at Quick
// scale (the full-scale record lives in EXPERIMENTS.md):
//
//   - Figure 5 (transpose): reshaping wins and first-touch loses at the
//     largest processor count ("the reshaped version obtains the best
//     performance", §8.2).
//   - Table 2: each optimization level improves on the previous, and fully
//     optimized reshaping is within a few percent of the original
//     non-reshaped code.
func TestFigureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	s := experiments.Quick()
	s.TransIters = 4

	rows, err := experiments.Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	maxP := 0
	at := map[string]experiments.Row{}
	for _, r := range rows {
		if r.P > maxP {
			maxP = r.P
		}
	}
	for _, r := range rows {
		if r.P == maxP {
			at[r.Variant] = r
		}
	}
	if at["reshaped"].Speedup <= at["first-touch"].Speedup {
		t.Errorf("fig5 shape: reshaped (%.2fx) must beat first-touch (%.2fx) at P=%d",
			at["reshaped"].Speedup, at["first-touch"].Speedup, maxP)
	}
	if at["reshaped"].Speedup <= at["round-robin"].Speedup {
		t.Errorf("fig5 shape: reshaped (%.2fx) must beat round-robin (%.2fx) at P=%d",
			at["reshaped"].Speedup, at["round-robin"].Speedup, maxP)
	}

	t2, err := experiments.Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 5 {
		t.Fatalf("table2 rows = %d", len(t2))
	}
	for i := 1; i < 4; i++ {
		if t2[i].Cycles > t2[i-1].Cycles {
			t.Errorf("table2 not monotone: %q (%d) worse than %q (%d)",
				t2[i].Variant, t2[i].Cycles, t2[i-1].Variant, t2[i-1].Cycles)
		}
	}
	full, orig := float64(t2[3].Cycles), float64(t2[4].Cycles)
	if full > orig*1.15 {
		t.Errorf("table2: optimized reshape (%.0f) should be within ~15%% of original (%.0f)", full, orig)
	}
}
