// Benchmarks regenerating the paper's evaluation (§8), one per table and
// figure. Each benchmark runs the corresponding experiment at the Quick
// scale and reports the simulated results as custom metrics:
//
//	sim-cycles       simulated execution time of the measured section
//	sim-speedup      speedup over the serial build (figures)
//
// cmd/dsmbench runs the same experiments at full (paper/16) scale;
// EXPERIMENTS.md records those results against the paper's.
package main

import (
	"fmt"
	"testing"

	"dsmdist/internal/experiments"
)

// benchRows runs an experiment once per b.N and reports the last rows.
func benchRows(b *testing.B, fn func(experiments.Sizes) ([]experiments.Row, error), s experiments.Sizes) []experiments.Row {
	b.Helper()
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = fn(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rows
}

// BenchmarkTable2 reproduces Table 2: the reshape-optimization ablation on
// the LU kernel, one processor.
func BenchmarkTable2(b *testing.B) {
	s := experiments.Quick()
	rows := benchRows(b, experiments.Table2, s)
	for _, r := range rows {
		b.ReportMetric(float64(r.Cycles), "sim-cycles-"+shortLabel(r.Variant))
	}
}

func shortLabel(v string) string {
	switch v {
	case "reshape, no optimizations":
		return "noopt"
	case "reshape, tile and peel":
		return "tilepeel"
	case "reshape, tile and peel, hoist":
		return "hoist"
	case "reshape, all optimizations":
		return "full"
	case "original without reshaping":
		return "original"
	}
	return v
}

// figBench runs a figure experiment and reports per-variant speedups at the
// largest processor count.
func figBench(b *testing.B, fn func(experiments.Sizes) ([]experiments.Row, error)) {
	s := experiments.Quick()
	rows := benchRows(b, fn, s)
	maxP := 0
	for _, r := range rows {
		if r.P > maxP {
			maxP = r.P
		}
	}
	for _, r := range rows {
		if r.P == maxP {
			b.ReportMetric(r.Speedup, fmt.Sprintf("sim-speedup-%s-p%d", r.Variant, r.P))
		}
	}
}

// BenchmarkFig4 reproduces Figure 4: NAS-LU speedups under the four
// placement strategies.
func BenchmarkFig4(b *testing.B) { figBench(b, experiments.Fig4) }

// BenchmarkFig5 reproduces Figure 5: matrix-transpose speedups.
func BenchmarkFig5(b *testing.B) { figBench(b, experiments.Fig5) }

// BenchmarkFig6 reproduces Figure 6: 2-D convolution, small input, one- and
// two-level parallelism.
func BenchmarkFig6(b *testing.B) { figBench(b, experiments.Fig6) }

// BenchmarkFig7 reproduces Figure 7: 2-D convolution, large input.
func BenchmarkFig7(b *testing.B) { figBench(b, experiments.Fig7) }

// TestFigureShapes asserts the paper's qualitative results hold at Quick
// scale (the full-scale record lives in EXPERIMENTS.md):
//
//   - Figure 5 (transpose): reshaping wins and first-touch loses at the
//     largest processor count ("the reshaped version obtains the best
//     performance", §8.2).
//   - Table 2: each optimization level improves on the previous, and fully
//     optimized reshaping is within a few percent of the original
//     non-reshaped code.
func TestFigureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	s := experiments.Quick()
	s.TransIters = 4

	rows, err := experiments.Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	maxP := 0
	at := map[string]experiments.Row{}
	for _, r := range rows {
		if r.P > maxP {
			maxP = r.P
		}
	}
	for _, r := range rows {
		if r.P == maxP {
			at[r.Variant] = r
		}
	}
	if at["reshaped"].Speedup <= at["first-touch"].Speedup {
		t.Errorf("fig5 shape: reshaped (%.2fx) must beat first-touch (%.2fx) at P=%d",
			at["reshaped"].Speedup, at["first-touch"].Speedup, maxP)
	}
	if at["reshaped"].Speedup <= at["round-robin"].Speedup {
		t.Errorf("fig5 shape: reshaped (%.2fx) must beat round-robin (%.2fx) at P=%d",
			at["reshaped"].Speedup, at["round-robin"].Speedup, maxP)
	}

	t2, err := experiments.Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 5 {
		t.Fatalf("table2 rows = %d", len(t2))
	}
	for i := 1; i < 4; i++ {
		if t2[i].Cycles > t2[i-1].Cycles {
			t.Errorf("table2 not monotone: %q (%d) worse than %q (%d)",
				t2[i].Variant, t2[i].Cycles, t2[i-1].Variant, t2[i-1].Cycles)
		}
	}
	full, orig := float64(t2[3].Cycles), float64(t2[4].Cycles)
	if full > orig*1.15 {
		t.Errorf("table2: optimized reshape (%.0f) should be within ~15%% of original (%.0f)", full, orig)
	}
}
