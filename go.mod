module dsmdist

go 1.22
