// dsmbench regenerates the paper's evaluation (§8): Table 2 and Figures
// 4–7, on the scaled simulated Origin-2000. See EXPERIMENTS.md for the
// recorded outputs and the comparison against the paper.
//
// Usage:
//
//	dsmbench                      run everything at full (scaled) size
//	dsmbench -list                list the experiments with descriptions
//	dsmbench -exp fig5            run one experiment
//	                              (table2 | fig4 | fig5 | fig6 | fig7)
//	dsmbench -quick               small sizes for a fast smoke run
//	dsmbench -procs 1,4,16,64     override the processor sweep
//	dsmbench -par 4               host worker budget: sets the shared
//	                              hostpool budget that sweep workers AND the
//	                              parallel engine's region workers draw from
//	                              (0 = GOMAXPROCS; simulated results are
//	                              bit-identical at any setting)
//	dsmbench -engine parallel     host execution engine per point
//	                              (serial | parallel | auto; bit-identical)
//	dsmbench -progress            live progress line on stderr per sweep
//	                              (points done/total, compile-cache hits,
//	                              ETA), with the lowest-index failure
//	                              reported as soon as it is definitive
//	dsmbench -remote host:port    ship each sweep to a dsmd service as ONE
//	                              batch submission instead of simulating
//	                              locally; repeat sweeps are served from
//	                              the service's content-addressed result
//	                              cache (0 new simulations) and rows are
//	                              identical to local ones except wall_ms.
//	                              fig5/fig6/fig7 only: table2/fig4
//	                              customize node memory and redist needs a
//	                              local recorder, so they stay local-only
//	dsmbench -json rows.json      also write every row (including the full
//	                              per-policy memory-system counters and the
//	                              host wall_ms per point) as JSON
//	dsmbench -cpuprofile cpu.pb   host pprof profiles of the harness itself
//	dsmbench -memprofile mem.pb   (the simulated machine's profiler is
//	                              cmd/dsmprof)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dsmdist/internal/exec"
	"dsmdist/internal/experiments"
	"dsmdist/internal/hostpool"
	"dsmdist/internal/service"
)

func main() {
	expName := flag.String("exp", "all", "experiment: all | table2 | fig4 | fig5 | fig6 | fig7")
	list := flag.Bool("list", false, "list available experiments and exit")
	quick := flag.Bool("quick", false, "use small sizes")
	procsFlag := flag.String("procs", "", "comma-separated processor counts")
	par := flag.Int("par", 0, "host worker budget shared by sweeps and the parallel engine (0 = GOMAXPROCS, 1 = serial)")
	engineName := flag.String("engine", "auto", "host engine: serial | parallel | auto")
	tierName := flag.String("tier", "auto", "execution tier: classic | compiled | auto")
	jsonOut := flag.String("json", "", "write all rows as JSON to file")
	progress := flag.Bool("progress", false, "live progress line on stderr per sweep")
	remote := flag.String("remote", "", "dsmd service URL: run sweep points there as one batch per sweep")
	cpuProfile := flag.String("cpuprofile", "", "write a host CPU profile to file")
	memProfile := flag.String("memprofile", "", "write a host heap profile to file")
	flag.Parse()

	if *list {
		for _, e := range experiments.Catalog() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	sizes := experiments.Full()
	if *quick {
		sizes = experiments.Quick()
	}
	sizes.Par = *par
	if *par > 0 {
		// One budget governs both levels of host parallelism: sweep
		// points and the parallel engine's per-region workers.
		hostpool.SetBudget(*par)
	}
	eng, err := exec.ParseEngine(*engineName)
	die(err)
	sizes.Engine = eng
	tier, err := exec.ParseTier(*tierName)
	die(err)
	sizes.Tier = tier
	if *progress {
		sizes.Progress = os.Stderr
	}
	var cli *service.Client
	if *remote != "" {
		cli = service.NewClient(*remote)
		cli.Tenant = "bench"
		die(cli.Health())
		sizes.Remote = cli
	}
	if *procsFlag != "" {
		var ps []int
		for _, tok := range strings.Split(*procsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			die(err)
			ps = append(ps, v)
		}
		sizes.Procs = ps
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		die(err)
		die(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			die(f.Close())
		}()
	}

	catalog := experiments.Catalog()
	if *expName != "all" {
		e, err := experiments.Find(*expName)
		die(err)
		catalog = []experiments.Experiment{e}
	}
	var allRows []experiments.Row
	for _, e := range catalog {
		fmt.Printf("==== %s ====\n", e.Name)
		t0 := time.Now()
		rows, err := e.Run(sizes)
		die(err)
		experiments.Print(os.Stdout, rows)
		fmt.Printf("host: %s wall, budget %d workers, engine %s\n\n",
			time.Since(t0).Round(time.Millisecond), hostpool.Budget(), eng)
		allRows = append(allRows, rows...)
	}
	if cli != nil {
		fmt.Printf("remote: %d of %d points served from the dsmd cache\n",
			cli.CacheHits(), cli.Requests())
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		die(err)
		die(experiments.WriteJSON(f, allRows))
		die(f.Close())
		fmt.Printf("wrote %d rows to %s\n", len(allRows), *jsonOut)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		die(err)
		runtime.GC()
		die(pprof.WriteHeapProfile(f))
		die(f.Close())
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmbench: %v\n", err)
		os.Exit(1)
	}
}
