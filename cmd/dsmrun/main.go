// dsmrun executes a compiled image (or compiles sources on the fly) on the
// simulated Origin-2000 and reports time and memory-system statistics.
//
// Usage:
//
//	dsmrun [flags] prog.img
//	dsmrun [flags] main.f [more.f ...]
//
// Flags:
//
//	-p N          processors (default 1)
//	-policy P     first-touch (ft) | round-robin (rr) (default first-touch).
//	              The policy only governs pages NOT claimed by a
//	              distribution directive: arrays under c$distribute get
//	              explicit regular placement and c$distribute_reshape
//	              arrays live in per-processor pools, regardless of this
//	              flag (paper §4.2/§4.3). Unknown names are rejected with
//	              the accepted set.
//	-machine M    origin2000 | scaled | tiny (default scaled)
//	-stats        print per-processor counters
//	-arrays       print the final contents of small arrays (<= 64 elements)
//	-trace FILE   write a Chrome trace_event timeline (chrome://tracing)
//	-prof         print a dsmprof-style profile after the run
//	-redist M     scheduled | serial (default scheduled): cost model for
//	              c$redistribute. "scheduled" moves data as a round-based
//	              bulk-transfer collective across all nodes; "serial" keeps
//	              the legacy per-page walk charged to the calling processor
//	              (A/B comparison)
//	-engine E     serial | parallel | auto (default auto): host execution
//	              engine. The parallel engine runs simulated processors on
//	              real cores; results are bit-identical to serial (the
//	              DSM_ENGINE environment variable overrides auto)
//	-tier T       classic | compiled | auto (default auto): bytecode
//	              execution tier. "compiled" pre-translates the program
//	              into fused closures; results are bit-identical to the
//	              classic interpreter (the DSM_TIER environment variable
//	              overrides auto)
//	-max-quanta N raise the runaway-loop guard (scheduling rounds before
//	              the run is aborted as an infinite loop)
//	-json         print the run's statistics as JSON instead of text
//	              (a schema-versioned document, "v": 1)
//	-remote URL   submit the job to a dsmd simulation service instead of
//	              building and running locally. The service's result cache
//	              is content-addressed (core.JobKey), so a repeated job is
//	              served without simulating, byte-identical to the local
//	              -json output. Sources only (no .img), and the host-side
//	              observability flags (-trace/-serve/-series/-prof/
//	              -cpuprofile/-memprofile) do not apply
//	-cpuprofile F write a host CPU profile to F (go tool pprof)
//	-memprofile F write a host heap profile to F at exit
//
// Live observability (all host-side: none of these change a simulated
// cycle — the run's -json output is byte-identical with or without them):
//
//	-serve ADDR   serve /snapshot, /series, /trace and an HTML dashboard
//	              while the run executes; keeps serving after the run
//	              finishes until interrupted
//	-series FILE  append cycle-sampled snapshot rows to FILE as JSONL
//	-sample N     snapshot every N simulated cycles (default 250000)
//	-trace-events N  cap the in-memory trace buffer (default 1<<20, or
//	              the DSM_TRACE_EVENTS environment variable). With -trace
//	              the events stream to FILE.spool as the run progresses and
//	              the cap only bounds staging memory; an interrupted run is
//	              finalized from the spool into a loadable partial trace.
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"dsmdist/internal/codegen"
	"dsmdist/internal/core"
	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
	"dsmdist/internal/service"
)

func main() {
	procs := flag.Int("p", 1, "number of processors")
	policyName := flag.String("policy", "first-touch",
		"default page policy, one of: "+ospage.PolicyNames)
	machName := flag.String("machine", "scaled", "machine: origin2000 | scaled | tiny")
	stats := flag.Bool("stats", false, "print per-processor statistics")
	arrays := flag.Bool("arrays", false, "print final contents of small arrays")
	traceOut := flag.String("trace", "", "write Chrome trace-event JSON to file")
	prof := flag.Bool("prof", false, "print a profile breakdown after the run")
	redist := flag.String("redist", "scheduled", "c$redistribute model: scheduled | serial")
	engineName := flag.String("engine", "auto", "host engine: serial | parallel | auto")
	tierName := flag.String("tier", "auto", "execution tier: classic | compiled | auto")
	maxQuanta := flag.Int64("max-quanta", 0, "runaway-loop guard: max scheduling rounds (0 = default)")
	jsonOut := flag.Bool("json", false, "print statistics as JSON")
	remote := flag.String("remote", "", "submit to a dsmd service at this URL instead of running locally")
	cpuProfile := flag.String("cpuprofile", "", "write host CPU profile to file")
	memProfile := flag.String("memprofile", "", "write host heap profile to file at exit")
	serveAddr := flag.String("serve", "", "serve live run views on this address (e.g. :8080)")
	seriesOut := flag.String("series", "", "append cycle-sampled snapshot rows to this JSONL file")
	sample := flag.Int64("sample", 0, "snapshot sampling interval in simulated cycles (0 = default)")
	traceEvents := flag.Int("trace-events", 0, "in-memory trace event cap (0 = default/env)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "dsmrun: no input")
		os.Exit(2)
	}

	var cfg *machine.Config
	switch *machName {
	case "origin2000":
		cfg = machine.Origin2000(*procs)
	case "scaled":
		cfg = machine.Scaled(*procs)
	case "tiny":
		cfg = machine.Tiny(*procs)
	default:
		die(fmt.Errorf("unknown machine %q (accepted: origin2000, scaled, tiny)", *machName))
	}
	policy, err := ospage.ParsePolicy(*policyName)
	die(err)
	engine, err := exec.ParseEngine(*engineName)
	die(err)
	tier, err := exec.ParseTier(*tierName)
	die(err)

	if *remote != "" {
		runRemote(*remote, *machName, *procs, *policyName, *redist,
			*engineName, *tierName, *jsonOut, flag.Args())
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		die(err)
		die(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			die(err)
			runtime.GC()
			die(pprof.WriteHeapProfile(f))
			f.Close()
		}()
	}
	var redistSerial bool
	switch *redist {
	case "scheduled":
	case "serial":
		redistSerial = true
	default:
		die(fmt.Errorf("unknown -redist %q (accepted: scheduled, serial)", *redist))
	}

	// The observability layer is only attached when asked for, keeping
	// plain runs on the untraced fast path.
	var rec *obs.Recorder
	if *traceOut != "" || *prof || *serveAddr != "" || *seriesOut != "" {
		rec = obs.NewRecorder(cfg)
		if *traceOut != "" || *serveAddr != "" {
			rec.EnableTrace(*traceEvents)
		}
	}

	// Incremental trace export: events spool to disk as the run goes, so
	// an interrupt still leaves a finalizable partial trace. -serve gets a
	// spool too (backing /trace) even without -trace, parked in tmp.
	var ts *obs.TraceStream
	var spool *obs.SpoolSink
	if *traceOut != "" {
		var err error
		ts, err = obs.StreamTraceToFile(rec, *traceOut)
		die(err)
		spool = ts.Spool
	} else if *serveAddr != "" {
		tmp := filepath.Join(os.TempDir(), fmt.Sprintf("dsmrun-%d.spool", os.Getpid()))
		sink, err := obs.NewSpoolSink(tmp)
		die(err)
		rec.SetTraceSink(sink)
		spool = sink
	}

	// Cycle-sampled snapshot series: always on under -serve (it feeds
	// /snapshot and /series), optionally persisted with -series.
	if *seriesOut != "" || *serveAddr != "" {
		var w *os.File
		if *seriesOut != "" {
			var err error
			w, err = os.Create(*seriesOut)
			die(err)
		}
		if w != nil {
			rec.EnableSeries(*sample, w)
		} else {
			rec.EnableSeries(*sample, nil)
		}
	}

	// Serve the live views while the run executes.
	if *serveAddr != "" {
		ln, err := obs.NewLiveServer(rec, spool).Serve(*serveAddr)
		die(err)
		fmt.Fprintf(os.Stderr, "dsmrun: serving live run on http://%s/\n", ln.Addr())
	}

	// On interrupt, finalize the partial trace from the spool before
	// exiting: the whole point of streaming is that Ctrl-C mid-run still
	// leaves loadable output.
	if *traceOut != "" {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			if err := ts.Finalize(); err == nil {
				fmt.Fprintf(os.Stderr, "dsmrun: interrupted; partial trace finalized to %s\n", *traceOut)
			}
			os.Exit(130)
		}()
	}

	var res *codegen.Result
	if strings.HasSuffix(flag.Arg(0), ".img") {
		f, err := os.Open(flag.Arg(0))
		die(err)
		res = &codegen.Result{}
		die(gob.NewDecoder(f).Decode(res))
		f.Close()
	} else {
		tc := core.New()
		tc.Rec = rec
		srcs := map[string]string{}
		for _, a := range flag.Args() {
			data, err := os.ReadFile(a)
			die(err)
			srcs[a] = string(data)
		}
		img, err := tc.Build(srcs)
		die(err)
		res = img.Res
	}

	run, err := exec.Run(res, cfg, exec.Options{Policy: policy, Rec: rec,
		RedistSerial: redistSerial, Engine: engine, Tier: tier, MaxQuanta: *maxQuanta})
	die(err)

	// Normal exit: Recorder.Finish drained the stream at the final clock;
	// finalize the spool into the loadable trace.
	if *traceOut != "" {
		die(ts.Finalize())
	}

	if *jsonOut {
		die(writeJSON(os.Stdout, cfg, policy, run))
		serveWait(*serveAddr)
		return
	}

	fmt.Printf("machine: %s, %d processors (%d nodes), policy %s\n",
		cfg.Name, cfg.NProcs, cfg.NNodes(), policy)
	if run.EngineUsed == exec.EngineParallel {
		fmt.Printf("engine:  parallel (%d epochs committed, %d serial fallbacks)\n",
			run.EpochsCommitted, run.EpochsFallback)
	}
	if run.TierUsed == exec.TierClassic {
		fmt.Printf("tier:    classic interpreter\n")
	}
	fmt.Printf("cycles:  %d (%.6f s at %d MHz)\n", run.Cycles, run.Seconds(), cfg.ClockMHz)
	if run.TimerCycles > 0 {
		fmt.Printf("timed section: %d cycles (%.6f s)\n",
			run.TimerCycles, cfg.Seconds(run.TimerCycles))
	}
	t := run.Total
	fmt.Printf("loads %d  stores %d  L1miss %d  L2miss %d (local %d remote %d)  TLBmiss %d\n",
		t.Loads, t.Stores, t.L1Miss, t.L2Miss, t.L2MissLocal, t.L2MissRemote, t.TLBMiss)
	fmt.Printf("invalidations %d  interventions %d  mem-wait %d cyc  divides hw=%d soft=%d\n",
		t.InvSent, t.Interventions, t.WaitCyc, run.HwDiv, run.SoftDiv)
	fmt.Printf("pages: %d mapped (%d first-touch, %d round-robin, %d placed, %d migrated, %d spilled)\n",
		run.Pages.Mapped, run.Pages.FirstTouch, run.Pages.RoundRobin,
		run.Pages.Placed, run.Pages.Migrated, run.Pages.Spilled)

	if *stats {
		for p := 0; p < cfg.NProcs; p++ {
			s := run.Stats[p]
			fmt.Printf("  proc %3d: loads %10d  L2miss %8d  remote %8d  tlb %8d  wait %10d\n",
				p, s.Loads, s.L2Miss, s.L2MissRemote, s.TLBMiss, s.WaitCyc)
		}
		fmt.Println("per-array L2-miss traffic:")
		for _, st := range run.RT.Arrays {
			fmt.Printf("  %-20s %10d misses\n", st.Plan.Unit+"."+st.Plan.Name, run.RT.Traffic(st))
		}
	}
	if *arrays {
		for _, st := range run.RT.Arrays {
			n := st.TotalElems()
			if n > 64 {
				fmt.Printf("  %s.%s: %d elements (not printed)\n", st.Plan.Unit, st.Plan.Name, n)
				continue
			}
			fmt.Printf("  %s.%s = %v\n", st.Plan.Unit, st.Plan.Name, run.RT.Gather(st))
		}
	}
	if *prof {
		fmt.Println()
		die(rec.Summarize(10).WriteText(os.Stdout))
	}
	if *traceOut != "" {
		fmt.Printf("trace: wrote %d events to %s (open in chrome://tracing)\n",
			rec.TraceCount(), *traceOut)
	}
	if *seriesOut != "" {
		fmt.Printf("series: wrote %d snapshot rows to %s\n",
			len(rec.SeriesRows()), *seriesOut)
	}
	serveWait(*serveAddr)
}

// serveWait keeps the live endpoints up after the run until interrupted,
// so a dashboard or curl can still read the finished run's views.
func serveWait(addr string) {
	if addr == "" {
		return
	}
	fmt.Fprintln(os.Stderr, "dsmrun: run finished; still serving — interrupt to exit")
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
}

// writeJSON emits the run's simulated statistics as the canonical
// schema-versioned result document ("v": 1). Every field is a simulated
// quantity, so the output is byte-identical across host engines and tiers
// (the CI smoke tests diff it), and byte-identical to what a dsmd service
// caches and serves for the same job.
func writeJSON(w *os.File, cfg *machine.Config, policy ospage.Policy, run *exec.Result) error {
	return core.NewResultDoc(cfg, policy, run).Encode(w)
}

// runRemote submits the job to a dsmd service and renders the returned
// result document. The request mirrors the local defaults exactly
// (O3, runtime checks on), so the service's document is byte-identical to
// a local -json run of the same flags.
func runRemote(base, machName string, procs int, policy, redist, engine, tier string, jsonOut bool, args []string) {
	srcs := map[string]string{}
	for _, a := range args {
		if strings.HasSuffix(a, ".img") {
			die(fmt.Errorf("-remote runs from sources, not compiled images (%s)", a))
		}
		data, err := os.ReadFile(a)
		die(err)
		srcs[a] = string(data)
	}
	client := service.NewClient(base)
	view, err := client.Run(&service.JobRequest{
		Sources: srcs,
		Machine: machName,
		Procs:   procs,
		Policy:  policy,
		Redist:  redist,
		Engine:  engine,
		Tier:    tier,
	})
	die(err)

	if jsonOut {
		os.Stdout.Write(view.Result)
		return
	}
	var doc core.ResultDoc
	die(json.Unmarshal(view.Result, &doc))
	how := "simulated by the service"
	if view.Cached {
		how = "served from the result cache (no simulation)"
	} else if view.Coalesced {
		how = "coalesced onto an identical in-flight job"
	}
	fmt.Printf("remote:  %s job %s — %s\n", base, view.ID, how)
	fmt.Printf("machine: %s, %d processors, policy %s\n", doc.Machine, doc.Procs, doc.Policy)
	fmt.Printf("cycles:  %d (%.6f s)\n", doc.Cycles, doc.Seconds)
	if doc.TimerCycles > 0 {
		fmt.Printf("timed section: %d cycles\n", doc.TimerCycles)
	}
	t := doc.Total
	fmt.Printf("loads %d  stores %d  L1miss %d  L2miss %d (local %d remote %d)  TLBmiss %d\n",
		t.Loads, t.Stores, t.L1Miss, t.L2Miss, t.L2MissLocal, t.L2MissRemote, t.TLBMiss)
	fmt.Printf("invalidations %d  interventions %d  mem-wait %d cyc  divides hw=%d soft=%d\n",
		t.InvSent, t.Interventions, t.WaitCyc, doc.HwDiv, doc.SoftDiv)
	fmt.Printf("pages: %d mapped (%d first-touch, %d round-robin, %d placed, %d migrated, %d spilled)\n",
		doc.Pages.Mapped, doc.Pages.FirstTouch, doc.Pages.RoundRobin,
		doc.Pages.Placed, doc.Pages.Migrated, doc.Pages.Spilled)
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmrun: %v\n", err)
		os.Exit(1)
	}
}
