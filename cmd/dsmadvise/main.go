// dsmadvise is the automatic data-distribution advisor: point it at a
// program in the Fortran subset and it proposes the c$distribute /
// c$distribute_reshape / affinity directives of the paper (§3). It
// extracts the affine access footprint of every doacross nest, scores a
// menu of legal candidate distributions with an analytic machine-model
// cost (optionally reweighed by a measured dsmprof heat map), verifies
// the best candidates on the simulator, and prints a ranked report with
// the winning directive text. Existing distribution directives in the
// input are ignored — the advisor starts from a clean slate.
//
// Usage:
//
//	dsmadvise [flags] main.f [more.f ...]
//
// Flags:
//
//	-p LIST       processor counts to evaluate, comma separated
//	              (default 1,4,16)
//	-machine M    origin2000 | scaled | tiny (default scaled)
//	-top K        candidates to verify on the simulator
//	              (default 6, -1 = all)
//	-par N        host workers for verification runs (0 = all cores);
//	              wall time only, the report is deterministic
//	-heat FILE    dsmprof -heat-json profile to seed the cost model
//	-json FILE    also write the ranked report as JSON
//	-rewrite FILE write the winning rewritten program to FILE
//	-remote URL   route the verification runs through a dsmd simulation
//	              service instead of simulating locally: the whole
//	              top-K × P fan-out ships as ONE atomically admitted batch
//	              submission and hits the service's shared
//	              content-addressed result cache (repeat advice runs and
//	              other users' runs of the same candidates cost no
//	              simulation). The report is identical to local
//	              verification — simulation is deterministic — and a
//	              cache-hit summary goes to stderr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dsmdist/internal/advisor"
	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/service"
)

func main() {
	procList := flag.String("p", "1,4,16", "processor counts, comma separated")
	machName := flag.String("machine", "scaled", "machine: origin2000 | scaled | tiny")
	topK := flag.Int("top", 6, "candidates to verify on the simulator (-1 = all)")
	par := flag.Int("par", 0, "host workers for verification (0 = all cores)")
	heatFile := flag.String("heat", "", "dsmprof -heat-json profile to seed the cost model")
	jsonOut := flag.String("json", "", "write the ranked report as JSON to file")
	rewriteOut := flag.String("rewrite", "", "write the winning rewritten program to file")
	remote := flag.String("remote", "", "verify candidates through a dsmd service at this URL")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "dsmadvise: no input sources")
		os.Exit(2)
	}

	procs, err := parseProcs(*procList)
	die(err)

	var mach func(int) *machine.Config
	switch *machName {
	case "origin2000":
		mach = machine.Origin2000
	case "scaled":
		mach = machine.Scaled
	case "tiny":
		mach = machine.Tiny
	default:
		die(fmt.Errorf("unknown machine %q (accepted: origin2000, scaled, tiny)", *machName))
	}

	var heat *obs.HeatMap
	if *heatFile != "" {
		f, err := os.Open(*heatFile)
		die(err)
		heat, err = obs.ReadHeatMap(f)
		f.Close()
		die(err)
	}

	srcs := map[string]string{}
	for _, a := range flag.Args() {
		data, err := os.ReadFile(a)
		die(err)
		srcs[a] = string(data)
	}

	aopts := advisor.Options{
		Procs:   procs,
		Machine: mach,
		TopK:    *topK,
		Par:     *par,
		Heat:    heat,
	}
	var cli *service.Client
	if *remote != "" {
		cli = service.NewClient(*remote)
		cli.Tenant = "advisor"
		die(cli.Health())
		aopts.VerifyBatch = remoteVerifyBatch(cli, *machName)
	}

	rep, err := advisor.Advise(srcs, aopts)
	die(err)

	die(rep.WriteText(os.Stdout))
	if *jsonOut != "" {
		die(writeTo(*jsonOut, rep.WriteJSON))
	}
	if *rewriteOut != "" {
		die(os.WriteFile(*rewriteOut, []byte(rep.WinnerSource), 0o644))
	}
	if cli != nil {
		fmt.Fprintf(os.Stderr, "dsmadvise: remote: %d of %d verification points served from the dsmd cache\n",
			cli.CacheHits(), cli.Requests())
	}
}

// remoteVerifyBatch builds the advisor VerifyBatch hook: the whole
// verification fan-out becomes one dsmd batch submission (atomic
// admission, per-element cache hits, results in request order). Runtime
// checks are off, matching the advisor's local verification path, so the
// job keys line up with sweeps.
func remoteVerifyBatch(cli *service.Client, machName string) func([]advisor.VerifyPoint) ([]int64, error) {
	off := false
	return func(points []advisor.VerifyPoint) ([]int64, error) {
		batch := &service.BatchRequest{
			Defaults: service.JobRequest{
				Machine:       machName,
				RuntimeChecks: &off,
			},
		}
		for _, pt := range points {
			batch.Jobs = append(batch.Jobs, service.JobRequest{
				Sources: pt.Sources,
				Procs:   pt.Procs,
				Policy:  pt.Policy.String(),
			})
		}
		views, err := cli.RunBatch(batch)
		if err != nil {
			return nil, err
		}
		out := make([]int64, len(views))
		for i := range views {
			v := &views[i]
			if v.State != service.StateDone {
				return nil, fmt.Errorf("job %s ended %s: %s", v.ID, v.State, v.Error)
			}
			var doc core.ResultDoc
			if err := json.Unmarshal(v.Result, &doc); err != nil {
				return nil, fmt.Errorf("bad result document: %w", err)
			}
			out[i] = doc.Measured()
		}
		return out, nil
	}
}

func parseProcs(s string) ([]int, error) {
	var procs []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := strconv.Atoi(part)
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		procs = append(procs, p)
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("empty processor list")
	}
	return procs, nil
}

func writeTo(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmadvise: %v\n", err)
		os.Exit(1)
	}
}
