// dsmd is the long-running simulation service: an HTTP/JSON daemon that
// accepts (sources, machine config, policy, options) jobs, deduplicates
// them through a content-addressed result cache persisted on disk, and
// runs what remains on the simulated Origin-2000 under a bounded job queue
// with per-tenant concurrency limits. Because simulation is deterministic
// (bit-identical across engines and tiers), a run result is a pure
// function of its job spec: identical submissions — concurrent or days
// apart, from any client — cost exactly one simulation.
//
// Usage:
//
//	dsmd [flags]
//
// Flags:
//
//	-addr ADDR         listen address (default 127.0.0.1:8377)
//	-store DIR         persistent cache directory (default dsmd-store;
//	                   empty string disables persistence)
//	-store-bytes N     disk-cache bound in bytes, LRU-evicted (default 1 GiB)
//	-queue N           max queued jobs before submissions are rejected
//	                   with 429 (default 256)
//	-tenant-limit N    max concurrently running jobs per tenant (default 2)
//	-max-concurrent N  global running-job cap (0 = hostpool governed)
//	-compile-cache N   in-memory compiled-image cache entries (default 64)
//
// API:
//
//	POST /jobs               submit a job (blocks until done unless
//	                         "nowait":true in the body)
//	POST /batch              submit many jobs sharing defaults in one
//	                         request; admission is atomic (all fit in the
//	                         queue or the whole batch is a 429), each
//	                         element coalesces/cache-hits independently,
//	                         and the response lists per-element JobViews
//	                         in request order
//	GET  /jobs/{id}          job state: queued | running | done | failed
//	                         (?wait=1 blocks until the job finishes)
//	GET  /jobs/{id}/         live self-contained HTML dashboard for the job
//	GET  /jobs/{id}/snapshot live obs snapshot of a running job
//	GET  /jobs/{id}/series   cycle-sampled time series as JSONL, streamed
//	                         row by row while the job runs; bytes are
//	                         identical to a local dsmrun -series file
//	                         (?nofollow=1 returns what exists and stops)
//	GET  /stats              queue/cache/store counters
//	GET  /healthz            liveness
//
// On SIGTERM/SIGINT the daemon drains gracefully: it stops admitting,
// finishes (and persists) every queued and running job, flushes the store
// index, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dsmdist/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	storeDir := flag.String("store", "dsmd-store", "persistent cache directory (empty = memory only)")
	storeBytes := flag.Int64("store-bytes", service.DefaultStoreBytes, "disk cache bound in bytes (LRU)")
	queueLen := flag.Int("queue", 0, "max queued jobs (0 = default 256)")
	tenantLimit := flag.Int("tenant-limit", 0, "max running jobs per tenant (0 = default 2)")
	maxConcurrent := flag.Int("max-concurrent", 0, "global running-job cap (0 = hostpool governed)")
	compileCache := flag.Int("compile-cache", 0, "in-memory compile cache entries (0 = default 64)")
	flag.Parse()

	var store *service.Store
	if *storeDir != "" {
		var err error
		store, err = service.OpenStore(*storeDir, *storeBytes)
		die(err)
		fmt.Fprintf(os.Stderr, "dsmd: store %s: %d entries, %d bytes resident\n",
			*storeDir, store.Len(), store.Bytes())
	}

	srv := service.New(service.Options{
		Store:               store,
		MaxQueue:            *queueLen,
		TenantLimit:         *tenantLimit,
		MaxConcurrent:       *maxConcurrent,
		CompileCacheEntries: *compileCache,
	})

	ln, err := net.Listen("tcp", *addr)
	die(err)
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	fmt.Fprintf(os.Stderr, "dsmd: serving on http://%s/\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc

	// Graceful drain: close the listener (new connections refused; the
	// server also rejects submissions that raced in), let every admitted
	// job finish and persist, then flush the index and exit clean.
	fmt.Fprintln(os.Stderr, "dsmd: draining (finishing admitted jobs)...")
	ln.Close()
	die(srv.Drain())
	// Let handlers still blocked on a just-finished job flush their
	// responses before the process goes away.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	httpSrv.Shutdown(shutdownCtx)
	cancel()
	fmt.Fprintln(os.Stderr, "dsmd: drained, store flushed; bye")
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmd: %v\n", err)
		os.Exit(1)
	}
}
