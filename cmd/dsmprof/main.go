// dsmprof is the profiler for the simulated Origin-2000 — the analog of
// perfex/SpeedShop the paper's evaluation leans on (§8). It compiles (or
// loads) a program, runs it with the observability layer attached, and
// reports where the cycles went: a per-region breakdown (compute /
// local-miss / remote-miss / TLB / bandwidth-queue / barrier), per-array ×
// per-node heat maps, and the hottest pages by remote misses.
//
// Usage:
//
//	dsmprof [flags] prog.img
//	dsmprof [flags] main.f [more.f ...]
//
// Flags:
//
//	-p N          processors (default 1)
//	-policy P     first-touch (ft) | round-robin (rr); applies only to
//	              pages not claimed by a c$distribute directive
//	-machine M    origin2000 | scaled | tiny (default scaled)
//	-top N        hot pages to list (default 10)
//	-json FILE    also write the profile summary as JSON
//	-csv FILE     also write the per-region breakdown as CSV
//	-trace FILE   also write a Chrome trace_event timeline
//	-heat-json F  also write the per-array × per-node heat map in the
//	              schema internal/advisor consumes (dsmadvise -heat F)
//	-redist M     scheduled | serial (default scheduled): cost model for
//	              c$redistribute, as in dsmrun
//	-engine E     serial | parallel | auto (default auto): host execution
//	              engine, as in dsmrun; profiles are bit-identical across
//	              engines
//	-max-quanta N raise the runaway-loop guard, as in dsmrun
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dsmdist/internal/codegen"
	"dsmdist/internal/core"
	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
)

func main() {
	procs := flag.Int("p", 1, "number of processors")
	policyName := flag.String("policy", "first-touch", "default page policy: first-touch (ft) | round-robin (rr)")
	machName := flag.String("machine", "scaled", "machine: origin2000 | scaled | tiny")
	topN := flag.Int("top", 10, "hot pages to list")
	jsonOut := flag.String("json", "", "write JSON profile summary to file")
	csvOut := flag.String("csv", "", "write per-region CSV to file")
	traceOut := flag.String("trace", "", "write Chrome trace-event JSON to file")
	heatOut := flag.String("heat-json", "", "write the per-array heat map (advisor schema) to file")
	redist := flag.String("redist", "scheduled", "c$redistribute model: scheduled | serial")
	engineName := flag.String("engine", "auto", "host engine: serial | parallel | auto")
	maxQuanta := flag.Int64("max-quanta", 0, "runaway-loop guard: max scheduling rounds (0 = default)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "dsmprof: no input")
		os.Exit(2)
	}

	var cfg *machine.Config
	switch *machName {
	case "origin2000":
		cfg = machine.Origin2000(*procs)
	case "scaled":
		cfg = machine.Scaled(*procs)
	case "tiny":
		cfg = machine.Tiny(*procs)
	default:
		die(fmt.Errorf("unknown machine %q (accepted: origin2000, scaled, tiny)", *machName))
	}
	policy, err := ospage.ParsePolicy(*policyName)
	die(err)
	engine, err := exec.ParseEngine(*engineName)
	die(err)
	var redistSerial bool
	switch *redist {
	case "scheduled":
	case "serial":
		redistSerial = true
	default:
		die(fmt.Errorf("unknown -redist %q (accepted: scheduled, serial)", *redist))
	}

	rec := obs.NewRecorder(cfg)
	if *traceOut != "" {
		rec.EnableTrace(0)
	}

	var res *codegen.Result
	if strings.HasSuffix(flag.Arg(0), ".img") {
		f, err := os.Open(flag.Arg(0))
		die(err)
		res = &codegen.Result{}
		die(gob.NewDecoder(f).Decode(res))
		f.Close()
		rec.SetMeta("sources", flag.Arg(0))
	} else {
		tc := core.New()
		tc.Rec = rec
		srcs := map[string]string{}
		for _, a := range flag.Args() {
			data, err := os.ReadFile(a)
			die(err)
			srcs[a] = string(data)
		}
		img, err := tc.Build(srcs)
		die(err)
		res = img.Res
	}

	run, err := exec.Run(res, cfg, exec.Options{Policy: policy, Rec: rec,
		RedistSerial: redistSerial, Engine: engine, MaxQuanta: *maxQuanta})
	die(err)

	fmt.Printf("dsmprof: %d cycles (%.6f s at %d MHz), policy %s\n\n",
		run.Cycles, run.Seconds(), cfg.ClockMHz, policy)
	sum := rec.Summarize(*topN)
	die(sum.WriteText(os.Stdout))

	if *jsonOut != "" {
		die(writeTo(*jsonOut, sum.WriteJSON))
	}
	if *csvOut != "" {
		die(writeTo(*csvOut, sum.WriteCSV))
	}
	if *traceOut != "" {
		die(writeTo(*traceOut, rec.WriteTrace))
	}
	if *heatOut != "" {
		die(writeTo(*heatOut, rec.HeatMap().WriteJSON))
	}
}

func writeTo(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmprof: %v\n", err)
		os.Exit(1)
	}
}
