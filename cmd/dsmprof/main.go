// dsmprof is the profiler for the simulated Origin-2000 — the analog of
// perfex/SpeedShop the paper's evaluation leans on (§8). It compiles (or
// loads) a program, runs it with the observability layer attached, and
// reports where the cycles went: a per-region breakdown (compute /
// local-miss / remote-miss / TLB / bandwidth-queue / barrier), per-array ×
// per-node heat maps, and the hottest pages by remote misses.
//
// Usage:
//
//	dsmprof [flags] prog.img
//	dsmprof [flags] main.f [more.f ...]
//
// Flags:
//
//	-p N          processors (default 1)
//	-policy P     first-touch (ft) | round-robin (rr); applies only to
//	              pages not claimed by a c$distribute directive
//	-machine M    origin2000 | scaled | tiny (default scaled)
//	-top N        hot pages to list (default 10)
//	-json FILE    also write the profile summary as JSON
//	-csv FILE     also write the per-region breakdown as CSV
//	-trace FILE   also write a Chrome trace_event timeline
//	-heat-json F  also write the per-array × per-node heat map in the
//	              schema internal/advisor consumes (dsmadvise -heat F)
//	-redist M     scheduled | serial (default scheduled): cost model for
//	              c$redistribute, as in dsmrun
//	-engine E     serial | parallel | auto (default auto): host execution
//	              engine, as in dsmrun; profiles are bit-identical across
//	              engines
//	-max-quanta N raise the runaway-loop guard, as in dsmrun
//
// Live observability, as in dsmrun (host-side only; the profile numbers
// are unchanged):
//
//	-serve ADDR   serve /snapshot, /series, /trace and the HTML dashboard
//	              during the run, and keep serving until interrupted
//	-series FILE  append cycle-sampled snapshot rows to FILE as JSONL
//	-sample N     snapshot every N simulated cycles (default 250000)
//	-finalize SPOOL  convert an (interrupted) trace spool into loadable
//	              Chrome trace JSON at the -trace path and exit
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"dsmdist/internal/codegen"
	"dsmdist/internal/core"
	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
)

func main() {
	procs := flag.Int("p", 1, "number of processors")
	policyName := flag.String("policy", "first-touch", "default page policy: first-touch (ft) | round-robin (rr)")
	machName := flag.String("machine", "scaled", "machine: origin2000 | scaled | tiny")
	topN := flag.Int("top", 10, "hot pages to list")
	jsonOut := flag.String("json", "", "write JSON profile summary to file")
	csvOut := flag.String("csv", "", "write per-region CSV to file")
	traceOut := flag.String("trace", "", "write Chrome trace-event JSON to file")
	heatOut := flag.String("heat-json", "", "write the per-array heat map (advisor schema) to file")
	redist := flag.String("redist", "scheduled", "c$redistribute model: scheduled | serial")
	engineName := flag.String("engine", "auto", "host engine: serial | parallel | auto")
	tierName := flag.String("tier", "auto", "execution tier: classic | compiled | auto")
	maxQuanta := flag.Int64("max-quanta", 0, "runaway-loop guard: max scheduling rounds (0 = default)")
	serveAddr := flag.String("serve", "", "serve live run views on this address (e.g. :8080)")
	seriesOut := flag.String("series", "", "append cycle-sampled snapshot rows to this JSONL file")
	sample := flag.Int64("sample", 0, "snapshot sampling interval in simulated cycles (0 = default)")
	finalize := flag.String("finalize", "", "convert this trace spool to Chrome trace JSON (with -trace OUT) and exit")
	flag.Parse()

	if *finalize != "" {
		out := *traceOut
		if out == "" {
			out = strings.TrimSuffix(*finalize, ".spool") + ".json"
		}
		die(obs.FinalizeSpoolFile(*finalize, out))
		fmt.Printf("dsmprof: finalized %s to %s\n", *finalize, out)
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "dsmprof: no input")
		os.Exit(2)
	}

	var cfg *machine.Config
	switch *machName {
	case "origin2000":
		cfg = machine.Origin2000(*procs)
	case "scaled":
		cfg = machine.Scaled(*procs)
	case "tiny":
		cfg = machine.Tiny(*procs)
	default:
		die(fmt.Errorf("unknown machine %q (accepted: origin2000, scaled, tiny)", *machName))
	}
	policy, err := ospage.ParsePolicy(*policyName)
	die(err)
	engine, err := exec.ParseEngine(*engineName)
	die(err)
	tier, err := exec.ParseTier(*tierName)
	die(err)
	var redistSerial bool
	switch *redist {
	case "scheduled":
	case "serial":
		redistSerial = true
	default:
		die(fmt.Errorf("unknown -redist %q (accepted: scheduled, serial)", *redist))
	}

	rec := obs.NewRecorder(cfg)
	if *traceOut != "" || *serveAddr != "" {
		rec.EnableTrace(0)
	}

	// Streaming observability, mirroring dsmrun: trace spool on disk,
	// cycle-sampled series, live endpoints.
	var ts *obs.TraceStream
	var spool *obs.SpoolSink
	if *traceOut != "" {
		var err error
		ts, err = obs.StreamTraceToFile(rec, *traceOut)
		die(err)
		spool = ts.Spool
	} else if *serveAddr != "" {
		tmp := filepath.Join(os.TempDir(), fmt.Sprintf("dsmprof-%d.spool", os.Getpid()))
		sink, err := obs.NewSpoolSink(tmp)
		die(err)
		rec.SetTraceSink(sink)
		spool = sink
	}
	if *seriesOut != "" || *serveAddr != "" {
		var w *os.File
		if *seriesOut != "" {
			var err error
			w, err = os.Create(*seriesOut)
			die(err)
		}
		if w != nil {
			rec.EnableSeries(*sample, w)
		} else {
			rec.EnableSeries(*sample, nil)
		}
	}
	if *serveAddr != "" {
		ln, err := obs.NewLiveServer(rec, spool).Serve(*serveAddr)
		die(err)
		fmt.Fprintf(os.Stderr, "dsmprof: serving live run on http://%s/\n", ln.Addr())
	}
	if *traceOut != "" {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			if err := ts.Finalize(); err == nil {
				fmt.Fprintf(os.Stderr, "dsmprof: interrupted; partial trace finalized to %s\n", *traceOut)
			}
			os.Exit(130)
		}()
	}

	var res *codegen.Result
	if strings.HasSuffix(flag.Arg(0), ".img") {
		f, err := os.Open(flag.Arg(0))
		die(err)
		res = &codegen.Result{}
		die(gob.NewDecoder(f).Decode(res))
		f.Close()
		rec.SetMeta("sources", flag.Arg(0))
	} else {
		tc := core.New()
		tc.Rec = rec
		srcs := map[string]string{}
		for _, a := range flag.Args() {
			data, err := os.ReadFile(a)
			die(err)
			srcs[a] = string(data)
		}
		img, err := tc.Build(srcs)
		die(err)
		res = img.Res
	}

	run, err := exec.Run(res, cfg, exec.Options{Policy: policy, Rec: rec,
		RedistSerial: redistSerial, Engine: engine, Tier: tier, MaxQuanta: *maxQuanta})
	die(err)

	fmt.Printf("dsmprof: %d cycles (%.6f s at %d MHz), policy %s\n\n",
		run.Cycles, run.Seconds(), cfg.ClockMHz, policy)
	sum := rec.Summarize(*topN)
	die(sum.WriteText(os.Stdout))

	if *jsonOut != "" {
		die(writeTo(*jsonOut, sum.WriteJSON))
	}
	if *csvOut != "" {
		die(writeTo(*csvOut, sum.WriteCSV))
	}
	if *traceOut != "" {
		die(ts.Finalize())
	}
	if *heatOut != "" {
		die(writeTo(*heatOut, rec.HeatMap().WriteJSON))
	}
	if *serveAddr != "" {
		fmt.Fprintln(os.Stderr, "dsmprof: run finished; still serving — interrupt to exit")
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		<-sigc
	}
}

func writeTo(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmprof: %v\n", err)
		os.Exit(1)
	}
}
