// dsmfc is the compiler driver: it compiles Fortran-subset sources with the
// paper's data-distribution directives into object files (with §5 shadow
// sections), or — with -o — pre-links and links them into an executable
// image for dsmrun.
//
// Usage:
//
//	dsmfc -c file.f ...            compile each source to file.o
//	dsmfc -o prog.img file.f ...   compile and link sources (and/or .o files)
//	dsmfc -O0|-O1|-O2|-O3          reshape optimization level (§7); default -O3
//	dsmfc -nocheck                 disable the §6 runtime argument checks
//	dsmfc -S                       also print the transformed IR of each unit
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/core"
	"dsmdist/internal/ir"
	"dsmdist/internal/link"
	"dsmdist/internal/obj"
	"dsmdist/internal/xform"
)

func main() {
	compileOnly := flag.Bool("c", false, "compile to object files only")
	out := flag.String("o", "", "link into an executable image file")
	o0 := flag.Bool("O0", false, "no reshape optimizations")
	o1 := flag.Bool("O1", false, "tile and peel")
	o2 := flag.Bool("O2", false, "tile, peel, hoist")
	o3 := flag.Bool("O3", true, "all optimizations (default)")
	noCheck := flag.Bool("nocheck", false, "disable runtime argument checks")
	dumpIR := flag.Bool("S", false, "print transformed IR")
	dumpAsm := flag.Bool("dis", false, "print disassembled bytecode")
	flag.Parse()

	opt := xform.O3()
	switch {
	case *o0:
		opt = xform.O0()
	case *o1:
		opt = xform.O1()
	case *o2:
		opt = xform.O2()
	case *o3:
		opt = xform.O3()
	}
	tc := core.NewAt(opt)
	tc.RuntimeChecks = !*noCheck

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "dsmfc: no input files")
		os.Exit(2)
	}

	var objs []*obj.Object
	for _, arg := range flag.Args() {
		switch {
		case strings.HasSuffix(arg, ".o"):
			data, err := os.ReadFile(arg)
			die(err)
			o, err := obj.Decode(data)
			die(err)
			objs = append(objs, o)
		default:
			src, err := os.ReadFile(arg)
			die(err)
			o, err := tc.Compile(arg, string(src))
			die(err)
			objs = append(objs, o)
			if *compileOnly {
				data, err := o.Encode()
				die(err)
				oname := strings.TrimSuffix(filepath.Base(arg), filepath.Ext(arg)) + ".o"
				die(os.WriteFile(oname, data, 0o644))
				fmt.Printf("dsmfc: wrote %s (%d bytes, %d units, %d shadow entries)\n",
					oname, len(data), len(o.Units), len(o.Shadow))
			}
		}
	}
	if *compileOnly {
		return
	}

	img, err := tc.Link(objs...)
	die(err)
	if *dumpIR {
		for _, u := range img.Instances {
			fmt.Printf("==== unit %s ====\n%s\n", u.Name, ir.StmtsString(u.Body))
		}
	}
	for name, n := range img.Clones {
		if n > 1 {
			fmt.Printf("dsmfc: cloned %s into %d instances (distinct reshaped signatures)\n", name, n)
		}
	}
	if *dumpAsm {
		fmt.Print(bytecode.DisasmProgram(img.Res.Prog))
	}
	if *out != "" {
		die(writeImage(*out, img))
		fmt.Printf("dsmfc: wrote %s (%d functions, %d arrays)\n",
			*out, len(img.Res.Prog.Fns), len(img.Res.Arrays))
	}
}

// writeImage serializes a linked image with gob.
func writeImage(path string, img *link.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(img.Res)
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmfc: %v\n", err)
		os.Exit(1)
	}
}
