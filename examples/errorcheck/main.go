// Errorcheck demonstrates the paper's error-detection support (§6): the
// compile-time equivalence check, the link-time common-block consistency
// check, and the runtime hash-table check of reshaped argument passing —
// "errors [that] are otherwise extremely difficult to detect, since they
// are not easily distinguished from other algorithmic or coding errors".
package main

import (
	"fmt"

	"dsmdist/internal/core"
	"dsmdist/internal/machine"
)

func main() {
	tc := core.New()

	fmt.Println("1. compile-time: equivalence of a reshaped array (§6)")
	_, err := tc.Build(map[string]string{"equiv.f": `
      program p
      real*8 a(100), b(100)
c$distribute_reshape a(block)
      equivalence (a, b)
      end
`})
	fmt.Printf("   rejected: %v\n\n", err)

	fmt.Println("2. link-time: inconsistent common-block declarations (§6)")
	_, err = tc.Build(map[string]string{
		"main.f": `
      program p
      real*8 a(64)
c$distribute_reshape a(block)
      common /blk/ a
      a(1) = 0.0
      call helper
      end
`,
		"helper.f": `
      subroutine helper
      real*8 a(32)
c$distribute_reshape a(block)
      common /blk/ a
      a(1) = 1.0
      end
`,
	})
	fmt.Printf("   rejected: %v\n\n", err)

	fmt.Println("3. link-time: whole reshaped array with mismatched shape (§3.2.1)")
	_, err = tc.Build(map[string]string{"shape.f": `
      program p
      real*8 a(64)
c$distribute_reshape a(block)
      call work(a)
      end

      subroutine work(x)
      real*8 x(32)
      x(1) = 0.0
      end
`})
	fmt.Printf("   rejected: %v\n\n", err)

	fmt.Println("4. runtime: formal parameter larger than the passed portion (§6)")
	img, err := tc.Build(map[string]string{"portion.f": `
      program p
      real*8 a(1000)
c$distribute_reshape a(cyclic(5))
      integer i
      do i = 1, 1000, 5
        call mysub(a(i))
      end do
      end

      subroutine mysub(x)
      real*8 x(7)
      x(1) = 0.0
      end
`})
	if err != nil {
		fmt.Printf("   unexpected build failure: %v\n", err)
		return
	}
	_, err = core.Run(img, machine.Tiny(4), core.RunOptions{})
	fmt.Printf("   trapped at run time: %v\n\n", err)

	fmt.Println("5. the corrected program (x(5) fits each cyclic(5) portion) runs clean")
	img, err = tc.Build(map[string]string{"ok.f": `
      program p
      real*8 a(1000)
c$distribute_reshape a(cyclic(5))
      integer i
      do i = 1, 1000, 5
        call mysub(a(i))
      end do
      end

      subroutine mysub(x)
      real*8 x(5)
      integer j
      do j = 1, 5
        x(j) = dble(j)
      end do
      end
`})
	if err != nil {
		fmt.Printf("   build failed: %v\n", err)
		return
	}
	res, err := core.Run(img, machine.Tiny(4), core.RunOptions{})
	if err != nil {
		fmt.Printf("   run failed: %v\n", err)
		return
	}
	a, _ := core.Array(res, "p", "a")
	fmt.Printf("   ok: a(1..5) = %v\n", a[:5])
}
