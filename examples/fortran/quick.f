      program quick
      integer n
      parameter (n = 1000)
      real*8 x(n), y(n)
c$distribute_reshape x(block), y(block)
      integer i
c$doacross local(i) shared(x, y) affinity(i) = data(x(i))
      do i = 1, n
        x(i) = dble(i)
        y(i) = 0.0
      end do
c$doacross local(i) shared(x, y) affinity(i) = data(y(i))
      do i = 2, n-1
        y(i) = (x(i-1) + x(i) + x(i+1)) / 3.0
      end do
      end
