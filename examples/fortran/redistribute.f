c Two-phase program demonstrating c$redistribute (paper section 3.3): the
c first phase sweeps columns and wants (*, block); the second sweeps rows
c and wants (block, *). The executable directive between them remaps the
c array's pages through the scheduled redistribution collective (see
c dsmrun -redist for the serial cost model instead).
      program phases
      integer n
      parameter (n = 128)
      real*8 a(n, n)
c$distribute a(*, block)
      integer i, j, it
c$doacross nest(j, i) local(i, j) shared(a) affinity(j, i) = data(a(i, j))
      do j = 1, n
        do i = 1, n
          a(i, j) = dble(i) + dble(j)
        end do
      end do
      do it = 1, 3
c$doacross local(i, j) shared(a) affinity(j) = data(a(1, j))
      do j = 1, n
        do i = 2, n
          a(i, j) = a(i, j) + a(i-1, j) * 0.5
        end do
      end do
      end do
c$redistribute a(block, *)
      do it = 1, 3
c$doacross local(i, j) shared(a) affinity(i) = data(a(i, 1))
      do i = 1, n
        do j = 2, n
          a(i, j) = a(i, j) + a(i, j-1) * 0.5
        end do
      end do
      end do
      end
