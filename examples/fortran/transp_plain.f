      program transp
      integer n
      parameter (n = 256)
      real*8 a(n, n), b(n, n)
      integer i, j, it
      do j = 1, n
        do i = 1, n
          b(i, j) = dble(i) + dble(j)*0.5
          a(i, j) = 0.0
        end do
      end do
      call dsm_timer_start
      do it = 1, 2
c$doacross local(i, j) shared(a, b)
      do i = 1, n
        do j = 1, n
          a(j, i) = b(i, j)
        end do
      end do
      end do
      call dsm_timer_stop
      end
