// LU reproduces the paper's §8.1 scenario interactively: the NAS-LU-style
// SSOR kernel over (5,n,n,n) arrays distributed (*,block,block,*), with
// parallel initialization. Because initialization is parallel, even plain
// first-touch placement spreads the data — the paper's finding that "all
// four versions spread the data across the machine (although differently),
// [so] they all achieve good performance" — while reshaping shows the best
// cache behaviour.
//
//	go run ./examples/lu [-n 24] [-p 16] [-iters 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"dsmdist/internal/core"
	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
	"dsmdist/internal/workloads"
)

func main() {
	n := flag.Int("n", 24, "grid dimension (arrays are 5 x n x n x n)")
	p := flag.Int("p", 16, "processors")
	iters := flag.Int("iters", 1, "SSOR sweeps")
	flag.Parse()

	mb := float64(2*5**n**n**n*8) / (1 << 20)
	base := run(workloads.LU(*n, *iters, workloads.Serial), 1, ospage.FirstTouch)
	fmt.Printf("u, rsd: (5,%d,%d,%d) = %.1f MB total; %d processors; serial baseline %d cycles\n\n",
		*n, *n, *n, mb, *p, base.TimerCycles)
	fmt.Printf("%-24s %12s %9s %12s %12s\n", "version", "cycles", "speedup", "L2 misses", "remote")

	cases := []struct {
		label   string
		variant workloads.Variant
		policy  ospage.Policy
	}{
		{"first-touch", workloads.Plain, ospage.FirstTouch},
		{"round-robin", workloads.Plain, ospage.RoundRobin},
		{"regular distribution", workloads.Regular, ospage.FirstTouch},
		{"reshaped distribution", workloads.Reshaped, ospage.FirstTouch},
	}
	for _, c := range cases {
		res := run(workloads.LU(*n, *iters, c.variant), *p, c.policy)
		fmt.Printf("%-24s %12d %8.2fx %12d %12d\n",
			c.label, res.TimerCycles,
			float64(base.TimerCycles)/float64(res.TimerCycles),
			res.Total.L2Miss, res.Total.L2MissRemote)
	}
	fmt.Println("\nParallel initialization spreads pages under every policy, so the four" +
		"\nversions stay close (§8.1); reshaping still minimizes remote misses.")
}

func run(src string, p int, policy ospage.Policy) *exec.Result {
	tc := core.New()
	tc.RuntimeChecks = false
	img, err := tc.Build(map[string]string{"lu.f": src})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	cfg := machine.Scaled(p)
	res, err := core.Run(img, cfg, core.RunOptions{Policy: policy})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	return res
}
