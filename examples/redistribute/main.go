// Redistribute demonstrates dynamic data redistribution (§3.3): a program
// with two phases that want different distributions of the same array. The
// c$redistribute executable directive remaps the array's pages between the
// phases — legal only for regular distributions (reshaped arrays cannot be
// redistributed, §3.3).
package main

import (
	"fmt"
	"log"

	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

const src = `
      program phases
      integer n
      parameter (n = 256)
      real*8 a(n, n)
c$distribute a(*, block)
      integer i, j, it
c phase 1: column-parallel sweeps, (*, block) is the right distribution
c$doacross nest(j, i) local(i, j) shared(a) affinity(j, i) = data(a(i, j))
      do j = 1, n
        do i = 1, n
          a(i, j) = dble(i) + dble(j)
        end do
      end do
      do it = 1, 3
c$doacross local(i, j) shared(a) affinity(j) = data(a(1, j))
      do j = 1, n
        do i = 2, n
          a(i, j) = a(i, j) + a(i-1, j) * 0.5
        end do
      end do
      end do
c phase 2: row-parallel sweeps want (block, *)
c$redistribute a(block, *)
      do it = 1, 3
c$doacross local(i, j) shared(a) affinity(i) = data(a(i, 1))
      do i = 1, n
        do j = 2, n
          a(i, j) = a(i, j) + a(i, j-1) * 0.5
        end do
      end do
      end do
      end
`

func main() {
	tc := core.New()
	img, err := tc.Build(map[string]string{"phases.f": src})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	res, err := core.Run(img, machine.Scaled(8), core.RunOptions{Policy: ospage.FirstTouch})
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("run completed in %d cycles on 8 processors\n", res.Cycles)
	fmt.Printf("pages migrated by c$redistribute: %d\n", res.Pages.Migrated)

	// The array descriptor now carries the phase-2 distribution.
	st := core.ArrayState(res, "phases", "a")
	fmt.Printf("final distribution of a: %s over grid %v\n",
		st.Plan.Spec, st.Grid.DimProcs)

	a, err := core.Array(res, "phases", "a")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a(10,10) = %.4f, a(256,256) = %.4f\n", a[9+9*256], a[255+255*256])
}
