// Transpose reproduces the paper's §8.2 scenario interactively: a matrix
// with a (block,*) distribution cannot be placed properly at page
// granularity, so first-touch and regular distribution bottleneck on a few
// nodes, round-robin spreads the bandwidth, and reshaping makes each
// processor's portion contiguous and local.
//
//	go run ./examples/transpose [-n 512] [-p 16] [-iters 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"dsmdist/internal/core"
	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
	"dsmdist/internal/workloads"
)

func main() {
	n := flag.Int("n", 512, "matrix dimension")
	p := flag.Int("p", 16, "processors")
	iters := flag.Int("iters", 4, "transpose repetitions")
	flag.Parse()

	type cfg struct {
		label   string
		variant workloads.Variant
		policy  ospage.Policy
	}
	cases := []cfg{
		{"first-touch", workloads.Plain, ospage.FirstTouch},
		{"round-robin", workloads.Plain, ospage.RoundRobin},
		{"regular distribution", workloads.Regular, ospage.FirstTouch},
		{"reshaped distribution", workloads.Reshaped, ospage.FirstTouch},
	}

	// Serial baseline.
	base := run(workloads.Transpose(*n, *iters, workloads.Serial), 1, ospage.FirstTouch)
	fmt.Printf("matrix %dx%d (%.1f MB/matrix), %d processors, %d iterations\n",
		*n, *n, float64(*n**n*8)/(1<<20), *p, *iters)
	fmt.Printf("serial baseline: %d cycles in the timed section\n\n", base.TimerCycles)
	fmt.Printf("%-24s %12s %9s %12s %10s\n", "version", "cycles", "speedup", "L2 misses", "TLB misses")

	for _, c := range cases {
		res := run(workloads.Transpose(*n, *iters, c.variant), *p, c.policy)
		fmt.Printf("%-24s %12d %8.2fx %12d %10d\n",
			c.label, res.TimerCycles,
			float64(base.TimerCycles)/float64(res.TimerCycles),
			res.Total.L2Miss, res.Total.TLBMiss)
	}
	fmt.Println("\nThe (block,*) matrix B is the problem: a row portion is" +
		" far smaller than a page, so only reshaping can localize it (§8.2).")
}

func run(src string, p int, policy ospage.Policy) *exec.Result {
	tc := core.New()
	tc.RuntimeChecks = false
	img, err := tc.Build(map[string]string{"transpose.f": src})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	res, err := core.Run(img, machine.Scaled(p), core.RunOptions{Policy: policy})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	return res
}
