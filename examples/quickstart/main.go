// Quickstart: compile a small explicitly parallel Fortran program with a
// data-distribution directive, run it on a simulated 8-processor
// Origin-2000, and inspect the results — the complete toolchain in ~60
// lines.
package main

import (
	"fmt"
	"log"

	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

const src = `
      program quick
      integer n
      parameter (n = 1000)
      real*8 x(n), y(n)
c$distribute_reshape x(block), y(block)
      integer i
c$doacross local(i) shared(x, y) affinity(i) = data(x(i))
      do i = 1, n
        x(i) = dble(i)
        y(i) = 0.0
      end do
c$doacross local(i) shared(x, y) affinity(i) = data(y(i))
      do i = 2, n-1
        y(i) = (x(i-1) + x(i) + x(i+1)) / 3.0
      end do
      end
`

func main() {
	// Compile and link: the toolchain runs the paper's pipeline —
	// directives, reshape legality checks, affinity scheduling, tiling
	// and peeling, then code generation.
	tc := core.New()
	img, err := tc.Build(map[string]string{"quick.f": src})
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	// Run on 8 simulated processors (4 nodes) with first-touch paging.
	res, err := core.Run(img, machine.Scaled(8), core.RunOptions{Policy: ospage.FirstTouch})
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	y, err := core.Array(res, "quick", "y")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("y(2)   = %.4f (want %.4f)\n", y[1], (1.0+2.0+3.0)/3.0)
	fmt.Printf("y(500) = %.4f (want %.4f)\n", y[499], 500.0)

	fmt.Printf("\nsimulated time: %d cycles = %.4f ms at %d MHz\n",
		res.Cycles, res.Seconds()*1e3, res.RT.Cfg.ClockMHz)
	t := res.Total
	fmt.Printf("memory system: %d loads, %d L2 misses (%d local, %d remote), %d TLB misses\n",
		t.Loads, t.L2Miss, t.L2MissLocal, t.L2MissRemote, t.TLBMiss)
	fmt.Printf("pages: %d mapped across %d nodes\n", res.Pages.Mapped, res.RT.Cfg.NNodes())

	// The reshaped array lives as per-processor portions; show where
	// each processor's portion starts (the Figure 3 processor array).
	st := core.ArrayState(res, "quick", "x")
	fmt.Printf("\nreshaped x: %d portions of %d bytes each\n",
		len(st.Portions), st.PortionBytes)
	for p, base := range st.Portions {
		fmt.Printf("  processor %d portion at %#x (node %d)\n",
			p, base, res.RT.Pages.NodeOf(base))
	}
}
