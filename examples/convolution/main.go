// Convolution reproduces the paper's §8.3 scenario: a five-point stencil
// with one level of parallelism ((*,block) column distribution) or two
// (nest(i,j) over (block,block)). With two-dimensional blocks the array
// layout suffers false sharing over both cache lines and pages, so
// "reshaping is the only option for such distributions".
//
//	go run ./examples/convolution [-n 256] [-p 16] [-iters 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"dsmdist/internal/core"
	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
	"dsmdist/internal/workloads"
)

func main() {
	n := flag.Int("n", 256, "grid dimension")
	p := flag.Int("p", 16, "processors")
	iters := flag.Int("iters", 3, "stencil sweeps")
	flag.Parse()

	base := run(workloads.Convolution(*n, *iters, 1, workloads.Serial), 1, ospage.FirstTouch)
	fmt.Printf("grid %dx%d, %d processors, %d sweeps; serial baseline %d cycles\n\n",
		*n, *n, *p, *iters, base.TimerCycles)

	for _, levels := range []int{1, 2} {
		if levels == 1 {
			fmt.Println("one-level parallelism, (*,block):")
		} else {
			fmt.Println("two-level parallelism, (block,block):")
		}
		cases := []struct {
			label   string
			variant workloads.Variant
			policy  ospage.Policy
		}{
			{"first-touch", workloads.Plain, ospage.FirstTouch},
			{"round-robin", workloads.Plain, ospage.RoundRobin},
			{"regular", workloads.Regular, ospage.FirstTouch},
			{"reshaped", workloads.Reshaped, ospage.FirstTouch},
		}
		for _, c := range cases {
			res := run(workloads.Convolution(*n, *iters, levels, c.variant), *p, c.policy)
			fmt.Printf("  %-14s %12d cycles %8.2fx  invalidations %d\n",
				c.label, res.TimerCycles,
				float64(base.TimerCycles)/float64(res.TimerCycles),
				res.Total.InvSent)
		}
		fmt.Println()
	}
}

func run(src string, p int, policy ospage.Policy) *exec.Result {
	tc := core.New()
	tc.RuntimeChecks = false
	img, err := tc.Build(map[string]string{"conv.f": src})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	res, err := core.Run(img, machine.Scaled(p), core.RunOptions{Policy: policy})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	return res
}
