// Cloning demonstrates the §5 machinery: distribute_reshape directives are
// supplied only at array definition points; the pre-linker propagates them
// down the call chain across separately compiled files and clones the
// callee once per distinct incoming distribution combination, so each clone
// is optimized for its distributions.
package main

import (
	"fmt"
	"log"

	"dsmdist/internal/core"
	"dsmdist/internal/machine"
)

// Two "files": the main program defines arrays with two different reshaped
// distributions and passes both to the same library routine, which was
// written with no distribution annotations at all.
const mainSrc = `
      program p
      integer n
      parameter (n = 120)
      real*8 a(n), b(n), c(n)
c$distribute_reshape a(block)
c$distribute_reshape b(cyclic)
      integer i
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = dble(i)
        b(i) = dble(i) * 2.0
        c(i) = dble(i) * 3.0
      end do
      call triple(a)
      call triple(b)
      call triple(c)
      end
`

const libSrc = `
      subroutine triple(x)
      integer n, i
      parameter (n = 120)
      real*8 x(n)
      do i = 1, n
        x(i) = x(i) * 3.0
      end do
      return
      end
`

func main() {
	tc := core.New()
	img, err := tc.Build(map[string]string{"main.f": mainSrc, "lib.f": libSrc})
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	fmt.Printf("the pre-linker created %d instances of triple:\n", img.Clones["triple"])
	for _, u := range img.Instances {
		if u.Name == "triple" || len(u.Name) > 6 && u.Name[:6] == "triple" {
			fmt.Printf("  %s\n", u.Name)
		}
	}
	fmt.Println("\n(one per distinct reshaped signature: block, cyclic, and the" +
		"\n plain-array version for c — exactly the paper's template-style" +
		"\n instantiation, with unreferenced combinations never built)")

	res, err := core.Run(img, machine.Tiny(4), core.RunOptions{})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	for _, name := range []string{"a", "b", "c"} {
		v, err := core.Array(res, "p", name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s(10) = %v\n", name, v[9])
	}
}
