package memsim

import (
	"testing"
)

func TestBulkTransferCostModel(t *testing.T) {
	s := tinySys(t, 4) // 2 nodes on Tiny (2 procs/node)
	line := int64(s.Cfg.L2LineSize)
	svc := int64(s.Cfg.MemServiceCyc)

	// Zero or negative sizes are free and advance nothing.
	if c := s.BulkTransfer(0, 0, 1, 0); c != 0 {
		t.Fatalf("zero-byte transfer cost %d", c)
	}
	if s.Clock(0) != 0 {
		t.Fatalf("clock moved on empty transfer")
	}

	// One line node 0 -> node 1: startup latency + one service slot.
	cost := s.BulkTransfer(0, 0, 1, line)
	want := int64(s.Cfg.RemoteLatency(0, 1)) + svc
	if cost != want {
		t.Fatalf("single-line remote transfer cost %d, want %d", cost, want)
	}
	if s.Clock(0) != cost {
		t.Fatalf("clock %d, want %d", s.Clock(0), cost)
	}

	// An uncontended stream is linear in lines at the service rate.
	s2 := tinySys(t, 4)
	n := int64(8)
	cost = s2.BulkTransfer(0, 0, 1, n*line)
	want = int64(s2.Cfg.RemoteLatency(0, 1)) + n*svc
	if cost != want {
		t.Fatalf("%d-line transfer cost %d, want %d", n, cost, want)
	}

	// Partial trailing lines round up to a full line.
	s3 := tinySys(t, 4)
	if a, b := s3.BulkTransfer(0, 0, 1, line+1), int64(s3.Cfg.RemoteLatency(0, 1))+2*svc; a != b {
		t.Fatalf("partial line cost %d, want %d", a, b)
	}
}

func TestBulkTransferContention(t *testing.T) {
	// Two processors streaming out of the same source node must share its
	// bandwidth window: the second stream sees queuing waits.
	s := tinySys(t, 4)
	line := int64(s.Cfg.L2LineSize)
	bytes := 64 * line

	solo := tinySys(t, 4)
	base := solo.BulkTransfer(0, 0, 1, bytes)

	s.BulkTransfer(0, 0, 1, bytes)
	second := s.BulkTransfer(1, 0, 1, bytes)
	if second <= base {
		t.Fatalf("contended transfer cost %d not above uncontended %d", second, base)
	}
	if w := s.Stats(1).WaitCyc; w <= 0 {
		t.Fatalf("contended transfer recorded no WaitCyc")
	}
}

func TestBulkTransferLocalCheaperThanRemote(t *testing.T) {
	a := tinySys(t, 4)
	b := tinySys(t, 4)
	bytes := int64(16 * a.Cfg.L2LineSize)
	local := a.BulkTransfer(0, 0, 0, bytes)
	remote := b.BulkTransfer(0, 0, 1, bytes)
	if local >= remote {
		t.Fatalf("local transfer (%d) not cheaper than remote (%d)", local, remote)
	}
}
