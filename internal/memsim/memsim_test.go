package memsim

import (
	"testing"

	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

func tinySys(t *testing.T, nprocs int) *System {
	t.Helper()
	cfg := machine.Tiny(nprocs)
	pm := ospage.New(cfg)
	s, err := New(cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAllocAlignGrow(t *testing.T) {
	s := tinySys(t, 2)
	a := s.Alloc(100, 8)
	b := s.Alloc(100, 256)
	if a%8 != 0 || b%256 != 0 {
		t.Fatalf("alignment violated: %d %d", a, b)
	}
	if b < a+100 {
		t.Fatal("allocations overlap")
	}
	s.Poke(b+88, 42)
	if s.Peek(b+88) != 42 {
		t.Fatal("backing store broken")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s := tinySys(t, 2)
	a := s.Alloc(64, 8)
	s.StoreFloat(0, a, 3.25)
	if got := s.LoadFloat(0, a); got != 3.25 {
		t.Fatalf("loaded %v", got)
	}
	if got := s.LoadFloat(1, a); got != 3.25 {
		t.Fatalf("other processor loaded %v", got)
	}
	s.StoreWord(1, a+8, 7)
	if s.LoadWord(0, a+8) != 7 {
		t.Fatal("word store lost")
	}
}

func TestCacheHitVsMissCost(t *testing.T) {
	s := tinySys(t, 1)
	a := s.Alloc(1024, int64(s.Cfg.PageBytes))
	s.LoadWord(0, a) // cold miss
	miss := s.Clock(0)
	s.LoadWord(0, a) // L1 hit
	hit := s.Clock(0) - miss
	if hit >= miss {
		t.Fatalf("hit cost %d not cheaper than cold miss %d", hit, miss)
	}
	if hit != int64(s.Cfg.L1HitCyc) {
		t.Fatalf("hit cost %d, want %d", hit, s.Cfg.L1HitCyc)
	}
	st := s.Stats(0)
	if st.L1Miss != 1 || st.L2Miss != 1 || st.Loads != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSpatialLocality(t *testing.T) {
	// Consecutive words in an L1 line: one miss then hits.
	s := tinySys(t, 1)
	a := s.Alloc(1024, int64(s.Cfg.PageBytes))
	words := int64(s.Cfg.L1LineSize / 8)
	for i := int64(0); i < words; i++ {
		s.LoadWord(0, a+i*8)
	}
	st := s.Stats(0)
	if st.L1Miss != 1 {
		t.Fatalf("L1 misses %d, want 1 for one line", st.L1Miss)
	}
}

func TestLocalVsRemoteLatency(t *testing.T) {
	cfg := machine.Tiny(4) // 2 nodes
	pm := ospage.New(cfg)
	s, _ := New(cfg, pm)
	a := s.Alloc(int64(cfg.PageBytes)*2, int64(cfg.PageBytes))
	pm.Place(a, a+int64(cfg.PageBytes), 0, false)

	s.LoadWord(0, a) // proc 0 on node 0: local
	local := s.Clock(0)
	s.LoadWord(2, a+int64(cfg.L2LineSize)) // proc 2 on node 1: remote, different line
	remote := s.Clock(2)
	if remote <= local {
		t.Fatalf("remote %d not slower than local %d", remote, local)
	}
	if s.Stats(0).L2MissLocal != 1 || s.Stats(2).L2MissRemote != 1 {
		t.Fatalf("local/remote classification wrong: %+v %+v", s.Stats(0), s.Stats(2))
	}
}

func TestInvalidation(t *testing.T) {
	s := tinySys(t, 2)
	a := s.Alloc(64, int64(s.Cfg.PageBytes))
	s.LoadWord(0, a)
	s.LoadWord(1, a)
	// Write by 0 must invalidate 1's copy.
	s.StoreWord(0, a, 5)
	if s.Stats(0).InvSent != 1 || s.Stats(1).InvRecv != 1 {
		t.Fatalf("invalidation not recorded: %+v %+v", s.Stats(0), s.Stats(1))
	}
	before := s.Stats(1).L2Miss
	s.LoadWord(1, a) // must re-miss
	if s.Stats(1).L2Miss != before+1 {
		t.Fatal("invalidated line still hit")
	}
}

func TestWriteExclusiveNoRepeatUpgrade(t *testing.T) {
	s := tinySys(t, 2)
	a := s.Alloc(64, int64(s.Cfg.PageBytes))
	s.StoreWord(0, a, 1)
	up := s.Stats(0).Upgrades
	s.StoreWord(0, a, 2)
	s.StoreWord(0, a, 3)
	if s.Stats(0).Upgrades != up {
		t.Fatal("exclusive line re-upgraded")
	}
}

func TestIntervention(t *testing.T) {
	s := tinySys(t, 2)
	a := s.Alloc(64, int64(s.Cfg.PageBytes))
	s.StoreWord(0, a, 9) // dirty in proc 0
	s.LoadWord(1, a)     // proc 1 must fetch from proc 0's cache
	if s.Stats(1).Interventions != 1 {
		t.Fatalf("interventions %d, want 1", s.Stats(1).Interventions)
	}
	if s.LoadWord(1, a) != 9 {
		t.Fatal("value lost across intervention")
	}
}

func TestFalseSharing(t *testing.T) {
	// Two processors writing different words of the same L2 line
	// ping-pong invalidations.
	s := tinySys(t, 2)
	a := s.Alloc(int64(s.Cfg.L2LineSize), int64(s.Cfg.PageBytes))
	for i := 0; i < 10; i++ {
		s.StoreWord(0, a, uint64(i))
		s.StoreWord(1, a+8, uint64(i))
	}
	if s.Stats(0).InvRecv < 5 || s.Stats(1).InvRecv < 5 {
		t.Fatalf("false sharing not modeled: %+v %+v", s.Stats(0), s.Stats(1))
	}
}

func TestTLBMisses(t *testing.T) {
	s := tinySys(t, 1)
	pb := int64(s.Cfg.PageBytes)
	n := int64(s.Cfg.TLBEntries * 3)
	a := s.Alloc(n*pb, pb)
	// Touch each page twice around the loop: with 3x TLB reach every
	// revisit misses again.
	for round := 0; round < 2; round++ {
		for i := int64(0); i < n; i++ {
			s.LoadWord(0, a+i*pb)
		}
	}
	st := s.Stats(0)
	if st.TLBMiss < 2*n-2 {
		t.Fatalf("TLB misses %d, want ~%d", st.TLBMiss, 2*n)
	}
	if st.TLBCyc == 0 {
		t.Fatal("TLB cycles not charged")
	}
}

func TestTLBReuseHits(t *testing.T) {
	s := tinySys(t, 1)
	pb := int64(s.Cfg.PageBytes)
	a := s.Alloc(2*pb, pb)
	lines := int64(s.Cfg.L2LineSize)
	s.LoadWord(0, a)
	s.LoadWord(0, a+lines) // same page, different line: TLB hit
	if st := s.Stats(0); st.TLBMiss != 1 {
		t.Fatalf("TLB misses %d, want 1", st.TLBMiss)
	}
}

func TestCapacityEviction(t *testing.T) {
	s := tinySys(t, 1)
	footprint := int64(s.Cfg.L2Bytes * 2)
	a := s.Alloc(footprint, int64(s.Cfg.PageBytes))
	stride := int64(s.Cfg.L2LineSize)
	for pass := 0; pass < 2; pass++ {
		for off := int64(0); off < footprint; off += stride {
			s.LoadWord(0, a+off)
		}
	}
	st := s.Stats(0)
	// Footprint is 2x L2: second pass must miss again (LRU-ish).
	if st.L2Miss < 3*footprint/stride/2 {
		t.Fatalf("L2 misses %d for %d lines touched twice", st.L2Miss, 2*footprint/stride)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	s := tinySys(t, 4)
	s.AddCycles(2, 1000)
	s.Barrier([]int{0, 1, 2, 3})
	want := int64(1000 + s.Cfg.BarrierBaseCyc + 4*s.Cfg.BarrierPerProc)
	for p := 0; p < 4; p++ {
		if s.Clock(p) != want {
			t.Fatalf("proc %d clock %d, want %d", p, s.Clock(p), want)
		}
	}
}

func TestBandwidthContention(t *testing.T) {
	// Many processors streaming from one node queue behind each other;
	// the same stream against distributed pages does not.
	cfg := machine.Tiny(8) // 4 nodes
	pm := ospage.New(cfg)
	s, _ := New(cfg, pm)
	pb := int64(cfg.PageBytes)
	n := int64(32)
	a := s.Alloc(n*pb, pb)
	pm.Place(a, a+n*pb, 0, false) // everything on node 0
	stride := int64(cfg.L2LineSize)
	for p := 0; p < 8; p++ {
		for off := int64(0); off < n*pb; off += stride {
			s.LoadWord(p, a+off)
		}
	}
	var wait int64
	for p := 0; p < 8; p++ {
		wait += s.Stats(p).WaitCyc
	}
	if wait == 0 {
		t.Fatal("no queuing on a one-node hot spot")
	}
}

func TestMigratePageInvalidates(t *testing.T) {
	s := tinySys(t, 2)
	pb := int64(s.Cfg.PageBytes)
	a := s.Alloc(pb, pb)
	s.StoreWord(0, a, 77)
	s.MigratePage(s.Pages.VPage(a))
	before := s.Stats(0).L2Miss
	if s.LoadWord(0, a) != 77 {
		t.Fatal("data lost in migration")
	}
	if s.Stats(0).L2Miss != before+1 {
		t.Fatal("caches not invalidated by migration")
	}
}

func TestTooManyProcs(t *testing.T) {
	cfg := machine.Tiny(MaxProcs + 1)
	if _, err := New(cfg, ospage.New(cfg)); err == nil {
		t.Fatal("excess processors accepted")
	}
}

func TestStatsAdd(t *testing.T) {
	a := ProcStats{Loads: 1, L2Miss: 2, WaitCyc: 3}
	b := ProcStats{Loads: 10, L2Miss: 20, WaitCyc: 30}
	a.Add(b)
	if a.Loads != 11 || a.L2Miss != 22 || a.WaitCyc != 33 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestTotalStats(t *testing.T) {
	s := tinySys(t, 2)
	a := s.Alloc(64, 8)
	s.LoadWord(0, a)
	s.LoadWord(1, a)
	tot := s.TotalStats()
	if tot.Loads != 2 {
		t.Fatalf("total loads %d", tot.Loads)
	}
}
