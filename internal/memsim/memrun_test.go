package memsim

import (
	"math/rand"
	"testing"

	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

// TestMemRunBitIdentical drives three identical systems with the same
// access stream: one through the run APIs with the fast path enabled, one
// through the equivalent word-at-a-time loops (the reference semantics
// the run contract promises), and one through the run APIs with
// SetMemRun(false). Every loaded value, final memory word, cycle clock
// and statistics counter must match across all three. Strides are drawn
// to straddle L1 lines, L2 lines, TLB pages and node boundaries, and
// include zero and negative strides (which take the word-loop fallback
// inside runWalk).
func TestMemRunBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := machine.Tiny(4)
		run, err := New(cfg, ospage.New(cfg))
		if err != nil {
			t.Fatal(err)
		}
		word, err := New(cfg, ospage.New(cfg))
		if err != nil {
			t.Fatal(err)
		}
		off, err := New(cfg, ospage.New(cfg))
		if err != nil {
			t.Fatal(err)
		}
		off.SetMemRun(false)
		if !run.MemRunEnabled() || off.MemRunEnabled() {
			t.Fatal("MemRunEnabled does not reflect SetMemRun")
		}

		// Footprint well beyond L2 and the TLB reach so runs march across
		// cache evictions, TLB FIFO evictions and page (hence node-home)
		// boundaries. Tiny: 32 B L1 lines, 64 B L2 lines, 256 B pages.
		words := int64(cfg.L2Bytes) // 4096 words = 32 KB = 128 pages
		limit := words * 8
		rb := run.Alloc(limit, int64(cfg.PageBytes))
		wb := word.Alloc(limit, int64(cfg.PageBytes))
		ob := off.Alloc(limit, int64(cfg.PageBytes))

		strides := []int64{0, 8, 8, 16, 24, 32, 40, 64, 72, 128,
			int64(cfg.PageBytes), int64(cfg.PageBytes) + 8, -8, -64}
		rng := rand.New(rand.NewSource(seed))
		ro := make([]uint64, 64)
		oo := make([]uint64, 64)
		vals := make([]uint64, 64)

		for i := 0; i < 2500; i++ {
			p := rng.Intn(4)
			count := 1 + rng.Intn(24)
			stride := strides[rng.Intn(len(strides))]
			base := int64(rng.Intn(int(words))) * 8
			// Clamp the whole run into the allocation.
			ext := int64(count-1) * stride
			lo, hi := base, base+ext
			if stride < 0 {
				lo, hi = hi, lo
			}
			if lo < 0 {
				base -= lo
				hi -= lo
			}
			if hi >= limit {
				base -= hi - (limit - 8)
			}

			var pre []int64
			if rng.Intn(2) == 0 {
				pre = make([]int64, count)
				for j := range pre {
					pre[j] = int64(rng.Intn(5))
				}
			}

			wordLoop := func(write bool, wv []uint64) {
				a := wb + base
				for j := 0; j < count; j++ {
					if pre != nil {
						word.AddCycles(p, pre[j])
					}
					if wv == nil {
						word.Access(p, a, write)
					} else if write {
						word.StoreWord(p, a, wv[j])
					} else {
						wv[j] = word.LoadWord(p, a)
					}
					a += stride
				}
			}

			switch rng.Intn(4) {
			case 0: // store run
				for j := 0; j < count; j++ {
					vals[j] = rng.Uint64()
				}
				run.StoreRun(p, rb+base, stride, count, pre, vals)
				off.StoreRun(p, ob+base, stride, count, pre, vals)
				wordLoop(true, vals)
			case 1: // plain access run (no data movement)
				write := rng.Intn(2) == 0
				run.AccessRun(p, rb+base, stride, count, write, pre)
				off.AccessRun(p, ob+base, stride, count, write, pre)
				wordLoop(write, nil)
			default: // load run
				wo := make([]uint64, count)
				run.LoadRun(p, rb+base, stride, count, pre, ro)
				off.LoadRun(p, ob+base, stride, count, pre, oo)
				wordLoop(false, wo)
				for j := 0; j < count; j++ {
					if ro[j] != wo[j] || oo[j] != wo[j] {
						t.Fatalf("seed %d op %d word %d (stride %d): run=%#x off=%#x word=%#x",
							seed, i, j, stride, ro[j], oo[j], wo[j])
					}
				}
			}
		}

		for q := 0; q < 4; q++ {
			rc, oc, wc := run.Clock(q), off.Clock(q), word.Clock(q)
			if rc != wc || oc != wc {
				t.Errorf("seed %d proc %d: clock run=%d off=%d word=%d", seed, q, rc, oc, wc)
			}
			rs, os, ws := run.Stats(q), off.Stats(q), word.Stats(q)
			if rs != ws {
				t.Errorf("seed %d proc %d: stats diverge\n run  %+v\n word %+v", seed, q, rs, ws)
			}
			if os != ws {
				t.Errorf("seed %d proc %d: stats diverge\n off  %+v\n word %+v", seed, q, os, ws)
			}
		}
		for w := int64(0); w < words; w++ {
			rv, ov, wv := run.mem[(rb>>3)+w], off.mem[(ob>>3)+w], word.mem[(wb>>3)+w]
			if rv != wv || ov != wv {
				t.Fatalf("seed %d: final mem word %d: run=%#x off=%#x word=%#x", seed, w, rv, ov, wv)
			}
		}
	}
}

// BenchmarkLoadWord measures the word-at-a-time path: the L0-memo hit
// (every access to the same resident line) and the L2-miss fill (striding
// by L2 lines through a footprint several times the L2).
func BenchmarkLoadWord(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		cfg := machine.Tiny(1)
		s, err := New(cfg, ospage.New(cfg))
		if err != nil {
			b.Fatal(err)
		}
		base := s.Alloc(int64(cfg.PageBytes), int64(cfg.PageBytes))
		s.LoadWord(0, base)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.LoadWord(0, base)
		}
	})
	b.Run("miss", func(b *testing.B) {
		cfg := machine.Tiny(1)
		s, err := New(cfg, ospage.New(cfg))
		if err != nil {
			b.Fatal(err)
		}
		span := int64(cfg.L2Bytes) * 8
		base := s.Alloc(span, int64(cfg.PageBytes))
		step := int64(cfg.L2LineSize)
		off := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.LoadWord(0, base+off)
			off += step
			if off >= span {
				off = 0
			}
		}
	})
}

// BenchmarkAccessRun measures the run-batched path on two shapes — a
// fully resident run (heads hit the L0 memo, tails take the bulk
// charge) and a marching run whose group heads L2-miss — each against
// its exact word-at-a-time equivalent (the loop SetMemRun(false) would
// run), so the pair is the batching win at fixed simulated work.
func BenchmarkAccessRun(b *testing.B) {
	const count = 64
	hit := func(run bool) func(*testing.B) {
		return func(b *testing.B) {
			cfg := machine.Tiny(1)
			s, err := New(cfg, ospage.New(cfg))
			if err != nil {
				b.Fatal(err)
			}
			base := s.Alloc(count*8, int64(cfg.PageBytes))
			s.AccessRun(0, base, 8, count, false, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if run {
					s.AccessRun(0, base, 8, count, false, nil)
				} else {
					for w := int64(0); w < count; w++ {
						s.LoadWord(0, base+w*8)
					}
				}
			}
			b.SetBytes(count * 8)
		}
	}
	miss := func(run bool) func(*testing.B) {
		return func(b *testing.B) {
			cfg := machine.Tiny(1)
			s, err := New(cfg, ospage.New(cfg))
			if err != nil {
				b.Fatal(err)
			}
			span := int64(cfg.L2Bytes) * 8
			base := s.Alloc(span, int64(cfg.PageBytes))
			off := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if run {
					s.AccessRun(0, base+off, 8, count, false, nil)
				} else {
					for w := int64(0); w < count; w++ {
						s.LoadWord(0, base+off+w*8)
					}
				}
				off += count * 8
				if off+count*8 > span {
					off = 0
				}
			}
			b.SetBytes(count * 8)
		}
	}
	b.Run("hit", hit(true))
	b.Run("hit-wordloop", hit(false))
	b.Run("miss", miss(true))
	b.Run("miss-wordloop", miss(false))
}
