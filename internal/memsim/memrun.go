package memsim

import "os"

// This file implements the run-batched memory fast path: AccessRun,
// LoadRun and StoreRun simulate a constant-stride sequence of word
// accesses with exactly the cycles, stats, directory state, trap and
// observability behavior of the equivalent word-at-a-time loop
//
//	for i := 0; i < count; i++ {
//		if pre != nil {
//			AddCycles(p, pre[i])
//		}
//		LoadWord(p, addr+int64(i)*stride) // or StoreWord / Access
//	}
//
// but with one cost-model walk per L1 line instead of one per word. The
// pre slice carries the caller's per-word cycle charges (the compiled
// tier's cost-prefix flushes) so batching does not move any charge across
// an access; pre[i] lands on the clock immediately before word i, exactly
// where the classic tier's flush would.
//
// Soundness of the batch rests on two facts about the word model:
//
//  1. After any successful access, the word's L1 line is resident, so
//     every later word of the run that falls in the same L1 line is an
//     L1 hit. An L1 hit charges L1HitCyc, bumps Loads/Stores, and
//     re-touches the line's LRU way — all idempotent or additive, so k
//     hits can be charged as one bulk update plus one LRU touch.
//  2. The only clock-sensitive step of the walk is reserve(), reached
//     exclusively on an L2 miss — always a group head, never a bulk
//     word. Bulk charging therefore cannot shift any bandwidth window.
//
// Stores need one more invariant: after the head store, the line is
// exclusive (a write miss or upgrade always ends exclusive), so bulk
// store words never need the directory. The bulk path re-verifies both
// residency and exclusivity and falls back to the word loop if either
// fails, keeping identity even if the invariant were broken.

// l0Ways sizes the per-processor L0 memo table (direct-mapped on the low
// bits of the L1 line number); see proc.l0Slot.
const (
	l0Ways = 8
	l0Mask = int64(l0Ways - 1)
)

// memRunEnv reads the DSM_MEMRUN kill switch. Anything but off/0/false
// (including unset) leaves the run fast path enabled.
func memRunEnv() bool {
	switch os.Getenv("DSM_MEMRUN") {
	case "off", "0", "false":
		return false
	}
	return true
}

// SetMemRun enables or disables the run-batched fast path. Like SetL0,
// the toggle must not change any simulated cycle or counter — the run
// APIs fall back to the word loop when disabled, and the fuzz harnesses
// prove both paths identical.
func (s *System) SetMemRun(enabled bool) {
	lean := enabled && s.Cfg.L2LineSize <= s.Cfg.PageBytes
	for _, pr := range s.procs {
		pr.leanRun = lean
	}
}

// MemRunEnabled reports whether the run fast path is active.
func (s *System) MemRunEnabled() bool {
	return len(s.procs) > 0 && s.procs[0].leanRun
}

// AccessRun simulates count accesses at addr, addr+stride, ...,
// charging pre[i] extra cycles immediately before word i (pre may be
// nil). It is bit-identical to the equivalent Access loop.
func (s *System) AccessRun(p int, addr, stride int64, count int, write bool, pre []int64) {
	if count <= 0 {
		return
	}
	pr := s.procs[p]
	if pr.sc != nil {
		s.scoutRunWalk(p, pr, addr, stride, count, write, pre)
		return
	}
	s.runWalk(p, pr, addr, stride, count, write, pre)
}

// LoadRun simulates count loads and gathers the loaded words into out
// (which must hold at least count words). Bit-identical to the
// equivalent LoadWord loop.
func (s *System) LoadRun(p int, addr, stride int64, count int, pre []int64, out []uint64) {
	if count <= 0 {
		return
	}
	pr := s.procs[p]
	if pr.sc != nil {
		s.scoutLoadRun(p, pr, addr, stride, count, pre, out)
		return
	}
	s.runWalk(p, pr, addr, stride, count, false, pre)
	// The walk never touches the backing store, so gathering after it is
	// the same data the interleaved loop would have read.
	a := addr
	for i := 0; i < count; i++ {
		out[i] = s.mem[a>>3]
		a += stride
	}
}

// StoreRun simulates count stores scattering vals[0:count]. Bit-identical
// to the equivalent StoreWord loop (on overlapping addresses the last
// store wins, as in the loop).
func (s *System) StoreRun(p int, addr, stride int64, count int, pre []int64, vals []uint64) {
	if count <= 0 {
		return
	}
	pr := s.procs[p]
	if pr.sc != nil {
		s.scoutStoreRun(p, pr, addr, stride, count, pre, vals)
		return
	}
	s.runWalk(p, pr, addr, stride, count, true, pre)
	a := addr
	for i := 0; i < count; i++ {
		s.mem[a>>3] = vals[i]
		a += stride
	}
}

// accessWord is the word-loop reference step: the LoadWord/StoreWord L0
// guard without the data movement, falling back to the full Access walk.
func (s *System) accessWord(p int, pr *proc, addr int64, write bool) {
	l1line := addr >> pr.l1.shift
	if m := l1line & l0Mask; pr.l1.tags[pr.l0Slot[m]] == l1line &&
		(!write || pr.l1.excl[pr.l0Slot[m]]) {
		if write {
			pr.stats.Stores++
		} else {
			pr.stats.Loads++
		}
		pr.l1.lru[l1line&pr.l1.mask] = pr.l0Way[m]
		pr.clock += pr.l1Hit
		return
	}
	s.Access(p, addr, write)
}

// groupEnd returns the index of the last run word that falls in the same
// L1 line as word i at address a (stride > 0 ⇒ addresses ascend; stride
// 0 ⇒ every remaining word repeats the line).
func groupEnd(pr *proc, a, stride int64, i, count int, l1line int64) int {
	if stride == 0 {
		return count - 1
	}
	end := (l1line + 1) << pr.l1.shift
	last := i + int(((end-1)-a)/stride)
	if last > count-1 {
		last = count - 1
	}
	return last
}

// runWalk performs the simulation-state part of a run (no data movement)
// on the serial path.
func (s *System) runWalk(p int, pr *proc, addr, stride int64, count int, write bool, pre []int64) {
	if !pr.leanRun || stride < 0 || count < 2 {
		a := addr
		for i := 0; i < count; i++ {
			if pre != nil {
				pr.clock += pre[i]
			}
			s.accessWord(p, pr, a, write)
			a += stride
		}
		return
	}
	pendMiss := 0
	i := 0
	for i < count {
		a := addr + int64(i)*stride
		if pre != nil {
			pr.clock += pre[i]
		}
		l1line := a >> pr.l1.shift
		// Group head: L0 memo guard, then the lean L2-hit fill, then the
		// full walk.
		if m := l1line & l0Mask; pr.l1.tags[pr.l0Slot[m]] == l1line &&
			(!write || pr.l1.excl[pr.l0Slot[m]]) {
			if write {
				pr.stats.Stores++
			} else {
				pr.stats.Loads++
			}
			pr.l1.lru[l1line&pr.l1.mask] = pr.l0Way[m]
			pr.clock += pr.l1Hit
		} else if !s.leanFill(p, pr, a, l1line, write, &pendMiss) {
			// Full walk can emit its own recorder events; keep aggregate
			// event order by flushing the batched L1 misses first.
			if pendMiss > 0 {
				s.flushL1Miss(p, &pendMiss)
			}
			s.Access(p, a, write)
		}
		last := groupEnd(pr, a, stride, i, count, l1line)
		if last > i {
			// Bulk L1 hits: one lookup stands in for the per-word LRU
			// touches (all writing the same way), charges and counters
			// are added in one step.
			slot := pr.l1.lookup(l1line)
			if slot < 0 || (write && !pr.l1.excl[slot]) {
				// Unreachable after a successful head access; word-walk
				// the tail so identity holds no matter what.
				for j := i + 1; j <= last; j++ {
					if pre != nil {
						pr.clock += pre[j]
					}
					s.accessWord(p, pr, addr+int64(j)*stride, write)
				}
			} else {
				k := int64(last - i)
				bulk := k * pr.l1Hit
				if pre != nil {
					for j := i + 1; j <= last; j++ {
						bulk += pre[j]
					}
				}
				if write {
					pr.stats.Stores += k
				} else {
					pr.stats.Loads += k
				}
				pr.clock += bulk
			}
		}
		i = last + 1
	}
	if pendMiss > 0 {
		s.flushL1Miss(p, &pendMiss)
	}
}

// leanFill is the Access walk specialized to an L1 miss that hits both
// the TLB and the L2 with no directory work needed (a read, or a write to
// an already-exclusive line) — the common shape for a run marching
// through a resident L2 line.
// Every probe is side-effect-free until the shape is confirmed, then the
// state transition replicates Access exactly: stats, the L2 LRU touch,
// the L1 fill + memo, the L2HitCyc charge. The per-word rec.L1Miss
// events are batched into *pendMiss (the only recorder event this shape
// emits). Returns false — having changed nothing but an idempotent LRU
// touch — when the shape does not apply, and the caller takes the full
// walk.
func (s *System) leanFill(p int, pr *proc, addr, l1line int64, write bool, pendMiss *int) bool {
	if pr.l1.lookup(l1line) >= 0 {
		return false // L1 hit (memo missed it): Access's hit path applies
	}
	t := pr.tlb
	vpage := s.Pages.VPage(addr)
	if vpage != t.last && (vpage >= int64(len(t.slot)) || t.slot[vpage] == 0) {
		return false // TLB miss: full walk charges and refills
	}
	slot := pr.l2.lookup(addr >> s.l2Shift)
	if slot < 0 || (write && !pr.l2.excl[slot]) {
		return false // L2 miss or upgrade: directory work, full walk
	}
	if write {
		pr.stats.Stores++
	} else {
		pr.stats.Loads++
	}
	pr.stats.L1Miss++
	*pendMiss++
	t.last = vpage
	_, s1, _ := pr.l1.insert(l1line)
	pr.l1.excl[s1] = pr.l2.excl[slot]
	if !pr.noMemo {
		i := l1line & l0Mask
		pr.l0Slot[i] = int32(s1)
		pr.l0Way[i] = int8(s1 - int(l1line&pr.l1.mask)*pr.l1.assoc)
	}
	lat := int64(s.Cfg.L2HitCyc)
	pr.clock += lat
	pr.stats.MemCyc += lat
	return true
}

func (s *System) flushL1Miss(p int, pend *int) {
	if s.rec != nil {
		s.rec.L1Miss(p, *pend)
	}
	*pend = 0
}
