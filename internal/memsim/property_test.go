package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

// TestRandomAccessesAgainstShadow drives the simulator with random loads
// and stores from random processors and checks, against a plain Go shadow
// map, that the memory system never loses or corrupts data regardless of
// coherence traffic, and that the statistics stay internally consistent.
func TestRandomAccessesAgainstShadow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := machine.Tiny(4)
		sys, err := New(cfg, ospage.New(cfg))
		if err != nil {
			t.Fatal(err)
		}
		const words = 512
		base := sys.Alloc(words*8, int64(cfg.PageBytes))
		shadow := make(map[int64]uint64)

		for i := 0; i < 4000; i++ {
			p := rng.Intn(4)
			addr := base + int64(rng.Intn(words))*8
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				sys.StoreWord(p, addr, v)
				shadow[addr] = v
			} else {
				got := sys.LoadWord(p, addr)
				want := shadow[addr] // zero if never written
				if got != want {
					t.Logf("seed %d: read %#x at %#x, want %#x", seed, got, addr, want)
					return false
				}
			}
		}

		// Statistic invariants.
		var tot ProcStats
		for p := 0; p < 4; p++ {
			st := sys.Stats(p)
			if st.L2Miss > st.L1Miss || st.L1Miss > st.Loads+st.Stores {
				t.Logf("seed %d: miss counters inconsistent: %+v", seed, st)
				return false
			}
			if st.L2MissLocal+st.L2MissRemote != st.L2Miss {
				t.Logf("seed %d: local+remote != L2Miss: %+v", seed, st)
				return false
			}
			if sys.Clock(p) < 0 {
				return false
			}
			tot.Add(st)
		}
		// Invalidations are symmetric in aggregate.
		if tot.InvSent != tot.InvRecv {
			t.Logf("seed %d: invSent %d != invRecv %d", seed, tot.InvSent, tot.InvRecv)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialConsistencyPerLocation: a single processor always reads its
// own last write even through capacity evictions.
func TestSequentialConsistencyPerLocation(t *testing.T) {
	cfg := machine.Tiny(1)
	sys, _ := New(cfg, ospage.New(cfg))
	footprint := int64(cfg.L2Bytes * 4)
	base := sys.Alloc(footprint, int64(cfg.PageBytes))
	// Write a value everywhere, thrash, read back.
	for off := int64(0); off < footprint; off += 8 {
		sys.StoreWord(0, base+off, uint64(off)^0xdead)
	}
	for off := int64(0); off < footprint; off += 8 {
		if got := sys.LoadWord(0, base+off); got != uint64(off)^0xdead {
			t.Fatalf("lost write at %#x: %#x", base+off, got)
		}
	}
	if sys.Stats(0).Writebacks == 0 {
		t.Fatal("thrashing produced no writebacks")
	}
}
