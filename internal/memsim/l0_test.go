package memsim

import (
	"math/rand"
	"testing"

	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

// TestL0FastPathBitIdentical drives two identical systems with the same
// access stream — one with the L0 last-line/last-page memos disabled — and
// requires every loaded value, every cycle clock, and every statistics
// counter to match. The memo is a pure host-side short-circuit; any
// divergence here means it changed the simulated machine.
func TestL0FastPathBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := machine.Tiny(4)
		fast, err := New(cfg, ospage.New(cfg))
		if err != nil {
			t.Fatal(err)
		}
		slow, err := New(cfg, ospage.New(cfg))
		if err != nil {
			t.Fatal(err)
		}
		slow.SetL0(false)

		// Footprint larger than L2 and than the TLB reach, so the stream
		// exercises cache evictions, TLB FIFO evictions, and the memo
		// invalidation paths — with enough locality to hit the memo often.
		words := int64(cfg.L2Bytes) / 4
		fb := fast.Alloc(words*8, int64(cfg.PageBytes))
		sb := slow.Alloc(words*8, int64(cfg.PageBytes))

		rng := rand.New(rand.NewSource(seed))
		off, p := int64(0), 0
		for i := 0; i < 8000; i++ {
			switch rng.Intn(8) {
			case 0: // jump to a random word (new line, maybe new page)
				off = int64(rng.Intn(int(words))) * 8
			case 1: // switch processor
				p = rng.Intn(4)
			default: // walk within the current neighbourhood
				off = (off + int64(rng.Intn(4))*8) % (words * 8)
			}
			if rng.Intn(3) == 0 {
				v := rng.Uint64()
				fast.StoreWord(p, fb+off, v)
				slow.StoreWord(p, sb+off, v)
			} else {
				fv := fast.LoadWord(p, fb+off)
				sv := slow.LoadWord(p, sb+off)
				if fv != sv {
					t.Fatalf("seed %d op %d: load %#x fast=%#x slow=%#x",
						seed, i, off, fv, sv)
				}
			}
		}

		for q := 0; q < 4; q++ {
			if fc, sc := fast.Clock(q), slow.Clock(q); fc != sc {
				t.Errorf("seed %d proc %d: clock fast=%d slow=%d", seed, q, fc, sc)
			}
			if fs, ss := fast.Stats(q), slow.Stats(q); fs != ss {
				t.Errorf("seed %d proc %d: stats diverge\n fast %+v\n slow %+v",
					seed, q, fs, ss)
			}
		}
	}
}
