package memsim

// Scout mode is the memory-system half of the parallel execution engine
// (internal/exec). During a speculative epoch each armed processor's
// accesses run concurrently on separate host goroutines, under one
// invariant: the pass is READ-ONLY on all cross-processor-visible state.
// Shared structures (directory, backing store, bandwidth windows, page
// tables) are only read; every would-be write lands in a per-processor
// overlay, and the processor's own private state (caches, TLB, clock,
// stats) is mutated in place behind an undo journal. At the epoch
// barrier the executor validates that the scouts' shared-state footprints
// are pairwise disjoint — in which case any serial interleaving of the
// epoch's quanta produces exactly the trajectories the scouts computed,
// so committing the overlays is bit-identical to the serial engine — and
// otherwise rolls every scout back and re-runs the epoch serially.
//
// A scout aborts (poisoning only itself) whenever it hits an operation
// whose effect on other processors cannot be expressed as an overlay:
// invalidating sharers, cache-to-cache intervention, a page fault (first
// touch allocates), or any runtime call other than the barrier sentinel
// (the executor gates those). After an abort the processor's memory
// operations become no-ops; the executor notices, restores, and falls
// back.
//
// See DESIGN.md "Concurrency model" for the full protocol and the
// determinism argument.

import (
	"dsmdist/internal/obs"
)

// AbortReason says why a scout gave up on its epoch.
type AbortReason uint8

const (
	abortNone         AbortReason = iota
	AbortRTC                      // runtime call other than dsm_barrier
	AbortPageFault                // access to an unmapped page (first touch allocates)
	AbortInvalidation             // write needs to invalidate other sharers
	AbortIntervention             // miss would be serviced from another cache
)

// cacheJEntry records one overwritten cache slot (tag + excl) so an
// aborted scout can restore its own caches. Entries are replayed in
// reverse, so re-journaling a slot is harmless.
type cacheJEntry struct {
	c    *cache
	slot int32
	tag  int64
	excl bool
}

type tlbSlotJEntry struct {
	vpage int64
	val   uint16
}

type tlbFifoJEntry struct {
	idx int
	val int64
}

// memOverlay holds a scout's speculative stores: an open-addressed,
// version-stamped hash table from word index to value. Version stamping
// makes Reset O(1); the table is scanned (ver match) at commit.
type memOverlay struct {
	keys []int64
	vals []uint64
	ver  []uint32
	cur  uint32
	n    int
	mask int64
}

func (o *memOverlay) init(size int64) {
	o.keys = make([]int64, size)
	o.vals = make([]uint64, size)
	o.ver = make([]uint32, size)
	o.mask = size - 1
	o.cur = 1
	o.n = 0
}

func (o *memOverlay) reset() {
	o.cur++
	o.n = 0
	if o.cur == 0 { // version wrapped: wipe stamps
		for i := range o.ver {
			o.ver[i] = 0
		}
		o.cur = 1
	}
}

func ovHash(wi int64) int64 {
	return int64(uint64(wi) * 0x9e3779b97f4a7c15 >> 33)
}

func (o *memOverlay) load(wi int64) (uint64, bool) {
	for h := ovHash(wi) & o.mask; o.ver[h] == o.cur; h = (h + 1) & o.mask {
		if o.keys[h] == wi {
			return o.vals[h], true
		}
	}
	return 0, false
}

func (o *memOverlay) store(wi int64, v uint64) {
	for h := ovHash(wi) & o.mask; ; h = (h + 1) & o.mask {
		if o.ver[h] != o.cur {
			o.ver[h] = o.cur
			o.keys[h] = wi
			o.vals[h] = v
			o.n++
			if int64(o.n)*4 > (o.mask+1)*3 {
				o.grow()
			}
			return
		}
		if o.keys[h] == wi {
			o.vals[h] = v
			return
		}
	}
}

func (o *memOverlay) grow() {
	old := *o
	o.init((o.mask + 1) * 2)
	for i := range old.ver {
		if old.ver[i] == old.cur {
			o.store(old.keys[i], old.vals[i])
		}
	}
}

// scoutCtx is the per-processor speculation context. It is owned by one
// scout goroutine for the duration of an epoch; the coordinator touches it
// only before the scouts start and after they join.
type scoutCtx struct {
	aborted bool
	reason  AbortReason
	buf     *obs.ProcBuffer // nil when no recorder is attached

	// Overlays over shared state (never written during the epoch).
	dirOv  map[int64]dirEntry // l2 line -> speculative entry; keys = touched-line set
	mem    memOverlay
	bwBook map[int64]int32 // node<<44|window -> lines booked
	bwHit  []bool          // per node: this scout booked service on it
	bwWait []bool          // per node: a booking saw a nonzero queuing delay
	pmiss  []int64         // vpages whose pageMiss counter must be bumped

	// Undo state for the processor's own private structures.
	statsSnap ProcStats
	clockSnap int64
	l0Slot    [l0Ways]int32
	l0Way     [l0Ways]int8
	l1LRU     []int8
	l2LRU     []int8
	tlbPos    int
	tlbLast   int64
	cacheJ    []cacheJEntry
	tlbSlotJ  []tlbSlotJEntry
	tlbFifoJ  []tlbFifoJEntry
}

func (sc *scoutCtx) abort(r AbortReason) {
	if !sc.aborted {
		sc.aborted = true
		sc.reason = r
	}
}

func (sc *scoutCtx) jCache(c *cache, slot int) {
	sc.cacheJ = append(sc.cacheJ, cacheJEntry{c: c, slot: int32(slot), tag: c.tags[slot], excl: c.excl[slot]})
}

// jCachePost journals an insert() that already happened: the previous
// occupant of slot was (tag=victim or -1, excl=victimExcl); invalid ways
// always carry excl=false, so the pair restores exactly.
func (sc *scoutCtx) jCachePost(c *cache, slot int, victim int64, victimExcl bool) {
	sc.cacheJ = append(sc.cacheJ, cacheJEntry{c: c, slot: int32(slot), tag: victim, excl: victimExcl})
}

// invalidate mirrors cache.invalidate with journaling.
func (sc *scoutCtx) invalidate(c *cache, line int64) {
	if s := c.lookup(line); s >= 0 {
		sc.jCache(c, s)
		c.tags[s] = -1
		c.excl[s] = false
	}
}

// dirRead returns the scout's view of a directory entry without recording
// a touch: the overlay if present, else the shared (frozen) entry.
func (sc *scoutCtx) dirRead(s *System, line int64) dirEntry {
	if d, ok := sc.dirOv[line]; ok {
		return d
	}
	return s.dir[line]
}

func (sc *scoutCtx) dirWrite(line int64, d dirEntry) {
	sc.dirOv[line] = d
}

func bwKey(node int, w int64) int64 { return int64(node)<<44 | w }

// reserve mirrors System.reserve against the frozen shared ring plus this
// scout's own bookings. Stale ring slots (epoch mismatch) read as empty,
// exactly as the serial path would reset them before booking.
func (sc *scoutCtx) reserve(s *System, node int, t int64) int64 {
	if s.bwCap <= 0 {
		return 0
	}
	b := &s.bw[node]
	w := t / s.bwWindow
	sc.bwHit[node] = true
	for k := 0; k < bwRing; k++ {
		wk := w + int64(k)
		idx := wk % bwRing
		var used int32
		if b.epoch[idx] == wk {
			used = b.used[idx]
		}
		key := bwKey(node, wk)
		used += sc.bwBook[key]
		if used < s.bwCap {
			sc.bwBook[key]++
			if k == 0 {
				return 0
			}
			sc.bwWait[node] = true
			return wk*s.bwWindow - t
		}
	}
	sc.bwWait[node] = true
	return int64(bwRing) * s.bwWindow
}

// tlbAccess mirrors tlb.access with journaling. Growth of the membership
// table needs no undo: new cells are zero, and zero means absent.
func (sc *scoutCtx) tlbAccess(t *tlb, vpage int64) bool {
	if vpage == t.last && !t.noMemo {
		return true
	}
	if vpage < int64(len(t.slot)) && t.slot[vpage] != 0 {
		t.last = vpage
		return true
	}
	if old := t.fifo[t.pos]; old != 0 {
		sc.tlbSlotJ = append(sc.tlbSlotJ, tlbSlotJEntry{vpage: old, val: t.slot[old]})
		t.slot[old] = 0
		if old == t.last {
			t.last = 0
		}
	}
	if vpage >= int64(len(t.slot)) {
		grown := make([]uint16, vpage+vpage/4+1)
		copy(grown, t.slot)
		t.slot = grown
	}
	sc.tlbFifoJ = append(sc.tlbFifoJ, tlbFifoJEntry{idx: t.pos, val: t.fifo[t.pos]})
	sc.tlbSlotJ = append(sc.tlbSlotJ, tlbSlotJEntry{vpage: vpage, val: t.slot[vpage]})
	t.fifo[t.pos] = vpage
	t.slot[vpage] = uint16(t.pos) + 1
	t.last = vpage
	t.pos++
	if t.pos == len(t.fifo) {
		t.pos = 0
	}
	return false
}

// ArmScout puts processor p into scout mode for one epoch. buf, when
// non-nil, receives the observability events the serial engine would have
// emitted (the executor replays them in schedule order at commit).
func (s *System) ArmScout(p int, buf *obs.ProcBuffer) {
	pr := s.procs[p]
	sc := pr.scSpare
	if sc == nil {
		sc = &scoutCtx{
			dirOv:  make(map[int64]dirEntry),
			bwBook: make(map[int64]int32),
			bwHit:  make([]bool, len(s.bw)),
			bwWait: make([]bool, len(s.bw)),
			l1LRU:  make([]int8, len(pr.l1.lru)),
			l2LRU:  make([]int8, len(pr.l2.lru)),
		}
		sc.mem.init(1024)
		pr.scSpare = sc
	} else {
		clear(sc.dirOv)
		clear(sc.bwBook)
		for i := range sc.bwHit {
			sc.bwHit[i] = false
			sc.bwWait[i] = false
		}
		sc.mem.reset()
		sc.pmiss = sc.pmiss[:0]
		sc.cacheJ = sc.cacheJ[:0]
		sc.tlbSlotJ = sc.tlbSlotJ[:0]
		sc.tlbFifoJ = sc.tlbFifoJ[:0]
		sc.aborted = false
		sc.reason = abortNone
	}
	sc.buf = buf
	if buf != nil {
		buf.Reset()
	}
	sc.statsSnap = pr.stats
	sc.clockSnap = pr.clock
	sc.l0Slot, sc.l0Way = pr.l0Slot, pr.l0Way
	copy(sc.l1LRU, pr.l1.lru)
	copy(sc.l2LRU, pr.l2.lru)
	sc.tlbPos, sc.tlbLast = pr.tlb.pos, pr.tlb.last
	pr.sc = sc
}

// ScoutArmed reports whether p is currently in scout mode (between
// ArmScout and Commit/AbortScout). The executor's runtime gate uses it to
// tell speculative quanta from ordinary serial execution.
func (s *System) ScoutArmed(p int) bool { return s.procs[p].sc != nil }

// ScoutAborted reports whether p's scout has poisoned its epoch.
func (s *System) ScoutAborted(p int) bool {
	sc := s.procs[p].sc
	return sc != nil && sc.aborted
}

// ScoutAbortReason returns why p's scout aborted (valid after ScoutAborted).
func (s *System) ScoutAbortReason(p int) AbortReason {
	if sc := s.procs[p].sc; sc != nil {
		return sc.reason
	}
	return abortNone
}

// AbortScoutRTC is called by the executor's runtime gate when a scout
// reaches a non-barrier runtime call.
func (s *System) AbortScoutRTC(p int) {
	if sc := s.procs[p].sc; sc != nil {
		sc.abort(AbortRTC)
	}
}

// AbortScout rolls processor p's private state back to the epoch start and
// leaves scout mode. Shared state was never written, so nothing else needs
// repair.
func (s *System) AbortScout(p int) {
	pr := s.procs[p]
	sc := pr.sc
	if sc == nil {
		return
	}
	pr.stats = sc.statsSnap
	pr.clock = sc.clockSnap
	pr.l0Slot, pr.l0Way = sc.l0Slot, sc.l0Way
	copy(pr.l1.lru, sc.l1LRU)
	copy(pr.l2.lru, sc.l2LRU)
	for i := len(sc.cacheJ) - 1; i >= 0; i-- {
		j := &sc.cacheJ[i]
		j.c.tags[j.slot] = j.tag
		j.c.excl[j.slot] = j.excl
	}
	for i := len(sc.tlbFifoJ) - 1; i >= 0; i-- {
		pr.tlb.fifo[sc.tlbFifoJ[i].idx] = sc.tlbFifoJ[i].val
	}
	for i := len(sc.tlbSlotJ) - 1; i >= 0; i-- {
		pr.tlb.slot[sc.tlbSlotJ[i].vpage] = sc.tlbSlotJ[i].val
	}
	pr.tlb.pos, pr.tlb.last = sc.tlbPos, sc.tlbLast
	pr.sc = nil
}

// scoutClaims stamps each directory line a scout touched into the claim
// table; a line already stamped by another scout this epoch is a conflict.
// The touched-line set is exactly the overlay key set: every scout path
// that reads a directory entry either writes it back or aborts.
func (s *System) beginValidateEpoch() {
	s.scoutEpoch++
	if len(s.claim) < len(s.dir) {
		s.claim = append(s.claim, make([]int64, len(s.dir)-len(s.claim))...)
	}
}

// ValidateScouts checks that the armed scouts' shared-state footprints are
// pairwise disjoint, so their speculative trajectories match what any
// serial interleaving would have produced. It reports true when the epoch
// can be committed.
func (s *System) ValidateScouts(procs []int) bool {
	s.beginValidateEpoch()
	stampBase := s.scoutEpoch << 8

	// Directory lines must be touched by at most one scout.
	for _, p := range procs {
		sc := s.procs[p].sc
		for line := range sc.dirOv {
			stamp := stampBase | int64(p+1)
			if prev := s.claim[line]; prev>>8 == s.scoutEpoch && prev != stamp {
				return false
			}
			s.claim[line] = stamp
		}
	}

	// Bandwidth: bookings on a node commute only when no booking on that
	// node waited (zero-delay reservations that all fit land identically
	// in any arrival order) — a wait means arrival order is observable.
	for n := range s.bw {
		scouts, waited := 0, false
		for _, p := range procs {
			sc := s.procs[p].sc
			if sc.bwHit[n] {
				scouts++
				waited = waited || sc.bwWait[n]
			}
		}
		if scouts > 1 && waited {
			return false
		}
	}
	// And the combined bookings per (node, window) must still fit under
	// the cap — all-zero-delay scouts each checked only their own share.
	if s.bwCap > 0 {
		total := make(map[int64]int32)
		for _, p := range procs {
			for key, n := range s.procs[p].sc.bwBook {
				total[key] += n
			}
		}
		for key, n := range total {
			node := int(key >> 44)
			wk := key & (1<<44 - 1)
			idx := wk % bwRing
			var used int32
			if s.bw[node].epoch[idx] == wk {
				used = s.bw[node].used[idx]
			}
			if used+n > s.bwCap {
				return false
			}
		}
	}
	return true
}

// CommitScout publishes p's overlays into the shared state and leaves
// scout mode. Only valid after ValidateScouts approved the epoch.
func (s *System) CommitScout(p int) {
	pr := s.procs[p]
	sc := pr.sc
	if sc == nil {
		return
	}
	for line, d := range sc.dirOv {
		s.dir[line] = d
	}
	ov := &sc.mem
	if ov.n > 0 {
		for i, v := range ov.ver {
			if v == ov.cur {
				s.mem[ov.keys[i]] = ov.vals[i]
			}
		}
	}
	for key, n := range sc.bwBook {
		node := int(key >> 44)
		wk := key & (1<<44 - 1)
		idx := wk % bwRing
		b := &s.bw[node]
		if b.epoch[idx] != wk {
			b.epoch[idx] = wk
			b.used[idx] = 0
		}
		b.used[idx] += n
	}
	for _, vp := range sc.pmiss {
		s.pageMiss[vp]++
	}
	pr.sc = nil
}

// scoutAccess mirrors Access under scout rules. Structure and cost
// arithmetic must stay in lockstep with Access — bit-identity of the
// parallel engine depends on it.
func (s *System) scoutAccess(p int, pr *proc, addr int64, write bool) {
	sc := pr.sc
	if sc.aborted {
		return
	}
	cfg := s.Cfg
	l1line := addr >> pr.l1.shift
	if write {
		pr.stats.Stores++
	} else {
		pr.stats.Loads++
	}
	if slot := pr.l1.lookup(l1line); slot >= 0 {
		if !pr.noMemo {
			i := l1line & l0Mask
			pr.l0Slot[i] = int32(slot)
			pr.l0Way[i] = int8(slot - int(l1line&pr.l1.mask)*pr.l1.assoc)
		}
		pr.clock += int64(cfg.L1HitCyc)
		if !write {
			return
		}
		if pr.l1.excl[slot] {
			return
		}
		l2line := addr >> s.l2Shift
		d := sc.dirRead(s, l2line)
		if d.othersThan(p) {
			sc.abort(AbortInvalidation)
			return
		}
		d.owner = int32(p)
		sc.dirWrite(l2line, d)
		sc.jCache(pr.l1, slot)
		pr.l1.excl[slot] = true
		if l2s := pr.l2.lookup(l2line); l2s >= 0 {
			sc.jCache(pr.l2, l2s)
			pr.l2.excl[l2s] = true
		}
		// lat stays 0: with no other sharers invalidateOthers charges
		// nothing, and MemCyc += 0 is a no-op in the serial path too.
		return
	}

	pr.stats.L1Miss++
	if sc.buf != nil {
		sc.buf.L1Miss(1)
	}
	lat := int64(cfg.L2HitCyc)

	vpage := s.Pages.VPage(addr)
	if !sc.tlbAccess(pr.tlb, vpage) {
		pr.stats.TLBMiss++
		lat += int64(cfg.TLBMissCyc)
		pr.stats.TLBCyc += int64(cfg.TLBMissCyc)
		if sc.buf != nil {
			sc.buf.TLBMiss(pr.node, addr, int64(cfg.TLBMissCyc), pr.clock, 1)
		}
	}

	l2line := addr >> s.l2Shift
	d := sc.dirRead(s, l2line)
	slot := pr.l2.lookup(l2line)
	if slot < 0 {
		pr.stats.L2Miss++
		if vp := addr >> s.Pages.PageShift(); vp < int64(len(s.pageMiss)) {
			sc.pmiss = append(sc.pmiss, vp)
		}
		pg, ok := s.Pages.Lookup(addr)
		if !ok {
			// First touch would allocate the page — a shared-state write.
			sc.abort(AbortPageFault)
			return
		}
		home := pg.Node
		if d.owner >= 0 && int(d.owner) != p {
			sc.abort(AbortIntervention)
			return
		}
		base := int64(cfg.RemoteLatency(pr.node, home))
		if wait := sc.reserve(s, home, pr.clock); wait > 0 {
			lat += wait
			pr.stats.WaitCyc += wait
			if sc.buf != nil {
				sc.buf.BWWait(home, wait, 1)
			}
		}
		lat += base
		if sc.buf != nil {
			sc.buf.L2Miss(pr.node, home, addr, base, pr.clock, 1)
		}
		if home == pr.node {
			pr.stats.L2MissLocal++
		} else {
			pr.stats.L2MissRemote++
		}
		victim, vs, vexcl := pr.l2.insert(l2line)
		sc.jCachePost(pr.l2, vs, victim, vexcl)
		if victim >= 0 {
			s.scoutEvictL2(sc, pr, p, victim, vexcl)
		}
		slot = vs
		d.set(p)
		sc.dirWrite(l2line, d)
	}

	if write && !pr.l2.excl[slot] {
		if d.othersThan(p) {
			sc.abort(AbortInvalidation)
			return
		}
		d.owner = int32(p)
		sc.dirWrite(l2line, d)
		sc.jCache(pr.l2, slot)
		pr.l2.excl[slot] = true
	}

	v1, s1, v1e := pr.l1.insert(l1line)
	sc.jCachePost(pr.l1, s1, v1, v1e)
	pr.l1.excl[s1] = pr.l2.excl[slot]
	if !pr.noMemo {
		i := l1line & l0Mask
		pr.l0Slot[i] = int32(s1)
		pr.l0Way[i] = int8(s1 - int(l1line&pr.l1.mask)*pr.l1.assoc)
	}

	pr.clock += lat
	pr.stats.MemCyc += lat
}

// scoutEvictL2 mirrors evictL2: directory bookkeeping goes to the overlay,
// own-L1 subline invalidations are journaled.
func (s *System) scoutEvictL2(sc *scoutCtx, pr *proc, p int, victim int64, wasExcl bool) {
	d := sc.dirRead(s, victim)
	d.clear(p)
	if d.owner == int32(p) {
		d.owner = -1
	}
	sc.dirWrite(victim, d)
	base := victim * int64(s.l1Per2)
	for k := 0; k < s.l1Per2; k++ {
		sc.invalidate(pr.l1, base+int64(k))
	}
	if wasExcl {
		pr.stats.Writebacks++
	}
}

// scoutLoadWord mirrors LoadWord: same fast path, with loads probing the
// scout's own store overlay before the frozen backing store. (No other
// scout can have written a word this one is permitted to read: writing
// requires exclusivity, and a foreign reader would abort on the owner
// check or trip directory-claim validation.)
func (s *System) scoutLoadWord(p int, pr *proc, addr int64) uint64 {
	sc := pr.sc
	if sc.aborted {
		return 0
	}
	l1line := addr >> pr.l1.shift
	if m := l1line & l0Mask; pr.l1.tags[pr.l0Slot[m]] == l1line {
		pr.stats.Loads++
		pr.l1.lru[l1line&pr.l1.mask] = pr.l0Way[m]
		pr.clock += pr.l1Hit
	} else {
		s.scoutAccess(p, pr, addr, false)
		if sc.aborted {
			return 0
		}
	}
	if sc.mem.n > 0 {
		if v, ok := sc.mem.load(addr >> 3); ok {
			return v
		}
	}
	return s.mem[addr>>3]
}

// scoutStoreWord mirrors StoreWord with the store landing in the overlay.
func (s *System) scoutStoreWord(p int, pr *proc, addr int64, v uint64) {
	sc := pr.sc
	if sc.aborted {
		return
	}
	l1line := addr >> pr.l1.shift
	if m := l1line & l0Mask; pr.l1.tags[pr.l0Slot[m]] == l1line &&
		pr.l1.excl[pr.l0Slot[m]] {
		pr.stats.Stores++
		pr.l1.lru[l1line&pr.l1.mask] = pr.l0Way[m]
		pr.clock += pr.l1Hit
	} else {
		s.scoutAccess(p, pr, addr, true)
		if sc.aborted {
			return
		}
	}
	sc.mem.store(addr>>3, v)
}

// scoutRunWalk mirrors runWalk under speculation. Group heads go through
// the scout memo guard or the full scoutAccess (which journals cache and
// directory effects and can abort); bulk L1 hits are charged in batch —
// their only effects are stats, clock and LRU touches, all of which the
// epoch snapshot already undoes, so no extra journal entries are needed.
// Returns the number of words completed: an abort stops the walk at the
// same word the word-at-a-time loop would have aborted on (the walk's
// remaining words would all be no-ops there, so stopping is identical).
func (s *System) scoutRunWalk(p int, pr *proc, addr, stride int64, count int, write bool, pre []int64) int {
	sc := pr.sc
	if sc.aborted {
		return 0
	}
	lean := pr.leanRun && stride >= 0 && count >= 2
	i := 0
	for i < count {
		a := addr + int64(i)*stride
		if pre != nil {
			pr.clock += pre[i]
		}
		l1line := a >> pr.l1.shift
		if m := l1line & l0Mask; pr.l1.tags[pr.l0Slot[m]] == l1line &&
			(!write || pr.l1.excl[pr.l0Slot[m]]) {
			if write {
				pr.stats.Stores++
			} else {
				pr.stats.Loads++
			}
			pr.l1.lru[l1line&pr.l1.mask] = pr.l0Way[m]
			pr.clock += pr.l1Hit
		} else {
			s.scoutAccess(p, pr, a, write)
			if sc.aborted {
				return i
			}
		}
		if !lean {
			i++
			continue
		}
		last := groupEnd(pr, a, stride, i, count, l1line)
		if last > i {
			slot := pr.l1.lookup(l1line)
			if slot < 0 || (write && !pr.l1.excl[slot]) {
				i++ // unreachable after a successful head; word-walk
				continue
			}
			k := int64(last - i)
			bulk := k * pr.l1Hit
			if pre != nil {
				for j := i + 1; j <= last; j++ {
					bulk += pre[j]
				}
			}
			if write {
				pr.stats.Stores += k
			} else {
				pr.stats.Loads += k
			}
			pr.clock += bulk
		}
		i = last + 1
	}
	return count
}

// scoutLoadRun mirrors LoadRun with reads probing the epoch's store
// overlay. Words at and after an abort read as zero, exactly as the
// aborted word loop would return.
func (s *System) scoutLoadRun(p int, pr *proc, addr, stride int64, count int, pre []int64, out []uint64) {
	n := s.scoutRunWalk(p, pr, addr, stride, count, false, pre)
	sc := pr.sc
	a := addr
	for i := 0; i < n; i++ {
		v := s.mem[a>>3]
		if sc.mem.n > 0 {
			if ov, ok := sc.mem.load(a >> 3); ok {
				v = ov
			}
		}
		out[i] = v
		a += stride
	}
	for i := n; i < count; i++ {
		out[i] = 0
	}
}

// scoutStoreRun mirrors StoreRun with writes landing in the overlay; the
// aborting word and everything after it store nothing, as in the loop.
func (s *System) scoutStoreRun(p int, pr *proc, addr, stride int64, count int, pre []int64, vals []uint64) {
	n := s.scoutRunWalk(p, pr, addr, stride, count, true, pre)
	sc := pr.sc
	a := addr
	for i := 0; i < n; i++ {
		sc.mem.store(a>>3, vals[i])
		a += stride
	}
}
