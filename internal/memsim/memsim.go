// Package memsim simulates the Origin-2000 memory system the paper's
// evaluation depends on (paper §2): per-processor two-way L1 and L2 caches,
// a 64-entry TLB, directory-based invalidation cache coherence maintained by
// the node hubs, NUMA latencies that grow with hypercube hop distance, and
// finite per-node memory bandwidth. Every effect quoted in §8 — local vs
// remote misses, cache-line and page-level false sharing, TLB-miss time,
// node bandwidth bottlenecks, and aggregate-cache superlinearity — emerges
// from this model rather than being scripted.
//
// Each logical processor has its own cycle clock; the executor interleaves
// processors in cycle-bounded quanta so the clocks stay loosely
// synchronized, and a windowed per-node bandwidth model (a node services a
// bounded number of cache lines per time window, independent of host
// scheduling order) turns concentrated page placements into queuing delay,
// as on the real machine.
//
// Caches are virtually indexed and tagged. The simulated OS always succeeds
// at page coloring for non-spilled pages (ospage), which on the real machine
// makes physical indexing behave like virtual indexing for contiguous
// virtual ranges; see DESIGN.md.
package memsim

import (
	"fmt"
	"math"
	"math/bits"

	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
)

// MaxProcs is the largest processor count the directory sharer masks
// support.
const MaxProcs = 128

// ProcStats are the per-processor hardware-counter-style statistics (the
// paper reads the R10000 event counters; §8, [ZLT+96]). The JSON field
// names are a stable machine-readable interface (dsmbench -json); renaming
// one is a breaking change.
type ProcStats struct {
	Loads         int64 `json:"loads"`
	Stores        int64 `json:"stores"`
	L1Miss        int64 `json:"l1_miss"`
	L2Miss        int64 `json:"l2_miss"`
	L2MissLocal   int64 `json:"l2_miss_local"`
	L2MissRemote  int64 `json:"l2_miss_remote"`
	TLBMiss       int64 `json:"tlb_miss"`
	Upgrades      int64 `json:"upgrades"` // writes that had to invalidate other sharers
	InvSent       int64 `json:"inv_sent"`
	InvRecv       int64 `json:"inv_recv"`
	Interventions int64 `json:"interventions"` // misses serviced from another processor's cache
	Writebacks    int64 `json:"writebacks"`
	WaitCyc       int64 `json:"wait_cyc"` // cycles lost to node-memory queuing
	TLBCyc        int64 `json:"tlb_cyc"`  // cycles spent in TLB refill
	MemCyc        int64 `json:"mem_cyc"`  // cycles spent waiting on cache misses
}

// Add accumulates o into s.
func (s *ProcStats) Add(o ProcStats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.L1Miss += o.L1Miss
	s.L2Miss += o.L2Miss
	s.L2MissLocal += o.L2MissLocal
	s.L2MissRemote += o.L2MissRemote
	s.TLBMiss += o.TLBMiss
	s.Upgrades += o.Upgrades
	s.InvSent += o.InvSent
	s.InvRecv += o.InvRecv
	s.Interventions += o.Interventions
	s.Writebacks += o.Writebacks
	s.WaitCyc += o.WaitCyc
	s.TLBCyc += o.TLBCyc
	s.MemCyc += o.MemCyc
}

type dirEntry struct {
	mask0, mask1 uint64
	owner        int32 // processor holding the line Modified, or -1
}

func (d *dirEntry) has(p int) bool {
	if p < 64 {
		return d.mask0&(1<<uint(p)) != 0
	}
	return d.mask1&(1<<uint(p-64)) != 0
}

func (d *dirEntry) set(p int) {
	if p < 64 {
		d.mask0 |= 1 << uint(p)
	} else {
		d.mask1 |= 1 << uint(p-64)
	}
}

func (d *dirEntry) clear(p int) {
	if p < 64 {
		d.mask0 &^= 1 << uint(p)
	} else {
		d.mask1 &^= 1 << uint(p-64)
	}
}

func (d *dirEntry) othersThan(p int) bool {
	m0, m1 := d.mask0, d.mask1
	if p < 64 {
		m0 &^= 1 << uint(p)
	} else {
		m1 &^= 1 << uint(p-64)
	}
	return m0 != 0 || m1 != 0
}

type cache struct {
	// tags holds sets*assoc line tags (full line address, -1 invalid)
	// plus one trailing sentinel entry that stays -1 forever. The L0 memo
	// points empty entries at the sentinel so its guard is a single
	// always-in-bounds load-and-compare with no separate validity test.
	tags  []int64
	excl  []bool // line held exclusively (L2) / writable (L1)
	lru   []int8 // way last used, per set (assoc<=2 friendly round-robin)
	sets  int
	assoc int
	sent  int32 // index of the sentinel tags entry (== sets*assoc)
	shift uint
	mask  int64
}

func newCache(bytes, lineSize, assoc int) *cache {
	sets := bytes / (lineSize * assoc)
	if sets < 1 {
		sets = 1
	}
	c := &cache{
		tags:  make([]int64, sets*assoc+1),
		excl:  make([]bool, sets*assoc+1),
		lru:   make([]int8, sets),
		sets:  sets,
		assoc: assoc,
		sent:  int32(sets * assoc),
		shift: uint(bits.TrailingZeros(uint(lineSize))),
		mask:  int64(sets - 1),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// lookup returns the slot index of line (full line address) or -1.
func (c *cache) lookup(line int64) int {
	base := int(line&c.mask) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == line {
			c.lru[line&c.mask] = int8(w)
			return base + w
		}
	}
	return -1
}

// insert fills the line, returning the victim line address (or -1), its
// slot, and whether the victim was held exclusive.
func (c *cache) insert(line int64) (victim int64, slot int, victimExcl bool) {
	set := int(line & c.mask)
	base := set * c.assoc
	// Prefer an invalid way.
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == -1 {
			c.tags[base+w] = line
			c.excl[base+w] = false
			c.lru[set] = int8(w)
			return -1, base + w, false
		}
	}
	// Evict the not-most-recently-used way.
	w := int(c.lru[set]) + 1
	if w >= c.assoc {
		w = 0
	}
	victim = c.tags[base+w]
	victimExcl = c.excl[base+w]
	c.tags[base+w] = line
	c.excl[base+w] = false
	c.lru[set] = int8(w)
	return victim, base + w, victimExcl
}

// invalidate removes the line if present, reporting whether it was there.
func (c *cache) invalidate(line int64) bool {
	if s := c.lookup(line); s >= 0 {
		c.tags[s] = -1
		c.excl[s] = false
		return true
	}
	return false
}

// tlb models a FIFO-replacement TLB. Membership lives in slot, a flat
// table indexed by virtual page holding the entry's fifo index + 1 (0 =
// not present); virtual page counts are small (memory size / page size),
// so the table costs a few hundred KB per processor and turns the hot
// hit test into a single indexed load. The table grows on demand as the
// simulated heap grows.
type tlb struct {
	slot []uint16 // vpage -> fifo index + 1; 0 = absent
	fifo []int64
	pos  int
	// last memoizes the most recently accessed page so the common
	// same-page streak skips even the table load. Invariant: last != 0
	// implies last is resident (cleared at both deletion sites), so the
	// memo answer always matches what the table would say. Virtual page 0
	// is never mapped (null guard), so 0 doubles as "empty".
	last int64
	// noMemo disables the memo (System.SetL0 test hook).
	noMemo bool
}

func newTLB(n int) *tlb {
	if n+1 > int(^uint16(0)) {
		panic("memsim: TLB too large for uint16 fifo indices")
	}
	return &tlb{slot: make([]uint16, 1024), fifo: make([]int64, n)}
}

// access returns true on hit, inserting on miss (FIFO replacement). Virtual
// page 0 is never mapped (null guard), so a zero fifo slot means empty.
func (t *tlb) access(vpage int64) bool {
	if vpage == t.last && !t.noMemo {
		return true
	}
	if vpage < int64(len(t.slot)) && t.slot[vpage] != 0 {
		t.last = vpage
		return true
	}
	if old := t.fifo[t.pos]; old != 0 {
		t.slot[old] = 0 // resident pages are always inside the table
		if old == t.last {
			t.last = 0
		}
	}
	if vpage >= int64(len(t.slot)) {
		grown := make([]uint16, vpage+vpage/4+1)
		copy(grown, t.slot)
		t.slot = grown
	}
	t.fifo[t.pos] = vpage
	t.slot[vpage] = uint16(t.pos) + 1
	t.last = vpage
	t.pos++
	if t.pos == len(t.fifo) {
		t.pos = 0
	}
	return false
}

func (t *tlb) shootdown(vpage int64) {
	if vpage < int64(len(t.slot)) {
		if i := t.slot[vpage]; i != 0 {
			t.slot[vpage] = 0
			t.fifo[i-1] = 0
			if vpage == t.last {
				t.last = 0
			}
		}
	}
}

type proc struct {
	clock int64
	l1    *cache
	l2    *cache
	tlb   *tlb
	node  int
	stats ProcStats

	// The "L0" memo: a small direct-mapped table of recently hit or
	// filled L1 slots, indexed by the low bits of the line number. A
	// repeat access to a memoized line revalidates the entry with a
	// single tag compare — l1.tags[l0Slot[m]] == line — and skips the
	// full Access walk. The compare alone proves the hit: a slot only
	// ever holds lines of its own set, so a matching tag means the line
	// is resident at that slot, and since sets partition slots, the line
	// the entry was written for shares the set, making the cached way
	// valid too. Empty entries point at the cache's sentinel tag (-1),
	// which no real line address equals. Invalidations and evictions
	// overwrite tags, so stale entries self-detect. The memo is purely a
	// host-side shortcut — see the bit-identical contract on LoadWord
	// and TestL0FastPathBitIdentical. Multiple entries matter because
	// hot loop bodies interleave accesses to several unrelated lines
	// (descriptor, source, destination); a single entry ping-pongs and
	// never hits.
	l0Slot [l0Ways]int32
	l0Way  [l0Ways]int8
	// l1Hit is the per-proc copy of Config.L1HitCyc, and noMemo the
	// per-proc SetL0 state; both keep the inlined LoadWord/StoreWord
	// fast path free of System-level indirections. With noMemo set the
	// memo is never written, so every entry stays on the sentinel and
	// the fast path never matches.
	l1Hit  int64
	noMemo bool
	// leanRun gates the run-batched fast path in AccessRun et al.
	// (System.SetMemRun / DSM_MEMRUN); cleared per-proc for the same
	// reason noMemo is.
	leanRun bool

	// sc, when non-nil, routes this processor's accesses through scout
	// mode (speculative epoch of the parallel engine; see scout.go).
	// scSpare parks the context between epochs for reuse.
	sc      *scoutCtx
	scSpare *scoutCtx
}

// System is the shared memory system for one simulated run.
type System struct {
	Cfg   *machine.Config
	Pages *ospage.Manager

	mem   []uint64 // backing store, 8-byte words
	brk   int64    // bytes allocated
	procs []*proc

	dir     []dirEntry
	l2Shift uint
	l1Per2  int // L1 lines per L2 line

	// pageMiss counts L2 misses per virtual page (array-traffic
	// attribution, in the spirit of the paper's hardware-counter
	// analysis).
	pageMiss []int64

	// Node-memory bandwidth model: each node can service a bounded
	// number of cache lines per time window. Windows make the model
	// independent of thread scheduling order — a request at simulated
	// time t sees the same queue no matter when it is executed by the
	// host.
	bw       []nodeBW
	bwWindow int64 // window length in cycles
	bwCap    int32 // lines serviceable per window

	// rec, when non-nil, receives observability events. Every hook is
	// nil-guarded and placed off the arithmetic paths, so a run without
	// a recorder is cycle-for-cycle identical.
	rec *obs.Recorder

	// Scout-epoch validation state (see scout.go): a monotone epoch
	// counter and a per-directory-line claim table stamped
	// epoch<<8|proc+1 so disjointness checks need no clearing.
	scoutEpoch int64
	claim      []int64
}

// SetL0 enables or disables the host-side access fast paths (the per-
// processor L0 line memo and the TLB last-page memo). They are on by
// default; disabling them must not change any simulated cycle or counter —
// the toggle exists so tests can prove that.
func (s *System) SetL0(enabled bool) {
	for _, pr := range s.procs {
		pr.noMemo = !enabled
		for i := range pr.l0Slot {
			pr.l0Slot[i] = pr.l1.sent
		}
		pr.tlb.noMemo = !enabled
	}
}

// SetRecorder attaches (or detaches, with nil) the observability sink.
func (s *System) SetRecorder(r *obs.Recorder) { s.rec = r }

// bwRing is the number of windows tracked per node; requests pushed more
// than bwRing windows into the future accumulate wait in bulk.
const bwRing = 64

type nodeBW struct {
	epoch [bwRing]int64
	used  [bwRing]int32
}

// reserve books one cache-line service on the node at time t, returning the
// queuing delay.
func (s *System) reserve(node int, t int64) int64 {
	if s.bwCap <= 0 {
		return 0
	}
	b := &s.bw[node]
	w := t / s.bwWindow
	for k := 0; k < bwRing; k++ {
		idx := (w + int64(k)) % bwRing
		if b.epoch[idx] != w+int64(k) {
			b.epoch[idx] = w + int64(k)
			b.used[idx] = 0
		}
		if b.used[idx] < s.bwCap {
			b.used[idx]++
			if k == 0 {
				return 0
			}
			return (w+int64(k))*s.bwWindow - t
		}
	}
	// Saturated far beyond the ring: charge a full ring of delay.
	return int64(bwRing) * s.bwWindow
}

// New builds the memory system for the machine configuration, with pages
// managed by pm.
func New(cfg *machine.Config, pm *ospage.Manager) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NProcs > MaxProcs {
		return nil, fmt.Errorf("memsim: %d processors exceeds MaxProcs %d", cfg.NProcs, MaxProcs)
	}
	s := &System{
		Cfg:      cfg,
		Pages:    pm,
		l2Shift:  uint(bits.TrailingZeros(uint(cfg.L2LineSize))),
		l1Per2:   cfg.L2LineSize / cfg.L1LineSize,
		bw:       make([]nodeBW, cfg.NNodes()),
		bwWindow: 512,
		brk:      int64(cfg.PageBytes), // first page kept unmapped as a null guard
	}
	if cfg.MemServiceCyc > 0 {
		s.bwCap = int32(s.bwWindow / int64(cfg.MemServiceCyc))
		if s.bwCap < 1 {
			s.bwCap = 1
		}
	}
	if s.l1Per2 < 1 {
		s.l1Per2 = 1
	}
	// The lean run path assumes an L2 line never crosses a page (true of
	// every real Origin-like config); fall back to word walks otherwise.
	// DSM_MEMRUN=off|0|false disables it from the environment.
	leanRun := cfg.L2LineSize <= cfg.PageBytes && memRunEnv()
	s.procs = make([]*proc, cfg.NProcs)
	for p := range s.procs {
		s.procs[p] = &proc{
			l1:      newCache(cfg.L1Bytes, cfg.L1LineSize, cfg.L1Assoc),
			l2:      newCache(cfg.L2Bytes, cfg.L2LineSize, cfg.L2Assoc),
			tlb:     newTLB(cfg.TLBEntries),
			node:    cfg.NodeOf(p),
			l1Hit:   int64(cfg.L1HitCyc),
			leanRun: leanRun,
		}
		for i := range s.procs[p].l0Slot {
			s.procs[p].l0Slot[i] = s.procs[p].l1.sent
		}
	}
	return s, nil
}

// Alloc reserves n bytes of virtual address space aligned to align (which
// must be a power of two, at least 8) and returns the base address. The
// space is zero-filled and unplaced; pages materialize on first touch or
// explicit placement.
func (s *System) Alloc(n int64, align int64) int64 {
	if align < 8 {
		align = 8
	}
	base := (s.brk + align - 1) &^ (align - 1)
	s.brk = base + n
	need := (s.brk + 7) >> 3
	for int64(len(s.mem)) < need {
		grow := need - int64(len(s.mem))
		s.mem = append(s.mem, make([]uint64, grow)...)
	}
	needDir := (s.brk >> s.l2Shift) + 1
	for int64(len(s.dir)) < needDir {
		grow := needDir - int64(len(s.dir))
		chunk := make([]dirEntry, grow)
		for i := range chunk {
			chunk[i].owner = -1
		}
		s.dir = append(s.dir, chunk...)
	}
	needPages := (s.brk >> s.Pages.PageShift()) + 1
	for int64(len(s.pageMiss)) < needPages {
		s.pageMiss = append(s.pageMiss, make([]int64, needPages-int64(len(s.pageMiss)))...)
	}
	return base
}

// PageMisses returns the total L2 misses charged to pages overlapping the
// byte range [lo, hi).
func (s *System) PageMisses(lo, hi int64) int64 {
	if hi <= lo {
		return 0
	}
	first := lo >> s.Pages.PageShift()
	last := (hi - 1) >> s.Pages.PageShift()
	var n int64
	for vp := first; vp <= last && vp < int64(len(s.pageMiss)); vp++ {
		n += s.pageMiss[vp]
	}
	return n
}

// Brk returns the current top of the allocated address space.
func (s *System) Brk() int64 { return s.brk }

// Clock returns processor p's cycle clock.
func (s *System) Clock(p int) int64 { return s.procs[p].clock }

// SetClock overrides processor p's clock (barrier release).
func (s *System) SetClock(p int, c int64) { s.procs[p].clock = c }

// AddCycles charges instruction-execution cycles to processor p.
func (s *System) AddCycles(p int, n int64) { s.procs[p].clock += n }

// Stats returns processor p's counters.
func (s *System) Stats(p int) ProcStats { return s.procs[p].stats }

// TotalStats sums counters over all processors.
func (s *System) TotalStats() ProcStats {
	var t ProcStats
	for _, pr := range s.procs {
		t.Add(pr.stats)
	}
	return t
}

// MaxClock returns the maximum clock over the given processors.
func (s *System) MaxClock(procs []int) int64 {
	m := int64(0)
	for _, p := range procs {
		if c := s.procs[p].clock; c > m {
			m = c
		}
	}
	return m
}

// Barrier synchronizes the given processors: all clocks advance to the
// maximum plus the barrier cost model.
func (s *System) Barrier(procs []int) {
	m := s.MaxClock(procs)
	cost := int64(s.Cfg.BarrierBaseCyc + s.Cfg.BarrierPerProc*len(procs))
	if s.rec != nil {
		for _, p := range procs {
			s.rec.BarrierWait(p, s.procs[p].clock, m+cost-s.procs[p].clock)
		}
	}
	for _, p := range procs {
		s.procs[p].clock = m + cost
	}
}

// invalidateOthers removes the L2 line (and contained L1 lines) from every
// sharer except keep, charging coherence latency to the requester.
func (s *System) invalidateOthers(req int, d *dirEntry, line int64, keep int) int64 {
	var extra int64
	n := 0
	for p := 0; p < len(s.procs); p++ {
		if p == keep || !d.has(p) {
			continue
		}
		pr := s.procs[p]
		pr.l2.invalidate(line)
		base := line * int64(s.l1Per2)
		for k := 0; k < s.l1Per2; k++ {
			pr.l1.invalidate(base + int64(k))
		}
		pr.stats.InvRecv++
		d.clear(p)
		n++
	}
	if n > 0 {
		s.procs[req].stats.InvSent += int64(n)
		s.procs[req].stats.Upgrades++
		extra = int64(s.Cfg.CoherenceCyc) + int64(8*(n-1))
		if s.rec != nil {
			s.rec.Invalidations(n)
		}
	}
	if d.owner >= 0 && int(d.owner) != keep {
		d.owner = -1
	}
	return extra
}

// evictL2 handles replacement of an L2 line from processor p's cache:
// directory bookkeeping, inclusion invalidation of the L1 sublines, and a
// writeback count when the line was exclusive.
func (s *System) evictL2(p int, victim int64, wasExcl bool) {
	pr := s.procs[p]
	d := &s.dir[victim]
	d.clear(p)
	if d.owner == int32(p) {
		d.owner = -1
	}
	base := victim * int64(s.l1Per2)
	for k := 0; k < s.l1Per2; k++ {
		pr.l1.invalidate(base + int64(k))
	}
	if wasExcl {
		pr.stats.Writebacks++
	}
}

// Access simulates one 8-byte load or store by processor p at virtual
// address addr, advancing p's clock by the modeled latency. It does not
// touch the backing store; LoadWord/StoreWord wrap it with data movement.
func (s *System) Access(p int, addr int64, write bool) {
	pr := s.procs[p]
	if pr.sc != nil {
		s.scoutAccess(p, pr, addr, write)
		return
	}
	cfg := s.Cfg
	l1line := addr >> pr.l1.shift
	if write {
		pr.stats.Stores++
	} else {
		pr.stats.Loads++
	}
	if slot := pr.l1.lookup(l1line); slot >= 0 {
		if !pr.noMemo {
			i := l1line & l0Mask
			pr.l0Slot[i] = int32(slot)
			pr.l0Way[i] = int8(slot - int(l1line&pr.l1.mask)*pr.l1.assoc)
		}
		pr.clock += int64(cfg.L1HitCyc)
		if !write {
			return
		}
		if pr.l1.excl[slot] {
			return
		}
		// Write to a shared line: upgrade through the directory.
		l2line := addr >> s.l2Shift
		d := &s.dir[l2line]
		var lat int64
		if d.othersThan(p) {
			lat = s.invalidateOthers(p, d, l2line, p)
		}
		d.owner = int32(p)
		pr.l1.excl[slot] = true
		if l2s := pr.l2.lookup(l2line); l2s >= 0 {
			pr.l2.excl[l2s] = true
		}
		pr.clock += lat
		pr.stats.MemCyc += lat
		return
	}

	pr.stats.L1Miss++
	if s.rec != nil {
		s.rec.L1Miss(p, 1)
	}
	lat := int64(cfg.L2HitCyc)

	// Address translation happens on the refill path.
	vpage := s.Pages.VPage(addr)
	if !pr.tlb.access(vpage) {
		pr.stats.TLBMiss++
		lat += int64(cfg.TLBMissCyc)
		pr.stats.TLBCyc += int64(cfg.TLBMissCyc)
		if s.rec != nil {
			s.rec.TLBMiss(p, pr.node, addr, int64(cfg.TLBMissCyc), pr.clock, 1)
		}
	}

	l2line := addr >> s.l2Shift
	d := &s.dir[l2line]
	slot := pr.l2.lookup(l2line)
	if slot < 0 {
		// L2 miss: fetch from home memory or intervening cache.
		pr.stats.L2Miss++
		if vp := addr >> s.Pages.PageShift(); vp < int64(len(s.pageMiss)) {
			s.pageMiss[vp]++
		}
		home := s.Pages.Touch(addr, pr.node)
		if d.owner >= 0 && int(d.owner) != p {
			// Dirty in another cache: cache-to-cache intervention.
			pr.stats.Interventions++
			if s.rec != nil {
				s.rec.Intervention()
				s.rec.L2Miss(p, pr.node, home, addr,
					int64(cfg.RemoteLatency(pr.node, s.procs[d.owner].node)+cfg.CoherenceCyc), pr.clock, 1)
			}
			lat += int64(cfg.RemoteLatency(pr.node, s.procs[d.owner].node) + cfg.CoherenceCyc)
			d.owner = -1
			if home == pr.node {
				pr.stats.L2MissLocal++
			} else {
				pr.stats.L2MissRemote++
			}
		} else {
			base := int64(cfg.RemoteLatency(pr.node, home))
			// Node memory bandwidth: queue behind other requests in
			// the same time window.
			if wait := s.reserve(home, pr.clock); wait > 0 {
				lat += wait
				pr.stats.WaitCyc += wait
				if s.rec != nil {
					s.rec.BWWait(p, home, wait, 1)
				}
			}
			lat += base
			if s.rec != nil {
				s.rec.L2Miss(p, pr.node, home, addr, base, pr.clock, 1)
			}
			if home == pr.node {
				pr.stats.L2MissLocal++
			} else {
				pr.stats.L2MissRemote++
			}
		}
		victim, vs, vexcl := pr.l2.insert(l2line)
		if victim >= 0 {
			s.evictL2(p, victim, vexcl)
		}
		slot = vs
		d.set(p)
	}

	if write && !pr.l2.excl[slot] {
		if d.othersThan(p) {
			lat += s.invalidateOthers(p, d, l2line, p)
		}
		d.owner = int32(p)
		pr.l2.excl[slot] = true
	}

	// Fill L1 (inclusion holds: L2 line present). L1 victims need no
	// directory work; L2 still holds them.
	_, s1, _ := pr.l1.insert(l1line)
	pr.l1.excl[s1] = pr.l2.excl[slot]
	if !pr.noMemo {
		i := l1line & l0Mask
		pr.l0Slot[i] = int32(s1)
		pr.l0Way[i] = int8(s1 - int(l1line&pr.l1.mask)*pr.l1.assoc)
	}

	pr.clock += lat
	pr.stats.MemCyc += lat
}

// LoadWord simulates a load and returns the 8-byte word at addr.
//
// The guard is the L0 fast path: a repeat access to the processor's most
// recently used L1 line skips the Access walk entirely. The tag compare
// revalidates the memo (any invalidation or eviction rewrites the tag),
// and the path performs exactly the state updates the general L1-hit path
// in Access would: the stats counter, the LRU touch the lookup would make,
// and the L1-hit charge. Bit-identity with the slow path is asserted by
// TestL0FastPathBitIdentical.
func (s *System) LoadWord(p int, addr int64) uint64 {
	pr := s.procs[p]
	l1line := addr >> pr.l1.shift
	m := l1line & l0Mask
	if pr.l1.tags[pr.l0Slot[m]] == l1line && pr.sc == nil {
		pr.stats.Loads++
		pr.l1.lru[l1line&pr.l1.mask] = pr.l0Way[m]
		pr.clock += pr.l1Hit
		return s.mem[addr>>3]
	}
	return s.loadWordSlow(p, pr, addr)
}

func (s *System) loadWordSlow(p int, pr *proc, addr int64) uint64 {
	if pr.sc != nil {
		return s.scoutLoadWord(p, pr, addr)
	}
	// Issue the host-side data load before the simulation walk: Access
	// never reads or writes the backing store, and the walk's own work
	// (tags, directory, TLB) then overlaps the host cache miss that a
	// simulated miss almost always implies.
	v := s.mem[addr>>3]
	s.Access(p, addr, false)
	return v
}

// StoreWord simulates a store of the 8-byte word at addr. The L0 fast
// path (see LoadWord) applies only when the line is already writable; a
// shared-line write needs the directory and takes the full Access walk.
func (s *System) StoreWord(p int, addr int64, v uint64) {
	pr := s.procs[p]
	l1line := addr >> pr.l1.shift
	m := l1line & l0Mask
	if slot := pr.l0Slot[m]; pr.l1.tags[slot] == l1line && pr.l1.excl[slot] && pr.sc == nil {
		pr.stats.Stores++
		pr.l1.lru[l1line&pr.l1.mask] = pr.l0Way[m]
		pr.clock += pr.l1Hit
		s.mem[addr>>3] = v
		return
	}
	s.storeWordSlow(p, pr, addr, v)
}

func (s *System) storeWordSlow(p int, pr *proc, addr int64, v uint64) {
	if pr.sc != nil {
		s.scoutStoreWord(p, pr, addr, v)
		return
	}
	// As in LoadWord, touch the backing store before the walk so the host
	// write miss overlaps the simulation work (Access never touches mem).
	s.mem[addr>>3] = v
	s.Access(p, addr, true)
}

// LoadFloat and StoreFloat move float64 values through the simulated
// hierarchy.
func (s *System) LoadFloat(p int, addr int64) float64 {
	return math.Float64frombits(s.LoadWord(p, addr))
}

func (s *System) StoreFloat(p int, addr int64, v float64) {
	s.StoreWord(p, addr, math.Float64bits(v))
}

// Peek reads the backing store without simulating an access (result
// extraction, debugging).
func (s *System) Peek(addr int64) uint64 { return s.mem[addr>>3] }

// Poke writes the backing store without simulation (program loading).
func (s *System) Poke(addr int64, v uint64) { s.mem[addr>>3] = v }

// PeekFloat and PokeFloat are the float64 versions of Peek/Poke.
func (s *System) PeekFloat(addr int64) float64 { return math.Float64frombits(s.Peek(addr)) }

func (s *System) PokeFloat(addr int64, v float64) { s.Poke(addr, math.Float64bits(v)) }

// MigratePage performs the coherence side of a page migration or
// redistribution: every cached line of the page is invalidated everywhere
// and TLB entries are shot down. The caller charges the data-copy cost.
func (s *System) MigratePage(vpage int64) {
	pb := int64(s.Cfg.PageBytes)
	lo := vpage * pb >> s.l2Shift
	hi := ((vpage+1)*pb - 1) >> s.l2Shift
	for line := lo; line <= hi && line < int64(len(s.dir)); line++ {
		d := &s.dir[line]
		for p := 0; p < len(s.procs); p++ {
			if !d.has(p) {
				continue
			}
			pr := s.procs[p]
			pr.l2.invalidate(line)
			base := line * int64(s.l1Per2)
			for k := 0; k < s.l1Per2; k++ {
				pr.l1.invalidate(base + int64(k))
			}
			d.clear(p)
		}
		d.owner = -1
	}
	for _, pr := range s.procs {
		pr.tlb.shootdown(vpage)
	}
}

// BulkTransfer models a DMA-style streaming copy of `bytes` bytes from
// srcNode's memory to dstNode's memory, driven by processor p (the one
// programming the engine). Unlike a demand miss, the stream pays the
// interconnect latency between the nodes once as startup, then books one
// cache-line service slot per L2 line on the source node's bandwidth window
// — and, when the destination differs, on the destination's window too — so
// redistribution traffic contends with demand misses through the same
// windowed bandwidth model. Queuing delays accumulate in p's WaitCyc. p's
// clock advances to the completion time and the total cycle cost is
// returned.
func (s *System) BulkTransfer(p, srcNode, dstNode int, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	pr := s.procs[p]
	start := pr.clock
	t := start + int64(s.Cfg.RemoteLatency(srcNode, dstNode))
	lines := (bytes + int64(s.Cfg.L2LineSize) - 1) / int64(s.Cfg.L2LineSize)
	svc := int64(s.Cfg.MemServiceCyc)
	if svc < 1 {
		svc = 1
	}
	var waited int64
	for i := int64(0); i < lines; i++ {
		wait := s.reserve(srcNode, t)
		if dstNode != srcNode {
			if w := s.reserve(dstNode, t+wait); w > 0 {
				wait += w
			}
		}
		waited += wait
		t += wait + svc
	}
	pr.stats.WaitCyc += waited
	pr.clock = t
	return t - start
}
