package memsim

import (
	"encoding/json"
	"reflect"
	"testing"
)

// statsWantKeys is the frozen machine-readable interface of ProcStats
// (dsmbench -json). Adding a field extends this list; renaming or removing
// one breaks consumers and must fail here.
var statsWantKeys = []string{
	"loads", "stores", "l1_miss", "l2_miss", "l2_miss_local",
	"l2_miss_remote", "tlb_miss", "upgrades", "inv_sent", "inv_recv",
	"interventions", "writebacks", "wait_cyc", "tlb_cyc", "mem_cyc",
}

// fillStats sets every int64 field of a ProcStats to a distinct non-zero
// value (field index + base) via reflection, so tests notice any field a
// method forgets.
func fillStats(t *testing.T, base int64) ProcStats {
	t.Helper()
	var s ProcStats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Int64 {
			t.Fatalf("ProcStats.%s is %s, expected int64 (update fillStats)",
				v.Type().Field(i).Name, f.Kind())
		}
		f.SetInt(base + int64(i))
	}
	return s
}

func TestProcStatsJSONRoundTrip(t *testing.T) {
	in := fillStats(t, 100)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	// Every field must appear under its frozen snake_case key.
	var raw map[string]int64
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("unmarshal to map: %v", err)
	}
	if len(raw) != len(statsWantKeys) {
		t.Errorf("got %d JSON keys, want %d (new field? add its key to statsWantKeys)",
			len(raw), len(statsWantKeys))
	}
	for _, k := range statsWantKeys {
		if _, ok := raw[k]; !ok {
			t.Errorf("stable key %q missing from %s", k, data)
		}
	}

	var out ProcStats
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out != in {
		t.Errorf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

// TestProcStatsAddCoversAllFields catches the classic bug where a counter
// is added to the struct but not to Add: every field must accumulate.
func TestProcStatsAddCoversAllFields(t *testing.T) {
	a := fillStats(t, 1000)
	b := fillStats(t, 5000)
	sum := a
	sum.Add(b)

	va := reflect.ValueOf(a)
	vb := reflect.ValueOf(b)
	vs := reflect.ValueOf(sum)
	for i := 0; i < vs.NumField(); i++ {
		name := vs.Type().Field(i).Name
		want := va.Field(i).Int() + vb.Field(i).Int()
		if got := vs.Field(i).Int(); got != want {
			t.Errorf("Add drops field %s: got %d, want %d", name, got, want)
		}
	}
}
