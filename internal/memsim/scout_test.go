package memsim

import (
	"math/rand"
	"reflect"
	"testing"

	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

func newSys(t *testing.T, nprocs int) *System {
	t.Helper()
	cfg := machine.Tiny(nprocs)
	s, err := New(cfg, ospage.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomOps drives a mixed load/store sequence for proc p over [base,
// base+n*8) and returns the values loaded (so data movement is compared
// too).
func randomOps(s *System, rng *rand.Rand, p int, base int64, n int) []uint64 {
	var got []uint64
	for i := 0; i < 200; i++ {
		addr := base + int64(rng.Intn(n))*8
		if rng.Intn(3) == 0 {
			s.StoreWord(p, addr, uint64(i)<<16|uint64(p))
		} else {
			got = append(got, s.LoadWord(p, addr))
		}
	}
	return got
}

// TestScoutCommitMatchesSerial runs the same access sequence on a serial
// system and on a scouted-then-committed system and requires identical
// stats, clocks, loaded values, and subsequent behavior.
func TestScoutCommitMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		serial := newSys(t, 2)
		scouted := newSys(t, 2)
		var base [2]int64
		for i, s := range []*System{serial, scouted} {
			base[i] = s.Alloc(8192, 8)
			// Map the pages up front: scouts abort on first touch.
			s.Pages.Place(base[i], base[i]+8192, 0, false)
			if base[0] != base[i] {
				t.Fatal("allocation mismatch")
			}
		}

		a := randomOps(serial, rand.New(rand.NewSource(seed)), 0, base[0], 128)

		scouted.ArmScout(0, nil)
		b := randomOps(scouted, rand.New(rand.NewSource(seed)), 0, base[1], 128)
		if scouted.ScoutAborted(0) {
			t.Fatalf("seed %d: scout aborted: %d", seed, scouted.ScoutAbortReason(0))
		}
		if !scouted.ValidateScouts([]int{0}) {
			t.Fatalf("seed %d: single scout failed validation", seed)
		}
		scouted.CommitScout(0)

		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: loaded values diverge", seed)
		}
		checkSameState(t, serial, scouted, 2)

		// Post-commit behavior must match too (directory, bw ring, memory
		// all committed correctly): run more ops serially on both,
		// including the other processor to cross caches.
		for p := 0; p < 2; p++ {
			a = randomOps(serial, rand.New(rand.NewSource(seed+99)), p, base[0], 128)
			b = randomOps(scouted, rand.New(rand.NewSource(seed+99)), p, base[1], 128)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d: post-commit values diverge on p%d", seed, p)
			}
		}
		checkSameState(t, serial, scouted, 2)
	}
}

// TestScoutAbortRestores arms a scout, runs ops, aborts, and requires the
// system to behave exactly like one that never speculated.
func TestScoutAbortRestores(t *testing.T) {
	clean := newSys(t, 2)
	dirty := newSys(t, 2)
	var base [2]int64
	for i, s := range []*System{clean, dirty} {
		base[i] = s.Alloc(8192, 8)
		s.Pages.Place(base[i], base[i]+8192, 0, false)
	}
	// Pre-warm both identically so the scout starts from non-trivial state.
	for _, s := range []*System{clean, dirty} {
		randomOps(s, rand.New(rand.NewSource(5)), 0, base[0], 128)
		randomOps(s, rand.New(rand.NewSource(6)), 1, base[0], 64)
	}
	checkSameState(t, clean, dirty, 2)

	dirty.ArmScout(0, nil)
	randomOps(dirty, rand.New(rand.NewSource(7)), 0, base[1], 128)
	dirty.AbortScout(0)

	checkSameState(t, clean, dirty, 2)
	for p := 0; p < 2; p++ {
		a := randomOps(clean, rand.New(rand.NewSource(11)), p, base[0], 128)
		b := randomOps(dirty, rand.New(rand.NewSource(11)), p, base[1], 128)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("post-abort values diverge on p%d", p)
		}
	}
	checkSameState(t, clean, dirty, 2)
}

// TestScoutConflictDetected has two scouts write the same line; validation
// must refuse the epoch.
func TestScoutConflictDetected(t *testing.T) {
	s := newSys(t, 2)
	base := s.Alloc(8192, 8)
	s.Pages.Place(base, base+8192, 0, false)
	s.ArmScout(0, nil)
	s.ArmScout(1, nil)
	s.StoreWord(0, base, 1)
	s.StoreWord(1, base+8, 2) // same L2 line
	if s.ScoutAborted(0) || s.ScoutAborted(1) {
		// Acceptable too (sharer-invalidation abort), but with cold
		// caches both writes are plain fills, which must conflict.
		return
	}
	if s.ValidateScouts([]int{0, 1}) {
		t.Fatal("overlapping-line epoch validated")
	}
	s.AbortScout(0)
	s.AbortScout(1)
}

// TestScoutDisjointScoutsCommit has two scouts touch disjoint pages; the
// epoch must validate and the result must match a serial interleaving.
func TestScoutDisjointScoutsCommit(t *testing.T) {
	serial := newSys(t, 4) // two nodes
	scouted := newSys(t, 4)
	var base int64
	for _, s := range []*System{serial, scouted} {
		base = s.Alloc(16384, 8)
		s.Pages.Place(base, base+8192, 0, false)
		s.Pages.Place(base+8192, base+16384, 1, false)
	}

	// Serial reference: p0 then p2 (disjoint, so order is irrelevant).
	randomOps(serial, rand.New(rand.NewSource(3)), 0, base, 128)
	randomOps(serial, rand.New(rand.NewSource(4)), 2, base+8192, 128)

	scouted.ArmScout(0, nil)
	scouted.ArmScout(2, nil)
	randomOps(scouted, rand.New(rand.NewSource(3)), 0, base, 128)
	randomOps(scouted, rand.New(rand.NewSource(4)), 2, base+8192, 128)
	if scouted.ScoutAborted(0) || scouted.ScoutAborted(2) {
		t.Fatal("disjoint scouts aborted")
	}
	if !scouted.ValidateScouts([]int{0, 2}) {
		t.Fatal("disjoint scouts failed validation")
	}
	scouted.CommitScout(0)
	scouted.CommitScout(2)
	checkSameState(t, serial, scouted, 4)
}

// TestScoutAbortsOnUnmappedPage checks the first-touch abort path.
func TestScoutAbortsOnUnmappedPage(t *testing.T) {
	s := newSys(t, 1)
	base := s.Alloc(8192, 8)
	s.ArmScout(0, nil)
	s.LoadWord(0, base)
	if !s.ScoutAborted(0) {
		t.Fatal("unmapped access did not abort the scout")
	}
	if s.ScoutAbortReason(0) != AbortPageFault {
		t.Fatalf("abort reason = %d, want page fault", s.ScoutAbortReason(0))
	}
	s.AbortScout(0)
	// The fallback (serial) touch must now work and map the page.
	s.LoadWord(0, base)
	if _, ok := s.Pages.Lookup(base); !ok {
		t.Fatal("serial fallback did not map the page")
	}
}

// checkSameState compares every piece of observable per-proc and shared
// state between two systems built identically.
func checkSameState(t *testing.T, a, b *System, nprocs int) {
	t.Helper()
	for p := 0; p < nprocs; p++ {
		if a.Stats(p) != b.Stats(p) {
			t.Fatalf("p%d stats diverge:\n a=%+v\n b=%+v", p, a.Stats(p), b.Stats(p))
		}
		if a.Clock(p) != b.Clock(p) {
			t.Fatalf("p%d clock %d vs %d", p, a.Clock(p), b.Clock(p))
		}
		pa, pb := a.procs[p], b.procs[p]
		if !reflect.DeepEqual(pa.l1.tags, pb.l1.tags) || !reflect.DeepEqual(pa.l1.excl, pb.l1.excl) ||
			!reflect.DeepEqual(pa.l1.lru, pb.l1.lru) {
			t.Fatalf("p%d L1 diverges", p)
		}
		if !reflect.DeepEqual(pa.l2.tags, pb.l2.tags) || !reflect.DeepEqual(pa.l2.excl, pb.l2.excl) ||
			!reflect.DeepEqual(pa.l2.lru, pb.l2.lru) {
			t.Fatalf("p%d L2 diverges", p)
		}
		if !reflect.DeepEqual(pa.tlb.fifo, pb.tlb.fifo) || pa.tlb.pos != pb.tlb.pos ||
			pa.tlb.last != pb.tlb.last {
			t.Fatalf("p%d TLB diverges", p)
		}
	}
	if !reflect.DeepEqual(a.dir, b.dir) {
		t.Fatal("directory diverges")
	}
	if !reflect.DeepEqual(a.mem, b.mem) {
		t.Fatal("memory diverges")
	}
	if !reflect.DeepEqual(a.bw, b.bw) {
		t.Fatal("bandwidth rings diverge")
	}
	if !reflect.DeepEqual(a.pageMiss, b.pageMiss) {
		t.Fatal("pageMiss diverges")
	}
}
