package codegen

import (
	"fmt"
	"sort"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/dist"
	"dsmdist/internal/ir"
)

// bindKind classifies how a symbol is accessed within one function.
type bindKind int

const (
	bindReg      bindKind = iota // scalar in a register
	bindFrame                    // scalar in frame memory at offset
	bindParamPtr                 // scalar parameter: register holds its address
	bindArrayPtr                 // array parameter: register holds base (or descriptor) address
	bindStatic                   // static storage: DataSym + offset
)

type binding struct {
	kind   bindKind
	reg    int32
	off    int64
	sym    int // DataSym index for bindStatic
	symOff int64
}

// fnc compiles one function (a unit body or an outlined region).
type fnc struct {
	g     *gen
	u     *ir.Unit
	fn    *bytecode.Fn
	fnIdx int

	bind    map[*ir.Sym]*binding
	nextReg int32

	// inRegion marks region functions (Myid is meaningful).
	inRegion bool
	regionN  int // per-unit region counter (on the parent)
}

// compileUnit compiles a unit's body into its reserved Fn slot (regions are
// appended as they are encountered).
func (g *gen) compileUnit(u *ir.Unit, idx int) error {
	g.unit = u
	f := g.res.Prog.Fns[idx]
	c := &fnc{g: g, u: u, fn: f, fnIdx: idx, bind: map[*ir.Sym]*binding{}, nextReg: 1}

	// Prologue: bind parameters (incoming values are addresses; for
	// reshaped arrays, descriptor addresses).
	for i, p := range u.Params {
		r := c.reg()
		c.emit(bytecode.GetArg, r, int32(i), 0, 0)
		if p.Kind == ir.Array {
			c.bind[p] = &binding{kind: bindArrayPtr, reg: r}
		} else {
			c.bind[p] = &binding{kind: bindParamPtr, reg: r}
		}
	}
	// Callee-side runtime checks for array formals (§6).
	if g.opts.RuntimeChecks {
		for _, p := range u.Params {
			if p.Kind != ir.Array {
				continue
			}
			id := c.formalCheckInfo(p)
			idReg := c.reg()
			c.emit(bytecode.LdI, idReg, 0, 0, int64(id))
			// args: address, check id — consecutive registers.
			aReg := c.reg()
			c.emit(bytecode.Mov, aReg, c.bind[p].reg, 0, 0)
			bReg := c.reg()
			c.emit(bytecode.Mov, bReg, idReg, 0, 0)
			c.emit(bytecode.RTC, bytecode.RTArgCheck, aReg, 2, 0)
		}
	}

	// Dynamically sized local arrays: allocate automatic storage now
	// that parameter values are available.
	for _, s := range u.Syms {
		if s.Kind != ir.Array || s.IsParam || s.Common != "" {
			continue
		}
		if _, constDims := s.ConstDims(); constDims {
			continue
		}
		size := ir.Expr(ir.CI(8))
		for _, d := range s.Dims {
			if d == nil {
				return c.errf("dynamic local %s cannot be assumed-size", s.Name)
			}
			size = ir.IMul(size, ir.CloneExpr(d))
		}
		szReg, err := c.expr(size)
		if err != nil {
			return err
		}
		a0 := c.reg()
		c.emit(bytecode.Mov, a0, szReg, 0, 0)
		c.emit(bytecode.RTC, bytecode.RTAllocStack, a0, 1, 0)
		c.bind[s] = &binding{kind: bindArrayPtr, reg: a0}
	}

	if err := c.stmts(u.Body); err != nil {
		return err
	}
	c.emit(bytecode.Ret, 0, 0, 0, 0)
	c.fn.NRegs = int(c.nextReg)
	return nil
}

// formalCheckInfo registers the callee-side description of an array formal.
func (c *fnc) formalCheckInfo(p *ir.Sym) int {
	info := CheckInfo{Kind: CheckFormal, Array: p.Name, Unit: c.u.Name, Line: p.Line}
	if dims, ok := p.ConstDims(); ok {
		info.Dims = dims
		info.Bytes = elemCount(dims) * 8
	}
	info.Spec = p.Dist
	c.g.res.Checks = append(c.g.res.Checks, info)
	return len(c.g.res.Checks) - 1
}

func (c *fnc) reg() int32 {
	r := c.nextReg
	c.nextReg++
	return r
}

func (c *fnc) emit(op bytecode.Op, a, b, ci int32, imm int64) int {
	c.fn.Code = append(c.fn.Code, bytecode.Instr{Op: op, A: a, B: b, C: ci, Imm: imm})
	return len(c.fn.Code) - 1
}

// reloc records that the last-emitted instruction's Imm must be patched to
// symbol+addend.
func (c *fnc) reloc(sym int, addend int64) {
	c.g.res.Prog.Relocs = append(c.g.res.Prog.Relocs, bytecode.Reloc{
		Fn: c.fnIdx, PC: len(c.fn.Code) - 1, Sym: sym, Addend: addend,
	})
}

func (c *fnc) errf(format string, args ...any) error {
	return fmt.Errorf("codegen %s: %s", c.u.Name, fmt.Sprintf(format, args...))
}

// bindingOf resolves (lazily creating) the binding for a symbol.
func (c *fnc) bindingOf(s *ir.Sym) *binding {
	if b, ok := c.bind[s]; ok {
		return b
	}
	var b *binding
	switch {
	case s.Kind == ir.Array:
		// Static array (local or common).
		if pi, ok := c.g.arrayPlan[s]; ok {
			plan := c.g.res.Arrays[pi]
			b = &binding{kind: bindStatic, sym: plan.DataSym, symOff: plan.DataOffset}
		} else if s.Common != "" {
			sym, off := c.g.commonOffset(c.u, s)
			b = &binding{kind: bindStatic, sym: sym, symOff: off}
		} else {
			b = &binding{kind: bindStatic, sym: -1}
		}
	case s.Common != "":
		sym, off := c.g.commonOffset(c.u, s)
		b = &binding{kind: bindStatic, sym: sym, symOff: off}
	case s.Addressed:
		b = &binding{kind: bindFrame, off: c.fn.FrameBytes}
		c.fn.FrameBytes += 8
	default:
		b = &binding{kind: bindReg, reg: c.reg()}
	}
	c.bind[s] = b
	return b
}

// descHandle returns a register holding the descriptor base address of a
// distributed array.
func (c *fnc) descHandle(s *ir.Sym) (int32, error) {
	if b, ok := c.bind[s]; ok && b.kind == bindArrayPtr {
		// Parameter (or region capture of one): the incoming value is
		// the caller's descriptor address for reshaped arrays.
		return b.reg, nil
	}
	if s.IsParam {
		return 0, c.errf("parameter %s has no incoming descriptor", s.Name)
	}
	pi, ok := c.g.arrayPlan[s]
	if !ok || c.g.res.Arrays[pi].DescSym < 0 {
		return 0, c.errf("array %s has no descriptor", s.Name)
	}
	r := c.reg()
	c.emit(bytecode.LdI, r, 0, 0, 0)
	c.reloc(c.g.res.Arrays[pi].DescSym, 0)
	return r, nil
}

// baseHandle returns a register holding the data base address of a
// non-reshaped array.
func (c *fnc) baseHandle(s *ir.Sym) (int32, error) {
	b := c.bindingOf(s)
	switch b.kind {
	case bindArrayPtr:
		return b.reg, nil
	case bindStatic:
		if b.sym < 0 {
			return 0, c.errf("array %s has no storage", s.Name)
		}
		r := c.reg()
		c.emit(bytecode.LdI, r, 0, 0, 0)
		c.reloc(b.sym, b.symOff)
		return r, nil
	}
	return 0, c.errf("array %s has unexpected binding", s.Name)
}

// --- statements ---

func (c *fnc) stmts(ss []ir.Stmt) error {
	for _, s := range ss {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *fnc) stmt(s ir.Stmt) error {
	switch st := s.(type) {
	case *ir.Assign:
		return c.assign(st)
	case *ir.Do:
		return c.doLoop(st)
	case *ir.If:
		return c.ifStmt(st)
	case *ir.CallStmt:
		return c.call(st)
	case *ir.Return:
		c.emit(bytecode.Ret, 0, 0, 0, 0)
		return nil
	case *ir.Redist:
		return c.redist(st)
	case *ir.Barrier:
		r := c.reg()
		c.emit(bytecode.LdI, r, 0, 0, 0)
		c.emit(bytecode.RTC, bytecode.RTBarrier, r, 0, 0)
		return nil
	case *ir.TimerMark:
		r := c.reg()
		c.emit(bytecode.LdI, r, 0, 0, 0)
		id := int32(bytecode.RTTimerStart)
		if st.Stop {
			id = bytecode.RTTimerStop
		}
		c.emit(bytecode.RTC, id, r, 0, 0)
		return nil
	case *ir.Region:
		return c.region(st)
	}
	return c.errf("unknown statement %T", s)
}

func (c *fnc) assign(st *ir.Assign) error {
	switch lhs := st.Lhs.(type) {
	case *ir.VarRef:
		val, err := c.expr(st.Rhs)
		if err != nil {
			return err
		}
		return c.storeScalar(lhs.Sym, val)
	case *ir.ArrayRef:
		addr, err := c.arrayAddr(lhs)
		if err != nil {
			return err
		}
		val, err := c.expr(st.Rhs)
		if err != nil {
			return err
		}
		c.emit(bytecode.St, val, addr, 0, 0)
		return nil
	case *ir.MemRef:
		addr, err := c.expr(lhs.Addr)
		if err != nil {
			return err
		}
		val, err := c.expr(st.Rhs)
		if err != nil {
			return err
		}
		c.emit(bytecode.St, val, addr, 0, 0)
		return nil
	}
	return c.errf("bad assignment target %T", st.Lhs)
}

func (c *fnc) storeScalar(s *ir.Sym, val int32) error {
	b := c.bindingOf(s)
	switch b.kind {
	case bindReg:
		c.emit(bytecode.Mov, b.reg, val, 0, 0)
	case bindFrame:
		c.emit(bytecode.St, val, bytecode.FPReg, 0, b.off)
	case bindParamPtr:
		c.emit(bytecode.St, val, b.reg, 0, 0)
	case bindStatic:
		r := c.reg()
		c.emit(bytecode.LdI, r, 0, 0, 0)
		c.reloc(b.sym, b.symOff)
		c.emit(bytecode.St, val, r, 0, 0)
	default:
		return c.errf("cannot store scalar %s", s.Name)
	}
	return nil
}

func (c *fnc) doLoop(st *ir.Do) error {
	vb := c.bindingOf(st.Var)
	if vb.kind != bindReg {
		// Loop variables in memory would be pathological; force a
		// register copy semantics: use a register and write back after.
		return c.errf("do variable %s must be register-resident (is it in a common block or passed by reference?)", st.Var.Name)
	}
	lo, err := c.expr(st.Lo)
	if err != nil {
		return err
	}
	c.emit(bytecode.Mov, vb.reg, lo, 0, 0)
	hiv, err := c.expr(st.Hi)
	if err != nil {
		return err
	}
	hiReg := c.reg()
	c.emit(bytecode.Mov, hiReg, hiv, 0, 0)

	stepReg := c.reg()
	negative := false
	if st.Step == nil {
		c.emit(bytecode.LdI, stepReg, 0, 0, 1)
	} else {
		sv, err := c.expr(st.Step)
		if err != nil {
			return err
		}
		c.emit(bytecode.Mov, stepReg, sv, 0, 0)
		if cst, ok := ir.IntConst(st.Step); ok && cst < 0 {
			negative = true
		}
	}

	top := len(c.fn.Code)
	exitOp := bytecode.Bgt
	if negative {
		exitOp = bytecode.Blt
	}
	exitJmp := c.emit(exitOp, vb.reg, hiReg, 0, 0)
	if err := c.stmts(st.Body); err != nil {
		return err
	}
	c.emit(bytecode.Add, vb.reg, vb.reg, stepReg, 0)
	c.emit(bytecode.Jmp, int32(top), 0, 0, 0)
	c.fn.Code[exitJmp].C = int32(len(c.fn.Code))
	return nil
}

func (c *fnc) ifStmt(st *ir.If) error {
	cond, err := c.expr(st.Cond)
	if err != nil {
		return err
	}
	bz := c.emit(bytecode.Bz, cond, 0, 0, 0)
	if err := c.stmts(st.Then); err != nil {
		return err
	}
	if len(st.Else) == 0 {
		c.fn.Code[bz].C = int32(len(c.fn.Code))
		return nil
	}
	jend := c.emit(bytecode.Jmp, 0, 0, 0, 0)
	c.fn.Code[bz].C = int32(len(c.fn.Code))
	if err := c.stmts(st.Else); err != nil {
		return err
	}
	c.fn.Code[jend].A = int32(len(c.fn.Code))
	return nil
}

func (c *fnc) redist(st *ir.Redist) error {
	pi, ok := c.g.arrayPlan[st.Sym]
	if !ok {
		return c.errf("redistribute of unplanned array %s", st.Sym.Name)
	}
	c.g.res.Redists = append(c.g.res.Redists, RedistPlan{Array: pi, Spec: st.Spec})
	id := len(c.g.res.Redists) - 1
	r := c.reg()
	c.emit(bytecode.LdI, r, 0, 0, int64(id))
	c.emit(bytecode.RTC, bytecode.RTRedist, r, 1, 0)
	return nil
}

// callSig extracts the reshaped-distribution signature of a call's
// arguments for clone resolution (§5): whole reshaped arrays carry their
// spec; everything else is nil.
func callSig(st *ir.CallStmt) []*dist.Spec {
	sig := make([]*dist.Spec, len(st.Args))
	for i, a := range st.Args {
		if aa, ok := a.(*ir.ArgArray); ok && aa.Sym.IsReshaped() {
			sig[i] = aa.Sym.Dist
		}
	}
	return sig
}

func (c *fnc) call(st *ir.CallStmt) error {
	fnIdx, err := c.g.env.Resolve(st.Callee, callSig(st))
	if err != nil {
		return c.errf("line %d: %v", st.Line, err)
	}

	type pushRec struct {
		addr int32
		id   int
	}
	var pushes []pushRec

	// Stage arguments.
	for i, a := range st.Args {
		var addr int32
		switch arg := a.(type) {
		case *ir.VarRef: // addressed scalar
			addr, err = c.scalarAddr(arg.Sym)
		case *ir.ArrayRef: // element address (non-reshaped arrays)
			addr, err = c.arrayAddr(arg)
		case *ir.MemRef: // element of a reshaped array (post-xform)
			addr, err = c.expr(arg.Addr)
			if err == nil && c.g.opts.RuntimeChecks {
				// Passing a portion: record its size (§3.2.1).
				if id, ok := c.portionCheckInfo(arg); ok {
					pushes = append(pushes, pushRec{addr, id})
				}
			}
		case *ir.ArgArray:
			if arg.Sym.IsReshaped() {
				addr, err = c.descHandle(arg.Sym)
				if err == nil && c.g.opts.RuntimeChecks {
					pushes = append(pushes, pushRec{addr, c.wholeCheckInfo(arg.Sym, st.Line)})
				}
			} else {
				addr, err = c.baseHandle(arg.Sym)
			}
		default:
			err = c.errf("line %d: unsupported argument %d to %s", st.Line, i+1, st.Callee)
		}
		if err != nil {
			return err
		}
		c.emit(bytecode.SetArg, int32(i), addr, 0, 0)
	}

	// §6: push actual-argument facts before the call, pop after.
	for _, p := range pushes {
		a := c.reg()
		c.emit(bytecode.Mov, a, p.addr, 0, 0)
		b := c.reg()
		c.emit(bytecode.LdI, b, 0, 0, int64(p.id))
		c.emit(bytecode.RTC, bytecode.RTArgPush, a, 2, 0)
	}
	c.emit(bytecode.Call, 0, 0, int32(len(st.Args)), int64(fnIdx))
	if n := len(pushes); n > 0 {
		r := c.reg()
		c.emit(bytecode.LdI, r, 0, 0, int64(n))
		c.emit(bytecode.RTC, bytecode.RTArgPop, r, 1, 0)
	}
	return nil
}

func (c *fnc) wholeCheckInfo(s *ir.Sym, line int) int {
	info := CheckInfo{Kind: CheckWhole, Array: s.Name, Unit: c.u.Name, Line: line, Spec: s.Dist}
	if dims, ok := s.ConstDims(); ok {
		info.Dims = dims
		info.Bytes = elemCount(dims) * 8
	}
	c.g.res.Checks = append(c.g.res.Checks, info)
	return len(c.g.res.Checks) - 1
}

// portionCheckInfo records the portion size for an element-of-reshaped
// argument; the size is the per-processor portion capacity.
func (c *fnc) portionCheckInfo(m *ir.MemRef) (int, bool) {
	// Find the array: the address expression contains its PortionBase.
	var sym *ir.Sym
	ir.WalkExpr(m.Addr, func(e ir.Expr) bool {
		if pb, ok := e.(*ir.PortionBase); ok {
			sym = pb.Sym
		}
		return sym == nil
	})
	if sym == nil {
		return 0, false
	}
	info := CheckInfo{Kind: CheckPortion, Array: sym.Name, Unit: c.u.Name, Spec: sym.Dist}
	if dims, ok := sym.ConstDims(); ok {
		bytes := int64(8)
		// Portion capacity: product of max portion lengths under the
		// runtime grid; unknown at compile time, so record dims and
		// let the runtime compute it.
		info.Dims = dims
		info.Bytes = bytes
	}
	c.g.res.Checks = append(c.g.res.Checks, info)
	return len(c.g.res.Checks) - 1, true
}

// scalarAddr yields a register holding the address of an addressed scalar.
func (c *fnc) scalarAddr(s *ir.Sym) (int32, error) {
	b := c.bindingOf(s)
	switch b.kind {
	case bindFrame:
		r := c.reg()
		c.emit(bytecode.LdI, r, 0, 0, b.off)
		r2 := c.reg()
		c.emit(bytecode.Add, r2, r, bytecode.FPReg, 0)
		return r2, nil
	case bindParamPtr:
		return b.reg, nil
	case bindStatic:
		r := c.reg()
		c.emit(bytecode.LdI, r, 0, 0, 0)
		c.reloc(b.sym, b.symOff)
		return r, nil
	}
	return 0, c.errf("scalar %s has no address (not marked addressed?)", s.Name)
}

// --- regions ---

// region outlines a doacross body into a region function and emits the
// ParCall.
func (c *fnc) region(st *ir.Region) error {
	// Determine captures: scalars read but not assigned inside (and not
	// static/common), plus array parameters referenced inside.
	assigned := regionAssigned(st.Body)
	for _, l := range st.Par.Local {
		assigned[l] = true
	}
	// Arrays whose base (or descriptor) lives in one of the enclosing
	// frame's registers — parameters and dynamically sized locals — must
	// be captured by value; statics are reached through relocations.
	needsCapture := func(s *ir.Sym) bool {
		if s.IsParam {
			return true
		}
		b, ok := c.bind[s]
		return ok && b.kind == bindArrayPtr
	}
	capSet := map[*ir.Sym]bool{}
	ir.WalkStmts(st.Body, nil, func(e ir.Expr) bool {
		switch x := e.(type) {
		case *ir.VarRef:
			s := x.Sym
			if s.Kind == ir.Scalar && !assigned[s] && s.Common == "" {
				capSet[s] = true
			}
		case *ir.ArrayRef:
			if needsCapture(x.Sym) {
				capSet[x.Sym] = true
			}
		case *ir.ArrayBase:
			if needsCapture(x.Sym) {
				capSet[x.Sym] = true
			}
		case *ir.DescField:
			if needsCapture(x.Sym) {
				capSet[x.Sym] = true
			}
		case *ir.PortionBase:
			if needsCapture(x.Sym) {
				capSet[x.Sym] = true
			}
		case *ir.ArgArray:
			if needsCapture(x.Sym) {
				capSet[x.Sym] = true
			}
		case *ir.RTFunc:
			if x.Sym != nil && needsCapture(x.Sym) {
				capSet[x.Sym] = true
			}
		}
		return true
	})
	// Scalars passed by reference to calls inside the region are
	// assigned from the region's view; ensure they're treated as local
	// (fresh frame copies), not captured... unless read-only captured
	// above. Call args were collected by regionAssigned already.

	caps := make([]*ir.Sym, 0, len(capSet))
	for s := range capSet {
		caps = append(caps, s)
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].ID < caps[j].ID })

	// Compile the region function.
	rf := &bytecode.Fn{
		Name:     fmt.Sprintf("%s$r%d", c.u.Name, c.regionN),
		NArgs:    len(caps),
		IsRegion: true,
		File:     c.u.SourceFile,
		Line:     st.Par.Line,
	}
	c.regionN++
	rfIdx := len(c.g.res.Prog.Fns)
	c.g.res.Prog.Fns = append(c.g.res.Prog.Fns, rf)

	rc := &fnc{g: c.g, u: c.u, fn: rf, fnIdx: rfIdx,
		bind: map[*ir.Sym]*binding{}, nextReg: 1, inRegion: true}
	for i, s := range caps {
		r := rc.reg()
		rc.emit(bytecode.GetArg, r, int32(i), 0, 0)
		if s.Kind == ir.Array {
			rc.bind[s] = &binding{kind: bindArrayPtr, reg: r}
		} else if s.Addressed || s.IsParam {
			// Value captured; give it frame storage so its address
			// can be taken inside the region.
			b := &binding{kind: bindFrame, off: rf.FrameBytes}
			rf.FrameBytes += 8
			rc.emit(bytecode.St, r, bytecode.FPReg, 0, b.off)
			rc.bind[s] = b
		} else {
			rc.bind[s] = &binding{kind: bindReg, reg: r}
		}
	}
	if err := rc.stmts(st.Body); err != nil {
		return err
	}
	rc.emit(bytecode.Ret, 0, 0, 0, 0)
	rf.NRegs = int(rc.nextReg)

	// Caller side: evaluate capture values into consecutive registers.
	first := c.nextReg
	regs := make([]int32, len(caps))
	for i := range caps {
		regs[i] = c.reg()
	}
	for i, s := range caps {
		if s.Kind == ir.Array {
			b := c.bind[s]
			if b == nil || b.kind != bindArrayPtr {
				return c.errf("array capture %s has no register base", s.Name)
			}
			c.emit(bytecode.Mov, regs[i], b.reg, 0, 0)
			continue
		}
		v, err := c.loadScalar(s)
		if err != nil {
			return err
		}
		c.emit(bytecode.Mov, regs[i], v, 0, 0)
	}
	c.emit(bytecode.ParCall, first, 0, int32(len(caps)), int64(rfIdx))
	return nil
}

// regionAssigned mirrors xform's collectAssigned for capture analysis.
func regionAssigned(ss []ir.Stmt) map[*ir.Sym]bool {
	set := map[*ir.Sym]bool{}
	ir.WalkStmts(ss, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Assign:
			if vr, ok := st.Lhs.(*ir.VarRef); ok {
				set[vr.Sym] = true
			}
		case *ir.Do:
			set[st.Var] = true
		case *ir.CallStmt:
			for _, a := range st.Args {
				if vr, ok := a.(*ir.VarRef); ok {
					set[vr.Sym] = true
				}
			}
		}
		return true
	}, nil)
	return set
}
