package codegen

import (
	"strings"
	"testing"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/dist"
	"dsmdist/internal/fortran"
	"dsmdist/internal/ir"
	"dsmdist/internal/sema"
	"dsmdist/internal/xform"
)

// compileSrc runs the front half of the pipeline and codegen on one file.
func compileSrc(t *testing.T, src string, opt xform.Options, checks bool) *Result {
	t.Helper()
	f, err := fortran.Parse("t.f", src)
	if err != nil {
		t.Fatal(err)
	}
	units, err := sema.AnalyzeFile(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		xform.Transform(u, opt)
	}
	idx := map[string]int{}
	for i, u := range units {
		idx[u.Name] = i
	}
	res, err := Program(units, Env{
		Resolve: func(name string, sig []*dist.Spec) (int, error) {
			if i, ok := idx[name]; ok {
				return i, nil
			}
			t.Fatalf("unresolved %s", name)
			return 0, nil
		},
	}, Options{FPDiv: opt.FPDiv, RuntimeChecks: checks})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const twoUnitSrc = `
      program p
      real*8 a(16), x
      common /blk/ a
c$distribute a(block)
      integer i
      do i = 1, 16
        a(i) = 0.0
      end do
      call s(x)
      end

      subroutine s(y)
      real*8 a(16), y
      common /blk/ a
      y = a(1)
      return
      end
`

func TestCommonSharedAcrossUnits(t *testing.T) {
	res := compileSrc(t, twoUnitSrc, xform.O3(), false)
	// Exactly one plan for the common array and one descriptor.
	var plans int
	for _, ap := range res.Arrays {
		if ap.Name == "a" {
			plans++
			if ap.DescSym < 0 {
				t.Fatal("distributed common member lost its descriptor")
			}
		}
	}
	if plans != 1 {
		t.Fatalf("plans for common a = %d, want 1 shared plan", plans)
	}
}

func TestFnIndexStability(t *testing.T) {
	res := compileSrc(t, twoUnitSrc, xform.O3(), false)
	// Unit fns occupy the first slots in order; regions follow.
	if res.Prog.Fns[0].Name != "p" || res.Prog.Fns[1].Name != "s" {
		t.Fatalf("fn order: %s, %s", res.Prog.Fns[0].Name, res.Prog.Fns[1].Name)
	}
	if res.Prog.Main != 0 {
		t.Fatalf("main = %d", res.Prog.Main)
	}
}

func TestFPDivFlag(t *testing.T) {
	src := `
      program p
      integer i, j
      i = 7
      j = i / 2 + mod(i, 3)
      end
`
	count := func(res *Result, op bytecode.Op) int {
		n := 0
		for _, f := range res.Prog.Fns {
			for _, in := range f.Code {
				if in.Op == op {
					n++
				}
			}
		}
		return n
	}
	hard := compileSrc(t, src, xform.O2(), false) // FPDiv off
	soft := compileSrc(t, src, xform.O3(), false) // FPDiv on
	if count(hard, bytecode.DivI) == 0 || count(hard, bytecode.FpDivI) != 0 {
		t.Fatal("O2 must emit hardware divides")
	}
	if count(soft, bytecode.DivI) != 0 || count(soft, bytecode.FpDivI) == 0 {
		t.Fatal("O3 must emit software divides")
	}
}

func TestRuntimeChecksEmission(t *testing.T) {
	src := `
      program p
      real*8 a(20)
c$distribute_reshape a(block)
      call s(a)
      end

      subroutine s(x)
      real*8 x(20)
      x(1) = 0.0
      return
      end
`
	with := compileSrc(t, src, xform.O3(), true)
	without := compileSrc(t, src, xform.O3(), false)
	countRTC := func(res *Result, id int32) int {
		n := 0
		for _, f := range res.Prog.Fns {
			for _, in := range f.Code {
				if in.Op == bytecode.RTC && in.A == id {
					n++
				}
			}
		}
		return n
	}
	if countRTC(with, bytecode.RTArgPush) == 0 || countRTC(with, bytecode.RTArgCheck) == 0 {
		t.Fatal("checks enabled but no push/check emitted")
	}
	if countRTC(without, bytecode.RTArgPush) != 0 {
		t.Fatal("checks disabled but push emitted")
	}
	if len(with.Checks) == 0 {
		t.Fatal("check table empty")
	}
}

func TestRegionOutlining(t *testing.T) {
	src := `
      program p
      real*8 a(32)
      integer i, n
      n = 32
c$doacross local(i) shared(a, n)
      do i = 1, n
        a(i) = dble(n)
      end do
      end
`
	res := compileSrc(t, src, xform.O3(), false)
	var region *bytecode.Fn
	for _, f := range res.Prog.Fns {
		if f.IsRegion {
			region = f
		}
	}
	if region == nil {
		t.Fatal("no region function")
	}
	if !strings.HasPrefix(region.Name, "p$r") {
		t.Fatalf("region name %q", region.Name)
	}
	// The shared scalar n is captured: region has at least one arg.
	if region.NArgs == 0 {
		t.Fatal("region captured nothing; shared scalar n missing")
	}
	// Main contains a ParCall to it.
	found := false
	for _, in := range res.Prog.Fns[res.Prog.Main].Code {
		if in.Op == bytecode.ParCall {
			found = true
		}
	}
	if !found {
		t.Fatal("no ParCall in main")
	}
}

func TestDynamicLocalArrayCompiles(t *testing.T) {
	// Dynamically sized local arrays (§3.2) allocate automatic storage
	// at unit entry via RTAllocStack.
	src := `
      subroutine s(n)
      integer n
      real*8 w(n)
      w(1) = 0.0
      return
      end

      program p
      call s(4)
      end
`
	f, err := fortran.Parse("t.f", src)
	if err != nil {
		t.Fatal(err)
	}
	units, err := sema.AnalyzeFile(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		xform.Transform(u, xform.O3())
	}
	idx := map[string]int{"s": 0, "p": 1}
	res, err := Program(units, Env{Resolve: func(name string, _ []*dist.Spec) (int, error) {
		return idx[name], nil
	}}, Options{})
	if err != nil {
		t.Fatalf("dynamic local rejected: %v", err)
	}
	// The subroutine must call the stack allocator.
	found := false
	for _, in := range res.Prog.Fns[0].Code {
		if in.Op == bytecode.RTC && in.A == bytecode.RTAllocStack {
			found = true
		}
	}
	if !found {
		t.Fatal("no RTAllocStack emitted for dynamic local array")
	}
	// A *distributed* dynamic local is still rejected.
	src2 := `
      program p
      call s(4)
      end

      subroutine s(n)
      integer n
      real*8 w(n)
c$distribute_reshape w(block)
      w(1) = 0.0
      return
      end
`
	f2, err := fortran.Parse("t.f", src2)
	if err != nil {
		t.Fatal(err)
	}
	units2, err := sema.AnalyzeFile(f2)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units2 {
		xform.Transform(u, xform.O3())
	}
	_, err = Program(units2, Env{Resolve: func(string, []*dist.Spec) (int, error) { return 0, nil }}, Options{})
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("distributed dynamic local: err = %v", err)
	}
}

func TestRegularDistOnFormalRejected(t *testing.T) {
	src := `
      program p
      call s
      end

      subroutine s(x)
      real*8 x(10)
c$distribute x(block)
      x(1) = 0.0
      return
      end
`
	f, err := fortran.Parse("t.f", src)
	if err != nil {
		t.Fatal(err)
	}
	units, err := sema.AnalyzeFile(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		xform.Transform(u, xform.O3())
	}
	_, err = Program(units, Env{Resolve: func(string, []*dist.Spec) (int, error) { return 1, nil }}, Options{})
	if err == nil || !strings.Contains(err.Error(), "regular distribution on dummy") {
		t.Fatalf("err = %v", err)
	}
}

func TestDescLayoutHelpers(t *testing.T) {
	if DescTableOff(2) != int64(2*ir.DescFields*8) {
		t.Fatal("table offset wrong")
	}
	if DescBytes(3) <= DescTableOff(3) {
		t.Fatal("descriptor too small for its table")
	}
}
