// Package codegen translates optimized IR units into bytecode. It assigns
// storage classes (registers for scalars, frame memory for addressed
// scalars, static symbols for local arrays and common blocks, descriptors
// for distributed arrays), outlines doacross Regions into region functions,
// emits the §6 runtime argument checks, and applies the §7.3
// floating-point-simulated integer divide when enabled.
//
// Layout and linking policy (which clone a call resolves to, where symbols
// land) is supplied by the caller through Env; the linker drives codegen
// once per unit instance after the pre-linker has resolved distributions.
package codegen

import (
	"fmt"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/dist"
	"dsmdist/internal/ir"
)

// Options control code generation.
type Options struct {
	// FPDiv emits FpDivI/FpModI for integer division (§7.3).
	FPDiv bool
	// RuntimeChecks emits the §6 argument push/check calls.
	RuntimeChecks bool
}

// ArgCheckKind distinguishes the two runtime-check record types.
type ArgCheckKind int

const (
	// CheckWhole: a whole reshaped array is passed; shape, size and
	// distribution must match the formal exactly (§3.2.1).
	CheckWhole ArgCheckKind = iota
	// CheckPortion: an element of a reshaped array is passed; the
	// callee's formal must fit within one portion.
	CheckPortion
	// CheckFormal: callee-side record describing a declared array
	// formal.
	CheckFormal
)

// CheckInfo is one entry of the runtime-check table (§6): the caller pushes
// actual-argument facts keyed by address; the callee validates its formals.
type CheckInfo struct {
	Kind ArgCheckKind
	// Whole/Formal: dims and distribution. Portion: Bytes is the
	// portion size in bytes.
	Dims  []int64
	Spec  *dist.Spec
	Bytes int64
	// Diagnostics.
	Array string
	Unit  string
	Line  int
}

// ArrayPlan tells the loader how to materialize one distributed or static
// array.
type ArrayPlan struct {
	Unit string
	Name string
	Type ir.Type
	Dims []int64 // constant extents

	DataSym int // Prog.Syms index of the data block (-1 for reshaped)
	DescSym int // Prog.Syms index of the descriptor (-1 if undistributed)
	// Offset of the array within its data symbol (common blocks).
	DataOffset int64

	Spec          *dist.Spec // nil when undistributed
	Redistributed bool
}

// RedistPlan describes one c$redistribute site.
type RedistPlan struct {
	Array int // ArrayPlan index
	Spec  dist.Spec
}

// Result is the output of compiling a whole program.
type Result struct {
	Prog    *bytecode.Program
	Arrays  []*ArrayPlan
	Redists []RedistPlan
	Checks  []CheckInfo
}

// Clone deep-copies the run-mutable parts of the result, so a cached
// compile can be loaded and run many times (concurrently) without the runs
// seeing each other: the loader patches Prog in place, and redistribute
// replaces an ArrayPlan's Spec pointer at run time. RedistPlans, plan Dims,
// and the Spec values themselves are never mutated in place and stay
// shared.
func (r *Result) Clone() *Result {
	nr := &Result{Prog: r.Prog.Clone(), Redists: r.Redists}
	nr.Arrays = make([]*ArrayPlan, len(r.Arrays))
	for i, a := range r.Arrays {
		na := *a
		nr.Arrays[i] = &na
	}
	nr.Checks = append([]CheckInfo(nil), r.Checks...)
	return nr
}

// Env supplies link-level policy to codegen.
type Env struct {
	// Resolve maps a callee name and its reshaped-argument signature to
	// the function index that call must target (the clone mechanism of
	// §5). It returns an error for unresolvable calls.
	Resolve func(name string, sig []*dist.Spec) (int, error)
}

// Program compiles a set of unit instances into one executable image. The
// units must already be transformed (xform) and must include exactly one
// main program.
func Program(units []*ir.Unit, env Env, opts Options) (*Result, error) {
	g := &gen{
		env:  env,
		opts: opts,
		res: &Result{
			Prog: &bytecode.Program{Main: -1},
		},
		commons:   map[string]*commonLayout{},
		arrayPlan: map[*ir.Sym]int{},
		slotPlan:  map[commonSlot]int{},
	}
	// Symbol index 0 is reserved so "Addr == 0" can mean unassigned.
	g.res.Prog.Syms = append(g.res.Prog.Syms, &bytecode.DataSym{Name: "(reserved)", Bytes: 8, Align: 8})

	// Pass 1: lay out commons and static arrays, create descriptors, and
	// reserve one Fn slot per unit so that unit i compiles to function
	// index i — the linker's Resolve relies on this (region functions
	// are appended afterwards).
	for i, u := range units {
		if err := g.layoutUnit(u); err != nil {
			return nil, err
		}
		g.res.Prog.Fns = append(g.res.Prog.Fns, &bytecode.Fn{Name: u.Name, NArgs: len(u.Params),
			File: u.SourceFile, Line: u.Line})
		if u.IsProgram {
			if g.res.Prog.Main >= 0 {
				return nil, fmt.Errorf("codegen: multiple program units")
			}
			g.res.Prog.Main = i
		}
	}
	if g.res.Prog.Main < 0 {
		return nil, fmt.Errorf("codegen: no main program unit")
	}
	// Pass 2: compile bodies.
	for i, u := range units {
		if err := g.compileUnit(u, i); err != nil {
			return nil, err
		}
	}
	return g.res, nil
}

type commonLayout struct {
	sym     int   // DataSym index
	size    int64 // bytes laid out so far
	offsets map[string]int64
}

type commonSlot struct {
	block string
	off   int64
}

type gen struct {
	env  Env
	opts Options
	res  *Result

	commons   map[string]*commonLayout
	arrayPlan map[*ir.Sym]int    // sym -> ArrayPlan index (per unit instance)
	slotPlan  map[commonSlot]int // shared plans for common-block members
	unit      *ir.Unit
}

// elemCount multiplies constant extents.
func elemCount(dims []int64) int64 {
	n := int64(1)
	for _, d := range dims {
		n *= d
	}
	return n
}

// newDataSym appends a data symbol.
func (g *gen) newDataSym(name string, kind bytecode.SymKind, bytes, align int64) int {
	g.res.Prog.Syms = append(g.res.Prog.Syms, &bytecode.DataSym{
		Name: name, Kind: kind, Bytes: bytes, Align: align,
	})
	return len(g.res.Prog.Syms) - 1
}

// DescTableOff returns the byte offset of the portion table within a
// descriptor for an array of nd dimensions.
func DescTableOff(nd int) int64 { return int64(nd * ir.DescFields * 8) }

// DescBytes is the descriptor size for nd dimensions (fields + a portion
// table sized for the largest machine).
func DescBytes(nd int) int64 { return DescTableOff(nd) + 128*8 }

// layoutUnit creates data symbols, descriptors and array plans for one
// unit.
func (g *gen) layoutUnit(u *ir.Unit) error {
	// Common blocks: the block's size is the max over declarations;
	// member offsets accumulate in declaration order.
	for _, cb := range u.CommonBlocks {
		cl, ok := g.commons[cb.Name]
		if !ok {
			cl = &commonLayout{offsets: map[string]int64{}}
			cl.sym = g.newDataSym("/"+cb.Name+"/", bytecode.SymData, 0, 4096)
			g.commons[cb.Name] = cl
		}
		off := int64(0)
		for i, m := range cb.Members {
			dims, err := requireConstDims(u, m)
			if err != nil {
				return err
			}
			key := fmt.Sprintf("#%d", i)
			cl.offsets[u.Name+"."+m.Name] = off
			_ = key
			off += elemCount(dims) * 8
		}
		if off > cl.size {
			cl.size = off
			g.res.Prog.Syms[cl.sym].Bytes = off
		}
	}

	for _, s := range u.Syms {
		if s.Kind != ir.Array || s.IsParam {
			if s.Kind == ir.Array && s.IsParam && s.Dist != nil && !s.Dist.Reshape {
				return fmt.Errorf("%s: regular distribution on dummy argument %s is not supported (only reshaped distributions propagate, §5)",
					u.Name, s.Name)
			}
			// Reshaped formals need no plan: the caller's
			// descriptor arrives as the argument.
			continue
		}
		if _, constDims := s.ConstDims(); !constDims && s.Common == "" {
			// Dynamically sized local array: stack-allocated at unit
			// entry (no static plan). Distribution on such arrays is
			// not supported in this reproduction.
			if s.Dist != nil {
				return fmt.Errorf("%s: distributed dynamically sized local array %s is not supported",
					u.Name, s.Name)
			}
			continue
		}
		dims, err := requireConstDims(u, s)
		if err != nil {
			return err
		}

		if s.Common != "" {
			// Members of a common block are one storage object no
			// matter how many units declare the block: the plan,
			// descriptor and (for reshaped arrays) portion pools
			// are shared. The pre-linker has already verified
			// consistent declarations (§6).
			cl := g.commons[s.Common]
			off := cl.offsets[u.Name+"."+s.Name]
			key := commonSlot{s.Common, off}
			if pi, ok := g.slotPlan[key]; ok {
				plan := g.res.Arrays[pi]
				if s.Dist != nil {
					if plan.Spec == nil {
						// A later declaration supplies the
						// distribution (regular case; the
						// reshaped case is link-checked).
						plan.Spec = s.Dist
						plan.DescSym = g.newDataSym("desc:/"+s.Common+"/"+s.Name,
							bytecode.SymDesc, DescBytes(len(dims)), 64)
					} else if !plan.Spec.Equal(*s.Dist) {
						return fmt.Errorf("%s: common /%s/ member %s distribution %s conflicts with %s",
							u.Name, s.Common, s.Name, s.Dist, plan.Spec)
					}
				}
				g.arrayPlan[s] = pi
				continue
			}
			plan := &ArrayPlan{
				Unit: u.Name, Name: s.Name, Type: s.Type, Dims: dims,
				DataSym: cl.sym, DataOffset: off, DescSym: -1,
				Spec: s.Dist, Redistributed: s.Redistributed,
			}
			if s.Dist != nil {
				plan.DescSym = g.newDataSym("desc:/"+s.Common+"/"+s.Name, bytecode.SymDesc,
					DescBytes(len(dims)), 64)
			}
			g.res.Arrays = append(g.res.Arrays, plan)
			g.slotPlan[key] = len(g.res.Arrays) - 1
			g.arrayPlan[s] = len(g.res.Arrays) - 1
			continue
		}

		plan := &ArrayPlan{
			Unit: u.Name, Name: s.Name, Type: s.Type, Dims: dims,
			DataSym: -1, DescSym: -1,
			Spec:          s.Dist,
			Redistributed: s.Redistributed,
		}
		if s.Dist == nil || !s.Dist.Reshape {
			plan.DataSym = g.newDataSym(u.Name+"."+s.Name, bytecode.SymData,
				elemCount(dims)*8, 4096)
		}
		if s.Dist != nil {
			plan.DescSym = g.newDataSym("desc:"+u.Name+"."+s.Name, bytecode.SymDesc,
				DescBytes(len(dims)), 64)
		}
		g.res.Arrays = append(g.res.Arrays, plan)
		g.arrayPlan[s] = len(g.res.Arrays) - 1
	}
	return nil
}

func requireConstDims(u *ir.Unit, s *ir.Sym) ([]int64, error) {
	dims, ok := s.ConstDims()
	if !ok {
		return nil, fmt.Errorf("%s: array %s needs constant extents (dynamically sized local arrays are not supported)",
			u.Name, s.Name)
	}
	return dims, nil
}

// sharedCommons returns the layout for cross-unit symbol resolution in
// tests.
func (g *gen) commonOffset(u *ir.Unit, s *ir.Sym) (int, int64) {
	cl := g.commons[s.Common]
	return cl.sym, cl.offsets[u.Name+"."+s.Name]
}
