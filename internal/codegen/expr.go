package codegen

import (
	"math"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/ir"
)

// Expression compilation. Registers are allocated monotonically (no reuse);
// the interpreter sizes frames from Fn.NRegs.

// loadScalar yields a register holding the scalar's current value.
func (c *fnc) loadScalar(s *ir.Sym) (int32, error) {
	b := c.bindingOf(s)
	switch b.kind {
	case bindReg:
		return b.reg, nil
	case bindFrame:
		r := c.reg()
		c.emit(bytecode.Ld, r, bytecode.FPReg, 0, b.off)
		return r, nil
	case bindParamPtr:
		r := c.reg()
		c.emit(bytecode.Ld, r, b.reg, 0, 0)
		return r, nil
	case bindStatic:
		base := c.reg()
		c.emit(bytecode.LdI, base, 0, 0, 0)
		c.reloc(b.sym, b.symOff)
		r := c.reg()
		c.emit(bytecode.Ld, r, base, 0, 0)
		return r, nil
	}
	return 0, c.errf("cannot load scalar %s", s.Name)
}

// ldi loads an integer constant.
func (c *fnc) ldi(v int64) int32 {
	r := c.reg()
	c.emit(bytecode.LdI, r, 0, 0, v)
	return r
}

var intBinOps = map[ir.BinOp]bytecode.Op{
	ir.Add: bytecode.Add, ir.Sub: bytecode.Sub, ir.Mul: bytecode.Mul,
	ir.Lt: bytecode.CmpLt, ir.Le: bytecode.CmpLe,
	ir.Eq: bytecode.CmpEq, ir.Ne: bytecode.CmpNe,
}

var fltBinOps = map[ir.BinOp]bytecode.Op{
	ir.Add: bytecode.AddF, ir.Sub: bytecode.SubF, ir.Mul: bytecode.MulF,
	ir.Div: bytecode.DivF,
	ir.Lt:  bytecode.CmpLtF, ir.Le: bytecode.CmpLeF,
	ir.Eq: bytecode.CmpEqF, ir.Ne: bytecode.CmpNeF,
}

// expr compiles an expression, returning the value register.
func (c *fnc) expr(e ir.Expr) (int32, error) {
	switch x := e.(type) {
	case *ir.ConstInt:
		return c.ldi(x.V), nil
	case *ir.ConstReal:
		return c.ldi(int64(math.Float64bits(x.V))), nil
	case *ir.VarRef:
		return c.loadScalar(x.Sym)
	case *ir.ArrayRef:
		addr, err := c.arrayAddr(x)
		if err != nil {
			return 0, err
		}
		r := c.reg()
		c.emit(bytecode.Ld, r, addr, 0, 0)
		return r, nil
	case *ir.MemRef:
		addr, err := c.expr(x.Addr)
		if err != nil {
			return 0, err
		}
		r := c.reg()
		c.emit(bytecode.Ld, r, addr, 0, 0)
		return r, nil
	case *ir.Bin:
		return c.binOp(x)
	case *ir.Un:
		v, err := c.expr(x.X)
		if err != nil {
			return 0, err
		}
		r := c.reg()
		switch {
		case x.Not:
			c.emit(bytecode.NotL, r, v, 0, 0)
		case x.Ty == ir.Real:
			c.emit(bytecode.NegF, r, v, 0, 0)
		default:
			c.emit(bytecode.Neg, r, v, 0, 0)
		}
		return r, nil
	case *ir.Cvt:
		v, err := c.expr(x.X)
		if err != nil {
			return 0, err
		}
		r := c.reg()
		if x.To == ir.Real {
			c.emit(bytecode.CvtIF, r, v, 0, 0)
		} else {
			c.emit(bytecode.CvtFI, r, v, 0, 0)
		}
		return r, nil
	case *ir.Intrinsic:
		return c.intrinsic(x)
	case *ir.Myid:
		r := c.reg()
		c.emit(bytecode.MyidOp, r, 0, 0, 0)
		return r, nil
	case *ir.Nprocs:
		r := c.reg()
		c.emit(bytecode.NprocsOp, r, 0, 0, 0)
		return r, nil
	case *ir.DescField:
		desc, err := c.descHandle(x.Sym)
		if err != nil {
			return 0, err
		}
		r := c.reg()
		c.emit(bytecode.Ld, r, desc, 0, int64((x.Dim*ir.DescFields+int(x.Field))*8))
		return r, nil
	case *ir.PortionBase:
		desc, err := c.descHandle(x.Sym)
		if err != nil {
			return 0, err
		}
		proc, err := c.expr(x.Proc)
		if err != nil {
			return 0, err
		}
		off := c.reg()
		c.emit(bytecode.Mul, off, proc, c.ldi(8), 0)
		addr := c.reg()
		c.emit(bytecode.Add, addr, desc, off, 0)
		r := c.reg()
		c.emit(bytecode.Ld, r, addr, 0, DescTableOff(len(x.Sym.Dims)))
		return r, nil
	case *ir.RTFunc:
		return c.rtFunc(x)
	case *ir.ArrayBase:
		return c.baseHandle(x.Sym)
	case *ir.ArgArray:
		if x.Sym.IsReshaped() {
			return c.descHandle(x.Sym)
		}
		return c.baseHandle(x.Sym)
	}
	return 0, c.errf("unknown expression %T", e)
}

func (c *fnc) binOp(x *ir.Bin) (int32, error) {
	l, err := c.expr(x.L)
	if err != nil {
		return 0, err
	}
	r, err := c.expr(x.R)
	if err != nil {
		return 0, err
	}
	dst := c.reg()
	real := x.Ty == ir.Real
	switch x.Op {
	case ir.Div:
		if real {
			c.emit(bytecode.DivF, dst, l, r, 0)
		} else if c.g.opts.FPDiv {
			c.emit(bytecode.FpDivI, dst, l, r, 0)
		} else {
			c.emit(bytecode.DivI, dst, l, r, 0)
		}
	case ir.Mod:
		if c.g.opts.FPDiv {
			c.emit(bytecode.FpModI, dst, l, r, 0)
		} else {
			c.emit(bytecode.ModI, dst, l, r, 0)
		}
	case ir.And:
		// Operands are 0/1: min is logical and.
		c.emit(bytecode.MinI, dst, l, r, 0)
	case ir.Or:
		c.emit(bytecode.MaxI, dst, l, r, 0)
	case ir.Gt:
		if real {
			c.emit(bytecode.CmpLtF, dst, r, l, 0)
		} else {
			c.emit(bytecode.CmpLt, dst, r, l, 0)
		}
	case ir.Ge:
		if real {
			c.emit(bytecode.CmpLeF, dst, r, l, 0)
		} else {
			c.emit(bytecode.CmpLe, dst, r, l, 0)
		}
	default:
		var op bytecode.Op
		var ok bool
		if real {
			op, ok = fltBinOps[x.Op]
		} else {
			op, ok = intBinOps[x.Op]
		}
		if !ok {
			return 0, c.errf("unsupported operator %v on %v", x.Op, x.Ty)
		}
		c.emit(op, dst, l, r, 0)
	}
	return dst, nil
}

func (c *fnc) intrinsic(x *ir.Intrinsic) (int32, error) {
	args := make([]int32, len(x.Args))
	for i, a := range x.Args {
		v, err := c.expr(a)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	dst := c.reg()
	real := x.Ty == ir.Real
	switch x.Op {
	case ir.IMin:
		if real {
			c.emit(bytecode.MinF, dst, args[0], args[1], 0)
		} else {
			c.emit(bytecode.MinI, dst, args[0], args[1], 0)
		}
	case ir.IMax:
		if real {
			c.emit(bytecode.MaxF, dst, args[0], args[1], 0)
		} else {
			c.emit(bytecode.MaxI, dst, args[0], args[1], 0)
		}
	case ir.IAbs:
		if real {
			c.emit(bytecode.AbsF, dst, args[0], 0, 0)
		} else {
			c.emit(bytecode.AbsI, dst, args[0], 0, 0)
		}
	case ir.ISqrt:
		c.emit(bytecode.SqrtF, dst, args[0], 0, 0)
	default:
		return 0, c.errf("unknown intrinsic %v", x.Op)
	}
	return dst, nil
}

// rtFunc compiles the portion intrinsics: RTC with (descAddr, dim, proc).
func (c *fnc) rtFunc(x *ir.RTFunc) (int32, error) {
	var id int32
	switch x.Kind {
	case ir.RTNestGrid:
		nd, err := c.expr(x.Args[0])
		if err != nil {
			return 0, err
		}
		dm, err := c.expr(x.Args[1])
		if err != nil {
			return 0, err
		}
		a0 := c.reg()
		a1 := c.reg()
		c.emit(bytecode.Mov, a0, nd, 0, 0)
		c.emit(bytecode.Mov, a1, dm, 0, 0)
		c.emit(bytecode.RTC, bytecode.RTNestGrid, a0, 2, 0)
		return a0, nil
	case ir.RTDynGrab:
		regs := make([]int32, 3)
		vals := make([]int32, 3)
		for i := 0; i < 3; i++ {
			v, err := c.expr(x.Args[i])
			if err != nil {
				return 0, err
			}
			vals[i] = v
		}
		for i := 0; i < 3; i++ {
			regs[i] = c.reg()
		}
		for i := 0; i < 3; i++ {
			c.emit(bytecode.Mov, regs[i], vals[i], 0, 0)
		}
		c.emit(bytecode.RTC, bytecode.RTDynGrab, regs[0], 3, 0)
		return regs[0], nil
	case ir.RTPortionLo:
		id = bytecode.RTPortionLo
	case ir.RTPortionHi:
		id = bytecode.RTPortionHi
	case ir.RTNumProcs:
		r := c.reg()
		c.emit(bytecode.NprocsOp, r, 0, 0, 0)
		return r, nil
	case ir.RTMyProc:
		r := c.reg()
		c.emit(bytecode.MyidOp, r, 0, 0, 0)
		return r, nil
	default:
		return 0, c.errf("unknown runtime function %d", x.Kind)
	}
	desc, err := c.descHandle(x.Sym)
	if err != nil {
		return 0, err
	}
	dimV, err := c.expr(x.Args[0])
	if err != nil {
		return 0, err
	}
	procV, err := c.expr(x.Args[1])
	if err != nil {
		return 0, err
	}
	// Three consecutive registers for the RTC.
	a0 := c.reg()
	a1 := c.reg()
	a2 := c.reg()
	c.emit(bytecode.Mov, a0, desc, 0, 0)
	c.emit(bytecode.Mov, a1, dimV, 0, 0)
	c.emit(bytecode.Mov, a2, procV, 0, 0)
	c.emit(bytecode.RTC, id, a0, 3, 0)
	return a0, nil
}

// arrayAddr computes the byte address of a (non-reshaped) array element:
// base + 8 * sum((idx_k - 1) * prod(extent_1..k-1)), column-major.
func (c *fnc) arrayAddr(ar *ir.ArrayRef) (int32, error) {
	if ar.Sym.IsReshaped() {
		return 0, c.errf("internal: reshaped reference to %s survived xform", ar.Sym.Name)
	}
	base, err := c.baseHandle(ar.Sym)
	if err != nil {
		return 0, err
	}

	// Build the offset expression in IR so constant folding applies,
	// then compile it.
	off := ir.Expr(ir.CI(0))
	stride := ir.Expr(ir.CI(1))
	for d, idx := range ar.Sym.Dims {
		sub := ir.ISub(ar.Idx[d], ir.CI(1))
		off = ir.IAdd(off, ir.IMul(sub, stride))
		if d < len(ar.Sym.Dims)-1 {
			var ext ir.Expr
			if idx == nil {
				return 0, c.errf("assumed-size dimension of %s must be last", ar.Sym.Name)
			}
			ext = ir.CloneExpr(idx)
			stride = ir.IMul(stride, ext)
		}
	}
	offReg, err := c.expr(off)
	if err != nil {
		return 0, err
	}
	bytes := c.reg()
	c.emit(bytecode.Mul, bytes, offReg, c.ldi(8), 0)
	addr := c.reg()
	c.emit(bytecode.Add, addr, base, bytes, 0)
	return addr, nil
}
