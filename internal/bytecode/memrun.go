package bytecode

// memrun.go recognizes straight-line constant-stride Ld/St sequences
// inside spans and compiles them into fused memory-run members that call
// the memsim run APIs (LoadRun/StoreRun) with a compile-time stride and
// count — one cost-model walk per cache line instead of one per word.
//
// The recognition is the same affine game the advisor plays on
// subscripts: every register is tracked as an affine form c + Σ coᵢ·rᵢ
// over the span-entry register values (exact in wrapping int64
// arithmetic, since ℤ/2⁶⁴ is a commutative ring). Two memory operands
// whose affine difference is a constant are provably a fixed stride
// apart on every execution, no matter what values flow in.
//
// A run may absorb interleaved bare (non-trapping, non-memory) members.
// The run member replays every covered instruction in original program
// order — data moves for the memory members, the single closures for the
// bare ones — so register dataflow is untouched; only the memsim walks
// are batched up front. For stores, the scattered values are captured
// when the run member starts, which is sound exactly when no interleaved
// instruction writes a later store's value register (checked during
// recognition). The per-word cycle charges the classic tier would flush
// at each Ld/St travel into memsim as the run's pre[] vector, so every
// charge lands on the clock at the identical point.
//
// Runs whose address range falls outside [8, Brk) fall back to the exact
// classic member sequence, reproducing the mid-run trap word for word.

// affTerms bounds the number of distinct registers an affine form may
// reference; subscript chains in generated code stay well under it.
const affTerms = 4

// aff is a symbolic affine form c + Σ co[i]·R[reg[i]] over the register
// values at span entry. ok=false marks a value the analysis cannot
// express (loaded from memory, runtime-dependent product, …).
type aff struct {
	ok  bool
	c   int64
	nt  int
	reg [affTerms]int32
	co  [affTerms]int64
}

func affConst(c int64) aff { return aff{ok: true, c: c} }

func affAdd(x, y aff) aff {
	if !x.ok || !y.ok {
		return aff{}
	}
	r := x
	r.c += y.c
	for i := 0; i < y.nt; i++ {
		r = affAddTerm(r, y.reg[i], y.co[i])
		if !r.ok {
			return aff{}
		}
	}
	return r
}

func affAddTerm(x aff, reg int32, co int64) aff {
	for i := 0; i < x.nt; i++ {
		if x.reg[i] == reg {
			x.co[i] += co
			if x.co[i] == 0 { // drop the cancelled term
				x.nt--
				x.reg[i], x.co[i] = x.reg[x.nt], x.co[x.nt]
			}
			return x
		}
	}
	if co == 0 {
		return x
	}
	if x.nt == affTerms {
		return aff{}
	}
	x.reg[x.nt], x.co[x.nt] = reg, co
	x.nt++
	return x
}

func affScale(x aff, k int64) aff {
	if !x.ok {
		return aff{}
	}
	if k == 0 {
		return affConst(0)
	}
	x.c *= k
	for i := 0; i < x.nt; i++ {
		x.co[i] *= k
	}
	return x
}

func affSub(x, y aff) aff { return affAdd(x, affScale(y, -1)) }

// affEnv maps registers to their affine forms; an absent register still
// holds its span-entry value (the identity form).
type affEnv map[int32]aff

func (e affEnv) val(r int32) aff {
	if a, ok := e[r]; ok {
		return a
	}
	a := aff{ok: true, nt: 1}
	a.reg[0], a.co[0] = r, 1
	return a
}

// affStep advances the environment over one span-legal instruction.
func affStep(e affEnv, in Instr) {
	switch in.Op {
	case Nop, SetArg, St,
		Jmp, Bz, Bnz, Blt, Ble, Bgt, Bge, Beq, Bne:
		// no register writes
	case LdI:
		e[in.A] = affConst(in.Imm)
	case Mov:
		e[in.A] = e.val(in.B)
	case Add:
		e[in.A] = affAdd(e.val(in.B), e.val(in.C))
	case Sub:
		e[in.A] = affSub(e.val(in.B), e.val(in.C))
	case Neg:
		e[in.A] = affScale(e.val(in.B), -1)
	case Mul:
		b, c := e.val(in.B), e.val(in.C)
		switch {
		case b.ok && b.nt == 0:
			e[in.A] = affScale(c, b.c)
		case c.ok && c.nt == 0:
			e[in.A] = affScale(b, c.c)
		default:
			e[in.A] = aff{}
		}
	default:
		// Every other span-legal op writes R[A] with a value the
		// analysis does not model (including Ld).
		e[in.A] = aff{}
	}
}

// bareDest returns the register a bare instruction writes, or -1.
func bareDest(in Instr) int32 {
	switch in.Op {
	case Nop, SetArg:
		return -1
	}
	return in.A
}

// memRun is one recognized run. Offsets are span-relative.
type memRun struct {
	first, last int
	op          Op
	stride      int64
	mems        []int // offsets of the member Ld/St instructions, in order
	steps       []int // offsets of every covered instruction, in order
}

// findMemRuns scans the span fn.Code[pc:end] for same-op constant-stride
// memory runs (≥ 2 members), greedily and without overlap. Only runs
// whose stride keeps consecutive words inside an L1 line — 0 <= stride <
// maxStride — are committed: those are the shapes where the batched
// memsim walk amortizes anything. A pair of stores to two distant arrays
// is also a "constant-stride run", but fusing it would just route two
// unrelated accesses through the run machinery for no gain.
func findMemRuns(fn *Fn, pc, end int, maxStride int64) []memRun {
	nmem := 0
	for i := pc; i < end; i++ {
		if classify(fn.Code[i].Op) == classMem {
			nmem++
		}
	}
	if nmem < 2 {
		return nil
	}
	w := end - pc
	env := make(affEnv, 8)
	addrs := make([]aff, w)
	for i := pc; i < end; i++ {
		in := fn.Code[i]
		if classify(in.Op) == classMem {
			addrs[i-pc] = affAdd(env.val(in.B), affConst(in.Imm))
		}
		affStep(env, in)
	}
	var runs []memRun
	for f := 0; f < w; {
		in := fn.Code[pc+f]
		if classify(in.Op) != classMem || !addrs[f].ok {
			f++
			continue
		}
		r := memRun{first: f, last: f, op: in.Op,
			mems: []int{f}, steps: []int{f}}
		lastAddr := addrs[f]
		strideSet := false
		var pending []int // bares since the last committed member
		var written map[int32]bool
		for q := f + 1; q < w; q++ {
			inq := fn.Code[pc+q]
			cl := classify(inq.Op)
			if cl == classBare {
				pending = append(pending, q)
				if d := bareDest(inq); d >= 0 && r.op == St {
					if written == nil {
						written = make(map[int32]bool, 4)
					}
					written[d] = true
				}
				continue
			}
			if cl != classMem || inq.Op != r.op || !addrs[q].ok {
				break
			}
			d := affSub(addrs[q], lastAddr)
			if !d.ok || d.nt != 0 {
				break
			}
			if strideSet && d.c != r.stride {
				break
			}
			// A store's value is captured at run start; an interleaved
			// write to it would change what the classic loop stores.
			if r.op == St && written[inq.A] {
				break
			}
			if !strideSet {
				r.stride, strideSet = d.c, true
			}
			r.steps = append(r.steps, pending...)
			pending = pending[:0]
			r.steps = append(r.steps, q)
			r.mems = append(r.mems, q)
			r.last = q
			lastAddr = addrs[q]
		}
		if len(r.mems) >= 2 && r.stride >= 0 && r.stride < maxStride {
			runs = append(runs, r)
			f = r.last + 1
		} else {
			f++
		}
	}
	return runs
}

// runStarting returns the run whose first member sits at span offset j.
func runStarting(runs []memRun, j int) *memRun {
	for i := range runs {
		if runs[i].first == j {
			return &runs[i]
		}
	}
	return nil
}

// runStep is one replayed instruction of a run member: a data move for a
// memory member (bare == nil), or the bare single closure.
type runStep struct {
	bare member
	reg  int // k.r index: Ld destination / St value source
	idx  int // runBuf index
}

// buildRunMember compiles a recognized run into a span member. prefix and
// flushBase follow mkSpan's accounting; the run flushes through its last
// memory instruction, so the caller must advance flushBase to r.last+1.
func buildRunMember(fn *Fn, pc int, r *memRun, prefix []int64, flushBase int, singles []cop) member {
	count := len(r.mems)
	// pres[i] is the classic flush at member i: the cost prefix from just
	// past the previous flush through the member itself.
	pres := make([]int64, count)
	fb := flushBase
	for i, j := range r.mems {
		pres[i] = prefix[j+1] - prefix[fb]
		fb = j + 1
	}
	// Replay plan (original order) and the exact classic fallback.
	steps := make([]runStep, 0, len(r.steps))
	fall := make([]member, 0, len(r.steps))
	fb = flushBase
	idx := 0
	for _, j := range r.steps {
		in := fn.Code[pc+j]
		if classify(in.Op) == classMem {
			steps = append(steps, runStep{reg: int(in.A), idx: idx})
			idx++
			fall = append(fall, memMember(pc+j, in, prefix[j+1]-prefix[fb], int32(j)))
			fb = j + 1
		} else {
			s := singles[pc+j].run
			steps = append(steps, runStep{bare: s})
			fall = append(fall, s)
		}
	}
	first := fn.Code[pc+r.first]
	b0, imm0 := int(first.B), first.Imm
	stride := r.stride
	extent := int64(count-1) * stride
	isLoad := r.op == Ld
	valRegs := make([]int, count)
	for i, j := range r.mems {
		valRegs[i] = int(fn.Code[pc+j].A)
	}
	return func(k *kern) copExit {
		sys := k.t.Sys
		base := k.r[b0] + imm0
		lo, hi := base, base+extent
		if stride < 0 {
			lo, hi = hi, lo
		}
		if lo < 8 || hi >= sys.Brk() {
			// Some word of the run is out of bounds: replay the exact
			// classic member sequence, which executes the words before
			// it and traps at the first bad one.
			for _, m := range fall {
				if ex := m(k); ex != exRun {
					return ex
				}
			}
			return exRun
		}
		sys.AddCycles(k.proc, k.cyc)
		k.cyc = 0
		buf := k.runBuf[:count]
		if isLoad {
			sys.LoadRun(k.proc, base, stride, count, pres, buf)
			for i := range steps {
				if st := &steps[i]; st.bare != nil {
					st.bare(k)
				} else {
					k.r[st.reg] = int64(buf[st.idx])
				}
			}
		} else {
			for i, vr := range valRegs {
				buf[i] = uint64(k.r[vr])
			}
			sys.StoreRun(k.proc, base, stride, count, pres, buf)
			for i := range steps {
				if st := &steps[i]; st.bare != nil {
					st.bare(k)
				}
			}
		}
		return exRun
	}
}

// compose2x chains two members, stopping on any non-exRun exit. Used for
// tail fusion of (bare, branch) and (mem, mem) neighbors, where a
// hand-written closure would buy nothing beyond skipping one member-loop
// iteration.
func compose2x(m1, m2 member) member {
	return func(k *kern) copExit {
		if ex := m1(k); ex != exRun {
			return ex
		}
		return m2(k)
	}
}

// fuseBareMem fuses a bare instruction with the following Ld/St into one
// member. The generator's dominant subscript shape — compute an element
// address, then load or store through it — makes (Add, Ld) and (Add, St)
// the two hottest member pairs in array kernels, so those are fully
// hand-inlined; every other bare partner goes through the generic
// composition. flushAdd/done follow memMember's contract for the memory
// instruction.
func fuseBareMem(bare Instr, pcM int, mem Instr, flushAdd int64, done int32) member {
	a2, b2 := int(mem.A), int(mem.B)
	imm := mem.Imm
	next := pcM + 1
	if bare.Op == Add {
		a1, b1, c1 := int(bare.A), int(bare.B), int(bare.C)
		if mem.Op == Ld {
			return func(k *kern) copExit {
				r := k.r
				r[a1] = r[b1] + r[c1]
				t := k.t
				sys := t.Sys
				addr := r[b2] + imm
				if addr < 8 || addr >= sys.Brk() {
					k.cyc += flushAdd
					k.done = done
					k.f.pc = next
					k.status = t.trap(k.f, "load from invalid address %d", addr)
					return exStop
				}
				sys.AddCycles(k.proc, k.cyc+flushAdd)
				k.cyc = 0
				r[a2] = int64(sys.LoadWord(k.proc, addr))
				return exRun
			}
		}
		return func(k *kern) copExit {
			r := k.r
			r[a1] = r[b1] + r[c1]
			t := k.t
			sys := t.Sys
			addr := r[b2] + imm
			if addr < 8 || addr >= sys.Brk() {
				k.cyc += flushAdd
				k.done = done
				k.f.pc = next
				k.status = t.trap(k.f, "store to invalid address %d", addr)
				return exStop
			}
			sys.AddCycles(k.proc, k.cyc+flushAdd)
			k.cyc = 0
			sys.StoreWord(k.proc, addr, uint64(r[a2]))
			return exRun
		}
	}
	return nil
}
