package bytecode

import (
	"testing"
)

// TestSnapshotRestoreRewindsExecution runs a counting loop, snapshots
// mid-flight, runs further, restores, and checks the re-run from the
// snapshot reproduces the same registers, counters, and final state.
func TestSnapshotRestoreRewindsExecution(t *testing.T) {
	sys, costs := testEnv(t)
	base := sys.Alloc(64, 8)
	// r1 = 0; loop 100 times: r1 += 3 (with a divide to exercise HwDiv);
	// store r1; halt.
	code := []Instr{
		{Op: LdI, A: 1, Imm: 0},
		{Op: LdI, A: 2, Imm: 100},
		{Op: LdI, A: 3, Imm: 3},
		{Op: LdI, A: 5, Imm: 7},
		{Op: LdI, A: 4, Imm: 0},
		// loop:
		{Op: Add, A: 1, B: 1, C: 3},
		{Op: DivI, A: 6, B: 1, C: 5},
		{Op: Sub, A: 2, B: 2, C: 3},
		{Op: Bgt, A: 2, B: 4, C: 5},
		{Op: LdI, A: 7, Imm: base},
		{Op: St, A: 1, B: 7, Imm: 0},
		{Op: Halt},
	}
	prog := prog1(8, code)
	stack := sys.Alloc(4096, 8)

	run := func(snapAfter int) (snap *ThreadSnapshot, th *Thread) {
		th = NewThread(0, sys, prog, &nopRT{}, costs, prog.Main, nil, stack, stack+4096)
		for i := 0; i < 10000; i++ {
			if i == snapAfter {
				snap = th.Snapshot()
			}
			if st := th.Step(20); st == Done {
				if th.Err != nil {
					t.Fatalf("thread error: %v", th.Err)
				}
				return snap, th
			}
		}
		t.Fatal("did not terminate")
		return nil, nil
	}

	_, ref := run(-1)
	wantStore := sys.Peek(base)
	wantInstrs, wantHwDiv := ref.Instrs, ref.HwDiv

	snap, th2 := run(3)
	if snap == nil {
		t.Fatal("snapshot not taken")
	}
	if th2.Instrs != wantInstrs || th2.HwDiv != wantHwDiv {
		t.Fatalf("second run diverged before restore: instrs %d vs %d", th2.Instrs, wantInstrs)
	}

	// Restore the mid-flight snapshot onto the finished thread and re-run
	// the remainder; counters and the final store must match.
	th2.Restore(snap)
	if th2.Instrs >= wantInstrs {
		t.Fatalf("restore did not rewind Instrs: %d", th2.Instrs)
	}
	sys.Poke(base, 0)
	for i := 0; i < 10000; i++ {
		if st := th2.Step(20); st == Done {
			if th2.Err != nil {
				t.Fatalf("thread error after restore: %v", th2.Err)
			}
			break
		}
	}
	if got := sys.Peek(base); got != wantStore {
		t.Fatalf("store after restore = %d, want %d", got, wantStore)
	}
	if th2.Instrs != wantInstrs || th2.HwDiv != wantHwDiv {
		t.Fatalf("counters after restore: instrs %d hwdiv %d, want %d %d",
			th2.Instrs, th2.HwDiv, wantInstrs, wantHwDiv)
	}
}
