package bytecode

import "math"

// compile.go is the translation half of the compiled execution tier: each
// instruction becomes a closure with its operands pre-decoded and its
// cycle cost pre-resolved, and each straight-line span of non-memory,
// non-gated instructions becomes one fused closure (a "span") that
// executes its members back to back and charges a single compile-time
// cycle sum. Hot instruction patterns from the code generator's address
// arithmetic (LdI+Mul+Add chains and friends) are fused further into
// multi-instruction member closures, so the per-member indirect call is
// amortized over two or three instructions. The trampoline (compiled.go)
// dispatches closure-to-closure instead of switching per instruction.
//
// Translation happens per loaded program — after relocation patching, so
// Ld/St closures capture final immediates — and costs microseconds; the
// expensive artifact (the compiled image itself) stays in core.BuildCache.
// Gated instructions (Call, Ret, ParCall, RTC) call the same exec*
// helpers the classic interpreter dispatches through, so their semantics
// exist once.

// copExit tells the trampoline what a closure did.
type copExit uint8

const (
	// exRun: straight-line op done; the trampoline charges cop.cost and
	// advances pc by cop.n.
	exRun copExit = iota
	// exJump: control transfer; the closure stored the new pc in k.pc.
	// The trampoline still charges cop.cost.
	exJump
	// exFrame: Call/Ret switched frames; the trampoline reloads its
	// frame caches and resumes at the new frame's pc. Cost was charged
	// inside the closure.
	exFrame
	// exStop: the quantum is over (trap, Halt, ParCall, barrier, RTC
	// error); the closure stored the final status in k.status and left
	// f.pc at the resume point. Cost was charged inside the closure.
	exStop
)

// kern is the compiled tier's register file of execution state; closures
// receive it instead of each capturing the thread. It lives embedded in
// the Thread so a quantum allocates nothing.
type kern struct {
	t      *Thread
	f      *frame
	r      []int64
	proc   int
	pc     int
	cyc    int64
	check  int   // instructions until the next n&15 checkpoint
	done   int32 // instructions completed inside a span before an exStop
	status Status
	// runBuf stages the gathered/scattered words of a fused memory-run
	// member (memrun.go); a span holds at most maxSpanLen memory ops.
	runBuf [maxSpanLen]uint64
}

// member is one span member: a closure covering one or more instructions
// that returns exRun to continue the span, or any other exit to leave it.
type member = func(k *kern) copExit

// cop is one compiled operation covering n instructions.
type cop struct {
	run  func(k *kern) copExit
	cost int64 // charged by the trampoline on exRun/exJump
	// prefix[j] is the summed cost of the first j instructions (spans
	// only; nil for singles). The trampoline uses it to decide, before
	// entering a span that straddles an n&15 checkpoint, whether the
	// classic loop would have broken at that checkpoint.
	prefix []int64
	n      int32 // instructions covered
	// pure is the offset of the span's first memory instruction (n when
	// there is none). The clock cannot advance before it, so an interior
	// checkpoint at offset j is decidable from prefix iff j <= pure; a
	// checkpoint past the first Ld/St forces single-stepping instead.
	pure int32
}

// compiledFn is one translated function.
type compiledFn struct {
	// ops is the dispatch table indexed by pc: fused closures at run
	// heads, specialized singles elsewhere.
	ops []cop
	// singles always holds the one-instruction closure for every pc;
	// the trampoline falls back to it when the remaining checkpoint
	// budget cannot cover a fused op.
	singles []cop
}

// Compiled is a fully translated program, shared read-only by every
// thread of a run.
type Compiled struct {
	fns map[*Fn]*compiledFn
}

// maxSpanLen clips spans to the classic loop's checkpoint distance (the
// clock bound is consulted every 16 instructions), so at most one
// checkpoint can fall inside a span — and that one is pre-verified by the
// trampoline against the span's cost prefix before the span is entered.
const maxSpanLen = 16

// CompileProgram translates every function of a loaded (relocated)
// program. The result is immutable and safe for concurrent use.
func CompileProgram(p *Program, costs *Costs) *Compiled {
	cp := &Compiled{fns: make(map[*Fn]*compiledFn, len(p.Fns))}
	for _, fn := range p.Fns {
		cp.fns[fn] = compileFn(fn, costs)
	}
	return cp
}

// compileFn translates one function.
func compileFn(fn *Fn, costs *Costs) *compiledFn {
	n := len(fn.Code)
	cf := &compiledFn{
		ops:     make([]cop, n),
		singles: make([]cop, n),
	}
	for pc, in := range fn.Code {
		cf.singles[pc] = mkSingle(pc, in, costs)
	}
	copy(cf.ops, cf.singles)

	// Spans: one fused closure per pc covering the straight-line range
	// from pc up to the first memory or gated instruction, with a
	// terminal branch absorbed. Every pc gets its own (suffix) span, so
	// mid-span entry after a branch or quantum break always lands on
	// valid code.
	for pc := 0; pc < n; pc++ {
		if end := spanEnd(fn.Code, pc); end-pc >= 2 {
			cf.ops[pc] = mkSpan(fn, pc, end, cf.singles, costs)
		}
	}
	return cf
}

// spanEnd returns the end (exclusive) of the span starting at pc: bare,
// trap-capable, and memory instructions, terminated by (and including) at
// most one branch, clipped to maxSpanLen. Only gated instructions end a
// span before them.
func spanEnd(code []Instr, pc int) int {
	end := pc
	for end < len(code) && end-pc < maxSpanLen {
		switch classify(code[end].Op) {
		case classBranch:
			return end + 1
		case classBare, classTrap, classMem:
		default:
			return end
		}
		end++
	}
	return end
}

// mkSpan fuses code[pc:end] into one cop. Bare instruction pairs and
// triples matching the generator's hot address-arithmetic patterns become
// single member closures. Trap-capable instructions become members that
// record, on the trap path, exactly how many instructions of the span
// completed (k.done) and the exact unflushed cycles accrued, so a
// mid-span trap is accounted precisely as the classic loop would. Memory
// instructions become members that flush the pending cycles into the
// clock exactly as their classic cases do; the trampoline then charges
// only the span's unflushed tail on exit. prefix and pure let the
// trampoline pre-verify an interior n&15 checkpoint before entering the
// span whenever the checkpoint precedes the first memory instruction.
func mkSpan(fn *Fn, pc, end int, singles []cop, costs *Costs) cop {
	w := end - pc
	// prefix[j] is the summed cost of the span's first j instructions.
	prefix := make([]int64, w+1)
	for j := 0; j < w; j++ {
		prefix[j+1] = prefix[j] + costs.tab[fn.Code[pc+j].Op]
	}
	var ms []member
	flushBase := 0 // span offset just past the last cycle-flushing member
	memAt := w     // offset of the first memory member, w if none
	runs := findMemRuns(fn, pc, end, costs.line)
	for i := pc; i < end; {
		in := fn.Code[i]
		j := i - pc
		if r := runStarting(runs, j); r != nil {
			// A constant-stride memory run (memrun.go): one member, one
			// batched memsim walk, flushing through its last Ld/St.
			if memAt == w {
				memAt = j
			}
			ms = append(ms, buildRunMember(fn, pc, r, prefix, flushBase, singles))
			flushBase = r.last + 1
			i = pc + r.last + 1
			continue
		}
		switch classify(in.Op) {
		case classBare:
			if i+2 < end &&
				classify(fn.Code[i+1].Op) == classBare &&
				classify(fn.Code[i+2].Op) == classBare {
				if m := fuse3(in, fn.Code[i+1], fn.Code[i+2]); m != nil {
					ms = append(ms, m)
					i += 3
					continue
				}
			}
			if i+1 < end && classify(fn.Code[i+1].Op) == classBare {
				if m := fuse2(in, fn.Code[i+1]); m != nil {
					ms = append(ms, m)
					i += 2
					continue
				}
			}
			// Fuse a lone bare into the following memory op (the
			// generator's compute-address-then-access shape) or the
			// terminal branch (loop tails). Runs claim their own heads.
			if i+1 < end && classify(fn.Code[i+1].Op) == classMem &&
				runStarting(runs, j+1) == nil {
				j1 := j + 1
				if memAt == w {
					memAt = j1
				}
				m := fuseBareMem(in, i+1, fn.Code[i+1], prefix[j1+1]-prefix[flushBase], int32(j1))
				if m == nil {
					m = compose2x(singles[i].run,
						memMember(i+1, fn.Code[i+1], prefix[j1+1]-prefix[flushBase], int32(j1)))
				}
				ms = append(ms, m)
				flushBase = j1 + 1
				i += 2
				continue
			}
			if i+1 < end && classify(fn.Code[i+1].Op) == classBranch {
				ms = append(ms, compose2x(singles[i].run, singles[i+1].run))
				i += 2
				continue
			}
			ms = append(ms, singles[i].run)
			i++
		case classTrap:
			ms = append(ms, trapMember(i, in, prefix[j+1]-prefix[flushBase], int32(j)))
			i++
		case classMem:
			if memAt == w {
				memAt = j
			}
			m := memMember(i, in, prefix[j+1]-prefix[flushBase], int32(j))
			flushBase = j + 1
			if i+1 < end && classify(fn.Code[i+1].Op) == classMem &&
				runStarting(runs, j+1) == nil {
				j1 := j + 1
				m = compose2x(m, memMember(i+1, fn.Code[i+1], prefix[j1+1]-prefix[flushBase], int32(j1)))
				flushBase = j1 + 1
				i++
			}
			ms = append(ms, m)
			i++
		default: // terminal branch; its single closure exits with exJump
			ms = append(ms, singles[i].run)
			i++
		}
	}
	run := ms[0]
	if len(ms) > 1 {
		mm := ms
		run = func(k *kern) copExit {
			for _, m := range mm {
				if ex := m(k); ex != exRun {
					return ex
				}
			}
			return exRun
		}
	}
	return cop{run: run, cost: prefix[w] - prefix[flushBase],
		prefix: prefix, n: int32(w), pure: int32(memAt)}
}

// memMember compiles Ld or St as a span member. flushAdd is the span's
// unflushed cost prefix through this instruction (from just past the
// previous memory member), so the flush into the clock is exactly the one
// the classic loop performs at this instruction.
func memMember(pc int, in Instr, flushAdd int64, done int32) member {
	a, b := int(in.A), int(in.B)
	imm := in.Imm
	next := pc + 1
	if in.Op == Ld {
		return func(k *kern) copExit {
			t := k.t
			sys := t.Sys
			addr := k.r[b] + imm
			if addr < 8 || addr >= sys.Brk() {
				k.cyc += flushAdd
				k.done = done
				k.f.pc = next
				k.status = t.trap(k.f, "load from invalid address %d", addr)
				return exStop
			}
			sys.AddCycles(k.proc, k.cyc+flushAdd)
			k.cyc = 0
			k.r[a] = int64(sys.LoadWord(k.proc, addr))
			return exRun
		}
	}
	return func(k *kern) copExit {
		t := k.t
		sys := t.Sys
		addr := k.r[b] + imm
		if addr < 8 || addr >= sys.Brk() {
			k.cyc += flushAdd
			k.done = done
			k.f.pc = next
			k.status = t.trap(k.f, "store to invalid address %d", addr)
			return exStop
		}
		sys.AddCycles(k.proc, k.cyc+flushAdd)
		k.cyc = 0
		sys.StoreWord(k.proc, addr, uint64(k.r[a]))
		return exRun
	}
}

// trapMember compiles a trap-capable register instruction as a span
// member. On success it charges nothing (the trampoline charges the
// span's unflushed tail); on a trap it charges cycTrap — the span's
// unflushed cost prefix through this instruction, mirroring the classic
// loop's cost-before-case accounting — and records done, the count of
// span instructions that completed before it.
func trapMember(pc int, in Instr, cycTrap int64, done int32) member {
	a, b, c := int(in.A), int(in.B), int(in.C)
	next := pc + 1
	switch in.Op {
	case DivI, FpDivI:
		hw := in.Op == DivI
		return func(k *kern) copExit {
			r := k.r
			if r[c] == 0 {
				k.cyc += cycTrap
				k.done = done
				k.f.pc = next
				k.status = k.t.trap(k.f, "integer division by zero")
				return exStop
			}
			r[a] = r[b] / r[c]
			if hw {
				k.t.HwDiv++
			} else {
				k.t.SoftDiv++
			}
			return exRun
		}
	case ModI, FpModI:
		hw := in.Op == ModI
		return func(k *kern) copExit {
			r := k.r
			if r[c] == 0 {
				k.cyc += cycTrap
				k.done = done
				k.f.pc = next
				k.status = k.t.trap(k.f, "integer modulo by zero")
				return exStop
			}
			r[a] = r[b] % r[c]
			if hw {
				k.t.HwDiv++
			} else {
				k.t.SoftDiv++
			}
			return exRun
		}
	case GetArg:
		return func(k *kern) copExit {
			f := k.f
			if b >= len(f.args) {
				k.cyc += cycTrap
				k.done = done
				f.pc = next
				k.status = k.t.trap(f, "argument %d not supplied", in.B)
				return exStop
			}
			k.r[a] = f.args[b]
			return exRun
		}
	}
	panic("trapMember: unexpected opcode " + in.Op.String())
}

// pk packs an opcode pair into a switch key for the fusion tables.
func pk(o1, o2 Op) uint32 { return uint32(o1)<<8 | uint32(o2) }

// pk3 packs an opcode triple.
func pk3(o1, o2, o3 Op) uint32 { return uint32(o1)<<16 | uint32(o2)<<8 | uint32(o3) }

// fuse2 fuses two adjacent bare instructions into one member closure, or
// returns nil when the pair is not in the fusion table. The table covers
// the pairs that dominate dynamic instruction mixes on the generated
// code — integer address arithmetic (LdI/Add/Sub/Mul in all
// combinations), the float kernel ops, and int-to-float conversion
// feeding a float op.
func fuse2(i1, i2 Instr) member {
	a1, b1, c1, m1 := int(i1.A), int(i1.B), int(i1.C), i1.Imm
	a2, b2, c2, m2 := int(i2.A), int(i2.B), int(i2.C), i2.Imm
	switch pk(i1.Op, i2.Op) {
	// Integer address arithmetic.
	case pk(LdI, LdI):
		return func(k *kern) copExit { r := k.r; r[a1] = m1; r[a2] = m2; return exRun }
	case pk(LdI, Add):
		return func(k *kern) copExit { r := k.r; r[a1] = m1; r[a2] = r[b2] + r[c2]; return exRun }
	case pk(LdI, Sub):
		return func(k *kern) copExit { r := k.r; r[a1] = m1; r[a2] = r[b2] - r[c2]; return exRun }
	case pk(LdI, Mul):
		return func(k *kern) copExit { r := k.r; r[a1] = m1; r[a2] = r[b2] * r[c2]; return exRun }
	case pk(Add, LdI):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] + r[c1]; r[a2] = m2; return exRun }
	case pk(Add, Add):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] + r[c1]; r[a2] = r[b2] + r[c2]; return exRun }
	case pk(Add, Sub):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] + r[c1]; r[a2] = r[b2] - r[c2]; return exRun }
	case pk(Add, Mul):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] + r[c1]; r[a2] = r[b2] * r[c2]; return exRun }
	case pk(Sub, LdI):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] - r[c1]; r[a2] = m2; return exRun }
	case pk(Sub, Add):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] - r[c1]; r[a2] = r[b2] + r[c2]; return exRun }
	case pk(Sub, Sub):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] - r[c1]; r[a2] = r[b2] - r[c2]; return exRun }
	case pk(Sub, Mul):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] - r[c1]; r[a2] = r[b2] * r[c2]; return exRun }
	case pk(Mul, LdI):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] * r[c1]; r[a2] = m2; return exRun }
	case pk(Mul, Add):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] * r[c1]; r[a2] = r[b2] + r[c2]; return exRun }
	case pk(Mul, Sub):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] * r[c1]; r[a2] = r[b2] - r[c2]; return exRun }
	case pk(Mul, Mul):
		return func(k *kern) copExit { r := k.r; r[a1] = r[b1] * r[c1]; r[a2] = r[b2] * r[c2]; return exRun }
	// Float kernels.
	case pk(AddF, AddF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = fbits(ffrom(r[b1]) + ffrom(r[c1]))
			r[a2] = fbits(ffrom(r[b2]) + ffrom(r[c2]))
			return exRun
		}
	case pk(AddF, MulF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = fbits(ffrom(r[b1]) + ffrom(r[c1]))
			r[a2] = fbits(ffrom(r[b2]) * ffrom(r[c2]))
			return exRun
		}
	case pk(AddF, SubF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = fbits(ffrom(r[b1]) + ffrom(r[c1]))
			r[a2] = fbits(ffrom(r[b2]) - ffrom(r[c2]))
			return exRun
		}
	case pk(MulF, AddF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = fbits(ffrom(r[b1]) * ffrom(r[c1]))
			r[a2] = fbits(ffrom(r[b2]) + ffrom(r[c2]))
			return exRun
		}
	case pk(MulF, SubF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = fbits(ffrom(r[b1]) * ffrom(r[c1]))
			r[a2] = fbits(ffrom(r[b2]) - ffrom(r[c2]))
			return exRun
		}
	case pk(MulF, MulF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = fbits(ffrom(r[b1]) * ffrom(r[c1]))
			r[a2] = fbits(ffrom(r[b2]) * ffrom(r[c2]))
			return exRun
		}
	case pk(SubF, AddF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = fbits(ffrom(r[b1]) - ffrom(r[c1]))
			r[a2] = fbits(ffrom(r[b2]) + ffrom(r[c2]))
			return exRun
		}
	case pk(SubF, MulF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = fbits(ffrom(r[b1]) - ffrom(r[c1]))
			r[a2] = fbits(ffrom(r[b2]) * ffrom(r[c2]))
			return exRun
		}
	// Conversion feeding (or fed by) float arithmetic.
	case pk(CvtIF, AddF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = fbits(float64(r[b1]))
			r[a2] = fbits(ffrom(r[b2]) + ffrom(r[c2]))
			return exRun
		}
	case pk(CvtIF, SubF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = fbits(float64(r[b1]))
			r[a2] = fbits(ffrom(r[b2]) - ffrom(r[c2]))
			return exRun
		}
	case pk(CvtIF, MulF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = fbits(float64(r[b1]))
			r[a2] = fbits(ffrom(r[b2]) * ffrom(r[c2]))
			return exRun
		}
	case pk(Add, CvtIF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = r[b1] + r[c1]
			r[a2] = fbits(float64(r[b2]))
			return exRun
		}
	case pk(Sub, CvtIF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = r[b1] - r[c1]
			r[a2] = fbits(float64(r[b2]))
			return exRun
		}
	case pk(Mul, CvtIF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = r[b1] * r[c1]
			r[a2] = fbits(float64(r[b2]))
			return exRun
		}
	case pk(LdI, CvtIF):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = m1
			r[a2] = fbits(float64(r[b2]))
			return exRun
		}
	}
	return nil
}

// fuse3 fuses three adjacent bare instructions into one member closure,
// or returns nil. The table holds the dominant dynamic triples of the
// generated address arithmetic (a dynamic histogram over the workloads
// puts LdI+Mul+Add alone at ~12% of all executed instructions).
func fuse3(i1, i2, i3 Instr) member {
	a1, m1 := int(i1.A), i1.Imm
	b1, c1 := int(i1.B), int(i1.C)
	a2, b2, c2, m2 := int(i2.A), int(i2.B), int(i2.C), i2.Imm
	a3, b3, c3, m3 := int(i3.A), int(i3.B), int(i3.C), i3.Imm
	switch pk3(i1.Op, i2.Op, i3.Op) {
	case pk3(LdI, Mul, Add):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = m1
			r[a2] = r[b2] * r[c2]
			r[a3] = r[b3] + r[c3]
			return exRun
		}
	case pk3(LdI, Mul, Sub):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = m1
			r[a2] = r[b2] * r[c2]
			r[a3] = r[b3] - r[c3]
			return exRun
		}
	case pk3(LdI, Sub, Mul):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = m1
			r[a2] = r[b2] - r[c2]
			r[a3] = r[b3] * r[c3]
			return exRun
		}
	case pk3(LdI, Sub, LdI):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = m1
			r[a2] = r[b2] - r[c2]
			r[a3] = m3
			return exRun
		}
	case pk3(LdI, LdI, Sub):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = m1
			r[a2] = m2
			r[a3] = r[b3] - r[c3]
			return exRun
		}
	case pk3(Add, LdI, Mul):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = r[b1] + r[c1]
			r[a2] = m2
			r[a3] = r[b3] * r[c3]
			return exRun
		}
	case pk3(Add, LdI, Sub):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = r[b1] + r[c1]
			r[a2] = m2
			r[a3] = r[b3] - r[c3]
			return exRun
		}
	case pk3(Sub, LdI, Sub):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = r[b1] - r[c1]
			r[a2] = m2
			r[a3] = r[b3] - r[c3]
			return exRun
		}
	case pk3(Mul, Add, LdI):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = r[b1] * r[c1]
			r[a2] = r[b2] + r[c2]
			r[a3] = m3
			return exRun
		}
	case pk3(Sub, Mul, Add):
		return func(k *kern) copExit {
			r := k.r
			r[a1] = r[b1] - r[c1]
			r[a2] = r[b2] * r[c2]
			r[a3] = r[b3] + r[c3]
			return exRun
		}
	}
	return nil
}

// mkSingle builds the one-instruction closure for in at pc. Closure
// bodies mirror the classic switch cases exactly — including charging the
// instruction's cost *before* any trap check, because the classic loop
// adds the cost table entry before entering the case.
func mkSingle(pc int, in Instr, costs *Costs) cop {
	cost := costs.tab[in.Op]
	a, b, c := int(in.A), int(in.B), int(in.C)
	imm := in.Imm
	next := pc + 1
	switch in.Op {
	case Nop:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit { return exRun }}
	case LdI:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			k.r[a] = imm
			return exRun
		}}
	case Mov:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = r[b]
			return exRun
		}}
	case Add:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = r[b] + r[c]
			return exRun
		}}
	case Sub:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = r[b] - r[c]
			return exRun
		}}
	case Mul:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = r[b] * r[c]
			return exRun
		}}
	case DivI, FpDivI:
		hw := in.Op == DivI
		return cop{n: 1, run: func(k *kern) copExit {
			k.cyc += cost
			r := k.r
			if r[c] == 0 {
				k.f.pc = next
				k.status = k.t.trap(k.f, "integer division by zero")
				return exStop
			}
			r[a] = r[b] / r[c]
			if hw {
				k.t.HwDiv++
			} else {
				k.t.SoftDiv++
			}
			return exRun
		}}
	case ModI, FpModI:
		hw := in.Op == ModI
		return cop{n: 1, run: func(k *kern) copExit {
			k.cyc += cost
			r := k.r
			if r[c] == 0 {
				k.f.pc = next
				k.status = k.t.trap(k.f, "integer modulo by zero")
				return exStop
			}
			r[a] = r[b] % r[c]
			if hw {
				k.t.HwDiv++
			} else {
				k.t.SoftDiv++
			}
			return exRun
		}}
	case Neg:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = -r[b]
			return exRun
		}}
	case NotL:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			if r[b] == 0 {
				r[a] = 1
			} else {
				r[a] = 0
			}
			return exRun
		}}
	case AddF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = fbits(ffrom(r[b]) + ffrom(r[c]))
			return exRun
		}}
	case SubF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = fbits(ffrom(r[b]) - ffrom(r[c]))
			return exRun
		}}
	case MulF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = fbits(ffrom(r[b]) * ffrom(r[c]))
			return exRun
		}}
	case DivF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = fbits(ffrom(r[b]) / ffrom(r[c]))
			return exRun
		}}
	case NegF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = fbits(-ffrom(r[b]))
			return exRun
		}}
	case CvtIF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = fbits(float64(r[b]))
			return exRun
		}}
	case CvtFI:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = int64(ffrom(r[b]))
			return exRun
		}}
	case MinI:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = min64(r[b], r[c])
			return exRun
		}}
	case MaxI:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = max64(r[b], r[c])
			return exRun
		}}
	case MinF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = fbits(math.Min(ffrom(r[b]), ffrom(r[c])))
			return exRun
		}}
	case MaxF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = fbits(math.Max(ffrom(r[b]), ffrom(r[c])))
			return exRun
		}}
	case AbsI:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			v := r[b]
			if v < 0 {
				v = -v
			}
			r[a] = v
			return exRun
		}}
	case AbsF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = fbits(math.Abs(ffrom(r[b])))
			return exRun
		}}
	case SqrtF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = fbits(math.Sqrt(ffrom(r[b])))
			return exRun
		}}
	case CmpLt:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = b2i(r[b] < r[c])
			return exRun
		}}
	case CmpLe:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = b2i(r[b] <= r[c])
			return exRun
		}}
	case CmpEq:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = b2i(r[b] == r[c])
			return exRun
		}}
	case CmpNe:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = b2i(r[b] != r[c])
			return exRun
		}}
	case CmpLtF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = b2i(ffrom(r[b]) < ffrom(r[c]))
			return exRun
		}}
	case CmpLeF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = b2i(ffrom(r[b]) <= ffrom(r[c]))
			return exRun
		}}
	case CmpEqF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = b2i(ffrom(r[b]) == ffrom(r[c]))
			return exRun
		}}
	case CmpNeF:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			r[a] = b2i(ffrom(r[b]) != ffrom(r[c]))
			return exRun
		}}
	case Jmp:
		tgt := a
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			k.pc = tgt
			return exJump
		}}
	case Bz:
		tgt := c
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			if k.r[a] == 0 {
				k.pc = tgt
			} else {
				k.pc = next
			}
			return exJump
		}}
	case Bnz:
		tgt := c
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			if k.r[a] != 0 {
				k.pc = tgt
			} else {
				k.pc = next
			}
			return exJump
		}}
	case Blt:
		tgt := c
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			if r[a] < r[b] {
				k.pc = tgt
			} else {
				k.pc = next
			}
			return exJump
		}}
	case Ble:
		tgt := c
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			if r[a] <= r[b] {
				k.pc = tgt
			} else {
				k.pc = next
			}
			return exJump
		}}
	case Bgt:
		tgt := c
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			if r[a] > r[b] {
				k.pc = tgt
			} else {
				k.pc = next
			}
			return exJump
		}}
	case Bge:
		tgt := c
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			if r[a] >= r[b] {
				k.pc = tgt
			} else {
				k.pc = next
			}
			return exJump
		}}
	case Beq:
		tgt := c
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			if r[a] == r[b] {
				k.pc = tgt
			} else {
				k.pc = next
			}
			return exJump
		}}
	case Bne:
		tgt := c
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			r := k.r
			if r[a] != r[b] {
				k.pc = tgt
			} else {
				k.pc = next
			}
			return exJump
		}}
	case Ld:
		return cop{n: 1, run: func(k *kern) copExit {
			k.cyc += cost
			t := k.t
			sys := t.Sys
			addr := k.r[b] + imm
			if addr < 8 || addr >= sys.Brk() {
				k.f.pc = next
				k.status = t.trap(k.f, "load from invalid address %d", addr)
				return exStop
			}
			sys.AddCycles(k.proc, k.cyc)
			k.cyc = 0
			k.r[a] = int64(sys.LoadWord(k.proc, addr))
			return exRun
		}}
	case St:
		return cop{n: 1, run: func(k *kern) copExit {
			k.cyc += cost
			t := k.t
			sys := t.Sys
			addr := k.r[b] + imm
			if addr < 8 || addr >= sys.Brk() {
				k.f.pc = next
				k.status = t.trap(k.f, "store to invalid address %d", addr)
				return exStop
			}
			sys.AddCycles(k.proc, k.cyc)
			k.cyc = 0
			sys.StoreWord(k.proc, addr, uint64(k.r[a]))
			return exRun
		}}
	case MyidOp:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			k.r[a] = int64(k.proc)
			return exRun
		}}
	case NprocsOp:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			k.r[a] = int64(k.t.Sys.Cfg.NProcs)
			return exRun
		}}
	case SetArg:
		return cop{n: 1, cost: cost, run: func(k *kern) copExit {
			f := k.f
			for len(f.outArgs) <= a {
				f.outArgs = append(f.outArgs, 0)
			}
			f.outArgs[a] = k.r[b]
			return exRun
		}}
	case GetArg:
		return cop{n: 1, run: func(k *kern) copExit {
			k.cyc += cost
			f := k.f
			if b >= len(f.args) {
				f.pc = next
				k.status = k.t.trap(f, "argument %d not supplied", in.B)
				return exStop
			}
			k.r[a] = f.args[b]
			return exRun
		}}
	case Call:
		return cop{n: 1, run: func(k *kern) copExit {
			k.cyc += cost
			k.f.pc = next
			if st := k.t.execCall(k.f, in); st != Running {
				k.status = st
				return exStop
			}
			return exFrame
		}}
	case Ret:
		return cop{n: 1, run: func(k *kern) copExit {
			k.cyc += cost
			if st := k.t.execRet(k.f); st != Running {
				k.status = st
				return exStop
			}
			return exFrame
		}}
	case ParCall:
		return cop{n: 1, run: func(k *kern) copExit {
			k.cyc += cost
			k.f.pc = next
			k.status = k.t.execParCall(k.f, in)
			return exStop
		}}
	case RTC:
		return cop{n: 1, run: func(k *kern) copExit {
			k.cyc += cost
			k.f.pc = next
			if st := k.t.execRTC(k.f, in, &k.cyc); st != Running {
				k.status = st
				return exStop
			}
			return exRun
		}}
	case Halt:
		return cop{n: 1, run: func(k *kern) copExit {
			k.cyc += cost
			k.f.pc = next
			k.status = Done
			return exStop
		}}
	default:
		op := in.Op
		return cop{n: 1, run: func(k *kern) copExit {
			k.cyc += cost
			k.f.pc = next
			k.status = k.t.trap(k.f, "illegal opcode %v", op)
			return exStop
		}}
	}
}
