package bytecode

import (
	"errors"
	"fmt"
	"math"

	"dsmdist/internal/machine"
	"dsmdist/internal/memsim"
)

// Runtime is the service interface the RTC instruction dispatches to; the
// runtime library (internal/rtl) implements it.
type Runtime interface {
	// RTCall performs runtime call id for the thread's processor with
	// the given integer arguments and returns a result (0 when unused).
	RTCall(t *Thread, id int, args []int64) (int64, error)
}

// Status is the result of running a thread for a quantum.
type Status int

const (
	Running   Status = iota // quantum exhausted, more work pending
	Done                    // function returned / program halted
	AtParCall               // stopped at a ParCall; executor must fan out
	AtBarrier               // stopped at an explicit dsm_barrier rendezvous
)

// ErrBarrier is the sentinel a Runtime returns from RTCall to request a
// barrier rendezvous; the interpreter converts it into AtBarrier status and
// the executor releases the thread once all peers arrive.
var ErrBarrier = errors.New("bytecode: barrier rendezvous")

// Costs is the per-opcode cycle table derived from a machine config. The
// table spans the whole uint8 opcode space so indexing it with an Op never
// needs a bounds check on the interpreter's hot path.
type Costs struct {
	tab  [256]int64
	ldst int64
	// line is the simulated L1 line size in bytes; the compiler's run
	// recognizer (memrun.go) only fuses memory runs whose stride keeps
	// several words per line, where batching the walk actually pays.
	line int64
}

// NewCosts builds the cycle table.
func NewCosts(cfg *machine.Config) *Costs {
	c := &Costs{}
	set := func(ops []Op, cyc int) {
		for _, o := range ops {
			c.tab[o] = int64(cyc)
		}
	}
	set([]Op{Nop, LdI, Mov, Add, Sub, Neg, NotL, MinI, MaxI, AbsI,
		CmpLt, CmpLe, CmpEq, CmpNe, MyidOp, NprocsOp, SetArg, GetArg}, cfg.IntOpCyc)
	set([]Op{Mul}, cfg.IntMulCyc)
	set([]Op{DivI, ModI}, cfg.IntDivCyc)
	// The §7.3 software divide: an FP divide plus a couple of fixups.
	set([]Op{FpDivI, FpModI}, cfg.FpDivCyc+2*cfg.IntOpCyc)
	set([]Op{AddF, SubF, NegF, MinF, MaxF, AbsF, CmpLtF, CmpLeF, CmpEqF, CmpNeF,
		CvtIF, CvtFI}, cfg.FpOpCyc)
	set([]Op{MulF}, cfg.FpMulCyc)
	set([]Op{DivF}, cfg.FpDivCyc)
	set([]Op{SqrtF}, 2*cfg.FpDivCyc)
	set([]Op{Jmp, Bz, Bnz, Blt, Ble, Bgt, Bge, Beq, Bne}, cfg.BranchCyc)
	set([]Op{Call, Ret, ParCall}, 4*cfg.IntOpCyc)
	set([]Op{Halt, RTC}, cfg.IntOpCyc)
	set([]Op{Ld, St}, cfg.IntOpCyc)
	c.ldst = int64(cfg.IntOpCyc)
	c.line = int64(cfg.L1LineSize)
	return c
}

type frame struct {
	fn      *Fn
	pc      int
	regs    []int64
	args    []int64
	outArgs []int64
	savedSP int64
	// cfn caches the compiled translation of fn; the compiled trampoline
	// resolves it lazily on first dispatch of the frame. Always nil on the
	// classic tier.
	cfn *compiledFn
	// ownArgs marks args slices allocated by the interpreter's Call path
	// (recyclable at Ret); the bottom frame's args belong to the caller
	// of NewThread and are never returned to the free list.
	ownArgs bool
}

// Thread is one processor's execution state. Threads are created by the
// executor: one long-lived serial thread on processor 0, plus one per
// processor for each parallel region.
type Thread struct {
	Proc int
	Sys  *memsim.System
	Prog *Program
	RT   Runtime

	// SP is the stack pointer for addressed-scalar frames; the executor
	// initializes it into the processor's stack segment.
	SP       int64
	StackEnd int64

	costs  *Costs
	frames []frame

	// cp, when non-nil, selects the block-compiled execution tier: the
	// program has been pre-translated into fused closures (compile.go)
	// and StepCycles dispatches through the compiled trampoline instead
	// of the classic switch loop. Results are bit-identical either way.
	cp *Compiled
	// k is the compiled trampoline's scratch state (embedded so a
	// quantum allocates nothing).
	k kern

	// free is a LIFO free list of int64 slices recycled across Call/Ret
	// (register files, out-arg buffers, argument vectors). Frames churn
	// fast in call-heavy code; without the list every Call allocates.
	free [][]int64

	// At a ParCall these describe the pending region.
	ParFn   int
	ParArgs []int64

	// Operation counters (the Table 2 ablation reads these: how many
	// hardware vs software divides the generated code executed).
	HwDiv   int64 // DivI/ModI executed
	SoftDiv int64 // FpDivI/FpModI executed
	Instrs  int64 // total instructions executed

	Err error
}

// RuntimeError carries a trap with source context.
type RuntimeError struct {
	Fn  string
	PC  int
	Msg string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error in %s at pc=%d: %s", e.Fn, e.PC, e.Msg)
}

// NewThread creates a thread poised to run fn with the given incoming args.
func NewThread(proc int, sys *memsim.System, prog *Program, rt Runtime, costs *Costs,
	fnIdx int, args []int64, sp, stackEnd int64) *Thread {
	t := &Thread{Proc: proc, Sys: sys, Prog: prog, RT: rt, SP: sp, StackEnd: stackEnd, costs: costs}
	t.push(prog.Fns[fnIdx], args)
	return t
}

// maxFree bounds the slice free list; beyond it, retired buffers go to
// the garbage collector.
const maxFree = 64

// getSlice returns a zeroed slice of length n, recycling from the free
// list when a retired buffer is large enough.
func (t *Thread) getSlice(n int) []int64 {
	for i := len(t.free) - 1; i >= 0; i-- {
		if cap(t.free[i]) >= n {
			s := t.free[i][:n]
			t.free[i] = t.free[len(t.free)-1]
			t.free = t.free[:len(t.free)-1]
			for j := range s {
				s[j] = 0
			}
			return s
		}
	}
	return make([]int64, n)
}

// putSlice retires a buffer to the free list.
func (t *Thread) putSlice(s []int64) {
	if s == nil || len(t.free) >= maxFree {
		return
	}
	t.free = append(t.free, s)
}

func (t *Thread) push(fn *Fn, args []int64) {
	f := frame{fn: fn, regs: t.getSlice(fn.NRegs), args: args, savedSP: t.SP}
	if fn.MaxOutArgs > 0 {
		f.outArgs = t.getSlice(fn.MaxOutArgs)
	}
	if fn.FrameBytes > 0 {
		f.regs[FPReg] = t.SP
		t.SP += fn.FrameBytes
	}
	t.frames = append(t.frames, f)
}

// Depth returns the call depth (tests).
func (t *Thread) Depth() int { return len(t.frames) }

func (t *Thread) trap(f *frame, format string, args ...any) Status {
	t.Err = &RuntimeError{Fn: f.fn.Name, PC: f.pc - 1, Msg: fmt.Sprintf(format, args...)}
	return Done
}

// Resume must be called after the executor finishes a ParCall fan-out.
func (t *Thread) Resume() {
	t.ParFn = -1
	t.ParArgs = nil
}

// Step executes up to quantum instructions, returning the thread status.
func (t *Thread) Step(quantum int) Status {
	return t.StepCycles(quantum, 1<<62)
}

// StepCycles executes until either `quantum` instructions have run or the
// processor's clock has advanced by at least maxCyc cycles. The executor
// uses the cycle bound to keep concurrently simulated processors within one
// bandwidth window of each other, so the shared memory-contention model
// sees a faithful arrival order.
//
// Dispatch semantics contract (any execution tier must honor it exactly):
// the cycle bound is only consulted at instruction counts n with n&15 == 0,
// *before* executing instruction n, comparing Clock+cyc-start >= maxCyc;
// the break charges the pending cycles but counts the unexecuted iteration
// in Instrs. Quantum boundaries feed the serial scheduler's round-robin
// and the parallel engine's epoch validation, so a tier that breaks at
// different points changes simulated arrival order.
//
// Cycle and instruction counts accumulate in locals and are flushed at the
// exits and before every memory or runtime call (the memory model's
// bandwidth windows read the clock); that batching is a pure host-side
// optimization — the charged cycles are identical to charging per
// instruction.
func (t *Thread) StepCycles(quantum int, maxCyc int64) Status {
	if t.cp != nil {
		return t.stepCompiled(quantum, maxCyc)
	}
	return t.stepClassic(quantum, maxCyc)
}

// UseCompiled switches the thread onto the block-compiled execution tier
// (nil reverts to the classic interpreter). The executor sets this at
// thread creation; both tiers are bit-identical in simulated behavior.
func (t *Thread) UseCompiled(cp *Compiled) { t.cp = cp }

// CompiledTier returns the thread's compiled translation (nil on the
// classic tier); the executor propagates it from the serial thread to
// region threads so every thread of a run executes on the same tier.
func (t *Thread) CompiledTier() *Compiled { return t.cp }

// stepClassic is the classic switch-dispatch interpreter loop.
func (t *Thread) stepClassic(quantum int, maxCyc int64) Status {
	sys := t.Sys
	costs := t.costs
	proc := t.Proc
	start := sys.Clock(proc)
	var cyc, instrs int64
	status := Running

loop:
	for n := 0; n < quantum; n++ {
		instrs++
		if n&15 == 0 && sys.Clock(proc)+cyc-start >= maxCyc {
			break loop
		}
		if len(t.frames) == 0 {
			status = Done
			break loop
		}
		f := &t.frames[len(t.frames)-1]
		code := f.fn.Code
		r := f.regs
		if f.pc >= len(code) {
			status = t.trap(f, "fell off end of function")
			break loop
		}
		in := code[f.pc]
		f.pc++
		cyc += costs.tab[in.Op]
		switch in.Op {
		case Nop:
		case LdI:
			r[in.A] = in.Imm
		case Mov:
			r[in.A] = r[in.B]
		case Add:
			r[in.A] = r[in.B] + r[in.C]
		case Sub:
			r[in.A] = r[in.B] - r[in.C]
		case Mul:
			r[in.A] = r[in.B] * r[in.C]
		case DivI, FpDivI:
			if r[in.C] == 0 {
				status = t.trap(f, "integer division by zero")
				break loop
			}
			r[in.A] = r[in.B] / r[in.C]
			if in.Op == DivI {
				t.HwDiv++
			} else {
				t.SoftDiv++
			}
		case ModI, FpModI:
			if r[in.C] == 0 {
				status = t.trap(f, "integer modulo by zero")
				break loop
			}
			r[in.A] = r[in.B] % r[in.C]
			if in.Op == ModI {
				t.HwDiv++
			} else {
				t.SoftDiv++
			}
		case Neg:
			r[in.A] = -r[in.B]
		case NotL:
			if r[in.B] == 0 {
				r[in.A] = 1
			} else {
				r[in.A] = 0
			}
		case AddF:
			r[in.A] = fbits(ffrom(r[in.B]) + ffrom(r[in.C]))
		case SubF:
			r[in.A] = fbits(ffrom(r[in.B]) - ffrom(r[in.C]))
		case MulF:
			r[in.A] = fbits(ffrom(r[in.B]) * ffrom(r[in.C]))
		case DivF:
			r[in.A] = fbits(ffrom(r[in.B]) / ffrom(r[in.C]))
		case NegF:
			r[in.A] = fbits(-ffrom(r[in.B]))
		case CvtIF:
			r[in.A] = fbits(float64(r[in.B]))
		case CvtFI:
			r[in.A] = int64(ffrom(r[in.B]))
		case MinI:
			r[in.A] = min64(r[in.B], r[in.C])
		case MaxI:
			r[in.A] = max64(r[in.B], r[in.C])
		case MinF:
			r[in.A] = fbits(math.Min(ffrom(r[in.B]), ffrom(r[in.C])))
		case MaxF:
			r[in.A] = fbits(math.Max(ffrom(r[in.B]), ffrom(r[in.C])))
		case AbsI:
			v := r[in.B]
			if v < 0 {
				v = -v
			}
			r[in.A] = v
		case AbsF:
			r[in.A] = fbits(math.Abs(ffrom(r[in.B])))
		case SqrtF:
			r[in.A] = fbits(math.Sqrt(ffrom(r[in.B])))
		case CmpLt:
			r[in.A] = b2i(r[in.B] < r[in.C])
		case CmpLe:
			r[in.A] = b2i(r[in.B] <= r[in.C])
		case CmpEq:
			r[in.A] = b2i(r[in.B] == r[in.C])
		case CmpNe:
			r[in.A] = b2i(r[in.B] != r[in.C])
		case CmpLtF:
			r[in.A] = b2i(ffrom(r[in.B]) < ffrom(r[in.C]))
		case CmpLeF:
			r[in.A] = b2i(ffrom(r[in.B]) <= ffrom(r[in.C]))
		case CmpEqF:
			r[in.A] = b2i(ffrom(r[in.B]) == ffrom(r[in.C]))
		case CmpNeF:
			r[in.A] = b2i(ffrom(r[in.B]) != ffrom(r[in.C]))
		case Jmp:
			f.pc = int(in.A)
		case Bz:
			if r[in.A] == 0 {
				f.pc = int(in.C)
			}
		case Bnz:
			if r[in.A] != 0 {
				f.pc = int(in.C)
			}
		case Blt:
			if r[in.A] < r[in.B] {
				f.pc = int(in.C)
			}
		case Ble:
			if r[in.A] <= r[in.B] {
				f.pc = int(in.C)
			}
		case Bgt:
			if r[in.A] > r[in.B] {
				f.pc = int(in.C)
			}
		case Bge:
			if r[in.A] >= r[in.B] {
				f.pc = int(in.C)
			}
		case Beq:
			if r[in.A] == r[in.B] {
				f.pc = int(in.C)
			}
		case Bne:
			if r[in.A] != r[in.B] {
				f.pc = int(in.C)
			}
		case Ld:
			addr := r[in.B] + in.Imm
			if addr < 8 || addr >= sys.Brk() {
				status = t.trap(f, "load from invalid address %d", addr)
				break loop
			}
			// The clock must be current before the access: the memory
			// model's bandwidth windows read it.
			sys.AddCycles(proc, cyc)
			cyc = 0
			r[in.A] = int64(sys.LoadWord(proc, addr))
		case St:
			addr := r[in.B] + in.Imm
			if addr < 8 || addr >= sys.Brk() {
				status = t.trap(f, "store to invalid address %d", addr)
				break loop
			}
			sys.AddCycles(proc, cyc)
			cyc = 0
			sys.StoreWord(proc, addr, uint64(r[in.A]))
		case MyidOp:
			r[in.A] = int64(proc)
		case NprocsOp:
			r[in.A] = int64(sys.Cfg.NProcs)
		case SetArg:
			for len(f.outArgs) <= int(in.A) {
				f.outArgs = append(f.outArgs, 0)
			}
			f.outArgs[in.A] = r[in.B]
		case Call:
			if st := t.execCall(f, in); st != Running {
				status = st
				break loop
			}
		case GetArg:
			if int(in.B) >= len(f.args) {
				status = t.trap(f, "argument %d not supplied", in.B)
				break loop
			}
			r[in.A] = f.args[in.B]
		case Ret:
			if st := t.execRet(f); st != Running {
				status = st
				break loop
			}
		case ParCall:
			status = t.execParCall(f, in)
			break loop
		case RTC:
			if st := t.execRTC(f, in, &cyc); st != Running {
				status = st
				break loop
			}
		case Halt:
			status = Done
			break loop
		default:
			status = t.trap(f, "illegal opcode %v", in.Op)
			break loop
		}
	}
	sys.AddCycles(proc, cyc)
	t.Instrs += instrs
	return status
}

// The gated instructions — Call, Ret, ParCall, RTC — are factored into
// helpers shared by the classic interpreter and the compiled tier, so
// their semantics exist once. Each returns Running to continue or a final
// status (traps set t.Err through trap()).

// execCall performs a Call instruction: stage the out-args into a fresh
// argument vector and push the callee's frame.
func (t *Thread) execCall(f *frame, in Instr) Status {
	callee := t.Prog.Fns[in.Imm]
	nargs := int(in.C)
	args := t.getSlice(nargs)
	copy(args, f.outArgs[:nargs])
	if t.SP+callee.FrameBytes > t.StackEnd {
		return t.trap(f, "stack overflow calling %s", callee.Name)
	}
	if len(t.frames) > 200 {
		return t.trap(f, "call depth exceeded (recursion is not supported)")
	}
	t.push(callee, args)
	t.frames[len(t.frames)-1].ownArgs = true
	return Running
}

// execRet pops the current frame, recycling its buffers.
func (t *Thread) execRet(f *frame) Status {
	t.SP = f.savedSP
	t.putSlice(f.regs)
	t.putSlice(f.outArgs)
	if f.ownArgs {
		t.putSlice(f.args)
	}
	t.frames = t.frames[:len(t.frames)-1]
	if len(t.frames) == 0 {
		return Done
	}
	return Running
}

// execParCall records the pending parallel region and suspends the thread.
func (t *Thread) execParCall(f *frame, in Instr) Status {
	t.ParFn = int(in.Imm)
	t.ParArgs = make([]int64, in.C)
	copy(t.ParArgs, f.regs[in.A:int(in.A)+int(in.C)])
	return AtParCall
}

// execRTC flushes the pending cycles (the runtime reads the clock) and
// dispatches a runtime call. The argument vector is freshly allocated, not
// pooled: runtime implementations may retain it.
func (t *Thread) execRTC(f *frame, in Instr, cyc *int64) Status {
	nargs := int(in.C)
	args := make([]int64, nargs)
	copy(args, f.regs[in.B:int(in.B)+nargs])
	t.Sys.AddCycles(t.Proc, *cyc)
	*cyc = 0
	res, err := t.RT.RTCall(t, int(in.A), args)
	if err == ErrBarrier {
		f.regs[in.B] = 0
		return AtBarrier
	}
	if err != nil {
		t.Err = err
		return Done
	}
	f.regs[in.B] = res
	return Running
}

func ffrom(bits int64) float64 { return math.Float64frombits(uint64(bits)) }
func fbits(v float64) int64    { return int64(math.Float64bits(v)) }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
