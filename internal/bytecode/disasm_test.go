package bytecode

import (
	"strings"
	"testing"
)

func TestDisasm(t *testing.T) {
	fn := &Fn{
		Name: "demo", NArgs: 1, NRegs: 6, FrameBytes: 16,
		Code: []Instr{
			{Op: GetArg, A: 1, B: 0},
			{Op: LdI, A: 2, Imm: 10},
			{Op: Blt, A: 1, B: 2, C: 4},
			{Op: St, A: 1, B: 2, Imm: 8},
			{Op: RTC, A: RTBarrier, B: 3, C: 0},
			{Op: Jmp, A: 0},
			{Op: Ret},
		},
	}
	out := Disasm(fn)
	for _, want := range []string{
		"demo:", "args=1", "frame=16B",
		"getarg r1, 0",
		"ldi    r2, 10",
		"blt    r1, r2, L4",
		"st     [r2+8], r1",
		"rtc    barrier",
		"jmp    L0",
		"L0", "L4", // labels materialized
		"ret",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("disasm missing %q in:\n%s", want, out)
		}
	}
}

func TestDisasmProgram(t *testing.T) {
	p := &Program{
		Fns: []*Fn{
			{Name: "main", Code: []Instr{{Op: Ret}}},
			{Name: "main$r0", IsRegion: true, Code: []Instr{{Op: Ret}}},
		},
		Main: 0,
		Syms: []*DataSym{{Name: "a", Bytes: 64, Align: 8}},
	}
	out := DisasmProgram(p)
	for _, want := range []string{"; entry point", "[region]", "data symbols", "a"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
