package bytecode

import (
	"fmt"
	"strings"
)

// Disasm renders one function as readable assembly, resolving branch
// targets to labels and annotating runtime calls.
func Disasm(f *Fn) string {
	var b strings.Builder
	kind := ""
	if f.IsRegion {
		kind = " [region]"
	}
	fmt.Fprintf(&b, "%s:%s  args=%d regs=%d frame=%dB\n", f.Name, kind, f.NArgs, f.NRegs, f.FrameBytes)

	// Collect branch targets for labels.
	targets := map[int]bool{}
	for _, in := range f.Code {
		switch in.Op {
		case Jmp:
			targets[int(in.A)] = true
		case Bz, Bnz, Blt, Ble, Bgt, Bge, Beq, Bne:
			targets[int(in.C)] = true
		}
	}

	for pc, in := range f.Code {
		label := "      "
		if targets[pc] {
			label = fmt.Sprintf("L%-4d ", pc)
		}
		fmt.Fprintf(&b, "%s%4d  %s\n", label, pc, disasmInstr(in))
	}
	return b.String()
}

// DisasmProgram renders every function of a program.
func DisasmProgram(p *Program) string {
	var b strings.Builder
	for i, f := range p.Fns {
		if i == p.Main {
			b.WriteString("; entry point\n")
		}
		b.WriteString(Disasm(f))
		b.WriteString("\n")
	}
	if len(p.Syms) > 0 {
		b.WriteString("; data symbols\n")
		for i, s := range p.Syms {
			fmt.Fprintf(&b, ";   %3d %-28s %8dB align %d\n", i, s.Name, s.Bytes, s.Align)
		}
	}
	return b.String()
}

var rtNames = map[int32]string{
	RTBarrier:    "barrier",
	RTRedist:     "redistribute",
	RTPortionLo:  "portion_lo",
	RTPortionHi:  "portion_hi",
	RTArgPush:    "argcheck_push",
	RTArgPop:     "argcheck_pop",
	RTArgCheck:   "argcheck_verify",
	RTTimerStart: "timer_start",
	RTTimerStop:  "timer_stop",
	RTNestGrid:   "nest_grid",
	RTAllocStack: "alloc_stack",
	RTDynGrab:    "dyn_grab",
}

func disasmInstr(in Instr) string {
	r := func(n int32) string { return fmt.Sprintf("r%d", n) }
	switch in.Op {
	case Nop, Halt, Ret:
		return in.Op.String()
	case LdI:
		return fmt.Sprintf("ldi    %s, %d", r(in.A), in.Imm)
	case Mov, Neg, NegF, NotL, CvtIF, CvtFI, AbsI, AbsF, SqrtF:
		return fmt.Sprintf("%-6s %s, %s", in.Op, r(in.A), r(in.B))
	case Add, Sub, Mul, DivI, ModI, FpDivI, FpModI,
		AddF, SubF, MulF, DivF,
		MinI, MaxI, MinF, MaxF,
		CmpLt, CmpLe, CmpEq, CmpNe, CmpLtF, CmpLeF, CmpEqF, CmpNeF:
		return fmt.Sprintf("%-6s %s, %s, %s", in.Op, r(in.A), r(in.B), r(in.C))
	case Jmp:
		return fmt.Sprintf("jmp    L%d", in.A)
	case Bz, Bnz:
		return fmt.Sprintf("%-6s %s, L%d", in.Op, r(in.A), in.C)
	case Blt, Ble, Bgt, Bge, Beq, Bne:
		return fmt.Sprintf("%-6s %s, %s, L%d", in.Op, r(in.A), r(in.B), in.C)
	case Ld:
		return fmt.Sprintf("ld     %s, [%s%+d]", r(in.A), r(in.B), in.Imm)
	case St:
		return fmt.Sprintf("st     [%s%+d], %s", r(in.B), in.Imm, r(in.A))
	case MyidOp:
		return fmt.Sprintf("myid   %s", r(in.A))
	case NprocsOp:
		return fmt.Sprintf("nprocs %s", r(in.A))
	case SetArg:
		return fmt.Sprintf("setarg %d, %s", in.A, r(in.B))
	case GetArg:
		return fmt.Sprintf("getarg %s, %d", r(in.A), in.B)
	case Call:
		return fmt.Sprintf("call   fn%d, %d args", in.Imm, in.C)
	case ParCall:
		return fmt.Sprintf("parcall fn%d, caps r%d..r%d", in.Imm, in.A, in.A+in.C-1)
	case RTC:
		name := rtNames[in.A]
		if name == "" {
			name = fmt.Sprintf("rt%d", in.A)
		}
		return fmt.Sprintf("rtc    %s, args r%d x%d", name, in.B, in.C)
	}
	return in.String()
}
