package bytecode

import (
	"testing"

	"dsmdist/internal/machine"
	"dsmdist/internal/memsim"
	"dsmdist/internal/ospage"
)

// boundaryProg builds a long-running loop whose body mixes a bare run
// longer than the 16-instruction checkpoint window, memory traffic,
// divides, and branches — everything whose interaction with quantum and
// cycle-bound breaks the dispatch semantics contract pins down.
func boundaryProg(base int64, iters int64) *Program {
	code := []Instr{
		{Op: LdI, A: 1, Imm: 0},     // sum
		{Op: LdI, A: 2, Imm: 0},     // i
		{Op: LdI, A: 3, Imm: iters}, // n
		{Op: LdI, A: 4, Imm: 1},
		{Op: LdI, A: 5, Imm: base},
		// loop:
		{Op: Bge, A: 2, B: 3, C: 29}, // pc5: if i >= n goto done
	}
	// A bare run of 18 instructions (crosses one checkpoint boundary).
	for k := 0; k < 9; k++ {
		code = append(code,
			Instr{Op: Add, A: 6, B: 1, C: 2},
			Instr{Op: Mul, A: 6, B: 6, C: 4},
		)
	}
	code = append(code,
		Instr{Op: Ld, A: 7, B: 5, Imm: 0},  // pc24
		Instr{Op: Add, A: 1, B: 1, C: 7},   // pc25
		Instr{Op: St, A: 1, B: 5, Imm: 8},  // pc26
		Instr{Op: Add, A: 2, B: 2, C: 4},   // pc27: i++
		Instr{Op: Jmp, A: 5},               // pc28
		Instr{Op: Halt},                    // pc29: done
	)
	return prog1(8, code)
}

// newBoundaryThread builds an isolated machine plus one thread running
// boundaryProg, optionally on the compiled tier.
func newBoundaryThread(t *testing.T, compiled bool) *Thread {
	t.Helper()
	cfg := machine.Tiny(2)
	sys, err := memsim.New(cfg, ospage.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	costs := NewCosts(cfg)
	base := sys.Alloc(64, 8)
	sys.Poke(base, 3)
	prog := boundaryProg(base, 3000)
	stack := sys.Alloc(4096, 8)
	th := NewThread(0, sys, prog, &nopRT{}, costs, prog.Main, nil, stack, stack+4096)
	if compiled {
		th.UseCompiled(CompileProgram(prog, costs))
	}
	return th
}

// TestTierQuantumBoundaryIdentity locksteps the classic interpreter and
// the compiled tier through a schedule of quantum and cycle-bound values
// chosen to land breaks at every awkward spot — quanta that are not
// multiples of 16, tiny cycle bounds that trip the n&15 checkpoint
// mid-run, and unbounded steps — and demands identical break points:
// same status, same Instrs (including the classic loop's counting of the
// broken iteration), same clock, same pc, same call depth after every
// single StepCycles call.
func TestTierQuantumBoundaryIdentity(t *testing.T) {
	classic := newBoundaryThread(t, false)
	compiled := newBoundaryThread(t, true)

	quanta := []int{7, 16, 17, 100, 1000, 2000}
	bounds := []int64{33, 48, 64, 100, 250, 1 << 62}
	step := 0
	for {
		q := quanta[step%len(quanta)]
		m := bounds[step%len(bounds)]
		sc := classic.StepCycles(q, m)
		sk := compiled.StepCycles(q, m)
		if sc != sk {
			t.Fatalf("step %d (q=%d maxCyc=%d): status %v vs %v", step, q, m, sc, sk)
		}
		if classic.Instrs != compiled.Instrs {
			t.Fatalf("step %d (q=%d maxCyc=%d): instrs %d vs %d",
				step, q, m, classic.Instrs, compiled.Instrs)
		}
		if cc, kc := classic.Sys.Clock(0), compiled.Sys.Clock(0); cc != kc {
			t.Fatalf("step %d (q=%d maxCyc=%d): clock %d vs %d", step, q, m, cc, kc)
		}
		if classic.Depth() != compiled.Depth() {
			t.Fatalf("step %d: depth %d vs %d", step, classic.Depth(), compiled.Depth())
		}
		if classic.Depth() > 0 {
			cp := classic.frames[len(classic.frames)-1].pc
			kp := compiled.frames[len(compiled.frames)-1].pc
			if cp != kp {
				t.Fatalf("step %d (q=%d maxCyc=%d): pc %d vs %d", step, q, m, cp, kp)
			}
		}
		if sc == Done {
			if classic.Err != nil {
				t.Fatalf("classic error: %v", classic.Err)
			}
			if compiled.Err != nil {
				t.Fatalf("compiled error: %v", compiled.Err)
			}
			return
		}
		step++
		if step > 200000 {
			t.Fatal("did not terminate")
		}
	}
}

// TestTierTrapIdentity pins trap equivalence: same error message (same
// reported pc), same Instrs, same clock on a division by zero.
func TestTierTrapIdentity(t *testing.T) {
	mk := func(compiled bool) *Thread {
		cfg := machine.Tiny(2)
		sys, err := memsim.New(cfg, ospage.New(cfg))
		if err != nil {
			t.Fatal(err)
		}
		costs := NewCosts(cfg)
		code := []Instr{
			{Op: LdI, A: 1, Imm: 7},
			{Op: LdI, A: 2, Imm: 0},
			{Op: Add, A: 3, B: 1, C: 1},
			{Op: DivI, A: 3, B: 1, C: 2}, // divide by zero at pc 3
			{Op: Halt},
		}
		prog := prog1(8, code)
		stack := sys.Alloc(4096, 8)
		th := NewThread(0, sys, prog, &nopRT{}, costs, prog.Main, nil, stack, stack+4096)
		if compiled {
			th.UseCompiled(CompileProgram(prog, costs))
		}
		return th
	}
	classic, compiled := mk(false), mk(true)
	sc, sk := classic.Step(100), compiled.Step(100)
	if sc != Done || sk != Done {
		t.Fatalf("status %v vs %v", sc, sk)
	}
	if classic.Err == nil || compiled.Err == nil {
		t.Fatalf("expected traps, got %v vs %v", classic.Err, compiled.Err)
	}
	if classic.Err.Error() != compiled.Err.Error() {
		t.Fatalf("trap messages differ:\n  classic:  %v\n  compiled: %v", classic.Err, compiled.Err)
	}
	if classic.Instrs != compiled.Instrs {
		t.Fatalf("instrs %d vs %d", classic.Instrs, compiled.Instrs)
	}
	if cc, kc := classic.Sys.Clock(0), compiled.Sys.Clock(0); cc != kc {
		t.Fatalf("clock %d vs %d", cc, kc)
	}
}

// benchThread builds a thread running an endless compute loop (arith run,
// load, store, branch) for dispatch benchmarks.
func benchThread(b *testing.B, compiled bool) *Thread {
	b.Helper()
	cfg := machine.Tiny(1)
	sys, err := memsim.New(cfg, ospage.New(cfg))
	if err != nil {
		b.Fatal(err)
	}
	costs := NewCosts(cfg)
	base := sys.Alloc(64, 8)
	prog := boundaryProg(base, 1<<60)
	stack := sys.Alloc(4096, 8)
	th := NewThread(0, sys, prog, &nopRT{}, costs, prog.Main, nil, stack, stack+4096)
	if compiled {
		th.UseCompiled(CompileProgram(prog, costs))
	}
	return th
}

func benchStep(b *testing.B, compiled bool) {
	th := benchThread(b, compiled)
	const quantum = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if th.Step(quantum) != Running {
			b.Fatalf("unexpected stop: %v", th.Err)
		}
	}
	b.SetBytes(0)
	b.ReportMetric(float64(th.Instrs)/float64(b.Elapsed().Seconds())/1e6, "Minstrs/s")
}

func BenchmarkStepClassic(b *testing.B)  { benchStep(b, false) }
func BenchmarkStepCompiled(b *testing.B) { benchStep(b, true) }
