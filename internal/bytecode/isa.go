// Package bytecode defines the compiled form the simulator executes: a
// register bytecode for an R10000-like scalar core. Loads and stores run
// through the memsim memory hierarchy; arithmetic costs follow the
// machine.Config cycle model, including the paper's 35-cycle integer divide
// and the 11-cycle floating-point divide the §7.3 strength reduction
// targets (the FpDiv/FpMod opcodes are the "div/mod using floating-point
// arithmetic" the optimizer emits).
package bytecode

import "fmt"

// Op is an opcode.
type Op uint8

// Register convention: r0 is the frame pointer (base of the frame's
// addressed-scalar storage); r1.. are allocated by the code generator.
const FPReg = 0

const (
	Nop Op = iota

	// Constants and moves.
	LdI // R[A] = Imm (integer or raw float bits)
	Mov // R[A] = R[B]

	// Integer arithmetic: R[A] = R[B] op R[C].
	Add
	Sub
	Mul
	DivI // hardware integer divide (35 cycles, not pipelined)
	ModI
	FpDivI // integer divide simulated in the FP unit (§7.3)
	FpModI
	Neg  // R[A] = -R[B]
	NotL // R[A] = (R[B] == 0)

	// Float arithmetic (registers hold raw bits).
	AddF
	SubF
	MulF
	DivF
	NegF

	// Conversions.
	CvtIF // int -> float
	CvtFI // float -> int (truncate)

	// Intrinsics.
	MinI
	MaxI
	MinF
	MaxF
	AbsI
	AbsF
	SqrtF

	// Comparisons producing 0/1: R[A] = R[B] op R[C].
	CmpLt
	CmpLe
	CmpEq
	CmpNe
	CmpLtF
	CmpLeF
	CmpEqF
	CmpNeF

	// Control flow. Branch targets are absolute instruction indices in
	// the containing function.
	Jmp // pc = A
	Bz  // if R[A] == 0: pc = C
	Bnz // if R[A] != 0: pc = C
	// Fused compare-and-branch (the common loop exits): if R[A] op R[B]
	// then pc = C.
	Blt
	Ble
	Bgt
	Bge
	Beq
	Bne

	// Memory: address = R[B] + Imm bytes.
	Ld // R[A] = mem[R[B]+Imm]
	St // mem[R[B]+Imm] = R[A]

	// Parallel context.
	MyidOp   // R[A] = executing processor id (0 in serial code)
	NprocsOp // R[A] = processor count

	// Calls. Arguments are staged with SetArg, then Call transfers.
	SetArg // outArg[A] = R[B]
	Call   // invoke Fns[Imm] with C staged args
	GetArg // R[A] = incoming arg[B]
	Ret

	// ParCall suspends the thread so the executor can fan the region
	// function Fns[Imm] out to all processors; the C captured values
	// starting at R[A] become the region's incoming args.
	ParCall

	// RTC calls the runtime: id in A, C args starting at R[B]; the
	// result replaces R[B].
	RTC

	Halt
)

var opNames = [...]string{
	"nop", "ldi", "mov",
	"add", "sub", "mul", "divi", "modi", "fpdivi", "fpmodi", "neg", "notl",
	"addf", "subf", "mulf", "divf", "negf",
	"cvtif", "cvtfi",
	"mini", "maxi", "minf", "maxf", "absi", "absf", "sqrtf",
	"cmplt", "cmple", "cmpeq", "cmpne", "cmpltf", "cmplef", "cmpeqf", "cmpnef",
	"jmp", "bz", "bnz", "blt", "ble", "bgt", "bge", "beq", "bne",
	"ld", "st",
	"myid", "nprocs",
	"setarg", "call", "getarg", "ret",
	"parcall", "rtc", "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one instruction.
type Instr struct {
	Op      Op
	A, B, C int32
	Imm     int64
}

func (i Instr) String() string {
	return fmt.Sprintf("%-7s a=%d b=%d c=%d imm=%d", i.Op, i.A, i.B, i.C, i.Imm)
}

// Fn is one compiled function.
type Fn struct {
	Name       string
	Code       []Instr
	NRegs      int
	NArgs      int
	FrameBytes int64 // addressed-scalar storage reserved per activation
	IsRegion   bool  // doacross region body

	// MaxOutArgs is the out-arg buffer size this function needs (one past
	// the highest SetArg slot); the interpreter preallocates frames' out
	// buffers from it instead of growing on demand. Program.Finalize
	// computes it; 0 (old images, hand-built programs) falls back to the
	// grow-on-SetArg path.
	MaxOutArgs int

	// Source attribution (profiler): the file and line of the unit or,
	// for region functions, of the doacross directive that was outlined.
	File string
	Line int
}

// SymKind classifies data symbols.
type SymKind int

const (
	SymData SymKind = iota // array or addressed-scalar storage
	SymDesc                // distributed-array descriptor block
)

// DataSym is a statically allocated data object; Addr is patched by the
// loader after layout.
type DataSym struct {
	Name  string
	Kind  SymKind
	Bytes int64
	Align int64
	Addr  int64
}

// Reloc patches the Imm of Fns[Fn].Code[PC] to Syms[Sym].Addr + Addend.
type Reloc struct {
	Fn, PC int
	Sym    int
	Addend int64
}

// RTCall ids (the A operand of RTC).
const (
	RTBarrier    = iota // dsm_barrier()
	RTRedist            // args: plan id
	RTPortionLo         // args: array sym id, dim (1-based), proc -> 1-based lo
	RTPortionHi         // args: array sym id, dim, proc -> 1-based hi
	RTArgPush           // args: address, check id    (caller side, §6 checks)
	RTArgPop            // args: count
	RTArgCheck          // args: address, check id    (callee side)
	RTTimerStart        // region-of-interest timing: snapshot the clock
	RTTimerStop
	RTNestGrid   // args: ndims, dim -> processors along dim of the nest grid
	RTAllocStack // args: bytes -> base address of a stack-lifetime block
	RTDynGrab    // args: total, chunk, mode -> start*2^31 + len (len 0 = done)
)

// Program is a linked executable image.
type Program struct {
	Fns    []*Fn
	Main   int
	Syms   []*DataSym
	Relocs []Reloc
}

// Patch applies all relocations; the loader calls it after assigning
// symbol addresses.
func (p *Program) Patch() error {
	for _, r := range p.Relocs {
		if r.Fn >= len(p.Fns) || r.PC >= len(p.Fns[r.Fn].Code) {
			return fmt.Errorf("bytecode: bad reloc %+v", r)
		}
		if r.Sym >= len(p.Syms) {
			return fmt.Errorf("bytecode: reloc to unknown symbol %d", r.Sym)
		}
		s := p.Syms[r.Sym]
		if s.Addr == 0 {
			return fmt.Errorf("bytecode: symbol %s has no address", s.Name)
		}
		p.Fns[r.Fn].Code[r.PC].Imm = s.Addr + r.Addend
	}
	return nil
}

// Clone deep-copies the load-mutable state of the program: the loader
// assigns Syms addresses (and normalizes Bytes) and Patch rewrites Code
// immediates in place, so a program served from a build cache must be
// cloned before every load. Relocs are immutable and stay shared.
func (p *Program) Clone() *Program {
	np := &Program{Main: p.Main, Relocs: p.Relocs}
	np.Fns = make([]*Fn, len(p.Fns))
	for i, f := range p.Fns {
		nf := *f
		nf.Code = append([]Instr(nil), f.Code...)
		np.Fns[i] = &nf
	}
	np.Syms = make([]*DataSym, len(p.Syms))
	for i, s := range p.Syms {
		ns := *s
		np.Syms[i] = &ns
	}
	return np
}

// Finalize computes derived per-function metadata (currently MaxOutArgs).
// The executor calls it once per loaded program before creating threads;
// it is idempotent and cheap (one scan of the code).
func (p *Program) Finalize() {
	for _, f := range p.Fns {
		if f.MaxOutArgs > 0 {
			continue
		}
		for _, in := range f.Code {
			if in.Op == SetArg && int(in.A)+1 > f.MaxOutArgs {
				f.MaxOutArgs = int(in.A) + 1
			}
		}
	}
}

// FindFn returns the index of the named function, or -1.
func (p *Program) FindFn(name string) int {
	for i, f := range p.Fns {
		if f.Name == name {
			return i
		}
	}
	return -1
}
