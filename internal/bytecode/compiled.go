package bytecode

// compiled.go is the dispatch half of the compiled execution tier: a
// trampoline that walks a compiledFn's closure table span to span. It
// must reproduce the classic interpreter's observable behavior exactly —
// see the StepCycles doc comment for the dispatch semantics contract.
//
// The classic loop consults the cycle bound every 16 instructions (the
// n&15 checkpoint). The trampoline tracks the distance to the next
// checkpoint in k.check. For a memory-free span the processor clock
// cannot advance inside the span, so when a checkpoint falls inside one,
// whether the classic loop would have broken there is decidable *before*
// entering the span, from the span's compile-time cost prefix; if it
// would have broken, the trampoline falls back to the per-instruction
// closures and breaks at exactly the classic point, and otherwise the
// whole span runs with no internal bookkeeping at all. A span containing
// Ld/St advances the clock unpredictably mid-span, so it is entered only
// when no checkpoint falls inside it and single-stepped otherwise.
// Mid-span exits are then only traps, which carry their own exact
// instruction and cycle accounting (k.done and the unflushed prefix).

// stepCompiled is the compiled-tier implementation of StepCycles.
func (t *Thread) stepCompiled(quantum int, maxCyc int64) Status {
	sys := t.Sys
	proc := t.Proc
	climit := sys.Clock(proc) + maxCyc
	k := &t.k
	k.t = t
	k.proc = proc
	k.cyc = 0
	k.done = 0
	n := 0
	status := Running
	// extra is nonzero on any early break: the classic loop counts the
	// broken iteration in Instrs even though the instruction did not
	// complete, plus any instructions a span completed before a trap.
	var extra int64

	if quantum <= 0 {
		sys.AddCycles(proc, 0)
		return Running
	}
	// Classic iteration order at n == 0: count the instruction, check
	// the clock bound (n&15 == 0 holds), then the frame stack.
	if sys.Clock(proc) >= climit {
		sys.AddCycles(proc, 0)
		t.Instrs++
		return Running
	}
	k.check = 16
	if len(t.frames) == 0 {
		sys.AddCycles(proc, 0)
		t.Instrs++
		return Done
	}

	f := &t.frames[len(t.frames)-1]
	cfn := f.cfn
	if cfn == nil {
		cfn = t.cp.fns[f.fn]
		f.cfn = cfn
	}
	k.f = f
	k.r = f.regs
	pc := f.pc
	ops := cfn.ops

	for n < quantum {
		if k.check == 0 {
			if sys.Clock(proc)+k.cyc >= climit {
				f.pc = pc
				extra = 1
				goto done
			}
			k.check = 16
		}
		if pc >= len(ops) {
			// Fell off the end: the classic loop traps with the pc still
			// unincremented (trap reports f.pc-1); preserve that.
			f.pc = pc
			status = t.trap(f, "fell off end of function")
			extra = 1
			goto done
		}
		{
			op := &ops[pc]
			w := int(op.n)
			if w > 1 && (w > quantum-n ||
				(k.check < w && (k.check > int(op.pure) ||
					sys.Clock(proc)+k.cyc+op.prefix[k.check] >= climit))) {
				// The span does not fit the quantum, or a checkpoint falls
				// inside it and either it lies past the span's first Ld/St
				// (break undecidable up front) or the cost prefix says the
				// classic loop would break there: single-step so the break
				// lands exactly where the classic loop breaks.
				op = &cfn.singles[pc]
				w = 1
			}
			switch op.run(k) {
			case exRun:
				k.cyc += op.cost
				n += w
				pc += w
				k.check -= w
				if k.check < 0 {
					k.check += 16
				}
			case exJump:
				k.cyc += op.cost
				n += w
				pc = k.pc
				k.check -= w
				if k.check < 0 {
					k.check += 16
				}
			case exFrame:
				// Call or Ret switched frames (and may have grown the
				// frames slice): reload every cached pointer.
				n++
				k.check--
				f = &t.frames[len(t.frames)-1]
				cfn = f.cfn
				if cfn == nil {
					cfn = t.cp.fns[f.fn]
					f.cfn = cfn
				}
				ops = cfn.ops
				k.f = f
				k.r = f.regs
				pc = f.pc
			case exStop:
				// The closure set f.pc itself; k.done holds how many span
				// instructions completed before a mid-span trap (0 for
				// single-instruction stops).
				status = k.status
				extra = int64(k.done) + 1
				k.done = 0
				goto done
			}
		}
	}
	// Quantum exhausted: the resume point is the next undispatched pc.
	f.pc = pc

done:
	sys.AddCycles(proc, k.cyc)
	k.cyc = 0
	k.f = nil
	k.r = nil
	t.Instrs += int64(n) + extra
	return status
}
