package bytecode

// blocks.go is the analysis half of the compiled execution tier: it
// classifies opcodes by how the translator (compile.go) may treat them.
// Straight-line spans of bare/trap/memory instructions — optionally
// ending in a branch — become fused closures with compile-time cycle
// prefixes; everything gated leaves the fast path and re-enters the
// shared interpreter semantics.
//
// The classification looks only at opcodes, never at immediates, so it
// is valid before and after relocation patching.

// opClass classifies an opcode for the translator.
type opClass uint8

const (
	// classBare: pure register arithmetic — no trap, no branch, no
	// memory, no clock flush. Fusable into straight-line runs.
	classBare opClass = iota
	// classTrap: register arithmetic that can trap (divides, GetArg).
	// Compiled as a dedicated closure; a trapping instruction accounts
	// its exact position and cycle prefix within the span.
	classTrap
	// classBranch: control transfer within the function. May terminate
	// a span but never appears mid-span.
	classBranch
	// classMem: Ld/St — flushes the pending cycles into the clock and
	// runs through the memory system.
	classMem
	// classGated: leaves the compiled fast path and re-enters the shared
	// interpreter semantics (Call/Ret/ParCall/RTC/Halt and unknown ops).
	classGated
)

// classify returns the opClass of an opcode.
func classify(op Op) opClass {
	switch op {
	case Nop, LdI, Mov, Add, Sub, Mul, Neg, NotL,
		AddF, SubF, MulF, DivF, NegF, CvtIF, CvtFI,
		MinI, MaxI, MinF, MaxF, AbsI, AbsF, SqrtF,
		CmpLt, CmpLe, CmpEq, CmpNe, CmpLtF, CmpLeF, CmpEqF, CmpNeF,
		MyidOp, NprocsOp, SetArg:
		return classBare
	case DivI, ModI, FpDivI, FpModI, GetArg:
		return classTrap
	case Jmp, Bz, Bnz, Blt, Ble, Bgt, Bge, Beq, Bne:
		return classBranch
	case Ld, St:
		return classMem
	default:
		return classGated
	}
}
