package bytecode

import (
	"math"
	"testing"

	"dsmdist/internal/machine"
	"dsmdist/internal/memsim"
	"dsmdist/internal/ospage"
)

type nopRT struct{ calls [][]int64 }

func (r *nopRT) RTCall(t *Thread, id int, args []int64) (int64, error) {
	rec := append([]int64{int64(id)}, args...)
	r.calls = append(r.calls, rec)
	return 42, nil
}

func testEnv(t *testing.T) (*memsim.System, *Costs) {
	t.Helper()
	cfg := machine.Tiny(2)
	sys, err := memsim.New(cfg, ospage.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return sys, NewCosts(cfg)
}

func runFn(t *testing.T, sys *memsim.System, costs *Costs, prog *Program, args []int64) *Thread {
	t.Helper()
	stack := sys.Alloc(4096, 8)
	th := NewThread(0, sys, prog, &nopRT{}, costs, prog.Main, args, stack, stack+4096)
	for i := 0; i < 1000; i++ {
		switch th.Step(1000) {
		case Done:
			if th.Err != nil {
				t.Fatalf("thread error: %v", th.Err)
			}
			return th
		case AtParCall:
			t.Fatal("unexpected parcall")
		}
	}
	t.Fatal("did not terminate")
	return nil
}

// prog1 builds a single-function program from code.
func prog1(nregs int, code []Instr) *Program {
	return &Program{
		Fns:  []*Fn{{Name: "main", Code: code, NRegs: nregs}},
		Main: 0,
	}
}

func TestArithmetic(t *testing.T) {
	sys, costs := testEnv(t)
	// r1=7, r2=3, r3=r1/r2, r4=r1%r2, r5=r1*r2; store into memory via Halt-visible regs
	base := sys.Alloc(64, 8)
	code := []Instr{
		{Op: LdI, A: 1, Imm: 7},
		{Op: LdI, A: 2, Imm: 3},
		{Op: DivI, A: 3, B: 1, C: 2},
		{Op: ModI, A: 4, B: 1, C: 2},
		{Op: Mul, A: 5, B: 1, C: 2},
		{Op: LdI, A: 6, Imm: base},
		{Op: St, A: 3, B: 6, Imm: 0},
		{Op: St, A: 4, B: 6, Imm: 8},
		{Op: St, A: 5, B: 6, Imm: 16},
		{Op: Halt},
	}
	runFn(t, sys, costs, prog1(8, code), nil)
	if sys.Peek(base) != 2 || sys.Peek(base+8) != 1 || sys.Peek(base+16) != 21 {
		t.Fatalf("got %d %d %d", sys.Peek(base), sys.Peek(base+8), sys.Peek(base+16))
	}
}

func TestFloatOps(t *testing.T) {
	sys, costs := testEnv(t)
	base := sys.Alloc(64, 8)
	code := []Instr{
		{Op: LdI, A: 1, Imm: fbits(2.5)},
		{Op: LdI, A: 2, Imm: fbits(4.0)},
		{Op: MulF, A: 3, B: 1, C: 2},
		{Op: SqrtF, A: 4, B: 2},
		{Op: LdI, A: 5, Imm: 3},
		{Op: CvtIF, A: 5, B: 5},
		{Op: LdI, A: 6, Imm: base},
		{Op: St, A: 3, B: 6, Imm: 0},
		{Op: St, A: 4, B: 6, Imm: 8},
		{Op: St, A: 5, B: 6, Imm: 16},
		{Op: Halt},
	}
	runFn(t, sys, costs, prog1(8, code), nil)
	if sys.PeekFloat(base) != 10.0 || sys.PeekFloat(base+8) != 2.0 || sys.PeekFloat(base+16) != 3.0 {
		t.Fatalf("floats: %v %v %v", sys.PeekFloat(base), sys.PeekFloat(base+8), sys.PeekFloat(base+16))
	}
}

func TestLoopSum(t *testing.T) {
	sys, costs := testEnv(t)
	base := sys.Alloc(64, 8)
	// sum 1..10 = 55
	code := []Instr{
		{Op: LdI, A: 1, Imm: 0},  // sum
		{Op: LdI, A: 2, Imm: 1},  // i
		{Op: LdI, A: 3, Imm: 10}, // n
		{Op: LdI, A: 4, Imm: 1},
		// loop:
		{Op: Bgt, A: 2, B: 3, C: 8}, // if i > n goto done(8)
		{Op: Add, A: 1, B: 1, C: 2},
		{Op: Add, A: 2, B: 2, C: 4},
		{Op: Jmp, A: 4},
		// done:
		{Op: LdI, A: 5, Imm: base},
		{Op: St, A: 1, B: 5, Imm: 0},
		{Op: Halt},
	}
	runFn(t, sys, costs, prog1(8, code), nil)
	if got := int64(sys.Peek(base)); got != 55 {
		t.Fatalf("sum = %d", got)
	}
}

func TestCallRetArgs(t *testing.T) {
	sys, costs := testEnv(t)
	base := sys.Alloc(64, 8)
	sys.Poke(base, 5)
	// callee: mem[arg0] = mem[arg0] * 2
	callee := &Fn{Name: "dbl", NRegs: 4, NArgs: 1, Code: []Instr{
		{Op: GetArg, A: 1, B: 0},
		{Op: Ld, A: 2, B: 1, Imm: 0},
		{Op: Add, A: 2, B: 2, C: 2},
		{Op: St, A: 2, B: 1, Imm: 0},
		{Op: Ret},
	}}
	main := &Fn{Name: "main", NRegs: 4, Code: []Instr{
		{Op: LdI, A: 1, Imm: base},
		{Op: SetArg, A: 0, B: 1},
		{Op: Call, Imm: 1, C: 1},
		{Op: Halt},
	}}
	prog := &Program{Fns: []*Fn{main, callee}, Main: 0}
	runFn(t, sys, costs, prog, nil)
	if got := int64(sys.Peek(base)); got != 10 {
		t.Fatalf("callee effect = %d", got)
	}
}

func TestFramePointerStack(t *testing.T) {
	sys, costs := testEnv(t)
	// Function with FrameBytes: store 9 at FP+0, load back, write to result.
	res := sys.Alloc(8, 8)
	fn := &Fn{Name: "main", NRegs: 4, FrameBytes: 16, Code: []Instr{
		{Op: LdI, A: 1, Imm: 9},
		{Op: St, A: 1, B: FPReg, Imm: 0},
		{Op: Ld, A: 2, B: FPReg, Imm: 0},
		{Op: LdI, A: 3, Imm: res},
		{Op: St, A: 2, B: 3, Imm: 0},
		{Op: Halt},
	}}
	prog := &Program{Fns: []*Fn{fn}, Main: 0}
	runFn(t, sys, costs, prog, nil)
	if got := int64(sys.Peek(res)); got != 9 {
		t.Fatalf("frame storage = %d", got)
	}
}

func TestParCallSuspends(t *testing.T) {
	sys, costs := testEnv(t)
	region := &Fn{Name: "region", NRegs: 2, NArgs: 1, IsRegion: true, Code: []Instr{{Op: Ret}}}
	main := &Fn{Name: "main", NRegs: 4, Code: []Instr{
		{Op: LdI, A: 2, Imm: 77},
		{Op: ParCall, Imm: 1, A: 2, C: 1},
		{Op: Halt},
	}}
	prog := &Program{Fns: []*Fn{main, region}, Main: 0}
	stack := sys.Alloc(4096, 8)
	th := NewThread(0, sys, prog, &nopRT{}, costs, 0, nil, stack, stack+4096)
	st := th.Step(100)
	if st != AtParCall {
		t.Fatalf("status = %v", st)
	}
	if th.ParFn != 1 || len(th.ParArgs) != 1 || th.ParArgs[0] != 77 {
		t.Fatalf("parcall state = %d %v", th.ParFn, th.ParArgs)
	}
	th.Resume()
	if st := th.Step(100); st != Done || th.Err != nil {
		t.Fatalf("after resume: %v err=%v", st, th.Err)
	}
}

func TestRTCDispatch(t *testing.T) {
	sys, costs := testEnv(t)
	rt := &nopRT{}
	fn := &Fn{Name: "main", NRegs: 6, Code: []Instr{
		{Op: LdI, A: 2, Imm: 11},
		{Op: LdI, A: 3, Imm: 22},
		{Op: RTC, A: RTPortionLo, B: 2, C: 2},
		{Op: Halt},
	}}
	prog := &Program{Fns: []*Fn{fn}, Main: 0}
	stack := sys.Alloc(4096, 8)
	th := NewThread(0, sys, prog, rt, costs, 0, nil, stack, stack+4096)
	if st := th.Step(100); st != Done || th.Err != nil {
		t.Fatalf("status %v err %v", st, th.Err)
	}
	if len(rt.calls) != 1 || rt.calls[0][0] != RTPortionLo || rt.calls[0][1] != 11 || rt.calls[0][2] != 22 {
		t.Fatalf("rt calls = %v", rt.calls)
	}
	if th.frames != nil {
	}
}

func TestTraps(t *testing.T) {
	sys, costs := testEnv(t)
	cases := map[string][]Instr{
		"div by zero": {
			{Op: LdI, A: 1, Imm: 1},
			{Op: LdI, A: 2, Imm: 0},
			{Op: DivI, A: 3, B: 1, C: 2},
			{Op: Halt},
		},
		"bad load": {
			{Op: LdI, A: 1, Imm: 0},
			{Op: Ld, A: 2, B: 1, Imm: 0},
			{Op: Halt},
		},
		"fall off end": {
			{Op: Nop},
		},
	}
	for name, code := range cases {
		prog := prog1(8, code)
		stack := sys.Alloc(4096, 8)
		th := NewThread(0, sys, prog, &nopRT{}, costs, 0, nil, stack, stack+4096)
		st := th.Step(100)
		if st != Done || th.Err == nil {
			t.Errorf("%s: status=%v err=%v", name, st, th.Err)
		}
	}
}

func TestStackOverflowTrap(t *testing.T) {
	sys, costs := testEnv(t)
	big := &Fn{Name: "big", NRegs: 2, FrameBytes: 1 << 20, Code: []Instr{{Op: Ret}}}
	main := &Fn{Name: "main", NRegs: 2, Code: []Instr{
		{Op: Call, Imm: 1, C: 0},
		{Op: Halt},
	}}
	prog := &Program{Fns: []*Fn{main, big}, Main: 0}
	stack := sys.Alloc(4096, 8)
	th := NewThread(0, sys, prog, &nopRT{}, costs, 0, nil, stack, stack+4096)
	if st := th.Step(100); st != Done || th.Err == nil {
		t.Fatalf("stack overflow undetected: %v %v", st, th.Err)
	}
}

func TestDivCostsDiffer(t *testing.T) {
	// The §7.3 point: FpDivI must be much cheaper than DivI.
	cfg := machine.Origin2000(1)
	costs := NewCosts(cfg)
	if costs.tab[DivI] != 35 {
		t.Fatalf("hardware divide cost %d, want 35", costs.tab[DivI])
	}
	if costs.tab[FpDivI] >= costs.tab[DivI] {
		t.Fatalf("software divide (%d) not cheaper than hardware (%d)",
			costs.tab[FpDivI], costs.tab[DivI])
	}
}

func TestRelocPatch(t *testing.T) {
	prog := prog1(4, []Instr{
		{Op: LdI, A: 1, Imm: 0},
		{Op: Halt},
	})
	prog.Syms = []*DataSym{{Name: "a", Bytes: 64, Align: 8, Addr: 4096}}
	prog.Relocs = []Reloc{{Fn: 0, PC: 0, Sym: 0, Addend: 16}}
	if err := prog.Patch(); err != nil {
		t.Fatal(err)
	}
	if prog.Fns[0].Code[0].Imm != 4112 {
		t.Fatalf("patched imm = %d", prog.Fns[0].Code[0].Imm)
	}
	// Unassigned symbol must fail.
	prog.Syms[0].Addr = 0
	if err := prog.Patch(); err == nil {
		t.Fatal("patch with unassigned symbol accepted")
	}
}

func TestFloatBitsHelpers(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, math.Pi} {
		if ffrom(fbits(v)) != v {
			t.Fatalf("round trip broke for %v", v)
		}
	}
}

func TestFindFn(t *testing.T) {
	prog := &Program{Fns: []*Fn{{Name: "a"}, {Name: "b"}}}
	if prog.FindFn("b") != 1 || prog.FindFn("zz") != -1 {
		t.Fatal("FindFn wrong")
	}
}

func TestStepCyclesBoundsProgress(t *testing.T) {
	sys, costs := testEnv(t)
	base := sys.Alloc(1<<16, int64(sys.Cfg.PageBytes))
	// A long loop of expensive (missing) loads: StepCycles must stop
	// close to the cycle budget rather than running all instructions.
	code := []Instr{
		{Op: LdI, A: 1, Imm: base}, // addr
		{Op: LdI, A: 2, Imm: 0},    // i
		{Op: LdI, A: 3, Imm: 512},  // n
		{Op: LdI, A: 4, Imm: 64},   // stride
		{Op: Bge, A: 2, B: 3, C: 9},
		{Op: Ld, A: 5, B: 1, Imm: 0},
		{Op: Add, A: 1, B: 1, C: 4},
		{Op: LdI, A: 6, Imm: 1},
		{Op: Jmp, A: 4}, // note: pc 7 adds below; simplified
		{Op: Halt},
	}
	// fix the loop: increment i then jump
	code[7] = Instr{Op: Add, A: 2, B: 2, C: 6}
	code[6] = Instr{Op: LdI, A: 6, Imm: 1}
	code = []Instr{
		{Op: LdI, A: 1, Imm: base},
		{Op: LdI, A: 2, Imm: 0},
		{Op: LdI, A: 3, Imm: 512},
		{Op: LdI, A: 4, Imm: 64},
		{Op: LdI, A: 6, Imm: 1},
		// loop:
		{Op: Bge, A: 2, B: 3, C: 10},
		{Op: Ld, A: 5, B: 1, Imm: 0},
		{Op: Add, A: 1, B: 1, C: 4},
		{Op: Add, A: 2, B: 2, C: 6},
		{Op: Jmp, A: 5},
		// done:
		{Op: Halt},
	}
	prog := prog1(8, code)
	stack := sys.Alloc(4096, 8)
	th := NewThread(0, sys, prog, &nopRT{}, costs, 0, nil, stack, stack+4096)
	st := th.StepCycles(1<<20, 2000)
	if st != Running {
		t.Fatalf("status = %v (finished under a tight cycle budget?)", st)
	}
	c := sys.Clock(0)
	// Budget 2000: should stop within a couple of misses of it.
	if c < 2000 || c > 2000+1000 {
		t.Fatalf("clock after StepCycles(…, 2000) = %d", c)
	}
	// And it must still finish eventually.
	for i := 0; i < 10000; i++ {
		if th.StepCycles(1<<20, 1<<40) == Done {
			if th.Err != nil {
				t.Fatal(th.Err)
			}
			return
		}
	}
	t.Fatal("did not finish")
}
