package bytecode

// ThreadSnapshot captures everything a Thread owns privately — its call
// stack (register files, out-arg buffers, program counters), stack
// pointer, pending parallel-region descriptor, operation counters, and
// error slot. The parallel execution engine snapshots each thread before
// an epoch's speculative pass so a conflicting epoch can be rolled back
// and re-run serially.
//
// The snapshot does NOT cover simulated-machine state (clocks, caches,
// TLB, memory): memsim journals that separately (see memsim scout mode).
type ThreadSnapshot struct {
	sp      int64
	parFn   int
	parArgs []int64
	hwDiv   int64
	softDiv int64
	instrs  int64
	err     error
	frames  []frame
}

// Snapshot deep-copies the thread's private state. Register files,
// out-arg buffers, and incoming `args` vectors are all copied: args used
// to be shared (the interpreter never writes through them), but the frame
// free list recycles a popped frame's args buffer into later Calls, so a
// snapshot that shared it could see the buffer rewritten before Restore.
func (t *Thread) Snapshot() *ThreadSnapshot {
	s := &ThreadSnapshot{
		sp:      t.SP,
		parFn:   t.ParFn,
		parArgs: t.ParArgs,
		hwDiv:   t.HwDiv,
		softDiv: t.SoftDiv,
		instrs:  t.Instrs,
		err:     t.Err,
		frames:  make([]frame, len(t.frames)),
	}
	for i := range t.frames {
		f := &t.frames[i]
		// The copied args buffer belongs to the snapshot, so a restored
		// frame may always recycle it at Ret (ownArgs true when present).
		nf := frame{fn: f.fn, pc: f.pc, savedSP: f.savedSP, cfn: f.cfn, ownArgs: f.args != nil}
		if f.args != nil {
			nf.args = make([]int64, len(f.args))
			copy(nf.args, f.args)
		}
		if f.regs != nil {
			nf.regs = make([]int64, len(f.regs))
			copy(nf.regs, f.regs)
		}
		if f.outArgs != nil {
			nf.outArgs = make([]int64, len(f.outArgs))
			copy(nf.outArgs, f.outArgs)
		}
		s.frames[i] = nf
	}
	return s
}

// Restore rewinds the thread to the snapshotted state. The snapshot's
// buffers are installed directly (not re-copied), so a snapshot may be
// restored at most once; take a fresh one for each speculative attempt.
func (t *Thread) Restore(s *ThreadSnapshot) {
	t.SP = s.sp
	t.ParFn = s.parFn
	t.ParArgs = s.parArgs
	t.HwDiv = s.hwDiv
	t.SoftDiv = s.softDiv
	t.Instrs = s.instrs
	t.Err = s.err
	t.frames = t.frames[:0]
	t.frames = append(t.frames, s.frames...)
}
