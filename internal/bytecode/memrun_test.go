package bytecode

import (
	"testing"

	"dsmdist/internal/machine"
	"dsmdist/internal/memsim"
	"dsmdist/internal/ospage"
)

// TestFindMemRuns pins the recognizer: affine address tracking through
// the bare prefix, same-op grouping with interleaved bares, the store
// value-hazard cut, and the profitability gate on stride.
func TestFindMemRuns(t *testing.T) {
	fn := &Fn{Code: []Instr{
		{Op: LdI, A: 1, Imm: 100},
		{Op: Ld, A: 2, B: 1, Imm: 0},  // 1
		{Op: Add, A: 3, B: 2, C: 2},   // 2: interleaved bare
		{Op: Ld, A: 4, B: 1, Imm: 8},  // 3
		{Op: Ld, A: 2, B: 1, Imm: 16}, // 4: dest reuse is fine for loads
		{Op: St, A: 3, B: 1, Imm: 0},  // 5
		{Op: St, A: 4, B: 1, Imm: 8},  // 6
	}}
	runs := findMemRuns(fn, 0, len(fn.Code), 32)
	if len(runs) != 2 {
		t.Fatalf("want 2 runs, got %+v", runs)
	}
	ld, st := runs[0], runs[1]
	if ld.op != Ld || ld.stride != 8 || len(ld.mems) != 3 || ld.mems[0] != 1 || ld.mems[2] != 4 {
		t.Errorf("load run wrong: %+v", ld)
	}
	if st.op != St || st.stride != 8 || len(st.mems) != 2 || st.first != 5 {
		t.Errorf("store run wrong: %+v", st)
	}

	// An interleaved bare writing a later store's value register must cut
	// the run: values are captured at run start.
	hazard := &Fn{Code: []Instr{
		{Op: LdI, A: 1, Imm: 100},
		{Op: St, A: 2, B: 1, Imm: 0},
		{Op: Add, A: 3, B: 3, C: 3},
		{Op: St, A: 3, B: 1, Imm: 8},
	}}
	if runs := findMemRuns(hazard, 0, len(hazard.Code), 32); len(runs) != 0 {
		t.Errorf("store hazard not cut: %+v", runs)
	}

	// Writing the address register with an untracked op kills the affine
	// chain; the second load has no known delta.
	killed := &Fn{Code: []Instr{
		{Op: LdI, A: 1, Imm: 100},
		{Op: Ld, A: 2, B: 1, Imm: 0},
		{Op: Ld, A: 1, B: 2, Imm: 0}, // address reg now data-dependent
		{Op: Ld, A: 3, B: 1, Imm: 8},
	}}
	if runs := findMemRuns(killed, 0, len(killed.Code), 32); len(runs) != 0 {
		t.Errorf("address kill missed: %+v", runs)
	}

	// The profitability gate: a "run" striding a whole L1 line (or two
	// distant arrays) per word gains nothing from batching.
	wide := &Fn{Code: []Instr{
		{Op: LdI, A: 1, Imm: 100},
		{Op: Ld, A: 2, B: 1, Imm: 0},
		{Op: Ld, A: 3, B: 1, Imm: 4096},
		{Op: Ld, A: 4, B: 1, Imm: 8192},
	}}
	if runs := findMemRuns(wide, 0, len(wide.Code), 32); len(runs) != 0 {
		t.Errorf("wide stride not gated: %+v", runs)
	}
	if runs := findMemRuns(wide, 0, len(wide.Code), 8192); len(runs) != 1 {
		t.Errorf("raised gate should admit the run: %+v", runs)
	}
}

// runProg builds a loop whose body holds a unit-stride load run with
// interleaved bares and a unit-stride store run, marching both through
// memory — the shape the run members batch.
func runProg(base int64, iters int64) *Program {
	code := []Instr{
		{Op: LdI, A: 1, Imm: 0},     // sum
		{Op: LdI, A: 2, Imm: 0},     // i
		{Op: LdI, A: 3, Imm: iters}, // n
		{Op: LdI, A: 4, Imm: 1},
		{Op: LdI, A: 5, Imm: base}, // ptr
		{Op: LdI, A: 8, Imm: 64},   // ptr advance
		// loop:
		{Op: Bge, A: 2, B: 3, C: 20}, // pc6
		{Op: Ld, A: 6, B: 5, Imm: 0},
		{Op: Add, A: 1, B: 1, C: 6}, // interleaved bare
		{Op: Ld, A: 7, B: 5, Imm: 8},
		{Op: Ld, A: 6, B: 5, Imm: 16},
		{Op: Add, A: 1, B: 1, C: 7},
		{Op: Ld, A: 7, B: 5, Imm: 24}, // load run of 4, stride 8
		{Op: Add, A: 1, B: 1, C: 6},
		{Op: Add, A: 1, B: 1, C: 7},
		{Op: St, A: 1, B: 5, Imm: 32},
		{Op: St, A: 2, B: 5, Imm: 40}, // store run of 2, stride 8
		{Op: Add, A: 5, B: 5, C: 8},   // ptr += 64
		{Op: Add, A: 2, B: 2, C: 4},   // i++
		{Op: Jmp, A: 6},               // pc19
		{Op: Halt},                    // pc20
	}
	return prog1(10, code)
}

// newRunThread builds an isolated machine running runProg; memrun
// selects SetMemRun on the system (the compiled tier always emits run
// members — the toggle switches memsim's walk under them).
func newRunThread(t *testing.T, compiled, memrun bool, iters int64) *Thread {
	t.Helper()
	cfg := machine.Tiny(2)
	sys, err := memsim.New(cfg, ospage.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMemRun(memrun)
	costs := NewCosts(cfg)
	base := sys.Alloc(iters*64+64, 8)
	for a := base; a < base+iters*64; a += 8 {
		sys.Poke(a, uint64(a))
	}
	prog := runProg(base, iters)
	stack := sys.Alloc(4096, 8)
	th := NewThread(0, sys, prog, &nopRT{}, costs, prog.Main, nil, stack, stack+4096)
	if compiled {
		th.UseCompiled(CompileProgram(prog, costs))
	}
	return th
}

// TestRunTierIdentity locksteps the classic interpreter against the
// compiled tier with run members enabled and disabled (SetMemRun), over
// awkward quantum/cycle-bound schedules, demanding identical break
// points, instruction counts and clocks throughout — the run member's
// whole contract.
func TestRunTierIdentity(t *testing.T) {
	classic := newRunThread(t, false, true, 800)
	compiled := newRunThread(t, true, true, 800)
	wordwise := newRunThread(t, true, false, 800)

	quanta := []int{7, 16, 17, 3, 100, 1000}
	bounds := []int64{33, 48, 64, 100, 250, 1 << 62}
	for step := 0; ; step++ {
		q := quanta[step%len(quanta)]
		m := bounds[step%len(bounds)]
		sc := classic.StepCycles(q, m)
		sk := compiled.StepCycles(q, m)
		sw := wordwise.StepCycles(q, m)
		if sc != sk || sc != sw {
			t.Fatalf("step %d (q=%d maxCyc=%d): status %v vs %v vs %v", step, q, m, sc, sk, sw)
		}
		if classic.Instrs != compiled.Instrs || classic.Instrs != wordwise.Instrs {
			t.Fatalf("step %d: instrs %d vs %d vs %d",
				step, classic.Instrs, compiled.Instrs, wordwise.Instrs)
		}
		cc := classic.Sys.Clock(0)
		if kc, wc := compiled.Sys.Clock(0), wordwise.Sys.Clock(0); cc != kc || cc != wc {
			t.Fatalf("step %d: clock %d vs %d vs %d", step, cc, kc, wc)
		}
		if sc == Done {
			if classic.Err != nil || compiled.Err != nil || wordwise.Err != nil {
				t.Fatalf("errors: %v / %v / %v", classic.Err, compiled.Err, wordwise.Err)
			}
			break
		}
		if step > 500000 {
			t.Fatal("did not terminate")
		}
	}
	// The machines ended in identical states; spot-check the stats too.
	for q := 0; q < 2; q++ {
		if a, b := classic.Sys.Stats(q), compiled.Sys.Stats(q); a != b {
			t.Errorf("proc %d stats classic vs compiled:\n %+v\n %+v", q, a, b)
		}
		if a, b := classic.Sys.Stats(q), wordwise.Sys.Stats(q); a != b {
			t.Errorf("proc %d stats classic vs memrun-off:\n %+v\n %+v", q, a, b)
		}
	}
}

// TestRunTrapIdentity drives a run whose later member crosses below the
// valid address floor: the compiled run member must detect the
// out-of-bounds word up front, fall back to the exact member list, and
// trap at the same instruction, cycle and message as the classic loop.
func TestRunTrapIdentity(t *testing.T) {
	mk := func(compiled bool) *Thread {
		cfg := machine.Tiny(2)
		sys, err := memsim.New(cfg, ospage.New(cfg))
		if err != nil {
			t.Fatal(err)
		}
		costs := NewCosts(cfg)
		sys.Alloc(4096, 8) // make [8, Brk) non-trivial
		code := []Instr{
			{Op: LdI, A: 5, Imm: 32},
			{Op: Ld, A: 1, B: 5, Imm: 0},   // addr 32
			{Op: Ld, A: 2, B: 5, Imm: 8},   // addr 40
			{Op: Ld, A: 3, B: 5, Imm: 16},  // addr 48: run of 3, stride 8
			{Op: Mov, A: 6, B: 1},          //
			{Op: Ld, A: 4, B: 5, Imm: -32}, // addr 0: separate, traps
			{Op: Halt},
		}
		prog := prog1(8, code)
		stack := sys.Alloc(4096, 8)
		th := NewThread(0, sys, prog, &nopRT{}, costs, prog.Main, nil, stack, stack+4096)
		if compiled {
			th.UseCompiled(CompileProgram(prog, costs))
		}
		return th
	}
	classic, compiled := mk(false), mk(true)
	sc, sk := classic.Step(100), compiled.Step(100)
	if sc != Done || sk != Done {
		t.Fatalf("status %v vs %v", sc, sk)
	}
	if classic.Err == nil || compiled.Err == nil {
		t.Fatalf("expected traps, got %v vs %v", classic.Err, compiled.Err)
	}
	if classic.Err.Error() != compiled.Err.Error() {
		t.Fatalf("trap messages differ:\n  classic:  %v\n  compiled: %v", classic.Err, compiled.Err)
	}
	if classic.Instrs != compiled.Instrs {
		t.Fatalf("instrs %d vs %d", classic.Instrs, compiled.Instrs)
	}
	if cc, kc := classic.Sys.Clock(0), compiled.Sys.Clock(0); cc != kc {
		t.Fatalf("clock %d vs %d", cc, kc)
	}
}

// TestRunTrapMidRun puts the out-of-bounds word inside the run itself
// (a descending-address member list cannot occur under the gate, so the
// variant here runs ascending into Brk).
func TestRunTrapMidRun(t *testing.T) {
	mk := func(compiled bool) *Thread {
		cfg := machine.Tiny(2)
		sys, err := memsim.New(cfg, ospage.New(cfg))
		if err != nil {
			t.Fatal(err)
		}
		costs := NewCosts(cfg)
		base := sys.Alloc(64, 8)
		stack := sys.Alloc(4096, 8)
		top := sys.Brk()
		code := []Instr{
			{Op: LdI, A: 5, Imm: top - 16},
			{Op: St, A: 5, B: 5, Imm: 0},  // top-16: fine
			{Op: St, A: 5, B: 5, Imm: 8},  // top-8: fine
			{Op: St, A: 5, B: 5, Imm: 16}, // top+8: traps mid-run
			{Op: St, A: 5, B: 5, Imm: 24},
			{Op: Halt},
		}
		_ = base
		prog := prog1(8, code)
		th := NewThread(0, sys, prog, &nopRT{}, costs, prog.Main, nil, stack, stack+4096)
		if compiled {
			th.UseCompiled(CompileProgram(prog, costs))
		}
		return th
	}
	classic, compiled := mk(false), mk(true)
	sc, sk := classic.Step(100), compiled.Step(100)
	if sc != Done || sk != Done {
		t.Fatalf("status %v vs %v", sc, sk)
	}
	if classic.Err == nil || compiled.Err == nil {
		t.Fatalf("expected traps, got %v vs %v", classic.Err, compiled.Err)
	}
	if classic.Err.Error() != compiled.Err.Error() {
		t.Fatalf("trap messages differ:\n  classic:  %v\n  compiled: %v", classic.Err, compiled.Err)
	}
	if classic.Instrs != compiled.Instrs {
		t.Fatalf("instrs %d vs %d", classic.Instrs, compiled.Instrs)
	}
	if cc, kc := classic.Sys.Clock(0), compiled.Sys.Clock(0); cc != kc {
		t.Fatalf("clock %d vs %d", cc, kc)
	}
}
