package ir

import (
	"fmt"
	"strings"
)

// CloneExpr deep-copies an expression (symbols are shared, structure is
// copied). The peeling transformation duplicates loop bodies with it.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *ConstInt:
		c := *x
		return &c
	case *ConstReal:
		c := *x
		return &c
	case *VarRef:
		c := *x
		return &c
	case *ArrayRef:
		c := &ArrayRef{Sym: x.Sym, Idx: make([]Expr, len(x.Idx))}
		for i, ix := range x.Idx {
			c.Idx[i] = CloneExpr(ix)
		}
		return c
	case *Bin:
		return &Bin{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R), Ty: x.Ty}
	case *Un:
		return &Un{Not: x.Not, X: CloneExpr(x.X), Ty: x.Ty}
	case *Cvt:
		return &Cvt{X: CloneExpr(x.X), To: x.To}
	case *Intrinsic:
		c := &Intrinsic{Op: x.Op, Ty: x.Ty, Args: make([]Expr, len(x.Args))}
		for i, a := range x.Args {
			c.Args[i] = CloneExpr(a)
		}
		return c
	case *Myid:
		return &Myid{}
	case *Nprocs:
		return &Nprocs{}
	case *DescField:
		c := *x
		return &c
	case *PortionBase:
		return &PortionBase{Sym: x.Sym, Proc: CloneExpr(x.Proc)}
	case *MemRef:
		return &MemRef{Addr: CloneExpr(x.Addr), Ty: x.Ty}
	case *ArrayBase:
		c := *x
		return &c
	case *ArgArray:
		c := *x
		return &c
	case *RTFunc:
		c := &RTFunc{Kind: x.Kind, Sym: x.Sym, Args: make([]Expr, len(x.Args))}
		for i, a := range x.Args {
			c.Args[i] = CloneExpr(a)
		}
		return c
	}
	panic(fmt.Sprintf("ir: CloneExpr: unknown node %T", e))
}

// CloneStmt deep-copies a statement.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *Assign:
		return &Assign{Lhs: CloneExpr(x.Lhs), Rhs: CloneExpr(x.Rhs)}
	case *Do:
		d := &Do{Var: x.Var, Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi),
			Body: CloneStmts(x.Body), Par: x.Par, Line: x.Line, NoDivMod: x.NoDivMod}
		if x.Step != nil {
			d.Step = CloneExpr(x.Step)
		}
		return d
	case *If:
		return &If{Cond: CloneExpr(x.Cond), Then: CloneStmts(x.Then), Else: CloneStmts(x.Else)}
	case *CallStmt:
		c := &CallStmt{Callee: x.Callee, Line: x.Line, Args: make([]Expr, len(x.Args))}
		for i, a := range x.Args {
			c.Args[i] = CloneExpr(a)
		}
		return c
	case *Return:
		return &Return{}
	case *Redist:
		c := *x
		return &c
	case *Barrier:
		return &Barrier{}
	case *TimerMark:
		c := *x
		return &c
	case *Region:
		return &Region{Par: x.Par, Body: CloneStmts(x.Body)}
	}
	panic(fmt.Sprintf("ir: CloneStmt: unknown node %T", s))
}

// CloneStmts deep-copies a statement list.
func CloneStmts(ss []Stmt) []Stmt {
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = CloneStmt(s)
	}
	return out
}

// WalkExpr visits e and all sub-expressions, pre-order. Returning false
// from f stops descent into that subtree.
func WalkExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch x := e.(type) {
	case *ArrayRef:
		for _, ix := range x.Idx {
			WalkExpr(ix, f)
		}
	case *Bin:
		WalkExpr(x.L, f)
		WalkExpr(x.R, f)
	case *Un:
		WalkExpr(x.X, f)
	case *Cvt:
		WalkExpr(x.X, f)
	case *Intrinsic:
		for _, a := range x.Args {
			WalkExpr(a, f)
		}
	case *PortionBase:
		WalkExpr(x.Proc, f)
	case *MemRef:
		WalkExpr(x.Addr, f)
	case *RTFunc:
		for _, a := range x.Args {
			WalkExpr(a, f)
		}
	}
}

// WalkStmts visits every statement in the list (recursively) and every
// expression inside each, pre-order.
func WalkStmts(ss []Stmt, fs func(Stmt) bool, fe func(Expr) bool) {
	for _, s := range ss {
		walkStmt(s, fs, fe)
	}
}

func walkStmt(s Stmt, fs func(Stmt) bool, fe func(Expr) bool) {
	if fs != nil && !fs(s) {
		return
	}
	we := func(e Expr) {
		if fe != nil && e != nil {
			WalkExpr(e, fe)
		}
	}
	switch x := s.(type) {
	case *Assign:
		we(x.Lhs)
		we(x.Rhs)
	case *Do:
		we(x.Lo)
		we(x.Hi)
		we(x.Step)
		WalkStmts(x.Body, fs, fe)
	case *If:
		we(x.Cond)
		WalkStmts(x.Then, fs, fe)
		WalkStmts(x.Else, fs, fe)
	case *CallStmt:
		for _, a := range x.Args {
			we(a)
		}
	case *Region:
		WalkStmts(x.Body, fs, fe)
	case *Redist, *Return, *Barrier, *TimerMark:
	}
}

// MapExprs rewrites every expression in a statement list in place by
// applying f bottom-up to each expression tree root position (statement
// operands). f receives each full expression and returns its replacement.
func MapExprs(ss []Stmt, f func(Expr) Expr) {
	for _, s := range ss {
		mapStmtExprs(s, f)
	}
}

func mapStmtExprs(s Stmt, f func(Expr) Expr) {
	switch x := s.(type) {
	case *Assign:
		x.Lhs = f(x.Lhs)
		x.Rhs = f(x.Rhs)
	case *Do:
		x.Lo = f(x.Lo)
		x.Hi = f(x.Hi)
		if x.Step != nil {
			x.Step = f(x.Step)
		}
		MapExprs(x.Body, f)
	case *If:
		x.Cond = f(x.Cond)
		MapExprs(x.Then, f)
		MapExprs(x.Else, f)
	case *CallStmt:
		for i, a := range x.Args {
			x.Args[i] = f(a)
		}
	case *Region:
		MapExprs(x.Body, f)
	}
}

// RewriteExpr applies f bottom-up over an expression tree, replacing each
// node with f's result.
func RewriteExpr(e Expr, f func(Expr) Expr) Expr {
	switch x := e.(type) {
	case *ArrayRef:
		for i, ix := range x.Idx {
			x.Idx[i] = RewriteExpr(ix, f)
		}
	case *Bin:
		x.L = RewriteExpr(x.L, f)
		x.R = RewriteExpr(x.R, f)
	case *Un:
		x.X = RewriteExpr(x.X, f)
	case *Cvt:
		x.X = RewriteExpr(x.X, f)
	case *Intrinsic:
		for i, a := range x.Args {
			x.Args[i] = RewriteExpr(a, f)
		}
	case *PortionBase:
		x.Proc = RewriteExpr(x.Proc, f)
	case *MemRef:
		x.Addr = RewriteExpr(x.Addr, f)
	case *RTFunc:
		for i, a := range x.Args {
			x.Args[i] = RewriteExpr(a, f)
		}
	}
	return f(e)
}

// --- Constant folding and expression construction helpers ---

// IntConst extracts a constant integer value.
func IntConst(e Expr) (int64, bool) {
	if c, ok := e.(*ConstInt); ok {
		return c.V, true
	}
	return 0, false
}

// CI builds an integer constant.
func CI(v int64) *ConstInt { return &ConstInt{V: v} }

// IAdd, ISub, IMul, IDiv, IModE build folded integer arithmetic.
func IAdd(l, r Expr) Expr  { return foldBin(Add, l, r) }
func ISub(l, r Expr) Expr  { return foldBin(Sub, l, r) }
func IMul(l, r Expr) Expr  { return foldBin(Mul, l, r) }
func IDiv(l, r Expr) Expr  { return foldBin(Div, l, r) }
func IModE(l, r Expr) Expr { return foldBin(Mod, l, r) }

func foldBin(op BinOp, l, r Expr) Expr {
	lc, lok := IntConst(l)
	rc, rok := IntConst(r)
	if lok && rok {
		switch op {
		case Add:
			return CI(lc + rc)
		case Sub:
			return CI(lc - rc)
		case Mul:
			return CI(lc * rc)
		case Div:
			if rc != 0 {
				return CI(lc / rc)
			}
		case Mod:
			if rc != 0 {
				return CI(lc % rc)
			}
		}
	}
	// Identities.
	switch op {
	case Add:
		if lok && lc == 0 {
			return r
		}
		if rok && rc == 0 {
			return l
		}
	case Sub:
		if rok && rc == 0 {
			return l
		}
	case Mul:
		if lok && lc == 1 {
			return r
		}
		if rok && rc == 1 {
			return l
		}
		if lok && lc == 0 || rok && rc == 0 {
			return CI(0)
		}
	case Div:
		if rok && rc == 1 {
			return l
		}
	case Mod:
		if rok && rc == 1 {
			return CI(0)
		}
	}
	return &Bin{Op: op, L: l, R: r, Ty: Int}
}

// IMinE and IMaxE build folded integer min/max intrinsics.
func IMinE(l, r Expr) Expr {
	if lc, ok := IntConst(l); ok {
		if rc, ok := IntConst(r); ok {
			if lc < rc {
				return CI(lc)
			}
			return CI(rc)
		}
	}
	return &Intrinsic{Op: IMin, Args: []Expr{l, r}, Ty: Int}
}

func IMaxE(l, r Expr) Expr {
	if lc, ok := IntConst(l); ok {
		if rc, ok := IntConst(r); ok {
			if lc > rc {
				return CI(lc)
			}
			return CI(rc)
		}
	}
	return &Intrinsic{Op: IMax, Args: []Expr{l, r}, Ty: Int}
}

// --- Affine subscript analysis ---

// Affine holds the decomposition e == A*Var + C (Var nil means constant).
type Affine struct {
	Var *Sym
	A   int64
	C   int64
}

// MatchAffine decomposes an integer expression into a*v + c where v is a
// scalar variable and a, c are compile-time constants. It accepts sums,
// differences and products of constants with at most one variable
// occurrence chain (the "simple form s*i+c" the paper's optimizations
// require, §7.1).
func MatchAffine(e Expr) (Affine, bool) {
	switch x := e.(type) {
	case *ConstInt:
		return Affine{C: x.V}, true
	case *VarRef:
		if x.Sym.Kind != Scalar || x.Sym.Type != Int {
			return Affine{}, false
		}
		return Affine{Var: x.Sym, A: 1}, true
	case *Un:
		if x.Not {
			return Affine{}, false
		}
		in, ok := MatchAffine(x.X)
		if !ok {
			return Affine{}, false
		}
		return Affine{Var: in.Var, A: -in.A, C: -in.C}, true
	case *Bin:
		l, lok := MatchAffine(x.L)
		r, rok := MatchAffine(x.R)
		if !lok || !rok {
			return Affine{}, false
		}
		switch x.Op {
		case Add, Sub:
			sign := int64(1)
			if x.Op == Sub {
				sign = -1
			}
			switch {
			case l.Var == nil:
				return Affine{Var: r.Var, A: sign * r.A, C: l.C + sign*r.C}, true
			case r.Var == nil:
				return Affine{Var: l.Var, A: l.A, C: l.C + sign*r.C}, true
			case l.Var == r.Var:
				a := l.A + sign*r.A
				v := l.Var
				if a == 0 {
					v = nil
				}
				return Affine{Var: v, A: a, C: l.C + sign*r.C}, true
			}
			return Affine{}, false
		case Mul:
			switch {
			case l.Var == nil:
				return Affine{Var: r.Var, A: l.C * r.A, C: l.C * r.C}, true
			case r.Var == nil:
				return Affine{Var: l.Var, A: r.C * l.A, C: r.C * l.C}, true
			}
			return Affine{}, false
		}
		return Affine{}, false
	}
	return Affine{}, false
}

// --- Printer (debugging and golden tests) ---

// ExprString renders an expression compactly.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *ConstInt:
		return fmt.Sprintf("%d", x.V)
	case *ConstReal:
		return fmt.Sprintf("%g", x.V)
	case *VarRef:
		return x.Sym.Name
	case *ArrayRef:
		parts := make([]string, len(x.Idx))
		for i, ix := range x.Idx {
			parts[i] = ExprString(ix)
		}
		return fmt.Sprintf("%s(%s)", x.Sym.Name, strings.Join(parts, ","))
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.L), x.Op, ExprString(x.R))
	case *Un:
		if x.Not {
			return fmt.Sprintf("(.not. %s)", ExprString(x.X))
		}
		return fmt.Sprintf("(-%s)", ExprString(x.X))
	case *Cvt:
		return fmt.Sprintf("%s(%s)", x.To, ExprString(x.X))
	case *Intrinsic:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", x.Op, strings.Join(parts, ","))
	case *Myid:
		return "MYID"
	case *Nprocs:
		return "NPROCS"
	case *DescField:
		return fmt.Sprintf("desc.%s.%s[%d]", x.Sym.Name, x.Field, x.Dim)
	case *PortionBase:
		return fmt.Sprintf("portion(%s,%s)", x.Sym.Name, ExprString(x.Proc))
	case *MemRef:
		return fmt.Sprintf("mem[%s]", ExprString(x.Addr))
	case *ArrayBase:
		return fmt.Sprintf("base(%s)", x.Sym.Name)
	case *ArgArray:
		return fmt.Sprintf("&%s", x.Sym.Name)
	case *RTFunc:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = ExprString(a)
		}
		name := [...]string{"dsm_numthreads", "dsm_this_thread", "dsm_portion_lo", "dsm_portion_hi", "nest_grid", "dyn_grab"}[x.Kind]
		if x.Sym != nil {
			return fmt.Sprintf("%s(%s%s)", name, x.Sym.Name+",", strings.Join(parts, ","))
		}
		return fmt.Sprintf("%s(%s)", name, strings.Join(parts, ","))
	}
	return fmt.Sprintf("?%T", e)
}

// StmtString renders a statement tree with indentation.
func StmtString(s Stmt) string {
	var b strings.Builder
	printStmt(&b, s, 0)
	return b.String()
}

// StmtsString renders a statement list.
func StmtsString(ss []Stmt) string {
	var b strings.Builder
	for _, s := range ss {
		printStmt(&b, s, 0)
	}
	return b.String()
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	switch x := s.(type) {
	case *Assign:
		fmt.Fprintf(b, "%s%s = %s\n", ind, ExprString(x.Lhs), ExprString(x.Rhs))
	case *Do:
		par := ""
		if x.Par != nil {
			par = " !$par"
		}
		step := ""
		if x.Step != nil {
			step = ", " + ExprString(x.Step)
		}
		fmt.Fprintf(b, "%sdo %s = %s, %s%s%s\n", ind, x.Var.Name, ExprString(x.Lo), ExprString(x.Hi), step, par)
		for _, st := range x.Body {
			printStmt(b, st, depth+1)
		}
		fmt.Fprintf(b, "%send do\n", ind)
	case *If:
		fmt.Fprintf(b, "%sif (%s) then\n", ind, ExprString(x.Cond))
		for _, st := range x.Then {
			printStmt(b, st, depth+1)
		}
		if len(x.Else) > 0 {
			fmt.Fprintf(b, "%selse\n", ind)
			for _, st := range x.Else {
				printStmt(b, st, depth+1)
			}
		}
		fmt.Fprintf(b, "%send if\n", ind)
	case *CallStmt:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = ExprString(a)
		}
		fmt.Fprintf(b, "%scall %s(%s)\n", ind, x.Callee, strings.Join(parts, ","))
	case *Return:
		fmt.Fprintf(b, "%sreturn\n", ind)
	case *Redist:
		fmt.Fprintf(b, "%sredistribute %s %s\n", ind, x.Sym.Name, x.Spec)
	case *Barrier:
		fmt.Fprintf(b, "%sbarrier\n", ind)
	case *TimerMark:
		if x.Stop {
			fmt.Fprintf(b, "%stimer stop\n", ind)
		} else {
			fmt.Fprintf(b, "%stimer start\n", ind)
		}
	case *Region:
		fmt.Fprintf(b, "%sregion\n", ind)
		for _, st := range x.Body {
			printStmt(b, st, depth+1)
		}
		fmt.Fprintf(b, "%send region\n", ind)
	}
}
