package ir

import (
	"strings"
	"testing"
)

func newUnit() *Unit { return &Unit{Name: "u"} }

func scalar(u *Unit, name string, t Type) *Sym {
	return u.AddSym(&Sym{Name: name, Type: t, Kind: Scalar})
}

func TestNewTempUnique(t *testing.T) {
	u := newUnit()
	a := u.NewTemp(Int, "t")
	b := u.NewTemp(Int, "t")
	if a.Name == b.Name || a.ID == b.ID {
		t.Fatalf("temps collide: %v %v", a, b)
	}
	if len(u.Syms) != 2 {
		t.Fatalf("syms = %d", len(u.Syms))
	}
}

func TestMatchAffine(t *testing.T) {
	u := newUnit()
	i := scalar(u, "i", Int)
	k := scalar(u, "k", Int)
	iv := &VarRef{Sym: i}

	cases := []struct {
		e       Expr
		wantVar *Sym
		wantA   int64
		wantC   int64
		ok      bool
	}{
		{CI(7), nil, 0, 7, true},
		{iv, i, 1, 0, true},
		{IAdd(iv, CI(3)), i, 1, 3, true},
		{ISub(&VarRef{Sym: i}, CI(2)), i, 1, -2, true},
		{IMul(CI(5), &VarRef{Sym: i}), i, 5, 0, true},
		{IAdd(IMul(CI(2), &VarRef{Sym: i}), CI(1)), i, 2, 1, true},
		{ISub(CI(10), &VarRef{Sym: i}), i, -1, 10, true},
		// i + k: two variables, not affine in one.
		{&Bin{Op: Add, L: &VarRef{Sym: i}, R: &VarRef{Sym: k}, Ty: Int}, nil, 0, 0, false},
		// i*i: nonlinear.
		{&Bin{Op: Mul, L: &VarRef{Sym: i}, R: &VarRef{Sym: i}, Ty: Int}, nil, 0, 0, false},
		// i + i folds to 2i.
		{&Bin{Op: Add, L: &VarRef{Sym: i}, R: &VarRef{Sym: i}, Ty: Int}, i, 2, 0, true},
		// i - i folds to constant 0.
		{&Bin{Op: Sub, L: &VarRef{Sym: i}, R: &VarRef{Sym: i}, Ty: Int}, nil, 0, 0, true},
		// -(i+1)
		{&Un{X: IAdd(&VarRef{Sym: i}, CI(1)), Ty: Int}, i, -1, -1, true},
	}
	for n, c := range cases {
		a, ok := MatchAffine(c.e)
		if ok != c.ok {
			t.Errorf("case %d (%s): ok=%v want %v", n, ExprString(c.e), ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if a.Var != c.wantVar || a.A != c.wantA || a.C != c.wantC {
			t.Errorf("case %d (%s): got {%v %d %d}, want {%v %d %d}",
				n, ExprString(c.e), a.Var, a.A, a.C, c.wantVar, c.wantA, c.wantC)
		}
	}
}

func TestFolding(t *testing.T) {
	if v, _ := IntConst(IAdd(CI(2), CI(3))); v != 5 {
		t.Error("2+3 not folded")
	}
	if v, _ := IntConst(IMul(CI(4), CI(3))); v != 12 {
		t.Error("4*3 not folded")
	}
	if v, _ := IntConst(IDiv(CI(7), CI(2))); v != 3 {
		t.Error("7/2 not folded")
	}
	if v, _ := IntConst(IModE(CI(7), CI(4))); v != 3 {
		t.Error("7 mod 4 not folded")
	}
	u := newUnit()
	i := &VarRef{Sym: scalar(u, "i", Int)}
	if IAdd(i, CI(0)) != Expr(i) {
		t.Error("i+0 not simplified")
	}
	if IMul(CI(1), i) != Expr(i) {
		t.Error("1*i not simplified")
	}
	if v, ok := IntConst(IMul(i, CI(0))); !ok || v != 0 {
		t.Error("i*0 not simplified")
	}
	if v, _ := IntConst(IMinE(CI(3), CI(5))); v != 3 {
		t.Error("min not folded")
	}
	if v, _ := IntConst(IMaxE(CI(3), CI(5))); v != 5 {
		t.Error("max not folded")
	}
	// div by zero must not fold (runtime error is the program's business)
	if _, ok := IntConst(IDiv(CI(1), CI(0))); ok {
		t.Error("1/0 folded")
	}
}

func TestCloneIndependence(t *testing.T) {
	u := newUnit()
	i := scalar(u, "i", Int)
	arr := u.AddSym(&Sym{Name: "a", Type: Real, Kind: Array, Dims: []Expr{CI(10)}})
	body := []Stmt{
		&Assign{
			Lhs: &ArrayRef{Sym: arr, Idx: []Expr{&VarRef{Sym: i}}},
			Rhs: &ConstReal{V: 1},
		},
	}
	loop := &Do{Var: i, Lo: CI(1), Hi: CI(10), Body: body, Line: 3}
	c := CloneStmt(loop).(*Do)
	// Mutate the clone; the original must not change.
	c.Body[0].(*Assign).Rhs = &ConstReal{V: 2}
	c.Lo = CI(5)
	if loop.Body[0].(*Assign).Rhs.(*ConstReal).V != 1 {
		t.Fatal("clone shares body")
	}
	if loop.Lo.(*ConstInt).V != 1 {
		t.Fatal("clone shares bounds")
	}
	if c.Var != loop.Var {
		t.Fatal("clone must share symbols")
	}
}

func TestWalkStmtsFindsAllRefs(t *testing.T) {
	u := newUnit()
	i := scalar(u, "i", Int)
	arr := u.AddSym(&Sym{Name: "a", Type: Real, Kind: Array, Dims: []Expr{CI(10)}})
	body := []Stmt{
		&If{
			Cond: &Bin{Op: Lt, L: &VarRef{Sym: i}, R: CI(5), Ty: Int},
			Then: []Stmt{&Assign{
				Lhs: &ArrayRef{Sym: arr, Idx: []Expr{&VarRef{Sym: i}}},
				Rhs: &ArrayRef{Sym: arr, Idx: []Expr{IAdd(&VarRef{Sym: i}, CI(1))}},
			}},
		},
	}
	loop := []Stmt{&Do{Var: i, Lo: CI(1), Hi: CI(9), Body: body}}
	refs := 0
	WalkStmts(loop, nil, func(e Expr) bool {
		if ar, ok := e.(*ArrayRef); ok && ar.Sym == arr {
			refs++
		}
		return true
	})
	if refs != 2 {
		t.Fatalf("found %d array refs, want 2", refs)
	}
}

func TestRewriteExpr(t *testing.T) {
	u := newUnit()
	i := scalar(u, "i", Int)
	e := IAdd(&VarRef{Sym: i}, CI(1))
	// Replace i with 41.
	out := RewriteExpr(e, func(x Expr) Expr {
		if v, ok := x.(*VarRef); ok && v.Sym == i {
			return CI(41)
		}
		return x
	})
	// Tree still Bin(41+1) since folding only happens via builders;
	// evaluate by re-matching.
	a, ok := MatchAffine(out)
	if !ok || a.Var != nil || a.C != 42 {
		t.Fatalf("rewrite produced %s", ExprString(out))
	}
}

func TestMapExprsRewritesEverywhere(t *testing.T) {
	u := newUnit()
	i := scalar(u, "i", Int)
	x := scalar(u, "x", Real)
	stmts := []Stmt{
		&Assign{Lhs: &VarRef{Sym: x}, Rhs: &ConstReal{V: 0}},
		&Do{Var: i, Lo: &VarRef{Sym: i}, Hi: CI(3), Body: []Stmt{
			&CallStmt{Callee: "f", Args: []Expr{&VarRef{Sym: i}}},
		}},
	}
	count := 0
	MapExprs(stmts, func(e Expr) Expr {
		count++
		return e
	})
	// lhs, rhs, lo, hi, call arg
	if count != 5 {
		t.Fatalf("MapExprs visited %d roots, want 5", count)
	}
}

func TestTypeRules(t *testing.T) {
	u := newUnit()
	i := scalar(u, "i", Int)
	x := scalar(u, "x", Real)
	cmp := &Bin{Op: Lt, L: &VarRef{Sym: x}, R: &ConstReal{V: 1}, Ty: Real}
	if cmp.Type() != Int {
		t.Error("comparison must yield integer")
	}
	arith := &Bin{Op: Add, L: &VarRef{Sym: x}, R: &ConstReal{V: 1}, Ty: Real}
	if arith.Type() != Real {
		t.Error("real arithmetic mistyped")
	}
	cvt := &Cvt{X: &VarRef{Sym: i}, To: Real}
	if cvt.Type() != Real {
		t.Error("cvt mistyped")
	}
}

func TestPrinter(t *testing.T) {
	u := newUnit()
	i := scalar(u, "i", Int)
	arr := u.AddSym(&Sym{Name: "a", Type: Real, Kind: Array, Dims: []Expr{CI(10)}})
	s := &Do{Var: i, Lo: CI(1), Hi: CI(10), Body: []Stmt{
		&Assign{Lhs: &ArrayRef{Sym: arr, Idx: []Expr{&VarRef{Sym: i}}}, Rhs: &ConstReal{V: 1}},
	}}
	out := StmtString(s)
	for _, want := range []string{"do i = 1, 10", "a(i) = 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output %q missing %q", out, want)
		}
	}
}

func TestConstDims(t *testing.T) {
	u := newUnit()
	a := u.AddSym(&Sym{Name: "a", Kind: Array, Dims: []Expr{CI(5), CI(6)}})
	d, ok := a.ConstDims()
	if !ok || d[0] != 5 || d[1] != 6 {
		t.Fatalf("ConstDims = %v %v", d, ok)
	}
	n := scalar(u, "n", Int)
	b := u.AddSym(&Sym{Name: "b", Kind: Array, Dims: []Expr{&VarRef{Sym: n}}})
	if _, ok := b.ConstDims(); ok {
		t.Fatal("symbolic dims reported constant")
	}
}
