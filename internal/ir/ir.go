// Package ir defines the typed mid-level representation the compiler
// optimizes: structured loop nests over scalars and arrays, with explicit
// nodes for the constructs the paper's transformations introduce —
// descriptor-field reads (block sizes, processor counts), processor-array
// portion bases (the indirect loads of §7.2), and raw memory references
// produced by the reshaped-reference transformation of Table 1.
//
// Scalars live in virtual registers unless their address is taken (Fortran
// argument passing); arrays live in simulated memory. Expressions carry
// their type; sema inserts explicit conversions.
package ir

import (
	"dsmdist/internal/dist"
)

// Type is the subset's value types.
type Type int

const (
	Int Type = iota
	Real
)

func (t Type) String() string {
	if t == Int {
		return "integer"
	}
	return "real*8"
}

// SymKind distinguishes scalars from arrays.
type SymKind int

const (
	Scalar SymKind = iota
	Array
)

// Sym is a variable (or compiler temporary) in one unit.
type Sym struct {
	Name string
	Type Type
	Kind SymKind

	// Array extents, one per dimension, innermost (fastest-varying,
	// column-major) first. A nil entry is an assumed-size final
	// dimension of a formal parameter.
	Dims []Expr

	Common      string // enclosing common block name, or ""
	CommonIndex int    // position within the common block member list

	IsParam    bool
	ParamIndex int

	// Dist is the attached distribution, nil when undistributed.
	Dist *dist.Spec
	// Redistributed marks regular-distributed arrays that appear in a
	// c$redistribute (their descriptors stay mutable).
	Redistributed bool

	// Addressed marks scalars whose address escapes (passed as an
	// argument); they live in stack memory rather than a register.
	Addressed bool

	// ID is the index of this symbol in Unit.Syms.
	ID int

	Line int
}

// IsReshaped reports whether the symbol is a reshaped distributed array.
func (s *Sym) IsReshaped() bool { return s.Dist != nil && s.Dist.Reshape }

// IsDistributed reports whether the symbol carries any distribution.
func (s *Sym) IsDistributed() bool { return s.Dist != nil && s.Dist.Distributed() }

// ConstDims returns the extents as int64s when all are compile-time
// constants.
func (s *Sym) ConstDims() ([]int64, bool) {
	out := make([]int64, len(s.Dims))
	for i, d := range s.Dims {
		c, ok := d.(*ConstInt)
		if !ok {
			return nil, false
		}
		out[i] = c.V
	}
	return out, true
}

// Unit is one compiled program unit.
type Unit struct {
	Name       string
	IsProgram  bool
	SourceFile string
	Params     []*Sym
	Syms       []*Sym
	Body       []Stmt
	Line       int

	// CommonBlocks lists, per block declared in this unit, the member
	// symbols in declaration order (needed for layout and the link-time
	// consistency checks of §6).
	CommonBlocks []*CommonBlock

	nextTemp int
}

// CommonBlock records one common declaration in a unit.
type CommonBlock struct {
	Name    string
	Members []*Sym
}

// NewTemp creates a fresh scalar temporary of the given type.
func (u *Unit) NewTemp(t Type, name string) *Sym {
	s := &Sym{
		Name: "~" + name + string(rune('0'+u.nextTemp%10)) + string(rune('0'+(u.nextTemp/10)%10)),
		Type: t,
		Kind: Scalar,
		ID:   len(u.Syms),
	}
	u.nextTemp++
	u.Syms = append(u.Syms, s)
	return s
}

// AddSym registers a symbol, assigning its ID.
func (u *Unit) AddSym(s *Sym) *Sym {
	s.ID = len(u.Syms)
	u.Syms = append(u.Syms, s)
	return s
}

// --- Expressions ---

// Expr is an expression node; every node knows its type.
type Expr interface {
	Type() Type
	exprNode()
}

// ConstInt is an integer constant.
type ConstInt struct{ V int64 }

// ConstReal is a real*8 constant.
type ConstReal struct{ V float64 }

// VarRef reads a scalar symbol.
type VarRef struct{ Sym *Sym }

// ArrayRef reads (or, as an assignment target, writes) one element; Idx are
// the one-based Fortran subscripts, innermost dimension first.
type ArrayRef struct {
	Sym *Sym
	Idx []Expr
}

// BinOp codes for Bin.
type BinOp int

const (
	Add BinOp = iota
	Sub
	Mul
	Div // integer division truncates toward zero
	Mod
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
	And
	Or
)

var binNames = [...]string{"+", "-", "*", "/", "mod", "<", "<=", ">", ">=", "==", "!=", ".and.", ".or."}

func (op BinOp) String() string { return binNames[op] }

// Compare reports whether the op yields a boolean (integer 0/1).
func (op BinOp) Compare() bool { return op >= Lt && op <= Ne }

// Bin is a binary operation; Ty is the operand type (comparisons yield
// Int regardless).
type Bin struct {
	Op   BinOp
	L, R Expr
	Ty   Type
}

// Un is unary negation (arithmetic when Ty says so) or logical not.
type Un struct {
	Not bool // logical not; otherwise arithmetic negation
	X   Expr
	Ty  Type
}

// Cvt converts between Int and Real.
type Cvt struct {
	X  Expr
	To Type
}

// IntrOp identifies an intrinsic.
type IntrOp int

const (
	IMin IntrOp = iota
	IMax
	IAbs
	ISqrt
)

var intrNames = [...]string{"min", "max", "abs", "sqrt"}

func (op IntrOp) String() string { return intrNames[op] }

// Intrinsic is a call to a math intrinsic (binary for min/max, unary
// otherwise).
type Intrinsic struct {
	Op   IntrOp
	Args []Expr
	Ty   Type
}

// Myid is the executing processor's id within the current parallel region
// (0 outside any region).
type Myid struct{}

// Nprocs is the processor count of the run.
type Nprocs struct{}

// DescFieldKind selects a runtime descriptor field.
type DescFieldKind int

const (
	FieldN  DescFieldKind = iota // dimension extent
	FieldP                       // processors on this dimension
	FieldB                       // block size ceil(N/P)
	FieldK                       // cyclic chunk
	FieldML                      // max portion length (uniform portion stride)
)

// DescFields is the number of descriptor words per array dimension.
const DescFields = 5

var descFieldNames = [...]string{"n", "p", "b", "k", "ml"}

func (k DescFieldKind) String() string { return descFieldNames[k] }

// DescField reads a field of a distributed array's runtime descriptor. It
// compiles to a memory load; marking it loop-invariant lets the hoister
// treat it as the paper's "constant" descriptor variables (§7.2).
type DescField struct {
	Sym   *Sym
	Dim   int
	Field DescFieldKind
}

// PortionBase is the byte address of processor Proc's portion of a reshaped
// array: the indirect load through the processor array (§4.3, Figure 3).
// Proc is the linearized processor-grid coordinate.
type PortionBase struct {
	Sym  *Sym
	Proc Expr
}

// MemRef reads (or writes, as an lvalue) the 8-byte word at the given byte
// address. The reshaped-reference transformation lowers ArrayRefs on
// reshaped arrays into MemRefs; the regular-optimization pass lowers plain
// ArrayRefs the same way so address arithmetic is visible to hoisting.
type MemRef struct {
	Addr Expr
	Ty   Type
}

// ArrayBase is the data base address of a non-reshaped array (static
// storage or the incoming argument pointer).
type ArrayBase struct{ Sym *Sym }

// ArgArray passes a whole array (its base address, or its descriptor
// address for reshaped arrays) as a call argument.
type ArgArray struct{ Sym *Sym }

// RTFuncKind identifies runtime-library functions usable in expressions.
type RTFuncKind int

const (
	RTNumProcs  RTFuncKind = iota // dsm_numthreads()
	RTMyProc                      // dsm_this_thread()
	RTPortionLo                   // dsm_portion_lo(array, dim, proc): first owned 1-based index
	RTPortionHi                   // dsm_portion_hi(array, dim, proc)
	RTNestGrid                    // nest-grid factorization: (ndims, dim) -> procs
	RTDynGrab                     // dynamic/gss chunk grab: (total, chunk, mode) -> start*2^31+len
)

// RTFunc is a runtime intrinsic call in an expression.
type RTFunc struct {
	Kind RTFuncKind
	Sym  *Sym // array operand for the portion intrinsics
	Args []Expr
}

func (*ConstInt) exprNode()    {}
func (*ConstReal) exprNode()   {}
func (*VarRef) exprNode()      {}
func (*ArrayRef) exprNode()    {}
func (*Bin) exprNode()         {}
func (*Un) exprNode()          {}
func (*Cvt) exprNode()         {}
func (*Intrinsic) exprNode()   {}
func (*Myid) exprNode()        {}
func (*Nprocs) exprNode()      {}
func (*DescField) exprNode()   {}
func (*PortionBase) exprNode() {}
func (*MemRef) exprNode()      {}
func (*ArrayBase) exprNode()   {}
func (*ArgArray) exprNode()    {}
func (*RTFunc) exprNode()      {}

func (*ConstInt) Type() Type   { return Int }
func (*ConstReal) Type() Type  { return Real }
func (e *VarRef) Type() Type   { return e.Sym.Type }
func (e *ArrayRef) Type() Type { return e.Sym.Type }
func (e *Bin) Type() Type {
	if e.Op.Compare() || e.Op == And || e.Op == Or {
		return Int
	}
	return e.Ty
}
func (e *Un) Type() Type        { return e.Ty }
func (e *Cvt) Type() Type       { return e.To }
func (e *Intrinsic) Type() Type { return e.Ty }
func (*Myid) Type() Type        { return Int }
func (*Nprocs) Type() Type      { return Int }
func (*DescField) Type() Type   { return Int }
func (*PortionBase) Type() Type { return Int }
func (e *MemRef) Type() Type    { return e.Ty }
func (*ArrayBase) Type() Type   { return Int }
func (*ArgArray) Type() Type    { return Int }
func (*RTFunc) Type() Type      { return Int }

// --- Statements ---

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Assign stores Rhs into Lhs (a *VarRef, *ArrayRef or *MemRef).
type Assign struct {
	Lhs Expr
	Rhs Expr
}

// SchedKind is the doacross scheduling policy.
type SchedKind int

const (
	SchedSimple SchedKind = iota
	SchedInterleave
	SchedDynamic
	SchedGSS
)

// AffinityDim describes how one distributed dimension of the affinity array
// is indexed: by loop variable Var (with zero-based affine index
// A*Var + C0), or by nothing (Var == nil, constant subscript).
type AffinityDim struct {
	Var *Sym
	A   int64 // coefficient (literal, non-negative per §3.4)
	C0  int64 // zero-based constant offset (Fortran c minus 1)
}

// Par marks a loop nest as a doacross parallel region.
type Par struct {
	// Nest is the number of perfectly nested parallel loops (1, or more
	// with the nest clause). The Do carrying the Par is the outermost.
	Nest  int
	Local []*Sym
	// Affinity, when non-nil, maps each distributed dimension of Array
	// to an AffinityDim. Dims is indexed by array dimension.
	Affinity *Affinity
	Sched    SchedKind
	Chunk    Expr
	Line     int
}

// Affinity is the analyzed affinity clause.
type Affinity struct {
	Array *Sym
	Dims  []AffinityDim // one per array dimension; Var nil for unkeyed dims
}

// Do is a do loop; Par is non-nil on the outermost loop of a doacross nest.
type Do struct {
	Var    *Sym
	Lo, Hi Expr
	Step   Expr // nil means 1
	Body   []Stmt
	Par    *Par
	Line   int
	// NoDivMod marks loops already tiled so codegen and later passes
	// know inner references were strength-reduced.
	NoDivMod bool
}

// If is a conditional.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// CallStmt invokes a subroutine. Args align with ArgSyms: for each
// argument, ArgSyms[i] is non-nil when the argument is a whole array or an
// addressed scalar; otherwise Args[i] is an expression whose value is
// passed via a compiler temporary.
type CallStmt struct {
	Callee string
	Args   []Expr
	Line   int
}

// Return leaves the unit.
type Return struct{}

// Redist executes c$redistribute on a regular-distributed array.
type Redist struct {
	Sym  *Sym
	Spec dist.Spec
	Line int
}

// Barrier is an explicit dsm_barrier() call.
type Barrier struct{}

// TimerMark brackets the timed section of a benchmark program
// (dsm_timer_start / dsm_timer_stop): NAS-style region-of-interest timing
// that excludes initialization, as the paper's measurements do.
type TimerMark struct{ Stop bool }

// Region is an outlined doacross body produced by the scheduling
// transformation: every processor executes Body (which computes its own
// iteration bounds from Myid); an implicit barrier follows. Codegen turns
// it into a separate region function dispatched by the executor.
type Region struct {
	Par  *Par
	Body []Stmt
}

func (*Assign) stmtNode()    {}
func (*Do) stmtNode()        {}
func (*If) stmtNode()        {}
func (*CallStmt) stmtNode()  {}
func (*Return) stmtNode()    {}
func (*Redist) stmtNode()    {}
func (*Barrier) stmtNode()   {}
func (*TimerMark) stmtNode() {}
func (*Region) stmtNode()    {}
