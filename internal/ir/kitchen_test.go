package ir

import (
	"strings"
	"testing"

	"dsmdist/internal/dist"
)

// buildKitchenSink constructs a statement list containing every Stmt and
// Expr node type, so the Clone/Walk/Rewrite/print switches are all
// exercised (they panic on unknown nodes by design).
func buildKitchenSink() (*Unit, []Stmt) {
	u := &Unit{Name: "k"}
	i := u.AddSym(&Sym{Name: "i", Type: Int, Kind: Scalar})
	x := u.AddSym(&Sym{Name: "x", Type: Real, Kind: Scalar})
	spec := &dist.Spec{Reshape: true, Dims: []dist.Dim{{Kind: dist.Block}}}
	a := u.AddSym(&Sym{Name: "a", Type: Real, Kind: Array, Dims: []Expr{CI(16)}, Dist: spec})
	b := u.AddSym(&Sym{Name: "b", Type: Real, Kind: Array, Dims: []Expr{CI(16)}})

	exprs := []Expr{
		CI(1),
		&ConstReal{V: 2.5},
		&VarRef{Sym: i},
		&ArrayRef{Sym: b, Idx: []Expr{&VarRef{Sym: i}}},
		&Bin{Op: Add, L: CI(1), R: CI(2), Ty: Int},
		&Un{X: CI(3), Ty: Int},
		&Un{Not: true, X: CI(0), Ty: Int},
		&Cvt{X: CI(4), To: Real},
		&Intrinsic{Op: IMin, Args: []Expr{CI(1), CI(2)}, Ty: Int},
		&Intrinsic{Op: ISqrt, Args: []Expr{&ConstReal{V: 4}}, Ty: Real},
		&Myid{},
		&Nprocs{},
		&DescField{Sym: a, Dim: 0, Field: FieldB},
		&PortionBase{Sym: a, Proc: CI(0)},
		&MemRef{Addr: CI(4096), Ty: Real},
		&ArrayBase{Sym: b},
		&ArgArray{Sym: a},
		&RTFunc{Kind: RTPortionLo, Sym: a, Args: []Expr{CI(1), CI(0)}},
		&RTFunc{Kind: RTNestGrid, Args: []Expr{CI(2), CI(0)}},
	}
	// Fold every expression into one assignment chain via statements.
	var stmts []Stmt
	for _, e := range exprs {
		lhs := Expr(&VarRef{Sym: x})
		if e.Type() == Int {
			lhs = &VarRef{Sym: i}
		}
		stmts = append(stmts, &Assign{Lhs: lhs, Rhs: e})
	}
	stmts = append(stmts,
		&Do{Var: i, Lo: CI(1), Hi: CI(4), Step: CI(1), Body: []Stmt{
			&Assign{Lhs: &ArrayRef{Sym: b, Idx: []Expr{&VarRef{Sym: i}}}, Rhs: &ConstReal{V: 0}},
		}},
		&If{Cond: CI(1), Then: []Stmt{&Barrier{}}, Else: []Stmt{&TimerMark{Stop: true}}},
		&CallStmt{Callee: "s", Args: []Expr{&VarRef{Sym: x}}},
		&Redist{Sym: a, Spec: *spec},
		&TimerMark{},
		&Region{Par: &Par{Nest: 1}, Body: []Stmt{&Assign{Lhs: &VarRef{Sym: i}, Rhs: &Myid{}}}},
		&Return{},
	)
	return u, stmts
}

func TestKitchenSinkCloneWalkPrint(t *testing.T) {
	_, stmts := buildKitchenSink()

	// Clone must not panic and must deep-copy.
	clone := CloneStmts(stmts)
	if len(clone) != len(stmts) {
		t.Fatal("clone length")
	}

	// Walk must visit every node without panicking; count a few kinds.
	var nStmts, nExprs int
	WalkStmts(stmts, func(Stmt) bool { nStmts++; return true },
		func(Expr) bool { nExprs++; return true })
	if nStmts < 25 || nExprs < 25 {
		t.Fatalf("walk counted %d stmts, %d exprs", nStmts, nExprs)
	}

	// Rewrite (identity) must not panic and preserve the printout.
	before := StmtsString(stmts)
	MapExprs(stmts, func(e Expr) Expr { return RewriteExpr(e, func(n Expr) Expr { return n }) })
	after := StmtsString(stmts)
	if before != after {
		t.Fatal("identity rewrite changed the program")
	}

	// Printer mentions every distinctive construct.
	for _, want := range []string{
		"desc.a.b[0]", "portion(a,", "mem[", "base(b)", "&a",
		"dsm_portion_lo", "nest_grid", "MYID", "NPROCS",
		"barrier", "timer stop", "timer start", "redistribute a",
		"region", "call s", "return", "min(", "sqrt(",
	} {
		if !strings.Contains(before, want) {
			t.Fatalf("printout missing %q:\n%s", want, before)
		}
	}

	// The clone prints identically but mutating it leaves the original
	// untouched.
	if StmtsString(clone) != before {
		t.Fatal("clone prints differently")
	}
	clone[0].(*Assign).Rhs = CI(999)
	if StmtsString(stmts) != before {
		t.Fatal("mutating clone changed original")
	}
}
