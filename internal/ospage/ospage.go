// Package ospage simulates the operating-system page-placement layer the
// paper's runtime sits on (paper §2, §4.2): physical pages of 2^k bytes
// allocated per node, a default first-touch policy, an optional round-robin
// policy, and the explicit placement call the compiler-generated code uses
// to implement regular data distribution ("This system call is the only OS
// support required to implement both regular and reshaped data
// distribution, and it overrides the default first-touch page allocation
// policy").
//
// Placement is recorded per virtual page. Node memories have finite
// capacity; when the preferred node is full the allocation spills to the
// node with the most free pages, which is how the simulator reproduces the
// paper's observation that a 360 MB LU dataset does not fit in one node's
// ~250 MB memory (§8.1). The OS also runs a best-effort page-coloring
// algorithm (§8.2) whose success/failure is recorded in the statistics.
package ospage

import (
	"fmt"
	"math/bits"

	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
)

// Policy selects what happens when an unmapped page is first touched.
type Policy int

const (
	// FirstTouch allocates the page from the toucher's node (IRIX
	// default).
	FirstTouch Policy = iota
	// RoundRobin deals pages across nodes in order.
	RoundRobin
)

func (p Policy) String() string {
	switch p {
	case FirstTouch:
		return "first-touch"
	case RoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// PolicyNames lists the accepted command-line spellings for ParsePolicy.
const PolicyNames = "first-touch (ft), round-robin (rr)"

// ParsePolicy maps a command-line spelling to a Policy. Note the policy
// only governs pages not claimed by a distribution directive: regular and
// reshaped placement comes from c$distribute/c$distribute_reshape in the
// source, not from this setting.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "first-touch", "ft":
		return FirstTouch, nil
	case "round-robin", "rr":
		return RoundRobin, nil
	}
	return FirstTouch, fmt.Errorf("unknown policy %q (accepted: %s)", s, PolicyNames)
}

// Page is the placement record for one virtual page.
type Page struct {
	Mapped  bool
	Node    int
	Color   int
	Matched bool // page color matches the virtual color (coloring succeeded)
}

// Stats counts page-level events.
type Stats struct {
	Mapped       int64 // pages currently mapped
	FirstTouch   int64 // pages placed by first-touch
	RoundRobin   int64 // pages placed by round-robin
	Placed       int64 // pages placed by the explicit distribution call
	Migrated     int64 // pages moved by redistribute
	Spilled      int64 // pages that could not go to the preferred node
	ColorMatched int64
	ColorMissed  int64
	PerNode      []int64 // pages resident per node
}

// Manager is the simulated OS memory manager.
type Manager struct {
	cfg       *machine.Config
	policy    Policy
	pageShift uint
	nnodes    int
	ncolors   int

	pages []Page // indexed by virtual page number

	free     []int64 // free pages per node
	nextScan []int64 // next local physical index per node (colors cycle)
	rrNext   int

	stats Stats

	rec *obs.Recorder
}

// SetRecorder attaches the observability sink (nil detaches it).
func (m *Manager) SetRecorder(r *obs.Recorder) { m.rec = r }

// New creates a manager for the machine configuration.
func New(cfg *machine.Config) *Manager {
	shift := uint(bits.TrailingZeros(uint(cfg.PageBytes)))
	nn := cfg.NNodes()
	nc := 1 << cfg.PageColorBits
	m := &Manager{
		cfg:       cfg,
		pageShift: shift,
		nnodes:    nn,
		ncolors:   nc,
		free:      make([]int64, nn),
		nextScan:  make([]int64, nn),
	}
	perNode := int64(cfg.NodeMemBytes / cfg.PageBytes)
	for i := range m.free {
		m.free[i] = perNode
	}
	m.stats.PerNode = make([]int64, nn)
	return m
}

// PageShift returns log2 of the page size.
func (m *Manager) PageShift() uint { return m.pageShift }

// PageBytes returns the page size.
func (m *Manager) PageBytes() int64 { return int64(m.cfg.PageBytes) }

// NPages returns the number of virtual pages currently tracked.
func (m *Manager) NPages() int { return len(m.pages) }

// Policy returns the active default policy.
func (m *Manager) Policy() Policy { return m.policy }

// SetPolicy selects the default allocation policy (the paper's runs choose
// first-touch or round-robin at program start).
func (m *Manager) SetPolicy(p Policy) { m.policy = p }

// VPage converts a virtual byte address to its virtual page number.
func (m *Manager) VPage(vaddr int64) int64 { return vaddr >> m.pageShift }

func (m *Manager) ensure(vp int64) {
	for int64(len(m.pages)) <= vp {
		m.pages = append(m.pages, Page{})
	}
}

// pickNode returns the node the page should live on, honouring capacity:
// if preferred is full, the fullest-preferred fallback is the node with the
// most free pages (lowest id wins ties), counting a spill.
func (m *Manager) pickNode(preferred int) int {
	if m.free[preferred] > 0 {
		return preferred
	}
	best, bestFree := -1, int64(0)
	for n, f := range m.free {
		if f > bestFree {
			best, bestFree = n, f
		}
	}
	if best < 0 {
		// All node memories full: the simulated machine has no swap;
		// keep allocating on the preferred node (treat as infinite
		// last-resort memory) but record the pressure.
		m.stats.Spilled++
		return preferred
	}
	m.stats.Spilled++
	return best
}

// allocOn places virtual page vp on the given node, running the coloring
// algorithm: the OS tries to give contiguous virtual pages non-conflicting
// physical colors by matching physical color to vp mod ncolors; under spill
// or reuse pressure the match can fail.
func (m *Manager) allocOn(vp int64, node int, spilledFrom bool) {
	m.ensure(vp)
	wantColor := int(vp) & (m.ncolors - 1)
	matched := !spilledFrom
	if matched {
		m.stats.ColorMatched++
	} else {
		m.stats.ColorMissed++
	}
	if m.free[node] > 0 {
		m.free[node]--
	}
	m.pages[vp] = Page{Mapped: true, Node: node, Color: wantColor, Matched: matched}
	m.stats.Mapped++
	m.stats.PerNode[node]++
}

// Lookup returns the placement of the page containing vaddr without
// allocating.
func (m *Manager) Lookup(vaddr int64) (Page, bool) {
	vp := m.VPage(vaddr)
	if vp < 0 || vp >= int64(len(m.pages)) || !m.pages[vp].Mapped {
		return Page{}, false
	}
	return m.pages[vp], true
}

// Touch resolves the page containing vaddr for a toucher on the given node,
// allocating it according to the default policy if unmapped, and returns
// the home node. This is the page-fault path.
func (m *Manager) Touch(vaddr int64, toucherNode int) int {
	vp := m.VPage(vaddr)
	m.ensure(vp)
	if m.pages[vp].Mapped {
		return m.pages[vp].Node
	}
	var preferred int
	cause := obs.PlaceFirstTouch
	switch m.policy {
	case RoundRobin:
		preferred = m.rrNext
		m.rrNext = (m.rrNext + 1) % m.nnodes
		m.stats.RoundRobin++
		cause = obs.PlaceRoundRobin
	default:
		preferred = toucherNode
		m.stats.FirstTouch++
	}
	node := m.pickNode(preferred)
	m.allocOn(vp, node, node != preferred)
	if m.rec != nil {
		m.rec.PagePlaced(vp, node, cause, node != preferred)
	}
	return node
}

// Place maps every page overlapping the byte range [lo, hi) onto the given
// node. This is the explicit OS placement call generated for c$distribute
// (paper §4.2). Pages already mapped are re-placed only if migrate is true
// (the redistribute path); otherwise the existing mapping wins — which
// means a boundary page claimed by several processors' portions ends up on
// whichever placed it last among the unmapped claims, matching the paper's
// "a page requested by multiple processors is simply allocated from within
// the local memory of the processor to last request the page" (§8.3).
// It returns the number of pages newly placed or migrated.
func (m *Manager) Place(lo, hi int64, node int, migrate bool) int {
	if hi <= lo {
		return 0
	}
	moved := 0
	first := m.VPage(lo)
	last := m.VPage(hi - 1)
	for vp := first; vp <= last; vp++ {
		m.ensure(vp)
		pg := &m.pages[vp]
		if pg.Mapped {
			if !migrate || pg.Node == node {
				continue
			}
			from := pg.Node
			m.stats.PerNode[pg.Node]--
			m.free[pg.Node]++
			m.stats.Mapped--
			m.stats.Migrated++
			real := m.pickNode(node)
			m.allocOn(vp, real, real != node)
			if m.rec != nil {
				m.rec.PageMigrated(vp, from, real)
			}
			moved++
			continue
		}
		real := m.pickNode(node)
		m.allocOn(vp, real, real != node)
		if m.rec != nil {
			m.rec.PagePlaced(vp, real, obs.PlaceExplicit, real != node)
		}
		m.stats.Placed++
		moved++
	}
	return moved
}

// PlaceLast overrides the mapping of every page overlapping [lo, hi),
// always re-placing. The regular-distribution runtime uses Place for
// portion interiors and relies on call order for boundary pages.
func (m *Manager) PlaceLast(lo, hi int64, node int) int {
	return m.Place(lo, hi, node, true)
}

// NodeOf returns the home node of vaddr, or -1 when unmapped.
func (m *Manager) NodeOf(vaddr int64) int {
	if pg, ok := m.Lookup(vaddr); ok {
		return pg.Node
	}
	return -1
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats {
	s := m.stats
	s.PerNode = append([]int64(nil), m.stats.PerNode...)
	return s
}

// FreePages returns the free-page count of a node (tests and capacity
// assertions).
func (m *Manager) FreePages(node int) int64 { return m.free[node] }
