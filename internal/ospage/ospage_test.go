package ospage

import (
	"testing"

	"dsmdist/internal/machine"
)

func tiny(nprocs int) *Manager { return New(machine.Tiny(nprocs)) }

func TestFirstTouch(t *testing.T) {
	m := tiny(8) // 4 nodes
	m.SetPolicy(FirstTouch)
	n := m.Touch(0, 2)
	if n != 2 {
		t.Fatalf("first touch by node 2 placed on %d", n)
	}
	// Second touch by another node does not move the page.
	if n := m.Touch(8, 3); n != 2 {
		t.Fatalf("retouch moved page to %d", n)
	}
	if got := m.NodeOf(100); got != 2 {
		t.Fatalf("NodeOf within same page = %d", got)
	}
}

func TestRoundRobin(t *testing.T) {
	m := tiny(8) // 4 nodes
	m.SetPolicy(RoundRobin)
	pb := m.PageBytes()
	var nodes []int
	for i := int64(0); i < 8; i++ {
		nodes = append(nodes, m.Touch(i*pb, 0))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("rr sequence %v, want %v", nodes, want)
		}
	}
}

func TestPlaceOverridesPolicy(t *testing.T) {
	m := tiny(8)
	pb := m.PageBytes()
	placed := m.Place(0, 3*pb, 3, false)
	if placed != 3 {
		t.Fatalf("placed %d pages, want 3", placed)
	}
	if m.NodeOf(0) != 3 || m.NodeOf(2*pb) != 3 {
		t.Fatal("placement ignored")
	}
	// First-touch afterwards must not move it.
	if n := m.Touch(0, 1); n != 3 {
		t.Fatalf("touch after place moved page to %d", n)
	}
}

func TestPlaceBoundaryLastRequestWins(t *testing.T) {
	// Two portions sharing a boundary page: with migrate=true the later
	// placement wins (the paper's "last request" behaviour); with
	// migrate=false the first mapping sticks.
	m := tiny(8)
	pb := m.PageBytes()
	m.PlaceLast(0, pb/2, 0)  // proc 0's half page
	m.PlaceLast(pb/2, pb, 1) // proc 1's half of the same page
	if got := m.NodeOf(0); got != 1 {
		t.Fatalf("boundary page on node %d, want last requester 1", got)
	}
}

func TestMigrate(t *testing.T) {
	m := tiny(8)
	pb := m.PageBytes()
	m.Place(0, pb, 0, false)
	moved := m.Place(0, pb, 2, true)
	if moved != 1 {
		t.Fatalf("migrated %d, want 1", moved)
	}
	if m.NodeOf(0) != 2 {
		t.Fatal("migration did not move page")
	}
	st := m.Stats()
	if st.Migrated != 1 {
		t.Fatalf("stats.Migrated = %d", st.Migrated)
	}
	if st.PerNode[0] != 0 || st.PerNode[2] != 1 {
		t.Fatalf("PerNode = %v", st.PerNode)
	}
}

func TestCapacitySpill(t *testing.T) {
	cfg := machine.Tiny(4) // 2 nodes
	cfg.NodeMemBytes = 4 * cfg.PageBytes
	m := New(cfg)
	m.SetPolicy(FirstTouch)
	pb := m.PageBytes()
	// Fill node 0.
	for i := int64(0); i < 4; i++ {
		if n := m.Touch(i*pb, 0); n != 0 {
			t.Fatalf("page %d on node %d", i, n)
		}
	}
	// Fifth page must spill to node 1.
	if n := m.Touch(4*pb, 0); n != 1 {
		t.Fatalf("spill went to node %d, want 1", n)
	}
	st := m.Stats()
	if st.Spilled != 1 {
		t.Fatalf("Spilled = %d", st.Spilled)
	}
	if st.ColorMissed == 0 {
		t.Fatal("spilled page should count a color miss")
	}
}

func TestAllNodesFull(t *testing.T) {
	cfg := machine.Tiny(4) // 2 nodes
	cfg.NodeMemBytes = cfg.PageBytes
	m := New(cfg)
	pb := m.PageBytes()
	m.Touch(0, 0)
	m.Touch(pb, 1)
	// Everything full: allocation still succeeds on the preferred node.
	if n := m.Touch(2*pb, 0); n != 0 {
		t.Fatalf("overflow page on node %d, want preferred 0", n)
	}
}

func TestLookupUnmapped(t *testing.T) {
	m := tiny(4)
	if _, ok := m.Lookup(12345); ok {
		t.Fatal("unmapped page reported mapped")
	}
	if m.NodeOf(12345) != -1 {
		t.Fatal("NodeOf unmapped != -1")
	}
}

func TestStatsCounts(t *testing.T) {
	m := tiny(8)
	m.SetPolicy(RoundRobin)
	pb := m.PageBytes()
	for i := int64(0); i < 6; i++ {
		m.Touch(i*pb, 0)
	}
	m.Place(6*pb, 8*pb, 1, false)
	st := m.Stats()
	if st.RoundRobin != 6 || st.Placed != 2 || st.Mapped != 8 {
		t.Fatalf("stats = %+v", st)
	}
	total := int64(0)
	for _, n := range st.PerNode {
		total += n
	}
	if total != st.Mapped {
		t.Fatalf("PerNode sums to %d, Mapped %d", total, st.Mapped)
	}
}

func TestPlaceEmptyRange(t *testing.T) {
	m := tiny(4)
	if n := m.Place(100, 100, 0, false); n != 0 {
		t.Fatalf("empty range placed %d pages", n)
	}
}

func TestPolicyString(t *testing.T) {
	if FirstTouch.String() != "first-touch" || RoundRobin.String() != "round-robin" {
		t.Fatal("policy names wrong")
	}
}

func TestColorStats(t *testing.T) {
	m := tiny(8)
	pb := m.PageBytes()
	for i := int64(0); i < 10; i++ {
		m.Touch(i*pb, 0)
	}
	st := m.Stats()
	if st.ColorMatched != 10 || st.ColorMissed != 0 {
		t.Fatalf("colors: matched=%d missed=%d", st.ColorMatched, st.ColorMissed)
	}
}

func TestPlacePartialPageRanges(t *testing.T) {
	m := tiny(8)
	pb := m.PageBytes()
	// A range ending mid-page still claims that page.
	n := m.Place(0, pb+1, 2, false)
	if n != 2 {
		t.Fatalf("placed %d pages, want 2", n)
	}
	if m.NodeOf(pb) != 2 {
		t.Fatal("second page unplaced")
	}
}
