package fortran

import (
	"fmt"
	"strings"
)

// Lexing rules (lenient fixed-form, see DESIGN.md):
//
//   - A line whose column-1 character is 'c', 'C' or '*' is a comment,
//     unless the second character is '$', which makes it a directive line
//     (paper: "c$doacross", "c$distribute", ...). "call ..." is a
//     statement because its second character is alphabetic.
//   - '!' starts a comment anywhere on a line.
//   - A line ending in '&' continues onto the next line.
//   - Keywords are not reserved; the parser matches identifier spellings.
//   - Everything is case-insensitive; identifier text is lower-cased.

// LexError is a lexical diagnostic.
type LexError struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// Lex splits src into tokens. A DIRECTIVE token precedes the tokens of each
// c$ line. Every logical line ends with a NEWLINE token, and the stream
// ends with EOF.
func Lex(file, src string) ([]Token, error) {
	var toks []Token
	lines := strings.Split(src, "\n")
	cont := false // previous line ended with '&'
	for li := 0; li < len(lines); li++ {
		raw := lines[li]
		lineNo := li + 1
		line := raw
		isDirective := false
		if !cont {
			if line == "" {
				continue
			}
			switch line[0] {
			case 'c', 'C', '*':
				if len(line) > 1 && line[1] == '$' {
					isDirective = true
					line = line[2:]
				} else if len(line) == 1 || !isIdentChar(rune(line[1])) {
					continue // comment
				}
			case '!':
				continue
			}
		}
		if isDirective {
			toks = append(toks, Token{Kind: DIRECTIVE, Line: lineNo, Col: 1})
		}

		lineToks, endCont, err := lexLine(file, line, lineNo, isDirective)
		if err != nil {
			return nil, err
		}
		toks = append(toks, lineToks...)
		cont = endCont
		if !cont {
			// Collapse blank logical lines: only emit NEWLINE when
			// the line produced tokens.
			if n := len(toks); n > 0 && toks[n-1].Kind != NEWLINE {
				toks = append(toks, Token{Kind: NEWLINE, Line: lineNo, Col: len(raw) + 1})
			}
		}
	}
	toks = append(toks, Token{Kind: EOF, Line: len(lines) + 1, Col: 1})
	return toks, nil
}

func isIdentStart(c rune) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c rune) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '$'
}

func isDigit(c rune) bool { return c >= '0' && c <= '9' }

var dotOps = map[string]TokKind{
	"lt": LT, "le": LE, "gt": GT, "ge": GE, "eq": EQ, "ne": NE,
	"and": AND, "or": OR, "not": NOT,
}

// lexLine tokenizes one physical line (with the c$ prefix already
// stripped). It returns the tokens, whether the line continues, and any
// error.
func lexLine(file, line string, lineNo int, _ bool) ([]Token, bool, error) {
	var toks []Token
	rs := []rune(line)
	i := 0
	n := len(rs)
	fail := func(col int, format string, args ...any) ([]Token, bool, error) {
		return nil, false, &LexError{File: file, Line: lineNo, Col: col, Msg: fmt.Sprintf(format, args...)}
	}
	for i < n {
		c := rs[i]
		col := i + 1
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '!':
			i = n // comment to end of line
		case c == '&':
			// Continuation only valid as the last non-space token.
			j := i + 1
			for j < n && (rs[j] == ' ' || rs[j] == '\t' || rs[j] == '\r') {
				j++
			}
			if j < n && rs[j] != '!' {
				return fail(col, "'&' must end the line")
			}
			return toks, true, nil
		case isIdentStart(c):
			j := i
			for j < n && isIdentChar(rs[j]) {
				j++
			}
			text := strings.ToLower(string(rs[i:j]))
			toks = append(toks, Token{Kind: IDENT, Text: text, Line: lineNo, Col: col})
			i = j
		case isDigit(c) || c == '.' && i+1 < n && isDigit(rs[i+1]):
			tok, j, err := lexNumber(file, rs, i, lineNo)
			if err != nil {
				return nil, false, err
			}
			toks = append(toks, tok)
			i = j
		case c == '.':
			// .lt. style operator or logical constant
			j := i + 1
			for j < n && rs[j] != '.' {
				j++
			}
			if j >= n {
				return fail(col, "unterminated '.' operator")
			}
			word := strings.ToLower(string(rs[i+1 : j]))
			kind, ok := dotOps[word]
			if !ok {
				return fail(col, "unknown operator .%s.", word)
			}
			toks = append(toks, Token{Kind: kind, Line: lineNo, Col: col})
			i = j + 1
		default:
			kind := TokKind(-1)
			text := ""
			adv := 1
			switch c {
			case '(':
				kind = LPAREN
			case ')':
				kind = RPAREN
			case ',':
				kind = COMMA
			case '+':
				kind = PLUS
			case '-':
				kind = MINUS
			case '*':
				kind = STAR
			case '/':
				if i+1 < n && rs[i+1] == '=' {
					kind, adv = NE, 2
				} else {
					kind = SLASH
				}
			case ':':
				kind = COLON
			case '=':
				if i+1 < n && rs[i+1] == '=' {
					kind, adv = EQ, 2
				} else {
					kind = EQUALS
				}
			case '<':
				if i+1 < n && rs[i+1] == '=' {
					kind, adv = LE, 2
				} else {
					kind = LT
				}
			case '>':
				if i+1 < n && rs[i+1] == '=' {
					kind, adv = GE, 2
				} else {
					kind = GT
				}
			default:
				return fail(col, "unexpected character %q", string(c))
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: lineNo, Col: col})
			i += adv
		}
	}
	return toks, false, nil
}

// lexNumber scans an integer or real literal starting at rs[i]. Real forms:
// 1.5, 1., .5 (handled by caller), 1e6, 1.5d0, 2.5e-3.
func lexNumber(file string, rs []rune, i, lineNo int) (Token, int, error) {
	start := i
	n := len(rs)
	isReal := false
	for i < n && isDigit(rs[i]) {
		i++
	}
	if i < n && rs[i] == '.' {
		// Don't swallow ".eq." style: only treat as decimal point when
		// followed by a digit or by a non-letter.
		if i+1 < n && isIdentStart(rs[i+1]) {
			// e.g. "1.and." — rare; treat '.' as operator start.
		} else {
			isReal = true
			i++
			for i < n && isDigit(rs[i]) {
				i++
			}
		}
	}
	if i < n && (rs[i] == 'e' || rs[i] == 'E' || rs[i] == 'd' || rs[i] == 'D') {
		j := i + 1
		if j < n && (rs[j] == '+' || rs[j] == '-') {
			j++
		}
		if j < n && isDigit(rs[j]) {
			isReal = true
			for j < n && isDigit(rs[j]) {
				j++
			}
			i = j
		}
	}
	text := strings.ToLower(string(rs[start:i]))
	// Normalize the d exponent to e for strconv.
	text = strings.ReplaceAll(text, "d", "e")
	kind := INTLIT
	if isReal {
		kind = REALLIT
	}
	return Token{Kind: kind, Text: text, Line: lineNo, Col: start + 1}, i, nil
}
