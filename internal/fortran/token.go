// Package fortran implements the front end for the Fortran-77 subset the
// paper's directives extend: a line-oriented lexer that recognizes
// c$-directive lines (paper §3), an AST, and a recursive-descent parser.
// Semantic analysis lives in internal/sema.
package fortran

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

const (
	EOF TokKind = iota
	NEWLINE
	IDENT
	INTLIT
	REALLIT

	// punctuation and operators
	LPAREN
	RPAREN
	COMMA
	PLUS
	MINUS
	STAR
	SLASH
	EQUALS
	COLON

	// relational/logical (either F77 dot form or modern form)
	LT
	LE
	GT
	GE
	EQ
	NE
	AND
	OR
	NOT

	// directive introducers; the lexer emits one of these at the start
	// of a c$ line, then lexes the rest of the line normally.
	DIRECTIVE // the c$ prefix itself
)

var tokNames = map[TokKind]string{
	EOF: "end of file", NEWLINE: "end of line", IDENT: "identifier",
	INTLIT: "integer literal", REALLIT: "real literal",
	LPAREN: "(", RPAREN: ")", COMMA: ",", PLUS: "+", MINUS: "-",
	STAR: "*", SLASH: "/", EQUALS: "=", COLON: ":",
	LT: ".lt.", LE: ".le.", GT: ".gt.", GE: ".ge.", EQ: ".eq.", NE: ".ne.",
	AND: ".and.", OR: ".or.", NOT: ".not.",
	DIRECTIVE: "c$",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // lower-cased identifier text or literal text
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, REALLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Pos renders a source position for diagnostics.
func (t Token) Pos(file string) string {
	return fmt.Sprintf("%s:%d:%d", file, t.Line, t.Col)
}
