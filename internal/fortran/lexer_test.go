package fortran

import "testing"

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func lexOK(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex("test.f", src)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	return toks
}

func TestLexSimpleAssign(t *testing.T) {
	toks := lexOK(t, "      a(i) = 2*i + 1.5\n")
	want := []TokKind{IDENT, LPAREN, IDENT, RPAREN, EQUALS, INTLIT, STAR, IDENT, PLUS, REALLIT, NEWLINE, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexCommentForms(t *testing.T) {
	src := "c a column-1 comment\n! bang comment\n* star comment\n      x = 1 ! trailing\n"
	toks := lexOK(t, src)
	got := kinds(toks)
	want := []TokKind{IDENT, EQUALS, INTLIT, NEWLINE, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
}

func TestLexCallIsNotComment(t *testing.T) {
	toks := lexOK(t, "call foo(x)\n")
	if toks[0].Kind != IDENT || toks[0].Text != "call" {
		t.Fatalf("'call' at column 1 mis-lexed: %v", toks[0])
	}
}

func TestLexDirective(t *testing.T) {
	toks := lexOK(t, "c$doacross local(i) shared(a)\n")
	if toks[0].Kind != DIRECTIVE {
		t.Fatalf("directive not recognized: %v", toks[0])
	}
	if toks[1].Kind != IDENT || toks[1].Text != "doacross" {
		t.Fatalf("directive body wrong: %v", toks[1])
	}
}

func TestLexDirectiveUppercase(t *testing.T) {
	toks := lexOK(t, "C$DISTRIBUTE A(*, BLOCK)\n")
	if toks[0].Kind != DIRECTIVE || toks[1].Text != "distribute" {
		t.Fatalf("uppercase directive mis-lexed: %v %v", toks[0], toks[1])
	}
	// identifiers lower-cased
	if toks[2].Text != "a" {
		t.Fatalf("case folding broken: %v", toks[2])
	}
}

func TestLexContinuation(t *testing.T) {
	toks := lexOK(t, "      x = 1 + &\n     2\n")
	got := kinds(toks)
	want := []TokKind{IDENT, EQUALS, INTLIT, PLUS, INTLIT, NEWLINE, EOF}
	if len(got) != len(want) {
		t.Fatalf("continuation broken: %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestLexDotOperators(t *testing.T) {
	toks := lexOK(t, "      if (i .le. n .and. j .ne. 0) x = 1\n")
	var seenLE, seenAND, seenNE bool
	for _, tk := range toks {
		switch tk.Kind {
		case LE:
			seenLE = true
		case AND:
			seenAND = true
		case NE:
			seenNE = true
		}
	}
	if !seenLE || !seenAND || !seenNE {
		t.Fatalf("dot operators missing: %v", toks)
	}
}

func TestLexModernRelops(t *testing.T) {
	toks := lexOK(t, "      if (i <= n) x = y >= z\n")
	var le, ge bool
	for _, tk := range toks {
		if tk.Kind == LE {
			le = true
		}
		if tk.Kind == GE {
			ge = true
		}
	}
	if !le || !ge {
		t.Fatalf("modern relops missing: %v", toks)
	}
}

func TestLexRealLiterals(t *testing.T) {
	cases := map[string]string{
		"1.5":    "1.5",
		"2.5e-3": "2.5e-3",
		"1.0d0":  "1.0e0",
		"3.":     "3.",
		"1e6":    "1e6",
	}
	for in, wantText := range cases {
		toks := lexOK(t, "      x = "+in+"\n")
		lit := toks[2]
		if lit.Kind != REALLIT {
			t.Errorf("%q lexed as %v", in, lit)
			continue
		}
		if lit.Text != wantText {
			t.Errorf("%q text %q, want %q", in, lit.Text, wantText)
		}
	}
}

func TestLexIntegerLiteral(t *testing.T) {
	toks := lexOK(t, "      n = 1000\n")
	if toks[2].Kind != INTLIT || toks[2].Text != "1000" {
		t.Fatalf("integer literal wrong: %v", toks[2])
	}
}

func TestLexErrorUnknownChar(t *testing.T) {
	if _, err := Lex("t.f", "      x = #1\n"); err == nil {
		t.Fatal("unknown character accepted")
	}
}

func TestLexErrorBadDotOp(t *testing.T) {
	if _, err := Lex("t.f", "      x = a .foo. b\n"); err == nil {
		t.Fatal("bad dot operator accepted")
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexOK(t, "x = 1\ny = 2\n")
	if toks[0].Line != 1 || toks[4].Line != 2 {
		t.Fatalf("line numbers wrong: %v %v", toks[0], toks[4])
	}
}
