package fortran

// AST node definitions for the Fortran subset. Nodes record the source line
// for diagnostics. Directive nodes mirror the paper's syntax (§3).

// File is one parsed source file: a sequence of program units.
type File struct {
	Name  string // file name, for diagnostics and shadow-file naming
	Units []*Unit
}

// UnitKind distinguishes the main program from subroutines.
type UnitKind int

const (
	ProgramUnit UnitKind = iota
	SubroutineUnit
)

// Unit is one program unit.
type Unit struct {
	Kind   UnitKind
	Name   string
	Params []string // dummy argument names, in order
	Decls  []Decl
	Body   []Stmt
	Line   int
}

// Decl is a declaration-part entry.
type Decl interface{ declNode() }

// BaseType is the subset's two data types.
type BaseType int

const (
	TInteger BaseType = iota
	TReal8
)

func (t BaseType) String() string {
	if t == TInteger {
		return "integer"
	}
	return "real*8"
}

// Declarator is one name in a type declaration, possibly with array bounds.
type Declarator struct {
	Name string
	Dims []Expr // nil for scalars; an extent of nil means '*' (assumed size)
	Line int
}

// TypeDecl is "integer i, a(10)" or "real*8 x(n,m)".
type TypeDecl struct {
	Type  BaseType
	Items []Declarator
	Line  int
}

// ParamDecl is "parameter (n = 100, m = n*2)".
type ParamDecl struct {
	Names  []string
	Values []Expr
	Line   int
}

// CommonDecl is "common /blk/ a, b, c".
type CommonDecl struct {
	Block string
	Names []string
	Line  int
}

// EquivDecl is "equivalence (a, b)"; the subset keeps it solely so the
// compile-time reshape check (paper §6) has something to reject.
type EquivDecl struct {
	A, B string
	Line int
}

// DistDecl is a c$distribute or c$distribute_reshape directive.
type DistDecl struct {
	Array   string
	Dims    []DistDim
	Onto    []Expr // optional onto(...) weights, one per distributed dim
	Reshape bool
	Line    int
}

// DistKindSyntax mirrors dist.Kind at the syntax level.
type DistKindSyntax int

const (
	DStar DistKindSyntax = iota
	DBlock
	DCyclic
	DCyclicExpr
)

// DistDim is one <dist> specifier.
type DistDim struct {
	Kind  DistKindSyntax
	Chunk Expr // for cyclic(<expr>)
}

func (*TypeDecl) declNode()   {}
func (*ParamDecl) declNode()  {}
func (*CommonDecl) declNode() {}
func (*EquivDecl) declNode()  {}
func (*DistDecl) declNode()   {}

// Stmt is an executable statement.
type Stmt interface{ stmtNode() }

// Assign is "lhs = rhs"; Lhs is an *Ident or *ArrayRef.
type Assign struct {
	Lhs  Expr
	Rhs  Expr
	Line int
}

// Do is a do loop, possibly annotated with a preceding c$doacross.
type Do struct {
	Var      string
	Lo, Hi   Expr
	Step     Expr // nil means 1
	Body     []Stmt
	Doacross *Doacross // nil for serial loops
	Line     int
}

// SchedType selects the doacross iteration scheduling.
type SchedType int

const (
	SchedSimple SchedType = iota // static block partition (default)
	SchedInterleave
	SchedDynamic // chunks handed out from a shared counter
	SchedGSS     // guided self-scheduling: shrinking chunks
)

// Doacross carries the clauses of a c$doacross directive (paper §3.1, §3.4).
type Doacross struct {
	Nest     []string // nest(i,j): names of the nested loop variables
	Local    []string
	Shared   []string
	Affinity *Affinity
	Sched    SchedType
	Chunk    Expr // interleave chunk
	Line     int
}

// Affinity is "affinity(i) = data(A(expr))" or the multidimensional
// "affinity(j,i) = data(A(i,j))" form used with nest.
type Affinity struct {
	Vars  []string // the doacross loop variables, as written
	Array string
	Index []Expr // one subscript expression per array dimension
	Line  int
}

// If is a block or logical if.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// Call is "call name(args)".
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Return is "return".
type Return struct{ Line int }

// Redistribute is the executable c$redistribute directive (§3.3).
type Redistribute struct {
	Array string
	Dims  []DistDim
	Line  int
}

// Continue is "continue" (a no-op statement).
type Continue struct{ Line int }

func (*Assign) stmtNode()       {}
func (*Do) stmtNode()           {}
func (*If) stmtNode()           {}
func (*Call) stmtNode()         {}
func (*Return) stmtNode()       {}
func (*Redistribute) stmtNode() {}
func (*Continue) stmtNode()     {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// Ident is a bare name (variable, or parameter constant).
type Ident struct {
	Name string
	Line int
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Line  int
}

// RealLit is a real*8 literal.
type RealLit struct {
	Value float64
	Line  int
}

// BinOp codes.
type BinOpKind int

const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "<", "<=", ">", ">=", "==", "/=", ".and.", ".or."}

func (k BinOpKind) String() string { return binOpNames[k] }

// BinOp is a binary expression.
type BinOp struct {
	Op   BinOpKind
	L, R Expr
	Line int
}

// UnOp is unary minus or .not.
type UnOp struct {
	Neg  bool // true: arithmetic negation; false: logical not
	X    Expr
	Line int
}

// CallExpr is "name(args)": an array reference or an intrinsic/function
// call — syntactically indistinguishable in Fortran; sema decides.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*Ident) exprNode()    {}
func (*IntLit) exprNode()   {}
func (*RealLit) exprNode()  {}
func (*BinOp) exprNode()    {}
func (*UnOp) exprNode()     {}
func (*CallExpr) exprNode() {}

// ExprLine returns the source line of an expression.
func ExprLine(e Expr) int {
	switch x := e.(type) {
	case *Ident:
		return x.Line
	case *IntLit:
		return x.Line
	case *RealLit:
		return x.Line
	case *BinOp:
		return x.Line
	case *UnOp:
		return x.Line
	case *CallExpr:
		return x.Line
	}
	return 0
}
