package fortran

import "testing"

func TestParseSchedtypeDynamicGss(t *testing.T) {
	f := parseOK(t, `
      program p
      real*8 a(10)
      integer i
c$doacross local(i) shared(a) schedtype(dynamic, 8)
      do i = 1, 10
        a(i) = 0.0
      end do
c$doacross local(i) shared(a) schedtype(dynamic)
      do i = 1, 10
        a(i) = 0.0
      end do
c$doacross local(i) shared(a) schedtype(gss)
      do i = 1, 10
        a(i) = 0.0
      end do
      end
`)
	d0 := f.Units[0].Body[0].(*Do).Doacross
	if d0.Sched != SchedDynamic || d0.Chunk == nil {
		t.Fatalf("dynamic,8 = %+v", d0)
	}
	d1 := f.Units[0].Body[1].(*Do).Doacross
	if d1.Sched != SchedDynamic || d1.Chunk != nil {
		t.Fatalf("dynamic = %+v", d1)
	}
	d2 := f.Units[0].Body[2].(*Do).Doacross
	if d2.Sched != SchedGSS {
		t.Fatalf("gss = %+v", d2)
	}
}

func TestParseMultiArrayDistribute(t *testing.T) {
	f := parseOK(t, `
      program p
      real*8 a(10, 10), b(10, 10), c(10)
c$distribute a(*, block), b(block, *), c(cyclic)
      a(1,1) = 0.0
      end
`)
	var dd []*DistDecl
	for _, d := range f.Units[0].Decls {
		if x, ok := d.(*DistDecl); ok {
			dd = append(dd, x)
		}
	}
	if len(dd) != 3 {
		t.Fatalf("decls = %d", len(dd))
	}
	if dd[0].Array != "a" || dd[1].Array != "b" || dd[2].Array != "c" {
		t.Fatalf("arrays = %s %s %s", dd[0].Array, dd[1].Array, dd[2].Array)
	}
	if dd[1].Dims[0].Kind != DBlock || dd[2].Dims[0].Kind != DCyclic {
		t.Fatal("kinds wrong")
	}
}

func TestParseDirectiveContinuation(t *testing.T) {
	f := parseOK(t, `
      program p
      real*8 a(100)
      integer i
c$doacross local(i) &
     shared(a)
      do i = 1, 100
        a(i) = 0.0
      end do
      end
`)
	da := f.Units[0].Body[0].(*Do).Doacross
	if len(da.Local) != 1 || len(da.Shared) != 1 {
		t.Fatalf("continued directive clauses: %+v", da)
	}
}

func TestParseLowerUpperMixedKeywords(t *testing.T) {
	f := parseOK(t, `
      PROGRAM P
      REAL*8 X(4)
      INTEGER I
      DO I = 1, 4
        X(I) = 1.0
      END DO
      END
`)
	if f.Units[0].Name != "p" {
		t.Fatalf("case folding: %q", f.Units[0].Name)
	}
}

func TestParseNegativeStepLoop(t *testing.T) {
	f := parseOK(t, `
      program p
      integer i, s
      do i = 10, 1, -1
        s = i
      end do
      end
`)
	do := f.Units[0].Body[0].(*Do)
	un, ok := do.Step.(*UnOp)
	if !ok || !un.Neg {
		t.Fatalf("step = %+v", do.Step)
	}
}

func TestParseDeeplyNestedExpr(t *testing.T) {
	f := parseOK(t, `
      program p
      real*8 x
      x = ((((1.0 + 2.0) * 3.0) - 4.0) / 5.0)
      end
`)
	if _, ok := f.Units[0].Body[0].(*Assign).Rhs.(*BinOp); !ok {
		t.Fatal("nested parens broke parsing")
	}
}
