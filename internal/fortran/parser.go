package fortran

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser over the token stream. Fortran has
// no reserved words, so statement dispatch matches identifier spellings at
// statement start.

// ParseError is a syntax diagnostic.
type ParseError struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

type parser struct {
	file string
	toks []Token
	pos  int
}

// Parse lexes and parses one source file.
func Parse(file, src string) (*File, error) {
	toks, err := Lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	return p.parseFile()
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) peekKind() TokKind { return p.toks[p.pos].Kind }

func (p *parser) at(k TokKind) bool { return p.toks[p.pos].Kind == k }

// atWord reports whether the current token is the identifier w.
func (p *parser) atWord(w string) bool {
	t := p.cur()
	return t.Kind == IDENT && t.Text == w
}

func (p *parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptWord(w string) bool {
	if p.atWord(w) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) fail(format string, args ...any) error {
	t := p.cur()
	return &ParseError{File: p.file, Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, p.fail("expected %s, found %s", k, p.cur())
}

func (p *parser) expectWord(w string) error {
	if p.acceptWord(w) {
		return nil
	}
	return p.fail("expected %q, found %s", w, p.cur())
}

func (p *parser) expectEOL() error {
	if p.accept(NEWLINE) {
		return nil
	}
	if p.at(EOF) {
		return nil
	}
	return p.fail("expected end of line, found %s", p.cur())
}

func (p *parser) skipNewlines() {
	for p.accept(NEWLINE) {
	}
}

func (p *parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	p.skipNewlines()
	for !p.at(EOF) {
		u, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		f.Units = append(f.Units, u)
		p.skipNewlines()
	}
	if len(f.Units) == 0 {
		return nil, p.fail("empty source file")
	}
	return f, nil
}

// parseUnit parses "program name" or "subroutine name(params)" through its
// matching "end".
func (p *parser) parseUnit() (*Unit, error) {
	u := &Unit{Line: p.cur().Line}
	switch {
	case p.acceptWord("program"):
		u.Kind = ProgramUnit
	case p.acceptWord("subroutine"):
		u.Kind = SubroutineUnit
	default:
		return nil, p.fail("expected 'program' or 'subroutine', found %s", p.cur())
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	u.Name = name.Text
	if u.Kind == SubroutineUnit && p.accept(LPAREN) {
		if !p.accept(RPAREN) {
			for {
				a, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				u.Params = append(u.Params, a.Text)
				if p.accept(RPAREN) {
					break
				}
				if _, err := p.expect(COMMA); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}

	// Declaration part: runs until the first executable statement.
	for {
		p.skipNewlines()
		ds, isDecl, err := p.tryParseDecl()
		if err != nil {
			return nil, err
		}
		if !isDecl {
			break
		}
		u.Decls = append(u.Decls, ds...)
	}

	// Executable part.
	body, err := p.parseStmts(func() bool { return p.atWord("end") && p.isPlainEnd() })
	if err != nil {
		return nil, err
	}
	u.Body = body
	if err := p.expectWord("end"); err != nil {
		return nil, err
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	return u, nil
}

// isPlainEnd distinguishes the unit-terminating "end" line from "end do" /
// "end if".
func (p *parser) isPlainEnd() bool {
	return p.toks[p.pos+1].Kind == NEWLINE || p.toks[p.pos+1].Kind == EOF
}

// tryParseDecl parses one declaration line if the current line starts one;
// a c$distribute line may declare several arrays and so yields several
// decls.
func (p *parser) tryParseDecl() ([]Decl, bool, error) {
	if p.at(DIRECTIVE) {
		// distribute / distribute_reshape are declarations; doacross
		// and redistribute belong to the executable part.
		t := p.toks[p.pos+1]
		if t.Kind == IDENT && (t.Text == "distribute" || t.Text == "distribute_reshape") {
			p.next() // DIRECTIVE
			ds, err := p.parseDistribute()
			return ds, true, err
		}
		return nil, false, nil
	}
	one := func(d Decl, err error) ([]Decl, bool, error) {
		if err != nil {
			return nil, true, err
		}
		return []Decl{d}, true, nil
	}
	switch {
	case p.atWord("integer"), p.atWord("real"):
		return one(p.parseTypeDecl())
	case p.atWord("parameter"):
		return one(p.parseParamDecl())
	case p.atWord("common"):
		return one(p.parseCommonDecl())
	case p.atWord("equivalence"):
		return one(p.parseEquivDecl())
	}
	return nil, false, nil
}

func (p *parser) parseTypeDecl() (Decl, error) {
	d := &TypeDecl{Line: p.cur().Line}
	switch {
	case p.acceptWord("integer"):
		d.Type = TInteger
	case p.acceptWord("real"):
		d.Type = TReal8
		// Optional *8 width.
		if p.accept(STAR) {
			w, err := p.expect(INTLIT)
			if err != nil {
				return nil, err
			}
			if w.Text != "8" && w.Text != "4" {
				return nil, p.fail("unsupported real width *%s", w.Text)
			}
		}
	}
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		item := Declarator{Name: name.Text, Line: name.Line}
		if p.accept(LPAREN) {
			for {
				if p.at(STAR) {
					p.next()
					item.Dims = append(item.Dims, nil) // assumed size
				} else {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					item.Dims = append(item.Dims, e)
				}
				if p.accept(RPAREN) {
					break
				}
				if _, err := p.expect(COMMA); err != nil {
					return nil, err
				}
			}
		}
		d.Items = append(d.Items, item)
		if p.accept(NEWLINE) {
			return d, nil
		}
		if _, err := p.expect(COMMA); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseParamDecl() (Decl, error) {
	d := &ParamDecl{Line: p.cur().Line}
	p.next() // parameter
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(EQUALS); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, name.Text)
		d.Values = append(d.Values, v)
		if p.accept(RPAREN) {
			break
		}
		if _, err := p.expect(COMMA); err != nil {
			return nil, err
		}
	}
	return d, p.expectEOL()
}

func (p *parser) parseCommonDecl() (Decl, error) {
	d := &CommonDecl{Line: p.cur().Line}
	p.next() // common
	if _, err := p.expect(SLASH); err != nil {
		return nil, err
	}
	blk, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d.Block = blk.Text
	if _, err := p.expect(SLASH); err != nil {
		return nil, err
	}
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, name.Text)
		if !p.accept(COMMA) {
			break
		}
	}
	return d, p.expectEOL()
}

func (p *parser) parseEquivDecl() (Decl, error) {
	d := &EquivDecl{Line: p.cur().Line}
	p.next() // equivalence
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	a, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	b, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	d.A, d.B = a.Text, b.Text
	return d, p.expectEOL()
}

// parseDistSpec parses "name(<dist>, <dist>, ...)".
func (p *parser) parseDistSpec() (string, []DistDim, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return "", nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return "", nil, err
	}
	var dims []DistDim
	for {
		var dd DistDim
		switch {
		case p.accept(STAR):
			dd.Kind = DStar
		case p.acceptWord("block"):
			dd.Kind = DBlock
		case p.acceptWord("cyclic"):
			dd.Kind = DCyclic
			if p.accept(LPAREN) {
				e, err := p.parseExpr()
				if err != nil {
					return "", nil, err
				}
				if _, err := p.expect(RPAREN); err != nil {
					return "", nil, err
				}
				dd.Kind = DCyclicExpr
				dd.Chunk = e
			}
		default:
			return "", nil, p.fail("expected distribution specifier, found %s", p.cur())
		}
		dims = append(dims, dd)
		if p.accept(RPAREN) {
			break
		}
		if _, err := p.expect(COMMA); err != nil {
			return "", nil, err
		}
	}
	return name.Text, dims, nil
}

// parseDistribute parses the rest of a c$distribute[_reshape] line, which
// may name several arrays: "c$distribute A(*,block), B(block,*)" as in the
// paper's examples (§8.2).
func (p *parser) parseDistribute() ([]Decl, error) {
	line := p.cur().Line
	reshape := false
	switch {
	case p.acceptWord("distribute"):
	case p.acceptWord("distribute_reshape"):
		reshape = true
	default:
		return nil, p.fail("expected distribute directive")
	}
	var out []Decl
	for {
		d := &DistDecl{Line: line, Reshape: reshape}
		name, dims, err := p.parseDistSpec()
		if err != nil {
			return nil, err
		}
		d.Array, d.Dims = name, dims
		if p.acceptWord("onto") {
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				d.Onto = append(d.Onto, e)
				if p.accept(RPAREN) {
					break
				}
				if _, err := p.expect(COMMA); err != nil {
					return nil, err
				}
			}
		}
		out = append(out, d)
		if !p.accept(COMMA) {
			break
		}
	}
	return out, p.expectEOL()
}

// parseStmts parses statements until stop() is true at a statement
// boundary.
func (p *parser) parseStmts(stop func() bool) ([]Stmt, error) {
	var out []Stmt
	for {
		p.skipNewlines()
		if p.at(EOF) || stop() {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	if p.at(DIRECTIVE) {
		return p.parseExecDirective()
	}
	switch {
	case p.atWord("do"):
		return p.parseDo(nil)
	case p.atWord("enddo"), p.atWord("endif"):
		return nil, p.fail("unexpected %q", p.cur().Text)
	case p.atWord("if"):
		return p.parseIf()
	case p.atWord("call"):
		return p.parseCall()
	case p.atWord("return"):
		line := p.next().Line
		return &Return{Line: line}, p.expectEOL()
	case p.atWord("continue"):
		line := p.next().Line
		return &Continue{Line: line}, p.expectEOL()
	case p.atWord("end"):
		// "end do" / "end if" are consumed by their constructs; a bare
		// "end" here is the caller's terminator.
		return nil, p.fail("unexpected 'end'")
	}
	return p.parseAssign()
}

// parseExecDirective handles c$doacross and c$redistribute.
func (p *parser) parseExecDirective() (Stmt, error) {
	p.next() // DIRECTIVE
	switch {
	case p.atWord("doacross"):
		da, err := p.parseDoacross()
		if err != nil {
			return nil, err
		}
		p.skipNewlines()
		if !p.atWord("do") {
			return nil, p.fail("c$doacross must be followed by a do loop")
		}
		return p.parseDo(da)
	case p.atWord("redistribute"):
		line := p.next().Line
		name, dims, err := p.parseDistSpec()
		if err != nil {
			return nil, err
		}
		return &Redistribute{Array: name, Dims: dims, Line: line}, p.expectEOL()
	case p.atWord("distribute"), p.atWord("distribute_reshape"):
		return nil, p.fail("c$%s must appear in the declaration part", p.cur().Text)
	}
	return nil, p.fail("unknown directive c$%s", p.cur().Text)
}

func (p *parser) parseDoacross() (*Doacross, error) {
	da := &Doacross{Line: p.cur().Line}
	p.next() // doacross
	for !p.at(NEWLINE) && !p.at(EOF) {
		switch {
		case p.acceptWord("nest"):
			names, err := p.parseNameList()
			if err != nil {
				return nil, err
			}
			da.Nest = names
		case p.acceptWord("local"):
			names, err := p.parseNameList()
			if err != nil {
				return nil, err
			}
			da.Local = append(da.Local, names...)
		case p.acceptWord("shared"):
			names, err := p.parseNameList()
			if err != nil {
				return nil, err
			}
			da.Shared = append(da.Shared, names...)
		case p.acceptWord("affinity"):
			aff, err := p.parseAffinity()
			if err != nil {
				return nil, err
			}
			da.Affinity = aff
		case p.acceptWord("schedtype"):
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			switch {
			case p.acceptWord("simple"):
				da.Sched = SchedSimple
			case p.acceptWord("interleave"), p.acceptWord("dynamic"):
				if p.toks[p.pos-1].Text == "dynamic" {
					da.Sched = SchedDynamic
				} else {
					da.Sched = SchedInterleave
				}
				if p.accept(COMMA) {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					da.Chunk = e
				}
			case p.acceptWord("gss"):
				da.Sched = SchedGSS
			default:
				return nil, p.fail("unknown schedtype %s", p.cur())
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
		default:
			return nil, p.fail("unknown doacross clause %s", p.cur())
		}
	}
	return da, p.expectEOL()
}

func (p *parser) parseNameList() ([]string, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var names []string
	for {
		t, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		names = append(names, t.Text)
		if p.accept(RPAREN) {
			return names, nil
		}
		if _, err := p.expect(COMMA); err != nil {
			return nil, err
		}
	}
}

// parseAffinity parses "(i[,j]) = data(A(e1[,e2,...]))".
func (p *parser) parseAffinity() (*Affinity, error) {
	aff := &Affinity{Line: p.cur().Line}
	vars, err := p.parseNameList()
	if err != nil {
		return nil, err
	}
	aff.Vars = vars
	if _, err := p.expect(EQUALS); err != nil {
		return nil, err
	}
	if err := p.expectWord("data"); err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	aff.Array = name.Text
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		aff.Index = append(aff.Index, e)
		if p.accept(RPAREN) {
			break
		}
		if _, err := p.expect(COMMA); err != nil {
			return nil, err
		}
	}
	_, err = p.expect(RPAREN)
	return aff, err
}

func (p *parser) parseDo(da *Doacross) (Stmt, error) {
	d := &Do{Doacross: da, Line: p.cur().Line}
	p.next() // do
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d.Var = v.Text
	if _, err := p.expect(EQUALS); err != nil {
		return nil, err
	}
	if d.Lo, err = p.parseExpr(); err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	if d.Hi, err = p.parseExpr(); err != nil {
		return nil, err
	}
	if p.accept(COMMA) {
		if d.Step, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	body, err := p.parseStmts(func() bool { return p.atEndDo() })
	if err != nil {
		return nil, err
	}
	d.Body = body
	if !p.consumeEndDo() {
		return nil, p.fail("expected 'end do', found %s", p.cur())
	}
	return d, p.expectEOL()
}

func (p *parser) atEndDo() bool {
	if p.atWord("enddo") {
		return true
	}
	return p.atWord("end") && p.toks[p.pos+1].Kind == IDENT && p.toks[p.pos+1].Text == "do"
}

func (p *parser) consumeEndDo() bool {
	if p.acceptWord("enddo") {
		return true
	}
	if p.atEndDo() {
		p.pos += 2
		return true
	}
	return false
}

func (p *parser) atEndIf() bool {
	if p.atWord("endif") {
		return true
	}
	return p.atWord("end") && p.toks[p.pos+1].Kind == IDENT && p.toks[p.pos+1].Text == "if"
}

func (p *parser) consumeEndIf() bool {
	if p.acceptWord("endif") {
		return true
	}
	if p.atEndIf() {
		p.pos += 2
		return true
	}
	return false
}

func (p *parser) parseIf() (Stmt, error) {
	s := &If{Line: p.cur().Line}
	p.next() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	s.Cond = cond
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if !p.acceptWord("then") {
		// Logical if: one statement on the same line.
		one, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Then = []Stmt{one}
		return s, nil
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	s.Then, err = p.parseStmts(func() bool { return p.atEndIf() || p.atWord("else") })
	if err != nil {
		return nil, err
	}
	if p.acceptWord("else") {
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		s.Else, err = p.parseStmts(func() bool { return p.atEndIf() })
		if err != nil {
			return nil, err
		}
	}
	if !p.consumeEndIf() {
		return nil, p.fail("expected 'end if', found %s", p.cur())
	}
	return s, p.expectEOL()
}

func (p *parser) parseCall() (Stmt, error) {
	c := &Call{Line: p.cur().Line}
	p.next() // call
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	c.Name = name.Text
	if p.accept(LPAREN) {
		if !p.accept(RPAREN) {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, e)
				if p.accept(RPAREN) {
					break
				}
				if _, err := p.expect(COMMA); err != nil {
					return nil, err
				}
			}
		}
	}
	return c, p.expectEOL()
}

func (p *parser) parseAssign() (Stmt, error) {
	s := &Assign{Line: p.cur().Line}
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	switch lhs.(type) {
	case *Ident, *CallExpr:
	default:
		return nil, p.fail("invalid assignment target")
	}
	s.Lhs = lhs
	if _, err := p.expect(EQUALS); err != nil {
		return nil, err
	}
	if s.Rhs, err = p.parseExpr(); err != nil {
		return nil, err
	}
	return s, p.expectEOL()
}

// Expression grammar (lowest to highest):
//   or:   and (.or. and)*
//   and:  rel (.and. rel)*
//   rel:  add ((< <= > >= == /=) add)?
//   add:  mul ((+|-) mul)*
//   mul:  unary ((*|/) unary)*
//   unary: (-|.not.)? primary
//   primary: literal | ident | ident(args) | (expr)

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(OR) {
		line := p.next().Line
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: OpOr, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseRel()
	if err != nil {
		return nil, err
	}
	for p.at(AND) {
		line := p.next().Line
		r, err := p.parseRel()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: OpAnd, L: l, R: r, Line: line}
	}
	return l, nil
}

var relOps = map[TokKind]BinOpKind{
	LT: OpLT, LE: OpLE, GT: OpGT, GE: OpGE, EQ: OpEQ, NE: OpNE,
}

func (p *parser) parseRel() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := relOps[p.peekKind()]; ok {
		line := p.next().Line
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: op, L: l, R: r, Line: line}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(PLUS) || p.at(MINUS) {
		op := OpAdd
		if p.at(MINUS) {
			op = OpSub
		}
		line := p.next().Line
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(STAR) || p.at(SLASH) {
		op := OpMul
		if p.at(SLASH) {
			op = OpDiv
		}
		line := p.next().Line
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.at(MINUS) {
		line := p.next().Line
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnOp{Neg: true, X: x, Line: line}, nil
	}
	if p.at(NOT) {
		line := p.next().Line
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnOp{Neg: false, X: x, Line: line}, nil
	}
	if p.at(PLUS) {
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.fail("bad integer literal %q", t.Text)
		}
		return &IntLit{Value: v, Line: t.Line}, nil
	case REALLIT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.fail("bad real literal %q", t.Text)
		}
		return &RealLit{Value: v, Line: t.Line}, nil
	case IDENT:
		p.next()
		if !p.accept(LPAREN) {
			return &Ident{Name: t.Text, Line: t.Line}, nil
		}
		c := &CallExpr{Name: t.Text, Line: t.Line}
		if p.accept(RPAREN) {
			return c, nil
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, e)
			if p.accept(RPAREN) {
				return c, nil
			}
			if _, err := p.expect(COMMA); err != nil {
				return nil, err
			}
		}
	case LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(RPAREN)
		return e, err
	}
	return nil, p.fail("expected expression, found %s", t)
}
