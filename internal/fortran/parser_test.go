package fortran

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.f", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse("test.f", src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

const transposeSrc = `
      program transpose
      integer n
      parameter (n = 64)
      real*8 a(n, n), b(n, n)
c$distribute a(*, block)
c$distribute b(block, *)
      integer i, j
c$doacross local(i, j) shared(a, b)
      do i = 1, n
        do j = 1, n
          a(j, i) = b(i, j)
        end do
      end do
      end
`

func TestParseTranspose(t *testing.T) {
	f := parseOK(t, transposeSrc)
	if len(f.Units) != 1 {
		t.Fatalf("units = %d", len(f.Units))
	}
	u := f.Units[0]
	if u.Kind != ProgramUnit || u.Name != "transpose" {
		t.Fatalf("unit = %+v", u)
	}
	var dists []*DistDecl
	for _, d := range u.Decls {
		if dd, ok := d.(*DistDecl); ok {
			dists = append(dists, dd)
		}
	}
	if len(dists) != 2 {
		t.Fatalf("distribute directives = %d", len(dists))
	}
	if dists[0].Array != "a" || dists[0].Dims[0].Kind != DStar || dists[0].Dims[1].Kind != DBlock {
		t.Fatalf("first distribute wrong: %+v", dists[0])
	}
	if len(u.Body) != 1 {
		t.Fatalf("body statements = %d", len(u.Body))
	}
	do, ok := u.Body[0].(*Do)
	if !ok || do.Doacross == nil {
		t.Fatalf("doacross loop missing: %+v", u.Body[0])
	}
	if len(do.Doacross.Local) != 2 || len(do.Doacross.Shared) != 2 {
		t.Fatalf("clauses: %+v", do.Doacross)
	}
	inner, ok := do.Body[0].(*Do)
	if !ok || inner.Var != "j" {
		t.Fatalf("inner loop wrong: %+v", do.Body[0])
	}
}

func TestParseSubroutineParams(t *testing.T) {
	f := parseOK(t, `
      subroutine mysub(x, n)
      integer n
      real*8 x(n)
      x(1) = 0.0
      return
      end
`)
	u := f.Units[0]
	if u.Kind != SubroutineUnit || len(u.Params) != 2 || u.Params[0] != "x" {
		t.Fatalf("unit = %+v", u)
	}
}

func TestParseAffinityClause(t *testing.T) {
	f := parseOK(t, `
      program p
      real*8 a(100)
c$distribute a(block)
      integer i
c$doacross local(i) shared(a) affinity(i) = data(a(i))
      do i = 1, 100
        a(i) = 1.0
      end do
      end
`)
	do := f.Units[0].Body[0].(*Do)
	aff := do.Doacross.Affinity
	if aff == nil || aff.Array != "a" || len(aff.Vars) != 1 || aff.Vars[0] != "i" {
		t.Fatalf("affinity = %+v", aff)
	}
	if _, ok := aff.Index[0].(*Ident); !ok {
		t.Fatalf("affinity index = %+v", aff.Index[0])
	}
}

func TestParseNestAffinity2D(t *testing.T) {
	f := parseOK(t, `
      program p
      real*8 a(10,10)
c$distribute_reshape a(block, block)
      integer i, j
c$doacross nest(i,j) local(i,j) affinity(j,i) = data(a(i,j))
      do j = 1, 10
        do i = 1, 10
          a(i,j) = 0.0
        end do
      end do
      end
`)
	do := f.Units[0].Body[0].(*Do)
	da := do.Doacross
	if len(da.Nest) != 2 || da.Nest[0] != "i" || da.Nest[1] != "j" {
		t.Fatalf("nest = %v", da.Nest)
	}
	if len(da.Affinity.Index) != 2 {
		t.Fatalf("affinity index = %+v", da.Affinity)
	}
}

func TestParseCyclicExprAndOnto(t *testing.T) {
	f := parseOK(t, `
      program p
      integer k
      parameter (k = 5)
      real*8 a(1000, 1000)
c$distribute_reshape a(cyclic(k), block) onto(2, 1)
      a(1,1) = 0.0
      end
`)
	var dd *DistDecl
	for _, d := range f.Units[0].Decls {
		if x, ok := d.(*DistDecl); ok {
			dd = x
		}
	}
	if dd == nil || !dd.Reshape {
		t.Fatalf("distribute_reshape missing")
	}
	if dd.Dims[0].Kind != DCyclicExpr || dd.Dims[0].Chunk == nil {
		t.Fatalf("cyclic(k) wrong: %+v", dd.Dims[0])
	}
	if len(dd.Onto) != 2 {
		t.Fatalf("onto = %+v", dd.Onto)
	}
}

func TestParseRedistribute(t *testing.T) {
	f := parseOK(t, `
      program p
      real*8 a(100)
c$distribute a(block)
c$redistribute a(cyclic)
      end
`)
	rd, ok := f.Units[0].Body[0].(*Redistribute)
	if !ok || rd.Array != "a" || rd.Dims[0].Kind != DCyclic {
		t.Fatalf("redistribute = %+v", f.Units[0].Body[0])
	}
}

func TestParseIfElse(t *testing.T) {
	f := parseOK(t, `
      program p
      integer i
      if (i .lt. 10) then
        i = 1
      else
        i = 2
      end if
      if (i .eq. 1) i = 3
      end
`)
	s1 := f.Units[0].Body[0].(*If)
	if len(s1.Then) != 1 || len(s1.Else) != 1 {
		t.Fatalf("if/else arms: %+v", s1)
	}
	s2 := f.Units[0].Body[1].(*If)
	if len(s2.Then) != 1 || s2.Else != nil {
		t.Fatalf("logical if: %+v", s2)
	}
}

func TestParseCommonEquivalence(t *testing.T) {
	f := parseOK(t, `
      subroutine s
      real*8 a(10), b(10)
      common /blk/ a, b
      equivalence (a, b)
      return
      end
`)
	var c *CommonDecl
	var e *EquivDecl
	for _, d := range f.Units[0].Decls {
		switch x := d.(type) {
		case *CommonDecl:
			c = x
		case *EquivDecl:
			e = x
		}
	}
	if c == nil || c.Block != "blk" || len(c.Names) != 2 {
		t.Fatalf("common = %+v", c)
	}
	if e == nil || e.A != "a" || e.B != "b" {
		t.Fatalf("equivalence = %+v", e)
	}
}

func TestParseCallAndExprPrecedence(t *testing.T) {
	f := parseOK(t, `
      program p
      real*8 x
      integer i
      x = 1.0 + 2.0*3.0 - x/2.0
      i = mod(i, 4) + min(i, 3, 2)
      call work(x, i+1)
      end
`)
	a := f.Units[0].Body[0].(*Assign)
	// 1.0 + 2.0*3.0 - x/2.0 parses as (1+ (2*3)) - (x/2)
	top := a.Rhs.(*BinOp)
	if top.Op != OpSub {
		t.Fatalf("top op = %v", top.Op)
	}
	add := top.L.(*BinOp)
	if add.Op != OpAdd {
		t.Fatalf("left op = %v", add.Op)
	}
	if mul := add.R.(*BinOp); mul.Op != OpMul {
		t.Fatalf("mul missing: %+v", add.R)
	}
	call := f.Units[0].Body[2].(*Call)
	if call.Name != "work" || len(call.Args) != 2 {
		t.Fatalf("call = %+v", call)
	}
}

func TestParseSchedtype(t *testing.T) {
	f := parseOK(t, `
      program p
      real*8 a(100)
      integer i
c$doacross local(i) shared(a) schedtype(interleave, 4)
      do i = 1, 100
        a(i) = 0.0
      end do
      end
`)
	da := f.Units[0].Body[0].(*Do).Doacross
	if da.Sched != SchedInterleave || da.Chunk == nil {
		t.Fatalf("schedtype = %+v", da)
	}
}

func TestParseStep(t *testing.T) {
	f := parseOK(t, `
      program p
      integer i, s
      do i = 1, 100, 5
        s = i
      end do
      end
`)
	do := f.Units[0].Body[0].(*Do)
	if do.Step == nil {
		t.Fatal("step missing")
	}
	if lit, ok := do.Step.(*IntLit); !ok || lit.Value != 5 {
		t.Fatalf("step = %+v", do.Step)
	}
}

func TestParseMultiUnitFile(t *testing.T) {
	f := parseOK(t, `
      program main
      call s1
      end

      subroutine s1
      return
      end
`)
	if len(f.Units) != 2 {
		t.Fatalf("units = %d", len(f.Units))
	}
}

func TestParseErrors(t *testing.T) {
	parseErr(t, "      x = 1\n", "expected 'program' or 'subroutine'")
	parseErr(t, "      program p\n      do i = 1, 10\n      end\n", "unexpected 'end'")
	parseErr(t, "      program p\n      do i = 1, 10\n      x = 1\n", "expected 'end do'")
	parseErr(t, "      program p\nc$doacross local(i)\n      x = 1\n      end\n", "must be followed by a do loop")
	parseErr(t, "      program p\nc$bogus\n      end\n", "unknown directive")
	parseErr(t, "      program p\n      if (x then\n      end\n", "expected )")
	parseErr(t, "      program p\nc$distribute a(pancake)\n      end\n", "expected distribution specifier")
	parseErr(t, "", "empty source file")
	parseErr(t, "      program p\n      x = \n      end\n", "expected expression")
}

func TestParseAssumedSizeDim(t *testing.T) {
	f := parseOK(t, `
      subroutine s(x, n)
      integer n
      real*8 x(*)
      x(1) = 0.0
      end
`)
	var td *TypeDecl
	for _, d := range f.Units[0].Decls {
		if x, ok := d.(*TypeDecl); ok && x.Type == TReal8 {
			td = x
		}
	}
	if td == nil || td.Items[0].Dims[0] != nil {
		t.Fatalf("assumed-size dim not nil: %+v", td)
	}
}

func TestParseContinue(t *testing.T) {
	f := parseOK(t, `
      program p
      integer i
      do i = 1, 3
        continue
      end do
      end
`)
	do := f.Units[0].Body[0].(*Do)
	if _, ok := do.Body[0].(*Continue); !ok {
		t.Fatalf("continue = %+v", do.Body[0])
	}
}
