// Package rtl is the runtime library (paper §4): it loads a compiled image
// onto the simulated machine, performs the program-start-up work the paper
// describes — reading the distribution annotations, computing the processor
// grid for the actual processor count ("the same executable [can] run with
// different number of processors", §3.2), making the page-placement OS
// calls for regular distributions, and building the processor-array storage
// for reshaped distributions from per-processor pools (§4.3) — and services
// the runtime calls: dsm_barrier, redistribute (§3.3), the portion
// intrinsics (§3.2.1), and the argument-checking hash table of §6.
package rtl

import (
	"fmt"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/codegen"
	"dsmdist/internal/dist"
	"dsmdist/internal/ir"
	"dsmdist/internal/machine"
	"dsmdist/internal/memsim"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
)

// CheckError is a §6 runtime-check failure.
type CheckError struct{ Msg string }

func (e *CheckError) Error() string { return "runtime check: " + e.Msg }

// ArrayState is the runtime instantiation of one distributed (or static)
// array.
type ArrayState struct {
	Plan *codegen.ArrayPlan
	// Base is the data base address (static and regular arrays; 0 for
	// reshaped).
	Base int64
	// DescAddr is the descriptor address (0 when undistributed).
	DescAddr int64

	Grid dist.Grid
	Maps []dist.DimMap

	// PortionBytes is the uniform per-processor portion size for
	// reshaped arrays.
	PortionBytes int64
	Portions     []int64 // base address per linear grid processor
}

// TotalElems multiplies the extents.
func (a *ArrayState) TotalElems() int64 { return elems(a.Plan.Dims) }

func elems(dims []int64) int64 {
	n := int64(1)
	for _, d := range dims {
		n *= d
	}
	return n
}

// Runtime is the loaded program plus runtime state; it implements
// bytecode.Runtime.
type Runtime struct {
	Cfg    *machine.Config
	Sys    *memsim.System
	Pages  *ospage.Manager
	Prog   *bytecode.Program
	Res    *codegen.Result
	Arrays []*ArrayState

	// per-processor stack segments
	StackBase []int64
	StackEnd  []int64

	// byDesc resolves descriptor addresses to arrays (portion
	// intrinsics and checks).
	byDesc map[int64]*ArrayState

	// §6 hash table: actual-argument records keyed by passed address,
	// plus a push log so pops can unwind the newest entries.
	argTable map[int64][]pushedArg
	pushLog  []int64

	// RedistPages counts pages moved by redistribute calls.
	RedistPages int64

	// RedistSerial selects the legacy serial redistribute cost model (a
	// page walk charged to the calling processor only) instead of the
	// scheduled collective — the -redist=serial A/B escape hatch.
	RedistSerial bool

	// Region-of-interest timer (dsm_timer_start/stop). The timer is
	// pinned to the processor that started it (TimerProc), so a stop
	// executed by a different processor reads the starter's clock and
	// cannot produce skewed or negative spans.
	TimerStart   int64
	TimerCycles  int64
	TimerRunning bool
	TimerProc    int

	// Dynamic-scheduling cursor for the region currently executing
	// (schedtype(dynamic) and schedtype(gss)); the executor resets it at
	// each region fork.
	DynCursor int64

	// Rec is the observability sink shared with memsim/ospage/exec (nil
	// when tracing is off).
	Rec *obs.Recorder
}

// ResetDynamic clears the dynamic-scheduling cursor; the executor calls it
// when dispatching a region.
func (rt *Runtime) ResetDynamic() { rt.DynCursor = 0 }

type pushedArg struct {
	info  *codegen.CheckInfo
	arr   *ArrayState
	bytes int64 // resolved portion size for CheckPortion
}

// StackBytes is the per-processor stack segment size.
const StackBytes = 256 << 10

// poolChunk is the allocation granularity of per-processor reshaped pools.
type pool struct {
	cur, end int64
}

// Load materializes the compiled image: allocates static data, builds
// descriptors and portion pools, and places pages for regular
// distributions.
func Load(res *codegen.Result, cfg *machine.Config, policy ospage.Policy) (*Runtime, error) {
	return LoadObs(res, cfg, policy, nil)
}

// LoadObs is Load with an observability sink: the recorder is attached to
// the page manager and memory system before any placement happens, so
// load-time events (explicit distribution placement, pool growth) are
// captured, and the runtime registers every array's address ranges for
// miss attribution.
func LoadObs(res *codegen.Result, cfg *machine.Config, policy ospage.Policy, rec *obs.Recorder) (*Runtime, error) {
	pages := ospage.New(cfg)
	pages.SetPolicy(policy)
	sys, err := memsim.New(cfg, pages)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		pages.SetRecorder(rec)
		sys.SetRecorder(rec)
	}
	rt := &Runtime{
		Cfg: cfg, Sys: sys, Pages: pages, Prog: res.Prog, Res: res,
		Rec:      rec,
		byDesc:   map[int64]*ArrayState{},
		argTable: map[int64][]pushedArg{},
	}

	// Static data symbols.
	for _, s := range res.Prog.Syms {
		if s.Bytes <= 0 {
			s.Bytes = 8
		}
		s.Addr = sys.Alloc(s.Bytes, s.Align)
	}
	if err := res.Prog.Patch(); err != nil {
		return nil, err
	}

	// Per-processor stacks, placed locally.
	pb := int64(cfg.PageBytes)
	for p := 0; p < cfg.NProcs; p++ {
		base := sys.Alloc(StackBytes, pb)
		rt.StackBase = append(rt.StackBase, base)
		rt.StackEnd = append(rt.StackEnd, base+StackBytes)
		pages.Place(base, base+StackBytes, cfg.NodeOf(p), false)
	}

	// Arrays.
	pools := make([]pool, cfg.NProcs)
	for _, plan := range res.Arrays {
		st, err := rt.loadArray(plan, pools)
		if err != nil {
			return nil, err
		}
		rt.Arrays = append(rt.Arrays, st)
		if st.DescAddr != 0 {
			rt.byDesc[st.DescAddr] = st
		}
	}
	if rec != nil {
		for _, st := range rt.Arrays {
			rt.registerArrayObs(rec, st)
		}
	}
	return rt, nil
}

// registerArrayObs (re-)registers one array with the recorder: its address
// ranges for miss attribution plus, for distributed arrays, the
// distribution text and page-ownership map. redistribute calls it again so
// post-redistribute events attribute against the new ownership.
func (rt *Runtime) registerArrayObs(rec *obs.Recorder, st *ArrayState) {
	name := st.Plan.Unit + "." + st.Plan.Name
	rec.RegisterArray(name, st.AddrRanges())
	if st.Plan.Spec != nil {
		rec.SetArrayOwnership(name, st.Plan.Spec.String(), st.PageOwners(rt.Cfg))
	}
}

// PageOwners computes the node the current distribution assigns to each
// virtual page of the array. Regular arrays follow the §4.2 placement rule
// (ascending processor order, so a boundary page shared by several
// portions belongs to its last requester); reshaped arrays own the pool
// pages their portions occupy.
func (st *ArrayState) PageOwners(cfg *machine.Config) map[int64]int {
	if st.Plan.Spec == nil {
		return nil
	}
	pb := int64(cfg.PageBytes)
	owners := map[int64]int{}
	if st.Portions != nil {
		for p, base := range st.Portions {
			node := cfg.NodeOf(p)
			for vp := base / pb; vp*pb < base+st.PortionBytes; vp++ {
				owners[vp] = node
			}
		}
		return owners
	}
	for p := 0; p < st.Grid.Used; p++ {
		node := cfg.NodeOf(p)
		st.ownedRuns(p, func(lo, hi int64) {
			for vp := lo / pb; vp*pb < hi; vp++ {
				owners[vp] = node
			}
		})
	}
	return owners
}

// AttachRecorder connects an observability sink to an already-loaded
// runtime (load-time placement events have passed, but arrays are
// registered for attribution and all further events flow).
func (rt *Runtime) AttachRecorder(rec *obs.Recorder) {
	rt.Rec = rec
	rt.Pages.SetRecorder(rec)
	rt.Sys.SetRecorder(rec)
	if rec != nil {
		for _, st := range rt.Arrays {
			rt.registerArrayObs(rec, st)
		}
	}
}

// AddrRanges returns the byte ranges backing the array: the base range for
// static and regular arrays, one range per portion for reshaped arrays.
func (st *ArrayState) AddrRanges() [][2]int64 {
	if st.Portions != nil {
		out := make([][2]int64, 0, len(st.Portions))
		for _, base := range st.Portions {
			out = append(out, [2]int64{base, base + st.PortionBytes})
		}
		return out
	}
	if st.Base == 0 {
		return nil
	}
	return [][2]int64{{st.Base, st.Base + st.TotalElems()*8}}
}

// loadArray materializes one array.
func (rt *Runtime) loadArray(plan *codegen.ArrayPlan, pools []pool) (*ArrayState, error) {
	st := &ArrayState{Plan: plan}
	if plan.DataSym >= 0 {
		st.Base = rt.Prog.Syms[plan.DataSym].Addr + plan.DataOffset
	}
	if plan.Spec == nil {
		return st, nil
	}

	grid, err := dist.NewGrid(*plan.Spec, rt.Cfg.NProcs)
	if err != nil {
		return nil, fmt.Errorf("rtl: %s.%s: %w", plan.Unit, plan.Name, err)
	}
	st.Grid = grid
	intDims := make([]int, len(plan.Dims))
	for i, d := range plan.Dims {
		intDims[i] = int(d)
	}
	st.Maps, err = grid.Maps(intDims)
	if err != nil {
		return nil, err
	}
	st.DescAddr = rt.Prog.Syms[plan.DescSym].Addr
	rt.writeDescriptor(st)

	if plan.Spec.Reshape {
		rt.allocPortions(st, pools)
	} else {
		rt.placeRegular(st, false)
	}
	return st, nil
}

// writeDescriptor fills the N/P/B/K/ML fields for every dimension.
func (rt *Runtime) writeDescriptor(st *ArrayState) {
	for d, m := range st.Maps {
		base := st.DescAddr + int64(d*ir.DescFields*8)
		k := int64(1)
		if m.Kind == dist.BlockCyclic {
			k = int64(m.Chunk)
		}
		b := int64(m.B)
		if b == 0 {
			b = int64(m.N)
		}
		rt.Sys.Poke(base+int64(ir.FieldN)*8, uint64(m.N))
		rt.Sys.Poke(base+int64(ir.FieldP)*8, uint64(m.P))
		rt.Sys.Poke(base+int64(ir.FieldB)*8, uint64(b))
		rt.Sys.Poke(base+int64(ir.FieldK)*8, uint64(k))
		rt.Sys.Poke(base+int64(ir.FieldML)*8, uint64(m.MaxPortionLen()))
	}
}

// allocPortions builds the processor-array representation of a reshaped
// array (§4.3, Figure 3): each linear grid processor's portion is allocated
// from that processor's local pool — so portions need no padding to page
// boundaries — and the portion table is written into the descriptor.
func (rt *Runtime) allocPortions(st *ArrayState, pools []pool) {
	per := int64(8)
	for _, m := range st.Maps {
		per *= int64(m.MaxPortionLen())
	}
	st.PortionBytes = per
	st.Portions = make([]int64, st.Grid.Used)
	tbl := st.DescAddr + codegen.DescTableOff(len(st.Maps))
	for p := 0; p < st.Grid.Used; p++ {
		addr := rt.poolAlloc(&pools[p], p, per)
		st.Portions[p] = addr
		rt.Sys.Poke(tbl+int64(p)*8, uint64(addr))
	}
}

// poolAlloc bump-allocates from processor p's local pool, growing it in
// page-multiple chunks placed on p's node.
func (rt *Runtime) poolAlloc(pl *pool, p int, n int64) int64 {
	if pl.cur+n > pl.end {
		pb := int64(rt.Cfg.PageBytes)
		chunk := (n + pb - 1) / pb * pb
		if chunk < 16*pb {
			chunk = 16 * pb
		}
		base := rt.Sys.Alloc(chunk, pb)
		rt.Pages.Place(base, base+chunk, rt.Cfg.NodeOf(p), false)
		if rt.Rec != nil {
			rt.Rec.PoolAlloc(p, rt.Cfg.NodeOf(p), chunk)
		}
		pl.cur, pl.end = base, base+chunk
	}
	a := pl.cur
	pl.cur += n
	return a
}

// ownedRuns invokes fn for every maximal contiguous byte run of the array
// owned by linear grid processor p, in ascending address order.
func (st *ArrayState) ownedRuns(p int, fn func(lo, hi int64)) {
	coord := st.Grid.Coord(p)
	// Leading contiguity: dimensions before the first distributed one
	// are fully owned, giving runLen elements per run.
	runLen := int64(1)
	first := len(st.Maps)
	for d, m := range st.Maps {
		if m.Distributed() && m.P > 1 {
			first = d
			break
		}
		runLen *= int64(m.N)
	}
	if first == len(st.Maps) {
		if p == 0 {
			fn(st.Base, st.Base+runLen*8)
		}
		return
	}
	// The first distributed dimension extends runs when its owned
	// ranges are contiguous.
	fm := st.Maps[first]
	fRanges := fm.OwnedRanges(coord[first])

	// Enumerate index combinations of the dimensions after `first` that
	// p owns; each combination plus one owned range of `first` is a
	// contiguous run of runLen-element columns.
	var walk func(d int, offset, stride int64)
	walk = func(d int, offset, stride int64) {
		if d >= len(st.Maps) {
			for _, r := range fRanges {
				lo := st.Base + (offset+int64(r.Lo)*runLen)*8
				hi := lo + int64(r.Hi-r.Lo)*runLen*8
				fn(lo, hi)
			}
			return
		}
		m := st.Maps[d]
		if !m.Distributed() || m.P == 1 {
			for i := 0; i < m.N; i++ {
				walk(d+1, offset+int64(i)*stride, stride*int64(m.N))
			}
			return
		}
		for _, r := range m.OwnedRanges(coord[d]) {
			for i := r.Lo; i < r.Hi; i++ {
				walk(d+1, offset+int64(i)*stride, stride*int64(m.N))
			}
		}
	}
	walk(first+1, 0, runLen*int64(fm.N))
}

// placeRegular performs the §4.2 page placement for a regular
// distribution: each processor's owned runs are placed on its node, in
// ascending processor order so that a boundary page shared by several
// portions lands with the highest-numbered (i.e. last-requesting) owner,
// matching the paper's observed behaviour (§8.3). With migrate, existing
// mappings move (the redistribute path) and caches/TLBs are invalidated.
func (rt *Runtime) placeRegular(st *ArrayState, migrate bool) int {
	moved := 0
	pb := int64(rt.Cfg.PageBytes)
	for p := 0; p < st.Grid.Used; p++ {
		node := rt.Cfg.NodeOf(p)
		st.ownedRuns(p, func(lo, hi int64) {
			if migrate {
				// Invalidate caches and TLBs for pages that move.
				for vp := lo / pb; vp*pb < hi; vp++ {
					cur := rt.Pages.NodeOf(vp * pb)
					if cur >= 0 && cur != node {
						rt.Sys.MigratePage(vp)
						moved++
					}
				}
				rt.Pages.Place(lo, hi, node, true)
				return
			}
			rt.Pages.Place(lo, hi, node, false)
		})
	}
	return moved
}

// Traffic attributes L2 misses to one array's storage: its static range or
// its reshaped portions. The analysis mirrors what the paper does with the
// R10000 counters (§8): find which data structure a placement problem lives
// in.
func (rt *Runtime) Traffic(st *ArrayState) int64 {
	if st.Portions != nil {
		var n int64
		for _, base := range st.Portions {
			n += rt.Sys.PageMisses(base, base+st.PortionBytes)
		}
		return n
	}
	if st.Base == 0 {
		return 0
	}
	return rt.Sys.PageMisses(st.Base, st.Base+st.TotalElems()*8)
}

// ArrayByName finds an array state (tests, result extraction).
func (rt *Runtime) ArrayByName(unit, name string) *ArrayState {
	for _, a := range rt.Arrays {
		if a.Plan.Unit == unit && a.Plan.Name == name {
			return a
		}
	}
	return nil
}

// Gather copies the array's logical contents out of the simulation in
// column-major order, reassembling reshaped portions.
func (rt *Runtime) Gather(st *ArrayState) []float64 {
	n := st.TotalElems()
	out := make([]float64, n)
	if st.Plan.Spec == nil || !st.Plan.Spec.Reshape {
		for i := int64(0); i < n; i++ {
			out[i] = rt.Sys.PeekFloat(st.Base + i*8)
		}
		return out
	}
	// Reshaped: walk every element, computing its portion address.
	idx := make([]int, len(st.Maps))
	for i := int64(0); i < n; i++ {
		addr := rt.ElemAddr(st, idx)
		out[i] = rt.Sys.PeekFloat(addr)
		for d := 0; d < len(idx); d++ {
			idx[d]++
			if idx[d] < st.Maps[d].N {
				break
			}
			idx[d] = 0
		}
	}
	return out
}

// ElemAddr computes the simulated address of one element (zero-based
// subscripts) of any array.
func (rt *Runtime) ElemAddr(st *ArrayState, idx []int) int64 {
	if st.Plan.Spec == nil || !st.Plan.Spec.Reshape {
		off := int64(0)
		stride := int64(1)
		for d := range idx {
			off += int64(idx[d]) * stride
			stride *= st.Plan.Dims[d]
		}
		return st.Base + off*8
	}
	coord := make([]int, len(idx))
	off := int64(0)
	stride := int64(1)
	for d := range idx {
		m := st.Maps[d]
		coord[d] = m.Owner(idx[d])
		off += int64(m.Offset(idx[d])) * stride
		stride *= int64(m.MaxPortionLen())
	}
	p := st.Grid.Linear(coord)
	return st.Portions[p] + off*8
}

// Scatter writes logical contents into the simulated array (test setup).
func (rt *Runtime) Scatter(st *ArrayState, data []float64) {
	idx := make([]int, len(st.Maps))
	if st.Plan.Spec == nil || !st.Plan.Spec.Reshape {
		for i, v := range data {
			rt.Sys.PokeFloat(st.Base+int64(i)*8, v)
		}
		return
	}
	for _, v := range data {
		rt.Sys.PokeFloat(rt.ElemAddr(st, idx), v)
		for d := 0; d < len(idx); d++ {
			idx[d]++
			if idx[d] < st.Maps[d].N {
				break
			}
			idx[d] = 0
		}
	}
}
