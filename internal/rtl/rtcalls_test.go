package rtl

import (
	"strings"
	"testing"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/ospage"
)

func TestDynGrabPackedEncoding(t *testing.T) {
	rt := loadSrc(t, loaderSrc, 2, ospage.FirstTouch)
	th := &bytecode.Thread{Proc: 0}

	// Largest legal trip count: both fields of the packed result must
	// round-trip, including a start value near the top of its 31-bit
	// range.
	total := dynPackLimit - 1
	v, err := rt.RTCall(th, bytecode.RTDynGrab, []int64{total, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if start, grab := v>>31, v&(dynPackLimit-1); start != 0 || grab != 5 {
		t.Fatalf("first grab = (%d, %d), want (0, 5)", start, grab)
	}
	rt.DynCursor = total - 3 // tail chunk: start close to 2^31
	v, err = rt.RTCall(th, bytecode.RTDynGrab, []int64{total, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if start, grab := v>>31, v&(dynPackLimit-1); start != total-3 || grab != 3 {
		t.Fatalf("tail grab = (%d, %d), want (%d, 3)", start, grab, total-3)
	}
}

func TestDynGrabOverflowGuard(t *testing.T) {
	rt := loadSrc(t, loaderSrc, 2, ospage.FirstTouch)
	th := &bytecode.Thread{Proc: 0}

	// A trip count of 2^31 no longer fits the packed start<<31|len
	// encoding; it must be a clear runtime error, not silent corruption.
	_, err := rt.RTCall(th, bytecode.RTDynGrab, []int64{dynPackLimit, 1, 0})
	if err == nil {
		t.Fatal("2^31-iteration dynamic loop accepted")
	}
	if !strings.Contains(err.Error(), "2^31") {
		t.Fatalf("overflow error does not explain the limit: %v", err)
	}
}

func TestTimerPinnedToStartingProc(t *testing.T) {
	rt := loadSrc(t, loaderSrc, 4, ospage.FirstTouch)

	// Start on processor 1, advance it by a known amount, then stop from
	// processor 3 whose clock has raced far ahead. The elapsed time must
	// be processor 1's 5000 cycles, not a cross-clock difference.
	rt.RTCall(&bytecode.Thread{Proc: 1}, bytecode.RTTimerStart, nil)
	rt.Sys.AddCycles(1, 5000)
	rt.Sys.AddCycles(3, 1_000_000)
	rt.RTCall(&bytecode.Thread{Proc: 3}, bytecode.RTTimerStop, nil)
	if rt.TimerCycles != 5000 {
		t.Fatalf("timer = %d cycles, want 5000 (stop sampled the wrong clock)", rt.TimerCycles)
	}

	// And the other skew direction: stopping from a processor that lags
	// the starter must not produce a negative interval.
	rt.RTCall(&bytecode.Thread{Proc: 3}, bytecode.RTTimerStart, nil)
	rt.Sys.AddCycles(3, 700)
	rt.RTCall(&bytecode.Thread{Proc: 0}, bytecode.RTTimerStop, nil)
	if rt.TimerCycles != 5700 {
		t.Fatalf("timer = %d cycles after second interval, want 5700", rt.TimerCycles)
	}
}
