package rtl

import (
	"strings"
	"testing"

	"dsmdist/internal/dist"
	"dsmdist/internal/link"
	"dsmdist/internal/machine"
	"dsmdist/internal/obj"
	"dsmdist/internal/ospage"
	"dsmdist/internal/xform"
)

// loadSrc builds a program and loads it on a Tiny machine.
func loadSrc(t *testing.T, src string, nprocs int, policy ospage.Policy) *Runtime {
	t.Helper()
	o, err := obj.Compile("t.f", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := link.Link([]*obj.Object{o}, link.Config{Opt: xform.O3(), RuntimeChecks: true})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	rt, err := Load(img.Res, machine.Tiny(nprocs), policy)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return rt
}

const loaderSrc = `
      program p
      integer n
      parameter (n = 64)
      real*8 a(n), b(n, n), c(n)
c$distribute_reshape a(block)
c$distribute b(*, block)
      a(1) = 0.0
      b(1, 1) = 0.0
      c(1) = 0.0
      end
`

func TestDescriptorContents(t *testing.T) {
	rt := loadSrc(t, loaderSrc, 4, ospage.FirstTouch)
	st := rt.ArrayByName("p", "a")
	if st == nil || st.DescAddr == 0 {
		t.Fatal("descriptor missing")
	}
	// N=64, P=4, B=16, ML=16 for block over 4 procs.
	rd := func(f int64) int64 { return int64(rt.Sys.Peek(st.DescAddr + f*8)) }
	if rd(0) != 64 || rd(1) != 4 || rd(2) != 16 || rd(4) != 16 {
		t.Fatalf("descriptor = N=%d P=%d B=%d K=%d ML=%d", rd(0), rd(1), rd(2), rd(3), rd(4))
	}
}

func TestPortionsAreLocal(t *testing.T) {
	rt := loadSrc(t, loaderSrc, 4, ospage.FirstTouch)
	st := rt.ArrayByName("p", "a")
	if len(st.Portions) != 4 {
		t.Fatalf("portions = %d", len(st.Portions))
	}
	for p, base := range st.Portions {
		node := rt.Pages.NodeOf(base)
		if node != rt.Cfg.NodeOf(p) {
			t.Errorf("portion %d on node %d, want %d", p, node, rt.Cfg.NodeOf(p))
		}
	}
}

func TestRegularPlacement(t *testing.T) {
	rt := loadSrc(t, loaderSrc, 4, ospage.FirstTouch)
	st := rt.ArrayByName("p", "b") // (*,block): column blocks of 16 columns
	if st.Base == 0 {
		t.Fatal("regular array has no base")
	}
	// Column block owned by proc p starts at column p*16; its first
	// byte's page must be on p's node (columns are 64*8=512B, page 256B
	// on Tiny, so interior pages are single-owner).
	colBytes := int64(64 * 8)
	for p := 0; p < 4; p++ {
		addr := st.Base + int64(p)*16*colBytes + 256 // interior of the portion
		if got := rt.Pages.NodeOf(addr); got != rt.Cfg.NodeOf(p) {
			t.Errorf("proc %d portion page on node %d, want %d", p, got, rt.Cfg.NodeOf(p))
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	rt := loadSrc(t, loaderSrc, 4, ospage.FirstTouch)
	for _, name := range []string{"a", "b", "c"} {
		st := rt.ArrayByName("p", name)
		n := st.TotalElems()
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(i) * 1.5
		}
		rt.Scatter(st, data)
		got := rt.Gather(st)
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], data[i])
			}
		}
	}
}

func TestElemAddrMatchesTable1(t *testing.T) {
	rt := loadSrc(t, loaderSrc, 4, ospage.FirstTouch)
	st := rt.ArrayByName("p", "a") // block over 4 procs, b=16
	// Element 20 (zero-based) is owned by proc 1 at offset 4.
	addr := rt.ElemAddr(st, []int{20})
	want := st.Portions[1] + 4*8
	if addr != want {
		t.Fatalf("ElemAddr = %#x, want %#x", addr, want)
	}
}

func TestDenseExtent(t *testing.T) {
	src := `
      program p
      real*8 a(100), b(100)
c$distribute_reshape a(cyclic(5)), b(block)
      a(1) = 0.0
      b(1) = 0.0
      end
`
	rt := loadSrc(t, src, 4, ospage.FirstTouch)
	a := rt.ArrayByName("p", "a")
	// At a chunk start: 5 elements allowed.
	if got := rt.denseExtent(a, a.Portions[0]); got != 5*8 {
		t.Fatalf("cyclic(5) chunk start extent = %d, want 40", got)
	}
	// Two elements into a chunk: 3 remain.
	if got := rt.denseExtent(a, a.Portions[0]+2*8); got != 3*8 {
		t.Fatalf("mid-chunk extent = %d, want 24", got)
	}
	b := rt.ArrayByName("p", "b")
	// Block: dense to the end of the portion (25 elements).
	if got := rt.denseExtent(b, b.Portions[0]); got != 25*8 {
		t.Fatalf("block extent = %d, want 200", got)
	}
	if got := rt.denseExtent(b, b.Portions[0]+20*8); got != 5*8 {
		t.Fatalf("block tail extent = %d, want 40", got)
	}
	// Address outside any portion.
	if got := rt.denseExtent(b, 64); got != 0 {
		t.Fatalf("bogus address extent = %d", got)
	}
}

func TestStacksAreLocalAndDistinct(t *testing.T) {
	rt := loadSrc(t, loaderSrc, 4, ospage.FirstTouch)
	seen := map[int64]bool{}
	for p := 0; p < 4; p++ {
		if seen[rt.StackBase[p]] {
			t.Fatal("stacks overlap")
		}
		seen[rt.StackBase[p]] = true
		if got := rt.Pages.NodeOf(rt.StackBase[p]); got != rt.Cfg.NodeOf(p) {
			t.Errorf("stack %d on node %d, want %d", p, got, rt.Cfg.NodeOf(p))
		}
	}
}

func TestGridRespectsProcCount(t *testing.T) {
	// The same image loaded with different processor counts gets
	// different grids (the paper: "the same executable [can] run with
	// different number of processors").
	for _, np := range []int{1, 2, 8} {
		rt := loadSrc(t, loaderSrc, np, ospage.FirstTouch)
		st := rt.ArrayByName("p", "a")
		if st.Grid.Used != np {
			t.Fatalf("np=%d: grid uses %d procs", np, st.Grid.Used)
		}
		if len(st.Portions) != np {
			t.Fatalf("np=%d: %d portions", np, len(st.Portions))
		}
	}
}

func TestCheckErrorMessage(t *testing.T) {
	e := &CheckError{Msg: "boom"}
	if !strings.Contains(e.Error(), "runtime check") {
		t.Fatal("error prefix missing")
	}
}

func TestSpecString(t *testing.T) {
	// sanity: the dist spec in a loaded plan prints usefully
	rt := loadSrc(t, loaderSrc, 2, ospage.FirstTouch)
	st := rt.ArrayByName("p", "a")
	if st.Plan.Spec == nil || st.Plan.Spec.Dims[0].Kind != dist.Block {
		t.Fatalf("plan spec = %+v", st.Plan.Spec)
	}
}

func TestTrafficAttribution(t *testing.T) {
	rt := loadSrc(t, loaderSrc, 2, ospage.FirstTouch)
	a := rt.ArrayByName("p", "a") // reshaped
	b := rt.ArrayByName("p", "b") // regular static
	// Stream through b only; its traffic must exceed a's.
	for i := int64(0); i < b.TotalElems(); i++ {
		rt.Sys.LoadWord(0, b.Base+i*8)
	}
	if rt.Traffic(b) == 0 {
		t.Fatal("no traffic attributed to b")
	}
	if rt.Traffic(a) >= rt.Traffic(b) {
		t.Fatalf("a traffic %d >= b traffic %d", rt.Traffic(a), rt.Traffic(b))
	}
	// Now stream a's portions.
	before := rt.Traffic(a)
	for _, base := range a.Portions {
		for off := int64(0); off < a.PortionBytes; off += 8 {
			rt.Sys.LoadWord(1, base+off)
		}
	}
	if rt.Traffic(a) <= before {
		t.Fatal("portion traffic not attributed")
	}
}
