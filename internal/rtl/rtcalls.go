package rtl

import (
	"fmt"

	"dsmdist/internal/bytecode"
	"dsmdist/internal/codegen"
	"dsmdist/internal/dist"
)

// RTCall implements bytecode.Runtime.
func (rt *Runtime) RTCall(t *bytecode.Thread, id int, args []int64) (int64, error) {
	switch id {
	case bytecode.RTBarrier:
		// The interpreter turns this sentinel into AtBarrier status;
		// the executor rendezvouses region threads and treats a
		// barrier in serial code as a no-op.
		return 0, bytecode.ErrBarrier

	case bytecode.RTRedist:
		return rt.redistribute(t, int(args[0]))

	case bytecode.RTPortionLo, bytecode.RTPortionHi:
		return rt.portionBound(id, args)

	case bytecode.RTArgPush:
		return 0, rt.argPush(args[0], int(args[1]))

	case bytecode.RTArgPop:
		rt.argPop(int(args[0]))
		return 0, nil

	case bytecode.RTArgCheck:
		return 0, rt.argCheck(args[0], int(args[1]))

	case bytecode.RTTimerStart:
		// Pin the timer to the starting processor's clock; a stop
		// executed elsewhere reads the same clock, so cross-processor
		// start/stop pairs cannot yield skewed or negative elapsed
		// cycles.
		rt.TimerProc = t.Proc
		rt.TimerStart = rt.Sys.Clock(t.Proc)
		rt.TimerRunning = true
		return 0, nil

	case bytecode.RTTimerStop:
		if rt.TimerRunning {
			rt.TimerCycles += rt.Sys.Clock(rt.TimerProc) - rt.TimerStart
			rt.TimerRunning = false
		}
		return 0, nil

	case bytecode.RTNestGrid:
		// Processor-grid factorization for schedtype(simple) nests
		// without affinity: the MP runtime blocks the nested iteration
		// space over a near-square grid, like a (block,block,...)
		// distribution of the loops themselves.
		nd := int(args[0])
		d := int(args[1])
		if nd < 1 || d < 0 || d >= nd {
			return 0, fmt.Errorf("rtl: bad nest grid request (%d,%d)", nd, d)
		}
		spec := dist.Spec{Dims: make([]dist.Dim, nd)}
		for i := range spec.Dims {
			spec.Dims[i].Kind = dist.Block
		}
		grid, err := dist.NewGrid(spec, rt.Cfg.NProcs)
		if err != nil {
			return 0, err
		}
		return int64(grid.DimProcs[d]), nil

	case bytecode.RTAllocStack:
		// Dynamically sized local arrays (§3.2: "including dynamically
		// sized local arrays"): automatic storage carved from the
		// calling processor's stack segment, freed with the frame.
		n := (args[0] + 7) &^ 7
		base := (t.SP + 7) &^ 7
		if base+n > t.StackEnd {
			return 0, fmt.Errorf("rtl: dynamic local array of %d bytes overflows the stack", n)
		}
		t.SP = base + n
		for a := base; a < base+n; a += 8 {
			rt.Sys.Poke(a, 0)
		}
		return base, nil

	case bytecode.RTDynGrab:
		// schedtype(dynamic) / schedtype(gss): hand the caller the next
		// chunk of iterations from the shared cursor. Returns
		// start*2^31 + len; len 0 means the loop is exhausted. The
		// caller is charged a synchronization cost per grab.
		total, chunk, mode := args[0], args[1], args[2]
		if chunk < 1 {
			chunk = 1
		}
		if total >= dynPackLimit {
			// The packed result holds both fields in one int64; a trip
			// count at or beyond 2^31 would silently corrupt them, so
			// reject it loudly instead.
			return 0, fmt.Errorf(
				"rtl: schedtype(dynamic/gss) loop has %d iterations, exceeding the %d (2^31-1) limit of the packed start<<31|len chunk encoding",
				total, dynPackLimit-1)
		}
		start := rt.DynCursor
		if start >= total {
			return 0, nil
		}
		grab := chunk
		if mode == 1 { // guided self-scheduling: remaining / 2P
			g := (total - start + int64(2*rt.Cfg.NProcs) - 1) / int64(2*rt.Cfg.NProcs)
			if g > grab {
				grab = g
			}
		}
		if start+grab > total {
			grab = total - start
		}
		rt.DynCursor = start + grab
		rt.Sys.AddCycles(t.Proc, 40) // shared-counter synchronization
		return start<<31 | grab, nil
	}
	return 0, fmt.Errorf("rtl: unknown runtime call %d", id)
}

// dynPackLimit bounds schedtype(dynamic)/gss trip counts: RTDynGrab packs
// its result as start<<31 | len, so start and len must each fit in 31 bits.
// Loops with total < 2^31 can never produce an out-of-range start or len.
const dynPackLimit = int64(1) << 31

// Scheduled-collective cost constants.
const (
	// redistSetupCyc is the collective's fixed overhead: computing the
	// intersection schedule and dispatching the participants, paid once
	// by every processor at the rendezvous.
	redistSetupCyc = 2000
	// dmaSetupCyc is the per-transfer overhead of programming one
	// node-to-node DMA stream and rewriting the page mappings it covers.
	dmaSetupCyc = 2000
)

// redistribute implements c$redistribute (§3.3, §4.2): remap the array's
// pages to the new distribution and update the descriptor.
//
// By default the data motion is modeled as a communication-scheduled
// collective: the old×new ownership intersection yields per-(src,dst)-node
// transfer sets, a bipartite edge coloring packs them into rounds in which
// every node sends and receives at most one bulk stream, and all nodes
// move their transfers concurrently through the memory system's bandwidth
// windows (redistCollective). With RedistSerial the legacy model is used
// instead: a serial page walk charging a flat per-page cost to the calling
// processor.
func (rt *Runtime) redistribute(t *bytecode.Thread, planID int) (int64, error) {
	if planID < 0 || planID >= len(rt.Res.Redists) {
		return 0, fmt.Errorf("rtl: bad redistribute id %d", planID)
	}
	rp := rt.Res.Redists[planID]
	st := rt.Arrays[rp.Array]
	if st.Plan.Spec == nil || st.Plan.Spec.Reshape {
		return 0, fmt.Errorf("rtl: redistribute of non-regular array %s", st.Plan.Name)
	}

	spec := rp.Spec
	grid, err := dist.NewGrid(spec, rt.Cfg.NProcs)
	if err != nil {
		return 0, err
	}
	intDims := make([]int, len(st.Plan.Dims))
	for i, d := range st.Plan.Dims {
		intDims[i] = int(d)
	}
	maps, err := grid.Maps(intDims)
	if err != nil {
		return 0, err
	}
	oldGrid, oldMaps := st.Grid, st.Maps
	st.Grid, st.Maps = grid, maps
	sp := spec
	st.Plan.Spec = &sp
	rt.writeDescriptor(st)

	start := rt.Sys.Clock(t.Proc)
	var moved int
	if rt.RedistSerial {
		moved = rt.placeRegular(st, true)
		// Legacy cost model: page copy plus remap overhead per moved
		// page, all charged to the caller.
		perPage := int64(rt.Cfg.PageBytes/8) + 2000
		rt.Sys.AddCycles(t.Proc, int64(moved)*perPage)
	} else {
		moved = rt.redistCollective(st, oldGrid, oldMaps)
	}
	rt.RedistPages += int64(moved)
	if rt.Rec != nil {
		// Re-register the ownership map so events after the
		// redistribution attribute to the new owners, not the load-time
		// distribution.
		rt.registerArrayObs(rt.Rec, st)
		rt.Rec.Redistribute(st.Plan.Unit+"."+st.Plan.Name, moved, t.Proc,
			start, rt.Sys.Clock(t.Proc))
	}
	return int64(moved), nil
}

// redistCollective performs the scheduled redistribution: every processor
// rendezvouses, the pages are remapped (with cache/TLB invalidation, as in
// the serial model), and the inter-node element traffic computed by
// dist.Intersect is streamed in dist.Schedule's contention-free rounds —
// each source node's lead processor drives one DMA bulk transfer per round,
// charging the source and destination bandwidth windows, and all clocks
// advance together at each round boundary. Returns the number of pages
// whose home node changed.
func (rt *Runtime) redistCollective(st *ArrayState, oldGrid dist.Grid, oldMaps []dist.DimMap) int {
	cfg := rt.Cfg
	np := cfg.NProcs
	all := make([]int, np)
	for p := range all {
		all[p] = p
	}
	// Rendezvous: the collective involves every processor, so the slowest
	// clock gates the start, and everyone pays the schedule setup.
	m := rt.Sys.MaxClock(all) + redistSetupCyc
	for p := 0; p < np; p++ {
		rt.Sys.SetClock(p, m)
	}

	moved := rt.placeRegular(st, true)

	xfers := dist.Intersect(oldGrid, oldMaps, st.Grid, st.Maps, cfg.NodeOf)
	rounds := dist.Schedule(xfers)
	for ri, round := range rounds {
		roundStart := rt.Sys.Clock(0)
		for _, x := range round {
			// The first processor of the source node programs and
			// drives the stream; senders are distinct within a round,
			// so every transfer proceeds concurrently.
			driver := x.Src * cfg.ProcsPerNode
			rt.Sys.AddCycles(driver, dmaSetupCyc)
			rt.Sys.BulkTransfer(driver, x.Src, x.Dst, x.Elems*8)
		}
		end := rt.Sys.MaxClock(all)
		for p := 0; p < np; p++ {
			rt.Sys.SetClock(p, end)
		}
		if rt.Rec != nil {
			rt.Rec.RedistRound(ri, len(round), roundStart, end)
		}
	}
	return moved
}

// portionBound implements dsm_portion_lo/hi(array, dim, proc): the 1-based
// first/last global index owned by proc along dim.
func (rt *Runtime) portionBound(id int, args []int64) (int64, error) {
	st := rt.byDesc[args[0]]
	if st == nil {
		return 0, fmt.Errorf("rtl: portion intrinsic on unknown descriptor %#x", args[0])
	}
	dim := int(args[1]) - 1
	proc := int(args[2])
	if dim < 0 || dim >= len(st.Maps) {
		return 0, fmt.Errorf("rtl: portion intrinsic dim %d out of range for %s", dim+1, st.Plan.Name)
	}
	m := st.Maps[dim]
	// Map the machine processor to the dimension coordinate.
	if proc < 0 || proc >= rt.Cfg.NProcs {
		return 0, fmt.Errorf("rtl: portion intrinsic proc %d out of range", proc)
	}
	coord := 0
	if proc < st.Grid.Used {
		coord = st.Grid.Coord(proc)[dim]
	}
	rs := m.OwnedRanges(coord)
	if len(rs) == 0 {
		return 0, nil // empty portion: lo > hi convention via 0
	}
	if id == bytecode.RTPortionLo {
		return int64(rs[0].Lo + 1), nil
	}
	return int64(rs[len(rs)-1].Hi), nil
}

// --- §6 runtime argument checks ---

// argPush records an actual-argument fact keyed by the passed address
// ("we take the address being passed in and use it as an index into a
// runtime hash table").
func (rt *Runtime) argPush(addr int64, infoID int) error {
	if infoID < 0 || infoID >= len(rt.Res.Checks) {
		return fmt.Errorf("rtl: bad check id %d", infoID)
	}
	info := &rt.Res.Checks[infoID]
	rec := pushedArg{info: info}
	switch info.Kind {
	case codegen.CheckWhole:
		rec.arr = rt.byDesc[addr]
	case codegen.CheckPortion:
		// Resolve the valid dense extent from this address under the
		// runtime grid (for cyclic(k), the rest of the chunk — the
		// paper's mysub example allows at most k elements).
		if st := rt.arrayByPortionAddr(addr); st != nil {
			rec.arr = st
			rec.bytes = rt.denseExtent(st, addr)
		}
	}
	rt.argTable[addr] = append(rt.argTable[addr], rec)
	rt.pushLog = append(rt.pushLog, addr)
	return nil
}

// argPop removes the most recent n records (call return).
func (rt *Runtime) argPop(n int) {
	// Records are keyed by address; a pop removes the newest entry of
	// each of the n most recently pushed addresses. For simplicity the
	// runtime tracks a push log.
	for i := 0; i < n && len(rt.pushLog) > 0; i++ {
		addr := rt.pushLog[len(rt.pushLog)-1]
		rt.pushLog = rt.pushLog[:len(rt.pushLog)-1]
		lst := rt.argTable[addr]
		if len(lst) > 0 {
			lst = lst[:len(lst)-1]
		}
		if len(lst) == 0 {
			delete(rt.argTable, addr)
		} else {
			rt.argTable[addr] = lst
		}
	}
}

// denseExtent returns how many bytes starting at addr within a reshaped
// portion correspond to consecutive global array elements: dense to the end
// of the portion for block/star dimensions, but clipped at the first chunk
// boundary of a cyclic or cyclic(k) dimension (§3.2.1: "the size and shape
// of the portion depend on the array distribution").
func (rt *Runtime) denseExtent(st *ArrayState, addr int64) int64 {
	var base int64 = -1
	for _, b := range st.Portions {
		if addr >= b && addr < b+st.PortionBytes {
			base = b
			break
		}
	}
	if base < 0 {
		return 0
	}
	off := (addr - base) / 8 // element offset within the portion
	allowed := st.PortionBytes - (addr - base)
	strideBytes := int64(8)
	rem := off
	for d, m := range st.Maps {
		ml := int64(m.MaxPortionLen())
		od := rem % ml
		rem /= ml
		switch m.Kind {
		case dist.Cyclic, dist.BlockCyclic:
			if m.P > 1 {
				k := int64(1)
				if m.Kind == dist.BlockCyclic {
					k = int64(m.Chunk)
				}
				run := k - od%k
				if lim := run * strideBytes; lim < allowed {
					allowed = lim
				}
			}
		}
		_ = d
		strideBytes *= ml
	}
	return allowed
}

// arrayByPortionAddr finds the reshaped array containing addr in one of its
// portions.
func (rt *Runtime) arrayByPortionAddr(addr int64) *ArrayState {
	for _, st := range rt.Arrays {
		if st.Portions == nil {
			continue
		}
		for _, base := range st.Portions {
			if addr >= base && addr < base+st.PortionBytes {
				return st
			}
		}
	}
	return nil
}

// argCheck validates an incoming argument against the callee's declared
// formal ("Upon entry to each subroutine, we take the incoming value for
// each parameter and use it as an index into the hash table ... generating
// a runtime error in case of a mismatch", §6).
func (rt *Runtime) argCheck(addr int64, formalID int) (err error) {
	if rt.Rec != nil {
		defer func() { rt.Rec.ArgCheck(err != nil) }()
	}
	lst := rt.argTable[addr]
	if len(lst) == 0 {
		return nil // not a reshaped actual: nothing to verify
	}
	rec := lst[len(lst)-1]
	formal := &rt.Res.Checks[formalID]

	switch rec.info.Kind {
	case codegen.CheckWhole:
		// Whole reshaped array: number of dimensions and every extent
		// must match exactly, and the distribution must agree
		// (§3.2.1).
		if formal.Spec == nil {
			return &CheckError{Msg: fmt.Sprintf(
				"%s: formal %s is not reshaped but receives whole reshaped array %s",
				formal.Unit, formal.Array, rec.info.Array)}
		}
		if len(formal.Dims) != len(rec.info.Dims) {
			return &CheckError{Msg: fmt.Sprintf(
				"%s: formal %s has %d dims, actual %s has %d",
				formal.Unit, formal.Array, len(formal.Dims), rec.info.Array, len(rec.info.Dims))}
		}
		for i := range formal.Dims {
			if formal.Dims[i] != rec.info.Dims[i] {
				return &CheckError{Msg: fmt.Sprintf(
					"%s: formal %s extent %d is %d, actual %s has %d",
					formal.Unit, formal.Array, i+1, formal.Dims[i], rec.info.Array, rec.info.Dims[i])}
			}
		}
		if rec.info.Spec != nil && !formal.Spec.Equal(*rec.info.Spec) {
			return &CheckError{Msg: fmt.Sprintf(
				"%s: formal %s distribution %s does not match actual %s",
				formal.Unit, formal.Array, formal.Spec, rec.info.Spec)}
		}
	case codegen.CheckPortion:
		// Element of a reshaped array: the formal is an ordinary
		// array whose declared size must not exceed the portion
		// (§3.2.1's mysub example).
		if formal.Spec != nil {
			return &CheckError{Msg: fmt.Sprintf(
				"%s: formal %s expects a reshaped array but receives a portion of %s",
				formal.Unit, formal.Array, rec.info.Array)}
		}
		if rec.bytes > 0 && formal.Bytes > rec.bytes {
			return &CheckError{Msg: fmt.Sprintf(
				"%s: formal %s declares %d bytes, exceeding the %d-byte portion of %s",
				formal.Unit, formal.Array, formal.Bytes, rec.bytes, rec.info.Array)}
		}
	}
	return nil
}
