// Package obj implements the compiler's object-file format. Mirroring the
// paper's scheme (§5), every compiled source file carries, alongside its
// code, a "shadow" section with (a) the subroutines it defines, (b) every
// call site that passes a reshaped array (with the distribution
// combination), and (c) an annotation for each common-block declaration
// with the shape, size and distribution of each member — the input to the
// link-time consistency checks of §6.
//
// Because the pre-linker must be able to re-invoke the compiler to create
// clones for new distribution combinations, the object also embeds the
// analyzed source (the AST): this plays the role of the paper's "compiler
// is reinvoked on that file" step without shipping a second copy of the
// source text.
package obj

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"dsmdist/internal/dist"
	"dsmdist/internal/fortran"
	"dsmdist/internal/ir"
	"dsmdist/internal/sema"
)

// OptSpec is an optional distribution (gob cannot carry nil pointers).
type OptSpec struct {
	Has  bool
	Spec dist.Spec
}

// CommonMember is one annotated member of a common-block declaration.
type CommonMember struct {
	Name   string
	Offset int64 // byte offset within the block
	Dims   []int64
	Spec   OptSpec
}

// CommonAnn annotates one declaration of a common block in one unit.
type CommonAnn struct {
	Block   string
	Unit    string
	File    string
	Line    int
	Members []CommonMember
}

// ShadowCall records a call site that passes reshaped arrays: the §5
// propagation input. Sig has one entry per argument (nil for non-reshaped
// arguments); Dims carries the actual's extents for whole-array arguments
// so the pre-linker can verify the exact-shape rule of §3.2.1.
type ShadowCall struct {
	Caller string
	Callee string
	Line   int
	Sig    []OptSpec
	Dims   [][]int64
}

// Object is one compiled source file.
type Object struct {
	FileName string
	File     *fortran.File // embedded AST for clone recompilation
	Units    []string      // unit names defined here (program first if any)
	Program  string        // name of the program unit, "" if none
	Commons  []CommonAnn
	Shadow   []ShadowCall
}

// Compile parses and analyzes one source file into an object. Semantic
// errors abort compilation, as in any compiler.
func Compile(filename, src string) (*Object, error) {
	file, err := fortran.Parse(filename, src)
	if err != nil {
		return nil, err
	}
	o := &Object{FileName: filename, File: file}
	for _, u := range file.Units {
		iu, errs := sema.AnalyzeUnit(filename, u, sema.Options{})
		if errs.Err() != nil {
			return nil, errs.Err()
		}
		o.Units = append(o.Units, iu.Name)
		if iu.IsProgram {
			if o.Program != "" {
				return nil, fmt.Errorf("%s: multiple program units", filename)
			}
			o.Program = iu.Name
		}
		o.annotate(iu, u.Line)
	}
	return o, nil
}

// annotate extracts the shadow section from an analyzed unit.
func (o *Object) annotate(iu *ir.Unit, line int) {
	for _, cb := range iu.CommonBlocks {
		ann := CommonAnn{Block: cb.Name, Unit: iu.Name, File: o.FileName, Line: line}
		off := int64(0)
		for _, m := range cb.Members {
			cm := CommonMember{Name: m.Name, Offset: off}
			if m.Dist != nil {
				cm.Spec = OptSpec{Has: true, Spec: *m.Dist}
			}
			if dims, ok := m.ConstDims(); ok {
				cm.Dims = dims
				sz := int64(8)
				for _, d := range dims {
					sz *= d
				}
				off += sz
			} else {
				off += 8
			}
			ann.Members = append(ann.Members, cm)
		}
		o.Commons = append(o.Commons, ann)
	}
	ir.WalkStmts(iu.Body, func(s ir.Stmt) bool {
		call, ok := s.(*ir.CallStmt)
		if !ok {
			return true
		}
		entry := ShadowCall{Caller: iu.Name, Callee: call.Callee, Line: call.Line,
			Sig: make([]OptSpec, len(call.Args)), Dims: make([][]int64, len(call.Args))}
		for i, a := range call.Args {
			if aa, ok := a.(*ir.ArgArray); ok && aa.Sym.IsReshaped() {
				entry.Sig[i] = OptSpec{Has: true, Spec: *aa.Sym.Dist}
				if dims, ok := aa.Sym.ConstDims(); ok {
					entry.Dims[i] = dims
				}
			}
		}
		// Every call is recorded (the pre-linker also resolves plain
		// calls); reshaped ones drive cloning.
		o.Shadow = append(o.Shadow, entry)
		return true
	}, nil)
}

func init() {
	// AST node registrations for gob round-tripping.
	gob.Register(&fortran.TypeDecl{})
	gob.Register(&fortran.ParamDecl{})
	gob.Register(&fortran.CommonDecl{})
	gob.Register(&fortran.EquivDecl{})
	gob.Register(&fortran.DistDecl{})
	gob.Register(&fortran.Assign{})
	gob.Register(&fortran.Do{})
	gob.Register(&fortran.If{})
	gob.Register(&fortran.Call{})
	gob.Register(&fortran.Return{})
	gob.Register(&fortran.Redistribute{})
	gob.Register(&fortran.Continue{})
	gob.Register(&fortran.Ident{})
	gob.Register(&fortran.IntLit{})
	gob.Register(&fortran.RealLit{})
	gob.Register(&fortran.BinOp{})
	gob.Register(&fortran.UnOp{})
	gob.Register(&fortran.CallExpr{})
}

// Encode serializes the object (the .o file contents).
func (o *Object) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(o); err != nil {
		return nil, fmt.Errorf("obj: encode %s: %w", o.FileName, err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes an object file.
func Decode(data []byte) (*Object, error) {
	var o Object
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&o); err != nil {
		return nil, fmt.Errorf("obj: decode: %w", err)
	}
	return &o, nil
}
