package obj

import (
	"strings"
	"testing"

	"dsmdist/internal/dist"
)

const multiSrc = `
      program main
      real*8 a(32), b(16)
c$distribute_reshape a(block)
      common /shared/ b
      integer i
      do i = 1, 32
        a(i) = 0.0
      end do
      call work(a, b)
      end

      subroutine work(x, y)
      real*8 x(32), y(16)
      x(1) = y(1)
      return
      end
`

func TestCompileAnnotations(t *testing.T) {
	o, err := Compile("m.f", multiSrc)
	if err != nil {
		t.Fatal(err)
	}
	if o.Program != "main" || len(o.Units) != 2 {
		t.Fatalf("units = %v, program = %q", o.Units, o.Program)
	}
	// Common annotation for /shared/ with b's shape.
	if len(o.Commons) != 1 {
		t.Fatalf("commons = %d", len(o.Commons))
	}
	ca := o.Commons[0]
	if ca.Block != "shared" || len(ca.Members) != 1 || ca.Members[0].Name != "b" {
		t.Fatalf("common ann = %+v", ca)
	}
	if len(ca.Members[0].Dims) != 1 || ca.Members[0].Dims[0] != 16 {
		t.Fatalf("member dims = %v", ca.Members[0].Dims)
	}
	// Shadow entry for the call with a's reshaped spec in slot 0.
	var found *ShadowCall
	for i := range o.Shadow {
		if o.Shadow[i].Callee == "work" {
			found = &o.Shadow[i]
		}
	}
	if found == nil {
		t.Fatal("shadow entry for call to work missing")
	}
	if !found.Sig[0].Has || !found.Sig[0].Spec.Reshape || found.Sig[0].Spec.Dims[0].Kind != dist.Block {
		t.Fatalf("shadow sig = %+v", found.Sig)
	}
	if found.Sig[1].Has {
		t.Fatalf("plain argument carried a spec: %+v", found.Sig[1])
	}
	if len(found.Dims[0]) != 1 || found.Dims[0][0] != 32 {
		t.Fatalf("shadow dims = %v", found.Dims)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	o, err := Compile("m.f", multiSrc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := o.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.FileName != o.FileName || back.Program != o.Program {
		t.Fatalf("metadata lost: %+v", back)
	}
	if len(back.File.Units) != 2 {
		t.Fatalf("AST units = %d", len(back.File.Units))
	}
	if len(back.Shadow) != len(o.Shadow) || len(back.Commons) != len(o.Commons) {
		t.Fatal("shadow/commons lost")
	}
	// The decoded AST must be reusable: re-encode and compare sizes as a
	// cheap structural check.
	data2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data2) != len(data) {
		t.Fatalf("re-encode size %d != %d", len(data2), len(data))
	}
}

func TestCompileReportsSemaErrors(t *testing.T) {
	_, err := Compile("bad.f", `
      program p
      real*8 a(10)
c$distribute a(block, block)
      end
`)
	if err == nil || !strings.Contains(err.Error(), "2 specifiers") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileRejectsTwoPrograms(t *testing.T) {
	_, err := Compile("two.f", `
      program p1
      end
      program p2
      end
`)
	if err == nil || !strings.Contains(err.Error(), "multiple program units") {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not an object")); err == nil {
		t.Fatal("garbage decoded")
	}
}
