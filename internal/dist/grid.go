package dist

import (
	"fmt"
	"sort"
)

// Processor grids (paper §3.2: "The number of processors in each distributed
// dimension is determined at program start-up time ... the distribute
// directive can contain an optional onto clause specifying how the total
// number of processors should be assigned across multiple distributed array
// dimensions").
//
// A Grid assigns a processor count to each distributed dimension of a spec
// such that the product equals the processors actually used (≤ nprocs, and
// equal to nprocs whenever nprocs can be factored onto the dimensions). The
// linearization order is column-major over the distributed dimensions,
// matching the array layout, so that grid coordinates convert to the single
// runtime processor id used by the executor.

// Grid is the processor arrangement for one distributed array.
type Grid struct {
	Spec Spec
	// DimProcs[d] is the processor count along array dimension d
	// (1 for Star dimensions).
	DimProcs []int
	// Used is the total number of processors the grid occupies
	// (product of DimProcs).
	Used int
}

// NewGrid computes the processor grid for spec on nprocs processors,
// honouring onto weights when present. With a single distributed dimension
// the grid is simply nprocs. With several, nprocs is factored and the
// factors are assigned to dimensions so the per-dimension counts are as
// close as possible to the onto ratios (equal ratios when no onto clause is
// given). The assignment is deterministic.
func NewGrid(spec Spec, nprocs int) (Grid, error) {
	if err := spec.Validate(); err != nil {
		return Grid{}, err
	}
	if nprocs < 1 {
		return Grid{}, fmt.Errorf("dist: grid needs at least 1 processor, got %d", nprocs)
	}
	g := Grid{Spec: spec, DimProcs: make([]int, len(spec.Dims)), Used: 1}
	for i := range g.DimProcs {
		g.DimProcs[i] = 1
	}
	dd := spec.DistributedDims()
	switch len(dd) {
	case 0:
		return g, nil
	case 1:
		g.DimProcs[dd[0]] = nprocs
		g.Used = nprocs
		return g, nil
	}

	weights := make([]float64, len(dd))
	for i, d := range dd {
		w := spec.Dims[d].Onto
		if w <= 0 {
			w = 1
		}
		weights[i] = float64(w)
	}

	// Greedily hand out the prime factors of nprocs, largest first, to
	// the dimension whose current count is furthest below its target
	// share.
	factors := primeFactors(nprocs)
	sort.Sort(sort.Reverse(sort.IntSlice(factors)))
	counts := make([]int, len(dd))
	for i := range counts {
		counts[i] = 1
	}
	total := 1
	for _, f := range factors {
		best, bestScore := 0, -1.0
		for i := range dd {
			// score: how far below the weighted target this dim is.
			score := weights[i] / float64(counts[i])
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		counts[best] *= f
		total *= f
	}
	for i, d := range dd {
		g.DimProcs[d] = counts[i]
	}
	g.Used = total
	return g, nil
}

// primeFactors returns the prime factorization of n (n >= 1) with
// multiplicity, in increasing order.
func primeFactors(n int) []int {
	var out []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			out = append(out, f)
			n /= f
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// Coord converts the linear processor id (0 <= id < Used) into per-dimension
// grid coordinates, column-major over array dimensions (the first
// distributed dimension varies fastest).
func (g Grid) Coord(id int) []int {
	coord := make([]int, len(g.DimProcs))
	for d, p := range g.DimProcs {
		if p <= 1 {
			continue
		}
		coord[d] = id % p
		id /= p
	}
	return coord
}

// Linear is the inverse of Coord.
func (g Grid) Linear(coord []int) int {
	id := 0
	mul := 1
	for d, p := range g.DimProcs {
		if p <= 1 {
			continue
		}
		id += coord[d] * mul
		mul *= p
	}
	return id
}

// Maps instantiates the per-dimension DimMaps for an array with the given
// extents under this grid.
func (g Grid) Maps(extents []int) ([]DimMap, error) {
	if len(extents) != len(g.Spec.Dims) {
		return nil, fmt.Errorf("dist: spec has %d dims, array has %d", len(g.Spec.Dims), len(extents))
	}
	maps := make([]DimMap, len(extents))
	for d := range extents {
		maps[d] = NewDimMap(g.Spec.Dims[d], extents[d], g.DimProcs[d])
	}
	return maps, nil
}

// OwnerLinear returns the linear processor id owning the element with the
// given zero-based subscripts.
func (g Grid) OwnerLinear(maps []DimMap, idx []int) int {
	coord := make([]int, len(maps))
	for d := range maps {
		coord[d] = maps[d].Owner(idx[d])
	}
	return g.Linear(coord)
}
