package dist

import "testing"

func spec2(d1, d2 Kind) Spec {
	return Spec{Dims: []Dim{{Kind: d1}, {Kind: d2}}}
}

func TestGridSingleDim(t *testing.T) {
	g, err := NewGrid(spec2(Star, Block), 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.DimProcs[0] != 1 || g.DimProcs[1] != 7 || g.Used != 7 {
		t.Fatalf("grid = %+v", g)
	}
}

func TestGridTwoDims(t *testing.T) {
	g, err := NewGrid(spec2(Block, Block), 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.Used != 16 {
		t.Fatalf("used %d procs of 16", g.Used)
	}
	if g.DimProcs[0]*g.DimProcs[1] != 16 {
		t.Fatalf("product %d", g.DimProcs[0]*g.DimProcs[1])
	}
	if g.DimProcs[0] != 4 || g.DimProcs[1] != 4 {
		t.Fatalf("16 procs over 2 dims should be 4x4, got %v", g.DimProcs)
	}
}

func TestGridOntoWeights(t *testing.T) {
	s := Spec{Dims: []Dim{
		{Kind: Block, Onto: 4},
		{Kind: Block, Onto: 1},
	}}
	g, err := NewGrid(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.DimProcs[0] != 8 || g.DimProcs[1] != 2 {
		t.Fatalf("onto(4,1) over 16 procs: got %v, want [8 2]", g.DimProcs)
	}
}

func TestGridPrimeProcs(t *testing.T) {
	// 13 procs over two dims: all 13 must go to one dim (13 is prime).
	g, err := NewGrid(spec2(Block, Block), 13)
	if err != nil {
		t.Fatal(err)
	}
	if g.Used != 13 {
		t.Fatalf("used %d of 13", g.Used)
	}
	if !(g.DimProcs[0] == 13 && g.DimProcs[1] == 1 ||
		g.DimProcs[0] == 1 && g.DimProcs[1] == 13) {
		t.Fatalf("got %v", g.DimProcs)
	}
}

func TestGridCoordLinearRoundTrip(t *testing.T) {
	for _, np := range []int{1, 4, 6, 12, 24} {
		g, err := NewGrid(spec2(Block, Cyclic), np)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < g.Used; id++ {
			c := g.Coord(id)
			if back := g.Linear(c); back != id {
				t.Fatalf("np=%d: Linear(Coord(%d)) = %d (coord %v)", np, id, back, c)
			}
			for d, v := range c {
				if v < 0 || v >= g.DimProcs[d] {
					t.Fatalf("np=%d id=%d: coord %v out of grid %v", np, id, c, g.DimProcs)
				}
			}
		}
	}
}

func TestGridOwnerLinearCoversAllProcs(t *testing.T) {
	g, err := NewGrid(spec2(Block, Block), 8)
	if err != nil {
		t.Fatal(err)
	}
	maps, err := g.Maps([]int{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	hit := make([]bool, g.Used)
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			id := g.OwnerLinear(maps, []int{i, j})
			if id < 0 || id >= g.Used {
				t.Fatalf("owner %d out of range", id)
			}
			hit[id] = true
		}
	}
	for p, h := range hit {
		if !h {
			t.Fatalf("processor %d owns nothing", p)
		}
	}
}

func TestGridMapsDimMismatch(t *testing.T) {
	g, _ := NewGrid(spec2(Block, Block), 4)
	if _, err := g.Maps([]int{10}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestPrimeFactors(t *testing.T) {
	cases := map[int][]int{
		1:  nil,
		2:  {2},
		12: {2, 2, 3},
		97: {97},
		60: {2, 2, 3, 5},
	}
	for n, want := range cases {
		got := primeFactors(n)
		if len(got) != len(want) {
			t.Fatalf("primeFactors(%d) = %v, want %v", n, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("primeFactors(%d) = %v, want %v", n, got, want)
			}
		}
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := NewGrid(spec2(Block, Block), 0); err == nil {
		t.Error("0 procs accepted")
	}
	if _, err := NewGrid(Spec{}, 4); err == nil {
		t.Error("empty spec accepted")
	}
}
