package dist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func allKinds(n, p int) []DimMap {
	return []DimMap{
		NewDimMap(Dim{Kind: Star}, n, p),
		NewDimMap(Dim{Kind: Block}, n, p),
		NewDimMap(Dim{Kind: Cyclic}, n, p),
		NewDimMap(Dim{Kind: BlockCyclic, Chunk: 1}, n, p),
		NewDimMap(Dim{Kind: BlockCyclic, Chunk: 3}, n, p),
		NewDimMap(Dim{Kind: BlockCyclic, Chunk: 5}, n, p),
	}
}

func TestBlockSize(t *testing.T) {
	cases := []struct{ n, p, want int }{
		{10, 2, 5}, {10, 3, 4}, {1, 4, 1}, {7, 7, 1}, {7, 8, 1}, {1000, 3, 334},
	}
	for _, c := range cases {
		if got := BlockSize(c.n, c.p); got != c.want {
			t.Errorf("BlockSize(%d,%d) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

func TestTable1BlockExample(t *testing.T) {
	// real*8 A(1000); distribute_reshape A(cyclic(5)); portions are 5
	// elements each (paper §3.2.1 example).
	m := NewDimMap(Dim{Kind: BlockCyclic, Chunk: 5}, 1000, 4)
	for i := 0; i < 1000; i++ {
		owner := m.Owner(i)
		want := (i / 5) % 4
		if owner != want {
			t.Fatalf("cyclic(5) owner(%d) = %d, want %d", i, owner, want)
		}
	}
}

// TestOwnerOffsetGlobalRoundTrip checks the Table 1 transforms are the exact
// inverse of Global for every kind.
func TestOwnerOffsetGlobalRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 100, 1001} {
		for _, p := range []int{1, 2, 3, 4, 7, 16} {
			for _, m := range allKinds(n, p) {
				for i := 0; i < n; i++ {
					o, off := m.Owner(i), m.Offset(i)
					if o < 0 || (m.Distributed() && o >= m.P) {
						t.Fatalf("%v n=%d p=%d: owner(%d)=%d out of range", m.Dim, n, p, i, o)
					}
					if back := m.Global(o, off); back != i {
						t.Fatalf("%v n=%d p=%d: Global(Owner,Offset)(%d) = %d", m.Dim, n, p, i, back)
					}
					if off < 0 || off >= m.PortionLen(o) {
						t.Fatalf("%v n=%d p=%d: offset(%d)=%d outside portion len %d",
							m.Dim, n, p, i, off, m.PortionLen(o))
					}
				}
			}
		}
	}
}

// TestPortionLenSums checks that the portions partition the dimension.
func TestPortionLenSums(t *testing.T) {
	for _, n := range []int{1, 5, 64, 999} {
		for _, p := range []int{1, 2, 5, 13} {
			for _, m := range allKinds(n, p) {
				total := 0
				procs := m.P
				if m.Kind == Star {
					procs = 1
				}
				for q := 0; q < procs; q++ {
					pl := m.PortionLen(q)
					if pl < 0 {
						t.Fatalf("%v: negative portion", m.Dim)
					}
					if pl > m.MaxPortionLen() {
						t.Fatalf("%v n=%d p=%d proc=%d: portion %d > max %d",
							m.Dim, n, p, q, pl, m.MaxPortionLen())
					}
					total += pl
				}
				if total != n {
					t.Fatalf("%v n=%d p=%d: portions sum to %d", m.Dim, n, p, total)
				}
			}
		}
	}
}

// TestOwnedRangesMatchOwner checks OwnedRanges enumerates exactly the owned
// elements.
func TestOwnedRangesMatchOwner(t *testing.T) {
	for _, n := range []int{1, 17, 100} {
		for _, p := range []int{1, 3, 8} {
			for _, m := range allKinds(n, p) {
				procs := m.P
				if m.Kind == Star {
					procs = 1
				}
				seen := make([]bool, n)
				for q := 0; q < procs; q++ {
					count := 0
					for _, r := range m.OwnedRanges(q) {
						for i := r.Lo; i < r.Hi; i++ {
							if m.Owner(i) != q {
								t.Fatalf("%v: range of %d contains %d owned by %d",
									m.Dim, q, i, m.Owner(i))
							}
							if seen[i] {
								t.Fatalf("%v: element %d in two ranges", m.Dim, i)
							}
							seen[i] = true
							count++
						}
					}
					if count != m.PortionLen(q) {
						t.Fatalf("%v proc %d: ranges cover %d, portion is %d",
							m.Dim, q, count, m.PortionLen(q))
					}
				}
				for i, s := range seen {
					if !s {
						t.Fatalf("%v: element %d uncovered", m.Dim, i)
					}
				}
			}
		}
	}
}

// TestAffineItersPartition is the key Figure 2 property: over all
// processors, the affinity iteration sets partition the original loop, and
// each iteration is assigned to the owner of its referenced element.
func TestAffineItersPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(120)
		p := 1 + rng.Intn(9)
		a := 1 + rng.Intn(3)
		lb := rng.Intn(10)
		ub := lb + rng.Intn(40) - 5 // possibly empty
		step := 1 + rng.Intn(3)
		// choose c so that a*i + c stays within [0, n) for i in
		// [lb, ub]; skip impossible combos.
		maxE := a*ub + 0
		if maxE >= n || ub < lb {
			continue
		}
		c := rng.Intn(n - maxE)
		for _, m := range allKinds(n, p) {
			procs := m.P
			if m.Kind == Star {
				procs = 1
			}
			got := map[int]int{} // iteration -> proc
			for q := 0; q < procs; q++ {
				for _, r := range m.AffineIters(q, a, c, lb, ub, step) {
					for i := r.Lo; i <= r.Hi; i += r.Step {
						if prev, dup := got[i]; dup {
							t.Fatalf("%v: iter %d on procs %d and %d", m.Dim, i, prev, q)
						}
						got[i] = q
						if (i-lb)%step != 0 || i < lb || i > ub {
							t.Fatalf("%v: iter %d outside do %d,%d,%d", m.Dim, i, lb, ub, step)
						}
						if own := m.Owner(a*i + c); own != q {
							t.Fatalf("%v: iter %d (elem %d) ran on %d, owner %d",
								m.Dim, i, a*i+c, q, own)
						}
					}
				}
			}
			want := 0
			for i := lb; i <= ub; i += step {
				want++
				if _, ok := got[i]; !ok {
					t.Fatalf("%v n=%d p=%d a=%d c=%d: iter %d unassigned", m.Dim, n, p, a, c, i)
				}
			}
			if len(got) != want {
				t.Fatalf("%v: %d iters assigned, want %d", m.Dim, len(got), want)
			}
		}
	}
}

func TestBlockPartitionCovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lb := rng.Intn(20) - 10
		n := rng.Intn(50)
		step := 1 + rng.Intn(4)
		ub := lb + (n-1)*step
		np := 1 + rng.Intn(10)
		seen := map[int]bool{}
		total := 0
		for p := 0; p < np; p++ {
			r := BlockPartition(p, np, lb, ub, step)
			for i := r.Lo; i <= r.Hi; i += r.Step {
				if seen[i] {
					return false
				}
				seen[i] = true
				total++
			}
		}
		want := 0
		for i := lb; i <= ub; i += step {
			want++
			if !seen[i] {
				return false
			}
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockPartitionBalance(t *testing.T) {
	// piece sizes differ by at most 1
	for np := 1; np <= 9; np++ {
		for n := 0; n <= 30; n++ {
			lo, hi := 1, n
			min, max := 1<<30, 0
			for p := 0; p < np; p++ {
				c := BlockPartition(p, np, lo, hi, 1).Count()
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if n > 0 && max-min > 1 {
				t.Fatalf("np=%d n=%d: piece sizes range %d..%d", np, n, min, max)
			}
		}
	}
}

func TestInterleavePartitionCovers(t *testing.T) {
	for _, chunk := range []int{1, 2, 5} {
		for np := 1; np <= 6; np++ {
			seen := map[int]int{}
			lb, ub, step := 3, 40, 2
			for p := 0; p < np; p++ {
				for _, r := range InterleavePartition(p, np, lb, ub, step, chunk) {
					for i := r.Lo; i <= r.Hi; i += r.Step {
						if q, dup := seen[i]; dup {
							t.Fatalf("chunk=%d np=%d: iter %d on %d and %d", chunk, np, i, q, p)
						}
						seen[i] = p
					}
				}
			}
			for i := lb; i <= ub; i += step {
				if _, ok := seen[i]; !ok {
					t.Fatalf("chunk=%d np=%d: iter %d missing", chunk, np, i)
				}
			}
		}
	}
}

func TestSpecEqual(t *testing.T) {
	a := Spec{Dims: []Dim{{Kind: Star}, {Kind: Block}}, Reshape: true}
	b := Spec{Dims: []Dim{{Kind: Star}, {Kind: Block}}, Reshape: true}
	if !a.Equal(b) {
		t.Error("identical specs not equal")
	}
	c := Spec{Dims: []Dim{{Kind: Star}, {Kind: Block}}}
	if a.Equal(c) {
		t.Error("reshape flag ignored")
	}
	d := Spec{Dims: []Dim{{Kind: Star}, {Kind: BlockCyclic, Chunk: 2}}, Reshape: true}
	e := Spec{Dims: []Dim{{Kind: Star}, {Kind: BlockCyclic, Chunk: 3}}, Reshape: true}
	if d.Equal(e) {
		t.Error("cyclic chunk ignored")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err == nil {
		t.Error("empty spec accepted")
	}
	bad := Spec{Dims: []Dim{{Kind: BlockCyclic, Chunk: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("cyclic(0) accepted")
	}
	ok := Spec{Dims: []Dim{{Kind: Block}, {Kind: Star}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Dims: []Dim{{Kind: Star}, {Kind: Block}, {Kind: BlockCyclic, Chunk: 4}}, Reshape: true}
	want := "distribute_reshape(*,block,cyclic(4))"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
