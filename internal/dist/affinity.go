package dist

// Affinity scheduling (paper §3.4, Figure 2).
//
// A parallel loop
//
//	c$doacross affinity(i) = data(A(a*i + c))
//	do i = LB, UB, step
//
// is executed so that iteration i runs on the processor owning element
// a*i+c of the distributed dimension of A. The compiler transforms the loop
// into an outer processor loop and inner loops that enumerate exactly the
// iterations owned by each processor (Figure 2 gives the closed forms for
// block, cyclic and block-cyclic). The functions here compute those per-
// processor iteration sets; both the affinity-scheduling codegen and the
// tiling transformation of §7.1 use them.
//
// Indices handed to this file are zero-based: the front end rewrites the
// one-based Fortran subscript a*i+c into zero-based element space before
// asking for bounds. The paper requires a to be a non-negative literal
// constant and c a literal constant (§3.4); a == 0 would make every
// iteration map to one element, which sema rejects, so a >= 1 here.

// IterRange is a strided iteration range: i = Lo, Lo+Step, ..., while
// i <= Hi. Empty when Lo > Hi.
type IterRange struct {
	Lo, Hi, Step int
}

// Empty reports whether the range contains no iterations.
func (r IterRange) Empty() bool { return r.Lo > r.Hi }

// Count returns the number of iterations in the range.
func (r IterRange) Count() int {
	if r.Empty() {
		return 0
	}
	return (r.Hi-r.Lo)/r.Step + 1
}

// ceilDiv returns ceil(a/b) for b > 0 and any sign of a.
func ceilDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// floorDiv returns floor(a/b) for b > 0 and any sign of a.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// alignUp returns the smallest i >= lo with i ≡ base (mod step), step > 0.
func alignUp(lo, base, step int) int {
	d := lo - base
	return base + ceilDiv(d, step)*step
}

// AffineIters returns the iterations of do i = lb, ub, step (step > 0) that
// processor p must execute under affinity(i) = data(A(a*i + c)), where
// a*i+c is the zero-based element index into the dimension described by m.
//
// Block and Star produce a single range; cyclic produces one strided range
// when a == 1 (Figure 2's cyclic case); everything else falls back to one
// range per owned stripe. The bool result is false when iterations exist for
// other processors but none for p.
func (m DimMap) AffineIters(p, a, c, lb, ub, step int) []IterRange {
	if step <= 0 || a < 1 {
		return nil
	}
	switch m.Kind {
	case Star:
		if p != 0 {
			return nil
		}
		return []IterRange{{lb, ub, step}}
	case Block:
		// p owns elements [p*b, min((p+1)*b, N)); solve for i.
		elo := p * m.B
		ehi := elo + m.B
		if ehi > m.N {
			ehi = m.N
		}
		if elo >= ehi {
			return nil
		}
		// elo <= a*i + c <= ehi-1
		ilo := ceilDiv(elo-c, a)
		ihi := floorDiv(ehi-1-c, a)
		if ilo < lb {
			ilo = lb
		}
		if ihi > ub {
			ihi = ub
		}
		ilo = alignUp(ilo, lb, step)
		if ilo > ihi {
			return nil
		}
		return []IterRange{{ilo, ihi, step}}
	case Cyclic:
		if a == 1 && step == 1 {
			// Figure 2: do i = LB + ((p - LB - c) mod P), UB, P
			off := ((p-lb-c)%m.P + m.P) % m.P
			lo := lb + off
			if lo > ub {
				return nil
			}
			return []IterRange{{lo, ub, m.P}}
		}
		return m.stripeIters(p, a, c, lb, ub, step)
	case BlockCyclic:
		return m.stripeIters(p, a, c, lb, ub, step)
	}
	return nil
}

// stripeIters derives iteration ranges from the owned element stripes; used
// for cyclic(k) and for the cyclic cases Figure 2 omits "for brevity".
func (m DimMap) stripeIters(p, a, c, lb, ub, step int) []IterRange {
	var out []IterRange
	for _, r := range m.OwnedRanges(p) {
		ilo := ceilDiv(r.Lo-c, a)
		ihi := floorDiv(r.Hi-1-c, a)
		if ilo < lb {
			ilo = lb
		}
		if ihi > ub {
			ihi = ub
		}
		ilo = alignUp(ilo, lb, step)
		if ilo <= ihi {
			out = append(out, IterRange{ilo, ihi, step})
		}
	}
	return out
}

// BlockPartition splits do i = lb, ub, step (step > 0) into nproc
// near-equal contiguous pieces and returns piece p; this implements the
// default schedtype(simple) static scheduling of doacross loops without an
// affinity clause.
func BlockPartition(p, nproc, lb, ub, step int) IterRange {
	if step <= 0 || lb > ub || nproc <= 0 {
		return IterRange{1, 0, 1}
	}
	n := (ub-lb)/step + 1
	per := n / nproc
	rem := n % nproc
	lo := p * per
	if p < rem {
		lo += p
	} else {
		lo += rem
	}
	cnt := per
	if p < rem {
		cnt++
	}
	if cnt == 0 {
		return IterRange{1, 0, 1}
	}
	first := lb + lo*step
	last := first + (cnt-1)*step
	return IterRange{first, last, step}
}

// InterleavePartition returns processor p's iterations under
// schedtype(interleave): i = lb + p*step*chunk stripes dealt round-robin.
func InterleavePartition(p, nproc, lb, ub, step, chunk int) []IterRange {
	if step <= 0 || lb > ub || nproc <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = 1
	}
	var out []IterRange
	stripe := step * chunk
	for lo := lb + p*stripe; lo <= ub; lo += nproc * stripe {
		hi := lo + (chunk-1)*step
		if hi > ub {
			hi = ub
		}
		out = append(out, IterRange{lo, hi, step})
	}
	return out
}
