// Redistribution mathematics: given an array's old and new distributions,
// compute exactly which elements change owner (the block-cyclic
// intersection sets of Sudarsan & Ribbens) and pack the inter-node traffic
// into contention-free rounds (bipartite edge coloring, as in the
// round-based collective decompositions of Rink et al.), so the runtime can
// drive c$redistribute as a scheduled collective instead of a serial page
// walk.
package dist

import "sort"

// Xfer is one node-to-node bulk transfer of a redistribution: Elems array
// elements whose owner moves from node Src to node Dst.
type Xfer struct {
	Src, Dst int
	Elems    int64
}

// runEnd returns the exclusive end of the maximal run of consecutive global
// indices starting at i that share Owner(i). Star owns the whole dimension,
// Block runs to the next block boundary, Cyclic runs are singletons, and
// cyclic(k) runs to the next chunk boundary.
func (m DimMap) runEnd(i int) int {
	e := m.N
	switch m.Kind {
	case Block:
		if m.B > 0 {
			e = (i/m.B + 1) * m.B
		}
	case Cyclic:
		e = i + 1
	case BlockCyclic:
		e = (i/m.Chunk + 1) * m.Chunk
	}
	if e > m.N {
		e = m.N
	}
	return e
}

// dimIntersect computes the per-dimension intersection counts: cell [po][pn]
// is the number of indices owned by old-coordinate po under om and
// new-coordinate pn under nm. The walk visits each maximal run on which both
// ownerships are constant — O(boundaries), not O(N) except for cyclic — and
// is exact for every block / cyclic / cyclic(k) / * pairing.
func dimIntersect(om, nm DimMap) [][]int64 {
	counts := make([][]int64, om.P)
	for p := range counts {
		counts[p] = make([]int64, nm.P)
	}
	for i := 0; i < om.N; {
		end := om.runEnd(i)
		if e := nm.runEnd(i); e < end {
			end = e
		}
		counts[om.Owner(i)][nm.Owner(i)] += int64(end - i)
		i = end
	}
	return counts
}

// Intersect computes the full inter-node transfer set of a redistribution
// from (oldGrid, oldMaps) to (newGrid, newMaps): for every pair of linear
// grid processors the joint element count is the product of the
// per-dimension intersection counts, and counts whose source and
// destination land on different nodes (per nodeOf, which maps a linear grid
// processor to its machine node) accumulate into one Xfer per (src, dst)
// node pair. The result is sorted by (Src, Dst) and contains no
// self-transfers and no zero entries.
func Intersect(oldGrid Grid, oldMaps []DimMap, newGrid Grid, newMaps []DimMap, nodeOf func(p int) int) []Xfer {
	nd := len(oldMaps)
	per := make([][][]int64, nd)
	for d := 0; d < nd; d++ {
		per[d] = dimIntersect(oldMaps[d], newMaps[d])
	}
	newCoords := make([][]int, newGrid.Used)
	newNodes := make([]int, newGrid.Used)
	for p := 0; p < newGrid.Used; p++ {
		newCoords[p] = newGrid.Coord(p)
		newNodes[p] = nodeOf(p)
	}
	acc := map[[2]int]int64{}
	for op := 0; op < oldGrid.Used; op++ {
		oc := oldGrid.Coord(op)
		src := nodeOf(op)
		for np := 0; np < newGrid.Used; np++ {
			if newNodes[np] == src {
				continue
			}
			elems := int64(1)
			for d := 0; d < nd && elems > 0; d++ {
				elems *= per[d][oc[d]][newCoords[np][d]]
			}
			if elems > 0 {
				acc[[2]int{src, newNodes[np]}] += elems
			}
		}
	}
	out := make([]Xfer, 0, len(acc))
	for k, v := range acc {
		out = append(out, Xfer{Src: k[0], Dst: k[1], Elems: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Schedule partitions the transfers into rounds such that within a round
// every node sends at most one transfer and receives at most one transfer
// (full duplex: a node may do both simultaneously). The construction is the
// König bipartite edge coloring with alternating-path flips, so the number
// of rounds equals the maximum send- or receive-degree of any node — the
// minimum possible. The output is deterministic for a given input order.
func Schedule(xfers []Xfer) [][]Xfer {
	if len(xfers) == 0 {
		return nil
	}
	deg := map[int]int{}
	maxDeg := 0
	for _, x := range xfers {
		// Send and receive sides are independent resources, so degrees
		// are tracked separately (negative keys for receivers).
		for _, k := range [2]int{x.Src, ^x.Dst} {
			deg[k]++
			if deg[k] > maxDeg {
				maxDeg = deg[k]
			}
		}
	}
	// colS[u][c] / colR[v][c]: the edge colored c at sender u / receiver v,
	// or -1.
	colS, colR := map[int][]int{}, map[int][]int{}
	slot := func(m map[int][]int, n int) []int {
		s := m[n]
		if s == nil {
			s = make([]int, maxDeg)
			for i := range s {
				s[i] = -1
			}
			m[n] = s
		}
		return s
	}
	free := func(s []int) int {
		for c, e := range s {
			if e < 0 {
				return c
			}
		}
		return -1 // unreachable: degrees are bounded by maxDeg
	}
	color := make([]int, len(xfers))
	for e := range xfers {
		u, v := xfers[e].Src, xfers[e].Dst
		su, sv := slot(colS, u), slot(colR, v)
		a, b := free(su), free(sv)
		if sv[a] >= 0 {
			// a busy at v: flip the (a,b)-alternating path starting at
			// v's a-edge. The path cannot reach u (u's sender side has no
			// a-edge) nor return to v (v's receiver side has no b-edge),
			// so after the swap a is free at both endpoints.
			var path []int
			node, onRecv, c := v, true, a
			for {
				var arr []int
				if onRecv {
					arr = slot(colR, node)
				} else {
					arr = slot(colS, node)
				}
				e2 := arr[c]
				if e2 < 0 {
					break
				}
				path = append(path, e2)
				if onRecv {
					node = xfers[e2].Src
				} else {
					node = xfers[e2].Dst
				}
				onRecv = !onRecv
				if c == a {
					c = b
				} else {
					c = a
				}
			}
			for _, e2 := range path {
				colS[xfers[e2].Src][color[e2]] = -1
				colR[xfers[e2].Dst][color[e2]] = -1
			}
			for _, e2 := range path {
				nc := a
				if color[e2] == a {
					nc = b
				}
				color[e2] = nc
				colS[xfers[e2].Src][nc] = e2
				colR[xfers[e2].Dst][nc] = e2
			}
		}
		color[e] = a
		su[a] = e
		sv[a] = e
	}
	rounds := make([][]Xfer, maxDeg)
	for e, x := range xfers {
		rounds[color[e]] = append(rounds[color[e]], x)
	}
	out := rounds[:0]
	for _, r := range rounds {
		if len(r) > 0 {
			out = append(out, r)
		}
	}
	return out
}
