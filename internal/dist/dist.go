// Package dist implements the data-distribution mathematics of the PLDI'97
// paper "Data Distribution Support on Distributed Shared Memory
// Multiprocessors": the block / cyclic / cyclic(k) / * distribution
// specifiers (paper §3.2), the owner and local-offset transforms of Table 1,
// the affinity-scheduling loop bounds of Figure 2, the onto-clause processor
// grid assignment, and the portion-traversal intrinsics of the runtime
// library.
//
// All indices in this package are zero-based element indices within a single
// array dimension. The Fortran front end converts its one-based subscripts
// before calling in.
package dist

import (
	"fmt"
	"strings"
)

// Kind identifies one of the four distribution specifiers a dimension may
// carry (paper §3.2: "<dist> may be one of block, cyclic, cyclic(<expr>),
// or *").
type Kind int

const (
	// Star means the dimension is not distributed ("*").
	Star Kind = iota
	// Block divides the dimension into P contiguous chunks of size
	// ceil(N/P).
	Block
	// Cyclic deals elements round-robin: element i lives on processor
	// i mod P.
	Cyclic
	// BlockCyclic (cyclic(k)) deals chunks of k elements round-robin.
	BlockCyclic
)

func (k Kind) String() string {
	switch k {
	case Star:
		return "*"
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case BlockCyclic:
		return "cyclic(k)"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dim describes the distribution of a single array dimension.
type Dim struct {
	Kind  Kind
	Chunk int // chunk size k for BlockCyclic; ignored otherwise
	// Onto is the relative weight from the onto clause (0 means
	// unspecified). Only meaningful on distributed (non-Star) dims.
	Onto int
}

func (d Dim) String() string {
	switch d.Kind {
	case BlockCyclic:
		return fmt.Sprintf("cyclic(%d)", d.Chunk)
	default:
		return d.Kind.String()
	}
}

// Distributed reports whether the dimension is spread across processors.
func (d Dim) Distributed() bool { return d.Kind != Star }

// Validate checks internal consistency of the specifier.
func (d Dim) Validate() error {
	switch d.Kind {
	case Star, Block, Cyclic:
		return nil
	case BlockCyclic:
		if d.Chunk <= 0 {
			return fmt.Errorf("dist: cyclic chunk must be positive, got %d", d.Chunk)
		}
		return nil
	}
	return fmt.Errorf("dist: unknown kind %d", int(d.Kind))
}

// Spec is the full distribution of an array: one Dim per array dimension.
type Spec struct {
	Dims []Dim
	// Reshape distinguishes c$distribute_reshape from c$distribute.
	Reshape bool
}

func (s Spec) String() string {
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = d.String()
	}
	name := "distribute"
	if s.Reshape {
		name = "distribute_reshape"
	}
	return fmt.Sprintf("%s(%s)", name, strings.Join(parts, ","))
}

// Distributed reports whether any dimension is distributed.
func (s Spec) Distributed() bool {
	for _, d := range s.Dims {
		if d.Distributed() {
			return true
		}
	}
	return false
}

// DistributedDims returns the indices of the distributed dimensions.
func (s Spec) DistributedDims() []int {
	var out []int
	for i, d := range s.Dims {
		if d.Distributed() {
			out = append(out, i)
		}
	}
	return out
}

// Equal reports whether two specs are identical (same kinds, chunks and
// reshape flag). The pre-linker uses this when matching clone requests and
// when verifying common-block consistency (paper §5, §6).
func (s Spec) Equal(o Spec) bool {
	if s.Reshape != o.Reshape || len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		if s.Dims[i].Kind != o.Dims[i].Kind {
			return false
		}
		if s.Dims[i].Kind == BlockCyclic && s.Dims[i].Chunk != o.Dims[i].Chunk {
			return false
		}
	}
	return true
}

// Validate checks every dimension.
func (s Spec) Validate() error {
	if len(s.Dims) == 0 {
		return fmt.Errorf("dist: spec has no dimensions")
	}
	for i, d := range s.Dims {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("dim %d: %w", i+1, err)
		}
	}
	return nil
}

// BlockSize returns the per-processor portion length b = ceil(n/p) used by
// the Block transforms of Table 1.
func BlockSize(n, p int) int {
	if p <= 0 {
		p = 1
	}
	return (n + p - 1) / p
}

// DimMap is a Dim instantiated for a concrete dimension extent and processor
// count; it answers the Table 1 questions: which processor owns element i,
// and at which offset within that processor's portion.
type DimMap struct {
	Dim
	N int // dimension extent
	P int // processors assigned to this dimension (1 for Star)
	B int // block size for Block kind (ceil(N/P)); 0 otherwise
}

// NewDimMap binds a dimension specifier to an extent and processor count.
func NewDimMap(d Dim, n, p int) DimMap {
	if !d.Distributed() || p < 1 {
		p = 1
	}
	m := DimMap{Dim: d, N: n, P: p}
	if d.Kind == Block {
		m.B = BlockSize(n, p)
	}
	return m
}

// Owner returns the processor (within this dimension's processor axis) that
// owns zero-based element i. This is the first row of Table 1:
//
//	block:      i / b
//	cyclic:     i mod P
//	cyclic(k):  (i/k) mod P
func (m DimMap) Owner(i int) int {
	switch m.Kind {
	case Star:
		return 0
	case Block:
		return i / m.B
	case Cyclic:
		return i % m.P
	case BlockCyclic:
		return (i / m.Chunk) % m.P
	}
	return 0
}

// Offset returns the zero-based offset of element i within its owner's
// portion. This is the second row of Table 1:
//
//	block:      i mod b
//	cyclic:     i / P
//	cyclic(k):  (i/(k*P))*k + i mod k
func (m DimMap) Offset(i int) int {
	switch m.Kind {
	case Star:
		return i
	case Block:
		return i % m.B
	case Cyclic:
		return i / m.P
	case BlockCyclic:
		return (i/(m.Chunk*m.P))*m.Chunk + i%m.Chunk
	}
	return i
}

// PortionLen returns the number of elements of the dimension owned by
// processor p. The reshaped-array allocator sizes per-processor pools with
// this (paper §4.3: portions are allocated independently, no padding to page
// boundaries).
func (m DimMap) PortionLen(p int) int {
	switch m.Kind {
	case Star:
		return m.N
	case Block:
		lo := p * m.B
		if lo >= m.N {
			return 0
		}
		hi := lo + m.B
		if hi > m.N {
			hi = m.N
		}
		return hi - lo
	case Cyclic:
		if p >= m.N {
			return 0
		}
		return (m.N - p + m.P - 1) / m.P
	case BlockCyclic:
		k := m.Chunk
		full := m.N / (k * m.P) // complete rounds of P chunks
		n := full * k
		rem := m.N - full*k*m.P // elements in the final partial round
		lo := p * k
		if rem > lo {
			extra := rem - lo
			if extra > k {
				extra = k
			}
			n += extra
		}
		return n
	}
	return 0
}

// MaxPortionLen returns the largest portion length over all processors; the
// processor-array representation of a reshaped dimension uses this as its
// per-processor stride when a uniform stride is required.
func (m DimMap) MaxPortionLen() int {
	switch m.Kind {
	case Star:
		return m.N
	case Block:
		return m.B
	default:
		return m.PortionLen(0)
	}
}

// Global is the inverse of (Owner, Offset): it maps processor p and local
// offset j back to the global element index. The runtime portion intrinsics
// (paper §3.2.1 "a rich set of intrinsics for traversing the individual
// portions") are built on it.
func (m DimMap) Global(p, j int) int {
	switch m.Kind {
	case Star:
		return j
	case Block:
		return p*m.B + j
	case Cyclic:
		return j*m.P + p
	case BlockCyclic:
		k := m.Chunk
		return (j/k)*(k*m.P) + p*k + j%k
	}
	return j
}

// Range is a contiguous run of global indices owned by one processor.
type Range struct{ Lo, Hi int } // inclusive Lo, exclusive Hi

// OwnedRanges returns the maximal contiguous global-index runs owned by
// processor p, in increasing order. Block yields at most one range, cyclic
// yields singletons, cyclic(k) yields chunk stripes.
func (m DimMap) OwnedRanges(p int) []Range {
	var out []Range
	switch m.Kind {
	case Star:
		if m.N > 0 {
			out = append(out, Range{0, m.N})
		}
	case Block:
		lo := p * m.B
		hi := lo + m.B
		if hi > m.N {
			hi = m.N
		}
		if lo < hi {
			out = append(out, Range{lo, hi})
		}
	case Cyclic:
		for i := p; i < m.N; i += m.P {
			out = append(out, Range{i, i + 1})
		}
	case BlockCyclic:
		k := m.Chunk
		for lo := p * k; lo < m.N; lo += k * m.P {
			hi := lo + k
			if hi > m.N {
				hi = m.N
			}
			out = append(out, Range{lo, hi})
		}
	}
	return out
}
