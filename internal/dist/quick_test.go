package dist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Randomized property tests (testing/quick) for the Table 1 / Figure 2
// mathematics, complementing the exhaustive small-case tests in
// dist_test.go.

func randMap(rng *rand.Rand) DimMap {
	kinds := []Dim{
		{Kind: Star},
		{Kind: Block},
		{Kind: Cyclic},
		{Kind: BlockCyclic, Chunk: 1 + rng.Intn(7)},
	}
	d := kinds[rng.Intn(len(kinds))]
	n := 1 + rng.Intn(500)
	p := 1 + rng.Intn(17)
	return NewDimMap(d, n, p)
}

// Property: Global is the exact inverse of (Owner, Offset) and owners are
// in range, for arbitrary kinds, extents, processor counts, and elements.
func TestQuickOwnerOffsetInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMap(rng)
		for trial := 0; trial < 50; trial++ {
			i := rng.Intn(m.N)
			o, off := m.Owner(i), m.Offset(i)
			if m.Distributed() && (o < 0 || o >= m.P) {
				return false
			}
			if off < 0 || off >= m.MaxPortionLen() {
				return false
			}
			if m.Global(o, off) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: portions partition the dimension exactly.
func TestQuickPortionPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMap(rng)
		procs := m.P
		if m.Kind == Star {
			procs = 1
		}
		total := 0
		for p := 0; p < procs; p++ {
			total += m.PortionLen(p)
		}
		return total == m.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Figure 2 affinity iteration sets partition any loop whose
// referenced elements stay in range.
func TestQuickAffinityPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMap(rng)
		a := 1 + rng.Intn(3)
		lb := 1
		// Choose ub and c so a*i + c stays within [0, N).
		maxI := (m.N - 1) / a
		if maxI < lb {
			return true
		}
		ub := lb + rng.Intn(maxI-lb+1)
		c := rng.Intn(m.N - a*ub)
		step := 1 + rng.Intn(2)

		procs := m.P
		if m.Kind == Star {
			procs = 1
		}
		seen := map[int]bool{}
		for p := 0; p < procs; p++ {
			for _, r := range m.AffineIters(p, a, c, lb, ub, step) {
				for i := r.Lo; i <= r.Hi; i += r.Step {
					if seen[i] || m.Owner(a*i+c) != p {
						return false
					}
					seen[i] = true
				}
			}
		}
		want := 0
		for i := lb; i <= ub; i += step {
			want++
			if !seen[i] {
				return false
			}
		}
		return len(seen) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: grids use every processor when the count factors onto the
// dimensions, and Coord/Linear invert each other.
func TestQuickGridRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + rng.Intn(3)
		spec := Spec{Dims: make([]Dim, nd)}
		for i := range spec.Dims {
			spec.Dims[i].Kind = Block
			if rng.Intn(3) == 0 {
				spec.Dims[i].Onto = 1 + rng.Intn(4)
			}
		}
		np := 1 + rng.Intn(64)
		g, err := NewGrid(spec, np)
		if err != nil {
			return false
		}
		if g.Used < 1 || g.Used > np {
			return false
		}
		prod := 1
		for _, p := range g.DimProcs {
			prod *= p
		}
		if prod != g.Used {
			return false
		}
		for id := 0; id < g.Used; id++ {
			if g.Linear(g.Coord(id)) != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
