package dist

import (
	"testing"
)

// bruteIntersect recomputes the per-(src,dst) node transfer counts by
// walking every element of the array, the definitionally-correct O(N^d)
// reference the closed-form intersection must match.
func bruteIntersect(oldGrid Grid, oldMaps []DimMap, newGrid Grid, newMaps []DimMap, nodeOf func(int) int) map[[2]int]int64 {
	acc := map[[2]int]int64{}
	idx := make([]int, len(oldMaps))
	total := 1
	for _, m := range oldMaps {
		total *= m.N
	}
	for n := 0; n < total; n++ {
		src := nodeOf(oldGrid.OwnerLinear(oldMaps, idx))
		dst := nodeOf(newGrid.OwnerLinear(newMaps, idx))
		if src != dst {
			acc[[2]int{src, dst}]++
		}
		for d := 0; d < len(idx); d++ {
			idx[d]++
			if idx[d] < oldMaps[d].N {
				break
			}
			idx[d] = 0
		}
	}
	return acc
}

func mkGrid(t *testing.T, spec Spec, nprocs int, extents []int) (Grid, []DimMap) {
	t.Helper()
	g, err := NewGrid(spec, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Maps(extents)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func TestIntersectMatchesBruteForce(t *testing.T) {
	nodeOf := func(p int) int { return p / 2 } // ProcsPerNode = 2
	cases := []struct {
		name     string
		old, new Spec
		extents  []int
		nprocs   int
	}{
		{"block-to-cyclic", Spec{Dims: []Dim{{Kind: Block}}}, Spec{Dims: []Dim{{Kind: Cyclic}}}, []int{97}, 8},
		{"cyclic3-to-block", Spec{Dims: []Dim{{Kind: BlockCyclic, Chunk: 3}}}, Spec{Dims: []Dim{{Kind: Block}}}, []int{100}, 8},
		{"block-star-to-star-block", Spec{Dims: []Dim{{Kind: Block}, {Kind: Star}}}, Spec{Dims: []Dim{{Kind: Star}, {Kind: Block}}}, []int{24, 36}, 8},
		{"cyclic5-to-cyclic2", Spec{Dims: []Dim{{Kind: BlockCyclic, Chunk: 5}}}, Spec{Dims: []Dim{{Kind: BlockCyclic, Chunk: 2}}}, []int{143}, 6},
		{"2d-block-block-to-cyclic-block", Spec{Dims: []Dim{{Kind: Block}, {Kind: Block}}}, Spec{Dims: []Dim{{Kind: Cyclic}, {Kind: Block}}}, []int{20, 18}, 8},
		{"same-spec-no-motion", Spec{Dims: []Dim{{Kind: Block}, {Kind: Star}}}, Spec{Dims: []Dim{{Kind: Block}, {Kind: Star}}}, []int{33, 7}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			og, om := mkGrid(t, tc.old, tc.nprocs, tc.extents)
			ng, nm := mkGrid(t, tc.new, tc.nprocs, tc.extents)
			got := Intersect(og, om, ng, nm, nodeOf)
			want := bruteIntersect(og, om, ng, nm, nodeOf)
			gotMap := map[[2]int]int64{}
			for _, x := range got {
				if x.Src == x.Dst {
					t.Errorf("self-transfer %+v", x)
				}
				if x.Elems <= 0 {
					t.Errorf("non-positive transfer %+v", x)
				}
				gotMap[[2]int{x.Src, x.Dst}] += x.Elems
			}
			if len(gotMap) != len(want) {
				t.Fatalf("got %d node pairs, want %d: got %v want %v", len(gotMap), len(want), gotMap, want)
			}
			for k, v := range want {
				if gotMap[k] != v {
					t.Errorf("pair %v: got %d elems, want %d", k, gotMap[k], v)
				}
			}
		})
	}
}

func TestIntersectDeterministic(t *testing.T) {
	spec1 := Spec{Dims: []Dim{{Kind: Block}, {Kind: Block}}}
	spec2 := Spec{Dims: []Dim{{Kind: BlockCyclic, Chunk: 2}, {Kind: Star}}}
	og, om := mkGrid(t, spec1, 16, []int{64, 64})
	ng, nm := mkGrid(t, spec2, 16, []int{64, 64})
	nodeOf := func(p int) int { return p / 2 }
	a := Intersect(og, om, ng, nm, nodeOf)
	b := Intersect(og, om, ng, nm, nodeOf)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Src < a[i-1].Src || (a[i].Src == a[i-1].Src && a[i].Dst <= a[i-1].Dst) {
			t.Fatalf("output not sorted at %d: %+v after %+v", i, a[i], a[i-1])
		}
	}
}

func TestScheduleProperties(t *testing.T) {
	cases := [][]Xfer{
		nil,
		{{0, 1, 10}},
		// All-to-all on 4 nodes: degree 3 each way.
		func() []Xfer {
			var xs []Xfer
			for s := 0; s < 4; s++ {
				for d := 0; d < 4; d++ {
					if s != d {
						xs = append(xs, Xfer{s, d, int64(s*10 + d)})
					}
				}
			}
			return xs
		}(),
		// One hot sender fanning out to 5 receivers.
		{{0, 1, 1}, {0, 2, 2}, {0, 3, 3}, {0, 4, 4}, {0, 5, 5}},
		// Asymmetric mesh.
		{{0, 1, 7}, {1, 0, 7}, {0, 2, 3}, {2, 1, 4}, {3, 1, 9}, {2, 3, 2}, {1, 3, 8}},
	}
	for ci, xs := range cases {
		rounds := Schedule(xs)
		// Every transfer appears exactly once.
		seen := map[Xfer]int{}
		for _, r := range rounds {
			for _, x := range r {
				seen[x]++
			}
		}
		if len(seen) != len(xs) {
			t.Errorf("case %d: %d distinct transfers scheduled, want %d", ci, len(seen), len(xs))
		}
		for _, x := range xs {
			if seen[x] != 1 {
				t.Errorf("case %d: transfer %+v scheduled %d times", ci, x, seen[x])
			}
		}
		// Per round: each node sends at most once and receives at most
		// once.
		for ri, r := range rounds {
			snd, rcv := map[int]bool{}, map[int]bool{}
			for _, x := range r {
				if snd[x.Src] {
					t.Errorf("case %d round %d: node %d sends twice", ci, ri, x.Src)
				}
				if rcv[x.Dst] {
					t.Errorf("case %d round %d: node %d receives twice", ci, ri, x.Dst)
				}
				snd[x.Src], rcv[x.Dst] = true, true
			}
		}
		// Optimality: rounds == max degree.
		deg := map[int]int{}
		maxDeg := 0
		for _, x := range xs {
			for _, k := range [2]int{x.Src, ^x.Dst} {
				deg[k]++
				if deg[k] > maxDeg {
					maxDeg = deg[k]
				}
			}
		}
		if len(rounds) != maxDeg {
			t.Errorf("case %d: %d rounds, want max degree %d", ci, len(rounds), maxDeg)
		}
	}
}
