// Package hostpool is the process-wide budget for *host* parallelism.
//
// Two layers of the harness want to spawn goroutines that burn a real CPU
// each: experiment sweeps (`experiments.ForEach`, dsmbench -par N) and the
// parallel execution engine (`exec` running one scout goroutine per
// simulated processor). Composed naively a sweep at -par N over points at
// P processors would spawn N×P workers; instead both layers draw *extra*
// workers from this single counting budget and fall back to doing the work
// on their own goroutine when the pool is dry.
//
// The convention: every caller implicitly owns the goroutine it is already
// running on, so a budget of B means "at most B goroutines working at
// once" and Acquire hands out at most B-1 extras in total. Acquire never
// blocks and never fails — it grants between 0 and `want` workers, and the
// caller sizes its fan-out accordingly.
package hostpool

import (
	"runtime"
	"sync"
)

var (
	mu     sync.Mutex
	budget = runtime.GOMAXPROCS(0)
	inUse  int
	peak   int
)

// Acquire requests up to want extra workers and returns how many were
// granted (possibly 0). Every grant must be returned with Release.
func Acquire(want int) int {
	if want <= 0 {
		return 0
	}
	mu.Lock()
	defer mu.Unlock()
	avail := budget - 1 - inUse
	if avail <= 0 {
		return 0
	}
	if want > avail {
		want = avail
	}
	inUse += want
	if inUse > peak {
		peak = inUse
	}
	return want
}

// Release returns n previously granted workers to the pool.
func Release(n int) {
	if n <= 0 {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	inUse -= n
	if inUse < 0 {
		panic("hostpool: Release without matching Acquire")
	}
}

// SetBudget sets the total worker budget (including the caller's own
// goroutine) and returns the previous value. Values < 1 are clamped to 1.
// Outstanding grants are unaffected; the new budget applies to future
// Acquires.
func SetBudget(n int) int {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	prev := budget
	budget = n
	return prev
}

// Budget returns the current total budget.
func Budget() int {
	mu.Lock()
	defer mu.Unlock()
	return budget
}

// InUse returns the number of extra workers currently granted.
func InUse() int {
	mu.Lock()
	defer mu.Unlock()
	return inUse
}

// Peak returns the high-water mark of granted extras since the last
// ResetPeak. Peak+1 bounds the number of goroutines that were ever
// working concurrently (the +1 is the caller's own).
func Peak() int {
	mu.Lock()
	defer mu.Unlock()
	return peak
}

// ResetPeak clears the high-water mark (test hook).
func ResetPeak() {
	mu.Lock()
	defer mu.Unlock()
	peak = inUse
}
