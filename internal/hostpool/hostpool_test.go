package hostpool

import (
	"sync"
	"testing"
)

// reset puts the pool in a known state and restores it afterwards.
func reset(t *testing.T, budget int) {
	t.Helper()
	prev := SetBudget(budget)
	ResetPeak()
	t.Cleanup(func() { SetBudget(prev) })
}

func TestAcquireRespectsBudget(t *testing.T) {
	reset(t, 4)
	if got := Acquire(10); got != 3 {
		t.Fatalf("Acquire(10) under budget 4 = %d, want 3 (budget-1)", got)
	}
	if got := Acquire(1); got != 0 {
		t.Fatalf("Acquire(1) with pool dry = %d, want 0", got)
	}
	Release(3)
	if got := Acquire(2); got != 2 {
		t.Fatalf("Acquire(2) after release = %d, want 2", got)
	}
	Release(2)
	if InUse() != 0 {
		t.Fatalf("InUse = %d after all releases, want 0", InUse())
	}
}

func TestBudgetOneGrantsNothing(t *testing.T) {
	reset(t, 1)
	if got := Acquire(8); got != 0 {
		t.Fatalf("Acquire under budget 1 = %d, want 0", got)
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	reset(t, 8)
	a := Acquire(3)
	b := Acquire(2)
	Release(a)
	Release(b)
	if Peak() != 5 {
		t.Fatalf("Peak = %d, want 5", Peak())
	}
	ResetPeak()
	if Peak() != 0 {
		t.Fatalf("Peak after reset = %d, want 0", Peak())
	}
}

// TestConcurrentAcquireNeverExceedsBudget hammers the pool from many
// goroutines and checks the invariant that grants never exceed budget-1.
func TestConcurrentAcquireNeverExceedsBudget(t *testing.T) {
	reset(t, 5)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				n := Acquire(3)
				if InUse() > Budget()-1 {
					t.Errorf("inUse %d exceeds budget-1 %d", InUse(), Budget()-1)
				}
				Release(n)
			}
		}()
	}
	wg.Wait()
	if InUse() != 0 {
		t.Fatalf("InUse = %d after all releases, want 0", InUse())
	}
	if p := Peak(); p > 4 {
		t.Fatalf("Peak = %d, exceeds budget-1 = 4", p)
	}
}
