// Package machine describes the simulated CC-NUMA target: an SGI
// Origin-2000-like system of dual-processor nodes connected in a hypercube
// (paper §2, Figure 1), plus the instruction cycle-cost model of the MIPS
// R10000 the paper's optimizations are calibrated against (§7: 35-cycle
// integer divide, 11-cycle floating-point divide).
//
// Two stock configurations are provided: Origin2000, with the paper's
// published parameters, and Scaled, a 1/16-size machine used by the
// experiment harness so that the paper's 400 MB workloads can be simulated
// in seconds while preserving the ratios that drive every reported result
// (portion size : page size, dataset : aggregate cache, dataset : node
// memory). See DESIGN.md "Scaling".
package machine

import "fmt"

// Config is the full description of the simulated machine.
type Config struct {
	Name string

	// Processors and topology.
	NProcs        int // logical processors in use
	ProcsPerNode  int // Origin-2000: 2 R10000s share a node memory
	ClockMHz      int // 195 MHz R10000
	NodeMemBytes  int // per-node main memory capacity (paper: ~4 GB/node hardware, but only ~250 MB was free per node in the LU runs)
	PageBytes     int // OS page size (16 KB on IRIX/Origin-2000)
	PageColorBits int // number of physical page colors the OS maintains

	// Primary (on-chip) data cache.
	L1Bytes    int
	L1LineSize int
	L1Assoc    int

	// Secondary (off-chip) unified cache.
	L2Bytes    int
	L2LineSize int
	L2Assoc    int

	// TLB.
	TLBEntries int
	TLBMissCyc int

	// Latencies, in processor cycles.
	L1HitCyc      int // load-to-use on L1 hit
	L2HitCyc      int // L1 miss, L2 hit
	LocalMemCyc   int // L2 miss to local node memory (~70 on Origin)
	RemoteBaseCyc int // L2 miss to a 1-hop remote node (~110)
	RemoteHopCyc  int // extra cycles per additional hop (caps near 180)
	RemoteMaxCyc  int
	CoherenceCyc  int // extra cycles when the directory must invalidate/intervene

	// Node memory bandwidth model: a node's memory can begin servicing a
	// new cache line every MemServiceCyc cycles; extra concurrent
	// requests queue. This is what makes "all data on one node" a
	// bottleneck (paper §8.2).
	MemServiceCyc int

	// Synchronization.
	BarrierBaseCyc int // fixed cost of the implicit doacross barrier
	BarrierPerProc int // per-participant cost
	ForkCyc        int // cost to dispatch a parallel region

	// Instruction costs (cycles). Loads/stores add memory latency on
	// top of IntOpCyc.
	IntOpCyc  int // simple ALU op
	IntMulCyc int
	IntDivCyc int // 35 on R10000, not pipelined (paper §7)
	FpOpCyc   int
	FpMulCyc  int
	FpDivCyc  int // 11 on R10000 (paper §7.3)
	BranchCyc int
}

// Validate sanity-checks the configuration.
func (c *Config) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{c.NProcs >= 1, "NProcs >= 1"},
		{c.ProcsPerNode >= 1, "ProcsPerNode >= 1"},
		{c.PageBytes > 0 && c.PageBytes&(c.PageBytes-1) == 0, "PageBytes power of two"},
		{c.L1LineSize > 0 && c.L1LineSize&(c.L1LineSize-1) == 0, "L1LineSize power of two"},
		{c.L2LineSize > 0 && c.L2LineSize&(c.L2LineSize-1) == 0, "L2LineSize power of two"},
		{c.L1Bytes >= c.L1LineSize*c.L1Assoc, "L1 size fits geometry"},
		{c.L2Bytes >= c.L2LineSize*c.L2Assoc, "L2 size fits geometry"},
		{c.L1Assoc >= 1 && c.L2Assoc >= 1, "associativity >= 1"},
		{c.TLBEntries >= 1, "TLBEntries >= 1"},
		{c.NodeMemBytes >= c.PageBytes, "node memory holds at least one page"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("machine %q: invalid config: %s", c.Name, ch.msg)
		}
	}
	return nil
}

// NNodes returns the number of nodes needed for NProcs processors.
func (c *Config) NNodes() int {
	return (c.NProcs + c.ProcsPerNode - 1) / c.ProcsPerNode
}

// NodeOf returns the node housing processor p.
func (c *Config) NodeOf(p int) int { return p / c.ProcsPerNode }

// Hops returns the hypercube hop distance between two nodes (Hamming
// distance of the node ids, as in the Origin's bristled hypercube).
func Hops(a, b int) int {
	x := uint(a ^ b)
	h := 0
	for x != 0 {
		h += int(x & 1)
		x >>= 1
	}
	return h
}

// RemoteLatency returns the L2-miss-to-memory latency for a processor on
// node `from` hitting memory on node `to`.
func (c *Config) RemoteLatency(from, to int) int {
	if from == to {
		return c.LocalMemCyc
	}
	l := c.RemoteBaseCyc + (Hops(from, to)-1)*c.RemoteHopCyc
	if l > c.RemoteMaxCyc {
		l = c.RemoteMaxCyc
	}
	return l
}

// Seconds converts simulated cycles to seconds at the configured clock.
func (c *Config) Seconds(cycles int64) float64 {
	return float64(cycles) / (float64(c.ClockMHz) * 1e6)
}

// Origin2000 returns the paper's machine: 195 MHz R10000s, two per node,
// 32 KB/32 B L1, 4 MB/128 B L2 (the benchmark system, §8), 16 KB pages,
// 64-entry TLB, ~70-cycle local and 110–180-cycle remote miss latencies
// (§2).
func Origin2000(nprocs int) *Config {
	return &Config{
		Name:          "origin2000",
		NProcs:        nprocs,
		ProcsPerNode:  2,
		ClockMHz:      195,
		NodeMemBytes:  250 << 20, // free memory observed in the LU runs (§8.1)
		PageBytes:     16 << 10,
		PageColorBits: 5,

		L1Bytes: 32 << 10, L1LineSize: 32, L1Assoc: 2,
		L2Bytes: 4 << 20, L2LineSize: 128, L2Assoc: 2,

		TLBEntries: 64, TLBMissCyc: 60,

		L1HitCyc: 1, L2HitCyc: 10,
		LocalMemCyc: 70, RemoteBaseCyc: 110, RemoteHopCyc: 15, RemoteMaxCyc: 180,
		CoherenceCyc:  40,
		MemServiceCyc: 24,

		BarrierBaseCyc: 400, BarrierPerProc: 40, ForkCyc: 800,

		IntOpCyc: 1, IntMulCyc: 5, IntDivCyc: 35,
		FpOpCyc: 2, FpMulCyc: 2, FpDivCyc: 11,
		BranchCyc: 1,
	}
}

// ScaleFactor is the linear capacity scaling applied by Scaled.
const ScaleFactor = 16

// Scaled returns the 1/16-capacity machine used by the experiment harness:
// caches, pages and node memory shrink by ScaleFactor while line sizes,
// associativity and all latencies stay at Origin-2000 values, so workloads
// scaled down by the same factor see the paper's capacity ratios.
func Scaled(nprocs int) *Config {
	c := Origin2000(nprocs)
	c.Name = "origin2000-scaled16"
	c.NodeMemBytes /= ScaleFactor
	c.PageBytes /= ScaleFactor // 1 KB
	c.L1Bytes /= ScaleFactor   // 2 KB
	c.L2Bytes /= ScaleFactor   // 256 KB
	if c.TLBEntries > 64 {
		c.TLBEntries = 64
	}
	return c
}

// Tiny returns a very small machine for unit tests: everything is minimal
// so cache and page effects show up with toy arrays.
func Tiny(nprocs int) *Config {
	c := Origin2000(nprocs)
	c.Name = "tiny"
	c.NodeMemBytes = 1 << 20
	c.PageBytes = 256
	c.L1Bytes = 512
	c.L1LineSize = 32
	c.L2Bytes = 4 << 10
	c.L2LineSize = 64
	c.TLBEntries = 8
	return c
}
