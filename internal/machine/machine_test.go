package machine

import "testing"

func TestConfigsValidate(t *testing.T) {
	for _, c := range []*Config{Origin2000(1), Origin2000(128), Scaled(64), Tiny(4)} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	c := Origin2000(4)
	c.PageBytes = 3000 // not a power of two
	if err := c.Validate(); err == nil {
		t.Error("non-power-of-two page accepted")
	}
	c = Origin2000(4)
	c.NProcs = 0
	if err := c.Validate(); err == nil {
		t.Error("0 procs accepted")
	}
	c = Origin2000(4)
	c.L1Bytes = 16 // smaller than one line per way
	if err := c.Validate(); err == nil {
		t.Error("impossible L1 geometry accepted")
	}
}

func TestNodes(t *testing.T) {
	c := Origin2000(5)
	if c.NNodes() != 3 {
		t.Errorf("5 procs / 2 per node = %d nodes, want 3", c.NNodes())
	}
	if c.NodeOf(0) != 0 || c.NodeOf(1) != 0 || c.NodeOf(2) != 1 || c.NodeOf(4) != 2 {
		t.Error("NodeOf wrong")
	}
}

func TestHops(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 2}, {5, 6, 2}, {0, 7, 3}, {0, 15, 4},
	}
	for _, c := range cases {
		if got := Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRemoteLatency(t *testing.T) {
	c := Origin2000(64)
	if c.RemoteLatency(3, 3) != c.LocalMemCyc {
		t.Error("local latency wrong")
	}
	one := c.RemoteLatency(0, 1)
	if one != c.RemoteBaseCyc {
		t.Errorf("1-hop latency %d, want %d", one, c.RemoteBaseCyc)
	}
	far := c.RemoteLatency(0, 31) // 5 hops
	if far > c.RemoteMaxCyc {
		t.Errorf("latency %d exceeds max %d", far, c.RemoteMaxCyc)
	}
	if far <= one {
		t.Errorf("far latency %d not > near %d", far, one)
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	o, s := Origin2000(8), Scaled(8)
	if o.PageBytes/s.PageBytes != ScaleFactor {
		t.Error("page not scaled")
	}
	if o.L2Bytes/s.L2Bytes != ScaleFactor {
		t.Error("L2 not scaled")
	}
	// L2 lines per page must match so page/line false-sharing ratios hold.
	if o.PageBytes/o.L2LineSize != s.PageBytes/s.L2LineSize*2 {
		// 16K/128 = 128 lines; 1K/128 = 8 lines. Ratio changes because
		// line size is held constant; record the actual relation.
		t.Logf("lines per page: origin %d scaled %d", o.PageBytes/o.L2LineSize, s.PageBytes/s.L2LineSize)
	}
	if s.LocalMemCyc != o.LocalMemCyc || s.RemoteBaseCyc != o.RemoteBaseCyc {
		t.Error("latencies must not scale")
	}
}

func TestSeconds(t *testing.T) {
	c := Origin2000(1)
	if got := c.Seconds(195e6); got < 0.999 || got > 1.001 {
		t.Errorf("195e6 cycles at 195MHz = %v s, want 1", got)
	}
}
