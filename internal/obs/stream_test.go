package obs_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
)

// emitBarriers drives n trace events through the recorder's own hooks
// (each positive-wait barrier emits one span).
func emitBarriers(rec *obs.Recorder, n int) {
	for i := 0; i < n; i++ {
		rec.BarrierWait(0, int64(100*(i+1)), 10)
	}
}

// TestSpoolRoundTrip spools events through a SpoolSink and reads them back
// both raw and finalized into the Chrome trace-event object format.
func TestSpoolRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spool := filepath.Join(dir, "run.spool")
	sink, err := obs.NewSpoolSink(spool)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder(machine.Tiny(2))
	rec.EnableTrace(0)
	rec.SetTraceSink(sink)
	emitBarriers(rec, 5)
	if err := rec.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != 5 {
		t.Fatalf("sink saw %d events, want 5", sink.Count())
	}

	f, err := os.Open(spool)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadSpool(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 5 {
		t.Fatalf("spool holds %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Name != "barrier" || ev.Ph != "X" {
			t.Errorf("event %d: %+v, want a barrier span", i, ev)
		}
	}

	// Finalizing must produce the same document shape WriteTrace emits:
	// track metadata first, then the spooled events, in order.
	out := filepath.Join(dir, "run.json")
	if err := obs.FinalizeSpoolFile(spool, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents     []obs.TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("finalized trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tf.DisplayTimeUnit)
	}
	if len(tf.TraceEvents) != 7 {
		t.Fatalf("finalized trace holds %d events, want 2 meta + 5 spans", len(tf.TraceEvents))
	}
	if tf.TraceEvents[0].Ph != "M" || tf.TraceEvents[1].Ph != "M" {
		t.Errorf("metadata events missing from the front: %+v", tf.TraceEvents[:2])
	}
}

// TestSpoolTornFinalLine is the interrupted-run contract: a spool whose
// last line was cut mid-write still loads, yielding every complete event.
func TestSpoolTornFinalLine(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 3; i++ {
		ev, _ := json.Marshal(obs.TraceEvent{Name: "ok", Ph: "X", Ts: float64(i)})
		b.Write(ev)
		b.WriteByte('\n')
	}
	b.WriteString(`{"name":"torn","ph":"X","ts`) // interrupted mid-event, no newline

	evs, err := obs.ReadSpool(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want the 3 complete ones", len(evs))
	}
}

// TestSpoolMidFileCorruption: damage anywhere but the tail is not an
// interrupted run, it is a broken file, and must fail loudly.
func TestSpoolMidFileCorruption(t *testing.T) {
	var b strings.Builder
	ev, _ := json.Marshal(obs.TraceEvent{Name: "ok", Ph: "X"})
	b.Write(ev)
	b.WriteString("\n{garbage\n")
	b.Write(ev)
	b.WriteByte('\n')

	if _, err := obs.ReadSpool(strings.NewReader(b.String())); err == nil {
		t.Fatal("mid-file corruption must be an error, not silently skipped")
	}
}

// TestTraceCapDropsWithoutSink: buffered mode bounds memory by dropping
// past the cap and counting what it dropped.
func TestTraceCapDropsWithoutSink(t *testing.T) {
	rec := obs.NewRecorder(machine.Tiny(2))
	rec.EnableTrace(4)
	emitBarriers(rec, 6)
	if got := len(rec.TraceEvents()); got != 4 {
		t.Errorf("buffer holds %d events, want cap 4", got)
	}
	if rec.TraceDropped() != 2 {
		t.Errorf("dropped = %d, want 2", rec.TraceDropped())
	}
	if rec.TraceCount() != 6 {
		t.Errorf("TraceCount = %d, want 6", rec.TraceCount())
	}
}

// TestTraceSinkLiftsCap: attaching a sink spills the buffer and turns the
// cap into a flush threshold — nothing is dropped anymore.
func TestTraceSinkLiftsCap(t *testing.T) {
	rec := obs.NewRecorder(machine.Tiny(2))
	rec.EnableTrace(4)
	sink, err := obs.NewSpoolSink(filepath.Join(t.TempDir(), "s.spool"))
	if err != nil {
		t.Fatal(err)
	}
	emitBarriers(rec, 3)
	rec.SetTraceSink(sink) // spills the 3 buffered events immediately
	if sink.Count() != 3 {
		t.Errorf("sink saw %d events after attach, want the 3 buffered", sink.Count())
	}
	emitBarriers(rec, 10)
	if err := rec.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if rec.TraceDropped() != 0 {
		t.Errorf("dropped = %d with a sink attached, want 0", rec.TraceDropped())
	}
	if sink.Count() != 13 || rec.TraceCount() != 13 {
		t.Errorf("sink %d / count %d, want 13 / 13", sink.Count(), rec.TraceCount())
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceCapEnvOverride: DSM_TRACE_EVENTS sets the cap when EnableTrace
// is not given one, and an explicit argument still wins.
func TestTraceCapEnvOverride(t *testing.T) {
	t.Setenv(obs.EnvTraceEvents, "2")

	rec := obs.NewRecorder(machine.Tiny(2))
	rec.EnableTrace(0)
	emitBarriers(rec, 5)
	if len(rec.TraceEvents()) != 2 || rec.TraceDropped() != 3 {
		t.Errorf("env cap: %d buffered / %d dropped, want 2 / 3",
			len(rec.TraceEvents()), rec.TraceDropped())
	}

	rec = obs.NewRecorder(machine.Tiny(2))
	rec.EnableTrace(8)
	emitBarriers(rec, 5)
	if len(rec.TraceEvents()) != 5 || rec.TraceDropped() != 0 {
		t.Errorf("explicit cap must beat the env: %d buffered / %d dropped, want 5 / 0",
			len(rec.TraceEvents()), rec.TraceDropped())
	}
}

// TestTraceStreamFinalizeIdempotent: Finalize is safe to call twice (the
// normal exit path and a signal handler can race to it) and produces a
// loadable trace from whatever reached the spool.
func TestTraceStreamFinalizeIdempotent(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	rec := obs.NewRecorder(machine.Tiny(2))
	rec.EnableTrace(0)
	ts, err := obs.StreamTraceToFile(rec, out)
	if err != nil {
		t.Fatal(err)
	}
	emitBarriers(rec, 4)
	if err := rec.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Finalize(); err != nil {
		t.Fatalf("second Finalize must be a no-op, got %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	if len(tf.TraceEvents) != 6 {
		t.Errorf("finalized trace holds %d events, want 2 meta + 4 spans", len(tf.TraceEvents))
	}
}
