package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
)

// runWithSeries runs src with cycle sampling at the given interval and
// returns the recorder.
func runWithSeries(t *testing.T, src string, cfg *machine.Config, interval int64) *obs.Recorder {
	t.Helper()
	rec := obs.NewRecorder(cfg)
	rec.EnableSeries(interval, nil)
	tc := core.New()
	tc.Rec = rec
	img, err := tc.Build(map[string]string{"main.f": src})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := core.Run(img, cfg, core.RunOptions{
		Policy: ospage.FirstTouch, Recorder: rec}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return rec
}

// TestSeriesJSONLGolden pins the v=1 series row schema with a golden file:
// dashboards and scripts consume these rows incrementally, so any change
// to the shape must be deliberate (regenerate with
// `go test ./internal/obs -run TestSeriesJSONLGolden -update`).
func TestSeriesJSONLGolden(t *testing.T) {
	rec := runWithSeries(t, goldenSrc, machine.Tiny(4), 20000)

	var buf bytes.Buffer
	if err := rec.WriteSeries(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rec.SeriesErr(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "series_golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("series JSONL drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s\n(regenerate with -update if the change is intended)",
			golden, buf.Bytes(), want)
	}

	// Schema guards independent of the golden bytes: version, dense
	// sequence numbers, monotone clocks, the final marker on the last row
	// only, and the key names scripts depend on.
	var rows []map[string]json.RawMessage
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("row %d is not a JSON object: %v", len(rows), err)
		}
		rows = append(rows, m)
	}
	if len(rows) < 2 {
		t.Fatalf("expected at least an interval row and a final row, got %d", len(rows))
	}
	lastClock := int64(-1)
	for i, m := range rows {
		for _, k := range []string{"v", "seq", "clock", "now"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("row %d: key %q missing", i, k)
			}
		}
		var v, seq, clock int64
		json.Unmarshal(m["v"], &v)
		json.Unmarshal(m["seq"], &seq)
		json.Unmarshal(m["clock"], &clock)
		if v != int64(obs.SeriesVersion) {
			t.Errorf("row %d: v = %d, want %d", i, v, obs.SeriesVersion)
		}
		if seq != int64(i) {
			t.Errorf("row %d: seq = %d", i, seq)
		}
		if clock <= lastClock {
			t.Errorf("row %d: clock %d not past previous %d", i, clock, lastClock)
		}
		lastClock = clock
		_, final := m["final"]
		if final != (i == len(rows)-1) {
			t.Errorf("row %d: final marker misplaced", i)
		}
	}
	// The run touches memory, so the series as a whole must carry event
	// deltas, per-proc counters, and heat for the distributed array.
	var sawEvents, sawProcs, sawHeat bool
	for _, m := range rows {
		if _, ok := m["events"]; ok {
			sawEvents = true
		}
		if _, ok := m["procs"]; ok {
			sawProcs = true
		}
		if raw, ok := m["heat"]; ok {
			sawHeat = true
			var hs []struct {
				Array string `json:"array"`
				Node  *int   `json:"node"`
			}
			if err := json.Unmarshal(raw, &hs); err != nil {
				t.Fatalf("heat rows malformed: %v", err)
			}
			for _, h := range hs {
				if h.Array != "hg.x" || h.Node == nil {
					t.Errorf("heat row %+v: want array hg.x with a node index", h)
				}
			}
		}
	}
	if !sawEvents || !sawProcs || !sawHeat {
		t.Errorf("series missing sections: events=%v procs=%v heat=%v", sawEvents, sawProcs, sawHeat)
	}
	// The final row must close the books: regions with the doacross's name.
	last := rows[len(rows)-1]
	raw, ok := last["regions"]
	if !ok {
		t.Fatal("final row has no regions section")
	}
	var rg []struct {
		Name   string `json:"name"`
		Cycles int64  `json:"cycles"`
	}
	if err := json.Unmarshal(raw, &rg); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rg {
		total += r.Cycles
	}
	if total <= 0 {
		t.Errorf("final row regions carry no cycle deltas: %s", raw)
	}
}

// TestSeriesDeltasSumToTotals checks the stream is lossless: summing the
// per-row event deltas over the whole series reproduces the recorder's
// cumulative counters.
func TestSeriesDeltasSumToTotals(t *testing.T) {
	rec := runWithSeries(t, goldenSrc, machine.Tiny(4), 20000)
	sums := map[string]int64{}
	for _, row := range rec.SeriesRows() {
		var m struct {
			Events map[string]int64 `json:"events"`
		}
		if err := json.Unmarshal(row, &m); err != nil {
			t.Fatal(err)
		}
		for k, v := range m.Events {
			sums[k] += v
		}
	}
	for k, total := range rec.Counts() {
		if sums[k] != total {
			t.Errorf("event %q: series deltas sum to %d, recorder total %d", k, sums[k], total)
		}
	}
}
