package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
)

// serveGet fetches a path from the test server and returns status + body.
func serveGet(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestLiveServerEndpoints drives a full streamed run and checks every
// endpoint serves its documented document.
func TestLiveServerEndpoints(t *testing.T) {
	cfg := machine.Tiny(4)
	rec := obs.NewRecorder(cfg)
	rec.EnableTrace(0)
	sink, err := obs.NewSpoolSink(filepath.Join(t.TempDir(), "run.spool"))
	if err != nil {
		t.Fatal(err)
	}
	rec.SetTraceSink(sink)
	rec.EnableSeries(20000, nil)

	tc := core.New()
	tc.Rec = rec
	img, err := tc.Build(map[string]string{"main.f": goldenSrc})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := core.Run(img, cfg, core.RunOptions{
		Policy: ospage.FirstTouch, Recorder: rec}); err != nil {
		t.Fatalf("run: %v", err)
	}

	srv := httptest.NewServer(obs.NewLiveServer(rec, sink).Handler())
	defer srv.Close()

	// /snapshot: the cached cumulative document, marked done after Finish.
	code, body := serveGet(t, srv, "/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot: status %d: %s", code, body)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/snapshot: %v", err)
	}
	if snap.V != obs.SeriesVersion || !snap.Done || snap.Clock <= 0 {
		t.Errorf("/snapshot: v=%d done=%v clock=%d", snap.V, snap.Done, snap.Clock)
	}
	if snap.Machine != cfg.Name || snap.Procs != cfg.NProcs {
		t.Errorf("/snapshot: machine %q procs %d, want %q %d",
			snap.Machine, snap.Procs, cfg.Name, cfg.NProcs)
	}
	if snap.SampleCycles != 20000 || snap.Samples != int64(len(rec.SeriesRows())) {
		t.Errorf("/snapshot: sample_cycles=%d samples=%d", snap.SampleCycles, snap.Samples)
	}
	if snap.Summary == nil || len(snap.ProcObs) != cfg.NProcs {
		t.Errorf("/snapshot: summary/proc_obs missing")
	}

	// /series: the wrapper plus every row.
	code, body = serveGet(t, srv, "/series")
	if code != http.StatusOK {
		t.Fatalf("/series: status %d", code)
	}
	var series struct {
		V            int               `json:"v"`
		SampleCycles int64             `json:"sample_cycles"`
		Rows         []json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatalf("/series: %v", err)
	}
	if series.V != obs.SeriesVersion || series.SampleCycles != 20000 {
		t.Errorf("/series: v=%d sample_cycles=%d", series.V, series.SampleCycles)
	}
	if len(series.Rows) != len(rec.SeriesRows()) || len(series.Rows) == 0 {
		t.Errorf("/series: %d rows, recorder has %d", len(series.Rows), len(rec.SeriesRows()))
	}

	// /trace: the spool finalized on the fly into loadable trace JSON.
	code, body = serveGet(t, srv, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: status %d: %s", code, body)
	}
	var tf struct {
		TraceEvents     []obs.TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(body, &tf); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("/trace: displayTimeUnit %q", tf.DisplayTimeUnit)
	}
	if want := rec.TraceCount() + 2; int64(len(tf.TraceEvents)) != want {
		t.Errorf("/trace: %d events, want %d (spool + meta)", len(tf.TraceEvents), want)
	}

	// /: the dashboard, self-contained HTML.
	code, body = serveGet(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(string(body), "<html") {
		t.Errorf("/: status %d, body starts %q", code, body[:min(len(body), 40)])
	}

	// Unknown paths must 404, not fall through to the dashboard.
	if code, _ = serveGet(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: status %d, want 404", code)
	}
}

// TestLiveServerDisabledViews: without series sampling or a spool the
// endpoints refuse with 503 rather than serving empty documents.
func TestLiveServerDisabledViews(t *testing.T) {
	rec := obs.NewRecorder(machine.Tiny(2))
	srv := httptest.NewServer(obs.NewLiveServer(rec, nil).Handler())
	defer srv.Close()

	if code, _ := serveGet(t, srv, "/snapshot"); code != http.StatusServiceUnavailable {
		t.Errorf("/snapshot without series: status %d, want 503", code)
	}
	if code, _ := serveGet(t, srv, "/trace"); code != http.StatusServiceUnavailable {
		t.Errorf("/trace without spool: status %d, want 503", code)
	}
}
