// Chrome trace_event export: the recorder can keep a bounded timeline of
// region spans, barrier waits, redistributions and page events, written as
// the JSON object format chrome://tracing and Perfetto load. Timestamps
// are simulated time converted to microseconds at the machine clock.
package obs

import (
	"encoding/json"
	"io"
)

// TraceEvent is one Chrome trace_event record.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace process ids: processor tracks vs page/memory tracks.
const (
	pidProcs = 0
	pidPages = 1
)

// DefaultTraceEvents bounds a trace unless EnableTrace is told otherwise.
const DefaultTraceEvents = 1 << 20

// Trace is the bounded event buffer.
type Trace struct {
	events  []TraceEvent
	max     int
	dropped int64
}

// EnableTrace turns timeline collection on, keeping at most maxEvents
// events (<=0 means DefaultTraceEvents).
func (r *Recorder) EnableTrace(maxEvents int) {
	if r == nil {
		return
	}
	if maxEvents <= 0 {
		maxEvents = DefaultTraceEvents
	}
	r.trace = &Trace{max: maxEvents}
}

// TraceEnabled reports whether the recorder keeps a timeline.
func (r *Recorder) TraceEnabled() bool { return r != nil && r.trace != nil }

// TraceEvents returns the collected events (tests, exporters).
func (r *Recorder) TraceEvents() []TraceEvent {
	if r == nil || r.trace == nil {
		return nil
	}
	return r.trace.events
}

// TraceDropped returns how many events were discarded at the cap.
func (r *Recorder) TraceDropped() int64 {
	if r == nil || r.trace == nil {
		return 0
	}
	return r.trace.dropped
}

func (t *Trace) add(ev TraceEvent) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

func (t *Trace) span(name, cat string, proc int, ts, dur float64, args map[string]any) {
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur,
		Pid: pidProcs, Tid: proc, Args: args})
}

func (t *Trace) instant(name, cat string, node int, ts float64, args map[string]any) {
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "i", Ts: ts, S: "t",
		Pid: pidPages, Tid: node, Args: args})
}

func (t *Trace) counters(ts float64, local, remote, tlb int64) {
	t.add(TraceEvent{Name: "L2 misses", Ph: "C", Ts: ts, Pid: pidProcs, Tid: 0,
		Args: map[string]any{"local": local, "remote": remote}})
	t.add(TraceEvent{Name: "TLB misses", Ph: "C", Ts: ts, Pid: pidProcs, Tid: 0,
		Args: map[string]any{"misses": tlb}})
}

// traceFile is the on-disk JSON object format.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace writes the timeline as Chrome trace-event JSON. Metadata
// events naming the processor and page tracks are prepended.
func (r *Recorder) WriteTrace(w io.Writer) error {
	evs := []TraceEvent{
		{Name: "process_name", Ph: "M", Pid: pidProcs,
			Args: map[string]any{"name": "processors"}},
		{Name: "process_name", Ph: "M", Pid: pidPages,
			Args: map[string]any{"name": "pages"}},
	}
	if r != nil && r.trace != nil {
		evs = append(evs, r.trace.events...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
