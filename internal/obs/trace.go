// Chrome trace_event export: the recorder can keep a bounded timeline of
// region spans, barrier waits, redistributions and page events, written as
// the JSON object format chrome://tracing and Perfetto load. Timestamps
// are simulated time converted to microseconds at the machine clock.
//
// Two modes:
//
//   - buffered (EnableTrace alone): events accumulate in memory up to a
//     cap — DefaultTraceEvents, overridable by the maxEvents argument or
//     the DSM_TRACE_EVENTS environment variable — and WriteTrace emits
//     them at the end of the run; events past the cap are counted as
//     dropped.
//   - streaming (SetTraceSink): events drain to a StreamSink at flush
//     points (region boundaries, parallel-engine epoch commits, Finish,
//     and every sinkFlushEvery events), so memory stays bounded by the
//     flush interval and a crash mid-run leaves a loadable partial spool.
package obs

import (
	"encoding/json"
	"io"
	"os"
	"strconv"
)

// TraceEvent is one Chrome trace_event record.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace process ids: processor tracks vs page/memory tracks.
const (
	pidProcs = 0
	pidPages = 1
)

// DefaultTraceEvents bounds a trace unless EnableTrace or the
// DSM_TRACE_EVENTS environment variable says otherwise.
const DefaultTraceEvents = 1 << 20

// sinkFlushEvery bounds how many events sit in memory between the
// structural flush points when a sink is attached.
const sinkFlushEvery = 1024

// EnvTraceEvents overrides the in-memory event cap when set to a positive
// integer (flags still win over the environment).
const EnvTraceEvents = "DSM_TRACE_EVENTS"

// Trace is the bounded event buffer, optionally draining to a sink.
type Trace struct {
	events  []TraceEvent
	max     int
	dropped int64
	sink    StreamSink
	emitted int64 // events handed to the sink
}

// envTraceCap reads the DSM_TRACE_EVENTS override, or 0.
func envTraceCap() int {
	if v := os.Getenv(EnvTraceEvents); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// EnableTrace turns timeline collection on, keeping at most maxEvents
// events in memory (<=0 means the DSM_TRACE_EVENTS environment override,
// or DefaultTraceEvents).
func (r *Recorder) EnableTrace(maxEvents int) {
	if r == nil {
		return
	}
	if maxEvents <= 0 {
		maxEvents = envTraceCap()
	}
	if maxEvents <= 0 {
		maxEvents = DefaultTraceEvents
	}
	r.trace = &Trace{max: maxEvents}
}

// SetTraceSink attaches a stream sink; EnableTrace must have been called.
// Events already buffered spill to the sink immediately, and from here on
// the in-memory buffer only stages events between flush points, so the cap
// no longer drops anything.
func (r *Recorder) SetTraceSink(s StreamSink) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.sink = s
	r.trace.flushSink()
}

// TraceEnabled reports whether the recorder keeps a timeline.
func (r *Recorder) TraceEnabled() bool { return r != nil && r.trace != nil }

// TraceEvents returns the buffered events (tests, exporters). With a sink
// attached the buffer holds only events not yet flushed — use the spool.
func (r *Recorder) TraceEvents() []TraceEvent {
	if r == nil || r.trace == nil {
		return nil
	}
	return r.trace.events
}

// TraceCount returns the total events recorded, including events already
// drained to a sink and events dropped at the cap.
func (r *Recorder) TraceCount() int64 {
	if r == nil || r.trace == nil {
		return 0
	}
	t := r.trace
	return t.emitted + int64(len(t.events)) + t.dropped
}

// TraceDropped returns how many events were discarded at the cap.
func (r *Recorder) TraceDropped() int64 {
	if r == nil || r.trace == nil {
		return 0
	}
	return r.trace.dropped
}

// FlushTrace drains buffered events to the attached sink (no-op without
// one). Exporters call it before reading the spool mid-run.
func (r *Recorder) FlushTrace() error {
	if r == nil || r.trace == nil || r.trace.sink == nil {
		return nil
	}
	r.trace.flushSink()
	return r.trace.sink.Flush()
}

func (t *Trace) add(ev TraceEvent) {
	if t.sink == nil && len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
	if t.sink != nil && len(t.events) >= sinkFlushEvery {
		t.flushSink()
	}
}

// flushSink hands buffered events to the sink in order. Only called at
// points where the event stream is in its committed serial order (the
// recorder is single-threaded under both engines, and the parallel engine
// only reaches flush points after replaying an epoch).
func (t *Trace) flushSink() {
	if t.sink == nil || len(t.events) == 0 {
		return
	}
	for i := range t.events {
		t.sink.Emit(&t.events[i])
	}
	t.emitted += int64(len(t.events))
	t.events = t.events[:0]
}

func (t *Trace) span(name, cat string, proc int, ts, dur float64, args map[string]any) {
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur,
		Pid: pidProcs, Tid: proc, Args: args})
}

func (t *Trace) instant(name, cat string, node int, ts float64, args map[string]any) {
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "i", Ts: ts, S: "t",
		Pid: pidPages, Tid: node, Args: args})
}

func (t *Trace) counters(ts float64, local, remote, tlb int64) {
	t.add(TraceEvent{Name: "L2 misses", Ph: "C", Ts: ts, Pid: pidProcs, Tid: 0,
		Args: map[string]any{"local": local, "remote": remote}})
	t.add(TraceEvent{Name: "TLB misses", Ph: "C", Ts: ts, Pid: pidProcs, Tid: 0,
		Args: map[string]any{"misses": tlb}})
}

// traceFile is the on-disk JSON object format.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// traceMeta returns the metadata events naming the processor and page
// tracks, prepended to every exported trace.
func traceMeta() []TraceEvent {
	return []TraceEvent{
		{Name: "process_name", Ph: "M", Pid: pidProcs,
			Args: map[string]any{"name": "processors"}},
		{Name: "process_name", Ph: "M", Pid: pidPages,
			Args: map[string]any{"name": "pages"}},
	}
}

// WriteTrace writes the timeline as Chrome trace-event JSON. Metadata
// events naming the processor and page tracks are prepended.
func (r *Recorder) WriteTrace(w io.Writer) error {
	evs := traceMeta()
	if r != nil && r.trace != nil {
		evs = append(evs, r.trace.events...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
