package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSrc is a tiny fully deterministic program: one distributed array,
// one doacross, fixed bounds, so the exported heat map is byte-stable.
const goldenSrc = `      program hg
      integer n
      parameter (n = 64)
      real*8 x(n, n)
c$distribute x(block, *)
      integer i, j
c$doacross local(i, j) shared(x)
      do j = 1, n
        do i = 1, n
          x(i, j) = dble(i) + dble(j)
        end do
      end do
      end
`

// TestHeatJSONGolden pins the dsmprof -heat-json schema with a golden
// file: the advisor reads this format back as measured feedback, so any
// change to the JSON shape must be deliberate (regenerate with
// `go test ./internal/obs -run TestHeatJSONGolden -update`).
func TestHeatJSONGolden(t *testing.T) {
	cfg := machine.Tiny(4)
	_, rec := runWithRecorder(t, goldenSrc, cfg, ospage.FirstTouch)

	var buf bytes.Buffer
	if err := rec.HeatMap().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "heat_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("heat JSON drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s\n(regenerate with -update if the change is intended)",
			golden, buf.Bytes(), want)
	}

	// The schema must survive a round trip through the reader the advisor
	// uses, with the fields it depends on intact.
	h, err := obs.ReadHeatMap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if h.Machine != cfg.Name || h.Procs != cfg.NProcs || h.PageBytes != cfg.PageBytes {
		t.Errorf("machine identification lost in round trip: %+v", h)
	}
	ah := h.Array("hg.x")
	if ah == nil {
		t.Fatal("array hg.x missing from heat map")
	}
	if ah.Spec != "distribute(block,*)" {
		t.Errorf("spec = %q, want distribute(block,*)", ah.Spec)
	}
	if ah.Bytes != 64*64*8 {
		t.Errorf("bytes = %d, want %d", ah.Bytes, 64*64*8)
	}
	var local, remote, owned int64
	for _, c := range ah.Nodes {
		local += c.LocalMiss
		remote += c.RemoteMiss
		owned += c.OwnedPages
	}
	if local != ah.Local || remote != ah.Remote {
		t.Errorf("per-node cells (%d local, %d remote) disagree with array totals (%d, %d)",
			local, remote, ah.Local, ah.Remote)
	}
	if want := ah.Bytes / int64(cfg.PageBytes); owned < want {
		t.Errorf("ownership map covers %d pages, array spans %d", owned, want)
	}

	// The golden file also guards key names: a rename in the Go structs
	// would silently strand old profiles.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"machine", "procs", "nodes", "page_bytes", "arrays"} {
		if _, ok := raw[k]; !ok {
			t.Errorf("top-level key %q missing from heat JSON", k)
		}
	}
}
