package obs

// DashboardHTML returns the self-contained live dashboard page, for hosts
// that mount it somewhere other than the local -serve root (the service
// serves it at /jobs/{id}/).
func DashboardHTML() string { return dashboardHTML }

// dashboardHTML is the self-contained live dashboard served at /. It polls
// snapshot and series (relative URLs, so the page works both at the local
// -serve root and under the service's /jobs/{id}/ prefix) once a second
// and renders the per-region cycle breakdown (stacked bars over a fixed
// category order, with a legend and a table view) and the per-array×node
// remote-miss heat map (single-hue sequential ramp). All styling is inline
// so the page works with no other assets; colors follow the repo's chart
// palette with a dark variant keyed to prefers-color-scheme.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>dsm live run</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --text-muted: #898781;
    --grid: #e1e0d9;
    --cat-compute: #2a78d6;
    --cat-remote:  #eb6834;
    --cat-local:   #1baf7a;
    --cat-tlb:     #eda100;
    --cat-bwq:     #e87ba4;
    --cat-barrier: #008300;
    --cat-redist:  #4a3aa7;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted: #898781;
      --grid: #2c2c2a;
      --cat-compute: #3987e5;
      --cat-remote:  #d95926;
      --cat-local:   #199e70;
      --cat-tlb:     #c98500;
      --cat-bwq:     #d55181;
      --cat-barrier: #008300;
      --cat-redist:  #9085e9;
    }
  }
  body { margin: 0; padding: 24px; background: var(--page); color: var(--text-primary);
         font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
  h1 { font-size: 18px; margin: 0 0 4px; }
  h2 { font-size: 14px; margin: 24px 0 8px; color: var(--text-secondary); font-weight: 600; }
  .meta { color: var(--text-secondary); margin-bottom: 16px; }
  .meta b { color: var(--text-primary); font-weight: 600; }
  .card { background: var(--surface-1); border: 1px solid var(--grid); border-radius: 8px;
          padding: 16px; margin-bottom: 16px; }
  .legend { display: flex; flex-wrap: wrap; gap: 12px; margin: 8px 0 12px;
            color: var(--text-secondary); font-size: 12px; }
  .legend span { display: inline-flex; align-items: center; gap: 5px; }
  .chip { width: 10px; height: 10px; border-radius: 2px; display: inline-block; }
  .row { margin: 6px 0; }
  .rname { font-size: 12px; color: var(--text-secondary); margin-bottom: 2px; }
  .bar { display: flex; height: 16px; border-radius: 4px; overflow: hidden; gap: 2px;
         background: var(--surface-1); }
  .bar div { height: 100%; }
  table { border-collapse: collapse; font-variant-numeric: tabular-nums; width: 100%;
          font-size: 12px; }
  th, td { text-align: right; padding: 3px 8px; border-bottom: 1px solid var(--grid);
           color: var(--text-primary); }
  th { color: var(--text-muted); font-weight: 500; }
  th:first-child, td:first-child { text-align: left; }
  .hm td.cell { min-width: 52px; }
  .spark { display: block; }
  .err { color: var(--text-secondary); }
</style>
</head>
<body>
<h1>dsm live run</h1>
<div class="meta" id="meta">connecting&#8230;</div>

<div class="card">
  <h2 style="margin-top:0">Remote L2 misses per sample</h2>
  <svg id="spark" class="spark" width="640" height="60" viewBox="0 0 640 60"
       preserveAspectRatio="none" role="img" aria-label="remote misses per sample"></svg>
  <div class="meta" id="sparkmax" style="margin:4px 0 0;font-size:12px"></div>
</div>

<div class="card">
  <h2 style="margin-top:0">Region cycle breakdown</h2>
  <div class="legend" id="legend"></div>
  <div id="regions"></div>
  <h2>Values (aggregate cycles)</h2>
  <div style="overflow-x:auto"><table id="rtable"></table></div>
</div>

<div class="card">
  <h2 style="margin-top:0">Array &#215; node remote-miss heat</h2>
  <div style="overflow-x:auto"><table class="hm" id="heat"></table></div>
</div>

<script>
"use strict";
// Fixed category order; slot assignment never changes with the data.
var CATS = [
  {key: "compute_cyc",     name: "compute",  v: "--cat-compute"},
  {key: "remote_miss_cyc", name: "remote",   v: "--cat-remote"},
  {key: "local_miss_cyc",  name: "local",    v: "--cat-local"},
  {key: "tlb_cyc",         name: "tlb",      v: "--cat-tlb"},
  {key: "bw_wait_cyc",     name: "bw queue", v: "--cat-bwq"},
  {key: "barrier_cyc",     name: "barrier",  v: "--cat-barrier"},
  {key: "redist_cyc",      name: "redist",   v: "--cat-redist"}
];
// Sequential blue ramp, light to dark (near zero recedes to the surface).
var RAMP = ["#cde2fb", "#9ec5f4", "#6da7ec", "#3987e5", "#256abf", "#184f95", "#0d366b"];

function fmt(n) { return (n === undefined || n === null) ? "0" : n.toLocaleString("en-US"); }
function el(tag, cls) { var e = document.createElement(tag); if (cls) e.className = cls; return e; }

var legend = document.getElementById("legend");
CATS.forEach(function (c) {
  var s = el("span"), chip = el("span", "chip");
  chip.style.background = "var(" + c.v + ")";
  s.appendChild(chip);
  s.appendChild(document.createTextNode(c.name));
  legend.appendChild(s);
});

function renderMeta(snap) {
  var e = snap.engine || {};
  document.getElementById("meta").innerHTML =
    "<b>" + snap.machine + "</b> &#183; " + snap.procs + " procs / " + snap.nodes +
    " nodes &#183; clock <b>" + fmt(snap.clock) + "</b> cycles &#183; " +
    fmt(snap.samples) + " samples &#183; epochs " + fmt(e.epochs_committed) +
    " committed / " + fmt(e.epochs_fallback) + " fallback &#183; " +
    (snap.done ? "<b>finished</b>" : "running");
}

function renderRegions(snap) {
  var regions = (snap.summary && snap.summary.regions) || [];
  var box = document.getElementById("regions");
  box.textContent = "";
  var max = 1;
  regions.forEach(function (r) { if (r.cycles > max) max = r.cycles; });
  regions.forEach(function (r) {
    var row = el("div", "row"), name = el("div", "rname"), bar = el("div", "bar");
    name.textContent = r.name;
    bar.style.width = Math.max(2, 100 * r.cycles / max) + "%";
    CATS.forEach(function (c) {
      var v = r[c.key] || 0;
      if (v <= 0 || !r.cycles) return;
      var seg = el("div");
      seg.style.flex = String(v);
      seg.style.background = "var(" + c.v + ")";
      seg.title = r.name + " &#183; " + c.name + ": " + fmt(v) + " cyc";
      bar.appendChild(seg);
    });
    row.appendChild(name);
    row.appendChild(bar);
    box.appendChild(row);
  });

  var t = document.getElementById("rtable");
  var h = "<tr><th>region</th><th>cycles</th>";
  CATS.forEach(function (c) { h += "<th>" + c.name + "</th>"; });
  h += "<th>tlb %</th></tr>";
  regions.forEach(function (r) {
    h += "<tr><td>" + r.name + "</td><td>" + fmt(r.cycles) + "</td>";
    CATS.forEach(function (c) { h += "<td>" + fmt(r[c.key] || 0) + "</td>"; });
    h += "<td>" + (100 * (r.tlb_frac || 0)).toFixed(1) + "</td></tr>";
  });
  t.innerHTML = h;
}

function renderHeat(snap) {
  var arrays = (snap.summary && snap.summary.arrays) || [];
  var t = document.getElementById("heat");
  if (!arrays.length) { t.innerHTML = "<tr><td class='err'>no arrays registered</td></tr>"; return; }
  var max = 1;
  arrays.forEach(function (a) {
    (a.nodes || []).forEach(function (n) { if (n.remote_miss > max) max = n.remote_miss; });
  });
  var nn = snap.nodes;
  var h = "<tr><th>array</th>";
  for (var n = 0; n < nn; n++) h += "<th>node " + n + "</th>";
  h += "<th>remote</th></tr>";
  arrays.forEach(function (a) {
    h += "<tr><td>" + a.name + "</td>";
    for (var n = 0; n < nn; n++) {
      var cell = (a.nodes || [])[n] || {};
      var v = cell.remote_miss || 0;
      var step = v <= 0 ? -1 : Math.min(RAMP.length - 1,
        Math.floor(Math.sqrt(v / max) * RAMP.length));
      var bg = step < 0 ? "transparent" : RAMP[step];
      var ink = step >= 4 ? "#ffffff" : "var(--text-primary)";
      h += "<td class='cell' style='background:" + bg + ";color:" + ink + "' title='" +
        a.name + " node " + n + ": " + fmt(v) + " remote, " + fmt(cell.local_miss || 0) +
        " local, " + fmt(cell.served_remote || 0) + " served'>" + fmt(v) + "</td>";
    }
    h += "<td>" + fmt(a.remote_miss) + "</td></tr>";
  });
  t.innerHTML = h;
}

function renderSpark(series) {
  var rows = series.rows || [];
  var vals = rows.map(function (r) { return (r.events && r.events["l2-miss-remote"]) || 0; });
  var svg = document.getElementById("spark");
  var w = 640, hgt = 60, max = Math.max.apply(null, [1].concat(vals));
  var pts = vals.map(function (v, i) {
    var x = vals.length < 2 ? 0 : i * w / (vals.length - 1);
    return x.toFixed(1) + "," + (hgt - 2 - (hgt - 6) * v / max).toFixed(1);
  });
  svg.innerHTML = "<polyline fill='none' stroke='var(--cat-compute)' stroke-width='2' points='" +
    pts.join(" ") + "'/>";
  document.getElementById("sparkmax").textContent =
    rows.length + " samples, peak " + fmt(max) + " remote misses/sample";
}

// The local -serve endpoint returns a {v, sample_cycles, rows} document;
// the service's /jobs/{id}/series streams raw JSONL rows. Accept both.
function parseSeries(text) {
  text = text.trim();
  if (!text) return {rows: []};
  try {
    var doc = JSON.parse(text);
    return doc.rows ? doc : {rows: [doc]};
  } catch (e) {
    return {rows: text.split("\n").map(function (l) { return JSON.parse(l); })};
  }
}

var stopped = false;
function tick() {
  fetch("snapshot").then(function (r) { return r.json(); }).then(function (snap) {
    renderMeta(snap);
    renderRegions(snap);
    renderHeat(snap);
    if (snap.done) stopped = true;
    return fetch("series?nofollow=1").then(function (r) { return r.text(); })
      .then(function (text) { renderSpark(parseSeries(text)); });
  }).catch(function (err) {
    document.getElementById("meta").textContent = "fetch failed: " + err;
  }).then(function () {
    // One more paint after the run finishes, then stop polling.
    if (!stopped) setTimeout(tick, 1000);
  });
}
tick();
</script>
</body>
</html>
`
