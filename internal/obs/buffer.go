package obs

// ProcBuffer collects the Recorder events one simulated processor emits
// during a speculative epoch of the parallel execution engine. The
// Recorder itself is not safe for concurrent use — and must not be, since
// its aggregation (heat maps, region tallies, trace spans) depends on the
// global serial order of events. So under the parallel engine each scout
// thread appends to its own ProcBuffer, and at epoch commit the executor
// merges the buffers in the serial schedule's (startClock, procID) quantum
// order and replays them onto the Recorder, reproducing the serial event
// stream byte for byte.
//
// Events are grouped by the execution quantum that produced them so the
// executor can interleave quanta from different processors exactly as the
// serial scheduler would have.
type ProcBuffer struct {
	quanta []quantumMark
	events []bufEvent
}

type quantumMark struct {
	start  int64 // simulated clock when the quantum began
	lo, hi int32 // event index range [lo, hi)
}

type bufEvent struct {
	kind  uint8
	node  int32 // accessing node (or waiting node for bwWait)
	home  int32 // home node (l2Miss only)
	n     int32 // event count (batched runs emit n identical events)
	addr  int64
	cyc   int64 // miss/wait cycles (per event)
	clock int64
}

const (
	bufL1Miss = uint8(iota)
	bufL2Miss
	bufTLBMiss
	bufBWWait
)

// NewProcBuffer returns an empty buffer.
func NewProcBuffer() *ProcBuffer { return &ProcBuffer{} }

// Reset clears the buffer for a new epoch, keeping capacity.
func (b *ProcBuffer) Reset() {
	b.quanta = b.quanta[:0]
	b.events = b.events[:0]
}

// BeginQuantum marks the start of an execution quantum at the given
// simulated clock; subsequent events belong to it until the next call.
func (b *ProcBuffer) BeginQuantum(startClock int64) {
	if n := len(b.quanta); n > 0 {
		b.quanta[n-1].hi = int32(len(b.events))
	}
	b.quanta = append(b.quanta, quantumMark{start: startClock, lo: int32(len(b.events)), hi: int32(len(b.events))})
}

// EndEpoch seals the last quantum's event range.
func (b *ProcBuffer) EndEpoch() {
	if n := len(b.quanta); n > 0 {
		b.quanta[n-1].hi = int32(len(b.events))
	}
}

// L1Miss buffers n Recorder.L1Miss events. The proc is implied by buffer
// ownership and supplied again at replay.
func (b *ProcBuffer) L1Miss(n int) {
	b.events = append(b.events, bufEvent{kind: bufL1Miss, n: int32(n)})
}

// L2Miss buffers n identical Recorder.L2Miss events.
func (b *ProcBuffer) L2Miss(accNode, homeNode int, addr, missCyc, clock int64, n int64) {
	b.events = append(b.events, bufEvent{kind: bufL2Miss, n: int32(n),
		node: int32(accNode), home: int32(homeNode), addr: addr, cyc: missCyc, clock: clock})
}

// TLBMiss buffers n identical Recorder.TLBMiss events.
func (b *ProcBuffer) TLBMiss(accNode int, addr, cyc, clock int64, n int64) {
	b.events = append(b.events, bufEvent{kind: bufTLBMiss, n: int32(n),
		node: int32(accNode), addr: addr, cyc: cyc, clock: clock})
}

// BWWait buffers n identical Recorder.BWWait events.
func (b *ProcBuffer) BWWait(node int, wait int64, n int64) {
	b.events = append(b.events, bufEvent{kind: bufBWWait, n: int32(n), node: int32(node), cyc: wait})
}

// NumQuanta returns how many quanta were recorded this epoch.
func (b *ProcBuffer) NumQuanta() int { return len(b.quanta) }

// QuantumStart returns the simulated clock at which quantum i began.
func (b *ProcBuffer) QuantumStart(i int) int64 { return b.quanta[i].start }

// ReplayQuantum replays quantum i's buffered events onto rec in their
// original order, attributing every event to proc (the buffer's owner).
func (b *ProcBuffer) ReplayQuantum(i, proc int, rec *Recorder) {
	q := b.quanta[i]
	for _, e := range b.events[q.lo:q.hi] {
		switch e.kind {
		case bufL1Miss:
			rec.L1Miss(proc, int(e.n))
		case bufL2Miss:
			rec.L2Miss(proc, int(e.node), int(e.home), e.addr, e.cyc, e.clock, int64(e.n))
		case bufTLBMiss:
			rec.TLBMiss(proc, int(e.node), e.addr, e.cyc, e.clock, int64(e.n))
		case bufBWWait:
			rec.BWWait(proc, int(e.node), e.cyc, int64(e.n))
		}
	}
}
