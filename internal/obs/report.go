// Profile reporting: the perfex/SpeedShop-style views dsmprof prints, plus
// JSON and CSV serializations of the same data for dsmbench and scripts.
package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// RegionSummary is the serializable form of one region's breakdown.
type RegionSummary struct {
	Name        string  `json:"name"`
	File        string  `json:"file,omitempty"`
	Line        int     `json:"line,omitempty"`
	Invocations int64   `json:"invocations"`
	Procs       int     `json:"procs"`
	Cycles      int64   `json:"cycles"`
	ComputeCyc  int64   `json:"compute_cyc"`
	LocalCyc    int64   `json:"local_miss_cyc"`
	RemoteCyc   int64   `json:"remote_miss_cyc"`
	TLBCyc      int64   `json:"tlb_cyc"`
	BWWaitCyc   int64   `json:"bw_wait_cyc"`
	BarrierCyc  int64   `json:"barrier_cyc"`
	RedistCyc   int64   `json:"redist_cyc,omitempty"`
	TLBFrac     float64 `json:"tlb_frac"`
	LocalMiss   int64   `json:"local_miss"`
	RemoteMiss  int64   `json:"remote_miss"`
	TLBMiss     int64   `json:"tlb_miss"`
}

// NodeCell is one heat-map cell in serialized form.
type NodeCell struct {
	Node         int   `json:"node"`
	LocalMiss    int64 `json:"local_miss"`
	RemoteMiss   int64 `json:"remote_miss"`
	ServedRemote int64 `json:"served_remote"`
	TLBMiss      int64 `json:"tlb_miss"`
}

// ArraySummary is the serialized per-array heat map.
type ArraySummary struct {
	Name   string     `json:"name"`
	Bytes  int64      `json:"bytes"`
	Local  int64      `json:"local_miss"`
	Remote int64      `json:"remote_miss"`
	Nodes  []NodeCell `json:"nodes"`
}

// PageSummary is one hot page.
type PageSummary struct {
	VPage        int64   `json:"vpage"`
	Array        string  `json:"array,omitempty"`
	Home         int     `json:"home"`
	Local        int64   `json:"local_miss"`
	Remote       int64   `json:"remote_miss"`
	RemoteByNode []int64 `json:"remote_by_node"`
}

// Summary is the full serializable profile.
type Summary struct {
	Machine     string            `json:"machine"`
	Procs       int               `json:"procs"`
	Nodes       int               `json:"nodes"`
	TotalCycles int64             `json:"total_cycles"`
	TLBFraction float64           `json:"tlb_fraction"`
	Counts      map[string]int64  `json:"counts"`
	Regions     []RegionSummary   `json:"regions"`
	Arrays      []ArraySummary    `json:"arrays"`
	TopPages    []PageSummary     `json:"top_pages"`
	Meta        map[string]string `json:"meta,omitempty"`
}

// Summarize freezes the recorder's state into a Summary; topPages bounds
// the hot-page list (<=0 means 10).
func (r *Recorder) Summarize(topPages int) *Summary {
	if topPages <= 0 {
		topPages = 10
	}
	s := &Summary{
		Machine:     r.cfg.Name,
		Procs:       r.cfg.NProcs,
		Nodes:       r.nnodes,
		TotalCycles: r.TotalCycles(),
		TLBFraction: r.TLBFraction(),
		Counts:      r.Counts(),
		Meta:        r.meta,
	}
	for _, rs := range r.regions {
		s.Regions = append(s.Regions, RegionSummary{
			Name: rs.Name, File: rs.File, Line: rs.Line,
			Invocations: rs.Invocations, Procs: rs.Procs, Cycles: rs.Cycles,
			ComputeCyc: rs.ComputeCyc(), LocalCyc: rs.LocalMissCyc,
			RemoteCyc: rs.RemoteMissCyc, TLBCyc: rs.TLBCyc,
			BWWaitCyc: rs.BWWaitCyc, BarrierCyc: rs.BarrierCyc,
			RedistCyc: rs.RedistCyc,
			TLBFrac:   rs.TLBFrac(),
			LocalMiss: rs.LocalMiss, RemoteMiss: rs.RemoteMiss, TLBMiss: rs.TLBMiss,
		})
	}
	for _, ai := range r.arrays {
		local, remote := ai.Misses()
		as := ArraySummary{Name: ai.Name, Bytes: ai.Bytes, Local: local, Remote: remote}
		for n, h := range ai.Nodes {
			as.Nodes = append(as.Nodes, NodeCell{Node: n, LocalMiss: h.LocalMiss,
				RemoteMiss: h.RemoteMiss, ServedRemote: h.ServedRemote, TLBMiss: h.TLBMiss})
		}
		s.Arrays = append(s.Arrays, as)
	}
	// Hottest pages by remote misses.
	type hot struct {
		vp int64
		ph *PageHeat
	}
	var hots []hot
	for vp, ph := range r.pages {
		if ph != nil && ph.Remote > 0 {
			hots = append(hots, hot{int64(vp), ph})
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].ph.Remote != hots[j].ph.Remote {
			return hots[i].ph.Remote > hots[j].ph.Remote
		}
		return hots[i].vp < hots[j].vp
	})
	if len(hots) > topPages {
		hots = hots[:topPages]
	}
	for _, h := range hots {
		ps := PageSummary{VPage: h.vp, Home: h.ph.Home, Local: h.ph.Local,
			Remote: h.ph.Remote, RemoteByNode: h.ph.RemoteByNode}
		if ai := r.arrayAt(h.vp << r.pshift); ai != nil {
			ps.Array = ai.Name
		}
		s.TopPages = append(s.TopPages, ps)
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the per-region breakdown as CSV (one row per region).
func (s *Summary) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"region", "file", "line", "invocations", "procs",
		"cycles", "compute_cyc", "local_miss_cyc", "remote_miss_cyc", "tlb_cyc",
		"bw_wait_cyc", "barrier_cyc", "redist_cyc", "tlb_frac", "local_miss", "remote_miss", "tlb_miss"}); err != nil {
		return err
	}
	for _, rg := range s.Regions {
		rec := []string{rg.Name, rg.File, strconv.Itoa(rg.Line),
			strconv.FormatInt(rg.Invocations, 10), strconv.Itoa(rg.Procs),
			strconv.FormatInt(rg.Cycles, 10), strconv.FormatInt(rg.ComputeCyc, 10),
			strconv.FormatInt(rg.LocalCyc, 10), strconv.FormatInt(rg.RemoteCyc, 10),
			strconv.FormatInt(rg.TLBCyc, 10), strconv.FormatInt(rg.BWWaitCyc, 10),
			strconv.FormatInt(rg.BarrierCyc, 10),
			strconv.FormatInt(rg.RedistCyc, 10),
			strconv.FormatFloat(rg.TLBFrac, 'f', 6, 64),
			strconv.FormatInt(rg.LocalMiss, 10), strconv.FormatInt(rg.RemoteMiss, 10),
			strconv.FormatInt(rg.TLBMiss, 10)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// WriteText renders the human profile: header, per-region breakdown,
// per-array × per-node heat maps and the hottest pages.
func (s *Summary) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "machine %s: %d processors, %d nodes\n", s.Machine, s.Procs, s.Nodes)
	metaKeys := make([]string, 0, len(s.Meta))
	for k := range s.Meta {
		metaKeys = append(metaKeys, k)
	}
	sort.Strings(metaKeys)
	for _, k := range metaKeys {
		fmt.Fprintf(w, "  %s: %s\n", k, s.Meta[k])
	}
	fmt.Fprintf(w, "observed processor time: %d cycles (TLB fraction %.1f%%)\n\n",
		s.TotalCycles, 100*s.TLBFraction)

	fmt.Fprintf(w, "per-region breakdown (cycles summed over processors):\n")
	fmt.Fprintf(w, "  %-24s %-16s %6s %5s %14s %8s %8s %8s %7s %7s %8s %7s\n",
		"region", "source", "invoc", "procs", "cycles",
		"compute%", "l2loc%", "l2rem%", "tlb%", "bwq%", "barrier%", "redist%")
	for _, rg := range s.Regions {
		src := "-"
		if rg.File != "" {
			src = fmt.Sprintf("%s:%d", rg.File, rg.Line)
		}
		fmt.Fprintf(w, "  %-24s %-16s %6d %5d %14d %7.1f%% %7.1f%% %7.1f%% %6.1f%% %6.1f%% %7.1f%% %6.1f%%\n",
			rg.Name, src, rg.Invocations, rg.Procs, rg.Cycles,
			pct(rg.ComputeCyc, rg.Cycles), pct(rg.LocalCyc, rg.Cycles),
			pct(rg.RemoteCyc, rg.Cycles), pct(rg.TLBCyc, rg.Cycles),
			pct(rg.BWWaitCyc, rg.Cycles), pct(rg.BarrierCyc, rg.Cycles),
			pct(rg.RedistCyc, rg.Cycles))
	}

	if len(s.Arrays) > 0 {
		fmt.Fprintf(w, "\nper-array heat maps (L2 misses local/remote by accessing node; served = remote misses a node's memory supplied):\n")
		for _, a := range s.Arrays {
			if a.Local+a.Remote == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-24s %10d bytes  local %d  remote %d\n", a.Name, a.Bytes, a.Local, a.Remote)
			fmt.Fprintf(w, "    %-6s %12s %12s %12s %10s\n", "node", "local", "remote", "served", "tlb")
			for _, n := range a.Nodes {
				if n.LocalMiss+n.RemoteMiss+n.ServedRemote+n.TLBMiss == 0 {
					continue
				}
				fmt.Fprintf(w, "    %-6d %12d %12d %12d %10d\n",
					n.Node, n.LocalMiss, n.RemoteMiss, n.ServedRemote, n.TLBMiss)
			}
		}
	}

	if len(s.TopPages) > 0 {
		fmt.Fprintf(w, "\nhottest pages by remote misses:\n")
		for _, p := range s.TopPages {
			arr := p.Array
			if arr == "" {
				arr = "?"
			}
			fmt.Fprintf(w, "  vpage %-8d %-24s home node %-3d local %-10d remote %-10d by-node %v\n",
				p.VPage, arr, p.Home, p.Local, p.Remote, p.RemoteByNode)
		}
	}

	if len(s.Counts) > 0 {
		fmt.Fprintf(w, "\nevent counts:\n")
		keys := make([]string, 0, len(s.Counts))
		for k := range s.Counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-18s %d\n", k, s.Counts[k])
		}
	}
	return nil
}
