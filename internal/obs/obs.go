// Package obs is the observability layer for the simulated CC-NUMA
// machine: the software analog of the R10000 event counters plus the
// perfex/SpeedShop attribution workflow the paper's evaluation is built on
// (§8: secondary-cache miss counts, TLB-time fractions, local vs remote
// miss ratios, all attributed to specific arrays and program phases).
//
// The producers — memsim (cache/TLB/coherence/bandwidth events), ospage
// (placement, migration, spill), rtl (redistribution, reshaped pools,
// argument checks) and exec (parallel regions, barriers, scheduling) —
// publish into a *Recorder. A nil *Recorder is the off switch: every hook
// is a small exported wrapper whose nil check inlines at the call site, so
// a run without tracing executes the exact same simulation arithmetic and
// produces bit-identical cycle counts.
//
// The Recorder aggregates three views:
//
//   - per-array × per-node heat maps: L2 misses attributed back to the
//     source array that owns the address (registered by rtl from the
//     codegen array plans), split local/remote by the accessing node and
//     counted on the serving (home) node;
//   - per-page heat: remote misses per virtual page, by accessing node —
//     the page-level false-sharing and one-node-bottleneck view;
//   - per-region cycle breakdowns: for every outlined doacross region
//     (and the serial phase between regions) cycles split into compute,
//     local-miss, remote-miss, TLB refill, bandwidth-queue wait and
//     barrier wait — the paper's "TLB time 15% vs <7.5%" style numbers.
//
// Exporters live in report.go (text profile, JSON/CSV summaries) and
// trace.go (Chrome trace_event JSON for chrome://tracing).
package obs

import (
	"fmt"
	"sort"

	"dsmdist/internal/machine"
)

// Kind enumerates the event kinds the producers publish.
type Kind uint8

const (
	KL1Miss Kind = iota
	KL2MissLocal
	KL2MissRemote
	KTLBMiss
	KInvalidation
	KIntervention
	KBWWait
	KBarrierWait
	KPagePlace
	KPageMigrate
	KPageSpill
	KRedistribute
	KPoolAlloc
	KArgCheck
	KArgCheckFail
	KRegion
	KQuantumSwitch
	KRedistRound
	nKinds
)

var kindNames = [...]string{
	"l1-miss", "l2-miss-local", "l2-miss-remote", "tlb-miss",
	"invalidation", "intervention", "bw-wait", "barrier-wait",
	"page-place", "page-migrate", "page-spill",
	"redistribute", "pool-alloc", "arg-check", "arg-check-fail",
	"region", "quantum-switch", "redist-round",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// NodeHeat is one cell of a per-array heat map.
type NodeHeat struct {
	LocalMiss    int64 // L2 misses by processors on this node hitting local memory
	RemoteMiss   int64 // L2 misses by processors on this node to remote memory
	ServedRemote int64 // remote misses this node's memory served to other nodes
	TLBMiss      int64 // TLB misses taken on this node inside the array
}

// ArrayInfo is the attribution record and heat map for one source array.
type ArrayInfo struct {
	Name  string // unit.array
	Bytes int64
	Nodes []NodeHeat // indexed by node

	// Spec is the array's distribution rendered as directive text
	// ("distribute(block,*)"), or "" for undistributed arrays. It tracks
	// redistribution: rtl re-registers ownership on every c$redistribute.
	Spec string
	// pageOwner maps virtual page -> node the current distribution
	// assigns the page to (page-granularity, last-owner-wins at portion
	// boundaries, matching the §4.2 placement). nil when no ownership was
	// registered.
	pageOwner map[int64]int
}

// OwnerOf returns the node the registered ownership map assigns to a
// virtual page, or -1 when unknown.
func (a *ArrayInfo) OwnerOf(vpage int64) int {
	if a.pageOwner == nil {
		return -1
	}
	if n, ok := a.pageOwner[vpage]; ok {
		return n
	}
	return -1
}

// OwnedPages counts the pages the ownership map assigns to each node.
func (a *ArrayInfo) OwnedPages(nnodes int) []int64 {
	out := make([]int64, nnodes)
	for _, n := range a.pageOwner {
		if n >= 0 && n < nnodes {
			out[n]++
		}
	}
	return out
}

// Misses sums the local and remote misses over all nodes.
func (a *ArrayInfo) Misses() (local, remote int64) {
	for _, n := range a.Nodes {
		local += n.LocalMiss
		remote += n.RemoteMiss
	}
	return
}

// PageHeat is the per-virtual-page miss record.
type PageHeat struct {
	Home         int // home node at the last recorded miss
	Local        int64
	Remote       int64
	RemoteByNode []int64 // remote misses by the accessing node
}

// ProcObs is the recorder's per-processor view: the subset of the memory
// system's ProcStats that flows through observability events. Unlike
// memsim.ProcStats — which can only be read coherently at points where the
// two engines' host schedules agree — these counters are accumulated from
// the recorder event stream itself, which is byte-identical across engines,
// so per-proc snapshot deltas built from them are engine-independent.
type ProcObs struct {
	L1Miss     int64 `json:"l1_miss"`
	LocalMiss  int64 `json:"l2_miss_local"`
	RemoteMiss int64 `json:"l2_miss_remote"`
	TLBMiss    int64 `json:"tlb_miss"`
	MissCyc    int64 `json:"miss_cyc"`    // L2 fetch latency (local + remote)
	TLBCyc     int64 `json:"tlb_cyc"`     // TLB refill cycles
	BWWaitCyc  int64 `json:"bwq_cyc"`     // node-memory bandwidth queuing
	BarrierCyc int64 `json:"barrier_cyc"` // barrier wait cycles
}

func (p ProcObs) isZero() bool { return p == ProcObs{} }

func (p *ProcObs) sub(o ProcObs) ProcObs {
	return ProcObs{
		L1Miss: p.L1Miss - o.L1Miss, LocalMiss: p.LocalMiss - o.LocalMiss,
		RemoteMiss: p.RemoteMiss - o.RemoteMiss, TLBMiss: p.TLBMiss - o.TLBMiss,
		MissCyc: p.MissCyc - o.MissCyc, TLBCyc: p.TLBCyc - o.TLBCyc,
		BWWaitCyc: p.BWWaitCyc - o.BWWaitCyc, BarrierCyc: p.BarrierCyc - o.BarrierCyc,
	}
}

// RegionStats is the cycle breakdown for one parallel region (or the
// serial phase, recorded under the name "(serial)"). Cycles are summed
// over the participating processors, so fractions of Cycles are fractions
// of aggregate processor time, as in the paper's SpeedShop numbers.
type RegionStats struct {
	Name        string
	File        string
	Line        int
	Invocations int64
	Procs       int
	Cycles      int64

	LocalMissCyc  int64
	RemoteMissCyc int64
	TLBCyc        int64
	BWWaitCyc     int64
	BarrierCyc    int64
	RedistCyc     int64

	L1Miss        int64
	LocalMiss     int64
	RemoteMiss    int64
	TLBMiss       int64
	InvSent       int64
	Interventions int64
}

// ComputeCyc is what remains of Cycles after the memory-system and
// synchronization components: instruction issue plus cache-hit time.
func (r *RegionStats) ComputeCyc() int64 {
	c := r.Cycles - r.LocalMissCyc - r.RemoteMissCyc - r.TLBCyc - r.BWWaitCyc - r.BarrierCyc - r.RedistCyc
	if c < 0 {
		c = 0
	}
	return c
}

// TLBFrac is the fraction of region time spent in TLB refill.
func (r *RegionStats) TLBFrac() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TLBCyc) / float64(r.Cycles)
}

type addrRange struct {
	lo, hi int64
	arr    *ArrayInfo
}

// SerialRegion is the pseudo-region name for code outside doacross
// regions.
const SerialRegion = "(serial)"

// Recorder is the event sink. All hook methods are safe to call on a nil
// receiver (no-op), but producers guard with a nil check anyway so the
// disabled path is a single compare.
type Recorder struct {
	cfg    *machine.Config
	nnodes int
	pshift uint

	now int64 // latest simulated clock observed (timeline placement)

	counts [nKinds]int64

	// Attribution: address ranges -> arrays, lazily re-sorted after
	// registration.
	ranges []addrRange
	sorted bool
	arrays []*ArrayInfo
	byName map[string]*ArrayInfo

	pages []*PageHeat // indexed by virtual page

	regions  []*RegionStats
	byRegion map[string]*RegionStats
	cur      *RegionStats
	serial   *RegionStats

	regionStart int64
	regionProcs int
	serialMark  int64

	poolBytes   int64
	redistPages int64

	meta      map[string]string
	metaOrder []string

	trace  *Trace
	series *Series

	// procObs accumulates the per-processor event view (see ProcObs).
	procObs []ProcObs

	// Engine health, published by the parallel engine at each epoch
	// boundary (EpochOutcome). Host-side diagnostics only: the counters
	// never feed the snapshot time-series rows, which must stay
	// engine-independent, but the live /snapshot view reports them.
	epochsCommitted int64
	epochsFallback  int64
}

// NewRecorder creates a recorder for one run on the given machine.
func NewRecorder(cfg *machine.Config) *Recorder {
	shift := uint(0)
	for 1<<shift < cfg.PageBytes {
		shift++
	}
	r := &Recorder{
		cfg:      cfg,
		nnodes:   cfg.NNodes(),
		pshift:   shift,
		byName:   map[string]*ArrayInfo{},
		byRegion: map[string]*RegionStats{},
		meta:     map[string]string{},
		procObs:  make([]ProcObs, cfg.NProcs),
	}
	r.serial = &RegionStats{Name: SerialRegion, Invocations: 1, Procs: 1}
	r.regions = append(r.regions, r.serial)
	r.byRegion[SerialRegion] = r.serial
	r.cur = r.serial
	return r
}

// Config returns the machine the recorder was built for.
func (r *Recorder) Config() *machine.Config { return r.cfg }

// Count returns the total number of events of one kind.
func (r *Recorder) Count(k Kind) int64 { return r.counts[k] }

// Counts returns every non-zero event count keyed by kind name.
func (r *Recorder) Counts() map[string]int64 {
	out := map[string]int64{}
	for k := Kind(0); k < nKinds; k++ {
		if r.counts[k] != 0 {
			out[k.String()] = r.counts[k]
		}
	}
	return out
}

// SetMeta attaches a build/run annotation (toolchain options, source
// names) shown in profile headers.
func (r *Recorder) SetMeta(key, value string) {
	if r == nil {
		return
	}
	if _, ok := r.meta[key]; !ok {
		r.metaOrder = append(r.metaOrder, key)
	}
	r.meta[key] = value
}

// Meta returns the annotation for key ("" when unset).
func (r *Recorder) Meta(key string) string { return r.meta[key] }

// --- attribution registration (rtl) ---

// RegisterArray records the address ranges backing one source array, so
// misses can be attributed back to it. Reshaped arrays register one range
// per portion; regular and static arrays register their base range.
// Re-registering a name replaces its ranges (accumulated heat is kept), so
// the call is idempotent: rtl registers at load and again whenever the
// array's storage mapping changes.
func (r *Recorder) RegisterArray(name string, ranges [][2]int64) {
	if r == nil {
		return
	}
	ai := r.byName[name]
	if ai == nil {
		ai = &ArrayInfo{Name: name, Nodes: make([]NodeHeat, r.nnodes)}
		r.byName[name] = ai
		r.arrays = append(r.arrays, ai)
	} else if ai.Bytes > 0 {
		// Replace, don't append: drop the ranges registered earlier.
		kept := r.ranges[:0]
		for _, rg := range r.ranges {
			if rg.arr != ai {
				kept = append(kept, rg)
			}
		}
		r.ranges = kept
		ai.Bytes = 0
	}
	for _, rg := range ranges {
		if rg[1] <= rg[0] {
			continue
		}
		ai.Bytes += rg[1] - rg[0]
		r.ranges = append(r.ranges, addrRange{lo: rg[0], hi: rg[1], arr: ai})
	}
	r.sorted = false
}

// SetArrayOwnership records (or, after a c$redistribute, replaces) the
// distribution and page-ownership map of a registered array: spec is the
// directive text, pageOwner maps virtual page -> owning node. rtl derives
// the map from the runtime distribution state with the same
// last-owner-wins boundary-page rule the §4.2 placement uses, so the
// recorder's view of "who should serve this page" always matches the
// distribution currently in force.
func (r *Recorder) SetArrayOwnership(name, spec string, pageOwner map[int64]int) {
	if r == nil {
		return
	}
	ai := r.byName[name]
	if ai == nil {
		ai = &ArrayInfo{Name: name, Nodes: make([]NodeHeat, r.nnodes)}
		r.byName[name] = ai
		r.arrays = append(r.arrays, ai)
	}
	ai.Spec = spec
	ai.pageOwner = pageOwner
}

// Arrays returns the registered arrays in registration order.
func (r *Recorder) Arrays() []*ArrayInfo { return r.arrays }

// ArrayHeat returns the heat map for a registered array, or nil.
func (r *Recorder) ArrayHeat(name string) *ArrayInfo { return r.byName[name] }

func (r *Recorder) arrayAt(addr int64) *ArrayInfo {
	if !r.sorted {
		sort.Slice(r.ranges, func(i, j int) bool { return r.ranges[i].lo < r.ranges[j].lo })
		r.sorted = true
	}
	i := sort.Search(len(r.ranges), func(i int) bool { return r.ranges[i].hi > addr })
	if i < len(r.ranges) && r.ranges[i].lo <= addr {
		return r.ranges[i].arr
	}
	return nil
}

func (r *Recorder) pageAt(addr int64) *PageHeat {
	vp := addr >> r.pshift
	for int64(len(r.pages)) <= vp {
		r.pages = append(r.pages, nil)
	}
	ph := r.pages[vp]
	if ph == nil {
		ph = &PageHeat{Home: -1, RemoteByNode: make([]int64, r.nnodes)}
		r.pages[vp] = ph
	}
	return ph
}

// Page returns the heat record of one virtual page (nil when the page
// never missed).
func (r *Recorder) Page(vpage int64) *PageHeat {
	if vpage < 0 || vpage >= int64(len(r.pages)) {
		return nil
	}
	return r.pages[vpage]
}

// NPages returns the number of virtual pages tracked.
func (r *Recorder) NPages() int64 { return int64(len(r.pages)) }

// --- memsim hooks ---

// advanceNow moves the recorder's simulated-time watermark forward and
// fires any due snapshot sample. Every hook that learns a clock funnels
// through here, so the sampling decision is a pure function of the event
// stream — which both engines reproduce byte for byte.
func (r *Recorder) advanceNow(clock int64) {
	if clock > r.now {
		r.now = clock
	}
	if r.series != nil && r.now >= r.series.nextAt {
		r.series.sample(r, false)
	}
}

// L1Miss records n primary-cache misses by processor p. Batched counts
// come from the memsim run fast path; n identical events aggregate
// exactly as n single calls would.
func (r *Recorder) L1Miss(p, n int) {
	if r != nil {
		r.counts[KL1Miss] += int64(n)
		r.cur.L1Miss += int64(n)
		r.procObs[p].L1Miss += int64(n)
	}
}

// L2Miss records n identical secondary-cache misses: the accessing
// processor, its node, the home (serving) node, the missed address, and
// the per-miss fetch latency (excluding queuing, reported separately
// through BWWait). A count of n aggregates exactly as n single calls at
// the same clock would — heat maps, series rows and counters all scale
// by n.
func (r *Recorder) L2Miss(proc, accNode, homeNode int, addr, missCyc, clock int64, n int64) {
	if r != nil {
		r.l2Miss(proc, accNode, homeNode, addr, missCyc, clock, n)
	}
}

func (r *Recorder) l2Miss(proc, accNode, homeNode int, addr, missCyc, clock int64, n int64) {
	po := &r.procObs[proc]
	po.MissCyc += missCyc * n
	remote := accNode != homeNode
	if remote {
		r.counts[KL2MissRemote] += n
		r.cur.RemoteMiss += n
		r.cur.RemoteMissCyc += missCyc * n
		po.RemoteMiss += n
	} else {
		r.counts[KL2MissLocal] += n
		r.cur.LocalMiss += n
		r.cur.LocalMissCyc += missCyc * n
		po.LocalMiss += n
	}
	ph := r.pageAt(addr)
	ph.Home = homeNode
	if remote {
		ph.Remote += n
		ph.RemoteByNode[accNode] += n
	} else {
		ph.Local += n
	}
	if ai := r.arrayAt(addr); ai != nil {
		if remote {
			ai.Nodes[accNode].RemoteMiss += n
			ai.Nodes[homeNode].ServedRemote += n
		} else {
			ai.Nodes[accNode].LocalMiss += n
		}
	}
	r.advanceNow(clock)
}

// TLBMiss records n identical TLB refills by processor proc on accNode
// at addr, costing cyc cycles each.
func (r *Recorder) TLBMiss(proc, accNode int, addr, cyc, clock int64, n int64) {
	if r != nil {
		r.tlbMiss(proc, accNode, addr, cyc, clock, n)
	}
}

func (r *Recorder) tlbMiss(proc, accNode int, addr, cyc, clock int64, n int64) {
	r.counts[KTLBMiss] += n
	r.cur.TLBMiss += n
	r.cur.TLBCyc += cyc * n
	po := &r.procObs[proc]
	po.TLBMiss += n
	po.TLBCyc += cyc * n
	if ai := r.arrayAt(addr); ai != nil {
		ai.Nodes[accNode].TLBMiss += n
	}
	r.advanceNow(clock)
}

// Invalidations records n sharer invalidations sent by one upgrade.
func (r *Recorder) Invalidations(n int) {
	if r != nil {
		r.counts[KInvalidation] += int64(n)
		r.cur.InvSent += int64(n)
	}
}

// Intervention records a cache-to-cache transfer.
func (r *Recorder) Intervention() {
	if r != nil {
		r.counts[KIntervention]++
		r.cur.Interventions++
	}
}

// BWWait records n waits of wait cycles each that processor proc spent
// queued behind a node memory's bandwidth window.
func (r *Recorder) BWWait(proc, node int, wait int64, n int64) {
	if r != nil {
		r.counts[KBWWait] += n
		r.cur.BWWaitCyc += wait * n
		r.procObs[proc].BWWaitCyc += wait * n
		_ = node
	}
}

// BarrierWait records one processor's wait at a barrier: its clock before
// release and the cycles the release added.
func (r *Recorder) BarrierWait(proc int, clockBefore, wait int64) {
	if r != nil {
		r.barrierWait(proc, clockBefore, wait)
	}
}

func (r *Recorder) barrierWait(proc int, clockBefore, wait int64) {
	r.counts[KBarrierWait]++
	r.cur.BarrierCyc += wait
	r.procObs[proc].BarrierCyc += wait
	if r.trace != nil && wait > 0 {
		r.trace.span("barrier", "sync", proc, r.ts(clockBefore), r.dur(wait), nil)
	}
	r.advanceNow(clockBefore + wait)
}

// --- ospage hooks ---

// PlaceCause says why a page landed where it did.
type PlaceCause uint8

const (
	PlaceFirstTouch PlaceCause = iota
	PlaceRoundRobin
	PlaceExplicit
)

var placeNames = [...]string{"first-touch", "round-robin", "explicit"}

func (c PlaceCause) String() string { return placeNames[c] }

// PagePlaced records a page placement decision. spilled means the
// preferred node was full and the OS fell back to another node.
func (r *Recorder) PagePlaced(vpage int64, node int, cause PlaceCause, spilled bool) {
	if r != nil {
		r.pagePlaced(vpage, node, cause, spilled)
	}
}

func (r *Recorder) pagePlaced(vpage int64, node int, cause PlaceCause, spilled bool) {
	r.counts[KPagePlace]++
	if spilled {
		r.counts[KPageSpill]++
	}
	if r.trace != nil {
		name := "place " + cause.String()
		if spilled {
			name = "spill " + cause.String()
		}
		r.trace.instant(name, "pages", node, r.ts(r.now),
			map[string]any{"vpage": vpage, "node": node})
	}
}

// PageMigrated records a page moving between nodes (redistribution).
func (r *Recorder) PageMigrated(vpage int64, from, to int) {
	if r != nil {
		r.counts[KPageMigrate]++
		if r.trace != nil {
			r.trace.instant("migrate", "pages", to, r.ts(r.now),
				map[string]any{"vpage": vpage, "from": from, "to": to})
		}
	}
}

// --- rtl hooks ---

// Redistribute records a c$redistribute call: the array, pages moved and
// the cycle span the collective (or the serial page walk, under
// -redist=serial) occupied. The span is folded into the current region's
// RedistCyc so profiles report redistribution as its own cycle category
// instead of undifferentiated compute.
func (r *Recorder) Redistribute(array string, pages int, proc int, start, end int64) {
	if r != nil {
		r.counts[KRedistribute]++
		r.redistPages += int64(pages)
		if end > start {
			r.cur.RedistCyc += end - start
		}
		if r.trace != nil {
			r.trace.span("redistribute "+array, "redist", proc, r.ts(start), r.dur(end-start),
				map[string]any{"pages": pages})
		}
		r.advanceNow(end)
	}
}

// RedistRound records one round of the scheduled redistribution collective:
// its ordinal, the number of node-to-node bulk transfers it carried, and
// its cycle span (all rounds execute back to back inside the enclosing
// Redistribute span).
func (r *Recorder) RedistRound(round, transfers int, start, end int64) {
	if r != nil {
		r.counts[KRedistRound]++
		if r.trace != nil {
			r.trace.span(fmt.Sprintf("redist round %d", round), "redist", 0,
				r.ts(start), r.dur(end-start), map[string]any{"transfers": transfers})
		}
		r.advanceNow(end)
	}
}

// RedistPages returns the total pages moved by redistributions.
func (r *Recorder) RedistPages() int64 { return r.redistPages }

// RedistCycles sums the redistribution cycle spans over all regions — the
// total wall-clock time the run spent inside c$redistribute.
func (r *Recorder) RedistCycles() int64 {
	var t int64
	for _, rs := range r.regions {
		t += rs.RedistCyc
	}
	return t
}

// PoolAlloc records a reshaped-pool chunk allocation on a processor's
// node.
func (r *Recorder) PoolAlloc(proc, node int, bytes int64) {
	if r != nil {
		r.counts[KPoolAlloc]++
		r.poolBytes += bytes
		_, _ = proc, node
	}
}

// PoolBytes returns the total bytes carved into reshaped pools.
func (r *Recorder) PoolBytes() int64 { return r.poolBytes }

// ArgCheck records a §6 runtime argument check and whether it failed.
func (r *Recorder) ArgCheck(failed bool) {
	if r != nil {
		r.counts[KArgCheck]++
		if failed {
			r.counts[KArgCheckFail]++
		}
	}
}

// --- exec hooks ---

// RegionBegin marks the dispatch of a doacross region across nprocs
// processors at simulated time start.
func (r *Recorder) RegionBegin(name, file string, line int, start int64, nprocs int) {
	if r != nil {
		r.regionBegin(name, file, line, start, nprocs)
	}
}

func (r *Recorder) regionBegin(name, file string, line int, start int64, nprocs int) {
	r.counts[KRegion]++
	rs := r.byRegion[name]
	if rs == nil {
		rs = &RegionStats{Name: name, File: file, Line: line}
		r.byRegion[name] = rs
		r.regions = append(r.regions, rs)
	}
	rs.Invocations++
	if nprocs > rs.Procs {
		rs.Procs = nprocs
	}
	// Close the serial segment leading up to the fork.
	if start > r.serialMark {
		r.serial.Cycles += start - r.serialMark
	}
	r.cur = rs
	r.regionStart = start
	r.regionProcs = nprocs
	r.advanceNow(start)
	if r.trace != nil {
		r.trace.counters(r.ts(start), r.counts[KL2MissLocal], r.counts[KL2MissRemote], r.counts[KTLBMiss])
		r.trace.flushSink()
	}
}

// RegionEnd closes the current region: ends holds each processor's clock
// when its work finished (before the implicit barrier), barrierEnd the
// common clock after the closing barrier.
func (r *Recorder) RegionEnd(ends []int64, barrierEnd int64) {
	if r != nil {
		r.regionEnd(ends, barrierEnd)
	}
}

func (r *Recorder) regionEnd(ends []int64, barrierEnd int64) {
	rs := r.cur
	rs.Cycles += (barrierEnd - r.regionStart) * int64(r.regionProcs)
	if r.trace != nil {
		for p, e := range ends {
			r.trace.span(rs.Name, "region", p, r.ts(r.regionStart), r.dur(e-r.regionStart), nil)
		}
		r.trace.counters(r.ts(barrierEnd), r.counts[KL2MissLocal], r.counts[KL2MissRemote], r.counts[KTLBMiss])
	}
	r.serialMark = barrierEnd
	r.cur = r.serial
	r.advanceNow(barrierEnd)
	if r.trace != nil {
		r.trace.flushSink()
	}
}

// QuantumSwitch records the region scheduler switching to another
// processor's thread.
func (r *Recorder) QuantumSwitch(proc int) {
	if r != nil {
		r.counts[KQuantumSwitch]++
		_ = proc
	}
}

// Finish closes the trailing serial segment at the final clock, emits the
// final snapshot row, and drains any attached stream sink.
func (r *Recorder) Finish(finalClock int64) {
	if r == nil {
		return
	}
	if finalClock > r.serialMark {
		r.serial.Cycles += finalClock - r.serialMark
		r.serialMark = finalClock
	}
	if finalClock > r.now {
		r.now = finalClock
	}
	if r.trace != nil {
		r.trace.counters(r.ts(finalClock), r.counts[KL2MissLocal], r.counts[KL2MissRemote], r.counts[KTLBMiss])
	}
	if r.series != nil {
		r.series.sample(r, true)
	}
	if r.trace != nil {
		r.trace.flushSink()
	}
}

// EpochOutcome records the disposition of one parallel-engine epoch:
// committed (scout results replayed verbatim) or fallback (epoch re-run
// serially after a divergence). Host-side diagnostics only — it must not
// advance the simulated-time watermark or touch anything the snapshot
// series reads, because the serial engine never calls it and series rows
// are engine-independent. Epoch commit is also a flush point for the
// stream sink: everything replayed so far is in serial event order.
func (r *Recorder) EpochOutcome(committed bool) {
	if r == nil {
		return
	}
	if committed {
		r.epochsCommitted++
	} else {
		r.epochsFallback++
	}
	if r.trace != nil {
		r.trace.flushSink()
	}
}

// EpochStats returns the parallel engine's epoch outcomes (both zero under
// the serial engine).
func (r *Recorder) EpochStats() (committed, fallback int64) {
	return r.epochsCommitted, r.epochsFallback
}

// ProcObsAll returns a copy of the per-processor event-stream counters.
func (r *Recorder) ProcObsAll() []ProcObs {
	out := make([]ProcObs, len(r.procObs))
	copy(out, r.procObs)
	return out
}

// Now returns the latest simulated clock the recorder has observed.
func (r *Recorder) Now() int64 { return r.now }

// Regions returns the per-region breakdowns, serial phase first, then in
// first-dispatch order.
func (r *Recorder) Regions() []*RegionStats { return r.regions }

// Region returns one region's stats by name, or nil.
func (r *Recorder) Region(name string) *RegionStats { return r.byRegion[name] }

// TotalCycles sums region cycles (aggregate processor time observed).
func (r *Recorder) TotalCycles() int64 {
	var t int64
	for _, rs := range r.regions {
		t += rs.Cycles
	}
	return t
}

// TLBFraction is the overall fraction of observed processor time spent in
// TLB refill — the paper's "TLB time" number (§8.3).
func (r *Recorder) TLBFraction() float64 {
	var tlb, tot int64
	for _, rs := range r.regions {
		tlb += rs.TLBCyc
		tot += rs.Cycles
	}
	if tot == 0 {
		return 0
	}
	return float64(tlb) / float64(tot)
}

// ts converts a cycle count to trace microseconds.
func (r *Recorder) ts(cycles int64) float64 {
	return float64(cycles) / float64(r.cfg.ClockMHz)
}

func (r *Recorder) dur(cycles int64) float64 {
	if cycles < 0 {
		return 0
	}
	return float64(cycles) / float64(r.cfg.ClockMHz)
}
