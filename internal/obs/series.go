// Cycle-sampled snapshot time-series: every SampleCycles simulated cycles
// the recorder appends one JSONL row of deltas since the previous row —
// event counts, per-processor counters, per-region cycle categories and
// per-array×node heat. Sampling is keyed to the simulated clock observed
// through the event stream, never host time, and every value in a row is
// derived from that stream, so the series is byte-identical across the
// serial and parallel engines and across repeated runs.
//
// Row schema (v=1), one JSON object per line:
//
//	{"v":1, "seq":0, "clock":250000, "now":251234,
//	 "events":{"l2-miss-local":123, ...},            // count deltas
//	 "procs":[{"p":0, "l1_miss":..., ...}, ...],     // ProcObs deltas
//	 "regions":[{"name":"...", "cycles":..., ...}],  // category deltas
//	 "heat":[{"array":"u.x","node":0,"local":..}],   // NodeHeat deltas
//	 "final":true}                                   // last row only
//
// clock is the sample boundary that triggered the row (a multiple of the
// interval; the final row uses the finish clock), now the actual watermark
// when it fired. Zero deltas are omitted. Engine health (epoch outcomes)
// is deliberately absent: it is engine-dependent and lives only in the
// live snapshot view.
package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// DefaultSampleCycles is the snapshot interval unless EnableSeries is told
// otherwise.
const DefaultSampleCycles = 250_000

// SeriesVersion is the pinned row schema version.
const SeriesVersion = 1

type seriesProc struct {
	P int `json:"p"`
	ProcObs
}

type seriesRegion struct {
	Name       string `json:"name"`
	Cycles     int64  `json:"cycles,omitempty"`
	LocalCyc   int64  `json:"local_cyc,omitempty"`
	RemoteCyc  int64  `json:"remote_cyc,omitempty"`
	TLBCyc     int64  `json:"tlb_cyc,omitempty"`
	BWWaitCyc  int64  `json:"bwq_cyc,omitempty"`
	BarrierCyc int64  `json:"barrier_cyc,omitempty"`
	RedistCyc  int64  `json:"redist_cyc,omitempty"`
	LocalMiss  int64  `json:"local_miss,omitempty"`
	RemoteMiss int64  `json:"remote_miss,omitempty"`
	TLBMiss    int64  `json:"tlb_miss,omitempty"`
}

func (s seriesRegion) isZero() bool {
	z := s
	z.Name = ""
	return z == seriesRegion{}
}

type seriesHeat struct {
	Array  string `json:"array"`
	Node   int    `json:"node"`
	Local  int64  `json:"local,omitempty"`
	Remote int64  `json:"remote,omitempty"`
	Served int64  `json:"served,omitempty"`
	TLB    int64  `json:"tlb,omitempty"`
}

type seriesRow struct {
	V       int              `json:"v"`
	Seq     int64            `json:"seq"`
	Clock   int64            `json:"clock"`
	Now     int64            `json:"now"`
	Events  map[string]int64 `json:"events,omitempty"`
	Procs   []seriesProc     `json:"procs,omitempty"`
	Regions []seriesRegion   `json:"regions,omitempty"`
	Heat    []seriesHeat     `json:"heat,omitempty"`
	Final   bool             `json:"final,omitempty"`
}

// SnapshotEngine is the engine-health block of a live snapshot.
type SnapshotEngine struct {
	EpochsCommitted int64 `json:"epochs_committed"`
	EpochsFallback  int64 `json:"epochs_fallback"`
}

// Snapshot is the live /snapshot document: the recorder's current
// cumulative state, rebuilt at every sample boundary. Unlike series rows
// it may include engine-dependent fields.
type Snapshot struct {
	V            int            `json:"v"`
	Done         bool           `json:"done"`
	Clock        int64          `json:"clock"`
	Machine      string         `json:"machine"`
	Procs        int            `json:"procs"`
	Nodes        int            `json:"nodes"`
	SampleCycles int64          `json:"sample_cycles"`
	Samples      int64          `json:"samples"`
	Engine       SnapshotEngine `json:"engine"`
	ProcObs      []ProcObs      `json:"proc_obs"`
	Summary      *Summary       `json:"summary"`
}

// Series holds the sampling state. The mutex guards only the published
// artifacts (rows, cached snapshot) against concurrent readers — the live
// HTTP handlers; the baselines are touched solely by the simulation
// goroutine inside sample.
type Series struct {
	interval int64
	nextAt   int64
	out      io.Writer // optional JSONL destination, nil to keep in memory only
	outErr   error

	// Deltas baselines, sim goroutine only.
	lastCounts  [nKinds]int64
	lastProcs   []ProcObs
	lastRegions map[string]seriesRegion
	lastHeat    map[string][]NodeHeat

	mu   sync.Mutex
	seq  int64
	rows []json.RawMessage
	snap []byte
	done bool
}

// EnableSeries turns cycle-sampled snapshots on: one row every interval
// simulated cycles (<=0 means DefaultSampleCycles), streamed to out as
// JSONL when out is non-nil, and always retained in memory for the live
// endpoints.
func (r *Recorder) EnableSeries(interval int64, out io.Writer) {
	if r == nil {
		return
	}
	if interval <= 0 {
		interval = DefaultSampleCycles
	}
	r.series = &Series{
		interval:    interval,
		nextAt:      interval,
		out:         out,
		lastProcs:   make([]ProcObs, len(r.procObs)),
		lastRegions: map[string]seriesRegion{},
		lastHeat:    map[string][]NodeHeat{},
	}
	r.series.publishSnapshot(r)
}

// SeriesEnabled reports whether cycle sampling is on.
func (r *Recorder) SeriesEnabled() bool { return r != nil && r.series != nil }

// SampleCycles returns the sampling interval (0 when disabled).
func (r *Recorder) SampleCycles() int64 {
	if r == nil || r.series == nil {
		return 0
	}
	return r.series.interval
}

// SeriesRows returns the rows emitted so far (each one JSON object).
// Safe to call concurrently with the run.
func (r *Recorder) SeriesRows() []json.RawMessage {
	if r == nil || r.series == nil {
		return nil
	}
	s := r.series
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]json.RawMessage, len(s.rows))
	copy(out, s.rows)
	return out
}

// SeriesRowsFrom returns the rows emitted at index n and beyond plus
// whether the final row has been published — the incremental read behind
// the service's /jobs/{id}/series streamer. Safe to call concurrently
// with the run.
func (r *Recorder) SeriesRowsFrom(n int) ([]json.RawMessage, bool) {
	if r == nil || r.series == nil {
		return nil, true
	}
	s := r.series
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n > len(s.rows) {
		n = len(s.rows)
	}
	out := make([]json.RawMessage, len(s.rows)-n)
	copy(out, s.rows[n:])
	return out, s.done
}

// SeriesErr returns the first error writing rows to the series output.
func (r *Recorder) SeriesErr() error {
	if r == nil || r.series == nil {
		return nil
	}
	s := r.series
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outErr
}

// WriteSeries writes the rows collected so far as JSONL. Safe to call
// concurrently with the run.
func (r *Recorder) WriteSeries(w io.Writer) error {
	for _, row := range r.SeriesRows() {
		if _, err := w.Write(append(row, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotJSON returns the latest cached live-snapshot document. Safe to
// call concurrently with the run.
func (r *Recorder) SnapshotJSON() []byte {
	if r == nil || r.series == nil {
		return nil
	}
	s := r.series
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// sample emits one series row of deltas since the previous row and
// refreshes the cached snapshot. Called on the simulation goroutine from
// advanceNow when the watermark crosses a boundary, and from Finish with
// final=true.
func (s *Series) sample(r *Recorder, final bool) {
	row := seriesRow{V: SeriesVersion, Clock: s.nextAt, Now: r.now, Final: final}
	if final {
		row.Clock = r.now
	}

	// Event-count deltas.
	for k := Kind(0); k < nKinds; k++ {
		if d := r.counts[k] - s.lastCounts[k]; d != 0 {
			if row.Events == nil {
				row.Events = map[string]int64{}
			}
			row.Events[k.String()] = d
		}
		s.lastCounts[k] = r.counts[k]
	}

	// Per-processor deltas.
	for p := range r.procObs {
		if d := r.procObs[p].sub(s.lastProcs[p]); !d.isZero() {
			row.Procs = append(row.Procs, seriesProc{P: p, ProcObs: d})
		}
		s.lastProcs[p] = r.procObs[p]
	}

	// Per-region category deltas, in region registration order. Raw
	// categories only: compute time is derivable post hoc, and mid-region
	// rows would make a derived compute field negative (Cycles lands at
	// region end while the miss categories accrue throughout).
	for _, rs := range r.regions {
		cum := seriesRegion{
			Name: rs.Name, Cycles: rs.Cycles,
			LocalCyc: rs.LocalMissCyc, RemoteCyc: rs.RemoteMissCyc,
			TLBCyc: rs.TLBCyc, BWWaitCyc: rs.BWWaitCyc,
			BarrierCyc: rs.BarrierCyc, RedistCyc: rs.RedistCyc,
			LocalMiss: rs.LocalMiss, RemoteMiss: rs.RemoteMiss, TLBMiss: rs.TLBMiss,
		}
		last := s.lastRegions[rs.Name]
		d := seriesRegion{
			Name: rs.Name, Cycles: cum.Cycles - last.Cycles,
			LocalCyc: cum.LocalCyc - last.LocalCyc, RemoteCyc: cum.RemoteCyc - last.RemoteCyc,
			TLBCyc: cum.TLBCyc - last.TLBCyc, BWWaitCyc: cum.BWWaitCyc - last.BWWaitCyc,
			BarrierCyc: cum.BarrierCyc - last.BarrierCyc, RedistCyc: cum.RedistCyc - last.RedistCyc,
			LocalMiss: cum.LocalMiss - last.LocalMiss, RemoteMiss: cum.RemoteMiss - last.RemoteMiss,
			TLBMiss: cum.TLBMiss - last.TLBMiss,
		}
		if !d.isZero() {
			row.Regions = append(row.Regions, d)
		}
		s.lastRegions[rs.Name] = cum
	}

	// Per-array×node heat deltas, in array registration order.
	for _, ai := range r.arrays {
		last := s.lastHeat[ai.Name]
		if len(last) < len(ai.Nodes) {
			last = append(last, make([]NodeHeat, len(ai.Nodes)-len(last))...)
		}
		for n, h := range ai.Nodes {
			d := seriesHeat{Array: ai.Name, Node: n,
				Local:  h.LocalMiss - last[n].LocalMiss,
				Remote: h.RemoteMiss - last[n].RemoteMiss,
				Served: h.ServedRemote - last[n].ServedRemote,
				TLB:    h.TLBMiss - last[n].TLBMiss,
			}
			if d.Local != 0 || d.Remote != 0 || d.Served != 0 || d.TLB != 0 {
				row.Heat = append(row.Heat, d)
			}
			last[n] = h
		}
		s.lastHeat[ai.Name] = last
	}

	// Advance past every boundary the watermark crossed: one row per
	// firing, however far the clock jumped.
	if r.now >= s.nextAt {
		s.nextAt = (r.now/s.interval + 1) * s.interval
	}

	s.mu.Lock()
	row.Seq = s.seq
	s.seq++
	buf, err := json.Marshal(row)
	if err == nil {
		s.rows = append(s.rows, buf)
		if s.out != nil && s.outErr == nil {
			if _, werr := s.out.Write(append(buf, '\n')); werr != nil {
				s.outErr = werr
			}
		}
	} else if s.outErr == nil {
		s.outErr = err
	}
	if final {
		s.done = true
	}
	s.mu.Unlock()

	s.publishSnapshot(r)
}

// publishSnapshot rebuilds and caches the live snapshot document. Sim
// goroutine only; readers take the cached bytes under the mutex.
func (s *Series) publishSnapshot(r *Recorder) {
	snap := Snapshot{
		V:            SeriesVersion,
		Clock:        r.now,
		Machine:      r.cfg.Name,
		Procs:        r.cfg.NProcs,
		Nodes:        r.nnodes,
		SampleCycles: s.interval,
		Engine:       SnapshotEngine{r.epochsCommitted, r.epochsFallback},
		ProcObs:      r.ProcObsAll(),
		Summary:      r.Summarize(10),
	}
	s.mu.Lock()
	snap.Done = s.done
	snap.Samples = s.seq
	buf, err := json.Marshal(&snap)
	if err == nil {
		s.snap = buf
	}
	s.mu.Unlock()
}
