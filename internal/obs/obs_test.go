package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dsmdist/internal/machine"
)

func testRecorder(nprocs int) *Recorder {
	return NewRecorder(machine.Tiny(nprocs))
}

// TestNilRecorderHooksAreNoOps is the contract that lets every producer
// publish unconditionally through a possibly-nil recorder.
func TestNilRecorderHooksAreNoOps(t *testing.T) {
	var r *Recorder
	r.L1Miss(0, 1)
	r.L2Miss(0, 0, 1, 4096, 110, 10, 1)
	r.TLBMiss(0, 0, 4096, 60, 10, 1)
	r.Invalidations(3)
	r.Intervention()
	r.BWWait(0, 0, 24, 1)
	r.BarrierWait(0, 100, 40)
	r.PagePlaced(1, 0, PlaceFirstTouch, false)
	r.PageMigrated(1, 0, 1)
	r.Redistribute("a", 4, 0, 0, 100)
	r.PoolAlloc(0, 0, 4096)
	r.ArgCheck(true)
	r.RegionBegin("r", "f", 1, 0, 4)
	r.RegionEnd([]int64{1, 2, 3, 4}, 5)
	r.QuantumSwitch(1)
	r.RegisterArray("a", [][2]int64{{0, 64}})
	r.SetMeta("k", "v")
	r.Finish(100)
}

func TestCountsAndKindNames(t *testing.T) {
	r := testRecorder(4)
	r.L1Miss(0, 1)
	r.L1Miss(1, 1)
	r.Invalidations(5)
	r.Intervention()
	if got := r.Count(KL1Miss); got != 2 {
		t.Errorf("KL1Miss = %d, want 2", got)
	}
	if got := r.Count(KInvalidation); got != 5 {
		t.Errorf("KInvalidation = %d, want 5", got)
	}
	m := r.Counts()
	if m["l1-miss"] != 2 || m["intervention"] != 1 {
		t.Errorf("Counts() = %v", m)
	}
	if _, ok := m["l2-miss-local"]; ok {
		t.Errorf("Counts() includes zero entry: %v", m)
	}
	// Every kind must have a distinct printable name.
	seen := map[string]bool{}
	for k := Kind(0); k < nKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestArrayAttribution(t *testing.T) {
	r := testRecorder(4) // tiny: 256-byte pages, 2 procs/node
	r.RegisterArray("main.a", [][2]int64{{4096, 8192}})
	r.RegisterArray("main.b", [][2]int64{{16384, 16896}, {20480, 20992}})

	r.L2Miss(0, 0, 0, 4096, 70, 100, 1)   // a, local
	r.L2Miss(2, 1, 0, 5000, 110, 200, 1)  // a, remote
	r.L2Miss(0, 0, 1, 20480, 110, 300, 1) // b (second portion), remote
	r.L2Miss(0, 0, 0, 12288, 70, 400, 1)  // between arrays: unattributed
	r.TLBMiss(2, 1, 4097, 60, 500, 1)

	a := r.ArrayHeat("main.a")
	if a == nil {
		t.Fatal("main.a not registered")
	}
	local, remote := a.Misses()
	if local != 1 || remote != 1 {
		t.Errorf("main.a misses = (%d local, %d remote), want (1, 1)", local, remote)
	}
	if a.Nodes[0].LocalMiss != 1 || a.Nodes[1].RemoteMiss != 1 || a.Nodes[0].ServedRemote != 1 {
		t.Errorf("main.a heat = %+v", a.Nodes)
	}
	if a.Nodes[1].TLBMiss != 1 {
		t.Errorf("main.a TLB heat = %+v", a.Nodes)
	}
	b := r.ArrayHeat("main.b")
	if _, remote := b.Misses(); remote != 1 {
		t.Errorf("main.b remote misses = %d, want 1 (portion ranges)", remote)
	}

	// Page heat for the remote miss on a's page.
	ph := r.Page(5000 / 256)
	if ph == nil || ph.Remote != 1 || ph.Home != 0 || ph.RemoteByNode[1] != 1 {
		t.Errorf("page heat = %+v", ph)
	}
}

func TestRegionAccounting(t *testing.T) {
	r := testRecorder(4)

	// Serial activity before the region lands in "(serial)".
	r.L2Miss(0, 0, 0, 0, 70, 500, 1)

	r.RegionBegin("work$r0", "main.f", 12, 1000, 4)
	r.L2Miss(0, 0, 1, 0, 110, 1100, 1)
	r.TLBMiss(0, 0, 0, 60, 1200, 1)
	r.BarrierWait(2, 1900, 100)
	r.RegionEnd([]int64{2000, 1990, 1980, 2000}, 2000)

	// Serial activity after the region goes back to "(serial)".
	r.L2Miss(0, 0, 0, 0, 70, 2100, 1)
	r.Finish(2500)

	rg := r.Region("work$r0")
	if rg == nil {
		t.Fatal("region not recorded")
	}
	if rg.Invocations != 1 || rg.Procs != 4 || rg.File != "main.f" || rg.Line != 12 {
		t.Errorf("region identity = %+v", rg)
	}
	// (2000-1000) cycles × 4 procs of aggregate time.
	if rg.Cycles != 4000 {
		t.Errorf("region cycles = %d, want 4000", rg.Cycles)
	}
	if rg.RemoteMissCyc != 110 || rg.TLBCyc != 60 || rg.BarrierCyc != 100 {
		t.Errorf("region breakdown = %+v", rg)
	}
	if c := rg.ComputeCyc(); c != 4000-110-60-100 {
		t.Errorf("ComputeCyc = %d", c)
	}

	ser := r.Region(SerialRegion)
	if ser.LocalMiss != 2 {
		t.Errorf("serial local misses = %d, want 2 (one each side of the region)", ser.LocalMiss)
	}
	// Serial segments: [0,1000) + [2000,2500) on one processor.
	if ser.Cycles != 1500 {
		t.Errorf("serial cycles = %d, want 1500", ser.Cycles)
	}
	if got := r.TotalCycles(); got != 5500 {
		t.Errorf("TotalCycles = %d, want 5500", got)
	}

	// Re-entering the same region accumulates rather than duplicating.
	r.RegionBegin("work$r0", "main.f", 12, 3000, 4)
	r.RegionEnd([]int64{3100, 3100, 3100, 3100}, 3100)
	if rg.Invocations != 2 || rg.Cycles != 4400 {
		t.Errorf("second invocation: %+v", rg)
	}
	if len(r.Regions()) != 2 {
		t.Errorf("regions = %d, want 2 (serial + work$r0)", len(r.Regions()))
	}
}

func TestTraceBufferBounded(t *testing.T) {
	r := testRecorder(2)
	r.EnableTrace(8)
	for i := 0; i < 50; i++ {
		r.PagePlaced(int64(i), 0, PlaceFirstTouch, false)
	}
	if n := len(r.TraceEvents()); n != 8 {
		t.Errorf("trace kept %d events, want the 8-event cap", n)
	}
	if d := r.TraceDropped(); d != 42 {
		t.Errorf("dropped = %d, want 42", d)
	}
}

// TestWriteTraceStructure validates the Chrome trace_event envelope that
// chrome://tracing and Perfetto load.
func TestWriteTraceStructure(t *testing.T) {
	r := testRecorder(4)
	r.EnableTrace(0)
	r.RegionBegin("work$r0", "main.f", 3, 0, 4)
	r.BarrierWait(1, 900, 100)
	r.RegionEnd([]int64{1000, 1000, 1000, 1000}, 1000)
	r.PagePlaced(7, 1, PlaceRoundRobin, false)
	r.Finish(1200)

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	validPh := map[string]bool{"X": true, "i": true, "C": true, "M": true}
	var spans, instants int
	for i, e := range tf.TraceEvents {
		if e.Name == "" {
			t.Errorf("event %d has no name", i)
		}
		if !validPh[e.Ph] {
			t.Errorf("event %d has unexpected phase %q", i, e.Ph)
		}
		if e.Ts == nil || e.Pid == nil || e.Tid == nil {
			t.Errorf("event %d missing ts/pid/tid: %+v", i, e)
		}
		if e.Ph == "X" {
			spans++
			if e.Dur < 0 {
				t.Errorf("span %d has negative dur", i)
			}
		}
		if e.Ph == "i" {
			instants++
		}
	}
	if spans == 0 {
		t.Error("no span (ph=X) events for the region")
	}
	if instants == 0 {
		t.Error("no instant (ph=i) event for the page placement")
	}
}

func TestSummarizeWriters(t *testing.T) {
	r := testRecorder(4)
	r.RegisterArray("main.a", [][2]int64{{4096, 8192}})
	r.RegionBegin("work$r0", "main.f", 3, 0, 4)
	r.L2Miss(0, 0, 1, 4200, 110, 100, 1)
	r.RegionEnd([]int64{900, 900, 900, 900}, 1000)
	r.SetMeta("sources", "main.f")
	r.Finish(1100)

	s := r.Summarize(5)
	if s.Procs != 4 || len(s.Regions) != 2 || len(s.Arrays) != 1 {
		t.Fatalf("summary shape: procs=%d regions=%d arrays=%d",
			s.Procs, len(s.Regions), len(s.Arrays))
	}

	var jsonBuf bytes.Buffer
	if err := s.WriteJSON(&jsonBuf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Summary
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("summary JSON invalid: %v", err)
	}
	if back.Meta["sources"] != "main.f" {
		t.Errorf("meta lost in JSON: %+v", back.Meta)
	}

	var csvBuf bytes.Buffer
	if err := s.WriteCSV(&csvBuf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 { // header + serial + region
		t.Errorf("CSV lines = %d, want 3:\n%s", len(lines), csvBuf.String())
	}

	var txtBuf bytes.Buffer
	if err := s.WriteText(&txtBuf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{"work$r0", "main.a", "per-region breakdown"} {
		if !strings.Contains(txtBuf.String(), want) {
			t.Errorf("text profile missing %q", want)
		}
	}
}
