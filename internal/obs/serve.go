// Live serving surface: a small HTTP handler exposing the recorder's
// streaming artifacts while the run is still going —
//
//	/snapshot  latest cached snapshot document (JSON)
//	/series    all snapshot rows so far (JSON)
//	/trace     the trace spool so far, as loadable Chrome trace JSON
//	/          a self-contained HTML dashboard polling the above
//
// The handlers never touch the recorder's mutable aggregation state: the
// snapshot and series rows are cached as marshaled bytes at sample time on
// the simulation goroutine, and /trace reads the spool file after a
// sink-side flush. Serving therefore cannot perturb the simulation, and
// the simulation never blocks on a slow client.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
)

// LiveServer serves a recorder's streaming views.
type LiveServer struct {
	rec   *Recorder
	spool *SpoolSink // optional; backs /trace when set
}

// NewLiveServer wraps a recorder (and, when trace streaming is on, its
// spool sink) for serving.
func NewLiveServer(rec *Recorder, spool *SpoolSink) *LiveServer {
	return &LiveServer{rec: rec, spool: spool}
}

// Handler returns the HTTP handler for the live endpoints.
func (s *LiveServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/snapshot", s.snapshot)
	mux.HandleFunc("/series", s.series)
	mux.HandleFunc("/trace", s.trace)
	mux.HandleFunc("/", s.index)
	return mux
}

// Serve listens on addr and serves the live endpoints until the listener
// is closed. It returns the listener (so the caller can close it) and the
// resolved address.
func (s *LiveServer) Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return ln, nil
}

func (s *LiveServer) snapshot(w http.ResponseWriter, _ *http.Request) {
	buf := s.rec.SnapshotJSON()
	if buf == nil {
		http.Error(w, `{"error":"series sampling not enabled"}`, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
}

func (s *LiveServer) series(w http.ResponseWriter, _ *http.Request) {
	rows := s.rec.SeriesRows()
	doc := struct {
		V            int               `json:"v"`
		SampleCycles int64             `json:"sample_cycles"`
		Rows         []json.RawMessage `json:"rows"`
	}{SeriesVersion, s.rec.SampleCycles(), rows}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&doc)
}

func (s *LiveServer) trace(w http.ResponseWriter, _ *http.Request) {
	if s.spool == nil {
		http.Error(w, `{"error":"trace streaming not enabled"}`, http.StatusServiceUnavailable)
		return
	}
	// Push sink-buffered bytes to disk, then read the file back: the
	// spool holds everything up to the last commit-point flush, and the
	// reader drops a torn final line.
	if err := s.spool.Flush(); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
		return
	}
	f, err := os.Open(s.spool.Path())
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/json")
	FinalizeSpool(f, w)
}

func (s *LiveServer) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashboardHTML))
}
