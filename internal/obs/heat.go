// Machine-readable per-array × per-node heat maps: the schema dsmprof
// -heat-json writes and internal/advisor reads back as measured feedback
// for its cost model. The golden-file test in heat_test.go pins the JSON
// shape; extend it only by adding fields.
package obs

import (
	"encoding/json"
	"io"
)

// HeatCell is one node's share of an array's traffic.
type HeatCell struct {
	Node         int   `json:"node"`
	LocalMiss    int64 `json:"local_miss"`
	RemoteMiss   int64 `json:"remote_miss"`
	ServedRemote int64 `json:"served_remote"`
	TLBMiss      int64 `json:"tlb_miss"`
	// OwnedPages is how many of the array's pages the registered
	// distribution assigns to this node (0 when no ownership map was
	// registered).
	OwnedPages int64 `json:"owned_pages"`
}

// ArrayHeat is the full heat map of one source array.
type ArrayHeat struct {
	Name   string     `json:"name"` // unit.array
	Bytes  int64      `json:"bytes"`
	Spec   string     `json:"spec,omitempty"` // distribution directive text, "" when undistributed
	Local  int64      `json:"local_miss"`
	Remote int64      `json:"remote_miss"`
	TLB    int64      `json:"tlb_miss"`
	Nodes  []HeatCell `json:"nodes"`
}

// HeatMap is the per-run container: machine identification plus one
// ArrayHeat per registered array, in registration order.
type HeatMap struct {
	Machine   string      `json:"machine"`
	Procs     int         `json:"procs"`
	Nodes     int         `json:"nodes"`
	PageBytes int         `json:"page_bytes"`
	Arrays    []ArrayHeat `json:"arrays"`
}

// HeatMap freezes the recorder's per-array heat into the export schema.
func (r *Recorder) HeatMap() *HeatMap {
	h := &HeatMap{
		Machine:   r.cfg.Name,
		Procs:     r.cfg.NProcs,
		Nodes:     r.nnodes,
		PageBytes: r.cfg.PageBytes,
	}
	for _, ai := range r.arrays {
		local, remote := ai.Misses()
		ah := ArrayHeat{Name: ai.Name, Bytes: ai.Bytes, Spec: ai.Spec, Local: local, Remote: remote}
		owned := ai.OwnedPages(r.nnodes)
		for n, nh := range ai.Nodes {
			ah.TLB += nh.TLBMiss
			ah.Nodes = append(ah.Nodes, HeatCell{Node: n, LocalMiss: nh.LocalMiss,
				RemoteMiss: nh.RemoteMiss, ServedRemote: nh.ServedRemote,
				TLBMiss: nh.TLBMiss, OwnedPages: owned[n]})
		}
		h.Arrays = append(h.Arrays, ah)
	}
	return h
}

// WriteJSON writes the heat map as indented JSON.
func (h *HeatMap) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}

// ReadHeatMap parses a heat map written by WriteJSON (the dsmprof
// -heat-json output the advisor consumes).
func ReadHeatMap(r io.Reader) (*HeatMap, error) {
	var h HeatMap
	if err := json.NewDecoder(r).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Array returns the heat of one array by its registered name, or nil.
func (h *HeatMap) Array(name string) *ArrayHeat {
	for i := range h.Arrays {
		if h.Arrays[i].Name == name {
			return &h.Arrays[i]
		}
	}
	return nil
}
