package obs_test

import (
	"os"
	"path/filepath"
	"testing"

	"dsmdist/internal/core"
	"dsmdist/internal/dist"
	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
	"dsmdist/internal/workloads"
)

// heatSrc is a (block,*) array written by a doacross over columns, so every
// processor touches every row block and the remote-miss pattern is fully
// determined by the §4.2 page placement.
const heatSrc = `      program heat
      integer n
      parameter (n = 1024)
      real*8 b(n, n)
c$distribute b(block, *)
      integer i, j
c$doacross local(i, j) shared(b)
      do j = 1, n
        do i = 1, n
          b(i, j) = dble(i) + dble(j)*0.5
        end do
      end do
      end
`

func runWithRecorder(t *testing.T, src string, cfg *machine.Config,
	policy ospage.Policy) (*exec.Result, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder(cfg)
	tc := core.New()
	tc.Rec = rec
	img, err := tc.Build(map[string]string{"main.f": src})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := core.Run(img, cfg, core.RunOptions{Policy: policy, Recorder: rec})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, rec
}

// TestHeatMapMatchesDistOwnership checks the attribution chain end to end:
// for a regular (block,*) distribution, every page of the array whose rows
// all belong to one node must be homed on that node (paper §4.2), remote
// misses on it must come only from other nodes, and the per-array heat map
// must agree with the per-page heat.
func TestHeatMapMatchesDistOwnership(t *testing.T) {
	const n, nprocs = 1024, 16
	cfg := machine.Scaled(nprocs)
	res, rec := runWithRecorder(t, heatSrc, cfg, ospage.FirstTouch)

	st := core.ArrayState(res, "heat", "b")
	if st == nil {
		t.Fatal("array heat.b not found")
	}
	base := st.Base
	size := int64(n) * int64(n) * 8
	pb := int64(cfg.PageBytes)

	// dist's view of who owns row i0 (dimension 1 blocked over all procs).
	dm := dist.NewDimMap(dist.Dim{Kind: dist.Block}, n, nprocs)

	checked, withRemote := 0, 0
	for vp := base / pb; vp*pb < base+size; vp++ {
		ph := rec.Page(vp)
		if ph == nil || ph.Local+ph.Remote == 0 {
			continue
		}
		lo, hi := vp*pb, (vp+1)*pb
		if lo < base {
			lo = base
		}
		if hi > base+size {
			hi = base + size
		}
		// The node dist assigns to every element in the page; -1 while
		// unset, -2 when the page spans nodes (block boundary).
		owner := -1
		for addr := lo; addr < hi; addr += 8 {
			i0 := int((addr - base) / 8 % int64(n))
			nd := cfg.NodeOf(dm.Owner(i0))
			if owner == -1 {
				owner = nd
			} else if owner != nd {
				owner = -2
				break
			}
		}
		if owner < 0 {
			continue // boundary page: placement is last-owner-wins, skip
		}
		checked++
		if ph.Home != owner {
			t.Errorf("page %d: home node %d, dist ownership says %d", vp, ph.Home, owner)
		}
		if ph.RemoteByNode[owner] != 0 {
			t.Errorf("page %d: %d remote misses attributed to its own home node",
				vp, ph.RemoteByNode[owner])
		}
		if ph.Remote > 0 {
			withRemote++
		}
		var byNode int64
		for _, c := range ph.RemoteByNode {
			byNode += c
		}
		if byNode != ph.Remote {
			t.Errorf("page %d: RemoteByNode sums to %d, Remote = %d", vp, byNode, ph.Remote)
		}
	}
	if checked < 100 {
		t.Fatalf("only %d single-owner pages checked; expected the bulk of %d array pages",
			checked, size/pb)
	}
	if withRemote == 0 {
		t.Fatal("no page saw a remote miss; the workload should force them")
	}

	// Array-level heat must agree with page-level heat summed over the
	// array's pages.
	ai := rec.ArrayHeat("heat.b")
	if ai == nil {
		t.Fatal("heat.b not registered with the recorder")
	}
	var pgLocal, pgRemote int64
	for vp := base / pb; vp*pb < base+size; vp++ {
		if ph := rec.Page(vp); ph != nil {
			pgLocal += ph.Local
			pgRemote += ph.Remote
		}
	}
	local, remote := ai.Misses()
	if local != pgLocal || remote != pgRemote {
		t.Errorf("array heat (%d local, %d remote) != page heat (%d, %d)",
			local, remote, pgLocal, pgRemote)
	}
	var served int64
	for _, nh := range ai.Nodes {
		served += nh.ServedRemote
	}
	if served != remote {
		t.Errorf("ServedRemote sums to %d, remote misses %d", served, remote)
	}
	// Every processor writes columns spanning all row blocks, so most
	// misses must be remote (7 of 8 row blocks are on other nodes).
	if remote <= local {
		t.Errorf("expected mostly remote misses, got %d local / %d remote", local, remote)
	}
}

// TestTLBFractionRoundRobinVsReshaped reproduces the paper's §8.2
// diagnosis on the profiler's own numbers: with a (block,*) transpose
// operand, round-robin placement leaves each processor striding across
// many pages (high TLB pressure), while reshaping makes each portion
// contiguous and local.
func TestTLBFractionRoundRobinVsReshaped(t *testing.T) {
	const n, iters, nprocs = 256, 1, 16
	cfg := machine.Scaled(nprocs)

	_, rrRec := runWithRecorder(t,
		workloads.Transpose(n, iters, workloads.Plain), cfg, ospage.RoundRobin)
	_, rsRec := runWithRecorder(t,
		workloads.Transpose(n, iters, workloads.Reshaped), machine.Scaled(nprocs), ospage.FirstTouch)

	rr, rs := rrRec.TLBFraction(), rsRec.TLBFraction()
	if rr <= rs {
		t.Errorf("TLB fraction: round-robin %.4f should exceed reshaped %.4f", rr, rs)
	}
	if rr < 0.05 {
		t.Errorf("round-robin TLB fraction %.4f implausibly low for a strided transpose", rr)
	}

	// The transpose region itself must carry the split.
	var rrRegion, rsRegion *obs.RegionStats
	for _, rg := range rrRec.Regions() {
		if rg.Name != obs.SerialRegion {
			rrRegion = rg
		}
	}
	for _, rg := range rsRec.Regions() {
		if rg.Name != obs.SerialRegion {
			rsRegion = rg
		}
	}
	if rrRegion == nil || rsRegion == nil {
		t.Fatal("transpose region missing from profile")
	}
	if rrRegion.TLBFrac() <= rsRegion.TLBFrac() {
		t.Errorf("region TLB fraction: round-robin %.4f should exceed reshaped %.4f",
			rrRegion.TLBFrac(), rsRegion.TLBFrac())
	}
}

// TestRecorderDoesNotPerturbSimulation is the zero-overhead contract from
// the other side: attaching a recorder must not change a single simulated
// cycle, only observe them.
func TestRecorderDoesNotPerturbSimulation(t *testing.T) {
	src := workloads.Transpose(128, 1, workloads.Regular)
	build := func() *exec.Result {
		cfg := machine.Scaled(4)
		tc := core.New()
		img, err := tc.Build(map[string]string{"main.f": src})
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		res, err := core.Run(img, cfg, core.RunOptions{Policy: ospage.FirstTouch})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	plain := build()

	cfg := machine.Scaled(4)
	observed, rec := runWithRecorder(t, src, cfg, ospage.FirstTouch)
	if plain.Cycles != observed.Cycles {
		t.Errorf("recorder changed the simulation: %d cycles plain, %d observed",
			plain.Cycles, observed.Cycles)
	}
	if plain.Total != observed.Total {
		t.Errorf("recorder changed the counters:\n plain    %+v\n observed %+v",
			plain.Total, observed.Total)
	}
	// And the recorder's own view must agree with the memory system's.
	if got := rec.Count(obs.KTLBMiss); got != observed.Total.TLBMiss {
		t.Errorf("recorder TLB misses %d != memsim %d", got, observed.Total.TLBMiss)
	}
	wantL2 := observed.Total.L2Miss
	if got := rec.Count(obs.KL2MissLocal) + rec.Count(obs.KL2MissRemote); got != wantL2 {
		t.Errorf("recorder L2 misses %d != memsim %d", got, wantL2)
	}
	if got := rec.Count(obs.KL2MissRemote); got != observed.Total.L2MissRemote {
		t.Errorf("recorder remote misses %d != memsim %d", got, observed.Total.L2MissRemote)
	}

	// Streaming must be equally invisible: with the trace spooling to disk
	// and the cycle-sampled series on, under both engines, every simulated
	// cycle and counter stays bit-identical to the unobserved run.
	for _, eng := range []exec.Engine{exec.EngineSerial, exec.EngineParallel} {
		cfg := machine.Scaled(4)
		srec := obs.NewRecorder(cfg)
		srec.EnableTrace(0)
		sink, err := obs.NewSpoolSink(filepath.Join(t.TempDir(), "trace.spool"))
		if err != nil {
			t.Fatal(err)
		}
		srec.SetTraceSink(sink)
		srec.EnableSeries(20000, nil)
		tc := core.New()
		tc.Rec = srec
		img, err := tc.Build(map[string]string{"main.f": src})
		if err != nil {
			t.Fatalf("%v build: %v", eng, err)
		}
		res, err := core.Run(img, cfg, core.RunOptions{
			Policy: ospage.FirstTouch, Recorder: srec, Engine: eng, Workers: 4})
		if err != nil {
			t.Fatalf("%v run: %v", eng, err)
		}
		if res.Cycles != plain.Cycles {
			t.Errorf("%v engine with streaming changed the simulation: %d cycles, plain %d",
				eng, res.Cycles, plain.Cycles)
		}
		if res.Total != plain.Total {
			t.Errorf("%v engine with streaming changed the counters:\n plain    %+v\n streamed %+v",
				eng, plain.Total, res.Total)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("%v spool close: %v", eng, err)
		}
		spooled, err := os.Open(sink.Path())
		if err != nil {
			t.Fatal(err)
		}
		evs, err := obs.ReadSpool(spooled)
		spooled.Close()
		if err != nil {
			t.Fatalf("%v spool unreadable: %v", eng, err)
		}
		if int64(len(evs)) != srec.TraceCount() || srec.TraceDropped() != 0 {
			t.Errorf("%v spool holds %d events, recorder saw %d (%d dropped)",
				eng, len(evs), srec.TraceCount(), srec.TraceDropped())
		}
		if len(srec.SeriesRows()) == 0 {
			t.Errorf("%v run produced no series rows", eng)
		}
	}
}
