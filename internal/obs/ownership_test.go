package obs_test

import (
	"fmt"
	"testing"

	"dsmdist/internal/core"
	"dsmdist/internal/dist"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

// ownSrc generates a single-array program with the given distribution
// directive and a doacross that makes every processor touch every
// column, so ownership attribution is exercised from all sides.
func ownSrc(n int, directive string) string {
	return fmt.Sprintf(`      program own
      integer n
      parameter (n = %d)
      real*8 b(n, n)
%s      integer i, j
c$doacross local(i, j) shared(b)
      do j = 1, n
        do i = 1, n
          b(i, j) = dble(i) + dble(j)*0.5
        end do
      end do
      end
`, n, directive)
}

// checkOwnershipAgainstDist runs the program, then checks three views of
// page ownership against each other for every page with traffic:
//
//	dist (fresh Grid/DimMap math)  ==  obs ArrayInfo.OwnerOf (the map
//	rtl registered)  ==  ospage placement (PageHeat.Home)
//
// Pages whose elements span owners are skipped for the dist comparison
// (placement there is last-owner-wins) but must still agree between the
// registered map and the placement.
func checkOwnershipAgainstDist(t *testing.T, n, nprocs int, directive string, spec dist.Spec) {
	t.Helper()
	cfg := machine.Scaled(nprocs)
	res, rec := runWithRecorder(t, ownSrc(n, directive), cfg, ospage.FirstTouch)

	st := core.ArrayState(res, "own", "b")
	if st == nil {
		t.Fatal("array own.b not found")
	}
	ai := rec.ArrayHeat("own.b")
	if ai == nil {
		t.Fatal("own.b not registered with the recorder")
	}
	if ai.Spec != spec.String() {
		t.Errorf("registered spec %q, want %q", ai.Spec, spec.String())
	}

	grid, err := dist.NewGrid(spec, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	maps, err := grid.Maps([]int{n, n})
	if err != nil {
		t.Fatal(err)
	}

	base := st.Base
	size := int64(n) * int64(n) * 8
	pb := int64(cfg.PageBytes)
	checked, uniform := 0, 0
	for vp := base / pb; vp*pb < base+size; vp++ {
		ph := rec.Page(vp)
		if ph == nil || ph.Local+ph.Remote == 0 {
			continue
		}
		reg := ai.OwnerOf(vp)
		if reg < 0 {
			t.Fatalf("page %d: no registered owner", vp)
		}
		if reg != ph.Home {
			t.Errorf("page %d: registered owner %d, placement homed it on %d", vp, reg, ph.Home)
		}
		checked++

		// dist's element-level view, when the page has a single owner.
		lo, hi := vp*pb, (vp+1)*pb
		if lo < base {
			lo = base
		}
		if hi > base+size {
			hi = base + size
		}
		owner := -1
		for addr := lo; addr < hi; addr += 8 {
			lin := (addr - base) / 8
			idx := []int{int(lin % int64(n)), int(lin / int64(n))}
			nd := cfg.NodeOf(grid.OwnerLinear(maps, idx))
			if owner == -1 {
				owner = nd
			} else if owner != nd {
				owner = -2
				break
			}
		}
		if owner < 0 {
			continue
		}
		uniform++
		if reg != owner {
			t.Errorf("page %d: registered owner %d, dist says %d", vp, reg, owner)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d touched pages checked", checked)
	}
	if uniform < checked/2 {
		t.Fatalf("only %d of %d pages were single-owner; distribution should align with pages", uniform, checked)
	}

	// OwnedPages must partition the touched range consistently.
	var owned int64
	for _, c := range ai.OwnedPages(cfg.NNodes()) {
		owned += c
	}
	if want := (size + pb - 1) / pb; owned < want {
		t.Errorf("ownership map covers %d pages, array spans %d", owned, want)
	}
}

// TestOwnershipCyclicK covers the cyclic(k) specifier: with k sized to
// exactly one page, every page is single-owner and dealt round-robin
// across the processors of dimension 1.
func TestOwnershipCyclicK(t *testing.T) {
	n := 512
	k := machine.Scaled(16).PageBytes / 8 // one page worth of elements
	spec := dist.Spec{Dims: []dist.Dim{{Kind: dist.BlockCyclic, Chunk: k}, {}}}
	checkOwnershipAgainstDist(t, n, 16,
		fmt.Sprintf("c$distribute b(cyclic(%d), *)\n", k), spec)
}

// TestOwnershipBlockBlock covers the 2-D (block,block) distribution: a
// 4x4 processor grid whose dimension-0 blocks are exactly one page.
func TestOwnershipBlockBlock(t *testing.T) {
	spec := dist.Spec{Dims: []dist.Dim{{Kind: dist.Block}, {Kind: dist.Block}}}
	checkOwnershipAgainstDist(t, 512, 16, "c$distribute b(block, block)\n", spec)
}

// redisSrc initializes under (block, *), redistributes to (*, block),
// then sweeps again — the §3.3 pattern whose heat attribution used to be
// stuck on the load-time distribution.
const redisSrc = `      program redis
      integer n
      parameter (n = 512)
      real*8 b(n, n)
c$distribute b(block, *)
      integer i, j
c$doacross local(i, j) shared(b)
      do j = 1, n
        do i = 1, n
          b(i, j) = dble(i)
        end do
      end do
c$redistribute b(*, block)
c$doacross local(i, j) shared(b)
      do j = 1, n
        do i = 1, n
          b(i, j) = b(i, j) + 1.0
        end do
      end do
      end
`

// TestRedistributeReregistersOwnership is the regression test for heat
// attribution after c$redistribute: the recorder's ownership map must
// reflect the new (*, block) distribution, not the load-time (block, *).
func TestRedistributeReregistersOwnership(t *testing.T) {
	const n, nprocs = 512, 16
	cfg := machine.Scaled(nprocs)
	res, rec := runWithRecorder(t, redisSrc, cfg, ospage.FirstTouch)

	st := core.ArrayState(res, "redis", "b")
	if st == nil {
		t.Fatal("array redis.b not found")
	}
	ai := rec.ArrayHeat("redis.b")
	if ai == nil {
		t.Fatal("redis.b not registered")
	}
	want := dist.Spec{Dims: []dist.Dim{{}, {Kind: dist.Block}}}
	if ai.Spec != want.String() {
		t.Fatalf("registered spec after redistribute = %q, want %q", ai.Spec, want.String())
	}

	// Fresh dist math for the NEW spec: pages must be owned by the node
	// of their column block. One column is n*8 = 4 KB = 4 aligned pages,
	// so every page is single-owner.
	grid, err := dist.NewGrid(want, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	maps, err := grid.Maps([]int{n, n})
	if err != nil {
		t.Fatal(err)
	}
	base := st.Base
	size := int64(n) * int64(n) * 8
	pb := int64(cfg.PageBytes)
	mismatch, checked := 0, 0
	for vp := base / pb; vp*pb < base+size; vp++ {
		lin := vp*pb/8 - base/8
		if lin < 0 {
			continue
		}
		j0 := int(lin / int64(n))
		if j0 >= n {
			break
		}
		wantNode := cfg.NodeOf(grid.OwnerLinear(maps, []int{0, j0}))
		checked++
		if got := ai.OwnerOf(vp); got != wantNode {
			mismatch++
			if mismatch <= 5 {
				t.Errorf("page %d (column %d): owner %d, new distribution says %d", vp, j0, got, wantNode)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d pages checked", checked)
	}
	if mismatch > 0 {
		t.Errorf("%d of %d pages still attributed to the old distribution", mismatch, checked)
	}
}
