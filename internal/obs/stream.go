// Incremental trace export. A StreamSink receives trace events as the
// recorder reaches flush points, so a long run never holds its full
// timeline in memory and an interrupted run still leaves usable output.
//
// The on-disk spool is JSONL: one TraceEvent object per line, append-only.
// That shape is deliberate — a crash or Ctrl-C can truncate at most the
// final line, and FinalizeSpool tolerates exactly that, converting every
// complete line into the chrome://tracing object format.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// StreamSink consumes trace events in committed serial order. Emit is only
// called from the simulation goroutine at flush points; Flush and Close
// may be called from other goroutines (the sink synchronizes internally).
type StreamSink interface {
	Emit(ev *TraceEvent)
	Flush() error
	Close() error
}

// SpoolSink appends trace events to a JSONL spool file.
type SpoolSink struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	enc   *json.Encoder
	count int64
	err   error
}

// NewSpoolSink creates (truncating) the spool file at path.
func NewSpoolSink(path string) (*SpoolSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	return &SpoolSink{f: f, w: w, enc: json.NewEncoder(w)}, nil
}

// Path returns the spool file's path.
func (s *SpoolSink) Path() string { return s.f.Name() }

// Count returns how many events were emitted so far.
func (s *SpoolSink) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Err returns the first write error, if any.
func (s *SpoolSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Emit appends one event as a JSON line.
func (s *SpoolSink) Emit(ev *TraceEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(ev); err != nil {
		s.err = err
		return
	}
	s.count++
}

// Flush pushes buffered bytes to the file so readers (the /trace endpoint,
// a tail -f) see every event emitted so far.
func (s *SpoolSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Close flushes and closes the spool file.
func (s *SpoolSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.w.Flush()
	cerr := s.f.Close()
	if s.err != nil {
		return s.err
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}

// ReadSpool parses a JSONL spool. A truncated final line — the signature
// of an interrupted run — is silently dropped; any other malformed line is
// an error.
func ReadSpool(r io.Reader) ([]TraceEvent, error) {
	var evs []TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// Only the last line may be torn; peek for more input.
			if sc.Scan() {
				return nil, fmt.Errorf("spool line %d: %w", len(evs)+1, err)
			}
			break
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}

// FinalizeSpool converts a JSONL spool into the Chrome trace-event object
// format WriteTrace produces, prepending the track metadata events.
func FinalizeSpool(r io.Reader, w io.Writer) error {
	evs, err := ReadSpool(r)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{
		TraceEvents:     append(traceMeta(), evs...),
		DisplayTimeUnit: "ms",
	})
}

// FinalizeSpoolFile converts the spool at spoolPath into a loadable trace
// at outPath.
func FinalizeSpoolFile(spoolPath, outPath string) error {
	in, err := os.Open(spoolPath)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := FinalizeSpool(in, out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// TraceStream ties a recorder's trace to a spool file plus its finalized
// destination, with an idempotent Finalize so both the normal exit path
// and a signal handler can call it.
type TraceStream struct {
	Spool *SpoolSink
	out   string
	once  sync.Once
	err   error
}

// StreamTraceToFile enables streaming trace collection on rec: events
// spool to outPath+".spool" as the run progresses, and Finalize converts
// the spool into the loadable trace at outPath. EnableTrace must already
// have been called.
func StreamTraceToFile(rec *Recorder, outPath string) (*TraceStream, error) {
	sink, err := NewSpoolSink(outPath + ".spool")
	if err != nil {
		return nil, err
	}
	rec.SetTraceSink(sink)
	return &TraceStream{Spool: sink, out: outPath}, nil
}

// Finalize closes the spool and writes the finalized trace from whatever
// reached it. Safe to call more than once and from a signal handler racing
// the simulation goroutine: it only touches the sink (which synchronizes
// internally), never the recorder's buffer, so an interrupt finalizes the
// events flushed up to the last commit point. On the normal exit path
// Recorder.Finish has already drained everything.
func (t *TraceStream) Finalize() error {
	t.once.Do(func() {
		if err := t.Spool.Close(); err != nil {
			t.err = err
			return
		}
		t.err = FinalizeSpoolFile(t.Spool.Path(), t.out)
	})
	return t.err
}
