package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"dsmdist/internal/hostpool"
)

// TestBatchWithinBatchCoalesce: duplicate elements of one batch attach to
// the first occurrence — one Job, one simulation, attached flags marking
// the duplicates.
func TestBatchWithinBatchCoalesce(t *testing.T) {
	srv := New(Options{
		runJob: func(j *Job) ([]byte, error) { return []byte(`{"v":1}`), nil },
	})
	batch := &BatchRequest{Jobs: []JobRequest{
		*fakeReq("t", 1), *fakeReq("t", 1), *fakeReq("t", 2),
	}}
	jobs, attached, err := srv.SubmitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0] != jobs[1] || jobs[0] == jobs[2] {
		t.Fatal("duplicate element did not coalesce onto its twin")
	}
	want := []bool{false, true, false}
	for i := range want {
		if attached[i] != want[i] {
			t.Fatalf("attached = %v, want %v", attached, want)
		}
	}
	for _, j := range jobs {
		waitDone(t, srv, j)
	}
	if jobs[0].Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want 1", jobs[0].Coalesced)
	}
	if sims := srv.Simulations(); sims != 2 {
		t.Fatalf("simulations = %d for 2 distinct specs, want 2", sims)
	}
}

// TestBatchTenantCaps: a mixed-tenant batch is admitted whole but still
// runs under the per-tenant concurrency limit.
func TestBatchTenantCaps(t *testing.T) {
	prev := hostpool.SetBudget(16)
	defer hostpool.SetBudget(prev)

	block := make(chan struct{})
	srv := New(Options{
		TenantLimit: 2,
		runJob: func(j *Job) ([]byte, error) {
			<-block
			return []byte(`{"v":1}`), nil
		},
	})
	batch := &BatchRequest{}
	for _, tenant := range []string{"a", "b"} {
		for i := 0; i < 5; i++ {
			batch.Jobs = append(batch.Jobs, *fakeReq(tenant, i))
		}
	}
	jobs, _, err := srv.SubmitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv, func(st Stats) bool { return st.Running == 4 })
	srv.mu.Lock()
	a, b := srv.tenantRunning["a"], srv.tenantRunning["b"]
	srv.mu.Unlock()
	if a != 2 || b != 2 {
		t.Fatalf("running per tenant a=%d b=%d, want 2/2 (limit 2)", a, b)
	}
	close(block)
	for _, j := range jobs {
		waitDone(t, srv, j)
		if j.State != StateDone {
			t.Fatalf("job %s: state=%s err=%q", j.ID, j.State, j.Err)
		}
	}
}

// TestBatchQueueFullAtomic: a batch that does not fit in the remaining
// queue space is rejected whole — no element admitted, no job record, no
// inflight entry, nothing enqueued. Elements that coalesce need no slot,
// so a batch of mostly-duplicates still fits.
func TestBatchQueueFullAtomic(t *testing.T) {
	release := make(chan struct{})
	srv := New(Options{
		MaxQueue:    2,
		TenantLimit: 1,
		runJob: func(j *Job) ([]byte, error) {
			<-release
			return []byte(`{"v":1}`), nil
		},
	})
	j1, _, err := srv.Submit(fakeReq("t", 1)) // runs (blocked)
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv, func(st Stats) bool { return st.Running == 1 })
	j2, _, err := srv.Submit(fakeReq("t", 2)) // queued (tenant limit 1)
	if err != nil {
		t.Fatal(err)
	}

	srv.mu.Lock()
	beforeJobs, beforeInflight, beforeQueue := len(srv.jobs), len(srv.inflight), len(srv.queue)
	srv.mu.Unlock()

	// Three fresh specs need three slots; only one remains.
	over := &BatchRequest{Jobs: []JobRequest{
		*fakeReq("t", 3), *fakeReq("t", 4), *fakeReq("t", 5),
	}}
	if _, _, err := srv.SubmitBatch(over); err != ErrQueueFull {
		t.Fatalf("oversized batch: err = %v, want ErrQueueFull", err)
	}
	srv.mu.Lock()
	afterJobs, afterInflight, afterQueue := len(srv.jobs), len(srv.inflight), len(srv.queue)
	srv.mu.Unlock()
	if afterJobs != beforeJobs || afterInflight != beforeInflight || afterQueue != beforeQueue {
		t.Fatalf("rejected batch left traces: jobs %d→%d inflight %d→%d queue %d→%d",
			beforeJobs, afterJobs, beforeInflight, afterInflight, beforeQueue, afterQueue)
	}

	// Coalescible elements cost no slots: two copies of the queued job's
	// spec plus one fresh spec fit in the single remaining slot.
	fits := &BatchRequest{Jobs: []JobRequest{
		*fakeReq("t", 2), *fakeReq("t", 2), *fakeReq("t", 6),
	}}
	jobs, attached, err := srv.SubmitBatch(fits)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0] != j2 || jobs[1] != j2 || !attached[0] || !attached[1] || attached[2] {
		t.Fatalf("coalescible elements did not attach to the queued job (attached %v)", attached)
	}
	close(release)
	for _, j := range []*Job{j1, j2, jobs[2]} {
		waitDone(t, srv, j)
	}
}

// TestBatchHTTPOrderAndDefaults drives POST /batch through the Client:
// per-element views come back in request order, zero-valued element
// fields inherit the batch defaults (tenant via the client here), and a
// warm identical batch is a per-element cache/coalesce hit.
func TestBatchHTTPOrderAndDefaults(t *testing.T) {
	srv := New(Options{
		runJob: func(j *Job) ([]byte, error) {
			// Echo the element's distinguishing source so order is checkable.
			return []byte(fmt.Sprintf("{\"echo\":%q}", j.spec.Sources["x.f"])), nil
		},
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cli := NewClient(hs.URL)
	cli.Tenant = "batcher"

	mkBatch := func() *BatchRequest {
		b := &BatchRequest{Defaults: JobRequest{Machine: "tiny"}}
		for i := 0; i < 4; i++ {
			b.Jobs = append(b.Jobs, JobRequest{
				Sources: map[string]string{"x.f": fmt.Sprintf("element %d", i)},
			})
		}
		return b
	}
	views, err := cli.RunBatch(mkBatch())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range views {
		if v.V != 1 || v.State != StateDone {
			t.Fatalf("element %d: v=%d state=%s err=%q", i, v.V, v.State, v.Error)
		}
		if v.Tenant != "batcher" {
			t.Fatalf("element %d: tenant %q, want the client default inherited", i, v.Tenant)
		}
		var echo struct {
			Echo string `json:"echo"`
		}
		if err := json.Unmarshal(v.Result, &echo); err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("element %d", i); echo.Echo != want {
			t.Fatalf("element %d came back out of order: echo %q", i, echo.Echo)
		}
	}
	if cli.Requests() != 4 || cli.CacheHits() != 0 {
		t.Fatalf("cold batch accounting: %d/%d hits/requests, want 0/4",
			cli.CacheHits(), cli.Requests())
	}
}

// TestBatchIdenticalSpecsOneSimulation is the batch identity contract on a
// real simulation: N identical specs in one batch cost one simulation and
// return byte-equal canonical results — equal, too, to what a plain
// single-job submission of the same spec returns, cold or warm.
func TestBatchIdenticalSpecsOneSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator run")
	}
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Store: store})

	batch := &BatchRequest{Defaults: JobRequest{Machine: "tiny"}}
	for i := 0; i < 4; i++ {
		r := transposeReq()
		r.Machine = "" // inherited from the defaults
		batch.Jobs = append(batch.Jobs, *r)
	}
	jobs, attached, err := srv.SubmitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i] != jobs[0] || !attached[i] {
			t.Fatalf("identical element %d did not coalesce", i)
		}
	}
	waitDone(t, srv, jobs[0])
	if jobs[0].State != StateDone {
		t.Fatalf("batch job: state=%s err=%q", jobs[0].State, jobs[0].Err)
	}
	if sims := srv.Simulations(); sims != 1 {
		t.Fatalf("simulations = %d for 4 identical specs, want 1", sims)
	}

	// A plain submission of the same spec: served from the store,
	// byte-equal to the batch result.
	single, _, err := srv.Submit(transposeReq())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv, single)
	if !single.Cached || !bytes.Equal(single.Result, jobs[0].Result) {
		t.Fatalf("single submit after the batch: cached=%v byte-equal=%v",
			single.Cached, bytes.Equal(single.Result, jobs[0].Result))
	}

	// Warm repeat of the whole batch: every element a store hit.
	warm, _, err := srv.SubmitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range warm {
		waitDone(t, srv, j)
		if !j.Cached || !bytes.Equal(j.Result, jobs[0].Result) {
			t.Fatalf("warm element %d: cached=%v byte-equal=%v",
				i, j.Cached, bytes.Equal(j.Result, jobs[0].Result))
		}
	}
	if sims := srv.Simulations(); sims != 1 {
		t.Fatalf("simulations = %d after the warm batch, want still 1", sims)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}
