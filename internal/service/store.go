// Disk-backed content-addressed store for the simulation service: compiled
// images and run-result documents, keyed by core.CompileKey / core.JobKey.
// Entries are plain files (one per key) plus a JSON index carrying LRU
// recency, so the cache survives daemon restarts and is shareable between
// anything that respects the key contract. The store is bounded by total
// bytes; inserting past the cap evicts least-recently-used entries.
package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Kind namespaces store entries by payload type.
type Kind string

const (
	// KindCompile entries hold gob-encoded codegen.Result images, keyed
	// by core.CompileKey.
	KindCompile Kind = "compile"
	// KindResult entries hold canonical core.ResultDoc JSON, keyed by
	// core.JobKey.
	KindResult Kind = "result"
)

// DefaultStoreBytes bounds a store when the caller passes maxBytes <= 0.
const DefaultStoreBytes = 1 << 30 // 1 GiB

// storeEntry is one index record.
type storeEntry struct {
	Kind Kind   `json:"kind"`
	Key  string `json:"key"`
	Size int64  `json:"size"`
	// Seq is the LRU clock: higher = more recently used. Persisted with
	// the index so recency survives restarts (Get bumps are flushed
	// lazily — on the next Put, on Close, or after flushEveryGets
	// unflushed bumps).
	Seq int64 `json:"seq"`
}

// flushEveryGets bounds how many Get recency bumps may sit unflushed. A
// read-heavy daemon killed uncleanly (kill -9, OOM) then loses at most
// this much recency instead of all of it, so the next eviction pass runs
// on near-current LRU order rather than the order as of the last Put.
const flushEveryGets = 64

// storeIndex is the on-disk index document.
type storeIndex struct {
	V       int          `json:"v"`
	Seq     int64        `json:"seq"`
	Entries []storeEntry `json:"entries"`
}

// Store is the bounded, persistent content-addressed cache.
type Store struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	entries  map[string]*storeEntry // indexed by kind/key
	bytes    int64
	seq      int64
	dirty    bool // index has unflushed recency/membership changes
	getBumps int  // Get recency bumps since the last flush

	hits, misses, evictions int64
}

// keyRE guards against path injection: keys are hex digests.
var keyRE = regexp.MustCompile(`^[0-9a-f]{16,128}$`)

func entryID(kind Kind, key string) string { return string(kind) + "/" + key }

func (s *Store) objPath(kind Kind, key string) string {
	return filepath.Join(s.dir, "obj", string(kind)+"-"+key)
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.json") }

// OpenStore opens (creating if needed) a store rooted at dir, bounded to
// maxBytes of payload (<= 0 selects DefaultStoreBytes). An existing store
// is recovered from its index; entries whose files have vanished are
// dropped, and files not covered by the index are re-adopted with cold
// recency, so a torn shutdown loses at worst recency, never correctness.
func OpenStore(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultStoreBytes
	}
	if err := os.MkdirAll(filepath.Join(dir, "obj"), 0o755); err != nil {
		return nil, fmt.Errorf("service: open store: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, entries: map[string]*storeEntry{}}

	var idx storeIndex
	if data, err := os.ReadFile(s.indexPath()); err == nil {
		// A corrupt index is discarded, not fatal: the object scan below
		// re-adopts the files.
		_ = json.Unmarshal(data, &idx)
	}
	for i := range idx.Entries {
		e := idx.Entries[i]
		fi, err := os.Stat(s.objPath(e.Kind, e.Key))
		if err != nil {
			continue // file vanished; drop the record
		}
		e.Size = fi.Size()
		s.entries[entryID(e.Kind, e.Key)] = &e
		s.bytes += e.Size
		if e.Seq > s.seq {
			s.seq = e.Seq
		}
	}

	// Adopt objects the index does not know (torn shutdown after a Put
	// but before a flush). Sorted for deterministic cold-recency order.
	names, err := os.ReadDir(filepath.Join(dir, "obj"))
	if err != nil {
		return nil, fmt.Errorf("service: open store: %w", err)
	}
	var adopted []string
	for _, de := range names {
		name := de.Name()
		kind, key, ok := strings.Cut(name, "-")
		if !ok || !keyRE.MatchString(key) {
			continue
		}
		if Kind(kind) != KindCompile && Kind(kind) != KindResult {
			continue
		}
		if _, known := s.entries[entryID(Kind(kind), key)]; !known {
			adopted = append(adopted, name)
		}
	}
	sort.Strings(adopted)
	for _, name := range adopted {
		kind, key, _ := strings.Cut(name, "-")
		fi, err := os.Stat(filepath.Join(dir, "obj", name))
		if err != nil {
			continue
		}
		s.seq++
		s.entries[entryID(Kind(kind), key)] = &storeEntry{
			Kind: Kind(kind), Key: key, Size: fi.Size(), Seq: s.seq}
		s.bytes += fi.Size()
		s.dirty = true
	}

	s.evictOverLocked()
	if err := s.flushLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Get returns the payload for (kind, key) and whether it was present,
// bumping the entry's recency. A payload whose file cannot be read is
// treated as absent and dropped.
func (s *Store) Get(kind Kind, key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[entryID(kind, key)]
	if !ok {
		s.misses++
		return nil, false
	}
	data, err := os.ReadFile(s.objPath(kind, key))
	if err != nil {
		s.dropLocked(e)
		s.misses++
		return nil, false
	}
	s.seq++
	e.Seq = s.seq
	s.dirty = true
	s.hits++
	if s.getBumps++; s.getBumps >= flushEveryGets {
		// Best effort: a failed flush leaves the index dirty and the next
		// Put/Close/threshold crossing retries; the Get itself succeeded.
		_ = s.flushLocked()
	}
	return data, true
}

// Contains reports presence without reading the payload or bumping
// recency.
func (s *Store) Contains(kind Kind, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[entryID(kind, key)]
	return ok
}

// Put inserts (or refreshes) a payload and flushes the index. Entries
// larger than the whole store bound are rejected silently (cache, not
// storage). The content-addressed contract makes overwrites idempotent:
// same key, same bytes.
func (s *Store) Put(kind Kind, key string, data []byte) error {
	if !keyRE.MatchString(key) {
		return fmt.Errorf("service: store key %q is not a content hash", key)
	}
	if int64(len(data)) > s.maxBytes {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	path := s.objPath(kind, key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: store put: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: store put: %w", err)
	}

	id := entryID(kind, key)
	if old, ok := s.entries[id]; ok {
		s.bytes -= old.Size
	}
	s.seq++
	s.entries[id] = &storeEntry{Kind: kind, Key: key, Size: int64(len(data)), Seq: s.seq}
	s.bytes += int64(len(data))
	s.dirty = true
	s.evictOverLocked()
	return s.flushLocked()
}

// dropLocked removes an entry and its file. Callers hold mu.
func (s *Store) dropLocked(e *storeEntry) {
	delete(s.entries, entryID(e.Kind, e.Key))
	s.bytes -= e.Size
	os.Remove(s.objPath(e.Kind, e.Key))
	s.dirty = true
}

// evictOverLocked drops LRU entries until the byte bound holds.
func (s *Store) evictOverLocked() {
	for s.bytes > s.maxBytes && len(s.entries) > 0 {
		var lru *storeEntry
		for _, e := range s.entries {
			if lru == nil || e.Seq < lru.Seq {
				lru = e
			}
		}
		s.dropLocked(lru)
		s.evictions++
	}
}

// flushLocked persists the index (write-temp-then-rename). Callers hold mu.
func (s *Store) flushLocked() error {
	if !s.dirty {
		return nil
	}
	idx := storeIndex{V: 1, Seq: s.seq}
	for _, e := range s.entries {
		idx.Entries = append(idx.Entries, *e)
	}
	sort.Slice(idx.Entries, func(i, j int) bool {
		return idx.Entries[i].Seq < idx.Entries[j].Seq
	})
	data, err := json.MarshalIndent(&idx, "", " ")
	if err != nil {
		return err
	}
	tmp := s.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: store flush: %w", err)
	}
	if err := os.Rename(tmp, s.indexPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: store flush: %w", err)
	}
	s.dirty = false
	s.getBumps = 0
	return nil
}

// Flush persists any pending index changes (recency bumps from Gets).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// Close flushes the index; the store must not be used afterwards.
func (s *Store) Close() error { return s.Flush() }

// Len reports the resident entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes reports the resident payload bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// StoreStats is the store's observable state (GET /stats).
type StoreStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries: len(s.entries), Bytes: s.bytes, MaxBytes: s.maxBytes,
		Hits: s.hits, Misses: s.misses, Evictions: s.evictions,
	}
}
