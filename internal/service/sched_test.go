// Scheduler × hostpool interaction. The pool is consulted outside the
// server mutex (its own lock; coupling the two invites inversions), and a
// dry pool must degrade to serial progress — the first running job rides
// the server's implicit worker and needs no grant — never to a wedged
// queue.
package service

import (
	"sync"
	"testing"

	"dsmdist/internal/hostpool"
)

// runCounted returns a runJob hook tracking peak concurrency.
func runCounted(mu *sync.Mutex, cur, peak *int, gate chan struct{}) func(*Job) ([]byte, error) {
	return func(j *Job) ([]byte, error) {
		mu.Lock()
		*cur++
		if *cur > *peak {
			*peak = *cur
		}
		mu.Unlock()
		if gate != nil {
			<-gate
		}
		mu.Lock()
		*cur--
		mu.Unlock()
		return []byte(`{"v":1}`), nil
	}
}

// TestSchedulerDryHostpool: with a budget of 1 the pool never grants a
// second worker (Acquire keeps one slot for the caller), so distinct jobs
// must run strictly serially — and all of them must still complete.
func TestSchedulerDryHostpool(t *testing.T) {
	prev := hostpool.SetBudget(1)
	defer hostpool.SetBudget(prev)

	var mu sync.Mutex
	var cur, peak int
	srv := New(Options{TenantLimit: 8, runJob: runCounted(&mu, &cur, &peak, nil)})

	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, _, err := srv.Submit(fakeReq("t", i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitDone(t, srv, j)
		if j.State != StateDone {
			t.Fatalf("job %s: state=%s err=%q", j.ID, j.State, j.Err)
		}
	}
	mu.Lock()
	got := peak
	mu.Unlock()
	if got != 1 {
		t.Fatalf("peak concurrency = %d on a dry pool, want 1", got)
	}
	if hostpool.InUse() != 0 {
		t.Fatalf("hostpool workers leaked: %d in use", hostpool.InUse())
	}
}

// TestSchedulerPoolDrawnDownExternally: a colocated consumer (a local
// sweep) holding the entire budget must not wedge the service — jobs keep
// completing one at a time, and the pool is untouched when they finish.
func TestSchedulerPoolDrawnDownExternally(t *testing.T) {
	prev := hostpool.SetBudget(4)
	defer hostpool.SetBudget(prev)
	grant := hostpool.Acquire(3) // all that budget 4 offers (one slot stays with the caller)
	if grant != 3 {
		hostpool.Release(grant)
		t.Fatalf("setup: acquired %d of 3", grant)
	}
	defer hostpool.Release(grant)

	var mu sync.Mutex
	var cur, peak int
	gate := make(chan struct{})
	srv := New(Options{TenantLimit: 8, runJob: runCounted(&mu, &cur, &peak, gate)})

	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, _, err := srv.Submit(fakeReq("t", i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// Exactly one job can be running; release them through one by one.
	waitStats(t, srv, func(st Stats) bool { return st.Running == 1 })
	for range jobs {
		gate <- struct{}{}
	}
	for _, j := range jobs {
		waitDone(t, srv, j)
		if j.State != StateDone {
			t.Fatalf("job %s: state=%s err=%q", j.ID, j.State, j.Err)
		}
	}
	mu.Lock()
	got := peak
	mu.Unlock()
	if got != 1 {
		t.Fatalf("peak concurrency = %d with the pool drawn down, want 1", got)
	}
	if hostpool.InUse() != 3 {
		t.Fatalf("hostpool in use = %d, want the external grant of 3 only", hostpool.InUse())
	}
}
