// Tests of the client-facing contracts that live above the HTTP surface:
// canonical result bytes and the advisor's remote verification (per-point
// and batched). External test package: the advisor transitively imports
// experiments, which imports service for its own -remote mode.
package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"dsmdist/internal/advisor"
	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
	"dsmdist/internal/service"
	"dsmdist/internal/workloads"
)

func remoteTransposeReq() *service.JobRequest {
	return &service.JobRequest{
		Sources: map[string]string{"t.f": workloads.Transpose(16, 1, workloads.Reshaped)},
		Machine: "tiny",
		Procs:   2,
	}
}

// remoteVerify mirrors the dsmadvise -remote per-point hook: one
// verification point becomes one service job, measured cycles come out of
// the result document.
func remoteVerify(cli *service.Client) func(map[string]string, int, ospage.Policy) (int64, error) {
	off := false
	return func(srcs map[string]string, p int, policy ospage.Policy) (int64, error) {
		view, err := cli.Run(&service.JobRequest{
			Sources:       srcs,
			Machine:       "tiny",
			Procs:         p,
			Policy:        policy.String(),
			RuntimeChecks: &off,
		})
		if err != nil {
			return 0, err
		}
		var doc core.ResultDoc
		if err := json.Unmarshal(view.Result, &doc); err != nil {
			return 0, err
		}
		return doc.Measured(), nil
	}
}

// remoteVerifyBatch mirrors the dsmadvise -remote batch hook: the whole
// fan-out ships as one atomically admitted batch.
func remoteVerifyBatch(cli *service.Client) func([]advisor.VerifyPoint) ([]int64, error) {
	off := false
	return func(points []advisor.VerifyPoint) ([]int64, error) {
		batch := &service.BatchRequest{
			Defaults: service.JobRequest{Machine: "tiny", RuntimeChecks: &off},
		}
		for _, pt := range points {
			batch.Jobs = append(batch.Jobs, service.JobRequest{
				Sources: pt.Sources,
				Procs:   pt.Procs,
				Policy:  pt.Policy.String(),
			})
		}
		views, err := cli.RunBatch(batch)
		if err != nil {
			return nil, err
		}
		out := make([]int64, len(views))
		for i := range views {
			if views[i].State != service.StateDone {
				return nil, fmt.Errorf("job %s ended %s: %s", views[i].ID, views[i].State, views[i].Error)
			}
			var doc core.ResultDoc
			if err := json.Unmarshal(views[i].Result, &doc); err != nil {
				return nil, err
			}
			out[i] = doc.Measured()
		}
		return out, nil
	}
}

// TestClientCanonicalResultBytes: the bytes a Client hands back are exactly
// the canonical document the server stored — the transport's re-indentation
// of the nested result is undone — so dsmrun -remote -json output is
// byte-identical to a local -json run.
func TestClientCanonicalResultBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator run")
	}
	store, err := service.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Options{Store: store})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	cli := service.NewClient(hs.URL)
	view, err := cli.Run(remoteTransposeReq())
	if err != nil {
		t.Fatal(err)
	}
	stored, ok := store.Get(service.KindResult, view.Key)
	if !ok {
		t.Fatalf("no stored result under the returned key %s", view.Key)
	}
	if !bytes.Equal(stored, view.Result) {
		t.Fatalf("client result differs from stored canonical bytes:\n--- stored\n%s\n--- client\n%s",
			stored, view.Result)
	}
}

// TestAdvisorRemoteVerify runs the advisor's verification fan-out through a
// live dsmd server three ways — per-point on a cold cache, batched on the
// warm cache, purely local — and all three reports must be identical,
// because simulation is deterministic. The warm batched run must be served
// entirely from the content-addressed result cache.
func TestAdvisorRemoteVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator run")
	}
	store, err := service.OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Options{Store: store})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	src := map[string]string{"main.f": workloads.Transpose(32, 1, workloads.Plain)}
	opts := advisor.Options{Procs: []int{1, 2}, Machine: machine.Tiny, TopK: 3}

	render := func(rep *advisor.Report) string {
		var b strings.Builder
		if err := rep.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	cli1 := service.NewClient(hs.URL)
	opts.Verify = remoteVerify(cli1)
	rep1, err := advisor.Advise(src, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Warm repeat through the batch hook: one POST, every element cached.
	cli2 := service.NewClient(hs.URL)
	opts.Verify = nil
	opts.VerifyBatch = remoteVerifyBatch(cli2)
	rep2, err := advisor.Advise(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cli2.Requests() == 0 || cli2.CacheHits() != cli2.Requests() {
		t.Fatalf("repeat advise: %d of %d verification points cached, want all",
			cli2.CacheHits(), cli2.Requests())
	}
	if render(rep1) != render(rep2) {
		t.Fatal("batched remote report differs from the per-point one")
	}

	// The remote report matches a purely local verification bit for bit.
	opts.VerifyBatch = nil
	local, err := advisor.Advise(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if render(local) != render(rep1) {
		t.Fatalf("remote verification changed the report:\n--- local\n%s\n--- remote\n%s",
			render(local), render(rep1))
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}
