package service

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"dsmdist/internal/advisor"
	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
	"dsmdist/internal/workloads"
)

// remoteVerify mirrors the dsmadvise -remote hook: one verification point
// becomes one service job, measured cycles come out of the result document.
func remoteVerify(cli *Client) func(map[string]string, int, ospage.Policy) (int64, error) {
	off := false
	return func(srcs map[string]string, p int, policy ospage.Policy) (int64, error) {
		view, err := cli.Run(&JobRequest{
			Sources:       srcs,
			Machine:       "tiny",
			Procs:         p,
			Policy:        policy.String(),
			RuntimeChecks: &off,
		})
		if err != nil {
			return 0, err
		}
		var doc core.ResultDoc
		if err := json.Unmarshal(view.Result, &doc); err != nil {
			return 0, err
		}
		return doc.Measured(), nil
	}
}

// TestClientCanonicalResultBytes: the bytes a Client hands back are exactly
// the canonical document the server stored — the transport's re-indentation
// of the nested result is undone — so dsmrun -remote -json output is
// byte-identical to a local -json run.
func TestClientCanonicalResultBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator run")
	}
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Store: store})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	cli := NewClient(hs.URL)
	view, err := cli.Run(transposeReq())
	if err != nil {
		t.Fatal(err)
	}
	stored, ok := store.Get(KindResult, view.Key)
	if !ok {
		t.Fatalf("no stored result under the returned key %s", view.Key)
	}
	if !bytes.Equal(stored, view.Result) {
		t.Fatalf("client result differs from stored canonical bytes:\n--- stored\n%s\n--- client\n%s",
			stored, view.Result)
	}
}

// TestAdvisorRemoteVerify runs the advisor's verification fan-out through a
// live dsmd server twice: the second run must be served entirely from the
// content-addressed result cache, and both reports — plus a purely local
// advise — must be identical, because simulation is deterministic.
func TestAdvisorRemoteVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator run")
	}
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Store: store})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	src := map[string]string{"main.f": workloads.Transpose(32, 1, workloads.Plain)}
	opts := advisor.Options{Procs: []int{1, 2}, Machine: machine.Tiny, TopK: 3}

	render := func(rep *advisor.Report) string {
		var b strings.Builder
		if err := rep.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	cli1 := NewClient(hs.URL)
	opts.Verify = remoteVerify(cli1)
	rep1, err := advisor.Advise(src, opts)
	if err != nil {
		t.Fatal(err)
	}

	cli2 := NewClient(hs.URL)
	opts.Verify = remoteVerify(cli2)
	rep2, err := advisor.Advise(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cli2.Requests() == 0 || cli2.CacheHits() != cli2.Requests() {
		t.Fatalf("repeat advise: %d of %d verification points cached, want all",
			cli2.CacheHits(), cli2.Requests())
	}
	if render(rep1) != render(rep2) {
		t.Fatal("remote reports differ between a cold and a warm cache")
	}

	// The remote report matches a purely local verification bit for bit.
	opts.Verify = nil
	local, err := advisor.Advise(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if render(local) != render(rep1) {
		t.Fatalf("remote verification changed the report:\n--- local\n%s\n--- remote\n%s",
			render(local), render(rep1))
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}
