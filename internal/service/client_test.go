// Client-side accounting contract: every submission attempt shows up in
// Requests(), whatever its fate — transport refusals, exhausted 429
// retries, validation rejections and failed jobs included. The cache-hit
// summary dsmbench/dsmadvise print divides CacheHits by Requests, so an
// uncounted failure silently inflates the ratio.
package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestClientCountsRejectedSubmissions: submissions that never produce a
// result — a queue permanently full (429 through every retry) and a
// request the server rejects outright (400) — still count.
func TestClientCountsRejectedSubmissions(t *testing.T) {
	full := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"service: job queue is full"}`))
	}))
	defer full.Close()

	cli := NewClient(full.URL)
	cli.backoff = time.Millisecond
	if _, err := cli.Run(fakeReq("t", 1)); err == nil {
		t.Fatal("Run against an always-full queue succeeded")
	} else if !strings.Contains(err.Error(), "429") {
		t.Fatalf("Run error = %v, want the 429 surfaced", err)
	}
	if got := cli.Requests(); got != 1 {
		t.Fatalf("Requests() = %d after a rejected Run, want 1", got)
	}

	// A batch counts every element it tried to submit, admitted or not.
	batch := &BatchRequest{Jobs: []JobRequest{*fakeReq("t", 1), *fakeReq("t", 2), *fakeReq("t", 3)}}
	if _, err := cli.RunBatch(batch); err == nil {
		t.Fatal("RunBatch against an always-full queue succeeded")
	}
	if got := cli.Requests(); got != 4 {
		t.Fatalf("Requests() = %d after a rejected batch of 3, want 4", got)
	}
	if got := cli.CacheHits(); got != 0 {
		t.Fatalf("CacheHits() = %d, want 0 (nothing succeeded)", got)
	}

	// Validation rejection (400): counted too.
	srv := New(Options{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cli2 := NewClient(hs.URL)
	if _, err := cli2.Run(&JobRequest{}); err == nil {
		t.Fatal("Run with no sources succeeded")
	}
	if got := cli2.Requests(); got != 1 {
		t.Fatalf("Requests() = %d after a validation rejection, want 1", got)
	}
}

// TestClientCountsFailedJobs: a job the server admits but that fails to
// simulate comes back as an error from Run — and is still a counted
// submission.
func TestClientCountsFailedJobs(t *testing.T) {
	srv := New(Options{
		runJob: func(j *Job) ([]byte, error) {
			return nil, errors.New("synthetic simulation failure")
		},
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	cli := NewClient(hs.URL)
	_, err := cli.Run(fakeReq("t", 1))
	if err == nil || !strings.Contains(err.Error(), "synthetic simulation failure") {
		t.Fatalf("Run of a failing job: err = %v, want the job failure surfaced", err)
	}
	if got := cli.Requests(); got != 1 {
		t.Fatalf("Requests() = %d after a failed job, want 1", got)
	}
	if got := cli.CacheHits(); got != 0 {
		t.Fatalf("CacheHits() = %d, want 0", got)
	}
}
