package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"dsmdist/internal/core"
	"dsmdist/internal/hostpool"
	"dsmdist/internal/workloads"
)

func transposeReq() *JobRequest {
	return &JobRequest{
		Sources: map[string]string{"t.f": workloads.Transpose(16, 1, workloads.Reshaped)},
		Machine: "tiny",
		Procs:   2,
	}
}

// fakeReq builds a valid request whose job key is unique to (tenant, n);
// used with the runJob test hook, so the sources never reach a compiler.
func fakeReq(tenant string, n int) *JobRequest {
	return &JobRequest{
		Sources: map[string]string{"x.f": fmt.Sprintf("job %s/%d", tenant, n)},
		Machine: "tiny",
		Tenant:  tenant,
	}
}

func waitDone(t *testing.T, s *Server, j *Job) {
	t.Helper()
	select {
	case <-s.Done(j):
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never finished", j.ID)
	}
}

// waitStats polls the server counters until cond holds.
func waitStats(t *testing.T, s *Server, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(s.ServerStats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("server never reached expected state: %+v", s.ServerStats())
}

// TestServerResultCacheAndRestart is the service's core contract: the first
// submission simulates, every identical later one — same server or a fresh
// server over the same store directory — is served byte-identical from the
// content-addressed cache with no simulation executed.
func TestServerResultCacheAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator run")
	}
	dir := t.TempDir()
	store, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Store: store})

	j1, attached, err := srv.Submit(transposeReq())
	if err != nil {
		t.Fatal(err)
	}
	if attached {
		t.Fatal("first submission reported as coalesced")
	}
	waitDone(t, srv, j1)
	if j1.State != StateDone || j1.Cached {
		t.Fatalf("first job: state=%s cached=%v err=%q", j1.State, j1.Cached, j1.Err)
	}
	var doc core.ResultDoc
	if err := json.Unmarshal(j1.Result, &doc); err != nil {
		t.Fatalf("result is not a ResultDoc: %v", err)
	}
	if doc.V != core.ResultDocVersion || doc.Cycles <= 0 || doc.Procs != 2 {
		t.Fatalf("bad result doc: v=%d cycles=%d procs=%d", doc.V, doc.Cycles, doc.Procs)
	}

	// Identical submission: served from the store, byte-identical, no new
	// simulation.
	j2, _, err := srv.Submit(transposeReq())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv, j2)
	if !j2.Cached || j2.State != StateDone {
		t.Fatalf("second job not served from cache: state=%s cached=%v", j2.State, j2.Cached)
	}
	if !bytes.Equal(j1.Result, j2.Result) {
		t.Fatal("cached result document differs from the original")
	}
	if n := srv.Simulations(); n != 1 {
		t.Fatalf("simulations = %d, want 1 (second run must be a cache hit)", n)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	// "Daemon restart": a new server over a reopened store directory.
	store2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Options{Store: store2})
	j3, _, err := srv2.Submit(transposeReq())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv2, j3)
	if !j3.Cached || !bytes.Equal(j3.Result, j1.Result) {
		t.Fatal("result did not survive the restart byte-identical")
	}
	if n := srv2.Simulations(); n != 0 {
		t.Fatalf("restarted server ran %d simulations, want 0", n)
	}
}

// TestServerCoalescing: N concurrent identical submissions run exactly one
// simulation — the rest attach to the in-flight job.
func TestServerCoalescing(t *testing.T) {
	release := make(chan struct{})
	srv := New(Options{
		runJob: func(j *Job) ([]byte, error) {
			<-release
			return []byte(`{"v":1}`), nil
		},
	})

	req := fakeReq("default", 0)
	first, attached, err := srv.Submit(req)
	if err != nil || attached {
		t.Fatalf("first submit: attached=%v err=%v", attached, err)
	}
	waitStats(t, srv, func(st Stats) bool { return st.Running == 1 })

	const n = 8
	for i := 0; i < n; i++ {
		j, att, err := srv.Submit(fakeReq("default", 0))
		if err != nil {
			t.Fatal(err)
		}
		if j != first || !att {
			t.Fatalf("submission %d did not coalesce onto the in-flight job", i)
		}
	}
	close(release)
	waitDone(t, srv, first)
	if first.State != StateDone || first.Coalesced != n {
		t.Fatalf("state=%s coalesced=%d, want done/%d", first.State, first.Coalesced, n)
	}
	if sims := srv.Simulations(); sims != 1 {
		t.Fatalf("simulations = %d, want exactly 1 for %d identical submissions", sims, n+1)
	}
}

// TestServerTenantLimit: mixed-tenant submissions never exceed the
// per-tenant running cap, and both tenants make progress side by side.
func TestServerTenantLimit(t *testing.T) {
	prev := hostpool.SetBudget(16)
	defer hostpool.SetBudget(prev)

	block := make(chan struct{})
	srv := New(Options{
		TenantLimit: 2,
		runJob: func(j *Job) ([]byte, error) {
			<-block
			return []byte(`{"v":1}`), nil
		},
	})

	var jobs []*Job
	for _, tenant := range []string{"a", "b"} {
		for i := 0; i < 6; i++ {
			j, _, err := srv.Submit(fakeReq(tenant, i))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
	}

	// Steady state under blocked jobs: exactly the cap running per tenant.
	waitStats(t, srv, func(st Stats) bool { return st.Running == 4 })
	srv.mu.Lock()
	a, b := srv.tenantRunning["a"], srv.tenantRunning["b"]
	srv.mu.Unlock()
	if a != 2 || b != 2 {
		t.Fatalf("running per tenant a=%d b=%d, want 2/2 (limit 2)", a, b)
	}

	// Drain through: the limit must hold for every later wave too.
	close(block)
	for _, j := range jobs {
		waitDone(t, srv, j)
		if j.State != StateDone {
			t.Fatalf("job %s: state=%s err=%q", j.ID, j.State, j.Err)
		}
	}
	if sims := srv.Simulations(); sims != int64(len(jobs)) {
		t.Fatalf("simulations = %d, want %d distinct jobs", sims, len(jobs))
	}
	if hostpool.InUse() != 0 {
		t.Fatalf("hostpool workers leaked: %d in use", hostpool.InUse())
	}
}

// TestServerQueueFull: a full queue rejects with ErrQueueFull; admitted
// jobs still finish.
func TestServerQueueFull(t *testing.T) {
	release := make(chan struct{})
	srv := New(Options{
		MaxQueue:    1,
		TenantLimit: 1,
		runJob: func(j *Job) ([]byte, error) {
			<-release
			return []byte(`{"v":1}`), nil
		},
	})
	j1, _, err := srv.Submit(fakeReq("t", 1)) // runs
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv, func(st Stats) bool { return st.Running == 1 })
	j2, _, err := srv.Submit(fakeReq("t", 2)) // queued (tenant limit 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Submit(fakeReq("t", 3)); err != ErrQueueFull {
		t.Fatalf("third submit: err=%v, want ErrQueueFull", err)
	}
	close(release)
	waitDone(t, srv, j1)
	waitDone(t, srv, j2)
}

// TestServerDrain: Drain blocks until every admitted (running and queued)
// job has finished, and later submissions are refused.
func TestServerDrain(t *testing.T) {
	srv := New(Options{
		TenantLimit: 1,
		runJob: func(j *Job) ([]byte, error) {
			time.Sleep(5 * time.Millisecond)
			return []byte(`{"v":1}`), nil
		},
	})
	var jobs []*Job
	for i := 0; i < 4; i++ { // limit 1: three of these sit in the queue
		j, _, err := srv.Submit(fakeReq("t", i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		select {
		case <-srv.Done(j):
		default:
			t.Fatalf("Drain returned with job %s unfinished (state %s)", j.ID, j.State)
		}
		if j.State != StateDone {
			t.Fatalf("job %s drained in state %s", j.ID, j.State)
		}
	}
	if _, _, err := srv.Submit(fakeReq("t", 99)); err != ErrDraining {
		t.Fatalf("post-drain submit: err=%v, want ErrDraining", err)
	}
}

// TestServerValidation: bad requests are rejected at submission, never
// queued to fail later.
func TestServerValidation(t *testing.T) {
	srv := New(Options{})
	bad := []*JobRequest{
		{},
		{Sources: map[string]string{"x.f": "p"}, Machine: "cray"},
		{Sources: map[string]string{"x.f": "p"}, Procs: -1},
		{Sources: map[string]string{"x.f": "p"}, Policy: "random"},
		{Sources: map[string]string{"x.f": "p"}, Opt: "O9"},
		{Sources: map[string]string{"x.f": "p"}, Redist: "sideways"},
		{Sources: map[string]string{"x.f": "p"}, Quantum: -5},
	}
	for i, req := range bad {
		if _, _, err := srv.Submit(req); err == nil {
			t.Errorf("bad request %d was admitted", i)
		}
	}
}
