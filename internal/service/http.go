// HTTP surface of the simulation service:
//
//	POST /jobs            submit a JobRequest; blocks until done unless
//	                      "nowait" — returns a JobView either way
//	POST /batch           submit a BatchRequest: many specs sharing
//	                      defaults, admitted atomically (all-or-429) —
//	                      returns per-element JobViews in request order
//	GET  /jobs/{id}       job status (+ result document when done);
//	                      "?wait=1" blocks until the job finishes
//	GET  /jobs/{id}/snapshot  live obs snapshot of a running job
//	GET  /jobs/{id}/series    cycle-sampled v=1 series rows as JSONL,
//	                      chunk-flushed while the job runs —
//	                      byte-identical to a local -serve series file;
//	                      "?nofollow=1" returns the rows so far and closes
//	GET  /jobs/{id}/      the self-contained live dashboard, pointed at
//	                      this job's snapshot/series
//	GET  /stats           server counters (queue, cache, store)
//	GET  /healthz         liveness probe
//
// Handlers snapshot job state under the server mutex and never touch a
// running simulation's mutable state (the snapshot and series endpoints
// serve the recorder's cached marshaled bytes/rows, the same
// immutable-state rule as the PR 6 -serve handlers).
package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"dsmdist/internal/obs"
)

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, attached, err := s.Submit(&req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !req.NoWait {
		select {
		case <-s.Done(j):
		case <-r.Context().Done():
			// Client went away; the job keeps running (its result is
			// cached for the retry).
			writeError(w, http.StatusRequestTimeout, r.Context().Err())
			return
		}
	}
	writeJSON(w, http.StatusOK, s.View(j, attached))
}

// handleBatch is POST /batch: atomic all-or-429 admission of a whole
// batch, per-element JobViews in request order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs, attached, err := s.SubmitBatch(&req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !req.NoWait {
		for _, j := range jobs {
			select {
			case <-s.Done(j):
			case <-r.Context().Done():
				// Client went away; the jobs keep running (their results
				// are cached for the retry).
				writeError(w, http.StatusRequestTimeout, r.Context().Err())
				return
			}
		}
	}
	view := BatchView{V: 1, Jobs: make([]JobView, len(jobs))}
	for i, j := range jobs {
		view.Jobs[i] = s.View(j, attached[i])
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	j, ok := s.Job(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	switch sub {
	case "":
		if strings.HasSuffix(r.URL.Path, "/") {
			// GET /jobs/{id}/ — the self-contained dashboard. Its relative
			// snapshot/series fetches resolve under this job's path.
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			w.Write([]byte(obs.DashboardHTML()))
			return
		}
		if r.URL.Query().Get("wait") != "" {
			select {
			case <-s.Done(j):
			case <-r.Context().Done():
				writeError(w, http.StatusRequestTimeout, r.Context().Err())
				return
			}
		}
		writeJSON(w, http.StatusOK, s.View(j, false))
	case "snapshot":
		s.mu.Lock()
		rec, snap := j.rec, j.snap
		s.mu.Unlock()
		var buf []byte
		if rec != nil {
			buf = rec.SnapshotJSON()
		} else if snap != nil {
			buf = snap // finished job: the retained final snapshot
		}
		if buf == nil {
			writeError(w, http.StatusServiceUnavailable,
				errors.New("service: no live snapshot (job not running, or no sample yet)"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	case "series":
		s.streamSeries(w, r, j)
	default:
		http.NotFound(w, r)
	}
}

// streamSeries is GET /jobs/{id}/series: the job's cycle-sampled series
// rows as JSONL, chunk-flushed as the run emits them. The bytes are
// byte-identical to what a local `dsmrun -series`/-serve run of the same
// spec writes: same recorder, same simulated-clock watermark rule, same
// row framing — the stream is just the series file delivered
// incrementally. With ?nofollow=1 the rows so far are returned and the
// response closes (the dashboard's poll mode). A submission served from
// the result cache never ran here and so has no series.
func (s *Server) streamSeries(w http.ResponseWriter, r *http.Request, j *Job) {
	// Wait for the job's recorder to exist: a queued job has none yet,
	// and connecting before the run starts is the common case when the
	// submission was nowait.
	var rec *obs.Recorder
	var retained []json.RawMessage
	for {
		s.mu.Lock()
		rec, retained = j.rec, j.series
		state := j.State
		s.mu.Unlock()
		if rec != nil || retained != nil {
			break
		}
		if state == StateDone || state == StateFailed {
			writeError(w, http.StatusGone,
				errors.New("service: job has no series (served from cache, or its series has been pruned)"))
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	writeRows := func(rows []json.RawMessage) {
		for _, row := range rows {
			w.Write(row)
			w.Write([]byte("\n"))
		}
	}
	if rec == nil {
		// Finished job with retained rows: emit them all and close.
		writeRows(retained)
		return
	}
	flusher, _ := w.(http.Flusher)
	nofollow := r.URL.Query().Get("nofollow") != ""
	n := 0
	for {
		rows, done := rec.SeriesRowsFrom(n)
		writeRows(rows)
		n += len(rows)
		if len(rows) > 0 && flusher != nil {
			flusher.Flush()
		}
		if done || nofollow {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.Done(j):
			// Drain whatever landed after the last poll — the final row
			// is published before the run returns.
			rows, _ := rec.SeriesRowsFrom(n)
			writeRows(rows)
			return
		case <-time.After(25 * time.Millisecond):
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ServerStats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok\n"))
}
