// HTTP surface of the simulation service:
//
//	POST /jobs            submit a JobRequest; blocks until done unless
//	                      "nowait" — returns a JobView either way
//	GET  /jobs/{id}       job status (+ result document when done)
//	GET  /jobs/{id}/snapshot  live obs snapshot of a running job
//	GET  /stats           server counters (queue, cache, store)
//	GET  /healthz         liveness probe
//
// Handlers snapshot job state under the server mutex and never touch a
// running simulation's mutable state (the snapshot endpoint serves the
// recorder's cached marshaled bytes, the same immutable-state rule as the
// PR 6 -serve handlers).
package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, attached, err := s.Submit(&req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !req.NoWait {
		select {
		case <-s.Done(j):
		case <-r.Context().Done():
			// Client went away; the job keeps running (its result is
			// cached for the retry).
			writeError(w, http.StatusRequestTimeout, r.Context().Err())
			return
		}
	}
	writeJSON(w, http.StatusOK, s.View(j, attached))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	j, ok := s.Job(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, s.View(j, false))
	case "snapshot":
		s.mu.Lock()
		rec := j.rec
		s.mu.Unlock()
		var buf []byte
		if rec != nil {
			buf = rec.SnapshotJSON()
		}
		if buf == nil {
			writeError(w, http.StatusServiceUnavailable,
				errors.New("service: no live snapshot (job not running, or no sample yet)"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ServerStats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok\n"))
}
