// Package service is the long-running simulation service behind cmd/dsmd:
// an HTTP/JSON server that accepts (sources, machine, policy, options)
// jobs, keys them through the content-addressed core.JobKey contract, and
// serves results from a two-level cache — an in-memory bounded
// core.BuildCache for compiled images and a persistent disk Store
// (store.go) holding both compile entries and run-result documents.
//
// The simulator is deterministic (bit-identical across engines and tiers),
// so a run result is a pure function of its JobSpec: N users submitting
// the same job cost one simulation, ever. Three mechanisms enforce that:
//
//   - the result store: a finished job's canonical ResultDoc bytes are
//     persisted under its JobKey and replayed for every later submission
//     (across daemon restarts);
//   - in-flight coalescing: concurrent identical submissions attach to the
//     one queued/running job for that key instead of enqueueing again;
//   - the compile cache: distinct jobs sharing sources+options share one
//     compile (memory first, disk behind it).
//
// Admission is a bounded FIFO queue with per-tenant concurrency limits;
// running jobs draw host workers from the shared internal/hostpool budget,
// so a dsmd colocated with local sweeps never oversubscribes the machine.
package service

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"dsmdist/internal/codegen"
	"dsmdist/internal/core"
	"dsmdist/internal/exec"
	"dsmdist/internal/hostpool"
	"dsmdist/internal/link"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
	"dsmdist/internal/xform"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Submission errors the HTTP layer maps to status codes.
var (
	ErrQueueFull = errors.New("service: job queue is full")
	ErrDraining  = errors.New("service: server is draining")
)

// JobRequest is the POST /jobs body. Zero values select the documented
// defaults, which match a plain local `dsmrun -json` invocation — so a
// remote run's result document is byte-identical to the local one.
type JobRequest struct {
	// Sources is the named Fortran source set (required).
	Sources map[string]string `json:"sources"`
	// Machine is the machine preset: origin2000 | scaled | tiny
	// (default scaled).
	Machine string `json:"machine,omitempty"`
	// Procs is the simulated processor count (default 1).
	Procs int `json:"procs,omitempty"`
	// Policy is the default page policy (default first-touch).
	Policy string `json:"policy,omitempty"`
	// Opt is the optimization level, O0..O3 (default O3).
	Opt string `json:"opt,omitempty"`
	// RuntimeChecks enables the §6 runtime argument checks (default true,
	// matching dsmrun; sweeps submit false).
	RuntimeChecks *bool `json:"runtime_checks,omitempty"`
	// Quantum overrides the interleave granularity (0 = default).
	Quantum int `json:"quantum,omitempty"`
	// Redist is the c$redistribute model: scheduled | serial
	// (default scheduled).
	Redist string `json:"redist,omitempty"`
	// Engine and Tier pick the host execution engine/tier (default auto).
	// They are NOT part of the cache key: results are bit-identical
	// across all of them.
	Engine string `json:"engine,omitempty"`
	Tier   string `json:"tier,omitempty"`
	// Tenant attributes the job for per-tenant concurrency limiting
	// (default "default").
	Tenant string `json:"tenant,omitempty"`
	// Sample sets the live-series sampling interval in simulated cycles
	// (0 = the obs default). Host-side observability only: like Engine and
	// Tier it is NOT part of the cache key, and a submission served from
	// the result cache has no series of its own.
	Sample int64 `json:"sample,omitempty"`
	// NoWait makes POST /jobs return immediately with the queued job
	// instead of blocking until it finishes.
	NoWait bool `json:"nowait,omitempty"`
}

// jobSpec is a validated request: the canonical cache-key spec plus the
// host-side knobs that are deliberately outside it.
type jobSpec struct {
	core.JobSpec
	engine exec.Engine
	tier   exec.Tier
	sample int64
	mach   func(int) *machine.Config
}

// Job is one admitted submission. Mutable fields are guarded by the
// server mutex; done is closed exactly once when the job leaves
// queued/running.
type Job struct {
	ID        string
	Key       string
	Tenant    string
	State     State
	Cached    bool // served straight from the result store
	Coalesced int  // later submissions that attached to this in-flight job
	Err       string
	Result    []byte // canonical ResultDoc bytes (done jobs)

	spec jobSpec
	rec  *obs.Recorder // live while running; feeds /jobs/{id}/snapshot|series

	// Retained observability artifacts of a finished simulation (bounded
	// by maxSeriesJobs): the full series rows and the final snapshot
	// document, so /jobs/{id}/series and the job dashboard keep working
	// after the run — the same after-the-run behavior a local -serve has.
	series []json.RawMessage
	snap   []byte

	done chan struct{}
}

// JobView is the JSON rendering of a Job (API responses). Cached and
// Coalesced are per-submission: Cached means this submission was served
// from the persistent result cache; Coalesced means it attached to an
// identical job already in flight. Either way no new simulation was spent
// on the submission.
type JobView struct {
	V         int             `json:"v"`
	ID        string          `json:"id"`
	Key       string          `json:"key"`
	Tenant    string          `json:"tenant"`
	State     State           `json:"state"`
	Cached    bool            `json:"cached"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// Options configure a Server.
type Options struct {
	// Store persists compile and result entries (nil = memory only).
	Store *Store
	// MaxQueue bounds queued-but-not-running jobs (default 256).
	MaxQueue int
	// TenantLimit caps concurrently running jobs per tenant (default 2).
	TenantLimit int
	// MaxConcurrent caps concurrently running jobs across all tenants
	// (0 = governed by the hostpool budget alone).
	MaxConcurrent int
	// CompileCacheEntries bounds the in-memory compile cache (default 64).
	CompileCacheEntries int

	// runJob replaces the build-and-simulate step (tests: concurrency
	// and drain behavior without real simulations). It still counts as a
	// simulation.
	runJob func(j *Job) ([]byte, error)
}

// Server is the simulation service.
type Server struct {
	opts   Options
	builds *core.BuildCache

	mu            sync.Mutex
	cond          *sync.Cond // signaled when a job finishes (drain waiters)
	jobs          map[string]*Job
	inflight      map[string]*Job // queued/running, by JobKey — the coalescing map
	queue         []*Job          // FIFO of queued jobs
	doneOrder     []string        // finished job IDs, oldest first (retention)
	seriesOrder   []string        // finished jobs with retained series, oldest first
	running       int
	tenantRunning map[string]int
	nextID        int64
	draining      bool
	simulations   int64 // actual simulations executed (cache-effectiveness counter)

	// Scheduler serialization: exactly one schedule() loop runs at a
	// time; concurrent wakers set schedWake and the active loop re-scans.
	scheduling bool
	schedWake  bool
}

// maxDoneJobs bounds retained finished job records; older ones are pruned
// (their results live on in the store).
const maxDoneJobs = 4096

// maxSeriesJobs bounds finished jobs whose series rows and final snapshot
// stay resident (rows grow with run length; results are tiny by
// comparison and get the larger maxDoneJobs bound).
const maxSeriesJobs = 64

// New builds a Server.
func New(opts Options) *Server {
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 256
	}
	if opts.TenantLimit <= 0 {
		opts.TenantLimit = 2
	}
	if opts.CompileCacheEntries <= 0 {
		opts.CompileCacheEntries = 64
	}
	s := &Server{
		opts:          opts,
		builds:        core.NewBuildCacheLimited(opts.CompileCacheEntries),
		jobs:          map[string]*Job{},
		inflight:      map[string]*Job{},
		tenantRunning: map[string]int{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Simulations reports how many submissions actually ran a simulation (as
// opposed to being served from the result cache or coalesced onto an
// in-flight job).
func (s *Server) Simulations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simulations
}

// validate turns a request into a jobSpec, rejecting bad fields early so
// queued jobs cannot fail on spelling.
func validate(req *JobRequest) (jobSpec, error) {
	var spec jobSpec
	if len(req.Sources) == 0 {
		return spec, fmt.Errorf("service: job has no sources")
	}
	machName := req.Machine
	if machName == "" {
		machName = "scaled"
	}
	switch machName {
	case "origin2000":
		spec.mach = machine.Origin2000
	case "scaled":
		spec.mach = machine.Scaled
	case "tiny":
		spec.mach = machine.Tiny
	default:
		return spec, fmt.Errorf("service: unknown machine %q (accepted: origin2000, scaled, tiny)", machName)
	}
	procs := req.Procs
	if procs == 0 {
		procs = 1
	}
	if procs < 1 || procs > 1024 {
		return spec, fmt.Errorf("service: bad processor count %d", procs)
	}
	policy, err := ospage.ParsePolicy(orDefault(req.Policy, "first-touch"))
	if err != nil {
		return spec, fmt.Errorf("service: %w", err)
	}
	var opt xform.Options
	switch orDefault(req.Opt, "O3") {
	case "O0":
		opt = xform.O0()
	case "O1":
		opt = xform.O1()
	case "O2":
		opt = xform.O2()
	case "O3":
		opt = xform.O3()
	default:
		return spec, fmt.Errorf("service: unknown opt level %q (accepted: O0, O1, O2, O3)", req.Opt)
	}
	var redistSerial bool
	switch orDefault(req.Redist, "scheduled") {
	case "scheduled":
	case "serial":
		redistSerial = true
	default:
		return spec, fmt.Errorf("service: unknown redist model %q (accepted: scheduled, serial)", req.Redist)
	}
	engine, err := exec.ParseEngine(orDefault(req.Engine, "auto"))
	if err != nil {
		return spec, fmt.Errorf("service: %w", err)
	}
	tier, err := exec.ParseTier(orDefault(req.Tier, "auto"))
	if err != nil {
		return spec, fmt.Errorf("service: %w", err)
	}
	checks := true
	if req.RuntimeChecks != nil {
		checks = *req.RuntimeChecks
	}
	if req.Quantum < 0 {
		return spec, fmt.Errorf("service: bad quantum %d", req.Quantum)
	}
	if req.Sample < 0 {
		return spec, fmt.Errorf("service: bad sample interval %d", req.Sample)
	}

	spec.JobSpec = core.JobSpec{
		Sources:       req.Sources,
		Opt:           opt,
		RuntimeChecks: checks,
		Machine:       machName,
		Procs:         procs,
		Policy:        policy,
		Quantum:       req.Quantum,
		RedistSerial:  redistSerial,
	}
	spec.engine, spec.tier = engine, tier
	spec.sample = req.Sample
	return spec, nil
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// Submit admits a job: result-cache hit, coalesce onto an in-flight
// identical job, or enqueue. The returned Job may already be done (cache
// hit); otherwise wait on Done(job). attached reports that this
// submission coalesced onto a job another submission started.
func (s *Server) Submit(req *JobRequest) (j *Job, attached bool, err error) {
	spec, err := validate(req)
	if err != nil {
		return nil, false, err
	}
	key := core.JobKey(spec.JobSpec)
	tenant := orDefault(req.Tenant, "default")

	// Fast path: a persisted result document. Checked before the inflight
	// map so restarts and cross-user sharing both hit; the race where an
	// identical job finishes between this check and the lock below only
	// costs a coalesced wait, never a duplicate simulation.
	if s.opts.Store != nil {
		if data, ok := s.opts.Store.Get(KindResult, key); ok {
			s.mu.Lock()
			if s.draining {
				s.mu.Unlock()
				return nil, false, ErrDraining
			}
			j := s.newJobLocked(key, tenant, spec)
			j.State = StateDone
			j.Cached = true
			j.Result = data
			close(j.done)
			s.retireLocked(j)
			s.mu.Unlock()
			return j, false, nil
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, ErrDraining
	}
	if j := s.inflight[key]; j != nil {
		j.Coalesced++
		s.mu.Unlock()
		return j, true, nil
	}
	if len(s.queue) >= s.opts.MaxQueue {
		s.mu.Unlock()
		return nil, false, ErrQueueFull
	}
	j = s.newJobLocked(key, tenant, spec)
	j.State = StateQueued
	s.inflight[key] = j
	s.queue = append(s.queue, j)
	s.mu.Unlock()
	s.schedule()
	return j, false, nil
}

// newJobLocked allocates a job record. Callers hold mu.
func (s *Server) newJobLocked(key, tenant string, spec jobSpec) *Job {
	s.nextID++
	j := &Job{
		ID:     fmt.Sprintf("j%d", s.nextID),
		Key:    key,
		Tenant: tenant,
		spec:   spec,
		done:   make(chan struct{}),
	}
	s.jobs[j.ID] = j
	return j
}

// retireLocked records a finished job for retention pruning. Callers hold
// mu.
func (s *Server) retireLocked(j *Job) {
	s.doneOrder = append(s.doneOrder, j.ID)
	for len(s.doneOrder) > maxDoneJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// Done returns the channel closed when j finishes.
func (s *Server) Done(j *Job) <-chan struct{} { return j.done }

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// View snapshots a job for JSON rendering. attached marks the view of a
// submission that coalesced onto this job.
func (s *Server) View(j *Job, attached bool) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return JobView{
		V: 1, ID: j.ID, Key: j.Key, Tenant: j.Tenant, State: j.State,
		Cached: j.Cached, Coalesced: attached, Error: j.Err,
		Result: json.RawMessage(j.Result),
	}
}

// nextRunnableLocked returns the first queued job admissible under the
// per-tenant and global caps, with its queue index. Callers hold mu.
func (s *Server) nextRunnableLocked() (*Job, int) {
	if s.opts.MaxConcurrent > 0 && s.running >= s.opts.MaxConcurrent {
		return nil, 0
	}
	for qi, j := range s.queue {
		if s.tenantRunning[j.Tenant] >= s.opts.TenantLimit {
			continue
		}
		return j, qi
	}
	return nil, 0
}

// schedule starts every currently admissible queued job. Admission:
// FIFO order, per-tenant running cap, optional global cap, and — beyond
// the first concurrently running job, which rides on the server's own
// implicit hostpool worker — one host-worker grant per job from the shared
// hostpool budget, so service jobs and colocated local sweeps never
// oversubscribe the machine. Jobs denied a grant stay queued; every job
// completion re-runs the scheduler, so progress is guaranteed (the first
// slot never needs a grant).
//
// hostpool calls happen OUTSIDE the server mutex: the pool has its own
// lock, and coupling the two on every job boundary invites lock-order
// inversions as either side grows. To keep admission race-free without
// holding mu across Acquire, the candidate job is pulled off the queue
// before unlocking (reserving it) and exactly one schedule loop runs at a
// time — concurrent wakers set schedWake and the active loop re-scans.
func (s *Server) schedule() {
	s.mu.Lock()
	if s.scheduling {
		s.schedWake = true
		s.mu.Unlock()
		return
	}
	s.scheduling = true
	for {
		s.schedWake = false
		j, qi := s.nextRunnableLocked()
		if j == nil {
			break
		}
		// Reserve the job so no concurrent waker can consider it while
		// the mutex is released for the pool call.
		s.queue = append(s.queue[:qi], s.queue[qi+1:]...)
		grant := 0
		if s.running > 0 {
			s.mu.Unlock()
			grant = hostpool.Acquire(1)
			s.mu.Lock()
			if grant == 0 {
				// Pool dry: put the job back where it was (only tail
				// appends can have happened meanwhile) and stop; the next
				// completion releases a grant and re-runs the scheduler.
				s.queue = append(s.queue[:qi], append([]*Job{j}, s.queue[qi:]...)...)
				break
			}
		}
		s.running++
		s.tenantRunning[j.Tenant]++
		j.State = StateRunning
		s.simulations++
		go s.runJob(j, grant)
	}
	s.scheduling = false
	wake := s.schedWake
	s.mu.Unlock()
	if wake {
		// A waker arrived in the window after the final scan; its queue
		// state was never examined, so scan again.
		s.schedule()
	}
}

// runJob executes one job and publishes its outcome.
func (s *Server) runJob(j *Job, grant int) {
	var data []byte
	var err error
	if s.opts.runJob != nil {
		data, err = s.opts.runJob(j)
	} else {
		data, err = s.simulate(j)
	}

	s.mu.Lock()
	if err != nil {
		j.State = StateFailed
		j.Err = err.Error()
	} else {
		j.State = StateDone
		j.Result = data
	}
	if j.rec != nil {
		// Retain the run's observability artifacts so the series and
		// dashboard endpoints outlive the run (bounded below).
		j.series = j.rec.SeriesRows()
		j.snap = j.rec.SnapshotJSON()
		j.rec = nil
		s.seriesOrder = append(s.seriesOrder, j.ID)
		for len(s.seriesOrder) > maxSeriesJobs {
			if old := s.jobs[s.seriesOrder[0]]; old != nil {
				old.series, old.snap = nil, nil
			}
			s.seriesOrder = s.seriesOrder[1:]
		}
	}
	delete(s.inflight, j.Key)
	s.running--
	s.tenantRunning[j.Tenant]--
	if s.tenantRunning[j.Tenant] == 0 {
		delete(s.tenantRunning, j.Tenant)
	}
	s.retireLocked(j)
	close(j.done)
	s.cond.Broadcast()
	s.mu.Unlock()
	hostpool.Release(grant)
	s.schedule()
}

// simulate is the real build-and-run step: compile through the two-level
// compile cache, execute with a live recorder (feeding /jobs/{id}/snapshot
// and /jobs/{id}/series — observability never changes simulated cycles),
// and persist the canonical result document.
func (s *Server) simulate(j *Job) ([]byte, error) {
	img, err := s.buildImage(j.spec)
	if err != nil {
		return nil, err
	}
	cfg := j.spec.mach(j.spec.Procs)
	rec := obs.NewRecorder(cfg)
	rec.EnableSeries(j.spec.sample, nil)
	s.mu.Lock()
	j.rec = rec
	s.mu.Unlock()

	run, err := core.Run(img, cfg, core.RunOptions{
		Policy:       j.spec.Policy,
		Quantum:      j.spec.Quantum,
		RedistSerial: j.spec.RedistSerial,
		Engine:       j.spec.engine,
		Tier:         j.spec.tier,
		Recorder:     rec,
	})
	if err != nil {
		return nil, err
	}
	data, err := core.NewResultDoc(cfg, j.spec.Policy, run).Marshal()
	if err != nil {
		return nil, err
	}
	if s.opts.Store != nil {
		if err := s.opts.Store.Put(KindResult, j.Key, data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// buildImage compiles through the in-memory bounded BuildCache with the
// disk store behind it: memory hit → clone; disk hit → gob decode; miss →
// compile, persist, cache.
func (s *Server) buildImage(spec jobSpec) (*link.Image, error) {
	ck := core.CompileKey(spec.Sources, spec.Opt, spec.RuntimeChecks)
	return s.builds.Get(ck, func() (*link.Image, error) {
		if s.opts.Store != nil {
			if data, ok := s.opts.Store.Get(KindCompile, ck); ok {
				res := &codegen.Result{}
				if err := gob.NewDecoder(bytes.NewReader(data)).Decode(res); err == nil {
					return &link.Image{Res: res}, nil
				}
				// Corrupt payload: fall through and recompile over it.
			}
		}
		tc := core.NewAt(spec.Opt)
		tc.RuntimeChecks = spec.RuntimeChecks
		img, err := tc.Build(spec.Sources)
		if err != nil {
			return nil, err
		}
		if s.opts.Store != nil {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(img.Res); err == nil {
				if err := s.opts.Store.Put(KindCompile, ck, buf.Bytes()); err != nil {
					return nil, err
				}
			}
		}
		return img, nil
	})
}

// Drain stops admission and blocks until every queued and running job has
// finished, then flushes the store — the SIGTERM path: a mid-job kill
// completes and persists the job instead of losing it.
func (s *Server) Drain() error {
	s.mu.Lock()
	s.draining = true
	for s.running > 0 || len(s.queue) > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
	if s.opts.Store != nil {
		return s.opts.Store.Close()
	}
	return nil
}

// Stats is the GET /stats document.
type Stats struct {
	V           int         `json:"v"`
	Jobs        int         `json:"jobs"`
	Queued      int         `json:"queued"`
	Running     int         `json:"running"`
	Simulations int64       `json:"simulations"`
	BuildHits   int64       `json:"build_hits"`
	BuildMisses int64       `json:"build_misses"`
	Draining    bool        `json:"draining"`
	Store       *StoreStats `json:"store,omitempty"`
}

// ServerStats snapshots the server counters.
func (s *Server) ServerStats() Stats {
	s.mu.Lock()
	st := Stats{
		V: 1, Jobs: len(s.jobs), Queued: len(s.queue), Running: s.running,
		Simulations: s.simulations, Draining: s.draining,
	}
	s.mu.Unlock()
	st.BuildHits, st.BuildMisses = s.builds.Stats()
	if s.opts.Store != nil {
		ss := s.opts.Store.Stats()
		st.Store = &ss
	}
	return st
}
