// Batched submission: POST /batch admits a whole sweep's worth of job
// specs in one request. Elements share defaults (tenant, machine,
// engine/tier, ...), are admitted atomically against the queue bound —
// either every element that needs a queue slot fits, or nothing is
// admitted and the whole batch gets 429 — and each element individually
// takes the cheapest path available: persisted result, coalesce onto an
// in-flight identical job (including an earlier element of the same
// batch), or enqueue. The response carries one JobView per element in
// request order, so a client can ship an entire dsmbench sweep or
// advisor verification fan-out as one round trip.
package service

import (
	"fmt"

	"dsmdist/internal/core"
)

// BatchRequest is the POST /batch body.
type BatchRequest struct {
	// Defaults supplies the value for any field an element leaves at its
	// zero value. Defaults.Sources is itself a default: an element with
	// no sources of its own inherits it.
	Defaults JobRequest `json:"defaults"`
	// Jobs are the batch elements (at least one).
	Jobs []JobRequest `json:"jobs"`
	// NoWait makes POST /batch return as soon as the batch is admitted
	// (cache-hit elements come back done, the rest queued/running)
	// instead of blocking until every element finishes.
	NoWait bool `json:"nowait,omitempty"`
}

// BatchView is the POST /batch response: one JobView per element, in
// request order.
type BatchView struct {
	V    int       `json:"v"`
	Jobs []JobView `json:"jobs"`
}

// merged resolves one batch element against the batch defaults: any field
// left at its zero value inherits the corresponding default.
func merged(def, el JobRequest) JobRequest {
	if el.Sources == nil {
		el.Sources = def.Sources
	}
	if el.Machine == "" {
		el.Machine = def.Machine
	}
	if el.Procs == 0 {
		el.Procs = def.Procs
	}
	if el.Policy == "" {
		el.Policy = def.Policy
	}
	if el.Opt == "" {
		el.Opt = def.Opt
	}
	if el.RuntimeChecks == nil {
		el.RuntimeChecks = def.RuntimeChecks
	}
	if el.Quantum == 0 {
		el.Quantum = def.Quantum
	}
	if el.Redist == "" {
		el.Redist = def.Redist
	}
	if el.Engine == "" {
		el.Engine = def.Engine
	}
	if el.Tier == "" {
		el.Tier = def.Tier
	}
	if el.Tenant == "" {
		el.Tenant = def.Tenant
	}
	if el.Sample == 0 {
		el.Sample = def.Sample
	}
	return el
}

// SubmitBatch admits a whole batch atomically. Every element is validated
// first (one bad element rejects the batch — nothing is admitted), then
// admission is all-or-nothing against the queue bound: the elements that
// genuinely need a queue slot — not a store hit, not coalescible onto an
// in-flight job or an earlier identical element of this batch — must all
// fit in the remaining space, or no job is created and ErrQueueFull comes
// back. The returned jobs parallel req.Jobs; attached[i] reports that
// element i coalesced onto a job another submission (or earlier element)
// started.
func (s *Server) SubmitBatch(req *BatchRequest) (jobs []*Job, attached []bool, err error) {
	if len(req.Jobs) == 0 {
		return nil, nil, fmt.Errorf("service: empty batch")
	}
	type element struct {
		spec   jobSpec
		key    string
		tenant string
		cached []byte // non-nil: persisted result document
	}
	els := make([]element, len(req.Jobs))
	for i := range req.Jobs {
		r := merged(req.Defaults, req.Jobs[i])
		spec, err := validate(&r)
		if err != nil {
			return nil, nil, fmt.Errorf("service: batch element %d: %w", i, err)
		}
		els[i].spec = spec
		els[i].key = core.JobKey(spec.JobSpec)
		els[i].tenant = orDefault(r.Tenant, "default")
	}
	// Store lookups outside the server mutex (the store has its own lock
	// and hits the disk for payloads); as with Submit, an identical job
	// finishing between this check and the admission below only costs a
	// coalesced wait, never a duplicate simulation.
	if s.opts.Store != nil {
		for i := range els {
			if data, ok := s.opts.Store.Get(KindResult, els[i].key); ok {
				els[i].cached = data
			}
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, nil, ErrDraining
	}
	// Count the queue slots this batch needs before creating anything, so
	// rejection leaves no trace (no job records, no inflight entries).
	need := 0
	dup := map[string]bool{}
	for i := range els {
		if els[i].cached != nil {
			continue
		}
		if _, ok := s.inflight[els[i].key]; ok {
			continue
		}
		if dup[els[i].key] {
			continue
		}
		dup[els[i].key] = true
		need++
	}
	if len(s.queue)+need > s.opts.MaxQueue {
		s.mu.Unlock()
		return nil, nil, ErrQueueFull
	}
	jobs = make([]*Job, len(els))
	attached = make([]bool, len(els))
	for i := range els {
		el := &els[i]
		if el.cached != nil {
			j := s.newJobLocked(el.key, el.tenant, el.spec)
			j.State = StateDone
			j.Cached = true
			j.Result = el.cached
			close(j.done)
			s.retireLocked(j)
			jobs[i] = j
			continue
		}
		// Earlier elements of this batch have already registered their
		// keys in inflight, so within-batch duplicates coalesce here too.
		if j := s.inflight[el.key]; j != nil {
			j.Coalesced++
			jobs[i], attached[i] = j, true
			continue
		}
		j := s.newJobLocked(el.key, el.tenant, el.spec)
		j.State = StateQueued
		s.inflight[el.key] = j
		s.queue = append(s.queue, j)
		jobs[i] = j
	}
	s.mu.Unlock()
	s.schedule()
	return jobs, attached, nil
}
