// The streaming identity contract: GET /jobs/{id}/series delivers exactly
// the bytes a local `dsmrun -series` run of the same spec writes — same
// recorder, same sampling watermark, same row framing — and the per-job
// dashboard/snapshot endpoints keep working after the run finishes.
package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dsmdist/internal/core"
	"dsmdist/internal/obs"
)

func TestSeriesEndpointMatchesLocalRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator run")
	}
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Store: store})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	req := transposeReq()
	req.Sample = 5000
	cli := NewClient(hs.URL)
	view, err := cli.Run(req)
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	// The finished job retains its series: the endpoint serves the full
	// row set.
	resp, remote := get("/jobs/" + view.ID + "/series")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET series: %s: %s", resp.Status, remote)
	}
	if len(remote) == 0 {
		t.Fatal("series endpoint returned no rows")
	}

	// A local run of the identical spec, series written to a buffer the
	// way dsmrun -series writes its file. validate() reproduces the exact
	// spec the server ran.
	spec, err := validate(req)
	if err != nil {
		t.Fatal(err)
	}
	tc := core.NewAt(spec.Opt)
	tc.RuntimeChecks = spec.RuntimeChecks
	img, err := tc.Build(spec.Sources)
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.mach(spec.Procs)
	rec := obs.NewRecorder(cfg)
	var local bytes.Buffer
	rec.EnableSeries(spec.sample, &local)
	if _, err := core.Run(img, cfg, core.RunOptions{
		Policy:       spec.Policy,
		Quantum:      spec.Quantum,
		RedistSerial: spec.RedistSerial,
		Engine:       spec.engine,
		Tier:         spec.tier,
		Recorder:     rec,
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote, local.Bytes()) {
		t.Fatalf("remote series differs from the local series file:\n--- remote\n%s\n--- local\n%s",
			remote, local.Bytes())
	}

	// Every row is v=1 and the last carries the final marker.
	lines := strings.Split(strings.TrimRight(string(remote), "\n"), "\n")
	var last struct {
		V     int  `json:"v"`
		Final bool `json:"final"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.V != obs.SeriesVersion || !last.Final {
		t.Fatalf("last row: v=%d final=%v, want v=%d final", last.V, last.Final, obs.SeriesVersion)
	}

	// The per-job dashboard and the retained final snapshot.
	resp, body := get("/jobs/" + view.ID + "/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("GET dashboard: %s, content-type %q", resp.Status, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "<html") {
		t.Fatal("dashboard response is not the HTML page")
	}
	resp, body = get("/jobs/" + view.ID + "/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot after the run: %s: %s", resp.Status, body)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Done || snap.Samples == 0 {
		t.Fatalf("retained snapshot: done=%v samples=%d, want a finished snapshot", snap.Done, snap.Samples)
	}

	// A submission served from the result cache never ran: no series.
	warm, err := cli.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("warm submission not served from the cache")
	}
	resp, body = get("/jobs/" + warm.ID + "/series")
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("GET series of a cached job: %s (%s), want 410 Gone", resp.Status, body)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}
