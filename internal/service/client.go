// Client side of the simulation service: dsmrun -remote and
// dsmadvise -remote submit jobs here instead of building and simulating
// locally, turning repeated work — most prominently the advisor's
// top-K × P verification fan-out — into shared cache hits.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Client talks to a dsmd server.
type Client struct {
	// Base is the server address, e.g. "http://127.0.0.1:8377".
	Base string
	// Tenant attributes this client's jobs (optional).
	Tenant string
	// HTTP is the transport (default: a client with no overall timeout —
	// simulations legitimately run long; rely on context/server limits).
	HTTP *http.Client

	// backoff is the base delay of the 429 retry loop (attempt i sleeps
	// (i+1)×backoff; 0 = 100ms). Tests shorten it.
	backoff time.Duration

	requests  atomic.Int64
	cacheHits atomic.Int64
}

// NewClient builds a client for a base URL ("host:port" gets "http://"
// prepended).
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{}}
}

// Requests and CacheHits report this client's submission accounting: a hit
// is a job served from the server's result cache or coalesced onto another
// submission's in-flight run — either way, no new simulation was spent on
// it.
func (c *Client) Requests() int64  { return c.requests.Load() }
func (c *Client) CacheHits() int64 { return c.cacheHits.Load() }

// Health probes /healthz.
func (c *Client) Health() error {
	resp, err := c.HTTP.Get(c.Base + "/healthz")
	if err != nil {
		return fmt.Errorf("service: %s unreachable: %w", c.Base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service: %s health check: %s", c.Base, resp.Status)
	}
	return nil
}

// post sends a JSON body, retrying 429 (a full queue is the one retryable
// admission failure; back off briefly instead of failing a whole sweep for
// a transient spike), and returns the response body and status.
func (c *Client) post(path string, body []byte) ([]byte, int, error) {
	base := c.backoff
	if base == 0 {
		base = 100 * time.Millisecond
	}
	var resp *http.Response
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = c.HTTP.Post(c.Base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, 0, fmt.Errorf("service: submit to %s: %w", c.Base, err)
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= 5 {
			break
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(time.Duration(attempt+1) * base)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("service: read response: %w", err)
	}
	return data, resp.StatusCode, nil
}

// statusError renders a non-OK response as an error.
func statusError(status int, data []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	text := http.StatusText(status)
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("service: %d %s: %s", status, text, e.Error)
	}
	return fmt.Errorf("service: %d %s: %s", status, text, strings.TrimSpace(string(data)))
}

// canonicalizeResult re-derives the canonical result encoding: the
// transport re-indents the nested result document to its depth in the
// JobView, so reformat back to 2-space indent + final newline — the exact
// bytes the server stored. Indent copies tokens verbatim, so this is a
// pure reformat.
func canonicalizeResult(view *JobView) error {
	if len(view.Result) == 0 {
		return nil
	}
	var doc bytes.Buffer
	if err := json.Indent(&doc, view.Result, "", "  "); err != nil {
		return fmt.Errorf("service: bad result document: %w", err)
	}
	doc.WriteByte('\n')
	view.Result = doc.Bytes()
	return nil
}

// finished converts a terminal view into the caller's result: a failed
// (or impossibly non-terminal) job becomes an error.
func finished(view *JobView) (*JobView, error) {
	if view.State == StateFailed {
		return nil, fmt.Errorf("service: job %s failed: %s", view.ID, view.Error)
	}
	if view.State != StateDone {
		return nil, fmt.Errorf("service: job %s ended in state %q", view.ID, view.State)
	}
	return view, nil
}

// Run submits a job and blocks until it finishes (req.NoWait is forced
// off), returning the job view with its result document. A failed job is
// returned as an error.
func (c *Client) Run(req *JobRequest) (*JobView, error) {
	// Count the submission attempt up front, whatever its fate: transport
	// errors, non-OK statuses, exhausted 429 retries and failed jobs must
	// all show up in Requests(), or the cache-hit ratio clients print
	// overstates the hits.
	c.requests.Add(1)
	req.NoWait = false
	if req.Tenant == "" {
		req.Tenant = c.Tenant
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	data, status, err := c.post("/jobs", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, statusError(status, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		return nil, fmt.Errorf("service: bad job response: %w", err)
	}
	if err := canonicalizeResult(&view); err != nil {
		return nil, err
	}
	if view.Cached || view.Coalesced {
		c.cacheHits.Add(1)
	}
	return finished(&view)
}

// RunBatch submits a whole batch in one POST /batch round trip. Admission
// is atomic (all-or-429 server side, with the same bounded retry as Run
// in front); every element counts toward Requests(), and elements served
// from the result cache or coalesced count toward CacheHits(). Views come
// back in request order with canonical result bytes. With req.NoWait the
// views may still be queued/running — WaitJob follows them to completion;
// without it, callers should still check per-element State (a failed
// element does not fail the batch call).
func (c *Client) RunBatch(req *BatchRequest) ([]JobView, error) {
	c.requests.Add(int64(len(req.Jobs)))
	if req.Defaults.Tenant == "" {
		req.Defaults.Tenant = c.Tenant
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	data, status, err := c.post("/batch", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, statusError(status, data)
	}
	var view BatchView
	if err := json.Unmarshal(data, &view); err != nil {
		return nil, fmt.Errorf("service: bad batch response: %w", err)
	}
	if len(view.Jobs) != len(req.Jobs) {
		return nil, fmt.Errorf("service: batch returned %d views for %d jobs", len(view.Jobs), len(req.Jobs))
	}
	for i := range view.Jobs {
		if err := canonicalizeResult(&view.Jobs[i]); err != nil {
			return nil, err
		}
		if view.Jobs[i].Cached || view.Jobs[i].Coalesced {
			c.cacheHits.Add(1)
		}
	}
	return view.Jobs, nil
}

// WaitJob blocks until job id finishes (the GET /jobs/{id}?wait=1 long
// poll) and returns the finished view with canonical result bytes. It is
// a status follow for jobs already submitted — typically a nowait batch's
// elements — not a submission: no Requests()/CacheHits() accounting.
func (c *Client) WaitJob(id string) (*JobView, error) {
	resp, err := c.HTTP.Get(c.Base + "/jobs/" + id + "?wait=1")
	if err != nil {
		return nil, fmt.Errorf("service: wait for job %s: %w", id, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("service: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp.StatusCode, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		return nil, fmt.Errorf("service: bad job response: %w", err)
	}
	if err := canonicalizeResult(&view); err != nil {
		return nil, err
	}
	return finished(&view)
}
