// Client side of the simulation service: dsmrun -remote and
// dsmadvise -remote submit jobs here instead of building and simulating
// locally, turning repeated work — most prominently the advisor's
// top-K × P verification fan-out — into shared cache hits.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Client talks to a dsmd server.
type Client struct {
	// Base is the server address, e.g. "http://127.0.0.1:8377".
	Base string
	// Tenant attributes this client's jobs (optional).
	Tenant string
	// HTTP is the transport (default: a client with no overall timeout —
	// simulations legitimately run long; rely on context/server limits).
	HTTP *http.Client

	requests  atomic.Int64
	cacheHits atomic.Int64
}

// NewClient builds a client for a base URL ("host:port" gets "http://"
// prepended).
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{}}
}

// Requests and CacheHits report this client's submission accounting: a hit
// is a job served from the server's result cache or coalesced onto another
// submission's in-flight run — either way, no new simulation was spent on
// it.
func (c *Client) Requests() int64  { return c.requests.Load() }
func (c *Client) CacheHits() int64 { return c.cacheHits.Load() }

// Health probes /healthz.
func (c *Client) Health() error {
	resp, err := c.HTTP.Get(c.Base + "/healthz")
	if err != nil {
		return fmt.Errorf("service: %s unreachable: %w", c.Base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service: %s health check: %s", c.Base, resp.Status)
	}
	return nil
}

// Run submits a job and blocks until it finishes (req.NoWait is forced
// off), returning the job view with its result document. A failed job is
// returned as an error.
func (c *Client) Run(req *JobRequest) (*JobView, error) {
	req.NoWait = false
	if req.Tenant == "" {
		req.Tenant = c.Tenant
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	// A full queue is the one retryable admission failure; back off
	// briefly instead of failing a whole sweep for a transient spike.
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		resp, err = c.HTTP.Post(c.Base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("service: submit to %s: %w", c.Base, err)
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= 5 {
			break
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(time.Duration(100*(attempt+1)) * time.Millisecond)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("service: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("service: %s: %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("service: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		return nil, fmt.Errorf("service: bad job response: %w", err)
	}
	// The transport re-indents the nested result document to its depth in
	// the JobView; re-derive the canonical encoding (2-space indent, final
	// newline) so callers get the exact bytes the server stored. Indent
	// copies tokens verbatim, so this is a pure reformat.
	if len(view.Result) > 0 {
		var doc bytes.Buffer
		if err := json.Indent(&doc, view.Result, "", "  "); err != nil {
			return nil, fmt.Errorf("service: bad result document: %w", err)
		}
		doc.WriteByte('\n')
		view.Result = doc.Bytes()
	}
	c.requests.Add(1)
	if view.Cached || view.Coalesced {
		c.cacheHits.Add(1)
	}
	if view.State == StateFailed {
		return nil, fmt.Errorf("service: job %s failed: %s", view.ID, view.Error)
	}
	if view.State != StateDone {
		return nil, fmt.Errorf("service: job %s ended in state %q", view.ID, view.State)
	}
	return &view, nil
}
