package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// hexKey fabricates a distinct valid content-hash key.
func hexKey(n int) string { return fmt.Sprintf("%064x", n) }

// TestStoreRoundtrip: Put/Get/Contains across both kinds, with kind
// namespacing (one key, two kinds, two payloads).
func TestStoreRoundtrip(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := hexKey(1)
	if err := s.Put(KindResult, k, []byte("result-doc")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCompile, k, []byte("compiled-image")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(KindResult, k); !ok || string(got) != "result-doc" {
		t.Fatalf("Get result = %q, %v", got, ok)
	}
	if got, ok := s.Get(KindCompile, k); !ok || string(got) != "compiled-image" {
		t.Fatalf("Get compile = %q, %v", got, ok)
	}
	if _, ok := s.Get(KindResult, hexKey(2)); ok {
		t.Fatal("Get of an absent key reported present")
	}
	if !s.Contains(KindResult, k) || s.Contains(KindResult, hexKey(2)) {
		t.Fatal("Contains disagrees with Get")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if err := s.Put(KindResult, "not-a-hash", []byte("x")); err == nil {
		t.Fatal("Put accepted a non-hash key")
	}
}

// TestStoreLRUEviction: the byte bound evicts least-recently-used entries,
// and a Get bumps recency so the touched entry survives.
func TestStoreLRUEviction(t *testing.T) {
	// Bound fits exactly three 10-byte payloads.
	s, err := OpenStore(t.TempDir(), 30)
	if err != nil {
		t.Fatal(err)
	}
	pay := bytes.Repeat([]byte("x"), 10)
	for n := 1; n <= 3; n++ {
		if err := s.Put(KindResult, hexKey(n), pay); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest so key 2 becomes LRU.
	if _, ok := s.Get(KindResult, hexKey(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	if err := s.Put(KindResult, hexKey(4), pay); err != nil {
		t.Fatal(err)
	}
	if s.Contains(KindResult, hexKey(2)) {
		t.Fatal("LRU entry survived past the byte bound")
	}
	for _, n := range []int{1, 3, 4} {
		if !s.Contains(KindResult, hexKey(n)) {
			t.Fatalf("key %d evicted, want key 2 (LRU)", n)
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Bytes != 30 {
		t.Fatalf("stats = %+v, want 1 eviction at 30 resident bytes", st)
	}
	// An entry bigger than the whole bound is rejected without evicting.
	if err := s.Put(KindResult, hexKey(5), bytes.Repeat([]byte("y"), 31)); err != nil {
		t.Fatal(err)
	}
	if s.Contains(KindResult, hexKey(5)) || s.Len() != 3 {
		t.Fatal("oversized entry was admitted")
	}
}

// TestStoreRestart: entries and their recency order survive a close/reopen
// cycle, and orphan object files (torn shutdown) are re-adopted.
func TestStoreRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 40)
	if err != nil {
		t.Fatal(err)
	}
	pay := bytes.Repeat([]byte("x"), 10)
	for n := 1; n <= 3; n++ {
		if err := s.Put(KindResult, hexKey(n), pay); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(KindResult, hexKey(1)); !ok { // bump: 2 becomes LRU
		t.Fatal("key 1 missing")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// An object file the index never saw: must be adopted on reopen.
	orphan := filepath.Join(dir, "obj", "result-"+hexKey(9))
	if err := os.WriteFile(orphan, pay, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, 40)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 4 {
		t.Fatalf("reopened Len = %d, want 4 (3 indexed + 1 adopted)", s2.Len())
	}
	if got, ok := s2.Get(KindResult, hexKey(1)); !ok || !bytes.Equal(got, pay) {
		t.Fatal("persisted payload lost across restart")
	}
	if !s2.Contains(KindResult, hexKey(9)) {
		t.Fatal("orphan object not adopted")
	}
	// Recency survived: pushing one more entry over the bound must evict
	// key 2 (LRU before the restart), not the key 1 we touched.
	if err := s2.Put(KindResult, hexKey(10), pay); err != nil {
		t.Fatal(err)
	}
	if s2.Contains(KindResult, hexKey(2)) {
		t.Fatal("pre-restart LRU entry survived eviction")
	}
	if !s2.Contains(KindResult, hexKey(1)) {
		t.Fatal("recency bump lost across restart: touched entry evicted")
	}
}

// TestStoreGetRecencyFlushWithoutClose: a Get-heavy store abandoned
// without Close (kill -9, OOM) keeps near-current LRU order — recency
// bumps are flushed after every flushEveryGets unflushed Gets, not only
// on the next Put/Close.
func TestStoreGetRecencyFlushWithoutClose(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 30) // fits exactly three 10-byte payloads
	if err != nil {
		t.Fatal(err)
	}
	pay := bytes.Repeat([]byte("x"), 10)
	for n := 1; n <= 3; n++ {
		if err := s.Put(KindResult, hexKey(n), pay); err != nil {
			t.Fatal(err)
		}
	}
	// Get-only traffic on key 1, enough to cross the flush threshold.
	for i := 0; i < flushEveryGets; i++ {
		if _, ok := s.Get(KindResult, hexKey(1)); !ok {
			t.Fatal("key 1 missing")
		}
	}

	// Abandon s WITHOUT Close and reopen: the bumps must have hit disk.
	s2, err := OpenStore(dir, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(KindResult, hexKey(4), pay); err != nil {
		t.Fatal(err)
	}
	if s2.Contains(KindResult, hexKey(2)) {
		t.Fatal("key 2 survived eviction: Get recency on key 1 never reached disk")
	}
	if !s2.Contains(KindResult, hexKey(1)) {
		t.Fatal("Get-bumped entry evicted after an unclean shutdown: recency lost")
	}
}

// TestStoreRecoversFromCorruptIndex: a trashed index degrades to an object
// rescan, never an open failure.
func TestStoreRecoversFromCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCompile, hexKey(1), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(KindCompile, hexKey(1)); !ok || string(got) != "payload" {
		t.Fatal("payload lost to a corrupt index")
	}
}
