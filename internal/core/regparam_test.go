package core

import (
	"testing"

	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

func TestDoacrossInSubroutineWithParamArray(t *testing.T) {
	img := build(t, `
      program p
      real*8 a(32)
      call fill(a, 32)
      end

      subroutine fill(x, n)
      integer n, i
      real*8 x(n)
c$doacross local(i) shared(x, n)
      do i = 1, n
        x(i) = dble(i) * 3.0
      end do
      return
      end
`)
	res := run(t, img, 4, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	for i := 0; i < 32; i++ {
		if a[i] != float64(i+1)*3 {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
	_ = machine.Tiny
}
