package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
	"dsmdist/internal/workloads"
)

func TestBackToBackDynamicLoops(t *testing.T) {
	// Two sequential schedtype(dynamic) regions share rt.DynCursor; if
	// ResetDynamic did not run between them, the second loop would see
	// the cursor already at 100 and execute nothing.
	img := build(t, `
      program p
      real*8 a(100), b(100)
      integer i
c$doacross local(i) shared(a) schedtype(dynamic)
      do i = 1, 100
        a(i) = dble(i)
      end do
c$doacross local(i) shared(a, b) schedtype(dynamic)
      do i = 1, 100
        b(i) = a(i) * 3.0
      end do
      end
`)
	res := run(t, img, 4, ospage.FirstTouch)
	b := arr(t, res, "p", "b")
	for i := 0; i < 100; i++ {
		if b[i] != float64(i+1)*3 {
			t.Fatalf("b[%d] = %v, want %v (stale dynamic cursor?)", i, b[i], float64(i+1)*3)
		}
	}
}

func TestRedistPagesMatchMigrated(t *testing.T) {
	// After a cyclic(k) -> block redistribute the runtime's RedistPages
	// counter and the OS page manager's Migrated stat describe the same
	// motion and must agree exactly.
	img := build(t, `
      program p
      integer n
      parameter (n = 64)
      real*8 a(n, n)
c$distribute a(cyclic(8), *)
      integer i, j
      do j = 1, n
        do i = 1, n
          a(i, j) = dble(i + j)
        end do
      end do
c$redistribute a(block, *)
      a(1, 1) = a(1, 1) + 1.0
      end
`)
	res := run(t, img, 4, ospage.FirstTouch)
	if res.RT.RedistPages == 0 {
		t.Fatal("cyclic(8)->block redistribute moved no pages")
	}
	if res.RT.RedistPages != res.Pages.Migrated {
		t.Fatalf("RedistPages = %d, ospage Migrated = %d",
			res.RT.RedistPages, res.Pages.Migrated)
	}
	a := arr(t, res, "p", "a")
	if a[0] != 3.0 { // a(1,1) = 1+1, then +1
		t.Fatalf("a(1,1) = %v after redistribute, want 3", a[0])
	}
}

func TestRedistObsAttribution(t *testing.T) {
	// c$redistribute cycles must land in the recorder's redist category,
	// not be misread as compute, and the trace must carry redist spans.
	img := build(t, `
      program p
      integer n
      parameter (n = 64)
      real*8 a(n, n)
c$distribute a(*, block)
      integer i, j
      do j = 1, n
        do i = 1, n
          a(i, j) = 1.0
        end do
      end do
c$redistribute a(block, *)
      a(1, 1) = 2.0
      end
`)
	cfg := machine.Scaled(4)
	rec := obs.NewRecorder(cfg)
	rec.EnableTrace(0)
	if _, err := Run(img, cfg, RunOptions{Policy: ospage.FirstTouch, Recorder: rec}); err != nil {
		t.Fatal(err)
	}

	ser := rec.Region(obs.SerialRegion)
	if ser == nil || ser.RedistCyc == 0 {
		t.Fatal("redistribute cycles not attributed to the serial region's redist category")
	}
	if got := rec.RedistCycles(); got != ser.RedistCyc {
		t.Fatalf("RedistCycles() = %d, serial region RedistCyc = %d", got, ser.RedistCyc)
	}
	// The breakdown must stay consistent: compute excludes the redist
	// share rather than absorbing it.
	if ser.ComputeCyc()+ser.RedistCyc > ser.Cycles {
		t.Fatalf("compute %d + redist %d exceeds region cycles %d",
			ser.ComputeCyc(), ser.RedistCyc, ser.Cycles)
	}

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	redistEvents := 0
	for _, ev := range tf.TraceEvents {
		if ev.Cat == "redist" {
			redistEvents++
		}
	}
	if redistEvents == 0 {
		t.Fatal("trace contains no redist-category events")
	}
}

func TestScheduledRedistributeBeatsSerial(t *testing.T) {
	// Acceptance: the scheduled collective's modeled redistribute cycles
	// drop versus -redist=serial and vary with P rather than staying
	// flat. Compared at P >= 4 on the scaled machine — below one full
	// node there is no inter-node motion and both models are ~free.
	src := workloads.Redistribute(64, 2, "(*, block)", "(block, *)")
	sched := map[int]int64{}
	serial := map[int]int64{}
	for _, p := range []int{4, 16} {
		for _, mode := range []bool{false, true} {
			img := build(t, src)
			cfg := machine.Scaled(p)
			rec := obs.NewRecorder(cfg)
			_, err := Run(img, cfg, RunOptions{
				Policy: ospage.FirstTouch, Recorder: rec, RedistSerial: mode})
			if err != nil {
				t.Fatal(err)
			}
			if mode {
				serial[p] = rec.RedistCycles()
			} else {
				sched[p] = rec.RedistCycles()
			}
		}
	}
	for _, p := range []int{4, 16} {
		if sched[p] == 0 || serial[p] == 0 {
			t.Fatalf("P=%d: no redistribute cycles recorded (sched %d, serial %d)",
				p, sched[p], serial[p])
		}
		if sched[p] >= serial[p] {
			t.Fatalf("P=%d: scheduled %d cycles not below serial %d",
				p, sched[p], serial[p])
		}
	}
	if sched[4] == sched[16] {
		t.Fatalf("scheduled cost flat in P: %d cycles at both P=4 and P=16", sched[4])
	}
	// The advantage should grow with the machine: the serial walk gets
	// relatively worse as more nodes hold pages.
	if serial[16]*sched[4] <= serial[4]*sched[16] {
		t.Fatalf("speedup does not scale with P: serial/sched = %d/%d at P=4, %d/%d at P=16",
			serial[4], sched[4], serial[16], sched[16])
	}
}

func TestRedistModeIdenticalWithoutRedistribute(t *testing.T) {
	// A program with no c$redistribute must be cycle-bit-identical under
	// both cost models: the -redist flag may only affect redistributes.
	src := `
      program p
      integer n
      parameter (n = 64)
      real*8 a(n, n)
c$distribute a(*, block)
      integer i, j
c$doacross local(i, j) shared(a)
      do j = 1, n
        do i = 1, n
          a(i, j) = dble(i) + dble(j)
        end do
      end do
      end
`
	var cycles [2]int64
	for i, mode := range []bool{false, true} {
		img := build(t, src)
		res, err := Run(img, machine.Scaled(4), RunOptions{
			Policy: ospage.FirstTouch, RedistSerial: mode})
		if err != nil {
			t.Fatal(err)
		}
		cycles[i] = res.Cycles
	}
	if cycles[0] != cycles[1] {
		t.Fatalf("run without c$redistribute differs across redist modes: %d vs %d cycles",
			cycles[0], cycles[1])
	}
}
