package core

import (
	"container/list"
	"sync"

	"dsmdist/internal/link"
)

// BuildCache memoizes compiled images across Toolchain.Build calls, keyed
// by the exact source set and compilation options (see CompileKey).
// Experiment sweeps recompile the identical Fortran program for every
// policy × processor point; with a shared cache each distinct
// (source, options) variant is compiled once per sweep.
//
// The cache is safe for concurrent use and coalesces concurrent builds of
// the same key into one compile. The canonical image stored in the cache is
// never handed out: every Build returns a fresh link.Image.Clone, because
// loading an image mutates it (symbol layout, relocation patching,
// run-time redistribution). That also makes cached builds safe to run in
// parallel — and makes eviction safe: a clone handed out before its entry
// was evicted shares nothing run-mutable with the cache.
//
// The cache may be bounded (SetLimit / NewBuildCacheLimited): beyond the
// entry cap the least-recently-used entries are dropped, so a long-running
// process (dsmd) can keep a hot compile cache without unbounded memory
// growth. The default NewBuildCache is unbounded, preserving the sweep
// semantics where every variant stays resident.
type BuildCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// order is the recency list, front = most recently used; each entry
	// holds its own element so touch/evict are O(1).
	order     *list.List
	max       int // max entries; 0 = unbounded
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key  string
	elem *list.Element
	once sync.Once
	img  *link.Image
	err  error
}

// NewBuildCache returns an empty, unbounded cache; share one across the
// Toolchains of a sweep via Toolchain.Cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: map[string]*cacheEntry{}, order: list.New()}
}

// NewBuildCacheLimited returns a cache holding at most max entries,
// evicting least-recently-used ones beyond that (max <= 0 = unbounded).
func NewBuildCacheLimited(max int) *BuildCache {
	c := NewBuildCache()
	c.SetLimit(max)
	return c
}

// SetLimit caps the entry count (0 = unbounded), evicting LRU entries
// immediately if the cache is already over the new cap.
func (c *BuildCache) SetLimit(max int) {
	if max < 0 {
		max = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.max = max
	c.evictOver()
}

// evictOver drops LRU entries until the cap is respected. Callers hold mu.
// Dropping an entry that other goroutines still reference (waiters inside
// its once, or clones already handed out) is safe: the entry just becomes
// unreachable from the map and is garbage once they finish.
func (c *BuildCache) evictOver() {
	if c.max <= 0 {
		return
	}
	for len(c.entries) > c.max {
		back := c.order.Back()
		if back == nil {
			return
		}
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.evictions++
	}
}

// Len reports the resident entry count.
func (c *BuildCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports how many Builds reused a compiled image (hits) and how many
// had to compile (misses). Concurrent Builds of the same key block on a
// single compile; the waiters count as hits.
func (c *BuildCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions reports how many entries the cap has dropped.
func (c *BuildCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Get returns a clone of the image for key, building it at most once per
// residency: concurrent Gets of one key coalesce onto a single build call,
// and every caller receives its own clone. Toolchain.Build routes through
// this with CompileKey; external callers (the dsmd service layers a disk
// store behind the build function) must use CompileKey-derived keys so the
// entries stay content-addressed.
func (c *BuildCache) Get(key string, build func() (*link.Image, error)) (*link.Image, error) {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{key: key}
		c.entries[key] = e
		e.elem = c.order.PushFront(e)
		c.evictOver()
	} else {
		c.order.MoveToFront(e.elem)
	}
	c.mu.Unlock()

	built := false
	e.once.Do(func() {
		e.img, e.err = build()
		built = true
	})

	c.mu.Lock()
	if built {
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()

	if e.err != nil {
		return nil, e.err
	}
	return e.img.Clone(), nil
}

// cacheKey digests the source set and every compile-relevant Toolchain
// option (the stable CompileKey contract; see jobkey.go).
func (tc *Toolchain) cacheKey(sources map[string]string) string {
	return CompileKey(sources, tc.Opt, tc.RuntimeChecks)
}
