package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"dsmdist/internal/link"
)

// BuildCache memoizes compiled images across Toolchain.Build calls, keyed
// by the exact source set and compilation options. Experiment sweeps
// recompile the identical Fortran program for every policy × processor
// point; with a shared cache each distinct (source, options) variant is
// compiled once per sweep.
//
// The cache is safe for concurrent use and coalesces concurrent builds of
// the same key into one compile. The canonical image stored in the cache is
// never handed out: every Build returns a fresh link.Image.Clone, because
// loading an image mutates it (symbol layout, relocation patching,
// run-time redistribution). That also makes cached builds safe to run in
// parallel.
type BuildCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int64
	misses  int64
}

type cacheEntry struct {
	once sync.Once
	img  *link.Image
	err  error
}

// NewBuildCache returns an empty cache; share one across the Toolchains of
// a sweep via Toolchain.Cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: map[string]*cacheEntry{}}
}

// Stats reports how many Builds reused a compiled image (hits) and how many
// had to compile (misses). Concurrent Builds of the same key block on a
// single compile; the waiters count as hits.
func (c *BuildCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// get returns a clone of the image for key, building it at most once.
func (c *BuildCache) get(key string, build func() (*link.Image, error)) (*link.Image, error) {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	built := false
	e.once.Do(func() {
		e.img, e.err = build()
		built = true
	})

	c.mu.Lock()
	if built {
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()

	if e.err != nil {
		return nil, e.err
	}
	return e.img.Clone(), nil
}

// cacheKey digests the source set and every compile-relevant Toolchain
// option. Any new option that changes generated code must be added here.
func (tc *Toolchain) cacheKey(sources map[string]string) string {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	fmt.Fprintf(h, "tile=%v hoist=%v cse=%v fpdiv=%v checks=%v",
		tc.Opt.TilePeel, tc.Opt.Hoist, tc.Opt.CSE, tc.Opt.FPDiv, tc.RuntimeChecks)
	for _, n := range names {
		src := sources[n]
		fmt.Fprintf(h, "|%d:%s|%d:", len(n), n, len(src))
		h.Write([]byte(src))
	}
	return hex.EncodeToString(h.Sum(nil))
}
