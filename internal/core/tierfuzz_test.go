package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dsmdist/internal/exec"
)

// The tier fuzz harness: the same seeded random programs as the engine
// fuzz (doacross nests, distribution specs, schedule types, barriers,
// redistributes), each run under the classic interpreter and the
// block-compiled tier and compared bit-for-bit. The compiled tier's
// contract is exact classic semantics — identical charged cycles, stats,
// operation counters, region breakdowns, and final array contents — so
// any divergence is a compiler/trampoline bug by definition.
//
// Both host engines are exercised: under the parallel engine the tiers
// must also agree on quantum break points, or epoch validation and
// arrival order shift (see the StepCycles dispatch semantics contract).
func TestTierFuzzClassicVsCompiled(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	procs := []int{1, 4, 16, 96}
	engines := []exec.Engine{exec.EngineSerial, exec.EngineParallel}
	if testing.Short() {
		seeds = seeds[:3]
		procs = []int{1, 4, 16}
	}
	for _, seed := range seeds {
		src := genProgram(rand.New(rand.NewSource(seed)))
		for _, np := range procs {
			for _, eng := range engines {
				// Alternate the memory-run batch by seed so the classic
				// word loop stays the reference against the compiled tier's
				// fused run members with batching both enabled and disabled
				// (TestEngineFuzzSerialVsParallel covers the full on/off
				// cross-product at fixed tier).
				memrun := []string{"on", "off"}[seed%2]
				t.Setenv("DSM_MEMRUN", memrun)
				c, csum, carr := fuzzRunTier(t, src, np, eng, exec.TierClassic)
				k, ksum, karr := fuzzRunTier(t, src, np, eng, exec.TierCompiled)
				label := fmt.Sprintf("seed=%d P=%d engine=%v memrun=%s", seed, np, eng, memrun)
				if c.Cycles != k.Cycles {
					t.Errorf("%s: cycles %d vs %d\n%s", label, c.Cycles, k.Cycles, src)
					continue
				}
				if !reflect.DeepEqual(c.Stats, k.Stats) || c.Total != k.Total {
					t.Errorf("%s: proc stats diverge\n%s", label, src)
				}
				if c.HwDiv != k.HwDiv || c.SoftDiv != k.SoftDiv || c.Instrs != k.Instrs {
					t.Errorf("%s: op counters diverge (hw %d/%d soft %d/%d instrs %d/%d)\n%s",
						label, c.HwDiv, k.HwDiv, c.SoftDiv, k.SoftDiv, c.Instrs, k.Instrs, src)
				}
				if !bytes.Equal(csum, ksum) {
					t.Errorf("%s: region breakdowns diverge\n%s", label, src)
				}
				if !reflect.DeepEqual(carr, karr) {
					t.Errorf("%s: final array contents diverge\n%s", label, src)
				}
			}
		}
	}
}
