package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"dsmdist/internal/ospage"
	"dsmdist/internal/xform"
)

// JobKeyVersion is folded into every JobKey and CompileKey digest. The keys
// are the contract between clients and the dsmd disk store: entries written
// by one release must stay valid in the next, so the key derivation below
// is frozen. Any change to the digest inputs or their encoding MUST bump
// this version (a deliberate, reviewed act — it invalidates every persisted
// cache entry). The golden-file test in jobkey_test.go pins the derivation;
// if it fails, either revert the change or bump the version and update the
// golden file in the same commit.
const JobKeyVersion = 1

// JobSpec is everything that determines a run's simulated result. The
// simulator is deterministic: PR 5/PR 7 guarantee results are bit-identical
// across host engines and execution tiers, so those host-side choices are
// deliberately NOT part of the spec — a result computed under any
// engine/tier combination is valid for all of them. That purity is what
// makes run results content-addressable and shareable across users.
type JobSpec struct {
	// Sources is the named source set, exactly as passed to
	// Toolchain.Build.
	Sources map[string]string
	// Opt and RuntimeChecks are the compile options (they change generated
	// code, hence simulated cycles).
	Opt           xform.Options
	RuntimeChecks bool
	// Machine names the machine preset (origin2000, scaled, tiny): a
	// preset name plus Procs fully determines the machine configuration.
	Machine string
	// Procs is the simulated processor count.
	Procs int
	// Policy is the default page-placement policy for undistributed pages.
	Policy ospage.Policy
	// Quantum is the instruction interleave granularity (0 = the
	// executor's default; 0 and the literal default are distinct keys, so
	// keep 0 unless you mean to override).
	Quantum int
	// RedistSerial selects the legacy serial c$redistribute cost model.
	RedistSerial bool
}

// CompileKey digests a source set and the compile-relevant options into the
// stable content-address used for compiled images, both by the in-memory
// BuildCache and the dsmd disk store. Any new option that changes generated
// code must be added here — and doing so requires bumping JobKeyVersion
// (see its doc comment).
func CompileKey(sources map[string]string, opt xform.Options, runtimeChecks bool) string {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	fmt.Fprintf(h, "dsmcompile/v%d|tile=%v hoist=%v cse=%v fpdiv=%v checks=%v",
		JobKeyVersion, opt.TilePeel, opt.Hoist, opt.CSE, opt.FPDiv, runtimeChecks)
	for _, n := range names {
		src := sources[n]
		fmt.Fprintf(h, "|%d:%s|%d:", len(n), n, len(src))
		h.Write([]byte(src))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JobKey digests a full run specification into the stable content-address
// used for run results. Two jobs with the same key produce byte-identical
// result documents, regardless of which host, engine, tier, or worker
// count computes them. The derivation is frozen; see JobKeyVersion.
func JobKey(s JobSpec) string {
	h := sha256.New()
	fmt.Fprintf(h, "dsmjob/v%d|compile=%s|machine=%s|procs=%d|policy=%s|quantum=%d|redist-serial=%v",
		JobKeyVersion,
		CompileKey(s.Sources, s.Opt, s.RuntimeChecks),
		s.Machine, s.Procs, s.Policy, s.Quantum, s.RedistSerial)
	return hex.EncodeToString(h.Sum(nil))
}
