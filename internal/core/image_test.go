package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"dsmdist/internal/codegen"
	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

// TestImageGobRoundTrip covers the dsmfc -o / dsmrun prog.img path: a linked
// image survives gob serialization and runs identically.
func TestImageGobRoundTrip(t *testing.T) {
	img := build(t, `
      program p
      real*8 a(40)
c$distribute_reshape a(cyclic(5))
      integer i
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, 40
        a(i) = dble(i) * 7.0
      end do
      end
`)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img.Res); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back codegen.Result
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	res1, err := exec.Run(img.Res, machine.Tiny(4), exec.Options{Policy: ospage.FirstTouch})
	if err != nil {
		t.Fatal(err)
	}
	// Symbol addresses were patched by the first load; reset them so the
	// decoded image loads fresh.
	res2, err := exec.Run(&back, machine.Tiny(4), exec.Options{Policy: ospage.FirstTouch})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cycles != res2.Cycles {
		t.Fatalf("decoded image ran differently: %d vs %d cycles", res1.Cycles, res2.Cycles)
	}
	a := res2.RT.Gather(res2.RT.ArrayByName("p", "a"))
	for i := 0; i < 40; i++ {
		if a[i] != float64(i+1)*7 {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
}
