package core

import (
	"sync"
	"testing"

	"dsmdist/internal/link"
	"dsmdist/internal/machine"
	"dsmdist/internal/workloads"
	"dsmdist/internal/xform"
)

func cacheSrc() map[string]string {
	return map[string]string{"t.f": workloads.Transpose(16, 1, workloads.Reshaped)}
}

// TestBuildCacheHitMiss: the second identical Build is a hit, and the clone
// it returns runs to the same simulated result as the first build.
func TestBuildCacheHitMiss(t *testing.T) {
	cache := NewBuildCache()
	tc := New()
	tc.Cache = cache

	img1, err := tc.Build(cacheSrc())
	if err != nil {
		t.Fatal(err)
	}
	img2, err := tc.Build(cacheSrc())
	if err != nil {
		t.Fatal(err)
	}
	if h, m := cache.Stats(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
	if img1 == img2 || img1.Res == img2.Res || img1.Res.Prog == img2.Res.Prog {
		t.Fatal("cache handed out a shared image, not a clone")
	}

	cfg := machine.Tiny(2)
	r1, err := Run(img1, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(img2, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Total != r2.Total {
		t.Fatalf("cached clone ran differently: %d/%d cycles", r1.Cycles, r2.Cycles)
	}
}

// TestBuildCacheKeyedOnOptions: differing optimization levels or runtime
// checks must not share an entry.
func TestBuildCacheKeyedOnOptions(t *testing.T) {
	cache := NewBuildCache()

	o3 := New()
	o3.Cache = cache
	if _, err := o3.Build(cacheSrc()); err != nil {
		t.Fatal(err)
	}

	o0 := NewAt(xform.Options{})
	o0.Cache = cache
	if _, err := o0.Build(cacheSrc()); err != nil {
		t.Fatal(err)
	}

	noChecks := New()
	noChecks.RuntimeChecks = false
	noChecks.Cache = cache
	if _, err := noChecks.Build(cacheSrc()); err != nil {
		t.Fatal(err)
	}

	if h, m := cache.Stats(); h != 0 || m != 3 {
		t.Fatalf("hits=%d misses=%d, want 0/3 (options must split the key)", h, m)
	}

	// Different source text splits the key too.
	other := New()
	other.Cache = cache
	if _, err := other.Build(map[string]string{"t.f": workloads.Transpose(16, 1, workloads.Serial)}); err != nil {
		t.Fatal(err)
	}
	if _, m := cache.Stats(); m != 4 {
		t.Fatalf("misses=%d, want 4 after a new source", m)
	}
}

// TestBuildCacheConcurrent: concurrent Builds of one key coalesce into a
// single compile, and every caller can load and run its clone in parallel.
func TestBuildCacheConcurrent(t *testing.T) {
	cache := NewBuildCache()
	const n = 8
	var wg sync.WaitGroup
	cycles := make([]int64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tc := New()
			tc.Cache = cache
			img, err := tc.Build(cacheSrc())
			if err != nil {
				errs[i] = err
				return
			}
			res, err := Run(img, machine.Tiny(2), RunOptions{})
			if err != nil {
				errs[i] = err
				return
			}
			cycles[i] = res.Cycles
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if h, m := cache.Stats(); m != 1 || h != n-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1 (one compile, rest coalesced)", h, m, n-1)
	}
	for i := 1; i < n; i++ {
		if cycles[i] != cycles[0] {
			t.Fatalf("worker %d ran %d cycles, worker 0 ran %d", i, cycles[i], cycles[0])
		}
	}
}

// TestBuildCacheEviction: the entry cap evicts least-recently-used entries
// — and eviction never breaks clone isolation: a clone handed out before
// its entry was dropped still loads and runs, bit-identical to a fresh
// rebuild of the same program.
func TestBuildCacheEviction(t *testing.T) {
	cache := NewBuildCacheLimited(2)
	src := func(n int) map[string]string {
		return map[string]string{"t.f": workloads.Transpose(8+8*n, 1, workloads.Reshaped)}
	}
	build := func(n int) *link.Image {
		t.Helper()
		tc := New()
		tc.Cache = cache
		img, err := tc.Build(src(n))
		if err != nil {
			t.Fatal(err)
		}
		return img
	}

	img0 := build(0) // clone taken before the entry is evicted below
	build(1)
	build(2) // cap 2: evicts program 0 (LRU)

	if cache.Len() != 2 {
		t.Fatalf("resident entries = %d, want 2", cache.Len())
	}
	if ev := cache.Evictions(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}

	// Program 1 is resident (hit); program 0 was evicted (miss again).
	build(1)
	build(0)
	if h, m := cache.Stats(); h != 1 || m != 4 {
		t.Fatalf("hits=%d misses=%d, want 1/4 (evicted entry must rebuild)", h, m)
	}

	// The pre-eviction clone is still independently loadable and runs to
	// the same result as a post-eviction rebuild.
	img0b := build(0)
	cfg := machine.Tiny(2)
	r1, err := Run(img0, cfg, RunOptions{})
	if err != nil {
		t.Fatalf("pre-eviction clone: %v", err)
	}
	r2, err := Run(img0b, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Total != r2.Total {
		t.Fatalf("pre-eviction clone ran differently: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
}

// TestBuildCacheLimitLowered: lowering the cap below the resident count
// evicts immediately.
func TestBuildCacheLimitLowered(t *testing.T) {
	cache := NewBuildCache()
	for n := 0; n < 3; n++ {
		tc := New()
		tc.Cache = cache
		if _, err := tc.Build(map[string]string{"t.f": workloads.Transpose(8+8*n, 1, workloads.Serial)}); err != nil {
			t.Fatal(err)
		}
	}
	cache.SetLimit(1)
	if cache.Len() != 1 {
		t.Fatalf("resident entries = %d after SetLimit(1), want 1", cache.Len())
	}
	if ev := cache.Evictions(); ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
}

// TestBuildCacheErrorsCached: a failing build is remembered and the error
// is returned to later callers without recompiling.
func TestBuildCacheErrorsCached(t *testing.T) {
	cache := NewBuildCache()
	tc := New()
	tc.Cache = cache
	bad := map[string]string{"bad.f": "      program p\n      this is not fortran\n      end\n"}
	if _, err := tc.Build(bad); err == nil {
		t.Fatal("bad source built successfully")
	}
	if _, err := tc.Build(bad); err == nil {
		t.Fatal("cached bad source built successfully")
	}
	if h, m := cache.Stats(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 for a cached failure", h, m)
	}
}
