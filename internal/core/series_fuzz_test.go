package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
)

// The series contract on top of the engine-equivalence contract: every
// cycle-sampled snapshot row is a pure function of the recorder event
// stream, so the rows must be byte-identical between the serial and the
// parallel engine, and across repeated runs — not just the end-of-run
// totals the main fuzz harness compares.

// seriesRun executes src under one engine with cycle sampling on and
// returns the marshaled rows.
func seriesRun(t *testing.T, src string, np int, eng exec.Engine) [][]byte {
	t.Helper()
	tc := New()
	tc.RuntimeChecks = false
	image, err := tc.Build(map[string]string{"fz.f": src})
	if err != nil {
		t.Fatalf("build: %v\n%s", err, src)
	}
	cfg := machine.Tiny(np)
	rec := obs.NewRecorder(cfg)
	rec.EnableSeries(20000, nil)
	if _, err := Run(image, cfg, RunOptions{
		Policy: ospage.FirstTouch, Recorder: rec, Engine: eng, Workers: 4}); err != nil {
		t.Fatalf("%v engine P=%d: %v\n%s", eng, np, err, src)
	}
	rows := rec.SeriesRows()
	out := make([][]byte, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

// TestSeriesFuzzEngineIdentical fuzzes random programs through both
// engines and demands the full series — row count, order, and every byte
// of every row — agree, and that a second parallel run reproduces it.
func TestSeriesFuzzEngineIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		src := genProgram(rand.New(rand.NewSource(seed)))
		for _, np := range []int{4, 16} {
			label := fmt.Sprintf("seed=%d P=%d", seed, np)
			s := seriesRun(t, src, np, exec.EngineSerial)
			p := seriesRun(t, src, np, exec.EngineParallel)
			p2 := seriesRun(t, src, np, exec.EngineParallel)
			if len(s) == 0 {
				t.Errorf("%s: no series rows emitted\n%s", label, src)
				continue
			}
			if len(s) != len(p) {
				t.Errorf("%s: %d rows serial, %d parallel\n%s", label, len(s), len(p), src)
				continue
			}
			for i := range s {
				if !bytes.Equal(s[i], p[i]) {
					t.Errorf("%s: row %d diverges between engines\nserial:   %s\nparallel: %s",
						label, i, s[i], p[i])
					break
				}
			}
			if len(p) != len(p2) {
				t.Errorf("%s: repeat parallel run emitted %d rows, first run %d", label, len(p2), len(p))
				continue
			}
			for i := range p {
				if !bytes.Equal(p[i], p2[i]) {
					t.Errorf("%s: row %d not reproducible across parallel runs", label, i)
					break
				}
			}
		}
	}
}
