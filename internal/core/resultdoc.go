package core

import (
	"bytes"
	"encoding/json"
	"io"

	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
	"dsmdist/internal/memsim"
	"dsmdist/internal/ospage"
)

// ResultDocVersion is the schema version stamped into every result
// document ("v"). Clients (dsmd, CI jq checks) use it to detect
// incompatible output; bump it when a field changes meaning or is removed
// (adding fields is compatible and does not require a bump).
const ResultDocVersion = 1

// ArrayTraffic is one array's L2-miss traffic in a ResultDoc.
type ArrayTraffic struct {
	Name   string `json:"name"`
	L2Miss int64  `json:"l2_miss"`
}

// ResultDoc is the machine-readable record of a completed run — the
// document dsmrun -json prints and the dsmd result cache stores. Every
// field is a simulated quantity, so for a given JobSpec the document is
// byte-identical across host engines, execution tiers, and machines: that
// determinism is what makes it a valid content-addressed cache value.
type ResultDoc struct {
	V           int                `json:"v"`
	Machine     string             `json:"machine"`
	Procs       int                `json:"procs"`
	Policy      string             `json:"policy"`
	Cycles      int64              `json:"cycles"`
	Seconds     float64            `json:"seconds"`
	TimerCycles int64              `json:"timer_cycles"`
	HwDiv       int64              `json:"hw_div"`
	SoftDiv     int64              `json:"soft_div"`
	Instrs      int64              `json:"instrs"`
	Total       memsim.ProcStats   `json:"total"`
	PerProc     []memsim.ProcStats `json:"per_proc"`
	Pages       ospage.Stats       `json:"pages"`
	Arrays      []ArrayTraffic     `json:"arrays"`
}

// NewResultDoc captures a finished run as a result document.
func NewResultDoc(cfg *machine.Config, policy ospage.Policy, run *exec.Result) *ResultDoc {
	var arrays []ArrayTraffic
	for _, st := range run.RT.Arrays {
		arrays = append(arrays, ArrayTraffic{
			Name: st.Plan.Unit + "." + st.Plan.Name, L2Miss: run.RT.Traffic(st)})
	}
	return &ResultDoc{
		V:       ResultDocVersion,
		Machine: cfg.Name, Procs: cfg.NProcs, Policy: policy.String(),
		Cycles: run.Cycles, Seconds: run.Seconds(), TimerCycles: run.TimerCycles,
		HwDiv: run.HwDiv, SoftDiv: run.SoftDiv, Instrs: run.Instrs,
		Total: run.Total, PerProc: run.Stats, Pages: run.Pages, Arrays: arrays,
	}
}

// Encode writes the document in its canonical byte encoding (two-space
// indented JSON, trailing newline). Local dsmrun -json output and the
// dsmd store both use this encoding, so a remote cache hit is
// byte-identical to the local run it replaces.
func (d *ResultDoc) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Marshal returns the canonical byte encoding (see Encode).
func (d *ResultDoc) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Measured returns the region-of-interest cycles: the dsm_timer section
// when the program used the timer, total cycles otherwise — the same rule
// the experiment harness and the advisor apply.
func (d *ResultDoc) Measured() int64 {
	if d.TimerCycles > 0 {
		return d.TimerCycles
	}
	return d.Cycles
}
