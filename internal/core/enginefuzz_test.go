package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
)

// The engine fuzz harness: seeded random programs over doacross nests,
// distribution specs, schedule types, explicit barriers, and redistributes,
// each run under the serial and the parallel engine and compared
// bit-for-bit — per-processor stats, cycles, operation counters, the
// profiler's region breakdown, and final array contents. Any divergence is
// an engine bug by definition (the parallel engine's contract is exact
// serial semantics).

// fuzzSpecs are the distribution specs the generator draws from (the empty
// spec leaves the array under the run's page policy).
var fuzzSpecs = []string{"", "(*, block)", "(block, *)", "(cyclic(4), *)", "(*, cyclic(2))"}

// fuzzScheds are schedule-type clauses; dynamic and gss go through
// RTDynGrab, which the speculative engine must handle via serial fallback.
var fuzzScheds = []string{"", " schedtype(simple)", " schedtype(dynamic, 2)",
	" schedtype(interleave, 3)", " schedtype(gss)"}

// genProgram emits a random-but-valid Fortran program from composable
// fragments. Everything is driven by rng so a seed fully determines the
// program.
func genProgram(rng *rand.Rand) string {
	n := []int{24, 32, 40}[rng.Intn(3)]
	var b strings.Builder
	fmt.Fprintf(&b, "      program fz\n      integer n\n      parameter (n = %d)\n", n)
	b.WriteString("      real*8 a(n, n), b(n, n), c(n)\n")
	if sp := fuzzSpecs[rng.Intn(len(fuzzSpecs))]; sp != "" {
		fmt.Fprintf(&b, "c$distribute a%s\n", sp)
	}
	if sp := fuzzSpecs[rng.Intn(len(fuzzSpecs))]; sp != "" {
		fmt.Fprintf(&b, "c$distribute b%s\n", sp)
	}
	b.WriteString("      integer i, j\n")

	// Always initialize a with a nested doacross.
	aff := ""
	if rng.Intn(2) == 0 {
		aff = " affinity(j, i) = data(a(i, j))"
	}
	fmt.Fprintf(&b, `c$doacross nest(j, i) local(i, j) shared(a)%s
      do j = 1, n
        do i = 1, n
          a(i, j) = dble(i) * %d.0d-1 + dble(j)
        end do
      end do
`, aff, 1+rng.Intn(9))

	frags := 3 + rng.Intn(3)
	for f := 0; f < frags; f++ {
		switch rng.Intn(5) {
		case 0: // column sweep over a, random schedule or affinity
			clause := fuzzScheds[rng.Intn(len(fuzzScheds))]
			if clause == "" && rng.Intn(2) == 0 {
				clause = " affinity(j) = data(a(1, j))"
			}
			fmt.Fprintf(&b, `c$doacross local(i, j) shared(a)%s
      do j = 1, n
        do i = 2, n
          a(i, j) = a(i, j) + a(i-1, j) * %d.0d-1
        end do
      end do
`, clause, 1+rng.Intn(5))
		case 1: // redistribute a
			fmt.Fprintf(&b, "c$redistribute a%s\n",
				[]string{"(*, block)", "(block, *)", "(cyclic(4), *)"}[rng.Intn(3)])
		case 2: // explicit barrier with a cross-processor read
			fmt.Fprintf(&b, `c$doacross local(i) shared(c)
      do i = 1, n
        c(i) = dble(mod(i * %d, 17)) / dble(i)
        call dsm_barrier
        c(i) = c(i) + c(mod(i, n) + 1) * 0.5
      end do
`, 3+rng.Intn(7))
		case 3: // serial interlude (integer divide exercises op counters)
			fmt.Fprintf(&b, `      do i = 1, n
        c(i) = c(i) + dble(i / %d)
      end do
`, 2+rng.Intn(5))
		case 4: // b update reading a
			fmt.Fprintf(&b, `c$doacross local(i, j) shared(a, b)%s
      do j = 1, n
        do i = 1, n
          b(i, j) = a(i, j) + b(i, j) * %d.0d-1
        end do
      end do
`, fuzzScheds[rng.Intn(len(fuzzScheds))], 1+rng.Intn(5))
		}
	}
	b.WriteString("      end\n")
	return b.String()
}

// fuzzRun executes src under one engine and returns everything the
// equivalence check compares.
func fuzzRun(t *testing.T, src string, np int, eng exec.Engine) (*exec.Result, []byte, [][]float64) {
	return fuzzRunTier(t, src, np, eng, exec.TierAuto)
}

// fuzzRunMem is fuzzRun with the memory-run batching switch pinned
// ("on" or "off"); memsim reads DSM_MEMRUN at System construction.
func fuzzRunMem(t *testing.T, src string, np int, eng exec.Engine, memrun string) (*exec.Result, []byte, [][]float64) {
	t.Setenv("DSM_MEMRUN", memrun)
	return fuzzRunTier(t, src, np, eng, exec.TierAuto)
}

// fuzzRunTier is fuzzRun with an explicit execution tier (the tier fuzz
// harness pins both tiers; TierAuto defers to DSM_TIER/default).
func fuzzRunTier(t *testing.T, src string, np int, eng exec.Engine, tier exec.Tier) (*exec.Result, []byte, [][]float64) {
	t.Helper()
	tc := New()
	tc.RuntimeChecks = false
	image, err := tc.Build(map[string]string{"fz.f": src})
	if err != nil {
		t.Fatalf("build: %v\n%s", err, src)
	}
	cfg := machine.Tiny(np)
	rec := obs.NewRecorder(cfg)
	res, err := Run(image, cfg, RunOptions{
		Policy: ospage.FirstTouch, Recorder: rec, Engine: eng, Workers: 4, Tier: tier})
	if err != nil {
		t.Fatalf("%v engine %v tier P=%d: %v\n%s", eng, tier, np, err, src)
	}
	var sum bytes.Buffer
	if err := rec.Summarize(10).WriteJSON(&sum); err != nil {
		t.Fatal(err)
	}
	var arrays [][]float64
	for _, name := range []string{"a", "b", "c"} {
		v, err := Array(res, "fz", name)
		if err != nil {
			t.Fatal(err)
		}
		arrays = append(arrays, v)
	}
	return res, sum.Bytes(), arrays
}

// TestEngineFuzzSerialVsParallel is the randomized equivalence harness.
func TestEngineFuzzSerialVsParallel(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	procs := []int{1, 4, 16, 96}
	if testing.Short() {
		seeds = seeds[:3]
		procs = []int{1, 4, 16}
	}
	for _, seed := range seeds {
		src := genProgram(rand.New(rand.NewSource(seed)))
		for _, np := range procs {
			// The memory-run batch is a host optimization with the same
			// contract as the engines: toggling it may not move a simulated
			// cycle. Fuzz both settings, and pin serial/memrun-on as the
			// single reference every other combination must match.
			var ref *exec.Result
			var refSum []byte
			var refArr [][]float64
			for _, memrun := range []string{"on", "off"} {
				s, ssum, sarr := fuzzRunMem(t, src, np, exec.EngineSerial, memrun)
				p, psum, parr := fuzzRunMem(t, src, np, exec.EngineParallel, memrun)
				if ref == nil {
					ref, refSum, refArr = s, ssum, sarr
				}
				for _, run := range []struct {
					eng string
					r   *exec.Result
					sum []byte
					arr [][]float64
				}{{"serial", s, ssum, sarr}, {"parallel", p, psum, parr}} {
					label := fmt.Sprintf("seed=%d P=%d engine=%s memrun=%s", seed, np, run.eng, memrun)
					if ref.Cycles != run.r.Cycles {
						t.Errorf("%s: cycles %d vs %d\n%s", label, ref.Cycles, run.r.Cycles, src)
						continue
					}
					if !reflect.DeepEqual(ref.Stats, run.r.Stats) || ref.Total != run.r.Total {
						t.Errorf("%s: proc stats diverge\n%s", label, src)
					}
					if ref.HwDiv != run.r.HwDiv || ref.SoftDiv != run.r.SoftDiv || ref.Instrs != run.r.Instrs {
						t.Errorf("%s: op counters diverge\n%s", label, src)
					}
					if !bytes.Equal(refSum, run.sum) {
						t.Errorf("%s: region breakdowns diverge\n%s", label, src)
					}
					if !reflect.DeepEqual(refArr, run.arr) {
						t.Errorf("%s: final array contents diverge\n%s", label, src)
					}
				}
			}
		}
	}
}
