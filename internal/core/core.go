// Package core is the toolchain driver — the public face of the system. It
// strings the stages together the way the paper's build does:
//
//	Compile:  parse → semantic analysis (§3 directives, §6 compile-time
//	          checks) → object file with shadow annotations (§5)
//	Link:     pre-linker (propagation, cloning, §6 link-time checks) →
//	          transformation (§4.1, §7) → code generation
//	Run:      load (page placement §4.2, reshaped pools §4.3) → execute
//	          on the simulated Origin-2000
//
// A typical use:
//
//	tc := core.New()
//	img, err := tc.Build(map[string]string{"main.f": src})
//	res, err := core.Run(img, machine.Scaled(16), core.RunOptions{})
//	fmt.Println(res.Seconds(), res.Total.L2Miss)
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dsmdist/internal/exec"
	"dsmdist/internal/link"
	"dsmdist/internal/machine"
	"dsmdist/internal/obj"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
	"dsmdist/internal/rtl"
	"dsmdist/internal/xform"
)

// Toolchain holds compilation policy.
type Toolchain struct {
	// Opt is the reshape-optimization level (§7); default O3.
	Opt xform.Options
	// RuntimeChecks enables the §6 runtime argument checks.
	RuntimeChecks bool
	// Rec, when non-nil, receives build metadata (sources, optimization
	// level, build wall time); pass the same recorder to Run via
	// RunOptions.Recorder so one profile covers compile and run.
	Rec *obs.Recorder
	// Cache, when non-nil, memoizes Build results by (sources, options);
	// cache hits return a fresh clone of the compiled image, so they are
	// safe to load and run concurrently. Share one cache across the
	// toolchains of a sweep.
	Cache *BuildCache
}

// New returns a production-default toolchain: all optimizations, runtime
// checks on.
func New() *Toolchain {
	return &Toolchain{Opt: xform.O3(), RuntimeChecks: true}
}

// NewAt returns a toolchain at a specific optimization level.
func NewAt(opt xform.Options) *Toolchain {
	return &Toolchain{Opt: opt, RuntimeChecks: true}
}

// Compile compiles one source file to an object.
func (tc *Toolchain) Compile(filename, src string) (*obj.Object, error) {
	return obj.Compile(filename, src)
}

// Link pre-links and links objects into an executable image.
func (tc *Toolchain) Link(objs ...*obj.Object) (*link.Image, error) {
	return link.Link(objs, link.Config{Opt: tc.Opt, RuntimeChecks: tc.RuntimeChecks})
}

// Build compiles and links a set of named sources (map iteration order is
// normalized by name for determinism). With a Cache attached, identical
// (sources, options) builds compile once and return fresh clones.
func (tc *Toolchain) Build(sources map[string]string) (*link.Image, error) {
	start := time.Now()
	var img *link.Image
	var err error
	if tc.Cache != nil {
		img, err = tc.Cache.Get(tc.cacheKey(sources), func() (*link.Image, error) {
			return tc.build(sources)
		})
	} else {
		img, err = tc.build(sources)
	}
	if err == nil && tc.Rec != nil {
		names := make([]string, 0, len(sources))
		for n := range sources {
			names = append(names, n)
		}
		sort.Strings(names)
		tc.Rec.SetMeta("sources", strings.Join(names, " "))
		tc.Rec.SetMeta("opt", fmt.Sprintf("tile=%v hoist=%v fpdiv=%v",
			tc.Opt.TilePeel, tc.Opt.Hoist, tc.Opt.FPDiv))
		tc.Rec.SetMeta("build", time.Since(start).Round(time.Millisecond).String())
	}
	return img, err
}

// build is the uncached compile-and-link pipeline.
func (tc *Toolchain) build(sources map[string]string) (*link.Image, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	var objs []*obj.Object
	for _, n := range names {
		o, err := tc.Compile(n, sources[n])
		if err != nil {
			return nil, err
		}
		objs = append(objs, o)
	}
	return tc.Link(objs...)
}

// RunOptions configure execution.
type RunOptions struct {
	Policy  ospage.Policy
	Quantum int
	// Recorder, when non-nil, observes the run (see internal/obs); nil
	// keeps the simulation on the untraced fast path.
	Recorder *obs.Recorder
	// RedistSerial selects the legacy serial c$redistribute cost model
	// instead of the scheduled collective (see exec.Options).
	RedistSerial bool
	// Engine selects the host execution engine (serial, parallel, auto);
	// simulation results are bit-identical either way (see exec.Engine).
	Engine exec.Engine
	// Workers fixes the parallel engine's host goroutines per region; 0
	// draws from the shared hostpool budget.
	Workers int
	// MaxQuanta raises the runaway-loop guard (0 keeps the default).
	MaxQuanta int64
	// Tier selects the bytecode execution tier (classic, compiled, auto);
	// simulation results are bit-identical either way (see exec.Tier).
	Tier exec.Tier
}

// Run executes an image on a machine configuration.
func Run(img *link.Image, cfg *machine.Config, opts RunOptions) (*exec.Result, error) {
	return exec.Run(img.Res, cfg, exec.Options{
		Policy: opts.Policy, Quantum: opts.Quantum, Rec: opts.Recorder,
		RedistSerial: opts.RedistSerial,
		Engine:       opts.Engine, Workers: opts.Workers, MaxQuanta: opts.MaxQuanta,
		Tier:         opts.Tier})
}

// Array extracts an array's logical contents from a finished run. Unit is
// the (possibly mangled) instance name; for main-program arrays pass the
// program name.
func Array(res *exec.Result, unit, name string) ([]float64, error) {
	st := res.RT.ArrayByName(unit, name)
	if st == nil {
		return nil, fmt.Errorf("core: array %s.%s not found", unit, name)
	}
	return res.RT.Gather(st), nil
}

// ArrayState exposes the runtime state of an array (tests, examples).
func ArrayState(res *exec.Result, unit, name string) *rtl.ArrayState {
	return res.RT.ArrayByName(unit, name)
}
