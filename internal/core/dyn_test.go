package core

import (
	"testing"

	"dsmdist/internal/ospage"
)

func TestDynamicLocalArray(t *testing.T) {
	img := build(t, `
      program p
      real*8 out(12)
      call work(out, 12)
      end

      subroutine work(o, n)
      integer n, i
      real*8 o(n), w(2*n)
      do i = 1, 2*n
        w(i) = dble(i)
      end do
      do i = 1, n
        o(i) = w(i) + w(i + n)
      end do
      return
      end
`)
	res := run(t, img, 2, ospage.FirstTouch)
	o := arr(t, res, "p", "out")
	for i := 1; i <= 12; i++ {
		want := float64(i) + float64(i+12)
		if o[i-1] != want {
			t.Fatalf("o(%d) = %v, want %v", i, o[i-1], want)
		}
	}
}

func TestDynamicLocalArrayRepeatedCalls(t *testing.T) {
	// Stack storage must be reclaimed between calls.
	img := build(t, `
      program p
      real*8 out(4)
      integer k
      do k = 1, 200
        call work(out, 4)
      end do
      end

      subroutine work(o, n)
      integer n, i
      real*8 o(n), w(2048)
      do i = 1, n
        w(i) = dble(i)
        o(i) = w(i)
      end do
      return
      end
`)
	res := run(t, img, 1, ospage.FirstTouch)
	o := arr(t, res, "p", "out")
	for i := 1; i <= 4; i++ {
		if o[i-1] != float64(i) {
			t.Fatalf("o(%d) = %v", i, o[i-1])
		}
	}
}

func TestDistributedDynamicLocalRejected(t *testing.T) {
	tc := New()
	_, err := tc.Build(map[string]string{"m.f": `
      program p
      call work(8)
      end

      subroutine work(n)
      integer n
      real*8 w(n)
c$distribute_reshape w(block)
      w(1) = 0.0
      return
      end
`})
	if err == nil {
		t.Fatal("distributed dynamic local accepted")
	}
}
