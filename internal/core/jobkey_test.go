package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dsmdist/internal/ospage"
	"dsmdist/internal/xform"
)

var updateJobKey = flag.Bool("update-jobkey", false,
	"rewrite testdata/jobkey_golden.txt (a deliberate cache-key bump: every persisted dsmd store entry is invalidated)")

// goldenSpec is the frozen input whose keys the golden file pins. Do not
// edit it — a new input means a new golden line, not a changed one.
func goldenSpec() JobSpec {
	return JobSpec{
		Sources: map[string]string{
			"main.f": "      program p\n      integer i\n      end\n",
			"sub.f":  "      subroutine s\n      end\n",
		},
		Opt:           xform.O3(),
		RuntimeChecks: true,
		Machine:       "scaled",
		Procs:         16,
		Policy:        ospage.FirstTouch,
		Quantum:       0,
		RedistSerial:  false,
	}
}

// TestJobKeyGolden pins the CompileKey/JobKey derivation against a golden
// file. These keys address persisted dsmd store entries, so they must not
// drift between releases: if this test fails you have changed the key
// contract. Either revert, or — deliberately — bump JobKeyVersion and
// regenerate with `go test ./internal/core -run JobKeyGolden -update-jobkey`.
func TestJobKeyGolden(t *testing.T) {
	s := goldenSpec()
	got := fmt.Sprintf("version %d\ncompile %s\njob %s\n",
		JobKeyVersion,
		CompileKey(s.Sources, s.Opt, s.RuntimeChecks),
		JobKey(s))

	path := filepath.Join("testdata", "jobkey_golden.txt")
	if *updateJobKey {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("cache-key derivation drifted from the pinned contract.\ngot:\n%swant:\n%s"+
			"(persisted dsmd store entries would be orphaned; bump core.JobKeyVersion "+
			"and -update-jobkey only as a deliberate, reviewed change)", got, want)
	}
}

// TestJobKeySensitivity: every field that changes the simulated result must
// change the key; the host-side engine/tier knobs are (by design) not part
// of the spec at all.
func TestJobKeySensitivity(t *testing.T) {
	base := JobKey(goldenSpec())

	mutations := map[string]func(*JobSpec){
		"source text":    func(s *JobSpec) { s.Sources["main.f"] += "c comment\n" },
		"source name":    func(s *JobSpec) { s.Sources["renamed.f"] = s.Sources["main.f"]; delete(s.Sources, "main.f") },
		"opt level":      func(s *JobSpec) { s.Opt = xform.O0() },
		"runtime checks": func(s *JobSpec) { s.RuntimeChecks = false },
		"machine":        func(s *JobSpec) { s.Machine = "tiny" },
		"procs":          func(s *JobSpec) { s.Procs = 32 },
		"policy":         func(s *JobSpec) { s.Policy = ospage.RoundRobin },
		"quantum":        func(s *JobSpec) { s.Quantum = 4000 },
		"redist model":   func(s *JobSpec) { s.RedistSerial = true },
	}
	for name, mutate := range mutations {
		s := goldenSpec()
		mutate(&s)
		if JobKey(s) == base {
			t.Errorf("mutating %s did not change the job key", name)
		}
	}

	if JobKey(goldenSpec()) != base {
		t.Error("identical specs produced different keys")
	}
}
