package core

import (
	"strings"
	"testing"

	"dsmdist/internal/exec"
	"dsmdist/internal/link"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
	"dsmdist/internal/xform"
)

func build(t *testing.T, src string) *link.Image {
	t.Helper()
	return buildAt(t, src, xform.O3())
}

func buildAt(t *testing.T, src string, opt xform.Options) *link.Image {
	t.Helper()
	tc := NewAt(opt)
	img, err := tc.Build(map[string]string{"main.f": src})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return img
}

func run(t *testing.T, img *link.Image, nprocs int, policy ospage.Policy) *exec.Result {
	t.Helper()
	res, err := Run(img, machine.Tiny(nprocs), RunOptions{Policy: policy})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func arr(t *testing.T, res *exec.Result, unit, name string) []float64 {
	t.Helper()
	a, err := Array(res, unit, name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSerialProgram(t *testing.T) {
	img := build(t, `
      program p
      real*8 a(10)
      integer i
      do i = 1, 10
        a(i) = dble(i) * 2.0
      end do
      end
`)
	res := run(t, img, 1, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	for i := 0; i < 10; i++ {
		if a[i] != float64(i+1)*2 {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles counted")
	}
}

func TestDoacrossBlock(t *testing.T) {
	img := build(t, `
      program p
      real*8 a(64)
c$distribute a(block)
      integer i
c$doacross local(i) shared(a) affinity(i) = data(a(i))
      do i = 1, 64
        a(i) = dble(i)
      end do
      end
`)
	res := run(t, img, 4, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	for i := 0; i < 64; i++ {
		if a[i] != float64(i+1) {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
	// All four processors must have executed memory traffic.
	for p := 0; p < 4; p++ {
		if res.Stats[p].Stores == 0 {
			t.Fatalf("processor %d did no stores", p)
		}
	}
}

// opt-level equivalence: the reshaped transpose must produce identical
// results at every optimization level (the Table 2 ablation levels).
func TestReshapedTransposeAllOptLevels(t *testing.T) {
	src := `
      program p
      integer n
      parameter (n = 24)
      real*8 a(n, n), b(n, n)
c$distribute_reshape a(*, block)
c$distribute_reshape b(block, *)
      integer i, j
c$doacross nest(i,j) local(i,j) affinity(i,j) = data(b(i,j))
      do i = 1, n
        do j = 1, n
          b(i, j) = dble(i*100 + j)
        end do
      end do
c$doacross local(i, j) affinity(i) = data(a(1,i))
      do i = 1, n
        do j = 1, n
          a(j, i) = b(i, j)
        end do
      end do
      end
`
	var ref []float64
	for _, opt := range []xform.Options{xform.O0(), xform.O1(), xform.O2(), xform.O3()} {
		img := buildAt(t, src, opt)
		res := run(t, img, 4, ospage.FirstTouch)
		a := arr(t, res, "p", "a")
		if ref == nil {
			ref = a
			// spot check transpose semantics
			// a(j,i) = b(i,j) = i*100+j; a is column-major:
			// a[(j-1)+(i-1)*24] = i*100+j
			if a[0] != 101 || a[1] != 102 || a[24] != 201 {
				t.Fatalf("transpose wrong: a[0..2]=%v %v, a[24]=%v", a[0], a[1], a[24])
			}
			continue
		}
		for k := range a {
			if a[k] != ref[k] {
				t.Fatalf("opt %+v: a[%d] = %v, O0 got %v", opt, k, a[k], ref[k])
			}
		}
	}
}

// Stencil peeling: neighbours cross portion boundaries.
func TestReshapedStencilPeeling(t *testing.T) {
	src := `
      program p
      integer n
      parameter (n = 40)
      real*8 a(n), b(n)
c$distribute_reshape a(block), b(block)
      integer i
c$doacross local(i) affinity(i) = data(b(i))
      do i = 1, n
        b(i) = dble(i)
      end do
c$doacross local(i) affinity(i) = data(a(i))
      do i = 2, n-1
        a(i) = (b(i-1) + b(i) + b(i+1)) / 3.0
      end do
      end
`
	for _, np := range []int{1, 3, 4, 7} {
		img := build(t, src)
		res := run(t, img, np, ospage.FirstTouch)
		a := arr(t, res, "p", "a")
		for i := 2; i <= 39; i++ {
			want := float64(3*i) / 3.0
			if a[i-1] != want {
				t.Fatalf("np=%d: a(%d) = %v, want %v", np, i, a[i-1], want)
			}
		}
	}
}

func TestCyclicDistributions(t *testing.T) {
	src := `
      program p
      integer n
      parameter (n = 30)
      real*8 a(n), b(n)
c$distribute_reshape a(cyclic)
c$distribute_reshape b(cyclic(3))
      integer i
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = dble(i)
      end do
c$doacross local(i) affinity(i) = data(b(i))
      do i = 1, n
        b(i) = dble(i) * 10.0
      end do
      end
`
	for _, np := range []int{1, 2, 4} {
		img := build(t, src)
		res := run(t, img, np, ospage.FirstTouch)
		a := arr(t, res, "p", "a")
		b := arr(t, res, "p", "b")
		for i := 0; i < 30; i++ {
			if a[i] != float64(i+1) {
				t.Fatalf("np=%d: cyclic a[%d] = %v", np, i, a[i])
			}
			if b[i] != float64(i+1)*10 {
				t.Fatalf("np=%d: cyclic(3) b[%d] = %v", np, i, b[i])
			}
		}
	}
}

func TestSubroutineCallAndCloning(t *testing.T) {
	src := `
      program p
      integer n
      parameter (n = 32)
      real*8 a(n), b(n)
c$distribute_reshape a(block)
c$distribute_reshape b(cyclic)
      integer i
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = 1.0
        b(i) = 2.0
      end do
      call scale(a, 3.0)
      call scale(b, 5.0)
      end

      subroutine scale(x, f)
      integer n, i
      parameter (n = 32)
      real*8 x(n), f
      do i = 1, n
        x(i) = x(i) * f
      end do
      return
      end
`
	img := build(t, src)
	// Two distinct reshaped signatures -> two clones of scale.
	if img.Clones["scale"] != 2 {
		t.Fatalf("scale clones = %d, want 2", img.Clones["scale"])
	}
	res := run(t, img, 4, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	b := arr(t, res, "p", "b")
	for i := 0; i < 32; i++ {
		if a[i] != 3.0 {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
		if b[i] != 10.0 {
			t.Fatalf("b[%d] = %v", i, b[i])
		}
	}
}

func TestPortionArgumentPassing(t *testing.T) {
	// The paper's §3.2.1 example: pass each cyclic(5) portion chunk to a
	// subroutine that sees it as a plain 5-element array.
	src := `
      program p
      real*8 a(1000)
c$distribute_reshape a(cyclic(5))
      integer i
      do i = 1, 1000, 5
        call mysub(a(i))
      end do
      end

      subroutine mysub(x)
      real*8 x(5)
      integer j
      do j = 1, 5
        x(j) = dble(j)
      end do
      return
      end
`
	img := build(t, src)
	res := run(t, img, 4, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	for i := 0; i < 1000; i++ {
		if a[i] != float64(i%5+1) {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
}

func TestRuntimeCheckCatchesOversizedFormal(t *testing.T) {
	// The formal declares 6 elements but each portion is 5: §6 runtime
	// check must fire.
	src := `
      program p
      real*8 a(20)
c$distribute_reshape a(cyclic(5))
      call mysub(a(1))
      end

      subroutine mysub(x)
      real*8 x(6)
      x(1) = 0.0
      return
      end
`
	img := build(t, src)
	_, err := Run(img, machine.Tiny(4), RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "portion") {
		t.Fatalf("oversized formal not caught: %v", err)
	}
}

func TestRedistributeEndToEnd(t *testing.T) {
	src := `
      program p
      integer n
      parameter (n = 64)
      real*8 a(n)
c$distribute a(block)
      integer i
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = dble(i)
      end do
c$redistribute a(cyclic)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = a(i) + 1000.0
      end do
      end
`
	img := build(t, src)
	res := run(t, img, 4, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	for i := 0; i < 64; i++ {
		if a[i] != float64(i+1)+1000 {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
	if res.Pages.Migrated == 0 {
		t.Fatal("redistribute moved no pages")
	}
}

func TestParallelSpeedup(t *testing.T) {
	// A bandwidth-heavy distributed loop should speed up with procs.
	src := `
      program p
      integer n
      parameter (n = 16384)
      real*8 a(n), b(n)
c$distribute_reshape a(block), b(block)
      integer i, it
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = dble(i)
        b(i) = 0.0
      end do
      do it = 1, 3
c$doacross local(i) affinity(i) = data(b(i))
      do i = 2, n-1
        b(i) = (a(i-1) + a(i) + a(i+1)) / 3.0
      end do
      end do
      end
`
	img1 := build(t, src)
	res1 := run(t, img1, 1, ospage.FirstTouch)
	img8 := build(t, src)
	res8 := run(t, img8, 8, ospage.FirstTouch)
	sp := exec.Speedup(res1.Cycles, res8.Cycles)
	if sp < 2.0 {
		t.Fatalf("8-processor speedup only %.2fx (serial %d cyc, parallel %d cyc)",
			sp, res1.Cycles, res8.Cycles)
	}
}

func TestSchedtypeSimpleWithoutAffinity(t *testing.T) {
	src := `
      program p
      real*8 a(100)
      integer i
c$doacross local(i) shared(a)
      do i = 1, 100
        a(i) = dble(i)
      end do
      end
`
	img := build(t, src)
	res := run(t, img, 3, ospage.RoundRobin)
	a := arr(t, res, "p", "a")
	for i := 0; i < 100; i++ {
		if a[i] != float64(i+1) {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
}

func TestInterleaveSchedule(t *testing.T) {
	src := `
      program p
      real*8 a(50)
      integer i
c$doacross local(i) shared(a) schedtype(interleave, 4)
      do i = 1, 50
        a(i) = dble(i) * 3.0
      end do
      end
`
	img := build(t, src)
	res := run(t, img, 4, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	for i := 0; i < 50; i++ {
		if a[i] != float64(i+1)*3 {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
}

func TestCommonBlockSharing(t *testing.T) {
	src := `
      program p
      real*8 a(16)
      common /shared/ a
      integer i
      do i = 1, 16
        a(i) = dble(i)
      end do
      call bump
      end

      subroutine bump
      real*8 a(16)
      common /shared/ a
      integer i
      do i = 1, 16
        a(i) = a(i) + 100.0
      end do
      return
      end
`
	img := build(t, src)
	res := run(t, img, 2, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	for i := 0; i < 16; i++ {
		if a[i] != float64(i+1)+100 {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
}

func TestLinkErrors(t *testing.T) {
	tc := New()
	// Undefined subroutine.
	_, err := tc.Build(map[string]string{"m.f": `
      program p
      call nosuch
      end
`})
	if err == nil || !strings.Contains(err.Error(), "undefined subroutine") {
		t.Fatalf("undefined call: %v", err)
	}
	// Duplicate definitions.
	_, err = tc.Build(map[string]string{
		"a.f": "      program p\n      end\n      subroutine s\n      end\n",
		"b.f": "      subroutine s\n      end\n",
	})
	if err == nil || !strings.Contains(err.Error(), "defined in both") {
		t.Fatalf("duplicate defs: %v", err)
	}
	// Whole reshaped array with mismatched extent (§3.2.1).
	_, err = tc.Build(map[string]string{"m.f": `
      program p
      real*8 a(32)
c$distribute_reshape a(block)
      call s(a)
      end

      subroutine s(x)
      real*8 x(16)
      x(1) = 0.0
      end
`})
	if err == nil || !strings.Contains(err.Error(), "match exactly") {
		t.Fatalf("shape mismatch: %v", err)
	}
}

func TestCommonConsistencyLinkCheck(t *testing.T) {
	tc := New()
	// Reshaped common member declared with different extents in two
	// files (§6 link-time check).
	_, err := tc.Build(map[string]string{
		"a.f": `
      program p
      real*8 a(32)
c$distribute_reshape a(block)
      common /blk/ a
      a(1) = 0.0
      call s
      end
`,
		"b.f": `
      subroutine s
      real*8 a(16)
c$distribute_reshape a(block)
      common /blk/ a
      a(1) = 0.0
      end
`,
	})
	if err == nil || !strings.Contains(err.Error(), "§6") {
		t.Fatalf("common inconsistency not caught: %v", err)
	}
	// Consistent declarations link fine.
	_, err = tc.Build(map[string]string{
		"a.f": `
      program p
      real*8 a(32)
c$distribute_reshape a(block)
      common /blk/ a
      a(1) = 0.0
      call s
      end
`,
		"b.f": `
      subroutine s
      real*8 a(32)
c$distribute_reshape a(block)
      common /blk/ a
      a(2) = 0.0
      end
`,
	})
	if err != nil {
		t.Fatalf("consistent commons rejected: %v", err)
	}
}

func TestPortionIntrinsics(t *testing.T) {
	src := `
      program p
      real*8 a(40), lo(8), hi(8)
c$distribute a(block)
      integer q, np
      np = dsm_numthreads()
      do q = 1, np
        lo(q) = dble(dsm_portion_lo(a, 1, q - 1))
        hi(q) = dble(dsm_portion_hi(a, 1, q - 1))
      end do
      end
`
	img := build(t, src)
	res := run(t, img, 4, ospage.FirstTouch)
	lo := arr(t, res, "p", "lo")
	hi := arr(t, res, "p", "hi")
	// 40 elements over 4 procs, block: portions of 10.
	for q := 0; q < 4; q++ {
		if lo[q] != float64(q*10+1) || hi[q] != float64((q+1)*10) {
			t.Fatalf("portion %d = [%v, %v]", q, lo[q], hi[q])
		}
	}
}

func TestDynamicScheduling(t *testing.T) {
	for _, sched := range []string{"schedtype(dynamic)", "schedtype(dynamic, 4)", "schedtype(gss)"} {
		src := `
      program p
      real*8 a(100)
      integer i
c$doacross local(i) shared(a) ` + sched + `
      do i = 1, 100
        a(i) = dble(i) * 2.0
      end do
      end
`
		img := build(t, src)
		res := run(t, img, 4, ospage.FirstTouch)
		a := arr(t, res, "p", "a")
		for i := 0; i < 100; i++ {
			if a[i] != float64(i+1)*2 {
				t.Fatalf("%s: a[%d] = %v", sched, i, a[i])
			}
		}
		// All processors should have participated (work available
		// exceeds one chunk).
		busy := 0
		for p := 0; p < 4; p++ {
			if res.Stats[p].Stores > 0 {
				busy++
			}
		}
		if busy < 2 {
			t.Fatalf("%s: only %d processors did work", sched, busy)
		}
	}
}

func TestDynamicScheduleEmptyLoop(t *testing.T) {
	img := build(t, `
      program p
      real*8 a(10)
      integer i
c$doacross local(i) shared(a) schedtype(dynamic)
      do i = 5, 4
        a(i) = 1.0
      end do
      a(1) = 9.0
      end
`)
	res := run(t, img, 3, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	if a[0] != 9.0 || a[4] != 0.0 {
		t.Fatalf("empty dynamic loop ran: %v", a[:5])
	}
}

func TestMoreProcsThanElements(t *testing.T) {
	// 12 processors, 5 elements: most portions are empty; bounds math
	// must produce empty loops, not out-of-range traffic.
	img := build(t, `
      program p
      real*8 a(5)
c$distribute_reshape a(block)
      integer i
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, 5
        a(i) = dble(i)
      end do
      end
`)
	res := run(t, img, 12, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	for i := 0; i < 5; i++ {
		if a[i] != float64(i+1) {
			t.Fatalf("a[%d] = %v", i, a[i])
		}
	}
}

func TestNegativeStepLoop(t *testing.T) {
	img := build(t, `
      program p
      real*8 a(10)
      integer i, c
      c = 0
      do i = 10, 1, -1
        c = c + 1
        a(i) = dble(c)
      end do
      end
`)
	res := run(t, img, 1, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	// a(10) written first (c=1), a(1) last (c=10).
	if a[9] != 1 || a[0] != 10 {
		t.Fatalf("reverse loop order wrong: a(10)=%v a(1)=%v", a[9], a[0])
	}
}

func TestNestedSerialLoopsInsideRegion(t *testing.T) {
	// Inner serial loops of a doacross body run in full per processor.
	img := build(t, `
      program p
      real*8 a(8, 8)
c$distribute_reshape a(*, block)
      integer i, j
c$doacross local(i, j) affinity(j) = data(a(1, j))
      do j = 1, 8
        do i = 1, 8
          a(i, j) = dble(i*10 + j)
        end do
      end do
      end
`)
	res := run(t, img, 4, ospage.FirstTouch)
	a := arr(t, res, "p", "a")
	for j := 1; j <= 8; j++ {
		for i := 1; i <= 8; i++ {
			if a[(i-1)+(j-1)*8] != float64(i*10+j) {
				t.Fatalf("a(%d,%d) = %v", i, j, a[(i-1)+(j-1)*8])
			}
		}
	}
}
