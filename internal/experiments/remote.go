// Remote sweeps: when Sizes.Remote is set (dsmbench -remote), a figure
// sweep becomes one batched dsmd submission instead of a local fan-out.
// The whole sweep — serial baseline plus every variant × P point — goes up
// as a single POST /batch (atomic all-or-429 admission, per-element
// cache/coalesce), and completion is followed point by point through
// ForEachProgress so the -progress meter renders the same live line
// (done/total, ETA, deterministic lowest-index failure) a local sweep
// gets. Determinism makes the returned rows identical to local ones in
// every simulated field; only WallMS (here: the host time following the
// point) differs, exactly as it does between two local runs.
package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/service"
	"dsmdist/internal/workloads"
	"dsmdist/internal/xform"
)

// remoteSweep ships one figure sweep to the dsmd service as a batch.
// preset is the machine preset name shared by every point (sweeps with
// customized machines are rejected before this is called).
func remoteSweep(exp, preset string, gen func(workloads.Variant) string, s Sizes,
	mkCfg func(int) *machine.Config) ([]Row, error) {

	off := false
	batch := &service.BatchRequest{
		Defaults: service.JobRequest{
			Machine:       preset,
			Opt:           "O3",
			RuntimeChecks: &off, // measurement runs, as in the paper
		},
		NoWait: true,
	}
	// Element 0: the serial baseline every speedup is computed against.
	batch.Jobs = append(batch.Jobs, service.JobRequest{
		Sources: map[string]string{"bench.f": gen(workloads.Serial)},
		Procs:   1,
	})
	type point struct {
		vr variantRun
		p  int
	}
	var points []point
	for _, vr := range figureVariants() {
		if vr.opt != xform.O3() {
			return nil, fmt.Errorf("%s: variant %s uses a non-O3 optimization set; teach remoteSweep to encode it before running remotely", exp, vr.label)
		}
		for _, p := range s.Procs {
			points = append(points, point{vr, p})
			batch.Jobs = append(batch.Jobs, service.JobRequest{
				Sources: map[string]string{"bench.f": gen(vr.variant)},
				Procs:   p,
				Policy:  vr.policy.String(),
			})
		}
	}

	views, err := s.Remote.RunBatch(batch)
	if err != nil {
		return nil, fmt.Errorf("%s: batch submit: %w", exp, err)
	}
	docs := make([]*core.ResultDoc, len(views))
	walls := make([]float64, len(views))
	meter, onDone := meterFor(s, exp, len(views), nil)
	err = ForEachProgress(s.Par, len(views), func(i int) error {
		t0 := time.Now()
		v := &views[i]
		if v.State != service.StateDone {
			fv, err := s.Remote.WaitJob(v.ID)
			if err != nil {
				return fmt.Errorf("%s point %d: %w", exp, i, err)
			}
			v = fv
		}
		var doc core.ResultDoc
		if err := json.Unmarshal(v.Result, &doc); err != nil {
			return fmt.Errorf("%s point %d: bad result document: %w", exp, i, err)
		}
		docs[i] = &doc
		walls[i] = float64(time.Since(t0)) / float64(time.Millisecond)
		return nil
	}, onDone)
	if meter != nil {
		meter.Finish()
	}
	if err != nil {
		return nil, err
	}

	base := docs[0].Measured()
	rows := make([]Row, len(points))
	for i, pt := range points {
		rows[i] = rowFromDoc(exp, pt.vr.label, pt.p, mkCfg(pt.p), docs[i+1], base)
		rows[i].WallMS = walls[i+1]
	}
	return rows, nil
}

// rowFromDoc converts a service result document into the Row a local run
// of the same point produces: identical in every simulated field (the
// document's counters are the run's counters, and Seconds/TLBPct/Speedup
// are recomputed with the same formulas as rowFrom).
func rowFromDoc(exp, variant string, p int, cfg *machine.Config, doc *core.ResultDoc, base int64) Row {
	r := Row{
		V:   1,
		Exp: exp, Variant: variant, P: p,
		Cycles:  doc.Measured(),
		L2Miss:  doc.Total.L2Miss,
		Remote:  doc.Total.L2MissRemote,
		HwDiv:   doc.HwDiv,
		SoftDiv: doc.SoftDiv,
		Instrs:  doc.Instrs,
		Stats:   doc.Total,
	}
	r.Seconds = cfg.Seconds(r.Cycles)
	if r.Cycles > 0 {
		r.TLBPct = float64(doc.Total.TLBCyc) / float64(r.Cycles*int64(p))
	}
	if base > 0 {
		r.Speedup = float64(base) / float64(r.Cycles)
	}
	return r
}
