package experiments

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"dsmdist/internal/exec"
	"dsmdist/internal/machine"
)

// The figure experiments themselves are exercised by bench_test.go at the
// repository root; these tests cover the harness plumbing at tiny scale.

func tinySizes() Sizes {
	return Sizes{
		LUN: 8, LUIters: 1,
		TransN: 32, TransIters: 1,
		ConvSmallN: 16, ConvLargeN: 24, ConvIters: 1,
		Procs:      []int{1, 2},
		LUNodeFrac: 1.44,
	}
}

func TestTable2Rows(t *testing.T) {
	rows, err := Table2(tinySizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Cycles <= 0 || r.P != 1 {
			t.Fatalf("bad row %+v", r)
		}
	}
	// The unoptimized build must execute hardware divides; the O3 builds
	// must not.
	if rows[0].HwDiv == 0 {
		t.Fatal("O0 executed no hardware divides")
	}
	if rows[3].HwDiv != 0 {
		t.Fatalf("O3 executed %d hardware divides", rows[3].HwDiv)
	}
}

func TestSweepBaselinesAndLabels(t *testing.T) {
	rows, err := Fig5(tinySizes())
	if err != nil {
		t.Fatal(err)
	}
	// 4 variants x 2 processor counts.
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	labels := map[string]bool{}
	for _, r := range rows {
		labels[r.Variant] = true
		if r.Speedup <= 0 {
			t.Fatalf("row %+v has no speedup", r)
		}
	}
	for _, want := range []string{"first-touch", "round-robin", "regular", "reshaped"} {
		if !labels[want] {
			t.Fatalf("variant %s missing", want)
		}
	}
}

// stripHostTiming zeroes the host-side wall-clock field, the only Row field
// allowed to differ between runs of the same experiment.
func stripHostTiming(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	for i := range out {
		out[i].WallMS = 0
	}
	return out
}

// TestSweepDeterministicUnderParallelism is the contract of the host-side
// performance layer: the worker pool and the shared compile cache must not
// change a single simulated cycle, counter, or the row order. Run with
// -race, this also exercises the pool for data races (CI does).
func TestSweepDeterministicUnderParallelism(t *testing.T) {
	s := tinySizes()
	s.Procs = []int{1, 2, 4}

	s.Par = 1
	serial, err := Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Par = 8
	parallel, err := Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 12 || len(parallel) != 12 {
		t.Fatalf("rows = %d serial, %d parallel", len(serial), len(parallel))
	}
	if a, b := stripHostTiming(serial), stripHostTiming(parallel); !reflect.DeepEqual(a, b) {
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Errorf("row %d differs:\n par=1 %+v\n par=8 %+v", i, a[i], b[i])
			}
		}
		t.Fatal("par=1 and par=8 rows differ")
	}

	// Table2 goes through the same pool.
	s.Par = 1
	t2s, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Par = 8
	t2p, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripHostTiming(t2s), stripHostTiming(t2p)) {
		t.Fatal("table2 par=1 and par=8 rows differ")
	}
}

// TestForEach covers the worker-pool helper: full coverage of the index
// space at any parallelism, and the deterministic lowest-index error.
func TestForEach(t *testing.T) {
	for _, par := range []int{0, 1, 3, 16} {
		var n32 int32
		seen := make([]int32, 40)
		if err := ForEach(par, 40, func(i int) error {
			atomic.AddInt32(&n32, 1)
			atomic.AddInt32(&seen[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if n32 != 40 {
			t.Fatalf("par=%d ran %d jobs", par, n32)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("par=%d job %d ran %d times", par, i, c)
			}
		}
	}
	errA, errB := errors.New("a"), errors.New("b")
	err := ForEach(4, 10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 1:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("forEach returned %v, want the lowest-index error %v", err, errA)
	}
}

// TestRowSchemaVersion pins the machine-readable row version: every row
// the harness emits carries v=1 until the schema changes incompatibly.
func TestRowSchemaVersion(t *testing.T) {
	r := rowFrom("x", "v", 1, machine.Tiny(1), &exec.Result{Cycles: 10}, 0)
	if r.V != 1 {
		t.Fatalf("rowFrom set v=%d, want 1", r.V)
	}
}

func TestPrintAndSummary(t *testing.T) {
	rows := []Row{
		{Exp: "figX", Variant: "reshaped", P: 4, Cycles: 100, Speedup: 3.5},
		{Exp: "figX", Variant: "reshaped", P: 8, Cycles: 50, Speedup: 7.0},
	}
	var b strings.Builder
	Print(&b, rows)
	out := b.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "reshaped") {
		t.Fatalf("print output: %q", out)
	}
	sum := Summary(rows)
	if !strings.Contains(sum, "7.00x at P=8") {
		t.Fatalf("summary: %q", sum)
	}
	// Empty input prints nothing.
	var e strings.Builder
	Print(&e, nil)
	if e.Len() != 0 {
		t.Fatal("empty print produced output")
	}
}

func TestLuMachineCapacity(t *testing.T) {
	s := tinySizes()
	cfg := luMachine(s, 4)
	data := int64(2) * 5 * 8 * 8 * 8 * 8
	if int64(cfg.NodeMemBytes) >= data {
		t.Fatalf("node memory %d does not force the capacity spill (data %d)",
			cfg.NodeMemBytes, data)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
