package experiments

import (
	"strings"
	"testing"
)

// The figure experiments themselves are exercised by bench_test.go at the
// repository root; these tests cover the harness plumbing at tiny scale.

func tinySizes() Sizes {
	return Sizes{
		LUN: 8, LUIters: 1,
		TransN: 32, TransIters: 1,
		ConvSmallN: 16, ConvLargeN: 24, ConvIters: 1,
		Procs:      []int{1, 2},
		LUNodeFrac: 1.44,
	}
}

func TestTable2Rows(t *testing.T) {
	rows, err := Table2(tinySizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Cycles <= 0 || r.P != 1 {
			t.Fatalf("bad row %+v", r)
		}
	}
	// The unoptimized build must execute hardware divides; the O3 builds
	// must not.
	if rows[0].HwDiv == 0 {
		t.Fatal("O0 executed no hardware divides")
	}
	if rows[3].HwDiv != 0 {
		t.Fatalf("O3 executed %d hardware divides", rows[3].HwDiv)
	}
}

func TestSweepBaselinesAndLabels(t *testing.T) {
	rows, err := Fig5(tinySizes())
	if err != nil {
		t.Fatal(err)
	}
	// 4 variants x 2 processor counts.
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	labels := map[string]bool{}
	for _, r := range rows {
		labels[r.Variant] = true
		if r.Speedup <= 0 {
			t.Fatalf("row %+v has no speedup", r)
		}
	}
	for _, want := range []string{"first-touch", "round-robin", "regular", "reshaped"} {
		if !labels[want] {
			t.Fatalf("variant %s missing", want)
		}
	}
}

func TestPrintAndSummary(t *testing.T) {
	rows := []Row{
		{Exp: "figX", Variant: "reshaped", P: 4, Cycles: 100, Speedup: 3.5},
		{Exp: "figX", Variant: "reshaped", P: 8, Cycles: 50, Speedup: 7.0},
	}
	var b strings.Builder
	Print(&b, rows)
	out := b.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "reshaped") {
		t.Fatalf("print output: %q", out)
	}
	sum := Summary(rows)
	if !strings.Contains(sum, "7.00x at P=8") {
		t.Fatalf("summary: %q", sum)
	}
	// Empty input prints nothing.
	var e strings.Builder
	Print(&e, nil)
	if e.Len() != 0 {
		t.Fatal("empty print produced output")
	}
}

func TestLuMachineCapacity(t *testing.T) {
	s := tinySizes()
	cfg := luMachine(s, 4)
	data := int64(2) * 5 * 8 * 8 * 8 * 8
	if int64(cfg.NodeMemBytes) >= data {
		t.Fatalf("node memory %d does not force the capacity spill (data %d)",
			cfg.NodeMemBytes, data)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
