package experiments

import (
	"strings"
	"testing"
)

func TestRedistRows(t *testing.T) {
	s := tinySizes()
	s.Procs = []int{4} // below one full node there is no inter-node motion
	rows, err := Redist(s)
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes x 2 spec pairs x 2 modes x 1 processor count.
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	sched, serial := 0, 0
	for _, r := range rows {
		if r.Cycles <= 0 {
			t.Fatalf("row %+v has no cycles", r)
		}
		if r.RedistCyc <= 0 {
			t.Fatalf("row %+v recorded no redistribution cycles", r)
		}
		switch {
		case strings.HasSuffix(r.Variant, " scheduled"):
			sched++
			// The serial baseline pairing must have been resolved.
			if r.Speedup <= 0 {
				t.Fatalf("scheduled row %+v has no serial-vs-scheduled ratio", r)
			}
		case strings.HasSuffix(r.Variant, " serial"):
			serial++
		default:
			t.Fatalf("row variant %q names no redist mode", r.Variant)
		}
	}
	if sched != 4 || serial != 4 {
		t.Fatalf("mode split = %d scheduled, %d serial", sched, serial)
	}
}
