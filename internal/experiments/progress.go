// Sweep progress reporting: a Meter renders a single live stderr line
// (points done/total, compile-cache hits, ETA) as ForEachProgress
// completes jobs, and announces the sweep's deterministic error — the
// lowest-index failure — as soon as it is known, instead of after the
// whole sweep drains.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"dsmdist/internal/core"
)

// Meter tracks sweep completion and renders a progress line to w.
// Safe for concurrent Done calls from ForEachProgress workers.
type Meter struct {
	mu        sync.Mutex
	w         io.Writer
	label     string
	total     int
	cache     *core.BuildCache // optional, for hit counts
	start     time.Time
	done      int
	completed []bool
	errs      []error
	announced bool
	lineLen   int
}

// NewMeter creates a meter for a sweep of total jobs. cache may be nil.
func NewMeter(w io.Writer, label string, total int, cache *core.BuildCache) *Meter {
	return &Meter{
		w: w, label: label, total: total, cache: cache,
		start:     time.Now(),
		completed: make([]bool, total),
		errs:      make([]error, total),
	}
}

// Done records job i's completion and redraws the progress line. When job
// i failed, the failure is announced the moment it becomes the sweep's
// definitive error — every lower-index job has completed without one — so
// the report is both early and deterministic.
func (m *Meter) Done(i int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed[i] = true
	m.errs[i] = err
	m.done++
	m.render()
	if m.announced {
		return
	}
	for j := 0; j < m.total && m.completed[j]; j++ {
		if m.errs[j] != nil {
			m.clearLine()
			fmt.Fprintf(m.w, "%s: point %d/%d failed: %v\n", m.label, j+1, m.total, m.errs[j])
			m.announced = true
			m.render()
			break
		}
	}
}

// Finish terminates the progress line.
func (m *Meter) Finish() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.render()
	fmt.Fprintln(m.w)
}

func (m *Meter) render() {
	elapsed := time.Since(m.start)
	line := fmt.Sprintf("%s: %d/%d points", m.label, m.done, m.total)
	if m.cache != nil {
		hits, misses := m.cache.Stats()
		line += fmt.Sprintf(" · cache %d hit / %d miss", hits, misses)
	}
	if m.done > 0 && m.done < m.total {
		eta := time.Duration(float64(elapsed) / float64(m.done) * float64(m.total-m.done))
		line += fmt.Sprintf(" · ETA %s", eta.Round(time.Second))
	} else if m.done == m.total {
		line += fmt.Sprintf(" · %s", elapsed.Round(time.Millisecond))
	}
	pad := m.lineLen - len(line)
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(m.w, "\r%s%s", line, strings.Repeat(" ", pad))
	m.lineLen = len(line)
}

func (m *Meter) clearLine() {
	fmt.Fprintf(m.w, "\r%s\r", strings.Repeat(" ", m.lineLen))
	m.lineLen = 0
}

// meterFor wraps a sweep's job completions when Sizes.Progress is set;
// with no progress writer both returns are nil and ForEachProgress runs
// without callbacks.
func meterFor(s Sizes, label string, total int, cache *core.BuildCache) (*Meter, func(int, error)) {
	if s.Progress == nil {
		return nil, nil
	}
	m := NewMeter(s.Progress, label, total, cache)
	return m, m.Done
}
