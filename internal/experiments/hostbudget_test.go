package experiments

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsmdist/internal/hostpool"
)

// TestForEachSharesHostBudget pins the shared-budget contract: ForEach's
// workers (caller included) never exceed the hostpool budget, and a nested
// Acquire from inside a job — which is what the parallel execution engine
// does per region — draws from the same pool instead of multiplying it.
func TestForEachSharesHostBudget(t *testing.T) {
	prev := hostpool.SetBudget(3)
	defer hostpool.SetBudget(prev)

	var cur, peak atomic.Int32
	var mu sync.Mutex
	err := ForEach(0, 12, func(i int) error {
		c := cur.Add(1)
		defer cur.Add(-1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		// A nested draw (the engine's per-region acquire) must see the
		// sweep's workers already charged against the budget.
		extra := hostpool.Acquire(8)
		if got := int32(extra) + cur.Load(); got > 3 {
			hostpool.Release(extra)
			t.Errorf("job %d: %d workers live against budget 3", i, got)
			return nil
		}
		time.Sleep(time.Millisecond)
		hostpool.Release(extra)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p < 1 || p > 3 {
		t.Fatalf("peak concurrent jobs %d, budget 3", p)
	}
	if hostpool.InUse() != 0 {
		t.Fatalf("budget not returned: %d still in use", hostpool.InUse())
	}
}

// TestForEachParOneStaysSerial pins par=1 as strictly serial regardless of
// budget.
func TestForEachParOneStaysSerial(t *testing.T) {
	prev := hostpool.SetBudget(8)
	defer hostpool.SetBudget(prev)
	var cur, peak atomic.Int32
	_ = ForEach(1, 6, func(i int) error {
		c := cur.Add(1)
		defer cur.Add(-1)
		if c > peak.Load() {
			peak.Store(c)
		}
		return nil
	})
	if peak.Load() != 1 {
		t.Fatalf("par=1 ran %d jobs concurrently", peak.Load())
	}
}
