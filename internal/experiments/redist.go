// The redistribution sweep: quantifies the scheduled bulk-transfer
// collective against the legacy serial page-walk model of c$redistribute
// across array sizes, processor counts and distribution-spec pairs. The
// workload's timed section is a pure redistribute ping-pong, so Cycles is
// the data-motion cost and RedistCyc the recorder's attribution of it.
package experiments

import (
	"fmt"
	"time"

	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/obs"
	"dsmdist/internal/ospage"
	"dsmdist/internal/workloads"
	"dsmdist/internal/xform"
)

// RedistPair is one old-spec → new-spec redistribution the sweep measures.
type RedistPair struct {
	Label    string
	From, To string // dimension spec lists, e.g. "(*, block)"
}

// RedistPairs are the spec pairs the redist experiment covers: the
// transpose-style remap (all-to-all traffic) and a cyclic(k) → block remap
// (the intersection sets are genuinely block-cyclic).
func RedistPairs() []RedistPair {
	return []RedistPair{
		{"(*,block)->(block,*)", "(*, block)", "(block, *)"},
		{"(cyclic(8),*)->(block,*)", "(cyclic(8), *)", "(block, *)"},
	}
}

// redistIters is how many ping-pongs (two redistributes each) the timed
// section performs.
const redistIters = 2

// Redist sweeps the redistribution engine: for each array size, spec pair
// and processor count, one run under the scheduled collective and one under
// -redist=serial. Rows carry the timed-section cycles plus the recorder's
// RedistCyc attribution; Speedup is serial-model cycles over
// scheduled-model cycles at the same point.
func Redist(s Sizes) ([]Row, error) {
	if s.Remote != nil {
		return nil, fmt.Errorf("redist: not runnable via -remote (RedistCyc needs a local recorder attached to the run)")
	}
	sizes := []int{s.ConvSmallN, s.TransN}
	modes := []struct {
		label  string
		serial bool
	}{
		{"scheduled", false},
		{"serial", true},
	}

	type point struct {
		n    int
		pair RedistPair
		mode int
		p    int
	}
	var points []point
	for _, n := range sizes {
		for _, pr := range RedistPairs() {
			for m := range modes {
				for _, p := range s.Procs {
					points = append(points, point{n, pr, m, p})
				}
			}
		}
	}

	cache := core.NewBuildCache()
	rows := make([]Row, len(points))
	err := ForEach(s.Par, len(points), func(i int) error {
		pt := points[i]
		cfg := machine.Scaled(pt.p)
		rec := obs.NewRecorder(cfg)
		tc := core.NewAt(xform.O3())
		tc.RuntimeChecks = false
		tc.Cache = cache
		src := workloads.Redistribute(pt.n, redistIters, pt.pair.From, pt.pair.To)
		t0 := time.Now()
		img, err := tc.Build(map[string]string{"bench.f": src})
		if err != nil {
			return fmt.Errorf("redist n=%d %s: %w", pt.n, pt.pair.Label, err)
		}
		res, err := core.Run(img, cfg, core.RunOptions{
			Policy: ospage.FirstTouch, Recorder: rec,
			RedistSerial: modes[pt.mode].serial, Engine: s.Engine, Tier: s.Tier})
		if err != nil {
			return fmt.Errorf("redist n=%d %s %s P=%d: %w",
				pt.n, pt.pair.Label, modes[pt.mode].label, pt.p, err)
		}
		label := fmt.Sprintf("n=%d %s %s", pt.n, pt.pair.Label, modes[pt.mode].label)
		rows[i] = rowFrom("redist", label, pt.p, cfg, res, 0)
		rows[i].RedistCyc = rec.RedistCycles()
		rows[i].WallMS = float64(time.Since(t0)) / float64(time.Millisecond)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Speedup of the scheduled engine over the serial model at the same
	// point (rows are laid out scheduled-block then serial-block per
	// pair).
	np := len(s.Procs)
	for i := range rows {
		pt := points[i]
		if pt.mode == 0 {
			serialRow := rows[i+np]
			if rows[i].Cycles > 0 {
				rows[i].Speedup = float64(serialRow.Cycles) / float64(rows[i].Cycles)
			}
		}
	}
	return rows, nil
}
