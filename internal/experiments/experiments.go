// Package experiments regenerates every table and figure of the paper's
// evaluation (§8) on the scaled simulated Origin-2000:
//
//	Table 2  — effect of the reshape optimizations on LU, one processor
//	Figure 4 — NAS-LU speedups, four placement strategies
//	Figure 5 — matrix transpose speedups
//	Figure 6 — 2-D convolution (small input), one- and two-level
//	Figure 7 — 2-D convolution (large input), one- and two-level
//
// Sizes are scaled by machine.ScaleFactor relative to the paper (see
// DESIGN.md); the Quick preset further shrinks them for unit benchmarks.
// Absolute seconds are not comparable to the paper's testbed; the reported
// shapes (who wins, crossovers) are — EXPERIMENTS.md records both.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsmdist/internal/core"
	"dsmdist/internal/exec"
	"dsmdist/internal/hostpool"
	"dsmdist/internal/machine"
	"dsmdist/internal/memsim"
	"dsmdist/internal/ospage"
	"dsmdist/internal/service"
	"dsmdist/internal/workloads"
	"dsmdist/internal/xform"
)

// Sizes parameterizes the experiment scale.
type Sizes struct {
	LUN, LUIters       int
	TransN, TransIters int
	ConvSmallN         int
	ConvLargeN         int
	ConvIters          int
	Procs              []int // processor counts for the figures
	// LUNodeFrac scales node memory for the LU runs so the dataset
	// exceeds one node, as in the paper (§8.1: 360 MB data vs ~250 MB
	// free per node => ratio 1.44).
	LUNodeFrac float64
	// Par bounds the host-side worker pool that runs sweep points
	// concurrently (0 = the shared hostpool budget, default GOMAXPROCS;
	// 1 = serial). Each point builds its own simulated machine, so Par
	// affects host wall time only: the rows — cycles, counters, order —
	// are bit-identical at any setting
	// (TestSweepDeterministicUnderParallelism). Sweep workers and the
	// parallel engine's region workers draw from the same budget, so the
	// two levels of host parallelism never oversubscribe the machine.
	Par int
	// Engine selects the host execution engine for every point (see
	// exec.Engine); rows are bit-identical across engines.
	Engine exec.Engine
	// Tier selects the bytecode execution tier for every point (see
	// exec.Tier); rows are bit-identical across tiers.
	Tier exec.Tier
	// Progress, when non-nil, receives a live progress line per sweep
	// (points done/total, compile-cache hits, ETA) and an early report of
	// the lowest-index failing point. Host-side reporting only: it never
	// changes the rows. dsmbench -progress points it at stderr.
	Progress io.Writer
	// Remote, when non-nil, ships each sweep to a dsmd service as one
	// batch submission instead of simulating locally (dsmbench -remote).
	// Determinism makes the rows identical to local ones except WallMS,
	// and a warm service cache turns a repeat sweep into zero new
	// simulations. Only sweeps over plain machine presets are remotable:
	// table2/fig4 customize node memory (luMachine), and the redist
	// experiment needs a local recorder, so they reject Remote.
	Remote *service.Client
}

// Full is the scale used by cmd/dsmbench (paper sizes / ScaleFactor).
func Full() Sizes {
	return Sizes{
		LUN: 40, LUIters: 1,
		TransN: 1024, TransIters: 3,
		ConvSmallN: 256, ConvLargeN: 1024, ConvIters: 1,
		Procs:      []int{1, 2, 4, 8, 16, 32, 48, 64, 80, 96},
		LUNodeFrac: 1.44,
	}
}

// Quick is a fast preset for go test benchmarks and smoke runs.
func Quick() Sizes {
	return Sizes{
		LUN: 16, LUIters: 1,
		TransN: 256, TransIters: 1,
		ConvSmallN: 96, ConvLargeN: 192, ConvIters: 1,
		Procs:      []int{1, 4, 16},
		LUNodeFrac: 1.44,
	}
}

// Row is one measured point. The JSON field names are the machine-readable
// interface of dsmbench -json; keep them stable, and bump V when the
// schema changes incompatibly.
type Row struct {
	// V is the row schema version (currently 1), the same convention as
	// dsmrun -json and the dsmd API documents.
	V       int     `json:"v"`
	Exp     string  `json:"exp"`
	Variant string  `json:"variant"`
	P       int     `json:"p"`
	Cycles  int64   `json:"cycles"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"`
	L2Miss  int64   `json:"l2_miss"`
	Remote  int64   `json:"l2_miss_remote"`
	TLBPct  float64 `json:"tlb_pct"` // fraction of time in TLB refill
	HwDiv   int64   `json:"hw_div"`
	SoftDiv int64   `json:"soft_div"`
	// Instrs counts bytecode instructions executed across all threads —
	// a pure simulated quantity (identical across engines and tiers) that
	// also anchors host-throughput numbers (instrs / wall_ms).
	Instrs int64 `json:"instrs"`
	// RedistCyc is the wall-clock cycles spent inside c$redistribute
	// (only the redist experiment measures it; 0 elsewhere).
	RedistCyc int64 `json:"redist_cyc,omitempty"`
	// Stats aggregates the per-processor memory-system counters over the
	// whole run (not just the timed section).
	Stats memsim.ProcStats `json:"stats"`
	// WallMS is the host wall-clock time spent building and running this
	// point, in milliseconds. It describes the harness, not the simulated
	// machine, varies from run to run, and must be ignored when comparing
	// rows for determinism.
	WallMS float64 `json:"wall_ms"`
}

// variantRun describes one line of a figure.
type variantRun struct {
	label   string
	variant workloads.Variant
	policy  ospage.Policy
	opt     xform.Options
}

// figureVariants are the four placement strategies every figure compares.
func figureVariants() []variantRun {
	return []variantRun{
		{"first-touch", workloads.Plain, ospage.FirstTouch, xform.O3()},
		{"round-robin", workloads.Plain, ospage.RoundRobin, xform.O3()},
		{"regular", workloads.Regular, ospage.FirstTouch, xform.O3()},
		{"reshaped", workloads.Reshaped, ospage.FirstTouch, xform.O3()},
	}
}

// runOne builds and runs one configuration. The cache (shared across a
// sweep, may be nil) deduplicates compiles of identical (source, options)
// variants; every call still loads and runs its own image.
func runOne(cache *core.BuildCache, src string, opt xform.Options, cfg *machine.Config,
	policy ospage.Policy, eng exec.Engine, tier exec.Tier) (*exec.Result, error) {
	tc := core.NewAt(opt)
	tc.RuntimeChecks = false // measurement runs, as in the paper
	tc.Cache = cache
	img, err := tc.Build(map[string]string{"bench.f": src})
	if err != nil {
		return nil, err
	}
	return core.Run(img, cfg, core.RunOptions{Policy: policy, Engine: eng, Tier: tier})
}

// ForEach runs jobs 0..n-1 over a bounded host worker set. The caller's
// goroutine is always one worker; extra workers are drawn from the shared
// hostpool budget (default GOMAXPROCS), the same budget the parallel
// execution engine draws region workers from — so sweep-level and
// engine-level host parallelism compose without oversubscribing the
// machine. par > 0 additionally caps this job's draw (1 = strictly
// serial); par <= 0 takes whatever the budget allows. Results must be
// written to preallocated per-index slots so output order never depends on
// scheduling; the error returned is the one from the lowest-numbered
// failing job, which keeps error reporting deterministic too. The sweeps
// here and the advisor's candidate verification both fan out through it.
func ForEach(par, n int, job func(int) error) error {
	return ForEachProgress(par, n, job, nil)
}

// ForEachProgress is ForEach with a completion callback and early stop.
// onDone (nil to skip) is invoked after every job with its index and
// error, from whichever worker ran it — callbacks synchronize internally
// (Meter does). Once any job fails, workers stop claiming new indices and
// only drain what is already in flight, so the returned error surfaces
// without running the rest of the sweep. The lowest-index guarantee
// survives the early stop: indices are claimed in increasing order, so by
// the time any job fails, every lower-index job has been claimed and will
// record its own outcome before the final scan.
func ForEachProgress(par, n int, job func(int) error, onDone func(int, error)) error {
	want := n - 1
	if par > 0 && par-1 < want {
		want = par - 1
	}
	extras := 0
	if want > 0 {
		extras = hostpool.Acquire(want)
		defer hostpool.Release(extras)
	}
	if extras == 0 {
		for i := 0; i < n; i++ {
			err := job(i)
			if onDone != nil {
				onDone(i, err)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := int64(-1)
	var failed atomic.Bool
	work := func() {
		for !failed.Load() {
			i := int(atomic.AddInt64(&next, 1))
			if i >= n {
				return
			}
			err := job(i)
			errs[i] = err
			if onDone != nil {
				onDone(i, err)
			}
			if err != nil {
				failed.Store(true)
			}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < extras; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// measured returns the region-of-interest cycles (the dsm_timer section
// when present, NAS-style; total cycles otherwise).
func measured(res *exec.Result) int64 {
	if res.TimerCycles > 0 {
		return res.TimerCycles
	}
	return res.Cycles
}

func rowFrom(exp, variant string, p int, cfg *machine.Config, res *exec.Result, base int64) Row {
	r := Row{
		V:   1,
		Exp: exp, Variant: variant, P: p,
		Cycles:  measured(res),
		Seconds: cfg.Seconds(res.Cycles),
		L2Miss:  res.Total.L2Miss,
		Remote:  res.Total.L2MissRemote,
		HwDiv:   res.HwDiv,
		SoftDiv: res.SoftDiv,
		Instrs:  res.Instrs,
		Stats:   res.Total,
	}
	r.Seconds = cfg.Seconds(r.Cycles)
	if r.Cycles > 0 {
		r.TLBPct = float64(res.Total.TLBCyc) / float64(r.Cycles*int64(p))
	}
	if base > 0 {
		r.Speedup = float64(base) / float64(r.Cycles)
	}
	return r
}

// luMachine builds the machine for LU runs with the node-capacity ratio.
func luMachine(s Sizes, p int) *machine.Config {
	cfg := machine.Scaled(p)
	data := int64(2) * 5 * int64(s.LUN) * int64(s.LUN) * int64(s.LUN) * 8
	node := int(float64(data) / s.LUNodeFrac)
	if node < 4*cfg.PageBytes {
		node = 4 * cfg.PageBytes
	}
	cfg.NodeMemBytes = node
	return cfg
}

// Table2 reproduces the reshape-optimization ablation (§8, Table 2): LU on
// one processor with reshaping at increasing optimization levels, against
// the original code without reshaping.
func Table2(s Sizes) ([]Row, error) {
	src := func(v workloads.Variant) string { return workloads.LU(s.LUN, s.LUIters, v) }
	cfg := func() *machine.Config { return luMachine(s, 1) }
	if s.Remote != nil {
		return nil, fmt.Errorf("table2: not runnable via -remote (luMachine customizes node memory, which a job spec cannot express)")
	}
	steps := []struct {
		label string
		v     workloads.Variant
		opt   xform.Options
	}{
		{"reshape, no optimizations", workloads.Reshaped, xform.O0()},
		{"reshape, tile and peel", workloads.Reshaped, xform.O1()},
		{"reshape, tile and peel, hoist", workloads.Reshaped, xform.O2()},
		{"reshape, all optimizations", workloads.Reshaped, xform.O3()},
		{"original without reshaping", workloads.Plain, xform.O3()},
	}
	cache := core.NewBuildCache()
	rows := make([]Row, len(steps))
	meter, onDone := meterFor(s, "table2", len(steps), cache)
	err := ForEachProgress(s.Par, len(steps), func(i int) error {
		st := steps[i]
		t0 := time.Now()
		res, err := runOne(cache, src(st.v), st.opt, cfg(), ospage.FirstTouch, s.Engine, s.Tier)
		if err != nil {
			return fmt.Errorf("table2 %s: %w", st.label, err)
		}
		rows[i] = rowFrom("table2", st.label, 1, cfg(), res, 0)
		rows[i].WallMS = float64(time.Since(t0)) / float64(time.Millisecond)
		return nil
	}, onDone)
	if meter != nil {
		meter.Finish()
	}
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig4 reproduces the NAS-LU speedup curves.
func Fig4(s Sizes) ([]Row, error) {
	return sweep("fig4", "",
		func(v workloads.Variant) string { return workloads.LU(s.LUN, s.LUIters, v) },
		s, func(p int) *machine.Config { return luMachine(s, p) })
}

// Fig5 reproduces the matrix-transpose speedup curves.
func Fig5(s Sizes) ([]Row, error) {
	return sweep("fig5", "scaled",
		func(v workloads.Variant) string { return workloads.Transpose(s.TransN, s.TransIters, v) },
		s, func(p int) *machine.Config { return machine.Scaled(p) })
}

// Fig6 reproduces the small-input 2-D convolution, one- and two-level.
func Fig6(s Sizes) ([]Row, error) {
	r1, err := sweep("fig6-1level", "scaled",
		func(v workloads.Variant) string { return workloads.Convolution(s.ConvSmallN, s.ConvIters, 1, v) },
		s, func(p int) *machine.Config { return machine.Scaled(p) })
	if err != nil {
		return nil, err
	}
	r2, err := sweep("fig6-2level", "scaled",
		func(v workloads.Variant) string { return workloads.Convolution(s.ConvSmallN, s.ConvIters, 2, v) },
		s, func(p int) *machine.Config { return machine.Scaled(p) })
	if err != nil {
		return nil, err
	}
	return append(r1, r2...), nil
}

// Fig7 reproduces the large-input 2-D convolution, one- and two-level.
func Fig7(s Sizes) ([]Row, error) {
	r1, err := sweep("fig7-1level", "scaled",
		func(v workloads.Variant) string { return workloads.Convolution(s.ConvLargeN, s.ConvIters, 1, v) },
		s, func(p int) *machine.Config { return machine.Scaled(p) })
	if err != nil {
		return nil, err
	}
	r2, err := sweep("fig7-2level", "scaled",
		func(v workloads.Variant) string { return workloads.Convolution(s.ConvLargeN, s.ConvIters, 2, v) },
		s, func(p int) *machine.Config { return machine.Scaled(p) })
	if err != nil {
		return nil, err
	}
	return append(r1, r2...), nil
}

// sweep runs the four placement variants across the processor list, fanning
// the points out over a bounded worker pool (Sizes.Par). Every point builds
// its own machine/runtime, so points are independent; a sweep-wide compile
// cache deduplicates the per-variant compiles. Rows come back in the fixed
// variant-major, processor-minor order regardless of parallelism. preset
// names the machine preset when mkCfg is one ("" when it is not — such
// sweeps cannot be expressed as remote job specs and reject Sizes.Remote).
func sweep(exp, preset string, gen func(workloads.Variant) string, s Sizes,
	mkCfg func(int) *machine.Config) ([]Row, error) {

	if s.Remote != nil {
		if preset == "" {
			return nil, fmt.Errorf("%s: not runnable via -remote (its machine is customized beyond a preset, which a job spec cannot express)", exp)
		}
		return remoteSweep(exp, preset, gen, s, mkCfg)
	}
	cache := core.NewBuildCache()
	baseCfg := mkCfg(1)
	baseRes, err := runOne(cache, gen(workloads.Serial), xform.O3(), baseCfg, ospage.FirstTouch, s.Engine, s.Tier)
	if err != nil {
		return nil, fmt.Errorf("%s serial baseline: %w", exp, err)
	}
	base := measured(baseRes)

	type point struct {
		vr variantRun
		p  int
	}
	var points []point
	for _, vr := range figureVariants() {
		for _, p := range s.Procs {
			points = append(points, point{vr, p})
		}
	}
	rows := make([]Row, len(points))
	meter, onDone := meterFor(s, exp, len(points), cache)
	err = ForEachProgress(s.Par, len(points), func(i int) error {
		pt := points[i]
		cfg := mkCfg(pt.p)
		t0 := time.Now()
		res, err := runOne(cache, gen(pt.vr.variant), pt.vr.opt, cfg, pt.vr.policy, s.Engine, s.Tier)
		if err != nil {
			return fmt.Errorf("%s %s P=%d: %w", exp, pt.vr.label, pt.p, err)
		}
		rows[i] = rowFrom(exp, pt.vr.label, pt.p, cfg, res, base)
		rows[i].WallMS = float64(time.Since(t0)) / float64(time.Millisecond)
		return nil
	}, onDone)
	if meter != nil {
		meter.Finish()
	}
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Print renders rows as an aligned table.
func Print(w io.Writer, rows []Row) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-14s %-32s %5s %14s %10s %9s %12s %12s %7s\n",
		"experiment", "variant", "P", "cycles", "seconds", "speedup", "L2miss", "remote", "tlb%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-32s %5d %14d %10.4f %9.2f %12d %12d %6.1f%%\n",
			r.Exp, r.Variant, r.P, r.Cycles, r.Seconds, r.Speedup, r.L2Miss, r.Remote, r.TLBPct*100)
	}
}

// WriteJSON emits rows as indented JSON — the machine-readable counterpart
// of Print, used by dsmbench -json.
func WriteJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// Summary extracts per-variant best speedups (EXPERIMENTS.md fodder).
func Summary(rows []Row) string {
	best := map[string]Row{}
	var order []string
	for _, r := range rows {
		key := r.Exp + "/" + r.Variant
		if cur, ok := best[key]; !ok || r.Speedup > cur.Speedup {
			if !ok {
				order = append(order, key)
			}
			best[key] = r
		}
	}
	var b strings.Builder
	for _, k := range order {
		r := best[k]
		fmt.Fprintf(&b, "%s: best speedup %.2fx at P=%d\n", k, r.Speedup, r.P)
	}
	return b.String()
}
