package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dsmdist/internal/hostpool"
)

// TestForEachProgressLowestErrorEarly: once a point fails the sweep must
// stop claiming new work, and the error that comes back must still be the
// lowest-index one — the same answer a serial sweep would give — even when
// a higher index failed too.
func TestForEachProgressLowestErrorEarly(t *testing.T) {
	defer hostpool.SetBudget(hostpool.SetBudget(4))

	const n = 64
	var ran atomic.Int64
	err := ForEachProgress(4, n, func(i int) error {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		if i == 3 || i == 10 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "boom 3") {
		t.Fatalf("error = %v, want the lowest-index failure (boom 3)", err)
	}
	if got := ran.Load(); got >= n {
		t.Errorf("all %d jobs ran; the failure at index 3 should have stopped the sweep early", got)
	}
}

// TestForEachProgressSerialPath: with no extra workers the callback still
// fires per job and the first error stops the loop.
func TestForEachProgressSerialPath(t *testing.T) {
	defer hostpool.SetBudget(hostpool.SetBudget(1))

	var seen []int
	err := ForEachProgress(1, 8, func(i int) error {
		if i == 2 {
			return errors.New("stop here")
		}
		return nil
	}, func(i int, err error) { seen = append(seen, i) })
	if err == nil || err.Error() != "stop here" {
		t.Fatalf("error = %v", err)
	}
	if len(seen) != 3 || seen[2] != 2 {
		t.Errorf("callbacks for %v, want [0 1 2]", seen)
	}
}

// TestForEachProgressCompletes: an error-free sweep reports every index
// exactly once.
func TestForEachProgressCompletes(t *testing.T) {
	defer hostpool.SetBudget(hostpool.SetBudget(4))

	const n = 32
	var done [n]atomic.Int64
	if err := ForEachProgress(4, n, func(i int) error { return nil },
		func(i int, err error) {
			done[i].Add(1)
			if err != nil {
				t.Errorf("job %d: unexpected error %v", i, err)
			}
		}); err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if done[i].Load() != 1 {
			t.Errorf("job %d: %d callbacks, want 1", i, done[i].Load())
		}
	}
}

// TestMeterAnnouncesStableLowestError: the meter must hold an error until
// every lower index has completed clean — then announce it exactly once,
// so the line it prints is deterministic no matter the completion order.
func TestMeterAnnouncesStableLowestError(t *testing.T) {
	var buf bytes.Buffer
	m := NewMeter(&buf, "sweep", 4, nil)

	m.Done(1, errors.New("kaput"))
	if strings.Contains(buf.String(), "failed") {
		t.Fatalf("announced before index 0 completed:\n%s", buf.String())
	}
	m.Done(0, nil)
	if !strings.Contains(buf.String(), "sweep: point 2/4 failed: kaput") {
		t.Fatalf("stable-lowest error not announced:\n%s", buf.String())
	}
	m.Done(2, errors.New("later")) // higher index: must not re-announce
	m.Done(3, nil)
	m.Finish()
	out := buf.String()
	if strings.Count(out, "failed:") != 1 {
		t.Errorf("want exactly one announcement, got:\n%s", out)
	}
	if !strings.Contains(out, "4/4 points") {
		t.Errorf("progress line missing completion count:\n%s", out)
	}
}
