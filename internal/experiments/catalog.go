package experiments

import (
	"fmt"
	"strings"
)

// Experiment is one runnable entry of the harness: a stable name (the
// dsmbench -exp argument), a one-line description, and the function that
// regenerates it.
type Experiment struct {
	Name string
	Desc string
	Run  func(Sizes) ([]Row, error)
}

// Catalog lists every experiment in the order dsmbench runs them. dsmbench
// -list prints it; -exp dispatches through it.
func Catalog() []Experiment {
	return []Experiment{
		{"table2", "reshape-optimization ablation: LU on 1 processor, opt levels none → all, vs the non-reshaped build", Table2},
		{"fig4", "NAS-LU kernel speedups under first-touch / round-robin / regular / reshaped placement", Fig4},
		{"fig5", "matrix-transpose speedups: the (block,*) operand that only reshaping can localize", Fig5},
		{"fig6", "2-D convolution (small input), one- and two-level parallelism, all four placements", Fig6},
		{"fig7", "2-D convolution (large input), one- and two-level parallelism, all four placements", Fig7},
		{"redist", "c$redistribute cost: scheduled bulk-transfer collective vs the serial page-walk model, by size × P × spec pair", Redist},
	}
}

// Find returns the catalog entry with the given name, or an error listing
// the valid names.
func Find(name string) (Experiment, error) {
	names := make([]string, 0, 8)
	for _, e := range Catalog() {
		if e.Name == name {
			return e, nil
		}
		names = append(names, e.Name)
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q (available: %s; see dsmbench -list)",
		name, strings.Join(names, ", "))
}
