package xform

import (
	"dsmdist/internal/dist"
	"dsmdist/internal/ir"
)

// Tiling and peeling for reshaped arrays (§7.1) and the reshaped-reference
// transformation (Table 1, §4.3).
//
// A "tile" associates one loop variable with one distributed dimension of a
// driving reshaped array. Inside the tile, references whose subscript on
// that dimension is affine in the loop variable (with the tile's
// coefficient) use fast addressing — the processor coordinate is the tile's
// and the portion offset is affine — so no div/mod instructions remain in
// the inner loop. Peeling splits off the boundary iterations whose stencil
// neighbours fall outside the portion; those run with general Table 1
// addressing.

// dimKey identifies one distributed dimension of one array.
type dimKey struct {
	sym *ir.Sym
	dim int
}

// fastCtx is the fast-addressing context a tile establishes for a
// dimension.
type fastCtx struct {
	v     *ir.Sym // tile loop variable
	a     int64   // subscript coefficient the tile was formed for
	kind  dist.Kind
	proc  ir.Expr // processor coordinate along the dimension
	b     ir.Expr // block size (block kind)
	drive int64   // driving zero-based offset (cyclic kinds: exact match only)
	// cyclic: portion offset counter maintained by the generated loop
	off *ir.Sym
	// cyclic(k): off = t*k + e0 - stripeBase
	k          int64
	tVar       ir.Expr
	stripeBase ir.Expr
}

// tileModes is the set of active fast contexts, keyed by (array, dim).
// Arrays that match the driver in size and distribution share its contexts
// (paper §7.1 "simultaneously optimize references to other reshaped arrays
// that match the first array").
type tileModes struct {
	fast map[dimKey]*fastCtx
}

func (m *tileModes) clone() *tileModes {
	n := &tileModes{fast: map[dimKey]*fastCtx{}}
	if m != nil {
		for k, v := range m.fast {
			n.fast[k] = v
		}
	}
	return n
}

func (m *tileModes) get(s *ir.Sym, d int) *fastCtx {
	if m == nil {
		return nil
	}
	if fc, ok := m.fast[dimKey{s, d}]; ok {
		return fc
	}
	// References to arrays matching the driver in size and distribution
	// share its tile (§7.1).
	for k, fc := range m.fast {
		if k.dim == d && arraysMatch(k.sym, s) {
			return fc
		}
	}
	return nil
}

// arraysMatch reports whether two reshaped arrays share distribution and
// constant extents, making them tile-compatible.
func arraysMatch(a, b *ir.Sym) bool {
	if a == b {
		return true
	}
	if a.Dist == nil || b.Dist == nil || !a.Dist.Equal(*b.Dist) {
		return false
	}
	da, ok1 := a.ConstDims()
	db, ok2 := b.ConstDims()
	if !ok1 || !ok2 || len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

// refInfo is one reshaped reference's affine decomposition on one
// dimension.
type refInfo struct {
	affine ir.Affine
	ok     bool
}

// analyzeDim inspects every reference to arrays matching driver within body
// and returns, for dimension d and loop variable v with coefficient a: the
// min and max zero-based constant offsets of participating references, and
// whether at least one reference participates.
func analyzeDim(body []ir.Stmt, driver *ir.Sym, d int, v *ir.Sym, a int64) (minC, maxC int64, any bool) {
	first := true
	ir.WalkStmts(body, nil, func(e ir.Expr) bool {
		ar, ok := e.(*ir.ArrayRef)
		if !ok || !ar.Sym.IsReshaped() || !arraysMatch(driver, ar.Sym) {
			return true
		}
		af, ok := ir.MatchAffine(ar.Idx[d])
		if !ok || af.Var != v || af.A != a {
			return true
		}
		c0 := af.C - 1 // zero-based
		if first {
			minC, maxC, first = c0, c0, false
		} else {
			if c0 < minC {
				minC = c0
			}
			if c0 > maxC {
				maxC = c0
			}
		}
		any = true
		return true
	})
	return minC, maxC, any
}

// reshapedRef lowers one reshaped ArrayRef to a MemRef per Table 1, using
// fast addressing where an active tile covers the dimension and the
// subscript matches, and the general div/mod form otherwise.
func (x *xf) reshapedRef(ar *ir.ArrayRef, modes *tileModes) ir.Expr {
	s := ar.Sym
	procLin := ir.Expr(ir.CI(0))
	procMul := ir.Expr(ir.CI(1))
	offLin := ir.Expr(ir.CI(0))
	offMul := ir.Expr(ir.CI(1))
	for d := range s.Dims {
		e0 := ir.ISub(ar.Idx[d], ir.CI(1))
		dd := s.Dist.Dims[d]
		var procD, offD ir.Expr
		if !dd.Distributed() {
			offD = e0
		} else {
			procD, offD = x.dimCoords(s, d, dd, e0, modes)
			procLin = ir.IAdd(procLin, ir.IMul(procD, procMul))
			procMul = ir.IMul(procMul, descField(s, d, ir.FieldP))
		}
		offLin = ir.IAdd(offLin, ir.IMul(offD, offMul))
		offMul = ir.IMul(offMul, descField(s, d, ir.FieldML))
	}
	addr := ir.IAdd(&ir.PortionBase{Sym: s, Proc: procLin}, ir.IMul(offLin, ir.CI(8)))
	return &ir.MemRef{Addr: addr, Ty: s.Type}
}

// dimCoords returns (processor, offset) expressions for zero-based element
// index e0 along distributed dimension d.
func (x *xf) dimCoords(s *ir.Sym, d int, dd dist.Dim, e0 ir.Expr, modes *tileModes) (ir.Expr, ir.Expr) {
	if fc := modes.get(s, d); fc != nil && x.opts.TilePeel {
		if af, ok := ir.MatchAffine(e0); ok && af.Var == fc.v && af.A == fc.a {
			switch fc.kind {
			case dist.Block:
				// off = e0 - p*b: affine, no div/mod.
				return ir.CloneExpr(fc.proc), ir.ISub(e0, ir.IMul(ir.CloneExpr(fc.proc), ir.CloneExpr(fc.b)))
			case dist.Cyclic:
				if af.C == fc.drive {
					return ir.CloneExpr(fc.proc), &ir.VarRef{Sym: fc.off}
				}
			case dist.BlockCyclic:
				if af.C == fc.drive {
					off := ir.IAdd(ir.IMul(ir.CloneExpr(fc.tVar), ir.CI(fc.k)),
						ir.ISub(e0, ir.CloneExpr(fc.stripeBase)))
					return ir.CloneExpr(fc.proc), off
				}
			}
		}
	}
	// General Table 1 addressing.
	switch dd.Kind {
	case dist.Block:
		b := descField(s, d, ir.FieldB)
		proc := ir.IDiv(e0, b)
		off := ir.IModE(ir.CloneExpr(e0), ir.CloneExpr(b))
		return proc, off
	case dist.Cyclic:
		p := descField(s, d, ir.FieldP)
		return ir.IModE(e0, p), ir.IDiv(ir.CloneExpr(e0), ir.CloneExpr(p))
	case dist.BlockCyclic:
		k := ir.CI(int64(dd.Chunk))
		p := descField(s, d, ir.FieldP)
		proc := ir.IModE(ir.IDiv(e0, k), p)
		kp := ir.IMul(ir.CloneExpr(k), ir.CloneExpr(p))
		off := ir.IAdd(
			ir.IMul(ir.IDiv(ir.CloneExpr(e0), kp), ir.CloneExpr(k)),
			ir.IModE(ir.CloneExpr(e0), ir.CloneExpr(k)))
		return proc, off
	}
	return ir.CI(0), e0
}

// nestPlan is the tiling decision for one loop of a nest.
type nestPlan struct {
	loop *ir.Do
	// tile is nil when the loop is not tiled. When set, it names the
	// driver dimension, the affine form, and (for parallel loops) the
	// processor-coordinate expression; serial tiles get a fresh p-loop.
	tile *tilePlan
}

type tilePlan struct {
	driver *ir.Sym
	dim    int
	kind   dist.Kind
	k      int64 // cyclic(k) chunk
	a      int64
	cDrive int64 // zero-based driving offset
	minC   int64
	maxC   int64
	// proc is non-nil for parallel (affinity-scheduled) tiles: the
	// processor's own coordinate. Serial tiles leave it nil and iterate
	// a processor loop.
	proc ir.Expr
	// filter forces the correctness fallback: iterate the original loop
	// and guard the body by ownership.
	filter bool
}

// genNest generates the statement structure for a (possibly tiled) loop
// nest. loops is the perfect nest chain; innermost is the body of the last
// loop. Each instantiation clones the body, so peeled variants are
// independent.
func (x *xf) genNest(loops []*nestPlan, level int, innermost []ir.Stmt, modes *tileModes) []ir.Stmt {
	if level == len(loops) {
		return x.stmts(ir.CloneStmts(innermost), modes)
	}
	np := loops[level]
	L := np.loop
	lo := ir.CloneExpr(L.Lo)
	hi := ir.CloneExpr(L.Hi)
	var step ir.Expr
	if L.Step != nil {
		step = ir.CloneExpr(L.Step)
	}

	if np.tile == nil {
		inner := x.genNest(loops, level+1, innermost, modes)
		return []ir.Stmt{&ir.Do{Var: L.Var, Lo: x.rewriteExprRefs(lo, modes), Hi: x.rewriteExprRefs(hi, modes),
			Step: x.rewriteExprRefs(step, modes), Line: L.Line, NoDivMod: true, Body: inner}}
	}

	t := np.tile
	if t.proc != nil {
		// Parallel tile: this processor's share only.
		return x.genTiledLevel(loops, level, innermost, modes, t, t.proc, lo, hi)
	}
	// Serial tile: iterate the processors of the dimension in order
	// (block distribution preserves execution order, §7.1).
	var out []ir.Stmt
	pvar := x.unit.NewTemp(ir.Int, "p")
	pref := &ir.VarRef{Sym: pvar}
	body := x.genTiledLevel(loops, level, innermost, modes, t, pref, lo, hi)
	out = append(out, &ir.Do{
		Var: pvar, Lo: ir.CI(0),
		Hi:   ir.ISub(descField(t.driver, t.dim, ir.FieldP), ir.CI(1)),
		Body: body, Line: L.Line, NoDivMod: true,
	})
	return out
}

// genTiledLevel emits the bounds computation, optional peeling split, and
// data loop(s) for one tiled loop level, for a fixed processor coordinate.
func (x *xf) genTiledLevel(loops []*nestPlan, level int, innermost []ir.Stmt,
	modes *tileModes, t *tilePlan, proc ir.Expr, lo, hi ir.Expr) []ir.Stmt {

	L := loops[level].loop
	var out []ir.Stmt

	if t.filter {
		// Correctness fallback: original loop, body guarded by
		// ownership of the driving element.
		dd := t.driver.Dist.Dims[t.dim]
		e0 := ir.IAdd(ir.IMul(ir.CI(t.a), &ir.VarRef{Sym: L.Var}), ir.CI(t.cDrive))
		ownerE, _ := x.dimCoords(t.driver, t.dim, dd, e0, nil)
		guard := &ir.Bin{Op: ir.Eq, L: ownerE, R: ir.CloneExpr(proc), Ty: ir.Int}
		inner := x.genNest(loops, level+1, innermost, modes)
		body := []ir.Stmt{&ir.If{Cond: guard, Then: inner}}
		var step ir.Expr
		if L.Step != nil {
			step = ir.CloneExpr(L.Step)
		}
		out = append(out, &ir.Do{Var: L.Var, Lo: lo, Hi: hi, Step: step, Line: L.Line, Body: body})
		return out
	}

	loV := x.assign(&out, "lo", lo)
	hiV := x.assign(&out, "hi", hi)

	switch t.kind {
	case dist.Block:
		out = append(out, x.genBlockTile(loops, level, innermost, modes, t, proc, loV, hiV)...)
	case dist.Cyclic:
		out = append(out, x.genCyclicTile(loops, level, innermost, modes, t, proc, loV, hiV)...)
	case dist.BlockCyclic:
		out = append(out, x.genCyclicKTile(loops, level, innermost, modes, t, proc, loV, hiV)...)
	}
	return out
}

// withFast returns modes extended with the tile's fast context.
func withFast(modes *tileModes, t *tilePlan, fc *fastCtx) *tileModes {
	n := modes.clone()
	n.fast[dimKey{t.driver, t.dim}] = fc
	return n
}

// genBlockTile: bounds per Figure 2 block case, with the §7.1 peeling split
// when stencil offsets spread beyond the driving offset.
func (x *xf) genBlockTile(loops []*nestPlan, level int, innermost []ir.Stmt,
	modes *tileModes, t *tilePlan, proc ir.Expr, loV, hiV ir.Expr) []ir.Stmt {

	L := loops[level].loop
	var out []ir.Stmt
	b := x.assign(&out, "b", descField(t.driver, t.dim, ir.FieldB))
	pb := x.assign(&out, "pb", ir.IMul(ir.CloneExpr(proc), b))

	// Iterations assigned to proc: a*i + cDrive in [p*b, (p+1)*b - 1].
	tlo := x.assign(&out, "tlo",
		ir.IMaxE(ir.CloneExpr(loV), x.ceilDivE(&out, ir.ISub(pb, ir.CI(t.cDrive)), ir.CI(t.a))))
	thi := x.assign(&out, "thi",
		ir.IMinE(ir.CloneExpr(hiV), x.floorDivE(&out,
			ir.ISub(ir.IAdd(ir.CloneExpr(pb), b), ir.CI(t.cDrive+1)), ir.CI(t.a))))

	fc := &fastCtx{v: L.Var, a: t.a, kind: dist.Block, proc: proc, b: b, drive: t.cDrive}
	fastModes := withFast(modes, t, fc)

	spread := x.opts.TilePeel && (t.minC < t.cDrive || t.maxC > t.cDrive)
	if !spread {
		inner := x.genNest(loops, level+1, innermost, fastModes)
		out = append(out, &ir.Do{Var: L.Var, Lo: tlo, Hi: thi, Line: L.Line, NoDivMod: true, Body: inner})
		return out
	}

	// Interior: all participating offsets stay inside the portion.
	ilo := x.assign(&out, "ilo",
		ir.IMaxE(ir.CloneExpr(tlo), x.ceilDivE(&out, ir.ISub(ir.CloneExpr(pb), ir.CI(t.minC)), ir.CI(t.a))))
	ihi := x.assign(&out, "ihi",
		ir.IMinE(ir.CloneExpr(thi), x.floorDivE(&out,
			ir.ISub(ir.IAdd(ir.CloneExpr(pb), ir.CloneExpr(b)), ir.CI(t.maxC+1)), ir.CI(t.a))))

	// Prefix peel (general addressing on this dimension).
	pre := x.genNest(loops, level+1, innermost, modes)
	out = append(out, &ir.Do{Var: L.Var,
		Lo: ir.CloneExpr(tlo), Hi: ir.IMinE(ir.CloneExpr(thi), ir.ISub(ir.CloneExpr(ilo), ir.CI(1))),
		Line: L.Line, Body: pre})
	// Fast interior.
	mid := x.genNest(loops, level+1, innermost, fastModes)
	out = append(out, &ir.Do{Var: L.Var, Lo: ir.CloneExpr(ilo), Hi: ir.IMinE(ir.CloneExpr(thi), ir.CloneExpr(ihi)),
		Line: L.Line, NoDivMod: true, Body: mid})
	// Suffix peel.
	post := x.genNest(loops, level+1, innermost, modes)
	out = append(out, &ir.Do{Var: L.Var,
		Lo: ir.IMaxE(ir.CloneExpr(ilo), ir.IAdd(ir.CloneExpr(ihi), ir.CI(1))), Hi: ir.CloneExpr(thi),
		Line: L.Line, Body: post})
	return out
}

// genCyclicTile: Figure 2 cyclic case (a == 1 guaranteed by the planner):
// i = first, hi, P with a portion-offset counter to avoid per-iteration
// division.
func (x *xf) genCyclicTile(loops []*nestPlan, level int, innermost []ir.Stmt,
	modes *tileModes, t *tilePlan, proc ir.Expr, loV, hiV ir.Expr) []ir.Stmt {

	L := loops[level].loop
	var out []ir.Stmt
	p := x.assign(&out, "np", descField(t.driver, t.dim, ir.FieldP))
	// First i >= lo with i + cDrive ≡ proc (mod P).
	first := x.assign(&out, "cf", ir.IAdd(ir.CloneExpr(loV),
		posMod(ir.ISub(ir.ISub(ir.CloneExpr(proc), ir.CI(t.cDrive)), ir.CloneExpr(loV)), p)))
	// Portion offset of the first element: (first + cDrive - proc)/P.
	offV := x.unit.NewTemp(ir.Int, "off")
	out = append(out, &ir.Assign{Lhs: &ir.VarRef{Sym: offV},
		Rhs: ir.IDiv(ir.ISub(ir.IAdd(ir.CloneExpr(first), ir.CI(t.cDrive)), ir.CloneExpr(proc)), ir.CloneExpr(p))})

	fc := &fastCtx{v: L.Var, a: 1, kind: dist.Cyclic, proc: proc, drive: t.cDrive, off: offV}
	inner := x.genNest(loops, level+1, innermost, withFast(modes, t, fc))
	inner = append(inner, &ir.Assign{Lhs: &ir.VarRef{Sym: offV},
		Rhs: ir.IAdd(&ir.VarRef{Sym: offV}, ir.CI(1))})
	out = append(out, &ir.Do{Var: L.Var, Lo: first, Hi: hiV, Step: ir.CloneExpr(p),
		Line: L.Line, NoDivMod: true, Body: inner})
	return out
}

// genCyclicKTile: Figure 2 cyclic(k) case — a stripe loop over the
// processor's chunks and an element loop inside each chunk (a == 1).
func (x *xf) genCyclicKTile(loops []*nestPlan, level int, innermost []ir.Stmt,
	modes *tileModes, t *tilePlan, proc ir.Expr, loV, hiV ir.Expr) []ir.Stmt {

	L := loops[level].loop
	var out []ir.Stmt
	p := x.assign(&out, "np", descField(t.driver, t.dim, ir.FieldP))
	k := ir.CI(t.k)
	kp := x.assign(&out, "kp", ir.IMul(ir.CloneExpr(k), ir.CloneExpr(p)))

	// Element range of the loop: e0 in [lo + cDrive, hi + cDrive].
	elo := x.assign(&out, "elo", ir.IAdd(ir.CloneExpr(loV), ir.CI(t.cDrive)))
	ehi := x.assign(&out, "ehi", ir.IAdd(ir.CloneExpr(hiV), ir.CI(t.cDrive)))
	// Stripe t covers e0 in [(t*P + proc)*k, +k-1]. Intersect with the
	// element range.
	pk := x.assign(&out, "pk", ir.IMul(ir.CloneExpr(proc), ir.CloneExpr(k)))
	tlo := x.assign(&out, "stlo",
		ir.IMaxE(ir.CI(0), x.ceilDivE(&out,
			ir.ISub(ir.ISub(ir.CloneExpr(elo), ir.CI(t.k-1)), ir.CloneExpr(pk)), kp)))
	thi := x.assign(&out, "sthi",
		x.floorDivE(&out, ir.ISub(ir.CloneExpr(ehi), ir.CloneExpr(pk)), ir.CloneExpr(kp)))

	tvar := x.unit.NewTemp(ir.Int, "st")
	tref := &ir.VarRef{Sym: tvar}
	var body []ir.Stmt
	base := x.assign(&body, "sb", ir.IAdd(ir.IMul(tref, ir.CloneExpr(kp)), ir.CloneExpr(pk)))
	ilo := ir.IMaxE(ir.CloneExpr(loV), ir.ISub(ir.CloneExpr(base), ir.CI(t.cDrive)))
	ihi := ir.IMinE(ir.CloneExpr(hiV),
		ir.ISub(ir.IAdd(ir.CloneExpr(base), ir.CI(t.k-1)), ir.CI(t.cDrive)))

	fc := &fastCtx{v: L.Var, a: 1, kind: dist.BlockCyclic, proc: proc, drive: t.cDrive,
		k: t.k, tVar: tref, stripeBase: base}
	inner := x.genNest(loops, level+1, innermost, withFast(modes, t, fc))
	body = append(body, &ir.Do{Var: L.Var, Lo: ilo, Hi: ihi, Line: L.Line, NoDivMod: true, Body: inner})
	out = append(out, &ir.Do{Var: tvar, Lo: tlo, Hi: thi, Line: L.Line, NoDivMod: true, Body: body})
	return out
}

// collectNest returns the perfect nest chain rooted at d (always at least
// [d]) and the innermost body.
func collectNest(d *ir.Do, maxDepth int) ([]*ir.Do, []ir.Stmt) {
	chain := []*ir.Do{d}
	body := d.Body
	for len(chain) < maxDepth {
		if len(body) != 1 {
			break
		}
		inner, ok := body[0].(*ir.Do)
		if !ok || inner.Par != nil {
			break
		}
		chain = append(chain, inner)
		body = inner.Body
	}
	return chain, body
}

// planSerialTile decides the tiling of a serial loop chain: block
// distributions only (order-preserving, hence always legal for serial
// loops, §7.1), step 1, driven by the reshaped array with the most
// references.
func (x *xf) planSerialTile(chain []*ir.Do, innermost []ir.Stmt) []*nestPlan {
	plans := make([]*nestPlan, len(chain))
	for i, L := range chain {
		plans[i] = &nestPlan{loop: L}
	}
	if !x.opts.TilePeel {
		return plans
	}
	driver := x.pickDriver(innermost)
	if driver == nil {
		return plans
	}
	for i, L := range chain {
		if L.Step != nil {
			if c, ok := ir.IntConst(L.Step); !ok || c != 1 {
				continue
			}
		}
		for d := range driver.Dims {
			dd := driver.Dist.Dims[d]
			if dd.Kind != dist.Block {
				continue // serial tiling of cyclic changes order
			}
			if x.dimAlreadyPlanned(plans, driver, d) {
				continue
			}
			// Try coefficient from the first participating ref.
			a := x.findCoeff(innermost, driver, d, L.Var)
			if a < 1 {
				continue
			}
			minC, maxC, any := analyzeDim(innermost, driver, d, L.Var, a)
			if !any {
				continue
			}
			plans[i].tile = &tilePlan{driver: driver, dim: d, kind: dd.Kind,
				k: int64(dd.Chunk), a: a, cDrive: minC, minC: minC, maxC: maxC}
			break
		}
	}
	return plans
}

func (x *xf) dimAlreadyPlanned(plans []*nestPlan, driver *ir.Sym, d int) bool {
	for _, p := range plans {
		if p.tile != nil && p.tile.driver == driver && p.tile.dim == d {
			return true
		}
	}
	return false
}

// findCoeff returns the affine coefficient used by references to driver's
// dimension d in terms of v, or 0 when none qualifies.
func (x *xf) findCoeff(body []ir.Stmt, driver *ir.Sym, d int, v *ir.Sym) int64 {
	var coeff int64
	ir.WalkStmts(body, nil, func(e ir.Expr) bool {
		ar, ok := e.(*ir.ArrayRef)
		if !ok || !arraysMatch(driver, ar.Sym) {
			return true
		}
		if af, ok := ir.MatchAffine(ar.Idx[d]); ok && af.Var == v && af.A >= 1 {
			if coeff == 0 {
				coeff = af.A
			}
		}
		return true
	})
	return coeff
}

// pickDriver selects the reshaped array with the most references in the
// body (the paper's "simple heuristic ... that will result in the fewest
// div and mod operations").
func (x *xf) pickDriver(body []ir.Stmt) *ir.Sym {
	counts := map[*ir.Sym]int{}
	var order []*ir.Sym
	ir.WalkStmts(body, nil, func(e ir.Expr) bool {
		if ar, ok := e.(*ir.ArrayRef); ok && ar.Sym.IsReshaped() {
			if counts[ar.Sym] == 0 {
				order = append(order, ar.Sym)
			}
			counts[ar.Sym]++
		}
		return true
	})
	var best *ir.Sym
	for _, s := range order {
		if best == nil || counts[s] > counts[best] {
			best = s
		}
	}
	return best
}

// --- Loop skewing (§7.1: "for loops such as do i=1,n: A(i+c*k)=... we
// skew the loop by (c*k). This converts references like A(i+c*k) to A(i),
// which enables subsequent tiling and peeling.") ---

// splitSum flattens an integer expression into signed terms.
func splitSum(e ir.Expr, sign int64, out *[]sumTerm) {
	if b, ok := e.(*ir.Bin); ok && b.Ty == ir.Int && (b.Op == ir.Add || b.Op == ir.Sub) {
		splitSum(b.L, sign, out)
		rs := sign
		if b.Op == ir.Sub {
			rs = -sign
		}
		splitSum(b.R, rs, out)
		return
	}
	*out = append(*out, sumTerm{sign: sign, e: e})
}

type sumTerm struct {
	sign int64
	e    ir.Expr
}

// skewCandidate decomposes a subscript into loopVar + const + invariant E:
// returns E (nil when the subscript is not of that form or E is empty).
func skewCandidate(sub ir.Expr, v *ir.Sym, assigned map[*ir.Sym]bool) ir.Expr {
	var terms []sumTerm
	splitSum(sub, 1, &terms)
	sawVar := false
	var invTerms []sumTerm
	for _, t := range terms {
		if vr, ok := t.e.(*ir.VarRef); ok && vr.Sym == v {
			if sawVar || t.sign != 1 {
				return nil
			}
			sawVar = true
			continue
		}
		if _, ok := t.e.(*ir.ConstInt); ok {
			continue
		}
		// Invariant piece: pure scalar arithmetic over unassigned vars.
		if !pureInvariant(t.e, assigned, true, true) {
			return nil
		}
		invTerms = append(invTerms, t)
	}
	if !sawVar || len(invTerms) == 0 {
		return nil
	}
	e := ir.Expr(ir.CI(0))
	for _, t := range invTerms {
		te := ir.CloneExpr(t.e)
		if t.sign > 0 {
			e = ir.IAdd(e, te)
		} else {
			e = ir.ISub(e, te)
		}
	}
	return e
}

// trySkew skews one loop of the chain so a reshaped subscript of the form
// i + E (E loop-invariant) becomes affine in the new loop variable. The
// loop is rewritten in place: bounds shift by E and other uses of the
// variable substitute i - E.
func (x *xf) trySkew(chain []*ir.Do, innermost []ir.Stmt) {
	if !x.opts.TilePeel {
		return
	}
	assigned := collectAssigned(chain[0].Body)
	for _, L := range chain {
		assigned[L.Var] = true
	}
	for _, L := range chain {
		if L.Step != nil {
			if c, ok := ir.IntConst(L.Step); !ok || c != 1 {
				continue
			}
		}
		var skew ir.Expr
		ir.WalkStmts(innermost, nil, func(e ir.Expr) bool {
			if skew != nil {
				return false
			}
			ar, ok := e.(*ir.ArrayRef)
			if !ok || !ar.Sym.IsReshaped() {
				return true
			}
			for d := range ar.Idx {
				if !ar.Sym.Dist.Dims[d].Distributed() {
					continue
				}
				if _, affine := ir.MatchAffine(ar.Idx[d]); affine {
					continue
				}
				if E := skewCandidate(ar.Idx[d], L.Var, assigned); E != nil {
					skew = E
					return false
				}
			}
			return true
		})
		if skew == nil {
			continue
		}
		// The loop now iterates i' = i + E. Substitute i -> i' - E in
		// the body, then cancel matching sum terms so the target
		// subscript (i' - E) + E + c collapses to i' + c, which the
		// tiler's affine matcher accepts.
		ir.MapExprs(L.Body, func(root ir.Expr) ir.Expr {
			root = ir.RewriteExpr(root, func(n ir.Expr) ir.Expr {
				if vr, ok := n.(*ir.VarRef); ok && vr.Sym == L.Var {
					return ir.ISub(&ir.VarRef{Sym: L.Var}, ir.CloneExpr(skew))
				}
				return n
			})
			return cancelSums(root)
		})
		L.Lo = ir.IAdd(L.Lo, ir.CloneExpr(skew))
		L.Hi = ir.IAdd(L.Hi, ir.CloneExpr(skew))
		return // one skew per nest covers the paper's pattern
	}
}

// cancelSums rewrites every maximal integer sum tree, cancelling terms that
// appear with opposite signs and folding constants.
func cancelSums(e ir.Expr) ir.Expr {
	return ir.RewriteExpr(e, func(n ir.Expr) ir.Expr {
		b, ok := n.(*ir.Bin)
		if !ok || b.Ty != ir.Int || (b.Op != ir.Add && b.Op != ir.Sub) {
			return n
		}
		var terms []sumTerm
		splitSum(b, 1, &terms)
		// Cancel by canonical string.
		type slot struct {
			t     sumTerm
			alive bool
		}
		slots := make([]slot, len(terms))
		for i, t := range terms {
			slots[i] = slot{t, true}
		}
		var c int64
		for i := range slots {
			if !slots[i].alive {
				continue
			}
			if cv, ok := ir.IntConst(slots[i].t.e); ok {
				c += slots[i].t.sign * cv
				slots[i].alive = false
				continue
			}
			key := ir.ExprString(slots[i].t.e)
			for j := i + 1; j < len(slots); j++ {
				if !slots[j].alive || slots[j].t.sign == slots[i].t.sign {
					continue
				}
				if ir.ExprString(slots[j].t.e) == key {
					slots[i].alive = false
					slots[j].alive = false
					break
				}
			}
		}
		out := ir.Expr(nil)
		for _, s := range slots {
			if !s.alive {
				continue
			}
			if out == nil {
				if s.t.sign > 0 {
					out = s.t.e
				} else {
					out = &ir.Un{X: s.t.e, Ty: ir.Int}
				}
				continue
			}
			if s.t.sign > 0 {
				out = ir.IAdd(out, s.t.e)
			} else {
				out = ir.ISub(out, s.t.e)
			}
		}
		if out == nil {
			return ir.CI(c)
		}
		if c != 0 {
			out = ir.IAdd(out, ir.CI(c))
		}
		return out
	})
}

// serialLoop transforms a serial loop, tiling it over reshaped arrays when
// profitable.
func (x *xf) serialLoop(d *ir.Do, modes *tileModes) []ir.Stmt {
	chain, innermost := collectNest(d, 4)
	x.trySkew(chain, innermost)
	plans := x.planSerialTile(chain, innermost)
	tiled := false
	for _, p := range plans {
		if p.tile != nil {
			tiled = true
		}
	}
	if !tiled {
		d.Lo = x.rewriteExprRefs(d.Lo, modes)
		d.Hi = x.rewriteExprRefs(d.Hi, modes)
		if d.Step != nil {
			d.Step = x.rewriteExprRefs(d.Step, modes)
		}
		d.Body = x.stmts(d.Body, modes)
		return []ir.Stmt{d}
	}
	return x.genNest(plans, 0, innermost, modes)
}
