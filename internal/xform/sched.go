package xform

import (
	"dsmdist/internal/dist"
	"dsmdist/internal/ir"
)

// Doacross scheduling (§3.4, §4.1): every Par-marked loop becomes a Region
// whose body computes the executing processor's iteration set. Affinity
// clauses map loops to the owner's portions via the Figure 2 closed forms
// (reusing the tiling generators with the processor's own grid coordinate);
// loops without affinity use the schedtype(simple) block partition or
// schedtype(interleave).

// schedule converts one parallel loop nest into a Region.
func (x *xf) schedule(d *ir.Do) ir.Stmt {
	par := d.Par
	chain, innermost := collectParNest(d, par.Nest)

	var body []ir.Stmt
	if par.Affinity != nil && par.Affinity.Array != nil {
		body = x.scheduleAffinity(chain, innermost, par)
	} else {
		body = x.scheduleSimple(chain, innermost, par)
	}
	return &ir.Region{Par: par, Body: body}
}

// collectParNest returns the first n perfectly nested loops (guaranteed by
// sema's nest check) and the body of the innermost.
func collectParNest(d *ir.Do, n int) ([]*ir.Do, []ir.Stmt) {
	chain := []*ir.Do{d}
	body := d.Body
	for len(chain) < n && len(body) == 1 {
		if inner, ok := body[0].(*ir.Do); ok {
			chain = append(chain, inner)
			body = inner.Body
			continue
		}
		break
	}
	return chain, body
}

// scheduleAffinity builds the region body for an affinity-scheduled nest.
func (x *xf) scheduleAffinity(chain []*ir.Do, innermost []ir.Stmt, par *ir.Par) []ir.Stmt {
	aff := par.Affinity
	arr := aff.Array
	var out []ir.Stmt

	myid := x.assign(&out, "me", &ir.Myid{})

	// Decompose the linear processor id into grid coordinates along the
	// distributed dimensions, column-major (matching dist.Grid).
	coord := map[int]ir.Expr{} // array dim -> coordinate expr
	rem := ir.Expr(ir.CloneExpr(myid))
	used := ir.Expr(ir.CI(1))
	for dim := range arr.Dims {
		if !arr.Dist.Dims[dim].Distributed() {
			continue
		}
		p := x.assign(&out, "gp", descField(arr, dim, ir.FieldP))
		coord[dim] = x.assign(&out, "pc", ir.IModE(ir.CloneExpr(rem), p))
		rem = x.assign(&out, "pr", ir.IDiv(ir.CloneExpr(rem), ir.CloneExpr(p)))
		used = ir.IMul(used, ir.CloneExpr(p))
	}

	// Processors beyond the grid (when nprocs does not factor onto it)
	// run nothing; neither do processors whose coordinate along an
	// unkeyed distributed dimension does not own the constant subscript.
	guard := ir.Expr(&ir.Bin{Op: ir.Lt, L: ir.CloneExpr(myid), R: used, Ty: ir.Int})
	for dim := range arr.Dims {
		ad := aff.Dims[dim]
		if !arr.Dist.Dims[dim].Distributed() || ad.Var != nil {
			continue
		}
		ownerE, _ := x.dimCoords(arr, dim, arr.Dist.Dims[dim], ir.CI(ad.C0), nil)
		eq := &ir.Bin{Op: ir.Eq, L: ir.CloneExpr(coord[dim]), R: ownerE, Ty: ir.Int}
		guard = &ir.Bin{Op: ir.And, L: guard, R: eq, Ty: ir.Int}
	}

	// Build the nest plan: loops whose variable keys a distributed
	// dimension become parallel tiles with proc = the grid coordinate.
	plans := make([]*nestPlan, len(chain))
	for i, L := range chain {
		plans[i] = &nestPlan{loop: L}
		for dim := range arr.Dims {
			ad := aff.Dims[dim]
			if ad.Var != L.Var || !arr.Dist.Dims[dim].Distributed() {
				continue
			}
			dd := arr.Dist.Dims[dim]
			tp := &tilePlan{driver: arr, dim: dim, kind: dd.Kind, k: int64(dd.Chunk),
				a: ad.A, cDrive: ad.C0, minC: ad.C0, maxC: ad.C0, proc: coord[dim]}
			// Non-unit coefficients only have closed forms for
			// block (Figure 2 omits cyclic with s > 1 too); other
			// kinds fall back to the ownership filter. Non-unit
			// steps always filter.
			stepOK := L.Step == nil
			if !stepOK {
				if c, ok := ir.IntConst(L.Step); ok && c == 1 {
					stepOK = true
				}
			}
			if !stepOK || (dd.Kind != dist.Block && ad.A != 1) {
				tp.filter = true
			}
			if x.opts.TilePeel && dd.Kind == dist.Block && !tp.filter {
				if minC, maxC, any := analyzeDim(innermost, arr, dim, L.Var, ad.A); any {
					if minC < tp.minC {
						tp.minC = minC
					}
					if maxC > tp.maxC {
						tp.maxC = maxC
					}
				}
			}
			plans[i].tile = tp
			break
		}
	}

	nest := x.genNest(plans, 0, innermost, nil)
	out = append(out, &ir.If{Cond: guard, Then: nest})
	return out
}

// scheduleSimple builds the region body for schedtype(simple) and
// schedtype(interleave) loops: the outermost loop's iterations are
// partitioned; inner nest loops run in full on each processor.
func (x *xf) scheduleSimple(chain []*ir.Do, innermost []ir.Stmt, par *ir.Par) []ir.Stmt {
	L := chain[0]
	var out []ir.Stmt
	myid := x.assign(&out, "me", &ir.Myid{})
	np := x.assign(&out, "np", &ir.Nprocs{})
	lo := x.assign(&out, "lo", x.rewriteExprRefs(ir.CloneExpr(L.Lo), nil))
	hi := x.assign(&out, "hi", x.rewriteExprRefs(ir.CloneExpr(L.Hi), nil))
	step := ir.Expr(ir.CI(1))
	if L.Step != nil {
		step = x.assign(&out, "sp", x.rewriteExprRefs(ir.CloneExpr(L.Step), nil))
	}

	// Remaining nest levels are generated unchanged (but may be serially
	// tiled inside).
	plans := make([]*nestPlan, len(chain))
	for i, c := range chain {
		plans[i] = &nestPlan{loop: c}
	}

	if par.Sched == ir.SchedDynamic || par.Sched == ir.SchedGSS {
		// Chunks are handed out from a shared cursor:
		//   do g = 0, total
		//     v = grab(total, chunk, mode); len = mod(v, 2^31)
		//     if (len == 0) g = total   ! exhausted: exit after increment
		//     else run iterations [start, start+len) of the space
		//   end do
		total := x.assign(&out, "tot",
			ir.IMaxE(ir.CI(0), ir.IAdd(ir.IDiv(ir.ISub(ir.CloneExpr(hi), ir.CloneExpr(lo)), ir.CloneExpr(step)), ir.CI(1))))
		chunk := ir.Expr(ir.CI(1))
		if par.Chunk != nil {
			chunk = x.assign(&out, "ch",
				ir.IMaxE(ir.CI(1), x.rewriteExprRefs(ir.CloneExpr(par.Chunk), nil)))
		}
		mode := int64(0)
		if par.Sched == ir.SchedGSS {
			mode = 1
		}
		gvar := x.unit.NewTemp(ir.Int, "g")
		var body []ir.Stmt
		v := x.assign(&body, "v", &ir.RTFunc{Kind: ir.RTDynGrab,
			Args: []ir.Expr{ir.CloneExpr(total), chunk, ir.CI(mode)}})
		lenV := x.assign(&body, "len", ir.IModE(ir.CloneExpr(v), ir.CI(1<<31)))
		startV := ir.IDiv(ir.CloneExpr(v), ir.CI(1<<31))
		var runBody []ir.Stmt
		first := x.assign(&runBody, "df", ir.IAdd(ir.CloneExpr(lo), ir.IMul(startV, ir.CloneExpr(step))))
		last := ir.IAdd(ir.CloneExpr(first),
			ir.IMul(ir.ISub(ir.CloneExpr(lenV), ir.CI(1)), ir.CloneExpr(step)))
		inner := x.genNest(plans[1:], 0, innermost, nil)
		runBody = append(runBody, &ir.Do{Var: L.Var, Lo: first, Hi: last,
			Step: ir.CloneExpr(step), Line: L.Line, Body: inner})
		exit := []ir.Stmt{&ir.Assign{Lhs: &ir.VarRef{Sym: gvar}, Rhs: ir.CloneExpr(total)}}
		body = append(body, &ir.If{
			Cond: &ir.Bin{Op: ir.Eq, L: ir.CloneExpr(lenV), R: ir.CI(0), Ty: ir.Int},
			Then: exit,
			Else: runBody,
		})
		out = append(out, &ir.Do{Var: gvar, Lo: ir.CI(0), Hi: ir.CloneExpr(total),
			Line: L.Line, Body: body})
		return out
	}

	if par.Sched == ir.SchedInterleave {
		chunk := ir.Expr(ir.CI(1))
		if par.Chunk != nil {
			chunk = x.assign(&out, "ch", x.rewriteExprRefs(ir.CloneExpr(par.Chunk), nil))
		}
		// Stripes of `chunk` iterations dealt round-robin:
		//   do s = lo + myid*chunk*step, hi, np*chunk*step
		//     do i = s, min(hi, s + (chunk-1)*step), step
		stride := x.assign(&out, "sd", ir.IMul(ir.CloneExpr(step), ir.CloneExpr(chunk)))
		svar := x.unit.NewTemp(ir.Int, "s")
		sref := &ir.VarRef{Sym: svar}
		first := ir.IAdd(ir.CloneExpr(lo), ir.IMul(ir.CloneExpr(myid), ir.CloneExpr(stride)))
		inner := x.genNest(plans[1:], 0, innermost, nil)
		dataHi := ir.IMinE(ir.CloneExpr(hi),
			ir.IAdd(sref, ir.IMul(ir.ISub(ir.CloneExpr(chunk), ir.CI(1)), ir.CloneExpr(step))))
		data := &ir.Do{Var: L.Var, Lo: ir.CloneExpr(sref), Hi: dataHi, Step: ir.CloneExpr(step),
			Line: L.Line, Body: inner}
		out = append(out, &ir.Do{Var: svar, Lo: first, Hi: ir.CloneExpr(hi),
			Step: ir.IMul(ir.CloneExpr(np), ir.CloneExpr(stride)), Line: L.Line,
			Body: []ir.Stmt{data}})
		return out
	}

	// schedtype(simple): near-equal contiguous pieces. With a nest
	// clause the MP runtime blocks the full nested iteration space over
	// a near-square processor grid, so a 40-iteration outer loop still
	// uses 96 processors.
	nestDims := par.Nest
	if nestDims > len(chain) {
		nestDims = len(chain)
	}
	if nestDims <= 1 || len(chain) < 2 {
		first, last := x.simplePiece(&out, lo, hi, step, myid, np)
		inner := x.genNest(plans[1:], 0, innermost, nil)
		// The partitioned outer loop may still be serially tiled
		// within the processor's range when it drives reshaped
		// references.
		outerPlans := x.planSerialTile([]*ir.Do{{Var: L.Var, Lo: first, Hi: last,
			Step: ir.CloneExpr(step), Line: L.Line, Body: nil}}, innermost)
		if outerPlans[0].tile != nil && len(chain) == 1 {
			out = append(out, x.genNest(outerPlans, 0, innermost, nil)...)
			return out
		}
		out = append(out, &ir.Do{Var: L.Var, Lo: first, Hi: last, Step: ir.CloneExpr(step),
			Line: L.Line, Body: inner})
		return out
	}

	// Multi-dimensional partition over the first min(Nest, 2) loops.
	if nestDims > 2 {
		nestDims = 2
	}
	p1 := x.assign(&out, "g1",
		&ir.RTFunc{Kind: ir.RTNestGrid, Args: []ir.Expr{ir.CI(int64(nestDims)), ir.CI(0)}})
	p2 := x.assign(&out, "g2",
		&ir.RTFunc{Kind: ir.RTNestGrid, Args: []ir.Expr{ir.CI(int64(nestDims)), ir.CI(1)}})
	used := ir.IMul(ir.CloneExpr(p1), ir.CloneExpr(p2))
	guard := &ir.Bin{Op: ir.Lt, L: ir.CloneExpr(myid), R: used, Ty: ir.Int}
	c1 := x.assign(&out, "c1", ir.IModE(ir.CloneExpr(myid), ir.CloneExpr(p1)))
	c2 := x.assign(&out, "c2", ir.IDiv(ir.CloneExpr(myid), ir.CloneExpr(p1)))

	var body []ir.Stmt
	L2 := chain[1]
	lo2 := x.assign(&body, "lo2", x.rewriteExprRefs(ir.CloneExpr(L2.Lo), nil))
	hi2 := x.assign(&body, "hi2", x.rewriteExprRefs(ir.CloneExpr(L2.Hi), nil))
	step2 := ir.Expr(ir.CI(1))
	if L2.Step != nil {
		step2 = x.assign(&body, "sp2", x.rewriteExprRefs(ir.CloneExpr(L2.Step), nil))
	}
	f1, l1 := x.simplePiece(&body, lo, hi, step, c1, p1)
	f2, l2 := x.simplePiece(&body, lo2, hi2, step2, c2, p2)
	inner := x.genNest(plans[2:], 0, innermost, nil)
	loop2 := &ir.Do{Var: L2.Var, Lo: f2, Hi: l2, Step: ir.CloneExpr(step2),
		Line: L2.Line, Body: inner}
	loop1 := &ir.Do{Var: L.Var, Lo: f1, Hi: l1, Step: ir.CloneExpr(step),
		Line: L.Line, Body: []ir.Stmt{loop2}}
	body = append(body, loop1)
	out = append(out, &ir.If{Cond: guard, Then: body})
	return out
}

// simplePiece emits the schedtype(simple) block-partition bounds for one
// loop: piece `me` of `count`.
//
//	n    = (hi - lo)/step + 1        (0 when hi < lo)
//	per  = n / count, rem = mod(n, count)
//	base = me*per + min(me, rem)
//	cnt  = per + (me < rem)
//	first = lo + base*step; last = first + (cnt-1)*step
func (x *xf) simplePiece(out *[]ir.Stmt, lo, hi, step, me, count ir.Expr) (ir.Expr, ir.Expr) {
	n := x.assign(out, "n",
		ir.IMaxE(ir.CI(0), ir.IAdd(ir.IDiv(ir.ISub(ir.CloneExpr(hi), ir.CloneExpr(lo)), ir.CloneExpr(step)), ir.CI(1))))
	per := x.assign(out, "per", ir.IDiv(ir.CloneExpr(n), ir.CloneExpr(count)))
	rem := x.assign(out, "rem", ir.IModE(ir.CloneExpr(n), ir.CloneExpr(count)))
	base := x.assign(out, "bs", ir.IAdd(ir.IMul(ir.CloneExpr(me), ir.CloneExpr(per)),
		ir.IMinE(ir.CloneExpr(me), ir.CloneExpr(rem))))
	cnt := x.assign(out, "cnt", ir.IAdd(ir.CloneExpr(per),
		&ir.Bin{Op: ir.Lt, L: ir.CloneExpr(me), R: ir.CloneExpr(rem), Ty: ir.Int}))
	first := x.assign(out, "fst",
		ir.IAdd(ir.CloneExpr(lo), ir.IMul(ir.CloneExpr(base), ir.CloneExpr(step))))
	last := x.assign(out, "lst", ir.IAdd(ir.CloneExpr(first),
		ir.IMul(ir.ISub(ir.CloneExpr(cnt), ir.CI(1)), ir.CloneExpr(step))))
	return first, last
}
