package xform_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
	"dsmdist/internal/xform"
)

// Randomized differential testing: generate small stencil programs with
// random distributions, offsets and processor counts, then require every
// optimization level to compute exactly what the unoptimized build does.
// This is the strongest guard on the §7 transformations — tiling, peeling,
// skewing, hoisting and CSE must never change program meaning.

type fuzzProgram struct {
	src    string
	arrays []string
}

// genStencil1D builds a 1-D two-array program with random distribution
// kinds and stencil offsets.
func genStencil1D(rng *rand.Rand) fuzzProgram {
	n := 16 + rng.Intn(80)
	kinds := []string{"block", "cyclic", "cyclic(2)", "cyclic(3)", "cyclic(5)", "*"}
	k1 := kinds[rng.Intn(len(kinds)-1)] // a distributed somehow
	k2 := kinds[rng.Intn(len(kinds))]
	reshape := "c$distribute_reshape"
	if rng.Intn(4) == 0 {
		reshape = "c$distribute"
	}
	// Stencil offsets within bounds.
	o1 := rng.Intn(3) - 1 // -1..1
	o2 := rng.Intn(3) - 1
	lo := 1 + max(0, -min(o1, o2))
	hi := n - max(0, max(o1, o2))
	aff := ""
	if rng.Intn(3) > 0 {
		// a's first specifier is always distributed (k1 excludes "*").
		aff = " affinity(i) = data(a(i))"
	}
	src := fmt.Sprintf(`
      program f
      integer n
      parameter (n = %d)
      real*8 a(n), b(n)
%s a(%s), b(%s)
      integer i
c$doacross local(i) shared(a, b)%s
      do i = 1, n
        a(i) = dble(i) * 1.5
        b(i) = dble(i) - 3.0
      end do
c$doacross local(i) shared(a, b)%s
      do i = %d, %d
        b(i) = a(i%+d) + a(i%+d) * 0.5
      end do
      end
`, n, reshape, k1, k2, aff, aff, lo, hi, o1, o2)
	return fuzzProgram{src: src, arrays: []string{"a", "b"}}
}

// genStencil2D builds a 2-D program with random 2-D distributions and a
// nest or single-level doacross.
func genStencil2D(rng *rand.Rand) fuzzProgram {
	n := 8 + rng.Intn(20)
	kinds := []string{"block", "cyclic", "cyclic(2)", "*"}
	k1 := kinds[rng.Intn(len(kinds))]
	k2 := kinds[rng.Intn(len(kinds))]
	if k1 == "*" && k2 == "*" {
		k2 = "block"
	}
	reshape := "c$distribute_reshape"
	if rng.Intn(4) == 0 {
		reshape = "c$distribute"
	}
	var par, aff string
	if k2 != "*" {
		aff = " affinity(j) = data(a(1, j))"
	}
	if rng.Intn(2) == 0 && k1 != "*" && k2 != "*" {
		par = "c$doacross nest(j, i) local(i, j) shared(a, b) affinity(j, i) = data(a(i, j))"
	} else {
		par = "c$doacross local(i, j) shared(a, b)" + aff
	}
	src := fmt.Sprintf(`
      program f
      integer n
      parameter (n = %d)
      real*8 a(n, n), b(n, n)
%s a(%s, %s), b(%s, %s)
      integer i, j
%s
      do j = 1, n
        do i = 1, n
          a(i, j) = dble(i) + dble(j) * 0.25
          b(i, j) = 0.0
        end do
      end do
%s
      do j = 2, n-1
        do i = 2, n-1
          b(i, j) = a(i-1, j) + a(i, j-1) + a(i+1, j) * 2.0
        end do
      end do
      end
`, n, reshape, k1, k2, k1, k2, par, par)
	return fuzzProgram{src: src, arrays: []string{"a", "b"}}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func runFuzz(t *testing.T, p fuzzProgram, opt xform.Options, nprocs int) map[string][]float64 {
	t.Helper()
	tc := core.NewAt(opt)
	img, err := tc.Build(map[string]string{"f.f": p.src})
	if err != nil {
		t.Fatalf("build failed:\n%s\nerror: %v", p.src, err)
	}
	res, err := core.Run(img, machine.Tiny(nprocs), core.RunOptions{Policy: ospage.FirstTouch})
	if err != nil {
		t.Fatalf("run failed:\n%s\nerror: %v", p.src, err)
	}
	out := map[string][]float64{}
	for _, name := range p.arrays {
		v, err := core.Array(res, "f", name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = v
	}
	return out
}

func TestFuzzOptEquivalence1D(t *testing.T) {
	rng := rand.New(rand.NewSource(1997))
	for trial := 0; trial < 30; trial++ {
		p := genStencil1D(rng)
		nprocs := 1 + rng.Intn(7)
		ref := runFuzz(t, p, xform.O0(), nprocs)
		for _, opt := range []xform.Options{xform.O1(), xform.O3()} {
			got := runFuzz(t, p, opt, nprocs)
			for _, name := range p.arrays {
				for k := range ref[name] {
					if got[name][k] != ref[name][k] {
						t.Fatalf("trial %d opt %+v np=%d: %s[%d] = %v, O0 = %v\nprogram:\n%s",
							trial, opt, nprocs, name, k, got[name][k], ref[name][k], p.src)
					}
				}
			}
		}
	}
}

func TestFuzzOptEquivalence2D(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		p := genStencil2D(rng)
		nprocs := 1 + rng.Intn(7)
		ref := runFuzz(t, p, xform.O0(), nprocs)
		got := runFuzz(t, p, xform.O3(), nprocs)
		for _, name := range p.arrays {
			for k := range ref[name] {
				if got[name][k] != ref[name][k] {
					t.Fatalf("trial %d np=%d: %s[%d] = %v, O0 = %v\nprogram:\n%s",
						trial, nprocs, name, k, got[name][k], ref[name][k], p.src)
				}
			}
		}
	}
}

// TestFuzzProcCountInvariance: results must not depend on the processor
// count ("the same executable [can] run with different number of
// processors", §3.2).
func TestFuzzProcCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		p := genStencil1D(rng)
		ref := runFuzz(t, p, xform.O3(), 1)
		for _, np := range []int{2, 5, 8} {
			got := runFuzz(t, p, xform.O3(), np)
			for _, name := range p.arrays {
				for k := range ref[name] {
					if got[name][k] != ref[name][k] {
						t.Fatalf("trial %d: np=%d diverges from np=1 at %s[%d]: %v vs %v\nprogram:\n%s",
							trial, np, name, k, got[name][k], ref[name][k], p.src)
					}
				}
			}
		}
	}
}
