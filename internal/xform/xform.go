// Package xform implements the compiler transformations of the paper:
//
//   - affinity scheduling (§3.4, §4.1, Figure 2): doacross loops become
//     Region statements whose bounds each processor computes from its grid
//     coordinates;
//   - loop tiling and peeling for reshaped arrays (§7.1), including the
//     implicit interchange that places processor-tile loops outermost
//     (§7.1.1);
//   - the reshaped-array reference transformation of Table 1 (§4.3), with
//     fast (no div/mod) addressing inside tiled loops and the general form
//     elsewhere;
//   - hoisting of indirect loads, descriptor fields, and div/mod out of
//     loops, and CSE across index expressions (§7.2);
//   - selection of floating-point-simulated integer divide (§7.3), which
//     codegen consumes via Options.FPDiv.
//
// Pass ordering follows §7.4: scheduling and tiling first (so the loop-nest
// structure is in its final shape), then reference transformation, then
// hoisting and CSE.
package xform

import (
	"dsmdist/internal/dist"
	"dsmdist/internal/ir"
)

// Options selects optimization levels; Table 2's rows correspond to
// None / TilePeel / TilePeel+Hoist+CSE.
type Options struct {
	TilePeel bool
	Hoist    bool
	CSE      bool
	FPDiv    bool // emit the §7.3 software divide for integer div/mod
}

// O0 disables the reshape optimizations ("Reshape, no optimizations").
func O0() Options { return Options{} }

// O1 is tile-and-peel only.
func O1() Options { return Options{TilePeel: true} }

// O2 adds hoisting of indirect loads, descriptor fields and div/mod.
func O2() Options { return Options{TilePeel: true, Hoist: true} }

// O3 is everything, the production default.
func O3() Options { return Options{TilePeel: true, Hoist: true, CSE: true, FPDiv: true} }

// Transform rewrites the unit in place.
func Transform(u *ir.Unit, opts Options) {
	x := &xf{unit: u, opts: opts}
	u.Body = x.stmts(u.Body, nil)
	if opts.Hoist {
		// The "regular loop-nest optimizations" of §7.4 step 2: plain
		// array references are lowered to explicit addressing so the
		// hoister strength-reduces them exactly like reshaped ones.
		lowerPlainRefs(u.Body)
		u.Body = hoistBody(u, u.Body, nil)
	}
	if opts.CSE {
		u.Body = cseBody(u, u.Body)
	}
}

// lowerPlainRefs rewrites every non-reshaped ArrayRef into a MemRef with an
// explicit column-major address polynomial, exposing the multiplies and
// invariant parts to LICM and CSE.
func lowerPlainRefs(ss []ir.Stmt) {
	ir.MapExprs(ss, func(e ir.Expr) ir.Expr {
		return ir.RewriteExpr(e, func(n ir.Expr) ir.Expr {
			ar, ok := n.(*ir.ArrayRef)
			if !ok || ar.Sym.IsReshaped() {
				return n
			}
			off := ir.Expr(ir.CI(0))
			stride := ir.Expr(ir.CI(1))
			for d := range ar.Sym.Dims {
				sub := ir.ISub(ar.Idx[d], ir.CI(1))
				off = ir.IAdd(off, ir.IMul(sub, stride))
				if d < len(ar.Sym.Dims)-1 {
					stride = ir.IMul(stride, ir.CloneExpr(ar.Sym.Dims[d]))
				}
			}
			addr := ir.IAdd(&ir.ArrayBase{Sym: ar.Sym}, ir.IMul(off, ir.CI(8)))
			return &ir.MemRef{Addr: addr, Ty: ar.Sym.Type}
		})
	})
}

// xf carries transformation state for one unit.
type xf struct {
	unit *ir.Unit
	opts Options
}

// stmts rewrites a statement list under the active fast-addressing modes
// (nil outside any tile).
func (x *xf) stmts(ss []ir.Stmt, modes *tileModes) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range ss {
		out = append(out, x.stmt(s, modes)...)
	}
	return out
}

func (x *xf) stmt(s ir.Stmt, modes *tileModes) []ir.Stmt {
	switch st := s.(type) {
	case *ir.Do:
		if st.Par != nil {
			return []ir.Stmt{x.schedule(st)}
		}
		return x.serialLoop(st, modes)
	case *ir.If:
		st.Cond = x.rewriteExprRefs(st.Cond, modes)
		st.Then = x.stmts(st.Then, modes)
		st.Else = x.stmts(st.Else, modes)
		return []ir.Stmt{st}
	default:
		// Straight-line statement: rewrite any reshaped references
		// (fast where a tile covers them, general otherwise).
		x.rewriteStmtRefs(s, modes)
		return []ir.Stmt{s}
	}
}

// rewriteStmtRefs rewrites reshaped ArrayRefs in this statement's own
// expressions (not nested statements).
func (x *xf) rewriteStmtRefs(s ir.Stmt, modes *tileModes) {
	switch st := s.(type) {
	case *ir.Assign:
		st.Lhs = x.rewriteExprRefs(st.Lhs, modes)
		st.Rhs = x.rewriteExprRefs(st.Rhs, modes)
	case *ir.If:
		st.Cond = x.rewriteExprRefs(st.Cond, modes)
	case *ir.CallStmt:
		for i, a := range st.Args {
			st.Args[i] = x.rewriteExprRefs(a, modes)
		}
	case *ir.Do:
		st.Lo = x.rewriteExprRefs(st.Lo, modes)
		st.Hi = x.rewriteExprRefs(st.Hi, modes)
		if st.Step != nil {
			st.Step = x.rewriteExprRefs(st.Step, modes)
		}
	}
}

// rewriteExprRefs rewrites reshaped ArrayRefs within e. modes carries the
// per-(array,dim) fast-addressing context established by enclosing tiled
// loops (nil outside tiles).
func (x *xf) rewriteExprRefs(e ir.Expr, modes *tileModes) ir.Expr {
	if e == nil {
		return nil
	}
	return ir.RewriteExpr(e, func(n ir.Expr) ir.Expr {
		ar, ok := n.(*ir.ArrayRef)
		if !ok || !ar.Sym.IsReshaped() {
			return n
		}
		return x.reshapedRef(ar, modes)
	})
}

// descField builds a descriptor read.
func descField(s *ir.Sym, dim int, f ir.DescFieldKind) ir.Expr {
	// For undistributed dimensions the extent is the declared one; use
	// it directly when constant so no descriptor load is emitted.
	if f == ir.FieldN || f == ir.FieldML {
		if s.Dist == nil || !s.Dist.Dims[dim].Distributed() {
			if dim < len(s.Dims) && s.Dims[dim] != nil {
				if c, ok := s.Dims[dim].(*ir.ConstInt); ok {
					return ir.CI(c.V)
				}
			}
		}
	}
	if s.Dist != nil && s.Dist.Dims[dim].Kind == dist.BlockCyclic && f == ir.FieldK {
		return ir.CI(int64(s.Dist.Dims[dim].Chunk))
	}
	return &ir.DescField{Sym: s, Dim: dim, Field: f}
}

// assign builds t = e and returns the VarRef for t.
func (x *xf) assign(out *[]ir.Stmt, name string, e ir.Expr) *ir.VarRef {
	t := x.unit.NewTemp(ir.Int, name)
	*out = append(*out, &ir.Assign{Lhs: &ir.VarRef{Sym: t}, Rhs: e})
	return &ir.VarRef{Sym: t}
}

// ceilDivE emits statements computing ceil(num/den) exactly for any sign of
// num (den > 0): q = num/den; q += (num - q*den > 0).
func (x *xf) ceilDivE(out *[]ir.Stmt, num, den ir.Expr) ir.Expr {
	if c, ok := ir.IntConst(den); ok && c == 1 {
		return num
	}
	if nc, ok := ir.IntConst(num); ok {
		if dc, ok2 := ir.IntConst(den); ok2 && dc > 0 {
			q := nc / dc
			if nc%dc != 0 && nc > 0 {
				q++
			}
			return ir.CI(q)
		}
	}
	n := x.assign(out, "cn", num)
	q := x.assign(out, "cq", ir.IDiv(n, den))
	r := ir.ISub(n, ir.IMul(q, den))
	adj := &ir.Bin{Op: ir.Gt, L: r, R: ir.CI(0), Ty: ir.Int}
	return ir.IAdd(q, adj)
}

// floorDivE emits statements computing floor(num/den) exactly (den > 0).
func (x *xf) floorDivE(out *[]ir.Stmt, num, den ir.Expr) ir.Expr {
	if c, ok := ir.IntConst(den); ok && c == 1 {
		return num
	}
	if nc, ok := ir.IntConst(num); ok {
		if dc, ok2 := ir.IntConst(den); ok2 && dc > 0 {
			q := nc / dc
			if nc%dc != 0 && nc < 0 {
				q--
			}
			return ir.CI(q)
		}
	}
	n := x.assign(out, "fn", num)
	q := x.assign(out, "fq", ir.IDiv(n, den))
	r := ir.ISub(n, ir.IMul(q, den))
	adj := &ir.Bin{Op: ir.Lt, L: r, R: ir.CI(0), Ty: ir.Int}
	return ir.ISub(q, adj)
}

// posMod builds mod(e, m) guaranteed non-negative for m > 0.
func posMod(e, m ir.Expr) ir.Expr {
	return ir.IModE(ir.IAdd(ir.IModE(e, m), m), m)
}
