package xform_test

import (
	"testing"

	"dsmdist/internal/core"
	"dsmdist/internal/exec"
	"dsmdist/internal/fortran"
	"dsmdist/internal/ir"
	"dsmdist/internal/machine"
	"dsmdist/internal/sema"
	"dsmdist/internal/xform"
)

// runAt builds and runs src at the given opt level, returning the result.
func runAt(t *testing.T, src string, opt xform.Options, nprocs int) *exec.Result {
	t.Helper()
	tc := core.NewAt(opt)
	img, err := tc.Build(map[string]string{"x.f": src})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := core.Run(img, machine.Tiny(nprocs), core.RunOptions{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

const stencilSrc = `
      program s
      integer n
      parameter (n = 256)
      real*8 a(n), b(n)
c$distribute_reshape a(block), b(block)
      integer i, it
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = dble(i)
        b(i) = 0.0
      end do
      do it = 1, 4
c$doacross local(i) affinity(i) = data(b(i))
      do i = 2, n-1
        b(i) = (a(i-1) + a(i) + a(i+1)) / 3.0
      end do
      end do
      end
`

// TestDivModElimination is the mechanism behind Table 2: tiling and peeling
// must eliminate nearly all integer divides from the inner loops.
func TestDivModElimination(t *testing.T) {
	o0 := runAt(t, stencilSrc, xform.O0(), 4)
	o1 := runAt(t, stencilSrc, xform.O1(), 4)
	// At O0 every reshaped access runs Table 1 addressing: div+mod per
	// reference, ~4 refs * 254 iterations * 4 time steps.
	if o0.HwDiv < 3000 {
		t.Fatalf("O0 executed only %d hardware divides; Table 1 addressing missing?", o0.HwDiv)
	}
	// Tiling+peeling: interior iterations are div/mod-free; only bounds
	// computation and peeled iterations divide.
	if o1.HwDiv*10 > o0.HwDiv {
		t.Fatalf("tile+peel left %d divides (O0 had %d); expected >10x reduction", o1.HwDiv, o0.HwDiv)
	}
	// And the cycle counts must improve accordingly.
	if o1.Cycles >= o0.Cycles {
		t.Fatalf("O1 (%d cycles) not faster than O0 (%d)", o1.Cycles, o0.Cycles)
	}
}

// TestHoistingReducesWork: O2 must cut instructions (hoisted descriptor
// loads and portion bases) relative to O1.
func TestHoistingReducesWork(t *testing.T) {
	o1 := runAt(t, stencilSrc, xform.O1(), 4)
	o2 := runAt(t, stencilSrc, xform.O2(), 4)
	if o2.Instrs >= o1.Instrs {
		t.Fatalf("O2 executed %d instrs, O1 %d; hoisting had no effect", o2.Instrs, o1.Instrs)
	}
	if o2.Cycles >= o1.Cycles {
		t.Fatalf("O2 (%d cycles) not faster than O1 (%d)", o2.Cycles, o1.Cycles)
	}
}

// TestFPDivStrengthReduction: O3 replaces remaining hardware divides with
// the §7.3 software form.
func TestFPDivStrengthReduction(t *testing.T) {
	o3 := runAt(t, stencilSrc, xform.O3(), 4)
	if o3.HwDiv != 0 {
		t.Fatalf("O3 still executed %d hardware divides", o3.HwDiv)
	}
	if o3.SoftDiv == 0 {
		t.Fatalf("O3 executed no software divides at all (bounds math should use them)")
	}
}

// TestOptLadderMonotone: the full Table 2 ladder must be monotone in time.
func TestOptLadderMonotone(t *testing.T) {
	var prev int64 = 1 << 62
	for _, opt := range []xform.Options{xform.O0(), xform.O1(), xform.O2(), xform.O3()} {
		res := runAt(t, stencilSrc, opt, 1)
		if res.Cycles > prev {
			t.Fatalf("opt ladder not monotone: %+v took %d cycles, previous level %d",
				opt, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// analyzeOne builds the IR of a single-unit program and transforms it.
func analyzeOne(t *testing.T, src string, opt xform.Options) *ir.Unit {
	t.Helper()
	f, err := fortran.Parse("x.f", src)
	if err != nil {
		t.Fatal(err)
	}
	units, err := sema.AnalyzeFile(f)
	if err != nil {
		t.Fatal(err)
	}
	u := units[0]
	xform.Transform(u, opt)
	return u
}

// TestRegionStructure: a doacross becomes a Region with no Par loops left.
func TestRegionStructure(t *testing.T) {
	u := analyzeOne(t, `
      program p
      real*8 a(100)
c$distribute a(block)
      integer i
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, 100
        a(i) = 1.0
      end do
      end
`, xform.O3())
	var regions int
	ir.WalkStmts(u.Body, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Region:
			regions++
		case *ir.Do:
			if st.Par != nil {
				t.Fatal("Par loop survived scheduling")
			}
		}
		return true
	}, nil)
	if regions != 1 {
		t.Fatalf("regions = %d", regions)
	}
}

// TestNoDivModInInnerLoop: statically, the innermost tiled loop body must
// contain no Div/Mod on the reshaped address path at O1+.
func TestNoDivModInInnerLoop(t *testing.T) {
	u := analyzeOne(t, `
      program p
      integer n
      parameter (n = 64)
      real*8 a(n)
c$distribute_reshape a(block)
      integer i
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = dble(i)
      end do
      end
`, xform.O1())
	// Find the innermost Do inside the Region marked NoDivMod and check
	// its body's expressions.
	ir.WalkStmts(u.Body, func(s ir.Stmt) bool {
		d, ok := s.(*ir.Do)
		if !ok || !d.NoDivMod {
			return true
		}
		ir.WalkStmts(d.Body, func(inner ir.Stmt) bool {
			if _, ok := inner.(*ir.Do); ok {
				return true
			}
			return true
		}, func(e ir.Expr) bool {
			if b, ok := e.(*ir.Bin); ok && (b.Op == ir.Div || b.Op == ir.Mod) {
				t.Fatalf("div/mod in NoDivMod loop body: %s", ir.ExprString(e))
			}
			return true
		})
		return true
	}, nil)
}

// TestSerialLoopTiled: serial loops over reshaped arrays get a processor
// loop (the §7.1 transformation applies beyond parallel loops).
func TestSerialLoopTiled(t *testing.T) {
	u := analyzeOne(t, `
      program p
      integer n
      parameter (n = 64)
      real*8 a(n)
c$distribute_reshape a(block)
      integer i
      do i = 1, n
        a(i) = dble(i)
      end do
      end
`, xform.O1())
	// The outer statement list should now contain a Do over a compiler
	// temp (the processor loop) rather than the original i loop alone.
	found := false
	ir.WalkStmts(u.Body, func(s ir.Stmt) bool {
		if d, ok := s.(*ir.Do); ok && d.Var.Name[0] == '~' {
			found = true
		}
		return true
	}, nil)
	if !found {
		t.Fatal("no processor-tile loop generated for serial loop over reshaped array")
	}
}

// TestMatchingArraysShareTile: two same-shape reshaped arrays in one loop
// are optimized together (§7.1); result correctness across procs.
func TestMatchingArraysShareTile(t *testing.T) {
	src := `
      program p
      integer n
      parameter (n = 96)
      real*8 a(n), b(n), c(n)
c$distribute_reshape a(block), b(block), c(block)
      integer i
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = dble(i)
        b(i) = dble(i) * 2.0
        c(i) = 0.0
      end do
c$doacross local(i) affinity(i) = data(c(i))
      do i = 1, n
        c(i) = a(i) + b(i)
      end do
      end
`
	res := runAt(t, src, xform.O3(), 4)
	c, err := core.Array(res, "p", "c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 96; i++ {
		if c[i] != float64(i+1)*3 {
			t.Fatalf("c[%d] = %v", i, c[i])
		}
	}
	if res.HwDiv > 50 {
		t.Fatalf("matching arrays not sharing the tile: %d divides", res.HwDiv)
	}
}

// TestFilterFallbackCorrect: non-unit affinity coefficient on a cyclic
// distribution takes the ownership-filter fallback and must stay correct.
func TestFilterFallbackCorrect(t *testing.T) {
	src := `
      program p
      real*8 a(64)
c$distribute_reshape a(cyclic)
      integer i
c$doacross local(i) affinity(i) = data(a(2*i))
      do i = 1, 32
        a(2*i) = dble(i)
      end do
      end
`
	res := runAt(t, src, xform.O3(), 4)
	a, err := core.Array(res, "p", "a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 32; i++ {
		if a[2*i-1] != float64(i) {
			t.Fatalf("a(%d) = %v, want %v", 2*i, a[2*i-1], float64(i))
		}
	}
}

// TestCSEProducesTemps: repeated address expressions are committed to
// temporaries.
func TestCSEProducesTemps(t *testing.T) {
	src := `
      program p
      integer n
      parameter (n = 64)
      real*8 a(n)
c$distribute_reshape a(cyclic(3))
      integer i
      a(17) = 1.0
      a(17) = a(17) + 2.0
      end
`
	o2 := runAt(t, src, xform.O2(), 2)
	o3 := runAt(t, src, xform.Options{TilePeel: true, Hoist: true, CSE: true}, 2)
	if o3.Instrs > o2.Instrs {
		t.Fatalf("CSE increased instructions: %d vs %d", o3.Instrs, o2.Instrs)
	}
	a, err := core.Array(o3, "p", "a")
	if err != nil {
		t.Fatal(err)
	}
	if a[16] != 3.0 {
		t.Fatalf("a(17) = %v", a[16])
	}
}

// TestOntoGrid: the onto clause shapes the processor grid; correctness on
// an asymmetric grid.
func TestOntoGrid(t *testing.T) {
	src := `
      program p
      integer n
      parameter (n = 32)
      real*8 a(n, n)
c$distribute_reshape a(block, block) onto(4, 1)
      integer i, j
c$doacross nest(i,j) local(i,j) affinity(i,j) = data(a(i,j))
      do i = 1, n
        do j = 1, n
          a(i,j) = dble(i*100 + j)
        end do
      end do
      end
`
	res := runAt(t, src, xform.O3(), 8)
	a, err := core.Array(res, "p", "a")
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 32; j++ {
		for i := 1; i <= 32; i++ {
			if a[(i-1)+(j-1)*32] != float64(i*100+j) {
				t.Fatalf("a(%d,%d) = %v", i, j, a[(i-1)+(j-1)*32])
			}
		}
	}
	st := core.ArrayState(res, "p", "a")
	if st.Grid.DimProcs[0] != 8 || st.Grid.DimProcs[1] != 1 {
		t.Fatalf("onto(4,1) grid on 8 procs = %v, want [8 1]", st.Grid.DimProcs)
	}
}

// TestSkewing: the §7.1 skew — A(i+k) with loop-invariant k becomes
// tileable; results stay correct and divides drop versus the general path.
func TestSkewing(t *testing.T) {
	src := `
      program p
      integer n
      parameter (n = 128)
      real*8 a(2*n)
c$distribute_reshape a(block)
      integer i, k
      k = n / 2
      do i = 1, n
        a(i + k) = dble(i)
      end do
      end
`
	res := runAt(t, src, xform.O1(), 4)
	a, err := core.Array(res, "p", "a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 128; i++ {
		if a[i+64-1] != float64(i) {
			t.Fatalf("a(%d+64) = %v, want %v", i, a[i+64-1], float64(i))
		}
	}
	// Without skewing every store would run Table 1 addressing: ~256
	// divides. Skewed and tiled, only bounds math divides.
	if res.HwDiv > 60 {
		t.Fatalf("skewing ineffective: %d divides executed", res.HwDiv)
	}
}

// TestSkewCorrectAcrossVariants: skewed loop with other uses of the loop
// variable in the body (substituted as i' - E) stays correct.
func TestSkewWithOtherUses(t *testing.T) {
	src := `
      program p
      integer n
      parameter (n = 64)
      real*8 a(2*n), b(2*n)
c$distribute_reshape a(block)
      integer i, k
      k = 16
      do i = 1, n
        a(i + k) = dble(i) * 2.0
        b(i) = dble(i)
      end do
      end
`
	res := runAt(t, src, xform.O3(), 3)
	a, err := core.Array(res, "p", "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Array(res, "p", "b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 64; i++ {
		if a[i+16-1] != float64(i)*2 {
			t.Fatalf("a(%d+16) = %v", i, a[i+16-1])
		}
		if b[i-1] != float64(i) {
			t.Fatalf("b(%d) = %v (other use of skewed variable broken)", i, b[i-1])
		}
	}
}
