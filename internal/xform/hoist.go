package xform

import (
	"dsmdist/internal/ir"
)

// Hoisting and CSE (§7.2). The scalar optimizer of the paper could not
// speculate indirect loads and div/mod, so the reshape implementation
// hoists them itself: descriptor-field reads (the variables the paper marks
// "constant"), portion-base indirect loads, and loop-invariant index
// arithmetic move to loop preheaders; repeated index subexpressions across
// statements are committed to temporaries.
//
// Purity rules: DescField is immutable unless the array is redistributable
// (c$redistribute may rewrite the descriptor); PortionBase tables are
// written once at startup; ordinary loads are never hoisted.

// hoistBody processes a statement list top-down: each loop's invariants are
// hoisted into statements preceding it, then inner bodies are processed.
// outerAssigned is the set of scalars assigned in enclosing constructs
// (unused for invariance — invariance is per loop — but kept for clarity).
func hoistBody(u *ir.Unit, ss []ir.Stmt, outerAssigned map[*ir.Sym]bool) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range ss {
		switch st := s.(type) {
		case *ir.Do:
			pre := hoistLoop(u, st)
			out = append(out, pre...)
			st.Body = hoistBody(u, st.Body, nil)
			out = append(out, st)
		case *ir.If:
			st.Then = hoistBody(u, st.Then, nil)
			st.Else = hoistBody(u, st.Else, nil)
			out = append(out, st)
		case *ir.Region:
			st.Body = hoistBody(u, st.Body, nil)
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out
}

// collectAssigned returns every scalar that may be written within the
// statement list: assignment targets, do variables, loop-carried counters,
// and scalars whose address is passed to a call.
func collectAssigned(ss []ir.Stmt) map[*ir.Sym]bool {
	set := map[*ir.Sym]bool{}
	ir.WalkStmts(ss, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Assign:
			if vr, ok := st.Lhs.(*ir.VarRef); ok {
				set[vr.Sym] = true
			}
		case *ir.Do:
			set[st.Var] = true
		case *ir.CallStmt:
			for _, a := range st.Args {
				if vr, ok := a.(*ir.VarRef); ok {
					set[vr.Sym] = true
				}
			}
		}
		return true
	}, nil)
	return set
}

// bodyHasCallOrRedist reports whether the list contains a call or
// redistribute (which invalidates redistributable descriptors).
func bodyHasCallOrRedist(ss []ir.Stmt) (call, redist bool) {
	ir.WalkStmts(ss, func(s ir.Stmt) bool {
		switch s.(type) {
		case *ir.CallStmt:
			call = true
		case *ir.Redist:
			redist = true
		}
		return true
	}, nil)
	return call, redist
}

// pureInvariant reports whether e can be evaluated once before the loop:
// pure (no general memory reads, no side effects) and using no scalar
// assigned within the loop. divSafe additionally demands provably nonzero
// divisors so hoisting cannot introduce a trap.
func pureInvariant(e ir.Expr, assigned map[*ir.Sym]bool, callInBody, redistInBody bool) bool {
	ok := true
	ir.WalkExpr(e, func(n ir.Expr) bool {
		switch x := n.(type) {
		case *ir.ConstInt, *ir.ConstReal, *ir.Myid, *ir.Nprocs, *ir.Un, *ir.Cvt, *ir.Intrinsic:
		case *ir.VarRef:
			if assigned[x.Sym] {
				ok = false
			}
			// Addressed scalars live in memory and may be modified
			// through calls.
			if x.Sym.Addressed && callInBody {
				ok = false
			}
		case *ir.Bin:
			if x.Op == ir.Div || x.Op == ir.Mod {
				if !nonZero(x.R) {
					ok = false
				}
			}
		case *ir.DescField:
			if x.Sym.Redistributed && (redistInBody || callInBody) {
				ok = false
			}
		case *ir.PortionBase:
			// Portion tables are immutable after startup.
		case *ir.ArrayBase:
			// Base addresses are fixed at load time.
		default:
			// ArrayRef, MemRef, RTFunc, ArgArray: not hoistable.
			ok = false
		}
		return ok
	})
	return ok
}

// nonZero reports whether an integer expression is provably nonzero
// (positive descriptor fields and nonzero constants).
func nonZero(e ir.Expr) bool {
	switch x := e.(type) {
	case *ir.ConstInt:
		return x.V != 0
	case *ir.DescField:
		// N, P, B, K, ML are all >= 1 at runtime.
		return true
	case *ir.Nprocs:
		return true
	case *ir.Bin:
		if x.Op == ir.Mul {
			return nonZero(x.L) && nonZero(x.R)
		}
	case *ir.VarRef:
		return false
	}
	return false
}

// exprWeight counts operator nodes; hoisting single loads (DescField,
// PortionBase) is always worthwhile, arithmetic needs at least two nodes.
func exprWeight(e ir.Expr) int {
	w := 0
	ir.WalkExpr(e, func(n ir.Expr) bool {
		switch n.(type) {
		case *ir.Bin, *ir.Un, *ir.Cvt, *ir.Intrinsic:
			w++
		case *ir.DescField, *ir.PortionBase:
			w += 4 // a load: always worth a register
		case *ir.ArrayBase:
			w++
		case *ir.Myid, *ir.Nprocs:
			w++
		}
		return true
	})
	return w
}

// hoistLoop replaces maximal invariant subexpressions in the loop body with
// temporaries and returns the preheader assignments.
func hoistLoop(u *ir.Unit, d *ir.Do) []ir.Stmt {
	assigned := collectAssigned(d.Body)
	assigned[d.Var] = true
	callIn, redistIn := bodyHasCallOrRedist(d.Body)

	var pre []ir.Stmt
	cache := map[string]*ir.Sym{}

	var replace func(e ir.Expr) ir.Expr
	replace = func(e ir.Expr) ir.Expr {
		if e == nil {
			return nil
		}
		// Top-down: take the largest invariant subtree.
		if e.Type() == ir.Int || e.Type() == ir.Real {
			switch e.(type) {
			case *ir.VarRef, *ir.ConstInt, *ir.ConstReal:
				return e
			default:
				if pureInvariant(e, assigned, callIn, redistIn) && exprWeight(e) >= 2 {
					key := ir.ExprString(e)
					if t, ok := cache[key]; ok {
						return &ir.VarRef{Sym: t}
					}
					t := u.NewTemp(e.Type(), "h")
					cache[key] = t
					pre = append(pre, &ir.Assign{Lhs: &ir.VarRef{Sym: t}, Rhs: e})
					return &ir.VarRef{Sym: t}
				}
			}
		}
		// Recurse into children.
		switch x := e.(type) {
		case *ir.ArrayRef:
			for i, ix := range x.Idx {
				x.Idx[i] = replace(ix)
			}
		case *ir.Bin:
			x.L, x.R = replace(x.L), replace(x.R)
		case *ir.Un:
			x.X = replace(x.X)
		case *ir.Cvt:
			x.X = replace(x.X)
		case *ir.Intrinsic:
			for i, a := range x.Args {
				x.Args[i] = replace(a)
			}
		case *ir.PortionBase:
			x.Proc = replace(x.Proc)
		case *ir.MemRef:
			x.Addr = replace(x.Addr)
		case *ir.RTFunc:
			for i, a := range x.Args {
				x.Args[i] = replace(a)
			}
		}
		return e
	}

	ir.MapExprs(d.Body, replace)
	return pre
}

// --- CSE across index expressions (§7.2) ---

// cseBody applies common-subexpression elimination to every statement list
// in the unit, returning the (possibly longer) list.
func cseBody(u *ir.Unit, ss []ir.Stmt) []ir.Stmt {
	ss = cseList(u, ss)
	for _, s := range ss {
		switch st := s.(type) {
		case *ir.Do:
			st.Body = cseBody(u, st.Body)
		case *ir.If:
			st.Then = cseBody(u, st.Then)
			st.Else = cseBody(u, st.Else)
		case *ir.Region:
			st.Body = cseBody(u, st.Body)
		}
	}
	return ss
}

// cseList rewrites one straight-line statement list: pure integer
// subexpressions that occur more than once are computed into a temporary at
// their first use. The rewritten list is returned.
func cseList(u *ir.Unit, ss []ir.Stmt) []ir.Stmt {
	// Pass 1: count canonical subtrees across simple statements.
	counts := map[string]int{}
	for _, s := range ss {
		forEachSimpleExpr(s, func(e ir.Expr) {
			ir.WalkExpr(e, func(n ir.Expr) bool {
				if cseCandidate(n) {
					counts[ir.ExprString(n)]++
				}
				return true
			})
		})
	}

	// Pass 2: replace and insert temporaries.
	avail := map[string]*ir.Sym{}   // expr -> holding temp
	users := map[*ir.Sym][]string{} // scalar -> dependent avail keys
	kill := func(sym *ir.Sym) {
		for _, k := range users[sym] {
			delete(avail, k)
		}
		delete(users, sym)
	}

	out := make([]ir.Stmt, 0, len(ss))
	for _, s := range ss {
		switch s.(type) {
		case *ir.Do, *ir.If, *ir.Region:
			// Compound statement: conservatively flush everything.
			avail = map[string]*ir.Sym{}
			users = map[*ir.Sym][]string{}
			out = append(out, s)
			continue
		}
		var inserted []ir.Stmt
		rewrite := func(e ir.Expr) ir.Expr {
			return ir.RewriteExpr(e, func(n ir.Expr) ir.Expr {
				if !cseCandidate(n) {
					return n
				}
				key := ir.ExprString(n)
				if t, ok := avail[key]; ok {
					return &ir.VarRef{Sym: t}
				}
				if counts[key] > 1 {
					t := u.NewTemp(n.Type(), "c")
					inserted = append(inserted, &ir.Assign{Lhs: &ir.VarRef{Sym: t}, Rhs: ir.CloneExpr(n)})
					avail[key] = t
					ir.WalkExpr(n, func(sub ir.Expr) bool {
						if vr, ok := sub.(*ir.VarRef); ok {
							users[vr.Sym] = append(users[vr.Sym], key)
						}
						return true
					})
					return &ir.VarRef{Sym: t}
				}
				return n
			})
		}
		mapSimpleExprs(s, rewrite)
		out = append(out, inserted...)
		out = append(out, s)

		// Invalidate by effects.
		switch st := s.(type) {
		case *ir.Assign:
			if vr, ok := st.Lhs.(*ir.VarRef); ok {
				kill(vr.Sym)
			}
		case *ir.CallStmt:
			for _, a := range st.Args {
				if vr, ok := a.(*ir.VarRef); ok {
					kill(vr.Sym)
				}
			}
		case *ir.Redist:
			// Descriptor fields of the array are stale: flush all
			// (rare statement, simplicity over precision).
			avail = map[string]*ir.Sym{}
			users = map[*ir.Sym][]string{}
		}
	}
	return out
}

// forEachSimpleExpr visits the expression roots of a non-compound
// statement.
func forEachSimpleExpr(s ir.Stmt, f func(ir.Expr)) {
	switch st := s.(type) {
	case *ir.Assign:
		f(st.Lhs)
		f(st.Rhs)
	case *ir.CallStmt:
		for _, a := range st.Args {
			f(a)
		}
	}
}

func mapSimpleExprs(s ir.Stmt, f func(ir.Expr) ir.Expr) {
	switch st := s.(type) {
	case *ir.Assign:
		st.Lhs = f(st.Lhs)
		st.Rhs = f(st.Rhs)
	case *ir.CallStmt:
		for i, a := range st.Args {
			st.Args[i] = f(a)
		}
	}
}

// cseCandidate: pure integer computation with enough weight to be worth a
// register, and no memory reads other than descriptor/portion loads.
func cseCandidate(e ir.Expr) bool {
	switch e.(type) {
	case *ir.Bin, *ir.Intrinsic, *ir.PortionBase:
	default:
		return false
	}
	if e.Type() != ir.Int {
		return false
	}
	pure := true
	ir.WalkExpr(e, func(n ir.Expr) bool {
		switch x := n.(type) {
		case *ir.ArrayRef, *ir.MemRef, *ir.RTFunc, *ir.ArgArray:
			pure = false
		case *ir.VarRef:
			_ = x
		}
		return pure
	})
	return pure && exprWeight(e) >= 3
}
