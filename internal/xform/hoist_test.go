package xform

import (
	"testing"

	"dsmdist/internal/ir"
)

func TestCancelSums(t *testing.T) {
	u := &ir.Unit{Name: "t"}
	i := u.AddSym(&ir.Sym{Name: "i", Type: ir.Int, Kind: ir.Scalar})
	k := u.AddSym(&ir.Sym{Name: "k", Type: ir.Int, Kind: ir.Scalar})
	iv := func() ir.Expr { return &ir.VarRef{Sym: i} }
	kv := func() ir.Expr { return &ir.VarRef{Sym: k} }

	// (i - k) + k + 3  ->  i + 3
	e := ir.IAdd(ir.IAdd(ir.ISub(iv(), kv()), kv()), ir.CI(3))
	got := cancelSums(e)
	af, ok := ir.MatchAffine(got)
	if !ok || af.Var != i || af.A != 1 || af.C != 3 {
		t.Fatalf("cancelSums((i-k)+k+3) = %s", ir.ExprString(got))
	}

	// k - k  ->  0
	z := cancelSums(ir.ISub(kv(), kv()))
	if v, ok := ir.IntConst(z); !ok || v != 0 {
		t.Fatalf("k-k = %s", ir.ExprString(z))
	}

	// i + k stays put (nothing cancels).
	s := cancelSums(ir.IAdd(iv(), kv()))
	if _, ok := s.(*ir.Bin); !ok {
		t.Fatalf("i+k = %s", ir.ExprString(s))
	}

	// 2 + 3 - 1 -> 4
	c := cancelSums(ir.ISub(ir.IAdd(ir.CI(2), ir.CI(3)), ir.CI(1)))
	if v, ok := ir.IntConst(c); !ok || v != 4 {
		t.Fatalf("const sum = %s", ir.ExprString(c))
	}
}

func TestPosMod(t *testing.T) {
	// posMod composes mod expressions; verify the algebra on constants
	// by folding.
	for _, c := range []struct{ x, m, want int64 }{
		{7, 4, 3}, {-1, 4, 3}, {-5, 4, 3}, {0, 4, 0}, {8, 4, 0},
	} {
		e := posMod(ir.CI(c.x), ir.CI(c.m))
		v, ok := ir.IntConst(e)
		if !ok || v != c.want {
			t.Fatalf("posMod(%d,%d) = %s, want %d", c.x, c.m, ir.ExprString(e), c.want)
		}
	}
}

func TestExprWeight(t *testing.T) {
	u := &ir.Unit{Name: "t"}
	s := u.AddSym(&ir.Sym{Name: "a", Type: ir.Real, Kind: ir.Array,
		Dims: []ir.Expr{ir.CI(8)}})
	if exprWeight(&ir.VarRef{Sym: s}) != 0 {
		t.Fatal("bare ref has weight")
	}
	if exprWeight(&ir.DescField{Sym: s}) < 4 {
		t.Fatal("descriptor load too light to hoist")
	}
	if exprWeight(ir.IAdd(&ir.Myid{}, &ir.Nprocs{})) < 2 {
		t.Fatal("arith weight wrong")
	}
}

func TestNonZero(t *testing.T) {
	u := &ir.Unit{Name: "t"}
	s := u.AddSym(&ir.Sym{Name: "a", Type: ir.Real, Kind: ir.Array, Dims: []ir.Expr{ir.CI(8)}})
	v := u.AddSym(&ir.Sym{Name: "v", Type: ir.Int, Kind: ir.Scalar})
	if !nonZero(ir.CI(3)) || nonZero(ir.CI(0)) {
		t.Fatal("const nonzero wrong")
	}
	if !nonZero(&ir.DescField{Sym: s, Field: ir.FieldP}) {
		t.Fatal("descriptor fields are >= 1")
	}
	if nonZero(&ir.VarRef{Sym: v}) {
		t.Fatal("arbitrary scalar treated as nonzero")
	}
	if !nonZero(ir.IMul(ir.CI(2), &ir.Nprocs{})) {
		t.Fatal("product of nonzeros")
	}
}
