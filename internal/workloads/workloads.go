// Package workloads generates the paper's evaluation programs (§8) in the
// Fortran subset, parameterized by size and by distribution variant:
//
//   - NAS-LU (§8.1): an SSOR-style kernel over two (5,n,n,n) arrays
//     distributed (*,block,block,*), with parallel initialization. See
//     DESIGN.md for the substitution rationale (the class-C binary itself
//     needs the full NAS suite; the kernel preserves layout, distribution,
//     access pattern and footprint ratios).
//   - Matrix transpose (§8.2): A(*,block), B(block,*), serial
//     initialization — the distribution that *requires* reshaping because a
//     (block,*) row portion is far smaller than a page.
//   - 2-D convolution (§8.3): five-point stencil, one- or two-level
//     parallelism with (*,block) or (block,block).
//
// Each generator emits all four paper variants: no directives (first-touch
// and round-robin runs differ only in run policy), regular distribution,
// and reshaped distribution; plus a fully serial build for speedup
// baselines.
package workloads

import (
	"fmt"
	"strings"
)

// Variant selects the distribution treatment of a generated program.
type Variant int

const (
	// Serial has no doacross directives at all: the uniprocessor
	// baseline the paper's speedups are relative to.
	Serial Variant = iota
	// Plain is explicitly parallel with no data distribution; run it
	// under first-touch or round-robin policy for the paper's first two
	// lines.
	Plain
	// Regular uses c$distribute (§4.2 page placement).
	Regular
	// Reshaped uses c$distribute_reshape (§4.3).
	Reshaped
)

func (v Variant) String() string {
	switch v {
	case Serial:
		return "serial"
	case Plain:
		return "plain"
	case Regular:
		return "regular"
	case Reshaped:
		return "reshaped"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// distDirective renders the directive line for the variant, or "".
func distDirective(v Variant, spec string) string {
	switch v {
	case Regular:
		return "c$distribute " + spec + "\n"
	case Reshaped:
		return "c$distribute_reshape " + spec + "\n"
	}
	return ""
}

// par renders a doacross line (with affinity only when distributed), or ""
// for the serial variant.
func par(v Variant, clauses, affinity string) string {
	if v == Serial {
		return ""
	}
	s := "c$doacross " + clauses
	if affinity != "" && (v == Regular || v == Reshaped) {
		s += " " + affinity
	}
	return s + "\n"
}

// Transpose generates the §8.2 matrix transpose: iters repetitions of
// A(j,i) = B(i,j) over n×n matrices, serial initialization.
func Transpose(n, iters int, v Variant) string {
	var b strings.Builder
	fmt.Fprintf(&b, `      program transp
      integer n
      parameter (n = %d)
      real*8 a(n, n), b(n, n)
`, n)
	b.WriteString(distDirective(v, "a(*, block), b(block, *)"))
	fmt.Fprintf(&b, `      integer i, j, it
      do j = 1, n
        do i = 1, n
          b(i, j) = dble(i) + dble(j)*0.5
          a(i, j) = 0.0
        end do
      end do
      call dsm_timer_start
      do it = 1, %d
`, iters)
	b.WriteString(par(v, "local(i, j) shared(a, b)", "affinity(i) = data(b(i, 1))"))
	b.WriteString(`      do i = 1, n
        do j = 1, n
          a(j, i) = b(i, j)
        end do
      end do
      end do
      call dsm_timer_stop
      end
`)
	return b.String()
}

// Convolution generates the §8.3 five-point stencil. levels selects one- or
// two-level parallelism ((*,block) vs (block,block) distributions).
func Convolution(n, iters, levels int, v Variant) string {
	var b strings.Builder
	fmt.Fprintf(&b, `      program conv
      integer n
      parameter (n = %d)
      real*8 a(n, n), b(n, n)
`, n)
	if levels >= 2 {
		b.WriteString(distDirective(v, "a(block, block), b(block, block)"))
	} else {
		b.WriteString(distDirective(v, "a(*, block), b(*, block)"))
	}
	fmt.Fprintf(&b, `      integer i, j, it
      do j = 1, n
        do i = 1, n
          b(i, j) = dble(i)*0.25 + dble(j)*0.125
          a(i, j) = 0.0
        end do
      end do
      call dsm_timer_start
      do it = 1, %d
`, iters)
	if levels >= 2 {
		b.WriteString(par(v, "nest(j, i) local(i, j) shared(a, b)",
			"affinity(j, i) = data(a(i, j))"))
	} else {
		b.WriteString(par(v, "local(i, j) shared(a, b)",
			"affinity(j) = data(a(1, j))"))
	}
	b.WriteString(`      do j = 2, n-1
        do i = 2, n-1
          a(i,j) = (b(i-1,j) + b(i,j-1) + b(i,j) + b(i,j+1) + b(i+1,j)) / 5.0
        end do
      end do
      end do
      call dsm_timer_stop
      end
`)
	return b.String()
}

// LU generates the §8.1 SSOR-style LU kernel: two (5,n,n,n) arrays
// distributed (*,block,block,*), parallel initialization, then iters sweeps
// of a residual stencil and a solution update — the NAS-LU memory behaviour
// at the paper's parallel partitioning.
func LU(n, iters int, v Variant) string {
	var b strings.Builder
	fmt.Fprintf(&b, `      program lukern
      integer n
      parameter (n = %d)
      real*8 u(5, n, n, n), rsd(5, n, n, n)
`, n)
	b.WriteString(distDirective(v, "u(*, block, block, *), rsd(*, block, block, *)"))
	b.WriteString(`      integer i, j, k, m, it
`)
	// Parallel initialization (paper: "Data is initialized in parallel
	// in this application", §8.1) — except in the serial build.
	b.WriteString(par(v, "nest(j, k) local(i, j, k, m) shared(u, rsd)",
		"affinity(j, k) = data(u(1, j, k, 1))"))
	b.WriteString(`      do j = 1, n
        do k = 1, n
          do i = 1, n
            do m = 1, 5
              u(m, j, k, i) = dble(m) + 0.001*dble(i+j+k)
              rsd(m, j, k, i) = 0.0
            end do
          end do
        end do
      end do
`)
	b.WriteString("      call dsm_timer_start\n")
	fmt.Fprintf(&b, "      do it = 1, %d\n", iters)
	b.WriteString(par(v, "nest(j, k) local(i, j, k, m) shared(u, rsd)",
		"affinity(j, k) = data(rsd(1, j, k, 1))"))
	b.WriteString(`      do j = 2, n-1
        do k = 2, n-1
          do i = 2, n-1
            do m = 1, 5
              rsd(m,j,k,i) = (u(m,j-1,k,i) + u(m,j+1,k,i) + u(m,j,k-1,i)&
                 + u(m,j,k+1,i) + u(m,j,k,i-1) + u(m,j,k,i+1)&
                 - 6.0*u(m,j,k,i)) * 0.2
            end do
          end do
        end do
      end do
`)
	b.WriteString(par(v, "nest(j, k) local(i, j, k, m) shared(u, rsd)",
		"affinity(j, k) = data(u(1, j, k, 1))"))
	b.WriteString(`      do j = 2, n-1
        do k = 2, n-1
          do i = 2, n-1
            do m = 1, 5
              u(m,j,k,i) = u(m,j,k,i) + 0.8*rsd(m,j,k,i)
            end do
          end do
        end do
      end do
      end do
      call dsm_timer_stop
      end
`)
	return b.String()
}

// Redistribute generates the redistribution benchmark: an n×n array laid
// out under the `from` spec, whose pages then ping-pong between the `to`
// and `from` specs iters times inside the timed section. from/to are
// dimension spec lists like "(*, block)". The program's only timed work is
// the redistribution itself, so the dsm_timer section isolates the §3.3
// data-motion cost the redist experiment sweeps.
func Redistribute(n, iters int, from, to string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `      program redist
      integer n
      parameter (n = %d)
      real*8 a(n, n)
c$distribute a%s
      integer i, j, it
      do j = 1, n
        do i = 1, n
          a(i, j) = dble(i) + dble(j)*0.5
        end do
      end do
      call dsm_timer_start
      do it = 1, %d
c$redistribute a%s
c$redistribute a%s
      end do
      call dsm_timer_stop
      end
`, n, from, iters, to, from)
	return b.String()
}
