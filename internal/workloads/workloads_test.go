package workloads

import (
	"testing"

	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

// buildRun compiles and runs a generated source on nprocs Tiny processors.
func buildRun(t *testing.T, src string, nprocs int) map[string][]float64 {
	t.Helper()
	tc := core.New()
	img, err := tc.Build(map[string]string{"w.f": src})
	if err != nil {
		t.Fatalf("build:\n%s\nerror: %v", src, err)
	}
	res, err := core.Run(img, machine.Tiny(nprocs), core.RunOptions{Policy: ospage.FirstTouch})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := map[string][]float64{}
	for _, st := range res.RT.Arrays {
		out[st.Plan.Name] = res.RT.Gather(st)
	}
	return out
}

// All variants of a workload must compute identical values.
func variantsAgree(t *testing.T, gen func(Variant) string, arrays []string, nprocs int) {
	t.Helper()
	var ref map[string][]float64
	for _, v := range []Variant{Serial, Plain, Regular, Reshaped} {
		got := buildRun(t, gen(v), nprocs)
		if ref == nil {
			ref = got
			continue
		}
		for _, name := range arrays {
			a, b := ref[name], got[name]
			if len(a) != len(b) {
				t.Fatalf("%v: %s has %d elements, serial has %d", v, name, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: %s[%d] = %v, serial %v", v, name, i, b[i], a[i])
				}
			}
		}
	}
}

func TestTransposeVariantsAgree(t *testing.T) {
	variantsAgree(t, func(v Variant) string { return Transpose(20, 2, v) }, []string{"a"}, 4)
}

func TestConvolution1LevelVariantsAgree(t *testing.T) {
	variantsAgree(t, func(v Variant) string { return Convolution(18, 2, 1, v) }, []string{"a"}, 4)
}

func TestConvolution2LevelVariantsAgree(t *testing.T) {
	variantsAgree(t, func(v Variant) string { return Convolution(18, 1, 2, v) }, []string{"a"}, 4)
}

func TestLUVariantsAgree(t *testing.T) {
	variantsAgree(t, func(v Variant) string { return LU(8, 1, v) }, []string{"u", "rsd"}, 4)
}

func TestTransposeValues(t *testing.T) {
	got := buildRun(t, Transpose(8, 1, Reshaped), 2)
	a := got["a"]
	// a(j,i) = b(i,j) = i + j*0.5; column-major a: a[(j-1) + (i-1)*8]
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			want := float64(i) + float64(j)*0.5
			if a[(j-1)+(i-1)*8] != want {
				t.Fatalf("a(%d,%d) = %v, want %v", j, i, a[(j-1)+(i-1)*8], want)
			}
		}
	}
}

func TestVariantString(t *testing.T) {
	if Serial.String() != "serial" || Reshaped.String() != "reshaped" {
		t.Fatal("variant names")
	}
}
