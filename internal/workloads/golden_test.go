package workloads

import (
	"testing"

	"dsmdist/internal/core"
	"dsmdist/internal/machine"
	"dsmdist/internal/ospage"
)

// Golden-reference tests: the same computations implemented directly in Go
// must match the simulated Fortran runs bit-for-bit (both use float64 in
// the same evaluation order).

func runVariant(t *testing.T, src string, nprocs int) map[string][]float64 {
	t.Helper()
	tc := core.New()
	img, err := tc.Build(map[string]string{"g.f": src})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := core.Run(img, machine.Tiny(nprocs), core.RunOptions{Policy: ospage.FirstTouch})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := map[string][]float64{}
	for _, st := range res.RT.Arrays {
		out[st.Plan.Name] = res.RT.Gather(st)
	}
	return out
}

// goldenTranspose computes the expected A after `iters` transposes.
func goldenTranspose(n int) (a []float64) {
	a = make([]float64, n*n)
	b := make([]float64, n*n)
	at := func(m []float64, i, j int) int { return (i - 1) + (j-1)*n }
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			b[at(b, i, j)] = float64(i) + float64(j)*0.5
		}
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			a[at(a, j, i)] = b[at(b, i, j)]
		}
	}
	return a
}

func TestTransposeGolden(t *testing.T) {
	const n = 24
	want := goldenTranspose(n)
	for _, v := range []Variant{Serial, Reshaped} {
		got := runVariant(t, Transpose(n, 3, v), 4)["a"]
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%v: a[%d] = %v, want %v", v, k, got[k], want[k])
			}
		}
	}
}

// goldenConv runs the five-point stencil iters times.
func goldenConv(n, iters int) []float64 {
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	at := func(i, j int) int { return (i - 1) + (j-1)*n }
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			b[at(i, j)] = float64(i)*0.25 + float64(j)*0.125
		}
	}
	for it := 0; it < iters; it++ {
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				a[at(i, j)] = (b[at(i-1, j)] + b[at(i, j-1)] + b[at(i, j)] +
					b[at(i, j+1)] + b[at(i+1, j)]) / 5.0
			}
		}
	}
	return a
}

func TestConvolutionGolden(t *testing.T) {
	const n = 20
	want := goldenConv(n, 2)
	for _, levels := range []int{1, 2} {
		got := runVariant(t, Convolution(n, 2, levels, Reshaped), 4)["a"]
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("levels=%d: a[%d] = %v, want %v", levels, k, got[k], want[k])
			}
		}
	}
}

// goldenLU runs one SSOR-style sweep of the LU kernel.
func goldenLU(n, iters int) (u, rsd []float64) {
	sz := 5 * n * n * n
	u = make([]float64, sz)
	rsd = make([]float64, sz)
	at := func(m, j, k, i int) int {
		return (m - 1) + (j-1)*5 + (k-1)*5*n + (i-1)*5*n*n
	}
	for j := 1; j <= n; j++ {
		for k := 1; k <= n; k++ {
			for i := 1; i <= n; i++ {
				for m := 1; m <= 5; m++ {
					u[at(m, j, k, i)] = float64(m) + 0.001*float64(i+j+k)
				}
			}
		}
	}
	for it := 0; it < iters; it++ {
		for j := 2; j <= n-1; j++ {
			for k := 2; k <= n-1; k++ {
				for i := 2; i <= n-1; i++ {
					for m := 1; m <= 5; m++ {
						rsd[at(m, j, k, i)] = (u[at(m, j-1, k, i)] + u[at(m, j+1, k, i)] +
							u[at(m, j, k-1, i)] + u[at(m, j, k+1, i)] +
							u[at(m, j, k, i-1)] + u[at(m, j, k, i+1)] -
							6.0*u[at(m, j, k, i)]) * 0.2
					}
				}
			}
		}
		for j := 2; j <= n-1; j++ {
			for k := 2; k <= n-1; k++ {
				for i := 2; i <= n-1; i++ {
					for m := 1; m <= 5; m++ {
						u[at(m, j, k, i)] += 0.8 * rsd[at(m, j, k, i)]
					}
				}
			}
		}
	}
	return u, rsd
}

func TestLUGolden(t *testing.T) {
	const n = 8
	wantU, wantRsd := goldenLU(n, 2)
	for _, v := range []Variant{Serial, Regular, Reshaped} {
		got := runVariant(t, LU(n, 2, v), 4)
		for k := range wantU {
			if got["u"][k] != wantU[k] {
				t.Fatalf("%v: u[%d] = %v, want %v", v, k, got["u"][k], wantU[k])
			}
			if got["rsd"][k] != wantRsd[k] {
				t.Fatalf("%v: rsd[%d] = %v, want %v", v, k, got["rsd"][k], wantRsd[k])
			}
		}
	}
}

// TestDeterminism: two identical runs must produce identical simulated
// cycle counts and statistics (the simulator has no hidden nondeterminism).
func TestDeterminism(t *testing.T) {
	src := Transpose(32, 2, Reshaped)
	build := func() (int64, int64) {
		tc := core.New()
		img, err := tc.Build(map[string]string{"d.f": src})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(img, machine.Tiny(6), core.RunOptions{Policy: ospage.RoundRobin})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, res.Total.L2Miss
	}
	c1, m1 := build()
	c2, m2 := build()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("nondeterministic: run1=(%d,%d) run2=(%d,%d)", c1, m1, c2, m2)
	}
}
