package sema

import (
	"dsmdist/internal/fortran"
	"dsmdist/internal/ir"
)

// Expression lowering, the doacross analysis, and call lowering.

// coerce inserts a conversion so e has type want.
func (a *analyzer) coerce(e ir.Expr, want ir.Type) ir.Expr {
	if e == nil || e.Type() == want {
		return e
	}
	// Fold constant conversions.
	switch x := e.(type) {
	case *ir.ConstInt:
		if want == ir.Real {
			return &ir.ConstReal{V: float64(x.V)}
		}
	case *ir.ConstReal:
		if want == ir.Int {
			return ir.CI(int64(x.V))
		}
	}
	return &ir.Cvt{X: e, To: want}
}

var binOpMap = map[fortran.BinOpKind]ir.BinOp{
	fortran.OpAdd: ir.Add, fortran.OpSub: ir.Sub, fortran.OpMul: ir.Mul,
	fortran.OpDiv: ir.Div, fortran.OpLT: ir.Lt, fortran.OpLE: ir.Le,
	fortran.OpGT: ir.Gt, fortran.OpGE: ir.Ge, fortran.OpEQ: ir.Eq,
	fortran.OpNE: ir.Ne, fortran.OpAnd: ir.And, fortran.OpOr: ir.Or,
}

// lowerExpr lowers an expression, reporting nil after emitting an error.
func (a *analyzer) lowerExpr(e fortran.Expr) ir.Expr {
	switch x := e.(type) {
	case *fortran.IntLit:
		return ir.CI(x.Value)
	case *fortran.RealLit:
		return &ir.ConstReal{V: x.Value}
	case *fortran.Ident:
		if cv, ok := a.consts[x.Name]; ok {
			if cv.isInt {
				return ir.CI(cv.i)
			}
			return &ir.ConstReal{V: cv.f}
		}
		s := a.lookupOrImplicit(x.Name, x.Line)
		if s.Kind == ir.Array {
			a.errorf(x.Line, "array %s used without subscripts", x.Name)
			return nil
		}
		return &ir.VarRef{Sym: s}
	case *fortran.UnOp:
		in := a.lowerExpr(x.X)
		if in == nil {
			return nil
		}
		if x.Neg {
			if c, ok := in.(*ir.ConstInt); ok {
				return ir.CI(-c.V)
			}
			if c, ok := in.(*ir.ConstReal); ok {
				return &ir.ConstReal{V: -c.V}
			}
			return &ir.Un{X: in, Ty: in.Type()}
		}
		return &ir.Un{Not: true, X: a.coerce(in, ir.Int), Ty: ir.Int}
	case *fortran.BinOp:
		l := a.lowerExpr(x.L)
		r := a.lowerExpr(x.R)
		if l == nil || r == nil {
			return nil
		}
		op := binOpMap[x.Op]
		switch op {
		case ir.And, ir.Or:
			return &ir.Bin{Op: op, L: a.coerce(l, ir.Int), R: a.coerce(r, ir.Int), Ty: ir.Int}
		}
		ty := ir.Int
		if l.Type() == ir.Real || r.Type() == ir.Real {
			ty = ir.Real
		}
		l, r = a.coerce(l, ty), a.coerce(r, ty)
		if ty == ir.Int {
			switch op {
			case ir.Add, ir.Sub, ir.Mul, ir.Div:
				return ir.RewriteExpr(&ir.Bin{Op: op, L: l, R: r, Ty: ty}, foldInts)
			}
		}
		return &ir.Bin{Op: op, L: l, R: r, Ty: ty}
	case *fortran.CallExpr:
		return a.lowerCallExpr(x)
	}
	a.errorf(fortran.ExprLine(e), "unsupported expression")
	return nil
}

// foldInts performs local constant folding on integer nodes.
func foldInts(e ir.Expr) ir.Expr {
	b, ok := e.(*ir.Bin)
	if !ok || b.Ty != ir.Int {
		return e
	}
	switch b.Op {
	case ir.Add:
		return ir.IAdd(b.L, b.R)
	case ir.Sub:
		return ir.ISub(b.L, b.R)
	case ir.Mul:
		return ir.IMul(b.L, b.R)
	case ir.Div:
		return ir.IDiv(b.L, b.R)
	case ir.Mod:
		return ir.IModE(b.L, b.R)
	}
	return e
}

// lowerCallExpr resolves name(args): array reference, intrinsic, or runtime
// function.
func (a *analyzer) lowerCallExpr(x *fortran.CallExpr) ir.Expr {
	// Array reference?
	if s, ok := a.syms[x.Name]; ok && s.Kind == ir.Array {
		if len(x.Args) != len(s.Dims) {
			a.errorf(x.Line, "%s has %d dimensions, %d subscripts given", x.Name, len(s.Dims), len(x.Args))
			return nil
		}
		idx := make([]ir.Expr, len(x.Args))
		for i, ae := range x.Args {
			ie := a.lowerExpr(ae)
			if ie == nil {
				return nil
			}
			if ie.Type() != ir.Int {
				a.errorf(x.Line, "subscript %d of %s is not an integer", i+1, x.Name)
				return nil
			}
			idx[i] = ie
		}
		return &ir.ArrayRef{Sym: s, Idx: idx}
	}

	lowerAll := func() []ir.Expr {
		out := make([]ir.Expr, len(x.Args))
		for i, ae := range x.Args {
			out[i] = a.lowerExpr(ae)
			if out[i] == nil {
				return nil
			}
		}
		return out
	}
	need := func(n int) bool {
		if len(x.Args) != n {
			a.errorf(x.Line, "%s expects %d arguments, got %d", x.Name, n, len(x.Args))
			return false
		}
		return true
	}

	switch x.Name {
	case "mod":
		if !need(2) {
			return nil
		}
		args := lowerAll()
		if args == nil {
			return nil
		}
		if args[0].Type() != ir.Int || args[1].Type() != ir.Int {
			a.errorf(x.Line, "mod requires integer arguments")
			return nil
		}
		return ir.RewriteExpr(&ir.Bin{Op: ir.Mod, L: args[0], R: args[1], Ty: ir.Int}, foldInts)
	case "min", "max":
		if len(x.Args) < 2 {
			a.errorf(x.Line, "%s needs at least 2 arguments", x.Name)
			return nil
		}
		args := lowerAll()
		if args == nil {
			return nil
		}
		ty := ir.Int
		for _, ag := range args {
			if ag.Type() == ir.Real {
				ty = ir.Real
			}
		}
		op := ir.IMin
		if x.Name == "max" {
			op = ir.IMax
		}
		acc := a.coerce(args[0], ty)
		for _, ag := range args[1:] {
			acc = &ir.Intrinsic{Op: op, Args: []ir.Expr{acc, a.coerce(ag, ty)}, Ty: ty}
		}
		return acc
	case "abs", "iabs", "dabs":
		if !need(1) {
			return nil
		}
		args := lowerAll()
		if args == nil {
			return nil
		}
		return &ir.Intrinsic{Op: ir.IAbs, Args: args, Ty: args[0].Type()}
	case "sqrt", "dsqrt":
		if !need(1) {
			return nil
		}
		args := lowerAll()
		if args == nil {
			return nil
		}
		return &ir.Intrinsic{Op: ir.ISqrt, Args: []ir.Expr{a.coerce(args[0], ir.Real)}, Ty: ir.Real}
	case "dble", "dfloat", "float", "real":
		if !need(1) {
			return nil
		}
		args := lowerAll()
		if args == nil {
			return nil
		}
		return a.coerce(args[0], ir.Real)
	case "int", "idint", "ifix":
		if !need(1) {
			return nil
		}
		args := lowerAll()
		if args == nil {
			return nil
		}
		return a.coerce(args[0], ir.Int)
	case "dsm_numthreads":
		if !need(0) {
			return nil
		}
		return &ir.Nprocs{}
	case "dsm_this_thread":
		if !need(0) {
			return nil
		}
		if a.parDepth == 0 {
			// Outside a parallel region the value is processor 0;
			// still useful, allowed.
			return ir.CI(0)
		}
		return &ir.Myid{}
	case "dsm_portion_lo", "dsm_portion_hi":
		// dsm_portion_lo(array, dim, proc): first/last 1-based global
		// index of proc's portion along dim (paper §3.2.1 intrinsics).
		if !need(3) {
			return nil
		}
		arr, ok := x.Args[0].(*fortran.Ident)
		if !ok {
			a.errorf(x.Line, "%s: first argument must be an array name", x.Name)
			return nil
		}
		s, ok := a.syms[arr.Name]
		if !ok || s.Kind != ir.Array || s.Dist == nil {
			a.errorf(x.Line, "%s: %s is not a distributed array", x.Name, arr.Name)
			return nil
		}
		dimE := a.lowerExpr(x.Args[1])
		procE := a.lowerExpr(x.Args[2])
		if dimE == nil || procE == nil {
			return nil
		}
		kind := ir.RTPortionLo
		if x.Name == "dsm_portion_hi" {
			kind = ir.RTPortionHi
		}
		return &ir.RTFunc{Kind: kind, Sym: s, Args: []ir.Expr{a.coerce(dimE, ir.Int), a.coerce(procE, ir.Int)}}
	}
	a.errorf(x.Line, "unknown function or array %s", x.Name)
	return nil
}

// lowerLvalue lowers an assignment target.
func (a *analyzer) lowerLvalue(e fortran.Expr, line int) ir.Expr {
	switch x := e.(type) {
	case *fortran.Ident:
		if _, isConst := a.consts[x.Name]; isConst {
			a.errorf(line, "cannot assign to parameter constant %s", x.Name)
			return nil
		}
		s := a.lookupOrImplicit(x.Name, x.Line)
		if s.Kind == ir.Array {
			a.errorf(line, "cannot assign to whole array %s", x.Name)
			return nil
		}
		return &ir.VarRef{Sym: s}
	case *fortran.CallExpr:
		le := a.lowerCallExpr(x)
		if le == nil {
			return nil
		}
		if _, ok := le.(*ir.ArrayRef); !ok {
			a.errorf(line, "invalid assignment target %s", x.Name)
			return nil
		}
		return le
	}
	a.errorf(line, "invalid assignment target")
	return nil
}

// lowerDo lowers a (possibly doacross-annotated) do loop.
func (a *analyzer) lowerDo(x *fortran.Do) ir.Stmt {
	vs := a.lookupOrImplicit(x.Var, x.Line)
	if vs.Kind != ir.Scalar || vs.Type != ir.Int {
		a.errorf(x.Line, "do variable %s must be an integer scalar", x.Var)
	}
	lo := a.coerce(a.lowerExpr(x.Lo), ir.Int)
	hi := a.coerce(a.lowerExpr(x.Hi), ir.Int)
	var step ir.Expr
	if x.Step != nil {
		step = a.coerce(a.lowerExpr(x.Step), ir.Int)
	}
	d := &ir.Do{Var: vs, Lo: lo, Hi: hi, Step: step, Line: x.Line}

	var par *ir.Par
	if x.Doacross != nil {
		par = a.analyzeDoacross(x, vs)
		d.Par = par
		a.parDepth++
		a.parLocals = map[*ir.Sym]bool{}
		for _, ls := range par.Local {
			a.parLocals[ls] = true
		}
		defer func() {
			a.parDepth--
			a.parLocals = nil
		}()
	}

	a.loopVars = append(a.loopVars, vs)
	d.Body = a.lowerStmts(x.Body)
	a.loopVars = a.loopVars[:len(a.loopVars)-1]

	if par != nil && par.Nest > 1 {
		a.checkNest(d, par, x.Doacross.Nest, x.Line)
	}
	return d
}

// checkNest verifies that the nest clause names a perfect loop nest.
func (a *analyzer) checkNest(d *ir.Do, par *ir.Par, nest []string, line int) {
	want := map[string]bool{}
	for _, n := range nest {
		want[n] = true
	}
	cur := d
	seen := map[string]bool{cur.Var.Name: true}
	for depth := 1; depth < par.Nest; depth++ {
		if len(cur.Body) != 1 {
			a.errorf(line, "doacross nest requires perfectly nested loops")
			return
		}
		inner, ok := cur.Body[0].(*ir.Do)
		if !ok {
			a.errorf(line, "doacross nest requires perfectly nested loops")
			return
		}
		seen[inner.Var.Name] = true
		cur = inner
	}
	for n := range want {
		if !seen[n] {
			a.errorf(line, "nest names %s but it is not one of the nested loop variables", n)
		}
	}
}

// analyzeDoacross builds the ir.Par for a doacross directive.
func (a *analyzer) analyzeDoacross(x *fortran.Do, outerVar *ir.Sym) *ir.Par {
	da := x.Doacross
	par := &ir.Par{Nest: 1, Sched: ir.SchedSimple, Line: da.Line}
	if len(da.Nest) > 0 {
		par.Nest = len(da.Nest)
	}
	switch da.Sched {
	case fortran.SchedInterleave:
		par.Sched = ir.SchedInterleave
	case fortran.SchedDynamic:
		par.Sched = ir.SchedDynamic
	case fortran.SchedGSS:
		par.Sched = ir.SchedGSS
	}
	if da.Chunk != nil {
		par.Chunk = a.coerce(a.lowerExpr(da.Chunk), ir.Int)
	}
	if a.parDepth > 0 {
		a.errorf(da.Line, "nested doacross regions are not supported; use the nest clause")
	}

	seenLocal := map[string]bool{}
	addLocal := func(name string, line int) {
		if seenLocal[name] {
			return
		}
		seenLocal[name] = true
		s := a.lookupOrImplicit(name, line)
		if s.Kind != ir.Scalar {
			a.errorf(line, "local clause entry %s is not a scalar", name)
			return
		}
		par.Local = append(par.Local, s)
	}
	for _, n := range da.Local {
		addLocal(n, da.Line)
	}
	// Loop variables of the parallel nest are implicitly local.
	addLocal(x.Var, da.Line)
	for _, n := range da.Nest {
		addLocal(n, da.Line)
	}
	for _, n := range da.Shared {
		a.lookupOrImplicit(n, da.Line)
	}

	if da.Affinity != nil {
		par.Affinity = a.analyzeAffinity(da.Affinity, par, da.Line)
	}
	return par
}

// analyzeAffinity validates affinity(i[,j]) = data(A(...)) against §3.4:
// the subscripts of distributed dimensions must be affine a*v + c with
// literal constants, a non-negative, v one of the affinity variables.
func (a *analyzer) analyzeAffinity(aff *fortran.Affinity, par *ir.Par, line int) *ir.Affinity {
	s, ok := a.syms[aff.Array]
	if !ok || s.Kind != ir.Array {
		a.errorf(line, "affinity names unknown array %s", aff.Array)
		return nil
	}
	if s.Dist == nil || !s.Dist.Distributed() {
		a.errorf(line, "affinity array %s is not distributed", aff.Array)
		return nil
	}
	if len(aff.Index) != len(s.Dims) {
		a.errorf(line, "affinity reference to %s has %d subscripts, array has %d dimensions",
			aff.Array, len(aff.Index), len(s.Dims))
		return nil
	}
	affVars := map[*ir.Sym]bool{}
	for _, v := range aff.Vars {
		affVars[a.lookupOrImplicit(v, line)] = true
	}
	out := &ir.Affinity{Array: s, Dims: make([]ir.AffinityDim, len(s.Dims))}
	used := map[*ir.Sym]bool{}
	for d := range s.Dims {
		if !s.Dist.Dims[d].Distributed() {
			continue // subscripts of undistributed dims are irrelevant
		}
		ie := a.lowerExpr(aff.Index[d])
		if ie == nil {
			continue
		}
		af, ok := ir.MatchAffine(ie)
		if !ok {
			a.errorf(line, "affinity subscript %d of %s is not of the form a*i+c with literal constants", d+1, aff.Array)
			continue
		}
		if af.Var == nil {
			out.Dims[d] = ir.AffinityDim{A: 0, C0: af.C - 1}
			continue
		}
		if !affVars[af.Var] {
			a.errorf(line, "affinity subscript %d of %s uses %s, which is not an affinity variable",
				d+1, aff.Array, af.Var.Name)
			continue
		}
		if af.A < 0 {
			// §3.4: "p and q must be literal constants, with p
			// non-negative".
			a.errorf(line, "affinity coefficient for %s must be non-negative", af.Var.Name)
			continue
		}
		if used[af.Var] {
			a.errorf(line, "affinity variable %s keys two distributed dimensions", af.Var.Name)
			continue
		}
		used[af.Var] = true
		out.Dims[d] = ir.AffinityDim{Var: af.Var, A: af.A, C0: af.C - 1}
	}
	return out
}

// lowerCall lowers a call statement, desugaring by-value expression
// arguments through addressed temporaries (Fortran passes addresses).
func (a *analyzer) lowerCall(out []ir.Stmt, x *fortran.Call) []ir.Stmt {
	switch x.Name {
	case "dsm_barrier":
		if len(x.Args) != 0 {
			a.errorf(x.Line, "dsm_barrier takes no arguments")
		}
		return append(out, &ir.Barrier{})
	case "dsm_timer_start", "dsm_timer_stop":
		if len(x.Args) != 0 {
			a.errorf(x.Line, "%s takes no arguments", x.Name)
		}
		if a.parDepth > 0 {
			a.errorf(x.Line, "%s must be called from serial code", x.Name)
		}
		return append(out, &ir.TimerMark{Stop: x.Name == "dsm_timer_stop"})
	}
	c := &ir.CallStmt{Callee: x.Name, Line: x.Line}
	for _, ae := range x.Args {
		switch ax := ae.(type) {
		case *fortran.Ident:
			if _, isConst := a.consts[ax.Name]; !isConst {
				s := a.lookupOrImplicit(ax.Name, x.Line)
				if s.Kind == ir.Array {
					c.Args = append(c.Args, &ir.ArgArray{Sym: s})
				} else {
					s.Addressed = true
					c.Args = append(c.Args, &ir.VarRef{Sym: s})
				}
				continue
			}
		case *fortran.CallExpr:
			if s, ok := a.syms[ax.Name]; ok && s.Kind == ir.Array {
				le := a.lowerCallExpr(ax)
				if le == nil {
					return out
				}
				c.Args = append(c.Args, le)
				continue
			}
		}
		// General expression: evaluate into an addressed temporary.
		e := a.lowerExpr(ae)
		if e == nil {
			return out
		}
		tmp := a.unit.NewTemp(e.Type(), "arg")
		tmp.Addressed = true
		out = append(out, &ir.Assign{Lhs: &ir.VarRef{Sym: tmp}, Rhs: e})
		c.Args = append(c.Args, &ir.VarRef{Sym: tmp})
	}
	return append(out, c)
}
