package sema

import (
	"dsmdist/internal/dist"
	"dsmdist/internal/fortran"
	"dsmdist/internal/ir"
)

// Statement and expression lowering.

// evalConst evaluates a constant expression (parameter values, cyclic
// chunks, onto weights).
func (a *analyzer) evalConst(e fortran.Expr) (constVal, bool) {
	switch x := e.(type) {
	case *fortran.IntLit:
		return constVal{isInt: true, i: x.Value}, true
	case *fortran.RealLit:
		return constVal{f: x.Value}, true
	case *fortran.Ident:
		cv, ok := a.consts[x.Name]
		return cv, ok
	case *fortran.UnOp:
		cv, ok := a.evalConst(x.X)
		if !ok || !x.Neg {
			return constVal{}, false
		}
		cv.i, cv.f = -cv.i, -cv.f
		return cv, true
	case *fortran.BinOp:
		l, lok := a.evalConst(x.L)
		r, rok := a.evalConst(x.R)
		if !lok || !rok {
			return constVal{}, false
		}
		if l.isInt && r.isInt {
			out := constVal{isInt: true}
			switch x.Op {
			case fortran.OpAdd:
				out.i = l.i + r.i
			case fortran.OpSub:
				out.i = l.i - r.i
			case fortran.OpMul:
				out.i = l.i * r.i
			case fortran.OpDiv:
				if r.i == 0 {
					return constVal{}, false
				}
				out.i = l.i / r.i
			default:
				return constVal{}, false
			}
			return out, true
		}
		lf, rf := l.f, r.f
		if l.isInt {
			lf = float64(l.i)
		}
		if r.isInt {
			rf = float64(r.i)
		}
		out := constVal{}
		switch x.Op {
		case fortran.OpAdd:
			out.f = lf + rf
		case fortran.OpSub:
			out.f = lf - rf
		case fortran.OpMul:
			out.f = lf * rf
		case fortran.OpDiv:
			if rf == 0 {
				return constVal{}, false
			}
			out.f = lf / rf
		default:
			return constVal{}, false
		}
		return out, true
	}
	return constVal{}, false
}

func (a *analyzer) lowerStmts(ss []fortran.Stmt) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range ss {
		out = a.lowerStmt(out, s)
	}
	return out
}

func (a *analyzer) lowerStmt(out []ir.Stmt, s fortran.Stmt) []ir.Stmt {
	switch x := s.(type) {
	case *fortran.Assign:
		lhs := a.lowerLvalue(x.Lhs, x.Line)
		rhs := a.lowerExpr(x.Rhs)
		if lhs == nil || rhs == nil {
			return out
		}
		rhs = a.coerce(rhs, lhs.Type())
		// Writing a non-local scalar inside a doacross is a race; the
		// paper's model has no shared scalar assignment semantics, so
		// reject it (error-detection support in the spirit of §6).
		if vr, ok := lhs.(*ir.VarRef); ok && a.parDepth > 0 {
			if !a.parLocals[vr.Sym] {
				a.errorf(x.Line, "scalar %s assigned inside doacross but not in its local clause", vr.Sym.Name)
			}
		}
		if vr, ok := lhs.(*ir.VarRef); ok {
			for _, lv := range a.loopVars {
				if lv == vr.Sym {
					a.errorf(x.Line, "assignment to active do variable %s", vr.Sym.Name)
				}
			}
		}
		return append(out, &ir.Assign{Lhs: lhs, Rhs: rhs})

	case *fortran.Do:
		return append(out, a.lowerDo(x))

	case *fortran.If:
		cond := a.lowerExpr(x.Cond)
		if cond == nil {
			return out
		}
		if cond.Type() != ir.Int {
			a.errorf(x.Line, "if condition must be logical")
		}
		return append(out, &ir.If{Cond: cond, Then: a.lowerStmts(x.Then), Else: a.lowerStmts(x.Else)})

	case *fortran.Call:
		return a.lowerCall(out, x)

	case *fortran.Return:
		return append(out, &ir.Return{})

	case *fortran.Continue:
		return out

	case *fortran.Redistribute:
		sym, ok := a.syms[x.Array]
		if !ok || sym.Kind != ir.Array {
			a.errorf(x.Line, "redistribute names unknown array %s", x.Array)
			return out
		}
		if sym.Dist == nil {
			a.errorf(x.Line, "redistribute target %s has no distribution", x.Array)
			return out
		}
		if sym.Dist.Reshape {
			// §3.3: "We do not allow redistribution of reshaped
			// arrays".
			a.errorf(x.Line, "cannot redistribute reshaped array %s", x.Array)
			return out
		}
		if a.parDepth > 0 {
			a.errorf(x.Line, "redistribute inside a parallel loop")
			return out
		}
		if len(x.Dims) != len(sym.Dims) {
			a.errorf(x.Line, "redistribute for %s has %d specifiers, array has %d dimensions",
				x.Array, len(x.Dims), len(sym.Dims))
			return out
		}
		spec := a.lowerDistDims(x.Dims, x.Line)
		sym.Redistributed = true
		return append(out, &ir.Redist{Sym: sym, Spec: spec, Line: x.Line})
	}
	return out
}

func (a *analyzer) lowerDistDims(dims []fortran.DistDim, line int) dist.Spec {
	spec := dist.Spec{Dims: make([]dist.Dim, len(dims))}
	for i, sd := range dims {
		switch sd.Kind {
		case fortran.DStar:
			spec.Dims[i].Kind = dist.Star
		case fortran.DBlock:
			spec.Dims[i].Kind = dist.Block
		case fortran.DCyclic:
			spec.Dims[i].Kind = dist.Cyclic
		case fortran.DCyclicExpr:
			spec.Dims[i].Kind = dist.BlockCyclic
			cv, ok := a.evalConst(sd.Chunk)
			if !ok || !cv.isInt || cv.i <= 0 {
				a.errorf(line, "cyclic chunk must be a positive integer constant")
				spec.Dims[i].Chunk = 1
			} else {
				spec.Dims[i].Chunk = int(cv.i)
			}
		}
	}
	return spec
}
