package sema

import (
	"strings"
	"testing"

	"dsmdist/internal/dist"
	"dsmdist/internal/fortran"
	"dsmdist/internal/ir"
)

func analyze(t *testing.T, src string) []*ir.Unit {
	t.Helper()
	f, err := fortran.Parse("test.f", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	units, err := AnalyzeFile(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return units
}

func analyzeErr(t *testing.T, src, wantSub string) {
	t.Helper()
	f, err := fortran.Parse("test.f", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = AnalyzeFile(f)
	if err == nil {
		t.Fatalf("expected error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

func findSym(t *testing.T, u *ir.Unit, name string) *ir.Sym {
	t.Helper()
	for _, s := range u.Syms {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("symbol %s not found", name)
	return nil
}

func TestBasicTypesAndParams(t *testing.T) {
	units := analyze(t, `
      program p
      integer n
      parameter (n = 10)
      real*8 a(n, 2*n)
      integer i
      do i = 1, n
        a(i, i) = 1.5
      end do
      end
`)
	u := units[0]
	if !u.IsProgram {
		t.Fatal("program flag lost")
	}
	a := findSym(t, u, "a")
	d, ok := a.ConstDims()
	if !ok || d[0] != 10 || d[1] != 20 {
		t.Fatalf("dims = %v (parameter folding broken)", d)
	}
	i := findSym(t, u, "i")
	if i.Type != ir.Int || i.Kind != ir.Scalar {
		t.Fatalf("i = %+v", i)
	}
}

func TestImplicitTyping(t *testing.T) {
	units := analyze(t, `
      program p
      x = 1.0
      k = 3
      end
`)
	u := units[0]
	if findSym(t, u, "x").Type != ir.Real {
		t.Error("x should be real by implicit rule")
	}
	if findSym(t, u, "k").Type != ir.Int {
		t.Error("k should be integer by implicit rule")
	}
}

func TestTypeCoercion(t *testing.T) {
	units := analyze(t, `
      program p
      real*8 x
      integer i
      i = 3
      x = i * 2.5
      i = x
      end
`)
	u := units[0]
	// x = i * 2.5 must wrap i in a conversion
	as := u.Body[1].(*ir.Assign)
	bin := as.Rhs.(*ir.Bin)
	if bin.Ty != ir.Real {
		t.Fatalf("mixed arith type = %v", bin.Ty)
	}
	if _, ok := bin.L.(*ir.Cvt); !ok {
		t.Fatalf("int operand not converted: %s", ir.ExprString(bin.L))
	}
	// i = x must convert back
	as2 := u.Body[2].(*ir.Assign)
	if _, ok := as2.Rhs.(*ir.Cvt); !ok {
		t.Fatalf("real-to-int assign not converted: %s", ir.ExprString(as2.Rhs))
	}
}

func TestDistributeAttach(t *testing.T) {
	units := analyze(t, `
      program p
      integer k
      parameter (k = 4)
      real*8 a(100, 100), b(100)
c$distribute a(*, block)
c$distribute_reshape b(cyclic(k))
      a(1,1) = 0.0
      end
`)
	u := units[0]
	a := findSym(t, u, "a")
	if a.Dist == nil || a.Dist.Reshape || a.Dist.Dims[1].Kind != dist.Block {
		t.Fatalf("a dist = %+v", a.Dist)
	}
	b := findSym(t, u, "b")
	if b.Dist == nil || !b.Dist.Reshape || b.Dist.Dims[0].Kind != dist.BlockCyclic || b.Dist.Dims[0].Chunk != 4 {
		t.Fatalf("b dist = %+v", b.Dist)
	}
}

func TestDistributeErrors(t *testing.T) {
	analyzeErr(t, `
      program p
      real*8 a(10)
c$distribute a(block, block)
      end
`, "2 specifiers, array has 1")
	analyzeErr(t, `
      program p
      real*8 x
c$distribute x(block)
      end
`, "not an array")
	analyzeErr(t, `
      program p
c$distribute nosuch(block)
      end
`, "unknown array")
	analyzeErr(t, `
      program p
      real*8 a(10)
c$distribute a(block)
c$distribute_reshape a(cyclic)
      end
`, "already has a distribution")
}

func TestEquivalenceReshapeRejected(t *testing.T) {
	// Compile-time check of §6.
	analyzeErr(t, `
      program p
      real*8 a(10), b(10)
c$distribute_reshape a(block)
      equivalence (a, b)
      end
`, "cannot be equivalenced")
	// Equivalence without reshape is fine.
	analyze(t, `
      program p
      real*8 a(10), b(10)
c$distribute a(block)
      equivalence (a, b)
      end
`)
}

func TestRedistributeChecks(t *testing.T) {
	units := analyze(t, `
      program p
      real*8 a(10, 10)
c$distribute a(block, *)
c$redistribute a(*, block)
      end
`)
	rd := units[0].Body[0].(*ir.Redist)
	if rd.Spec.Dims[1].Kind != dist.Block {
		t.Fatalf("redist spec = %+v", rd.Spec)
	}
	if !findSym(t, units[0], "a").Redistributed {
		t.Fatal("Redistributed flag not set")
	}
	// §3.3: reshaped arrays cannot be redistributed.
	analyzeErr(t, `
      program p
      real*8 a(10)
c$distribute_reshape a(block)
c$redistribute a(cyclic)
      end
`, "cannot redistribute reshaped")
}

func TestAffinityAnalysis(t *testing.T) {
	units := analyze(t, `
      program p
      real*8 a(100)
c$distribute a(block)
      integer i
c$doacross local(i) shared(a) affinity(i) = data(a(2*i + 3))
      do i = 1, 40
        a(2*i+3) = 1.0
      end do
      end
`)
	do := units[0].Body[0].(*ir.Do)
	aff := do.Par.Affinity
	if aff == nil || aff.Array.Name != "a" {
		t.Fatalf("affinity = %+v", aff)
	}
	ad := aff.Dims[0]
	if ad.Var == nil || ad.Var.Name != "i" || ad.A != 2 || ad.C0 != 2 {
		t.Fatalf("affinity dim = %+v (want var i, a=2, c0=2)", ad)
	}
}

func TestAffinity2D(t *testing.T) {
	units := analyze(t, `
      program p
      real*8 a(64, 64)
c$distribute_reshape a(block, block)
      integer i, j
c$doacross nest(i,j) local(i,j) affinity(i,j) = data(a(i,j))
      do i = 1, 64
        do j = 1, 64
          a(i,j) = 0.0
        end do
      end do
      end
`)
	do := units[0].Body[0].(*ir.Do)
	if do.Par.Nest != 2 {
		t.Fatalf("nest = %d", do.Par.Nest)
	}
	aff := do.Par.Affinity
	if aff.Dims[0].Var.Name != "i" || aff.Dims[1].Var.Name != "j" {
		t.Fatalf("affinity dims = %+v", aff.Dims)
	}
}

func TestAffinityErrors(t *testing.T) {
	analyzeErr(t, `
      program p
      real*8 a(100)
      integer i
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, 100
        a(i) = 0.0
      end do
      end
`, "not distributed")
	analyzeErr(t, `
      program p
      real*8 a(100)
c$distribute a(block)
      integer i
c$doacross local(i) affinity(i) = data(a(i*i))
      do i = 1, 10
        a(i*i) = 0.0
      end do
      end
`, "not of the form")
	// Negative coefficient rejected (§3.4).
	analyzeErr(t, `
      program p
      real*8 a(100)
c$distribute a(block)
      integer i
c$doacross local(i) affinity(i) = data(a(100 - i))
      do i = 1, 99
        a(100-i) = 0.0
      end do
      end
`, "non-negative")
}

func TestSharedScalarWriteRejected(t *testing.T) {
	analyzeErr(t, `
      program p
      real*8 a(100)
      integer i
      real*8 s
c$doacross local(i) shared(a, s)
      do i = 1, 100
        s = 1.0
        a(i) = s
      end do
      end
`, "not in its local clause")
}

func TestLocalScalarWriteAllowed(t *testing.T) {
	analyze(t, `
      program p
      real*8 a(100)
      integer i
      real*8 s
c$doacross local(i, s) shared(a)
      do i = 1, 100
        s = 1.0
        a(i) = s
      end do
      end
`)
}

func TestNestRequiresPerfectNest(t *testing.T) {
	analyzeErr(t, `
      program p
      real*8 a(10,10)
      integer i, j
c$doacross nest(i,j) local(i,j)
      do i = 1, 10
        a(i,1) = 0.0
        do j = 1, 10
          a(i,j) = 0.0
        end do
      end do
      end
`, "perfectly nested")
}

func TestCallArgLowering(t *testing.T) {
	units := analyze(t, `
      program p
      real*8 a(10), x
      integer i
      i = 2
      call work(a, a(i), x, i+1)
      end

      subroutine work(arr, elem, s, k)
      integer k
      real*8 arr(10), elem(1), s
      s = 0.0
      return
      end
`)
	u := units[0]
	// i+1 becomes a temp assignment followed by the call.
	var call *ir.CallStmt
	for _, s := range u.Body {
		if c, ok := s.(*ir.CallStmt); ok {
			call = c
		}
	}
	if call == nil || len(call.Args) != 4 {
		t.Fatalf("call = %+v", call)
	}
	if _, ok := call.Args[0].(*ir.ArgArray); !ok {
		t.Fatalf("whole array arg = %T", call.Args[0])
	}
	if _, ok := call.Args[1].(*ir.ArrayRef); !ok {
		t.Fatalf("element arg = %T", call.Args[1])
	}
	vr, ok := call.Args[2].(*ir.VarRef)
	if !ok || !vr.Sym.Addressed {
		t.Fatalf("scalar arg not addressed: %+v", call.Args[2])
	}
	tr, ok := call.Args[3].(*ir.VarRef)
	if !ok || !tr.Sym.Addressed || !strings.HasPrefix(tr.Sym.Name, "~") {
		t.Fatalf("expr arg not desugared: %+v", call.Args[3])
	}
}

func TestIntrinsics(t *testing.T) {
	units := analyze(t, `
      program p
      integer i, j
      real*8 x
      i = mod(j, 4)
      i = min(i, j, 3)
      x = sqrt(abs(x))
      x = dble(i)
      i = int(x)
      end
`)
	u := units[0]
	as0 := u.Body[0].(*ir.Assign)
	if b, ok := as0.Rhs.(*ir.Bin); !ok || b.Op != ir.Mod {
		t.Fatalf("mod lowering = %s", ir.ExprString(as0.Rhs))
	}
	as1 := u.Body[1].(*ir.Assign)
	if in, ok := as1.Rhs.(*ir.Intrinsic); !ok || in.Op != ir.IMin {
		t.Fatalf("min lowering = %s", ir.ExprString(as1.Rhs))
	}
	as2 := u.Body[2].(*ir.Assign)
	if in, ok := as2.Rhs.(*ir.Intrinsic); !ok || in.Op != ir.ISqrt {
		t.Fatalf("sqrt lowering = %s", ir.ExprString(as2.Rhs))
	}
}

func TestRuntimeIntrinsics(t *testing.T) {
	units := analyze(t, `
      program p
      real*8 a(100)
c$distribute a(block)
      integer i, np, lo, hi
      np = dsm_numthreads()
      lo = dsm_portion_lo(a, 1, 0)
      hi = dsm_portion_hi(a, 1, 0)
c$doacross local(i)
      do i = 1, 100
        a(i) = dble(dsm_this_thread())
      end do
      call dsm_barrier
      end
`)
	u := units[0]
	if _, ok := u.Body[0].(*ir.Assign).Rhs.(*ir.Nprocs); !ok {
		t.Fatal("dsm_numthreads not lowered")
	}
	if rf, ok := u.Body[1].(*ir.Assign).Rhs.(*ir.RTFunc); !ok || rf.Kind != ir.RTPortionLo {
		t.Fatal("dsm_portion_lo not lowered")
	}
	found := false
	ir.WalkStmts(u.Body, nil, func(e ir.Expr) bool {
		if _, ok := e.(*ir.Myid); ok {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("dsm_this_thread inside region not lowered to Myid")
	}
	hasBarrier := false
	for _, s := range u.Body {
		if _, ok := s.(*ir.Barrier); ok {
			hasBarrier = true
		}
	}
	if !hasBarrier {
		t.Fatal("dsm_barrier not lowered")
	}
}

func TestParamDistBinding(t *testing.T) {
	f, err := fortran.Parse("t.f", `
      subroutine s(x, n)
      integer n
      real*8 x(100)
      x(1) = 0.0
      return
      end
`)
	if err != nil {
		t.Fatal(err)
	}
	spec := dist.Spec{Reshape: true, Dims: []dist.Dim{{Kind: dist.Block}}}
	u, errs := AnalyzeUnit("t.f", f.Units[0], Options{ParamDists: map[string]dist.Spec{"x": spec}})
	if errs.Err() != nil {
		t.Fatal(errs)
	}
	x := findSym(t, u, "x")
	if x.Dist == nil || !x.Dist.Reshape {
		t.Fatalf("param dist not bound: %+v", x.Dist)
	}
	// Mismatched rank must fail.
	bad := dist.Spec{Reshape: true, Dims: []dist.Dim{{Kind: dist.Block}, {Kind: dist.Star}}}
	_, errs = AnalyzeUnit("t.f", f.Units[0], Options{ParamDists: map[string]dist.Spec{"x": bad}})
	if errs.Err() == nil {
		t.Fatal("rank mismatch accepted")
	}
}

func TestAssignToLoopVarRejected(t *testing.T) {
	analyzeErr(t, `
      program p
      integer i
      do i = 1, 10
        i = 5
      end do
      end
`, "active do variable")
}

func TestSubscriptCountChecked(t *testing.T) {
	analyzeErr(t, `
      program p
      real*8 a(10, 10)
      a(1) = 0.0
      end
`, "2 dimensions, 1 subscripts")
}

func TestUnknownFunction(t *testing.T) {
	analyzeErr(t, `
      program p
      real*8 x
      x = frobnicate(1)
      end
`, "unknown function or array")
}

func TestCommonBlocks(t *testing.T) {
	units := analyze(t, `
      subroutine s
      real*8 a(10), b(20)
      common /blk/ a, b
      a(1) = 0.0
      return
      end
`)
	u := units[0]
	if len(u.CommonBlocks) != 1 || u.CommonBlocks[0].Name != "blk" {
		t.Fatalf("commons = %+v", u.CommonBlocks)
	}
	a := findSym(t, u, "a")
	if a.Common != "blk" || a.CommonIndex != 0 {
		t.Fatalf("a common = %q %d", a.Common, a.CommonIndex)
	}
	b := findSym(t, u, "b")
	if b.CommonIndex != 1 {
		t.Fatalf("b index = %d", b.CommonIndex)
	}
}

func TestAssumedSizeOnlyForDummies(t *testing.T) {
	analyzeErr(t, `
      program p
      real*8 a(*)
      a(1) = 0.0
      end
`, "assumed-size arrays must be dummy arguments")
}

func TestDynamicSchedLowering(t *testing.T) {
	units := analyze(t, `
      program p
      real*8 a(20)
      integer i
c$doacross local(i) shared(a) schedtype(dynamic, 3)
      do i = 1, 20
        a(i) = 0.0
      end do
c$doacross local(i) shared(a) schedtype(gss)
      do i = 1, 20
        a(i) = 0.0
      end do
      end
`)
	d0 := units[0].Body[0].(*ir.Do).Par
	if d0.Sched != ir.SchedDynamic || d0.Chunk == nil {
		t.Fatalf("dynamic par = %+v", d0)
	}
	d1 := units[0].Body[1].(*ir.Do).Par
	if d1.Sched != ir.SchedGSS {
		t.Fatalf("gss par = %+v", d1)
	}
}

func TestNestedDoacrossRejected(t *testing.T) {
	analyzeErr(t, `
      program p
      real*8 a(10,10)
      integer i, j
c$doacross local(i)
      do i = 1, 10
c$doacross local(j)
      do j = 1, 10
        a(j,i) = 0.0
      end do
      end do
      end
`, "nested doacross")
}

func TestRedistributeInsideParallelRejected(t *testing.T) {
	analyzeErr(t, `
      program p
      real*8 a(10)
c$distribute a(block)
      integer i
c$doacross local(i)
      do i = 1, 10
c$redistribute a(cyclic)
      end do
      end
`, "redistribute inside a parallel loop")
}

func TestTimerInsideParallelRejected(t *testing.T) {
	analyzeErr(t, `
      program p
      real*8 a(10)
      integer i
c$doacross local(i) shared(a)
      do i = 1, 10
        call dsm_timer_start
        a(i) = 0.0
      end do
      end
`, "must be called from serial code")
}
